// Causal chat: why causal delivery matters for conversations.
//
// Alice asks a question; Bob answers after reading it. Carol's link from
// Alice is cut, so she learns Alice's question only through Bob's relayed
// copy — yet with CausalCast she can never see Bob's answer before the
// question it replies to. The example also shows a plain (non-causal)
// broadcast of the same exchange for contrast: there, arrival order is
// whatever the network produced.
//
// Build & run:  ./build/examples/causal_chat
#include <cstdio>
#include <memory>
#include <thread>

#include "gc/group_node.hpp"

using namespace samoa;
using namespace samoa::gc;

namespace {

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(15000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

}  // namespace

int main() {
  net::SimNetwork network(net::LinkOptions{.base_latency = std::chrono::microseconds(150)},
                          /*seed=*/5);
  GcOptions opts;
  std::vector<std::unique_ptr<GroupNode>> nodes;  // 0: Alice, 1: Bob, 2: Carol
  const char* names[] = {"Alice", "Bob", "Carol"};
  for (int i = 0; i < 3; ++i) nodes.push_back(std::make_unique<GroupNode>(network, opts));
  const View room(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id()});

  // Carol cannot hear Alice directly — only via Bob's relays.
  network.set_partitioned(nodes[0]->id(), nodes[2]->id(), true);
  for (auto& n : nodes) n->start(room);

  nodes[0]->ccast("Alice: anyone up for lunch?");
  wait_until([&] { return nodes[1]->sink().cdelivered().size() == 1; });
  // Bob replies only after having read Alice's message — a causal
  // dependency the vector clock records.
  nodes[1]->ccast("Bob: yes! the usual place?");
  wait_until([&] {
    return nodes[2]->sink().cdelivered().size() == 2 &&
           nodes[0]->sink().cdelivered().size() == 2;
  });

  for (int i = 0; i < 3; ++i) {
    std::printf("%s sees the conversation as:\n", names[i]);
    for (const auto& line : nodes[i]->sink().cdelivered()) {
      std::printf("    %s\n", line.c_str());
    }
  }
  std::printf(
      "\nCarol received Bob's answer over a shorter path than Alice's\n"
      "question (her Alice link is cut), but CausalCast buffered it until\n"
      "the question arrived — the answer can never precede the question.\n"
      "Causality buffer hits at Carol: %llu\n",
      static_cast<unsigned long long>(nodes[2]->causal().buffered_count()));

  for (auto& n : nodes) n->stop_timers();
  return 0;
}
