// The paper's Figure 1 protocol, live.
//
// Spawns the two concurrent external events a0 and b0 under each
// controller, prints the recorded run in the paper's notation, and
// classifies it against runs r1 (serial), r2 (concurrent, isolated) and
// r3 (isolation violation).
//
// Build & run:  ./build/examples/fig1_pqrs
#include <cstdio>
#include <map>
#include <string>

#include "proto/fig1.hpp"
#include "verify/checker.hpp"

using namespace samoa;
using proto::Fig1Msg;
using proto::Fig1Protocol;

namespace {

/// Render a trace the way the paper writes runs:
/// ((a0, P), (a1, R), (a2, S), ...).
std::string format_run(const Fig1Protocol& proto, const std::vector<TraceEvent>& events,
                       ComputationId ka) {
  std::map<MicroprotocolId, std::string> names{{proto.p().id(), "P"},
                                               {proto.q().id(), "Q"},
                                               {proto.r().id(), "R"},
                                               {proto.s().id(), "S"}};
  std::string out = "(";
  std::map<ComputationId, int> step;
  bool first = true;
  for (const auto& e : events) {
    if (e.phase != TracePhase::kStart) continue;
    if (!first) out += ", ";
    first = false;
    const char tag = e.computation == ka ? 'a' : 'b';
    out += "(" + std::string(1, tag) + std::to_string(step[e.computation]++) + ", " +
           names[e.microprotocol] + ")";
  }
  return out + ")";
}

}  // namespace

int main() {
  for (CCPolicy policy : {CCPolicy::kSerial, CCPolicy::kVCABasic, CCPolicy::kVCABound,
                          CCPolicy::kVCARoute, CCPolicy::kUnsync}) {
    Fig1Protocol proto;
    Runtime rt(proto.stack(), RuntimeOptions{.policy = policy, .record_trace = true});
    // Slow R inside ka so concurrent interleavings actually happen when
    // the controller permits them.
    auto ka = proto.spawn(rt, Fig1Msg{.tag = 'a', .delay_r = std::chrono::microseconds(1500)});
    auto kb = proto.spawn(rt, Fig1Msg{.tag = 'b'});
    ka.wait();
    kb.wait();
    rt.drain();

    const auto events = rt.trace()->snapshot();
    const auto report = check_isolation(events);
    const char* klass = !report.isolated ? "VIOLATION (r3-style)"
                        : report.serial  ? "serial (r1-style)"
                                         : "concurrent, isolated (r2-style)";
    std::printf("%-9s %-34s run = %s\n", to_string(policy), klass,
                format_run(proto, events, ka.id()).c_str());
  }
  std::printf(
      "\nThe serial controller admits only r1; the VCA controllers admit r2\n"
      "(and never r3); the unsynchronised baseline can produce r3 — exactly\n"
      "the classification of Section 2 of the paper.\n");
  return 0;
}
