// Atomic broadcast: every site delivers the same messages in the same
// total order, even though they are submitted concurrently from all sites
// and the ordering is agreed through distributed consensus over a lossy
// simulated network.
//
// Build & run:  ./build/examples/abcast_total_order
#include <cstdio>
#include <memory>
#include <thread>

#include "gc/group_node.hpp"

using namespace samoa;
using namespace samoa::gc;

int main() {
  net::SimNetwork network(net::LinkOptions{.base_latency = std::chrono::microseconds(200),
                                           .jitter = std::chrono::microseconds(100),
                                           .drop_probability = 0.02},
                          /*seed=*/7);
  GcOptions opts;
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(std::make_unique<GroupNode>(network, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id()});
  for (auto& n : nodes) n->start(initial);

  // Every site submits interleaved messages.
  constexpr int kPerSite = 5;
  for (int i = 0; i < kPerSite; ++i) {
    for (auto& n : nodes) {
      n->abcast("site" + std::to_string(n->id().value()) + "-msg" + std::to_string(i));
    }
  }

  const auto deadline = Clock::now() + std::chrono::seconds(30);
  while (Clock::now() < deadline) {
    bool done = true;
    for (auto& n : nodes) {
      done = done && n->sink().adelivered().size() == 3 * kPerSite;
    }
    if (done) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  std::printf("delivery order per site (consensus instances decided: %llu):\n",
              static_cast<unsigned long long>(nodes[0]->consensus().decided_count()));
  for (auto& n : nodes) {
    std::printf("  site %u:", n->id().value());
    for (const auto& m : n->sink().adelivered()) std::printf(" %s", m.data.c_str());
    std::printf("\n");
  }

  const auto ref = nodes[0]->sink().adelivered();
  bool identical = true;
  for (auto& n : nodes) {
    const auto got = n->sink().adelivered();
    identical = identical && got.size() == ref.size();
    for (std::size_t i = 0; identical && i < got.size(); ++i) {
      identical = got[i].id == ref[i].id;
    }
  }
  std::printf("total order identical on all sites: %s\n", identical ? "YES" : "NO");

  for (auto& n : nodes) n->stop_timers();
  return identical ? 0 : 1;
}
