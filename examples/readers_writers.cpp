// Read-only handlers and reader groups (the paper's Section 7 future work,
// implemented as the VCArw controller).
//
// A shared configuration store is read by many computations and rarely
// written. Declaring read-only access lets readers overlap on the same
// microprotocol while writers stay exclusive and ordered — still without a
// single user-written lock.
//
// Build & run:  ./build/examples/readers_writers
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>

#include "core/runtime.hpp"

using namespace samoa;

namespace {

class ConfigStore : public Microprotocol {
 public:
  ConfigStore() : Microprotocol("config") {
    set = &register_handler("set", [this](Context&, const Message& m) {
      value_ = m.as<std::string>();
      ++version_;
    });
    get = &register_handler(
        "get",
        [this](Context&, const Message&) {
          const int now = readers_.fetch_add(1) + 1;
          int seen = peak_readers.load();
          while (now > seen && !peak_readers.compare_exchange_weak(seen, now)) {
          }
          // Simulate a slow consumer of the configuration.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
          last_read = value_ + "@" + std::to_string(version_);
          readers_.fetch_sub(1);
        },
        HandlerMode::kReadOnly);
  }
  const Handler* set = nullptr;
  const Handler* get = nullptr;
  std::string last_read;
  std::atomic<int> peak_readers{0};

 private:
  std::string value_ = "default";
  std::uint64_t version_ = 0;
  std::atomic<int> readers_{0};
};

}  // namespace

int main() {
  Stack stack;
  auto& config = stack.emplace<ConfigStore>();
  EventType ev_get("Get"), ev_set("Set");
  stack.bind(ev_get, *config.get);
  stack.bind(ev_set, *config.set);

  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCARW});

  const auto t0 = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int round = 0; round < 3; ++round) {
    // A writer, then a burst of readers: the readers after the writer form
    // one group and overlap; the writer stays exclusive and ordered.
    hs.push_back(rt.spawn_isolated(
        Isolation::read_write({{&config, Access::kWrite}}), [&, round](Context& ctx) {
          ctx.trigger(ev_set, Message::of("generation-" + std::to_string(round)));
        }));
    for (int r = 0; r < 8; ++r) {
      hs.push_back(rt.spawn_isolated(Isolation::read_write({{&config, Access::kRead}}),
                                     [&](Context& ctx) { ctx.trigger(ev_get); }));
    }
  }
  for (auto& h : hs) h.wait();
  const auto elapsed =
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() - t0);

  std::printf("27 computations (3 writers + 24 slow readers) in %lldms\n",
              static_cast<long long>(elapsed.count()));
  std::printf("peak concurrent readers on the shared store: %d (exclusive would be 1)\n",
              config.peak_readers.load());
  std::printf("last read observed: %s\n", config.last_read.c_str());

  // Declaring read access but calling the mutating handler is rejected:
  auto bad = rt.spawn_isolated(Isolation::read_write({{&config, Access::kRead}}),
                               [&](Context& ctx) { ctx.trigger(ev_set, Message::of("oops")); });
  try {
    bad.wait();
  } catch (const IsolationError& e) {
    std::printf("\nas expected, a read-declared computation may not write:\n  %s\n", e.what());
  }
  return 0;
}
