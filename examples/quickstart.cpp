// Quickstart: two microprotocols, one shared, and the `isolated` construct.
//
// A Logger microprotocol is shared by two computation types: one that
// counts words and one that counts characters. Neither contains a single
// lock — declaring the microprotocols each computation may touch is all
// the synchronisation the programmer writes; the runtime's VCAbasic
// controller guarantees the isolation property.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <string>
#include <vector>

#include "core/runtime.hpp"

using namespace samoa;

namespace {

/// Shared microprotocol: appends lines to an in-memory log. Its state is a
/// plain std::vector — safe because handler executions of different
/// computations never interleave on one microprotocol.
class Logger : public Microprotocol {
 public:
  Logger() : Microprotocol("logger") {
    log = &register_handler("log", [this](Context&, const Message& m) {
      lines_.push_back(m.as<std::string>());
    });
  }
  const Handler* log = nullptr;
  const std::vector<std::string>& lines() const { return lines_; }

 private:
  std::vector<std::string> lines_;
};

/// Counts words of the input, then reports to the logger.
class WordCounter : public Microprotocol {
 public:
  explicit WordCounter(EventType log_ev) : Microprotocol("words") {
    count = &register_handler("count", [log_ev](Context& ctx, const Message& m) {
      const auto& text = m.as<std::string>();
      std::size_t words = 0;
      bool in_word = false;
      for (char c : text) {
        const bool is_space = c == ' ' || c == '\n' || c == '\t';
        if (!is_space && !in_word) ++words;
        in_word = !is_space;
      }
      ctx.trigger(log_ev, Message::of("words: " + std::to_string(words)));
    });
  }
  const Handler* count = nullptr;
};

/// Counts characters, then reports to the logger.
class CharCounter : public Microprotocol {
 public:
  explicit CharCounter(EventType log_ev) : Microprotocol("chars") {
    count = &register_handler("count", [log_ev](Context& ctx, const Message& m) {
      const auto& text = m.as<std::string>();
      ctx.trigger(log_ev, Message::of("chars: " + std::to_string(text.size())));
    });
  }
  const Handler* count = nullptr;
};

}  // namespace

int main() {
  // 1. Compose the protocol: microprotocols + event bindings.
  Stack stack;
  EventType ev_log("Log"), ev_words("CountWords"), ev_chars("CountChars");
  auto& logger = stack.emplace<Logger>();
  auto& words = stack.emplace<WordCounter>(ev_log);
  auto& chars = stack.emplace<CharCounter>(ev_log);
  stack.bind(ev_log, *logger.log);
  stack.bind(ev_words, *words.count);
  stack.bind(ev_chars, *chars.count);

  // 2. One runtime, one concurrency-control policy.
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});

  // 3. Each external event spawns an isolated computation. The declaration
  //    lists every microprotocol the computation may call — the C++
  //    rendering of the paper's `isolated [words logger] { trigger ... }`.
  const std::string text = "the quick brown fox jumps over the lazy dog";
  std::vector<ComputationHandle> handles;
  for (int i = 0; i < 5; ++i) {
    handles.push_back(rt.spawn_isolated(
        Isolation::basic({&words, &logger}),
        [&](Context& ctx) { ctx.trigger(ev_words, Message::of(text)); }));
    handles.push_back(rt.spawn_isolated(
        Isolation::basic({&chars, &logger}),
        [&](Context& ctx) { ctx.trigger(ev_chars, Message::of(text)); }));
  }
  for (auto& h : handles) h.wait();

  // 4. The log is consistent without a single user-written lock.
  std::printf("logger recorded %zu lines:\n", logger.lines().size());
  for (const auto& line : logger.lines()) std::printf("  %s\n", line.c_str());

  // Calling an undeclared microprotocol raises IsolationError:
  auto bad = rt.spawn_isolated(Isolation::basic({&words}),  // logger missing!
                               [&](Context& ctx) { ctx.trigger(ev_words, Message::of(text)); });
  try {
    bad.wait();
  } catch (const IsolationError& e) {
    std::printf("\nas expected, undeclared access was rejected:\n  %s\n", e.what());
  }
  return 0;
}
