// Group communication on the simulated network: reliable broadcast with a
// mid-stream membership change — the Section 3 scenario of the paper.
//
// Five sites; four form the initial group, the fifth joins while another
// member keeps broadcasting. With the VCAbasic controller the view change
// and the message traffic are isolated computations, so nothing is lost;
// the example prints per-site delivery counts and the view history.
//
// Build & run:  ./build/examples/group_broadcast
#include <cstdio>
#include <memory>
#include <thread>

#include "gc/group_node.hpp"

using namespace samoa;
using namespace samoa::gc;

namespace {

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(15000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

}  // namespace

int main() {
  net::SimNetwork network(net::LinkOptions{.base_latency = std::chrono::microseconds(150),
                                           .jitter = std::chrono::microseconds(50)},
                          /*seed=*/2026);
  GcOptions opts;  // VCAbasic by default — no locks anywhere in the stack
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 5; ++i) nodes.push_back(std::make_unique<GroupNode>(network, opts));

  const View initial(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id(), nodes[3]->id()});
  for (int i = 0; i < 4; ++i) nodes[i]->start(initial);
  nodes[4]->start(View(1, {nodes[4]->id()}));  // outside the group for now

  std::printf("initial view: %s\n", nodes[0]->membership().view_snapshot().describe().c_str());

  // A broadcast before the join: only the four members receive it.
  nodes[1]->rbcast("pre-join");
  wait_until([&] { return nodes[3]->sink().rdelivered().size() == 1; });

  // Site 4 joins while site 1 keeps broadcasting.
  nodes[0]->request_join(nodes[4]->id());
  for (int i = 0; i < 10; ++i) {
    nodes[1]->rbcast("burst-" + std::to_string(i));
    std::this_thread::sleep_for(std::chrono::microseconds(400));
  }
  wait_until([&] { return nodes[4]->membership().view_snapshot().size() == 5; });
  nodes[1]->rbcast("post-join");
  wait_until([&] {
    const auto got = nodes[4]->sink().rdelivered();
    for (const auto& m : got) {
      if (m.data == "post-join") return true;
    }
    return false;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("view after join: %s\n",
              nodes[0]->membership().view_snapshot().describe().c_str());
  std::int64_t discarded = 0;
  for (auto& n : nodes) {
    std::printf("site %u delivered %zu broadcasts\n", n->id().value(),
                n->sink().rdelivered().size());
    discarded += static_cast<std::int64_t>(n->rel_comm().discarded_out_of_view());
  }
  std::printf(
      "messages silently discarded to stale views: %lld\n"
      "(always 0 under an isolation-preserving controller; see\n"
      " bench_viewchange for the unsynchronised counter-example)\n",
      static_cast<long long>(discarded));

  for (auto& n : nodes) n->stop_timers();
  return 0;
}
