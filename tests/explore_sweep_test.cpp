// Strategy x policy sweep of the schedule explorer — the tier-1 sanity
// gate: within a bounded schedule budget the explorer must expose the
// kUnsync baseline as non-isolated (with a shrunk, replayable
// counterexample), while kSerial, the whole VCA family and kTSO come out
// clean on the same conflicting workload. A miss on either side means the
// harness, not the controllers, is broken: too weak to drive conflicting
// interleavings, or observing schedules that cannot happen.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/runner.hpp"
#include "explore/trace.hpp"
#include "test_support.hpp"

namespace samoa::explore {
namespace {

CellOptions gate_cell(CCPolicy policy, StrategyKind strategy) {
  CellOptions o;
  o.policy = policy;
  o.strategy = strategy;
  o.seed = samoa::testing::test_seed(42);
  o.comps = 4;
  o.mps = 3;
  o.calls = 3;
  o.max_schedules = 40;
  return o;
}

TEST(ExploreSweep, RandomWalkFlagsUnsyncWithShrunkCounterexample) {
  const CellResult res = explore_cell(gate_cell(CCPolicy::kUnsync, StrategyKind::kRandomWalk));
  ASSERT_TRUE(res.violation_found)
      << "random walk never violated kUnsync within " << res.schedules_run << " schedules (seed "
      << res.options.seed << ")";
  EXPECT_FALSE(res.violation_summary.empty());
  EXPECT_LE(res.shrunk.size(), res.first_violation.size());
  ASSERT_FALSE(res.shrunk.empty()) << "the natural schedule should not violate";
  EXPECT_NE(res.repro.find(res.shrunk.encode()), std::string::npos)
      << "repro snippet must embed the shrunk trace";

  // The shrunk counterexample replays: same workload, forced decisions,
  // violation reproduced, no divergence.
  const RunResult replay = replay_schedule(res.options, res.shrunk);
  EXPECT_FALSE(replay.replay_diverged) << res.shrunk.encode();
  EXPECT_TRUE(replay.violated) << res.shrunk.encode();
}

TEST(ExploreSweep, ReproSnippetTraceSurvivesTextRoundtrip) {
  const CellResult res = explore_cell(gate_cell(CCPolicy::kUnsync, StrategyKind::kRandomWalk));
  ASSERT_TRUE(res.violation_found);
  // What a human pastes from the repro is the *encoded* trace: decode it
  // back and replay, exactly as the snippet instructs.
  const ScheduleTrace decoded = ScheduleTrace::decode(res.shrunk.encode());
  const RunResult replay = replay_schedule(res.options, decoded);
  EXPECT_TRUE(replay.violated);
  EXPECT_FALSE(replay.replay_diverged);
}

TEST(ExploreSweep, PctFlagsUnsync) {
  CellOptions o = gate_cell(CCPolicy::kUnsync, StrategyKind::kPct);
  o.max_schedules = 100;
  o.pct_k = 3;
  const CellResult res = explore_cell(o);
  EXPECT_TRUE(res.violation_found)
      << "PCT never violated kUnsync within " << res.schedules_run << " schedules (seed "
      << res.options.seed << ")";
}

TEST(ExploreSweep, ExhaustiveFlagsUnsyncWithinDepthBound) {
  // Two computations, one shared microprotocol: the schedule space within
  // depth 8 is a few hundred runs; DFS must hit the overlap.
  CellOptions o = gate_cell(CCPolicy::kUnsync, StrategyKind::kExhaustive);
  o.comps = 2;
  o.mps = 1;
  o.calls = 1;
  o.exhaustive_depth = 8;
  o.max_schedules = 400;
  const CellResult res = explore_cell(o);
  EXPECT_TRUE(res.violation_found)
      << "exhaustive DFS never violated kUnsync in " << res.schedules_run << " schedules";
}

TEST(ExploreSweep, IsolatingPoliciesStayCleanAcrossTheSweep) {
  // The other half of the gate: every real controller survives the same
  // adversarial schedules. sweep() is also the API the nightly CI job and
  // bench_explore drive.
  CellOptions base = gate_cell(CCPolicy::kVCABasic, StrategyKind::kRandomWalk);
  base.max_schedules = 12;
  const std::vector<CCPolicy> policies = {CCPolicy::kSerial,   CCPolicy::kVCABasic,
                                          CCPolicy::kVCABound, CCPolicy::kVCARoute,
                                          CCPolicy::kVCARW,    CCPolicy::kTSO};
  const std::vector<CellResult> results =
      sweep(policies, {StrategyKind::kRandomWalk}, {samoa::testing::test_seed(42)}, base);
  ASSERT_EQ(results.size(), policies.size());
  for (const CellResult& res : results) {
    EXPECT_FALSE(res.violation_found)
        << res.cell_name() << " violated isolation!\n"
        << res.violation_summary << "\nshrunk trace: " << res.shrunk.encode() << "\nrepro:\n"
        << res.repro;
    // Clean cells exhaust their whole budget (scaled by the
    // SAMOA_EXPLORE_SCHEDULES multiplier the nightly job sets).
    EXPECT_EQ(res.schedules_run, schedule_budget(base.max_schedules)) << res.cell_name();
    EXPECT_GT(res.decision_points, 0u) << res.cell_name() << ": no decisions were explored";
    // Per-kind accounting: controller cells explore step ('s') and clock
    // ('c') decisions but never network ('n') ones — those only exist when
    // a DeliveryHook is installed on a SimNetwork, which these in-process
    // workloads don't use. The kinds must sum to the total.
    EXPECT_EQ(res.decisions.total(), res.decision_points) << res.cell_name();
    EXPECT_GT(res.decisions.s, 0u) << res.cell_name();
    EXPECT_EQ(res.decisions.n, 0u) << res.cell_name();
    EXPECT_FALSE(res.decisions.summary().empty());
  }
}

TEST(ExploreSweep, AdmissionHeavyWorkloadStaysClean) {
  // Admission-heavy cell: twice the computations, one call each, over few
  // microprotocols — nearly every scheduling decision lands in Step 1
  // (the sharded lock-free admission fast path and its publish handshake)
  // rather than inside handler bodies. This is the exploration-side pin
  // for the lock-free gate rewrite: a version ordering broken by a racy
  // admission shows up here as an isolation violation with a shrunk,
  // replayable schedule. The nightly CI sweep reruns this cell at 16x the
  // schedule budget across its seed matrix.
  CellOptions base = gate_cell(CCPolicy::kVCABasic, StrategyKind::kRandomWalk);
  base.comps = 8;
  base.mps = 2;
  base.calls = 1;
  base.max_schedules = 10;
  const std::vector<CCPolicy> policies = {CCPolicy::kSerial,   CCPolicy::kVCABasic,
                                          CCPolicy::kVCABound, CCPolicy::kVCARoute,
                                          CCPolicy::kVCARW,    CCPolicy::kTSO};
  const std::vector<CellResult> results =
      sweep(policies, {StrategyKind::kRandomWalk}, {samoa::testing::test_seed(42)}, base);
  ASSERT_EQ(results.size(), policies.size());
  for (const CellResult& res : results) {
    EXPECT_FALSE(res.violation_found)
        << res.cell_name() << " violated isolation under the admission-heavy workload!\n"
        << res.violation_summary << "\nshrunk trace: " << res.shrunk.encode() << "\nrepro:\n"
        << res.repro;
    EXPECT_EQ(res.schedules_run, schedule_budget(base.max_schedules)) << res.cell_name();
  }
}

}  // namespace
}  // namespace samoa::explore
