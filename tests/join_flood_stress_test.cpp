// Join-during-flood stress cells — the E2 bench scenario as a tier-1 test.
//
// This is the exact workload that wedged bench_viewchange (the E2 hang):
// a newcomer joins while another member floods rbcasts, so the view-change
// computation stalls head-of-line while packets and timer ticks keep
// admitting new computations behind it. Pre-fix, the runtime's thread
// pools filled to their cap with *parked* workers and the one queued task
// that would have unblocked the head computation never got a thread.
//
// Each cell runs one join-during-flood race with a distinct (policy,
// view-change window, network seed) triple. A fail-fast deadlock watchdog
// converts any recurrence of the hang into an immediate abort with a
// blocked-state dump (naming the wait-for cycle) instead of a silent
// 300-second ctest timeout. Set SAMOA_STRESS_SEEDS to sweep more seeds
// (CI nightly / manual soak: 200+).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "diag/watchdog.hpp"
#include "gc/group_node.hpp"
#include "net/sim_network.hpp"
#include "test_support.hpp"

#if defined(__SANITIZE_THREAD__)
#define SAMOA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMOA_UNDER_TSAN 1
#endif
#endif
#ifndef SAMOA_UNDER_TSAN
#define SAMOA_UNDER_TSAN 0
#endif

namespace samoa::gc {
namespace {

using namespace std::chrono_literals;
using net::LinkOptions;
using net::SimNetwork;

// This workload runs on the wall clock (the race needs real thread
// interleaving), so the ~15x TSan slowdown eats directly into the join
// deadline: give it more room and sweep fewer seeds there.
constexpr int kTsanSlowdown = SAMOA_UNDER_TSAN ? 10 : 1;

int stress_seeds() {
  if (const char* env = std::getenv("SAMOA_STRESS_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return SAMOA_UNDER_TSAN ? 4 : 12;  // tier-1 default: a few seconds of wall time
}

struct CellResult {
  bool join_completed = false;
  std::uint64_t peak_threads = 0;
  std::uint64_t ticks_coalesced = 0;
};

CellResult run_cell(CCPolicy policy, std::chrono::microseconds window, std::uint64_t seed) {
  GcOptions opts;
  opts.policy = policy;
  opts.manual_locks = false;
  opts.view_change_delay = window * kTsanSlowdown;
  // The stack's liveness timers are wall-clock; under a sanitizer the
  // handlers run ~15x slower, so unscaled timeouts misfire (a 10ms
  // fd_timeout vs TSan-paced heartbeat handling = suspicion storms that
  // churn membership forever and starve the join). Stretch them by the
  // same factor the workload is stretched by.
  opts.retransmit_interval *= kTsanSlowdown;
  opts.retransmit_timeout *= kTsanSlowdown;
  opts.retransmit_backoff_cap *= kTsanSlowdown;
  opts.heartbeat_interval *= kTsanSlowdown;
  opts.fd_timeout *= kTsanSlowdown;
  opts.cs_retry_interval *= kTsanSlowdown;
  opts.cs_retry_timeout *= kTsanSlowdown;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100)}, seed);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id()});
  for (int i = 0; i < 3; ++i) nodes[i]->start(initial);
  nodes[3]->start(View(1, {nodes[3]->id()}));

  nodes[0]->request_join(nodes[3]->id());
  // Flood while the view change propagates: every one of these may land in
  // the race window and queue behind the join's head-of-line computation.
  // The pacing is part of the race: fast enough that messages land inside
  // the view-change window, slow enough that the (possibly sanitizer-
  // slowed) stack is racing the flood rather than drowning under it.
  for (int i = 0; i < 40; ++i) {
    nodes[1]->rbcast("flood" + std::to_string(i));
    std::this_thread::sleep_for(std::chrono::microseconds(200) * kTsanSlowdown);
  }

  CellResult r;
  const auto deadline = std::chrono::steady_clock::now() + 30s * kTsanSlowdown;
  while (std::chrono::steady_clock::now() < deadline) {
    if (nodes[3]->membership().view_snapshot().size() == 4) {
      r.join_completed = true;
      break;
    }
    std::this_thread::sleep_for(1ms);
  }
  std::this_thread::sleep_for(50ms);  // let in-flight floods settle
  for (auto& n : nodes) n->stop_timers();
  for (auto& n : nodes) n->drain();  // pre-fix: this (or the join) wedged
  for (auto& n : nodes) {
    r.peak_threads = std::max(r.peak_threads,
                              static_cast<std::uint64_t>(n->runtime().pool().peak_thread_count()));
    r.ticks_coalesced += n->ticks_coalesced();
  }
  return r;
}

class JoinFloodStress : public ::testing::Test {
 protected:
  // Fail fast on any recurrence of the hang: dump the wait-for graph and
  // abort. 60s of no progress on this workload is unambiguous — a healthy
  // cell completes in well under a second of virtual activity.
  void SetUp() override {
    diag::WatchdogOptions opts;
    opts.budget = 60s;
    opts.name = "join_flood_stress";
    opts.abort_on_stall = true;
    if (const char* dir = std::getenv("SAMOA_WATCHDOG_DIR")) opts.dump_dir = dir;
    // Arm the stuck-wait detector on request: a cell whose join stalls
    // behind live background traffic (acks, ticks) never trips the
    // no-progress budget — exactly the E2 livelock's signature.
    if (const char* ms = std::getenv("SAMOA_WATCHDOG_STUCK")) {
      const int n = std::atoi(ms);
      if (n > 0) opts.stuck_wait_budget = std::chrono::milliseconds(n);
    }
    dog_ = std::make_unique<diag::DeadlockWatchdog>(std::move(opts));
  }
  void TearDown() override { dog_.reset(); }

  std::unique_ptr<diag::DeadlockWatchdog> dog_;
};

TEST_F(JoinFloodStress, SerialPolicySeedSweep) {
  const int seeds = stress_seeds();
  const std::uint64_t base = samoa::testing::test_seed(1000);
  for (int s = 0; s < seeds; ++s) {
    const auto window = (s % 2 == 0) ? 0us : 500us;
    SCOPED_TRACE("serial seed=" + std::to_string(base + s) +
                 " window=" + std::to_string(window.count()) + "us");
    const CellResult r = run_cell(CCPolicy::kSerial, window, base + s);
    ASSERT_TRUE(r.join_completed) << "join never completed (stalled short of a full wedge)";
    dog_->kick();  // cell boundary: restart the no-progress window
  }
}

TEST_F(JoinFloodStress, VCABasicPolicySeedSweep) {
  const int seeds = stress_seeds();
  const std::uint64_t base = samoa::testing::test_seed(2000);
  std::uint64_t coalesced = 0;
  for (int s = 0; s < seeds; ++s) {
    const auto window = (s % 2 == 0) ? 0us : 500us;
    SCOPED_TRACE("vca-basic seed=" + std::to_string(base + s) +
                 " window=" + std::to_string(window.count()) + "us");
    const CellResult r = run_cell(CCPolicy::kVCABasic, window, base + s);
    ASSERT_TRUE(r.join_completed) << "join never completed (stalled short of a full wedge)";
    coalesced += r.ticks_coalesced;
    dog_->kick();
  }
  // Not asserted (timing-dependent), but useful in the log: how often tick
  // coalescing kept a stalled stack from piling up blocked computations.
  RecordProperty("ticks_coalesced", static_cast<int>(coalesced));
}

}  // namespace
}  // namespace samoa::gc
