// Component-level tests of the SWIM gossip failure detector on small
// clusters: direct probe/ack keeps a healthy fleet quiet, indirect
// ping-req probing masks a dead link, a crashed site is suspected and then
// confirmed faulty, a wrongly accused site refutes with a bumped
// incarnation, and view changes prune/seed the member table. All cells run
// GroupNode stacks with detector_impl = kSwim on the wall clock (same
// idiom as gc_component_test); timings stretch under sanitizers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gc/group_node.hpp"

#if defined(__SANITIZE_THREAD__)
#define SAMOA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMOA_UNDER_TSAN 1
#endif
#endif
#ifndef SAMOA_UNDER_TSAN
#define SAMOA_UNDER_TSAN 0
#endif

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

// Wall-clock cells: sanitizer-slowed handlers need proportionally slower
// protocol periods or probe deadlines misfire on healthy links.
constexpr int kSlow = SAMOA_UNDER_TSAN ? 10 : 1;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout * kSlow;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

GcOptions swim_options() {
  GcOptions opts;
  opts.detector_impl = DetectorImpl::kSwim;
  opts.swim_probe_interval = std::chrono::microseconds(2000) * kSlow;
  opts.swim_ack_timeout = std::chrono::microseconds(600) * kSlow;
  opts.retransmit_interval = std::chrono::microseconds(2000) * kSlow;
  opts.retransmit_timeout = std::chrono::microseconds(3000) * kSlow;
  opts.cs_retry_interval = std::chrono::microseconds(5000) * kSlow;
  opts.cs_retry_timeout = std::chrono::microseconds(8000) * kSlow;
  return opts;
}

struct SwimFleet {
  SimNetwork net;
  std::vector<std::unique_ptr<GroupNode>> nodes;

  explicit SwimFleet(int n, GcOptions opts = swim_options(),
                     LinkOptions links = LinkOptions{.base_latency =
                                                         std::chrono::microseconds(80)})
      : net(links, 7) {
    for (int i = 0; i < n; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
    std::vector<SiteId> members;
    for (auto& node : nodes) members.push_back(node->id());
    for (auto& node : nodes) node->start(View(1, members));
  }
};

TEST(SwimComponent, DetectorSeamSelectsConfiguredImpl) {
  SwimFleet swim_fleet(2);
  EXPECT_EQ(&swim_fleet.nodes[0]->detector(),
            static_cast<Detector*>(&swim_fleet.nodes[0]->swim()));
  GcOptions hb;
  hb.detector_impl = DetectorImpl::kHeartbeat;
  SwimFleet hb_fleet(2, hb);
  EXPECT_EQ(&hb_fleet.nodes[0]->detector(), static_cast<Detector*>(&hb_fleet.nodes[0]->fd()));
}

TEST(SwimComponent, HealthyFleetProbesWithoutSuspicion) {
  SwimFleet f(4);
  // Let several protocol periods elapse.
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().periods() >= 5; }));
  for (auto& n : f.nodes) {
    EXPECT_GT(n->swim().probes_sent(), 0u);
    for (auto& m : f.nodes) {
      if (n == m) continue;
      EXPECT_FALSE(n->detector().is_suspected(m->id()))
          << n->id().value() << " suspects healthy " << m->id().value();
      EXPECT_EQ(n->swim().status_of(m->id()), SwimStatus::kAlive);
    }
    EXPECT_EQ(n->swim().status_of(n->id()), std::nullopt);  // never tracks self
  }
}

TEST(SwimComponent, DeadLinkMaskedByIndirectProbes) {
  // Cut node0 <-> node1 in both directions. Direct probes across the dead
  // link fail, but ping-reqs through either healthy proxy succeed, so
  // neither endpoint may harden a suspicion against the other.
  SwimFleet f(4);
  f.net.set_partitioned(f.nodes[0]->id(), f.nodes[1]->id(), true);
  // Wait until node0 actually exercised the indirect path against node1.
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().ping_reqs_sent() > 0; }));
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().periods() >= 10; }));
  // Proxies relayed acks on someone's behalf.
  std::uint64_t relayed = 0;
  for (auto& n : f.nodes) relayed += n->swim().acks_relayed();
  EXPECT_GT(relayed, 0u);
  // Any transient suspicion must have been refuted by the (live) target;
  // the settled state is alive on both sides of the dead link.
  EXPECT_TRUE(wait_until([&] {
    return !f.nodes[0]->detector().is_suspected(f.nodes[1]->id()) &&
           !f.nodes[1]->detector().is_suspected(f.nodes[0]->id());
  }));
}

TEST(SwimComponent, CrashedSiteSuspectedThenConfirmed) {
  SwimFleet f(4);
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().periods() >= 2; }));
  f.nodes[3]->crash();
  const SiteId dead = f.nodes[3]->id();
  // Every survivor learns of the suspicion (locally or via gossip).
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(wait_until([&, i] { return f.nodes[i]->detector().is_suspected(dead); }))
        << "site " << i << " never suspected the crashed site";
  }
  // Un-refuted suspicion hardens into confirmed-faulty.
  EXPECT_TRUE(wait_until(
      [&] { return f.nodes[0]->swim().status_of(dead) == SwimStatus::kFaulty; }));
  EXPECT_GT(f.nodes[0]->swim().suspicions(), 0u);
  std::uint64_t confirmations = 0;
  for (int i = 0; i < 3; ++i) confirmations += f.nodes[i]->swim().confirmations();
  EXPECT_GT(confirmations, 0u);
}

TEST(SwimComponent, IsolatedSiteRefutesAfterHeal) {
  // Cut node3 off from everyone long enough to be confirmed faulty, then
  // heal. The survivors' refute hints tell node3 what they believe; node3
  // must bump its incarnation and the fleet must revoke.
  SwimFleet f(4);
  const SiteId victim = f.nodes[3]->id();
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().periods() >= 2; }));
  for (int i = 0; i < 3; ++i) f.net.set_partitioned(f.nodes[i]->id(), victim, true);
  ASSERT_TRUE(wait_until(
      [&] { return f.nodes[0]->swim().status_of(victim) == SwimStatus::kFaulty; }));
  for (int i = 0; i < 3; ++i) f.net.set_partitioned(f.nodes[i]->id(), victim, false);
  EXPECT_TRUE(wait_until([&] { return f.nodes[3]->swim().refutations() > 0; }))
      << "the accused never refuted";
  EXPECT_GT(f.nodes[3]->swim().incarnation(), 0u);
  EXPECT_TRUE(wait_until([&] {
    for (int i = 0; i < 3; ++i) {
      if (f.nodes[i]->detector().is_suspected(victim)) return false;
    }
    return true;
  })) << "suspicion outlived the refutation";
  std::uint64_t revocations = 0;
  for (int i = 0; i < 3; ++i) revocations += f.nodes[i]->detector().suspicion_revocations();
  EXPECT_GT(revocations, 0u);
}

TEST(SwimComponent, ViewChangePrunesEvictedAndSeedsJoiner) {
  // Five stacks; the fifth starts outside the group and joins later.
  SwimFleet f(4);
  GcOptions opts = swim_options();
  auto joiner = std::make_unique<GroupNode>(f.net, opts);
  joiner->start(View(1, {joiner->id()}));

  // Evict a crashed member: the detector must drop it from its tables
  // (status_of -> nullopt) rather than keep gossiping about a non-member.
  f.nodes[2]->crash();
  const SiteId evicted = f.nodes[2]->id();
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->detector().is_suspected(evicted); }));
  f.nodes[0]->request_leave(evicted);
  EXPECT_TRUE(wait_until(
      [&] { return f.nodes[0]->swim().status_of(evicted) == std::nullopt; }));
  EXPECT_FALSE(f.nodes[0]->detector().is_suspected(evicted));

  // Join the newcomer: every old member seeds it Alive, and the joiner
  // (whose stack saw the whole group only at the ViewInstall) tracks the
  // old members — without ever having probed them yet.
  f.nodes[0]->request_join(joiner->id());
  EXPECT_TRUE(wait_until(
      [&] { return f.nodes[0]->swim().status_of(joiner->id()) == SwimStatus::kAlive; }));
  EXPECT_TRUE(wait_until(
      [&] { return joiner->swim().status_of(f.nodes[0]->id()) == SwimStatus::kAlive; }));
  EXPECT_FALSE(joiner->detector().is_suspected(f.nodes[0]->id()));
  joiner->stop_timers();
  joiner->drain();
}

TEST(SwimComponent, DisseminationPiggybacksOnProbeTraffic) {
  // A churn event (crash) must travel as piggybacked updates — the only
  // dissemination channel SWIM has — and the gossip budget must retransmit
  // it more than once.
  SwimFleet f(5);
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->swim().periods() >= 2; }));
  f.nodes[4]->crash();
  const SiteId dead = f.nodes[4]->id();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(wait_until([&, i] { return f.nodes[i]->detector().is_suspected(dead); }));
  }
  std::uint64_t piggybacked = 0;
  for (int i = 0; i < 4; ++i) piggybacked += f.nodes[i]->swim().updates_piggybacked();
  EXPECT_GT(piggybacked, 4u) << "suspicion spread without piggybacked updates?";
}

}  // namespace
}  // namespace samoa::gc
