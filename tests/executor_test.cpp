// Tests of the per-microprotocol executor dispatch layer (PR 8): the
// ExecutorGroup's queue discipline in isolation, and the Runtime/Context
// integration — per-mp FIFO, batched trigger fan-out, park handoff, and
// the diag surface.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "cc/controller.hpp"
#include "core/executor.hpp"
#include "core/runtime.hpp"
#include "diag/wait_registry.hpp"
#include "tests/test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;
using testing::ProbeMp;

// --- ExecutorGroup in isolation ------------------------------------------

TEST(ExecutorGroup, SingleProducerFifoAcrossRingAndOverflow) {
  // Capacity 16 with 200 tasks forces the ring-full overflow path while a
  // spinning first task holds the consumer; order must survive the
  // ring -> overflow -> ring transitions.
  ExecutorOptions opts;
  opts.shards = 1;
  opts.queue_capacity = 16;
  ExecutorGroup ex(opts);
  std::atomic<bool> go{false};
  std::vector<int> order;
  ex.submit(0, [&] {
    while (!go.load()) std::this_thread::yield();
  }, 1);
  for (int i = 0; i < 200; ++i) {
    ex.submit(0, [&order, i] { order.push_back(i); }, 1);
  }
  go.store(true);
  ex.shutdown();
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ExecutorGroup, OverflowPreservesPerProducerFifo) {
  ExecutorOptions opts;
  opts.shards = 1;
  opts.queue_capacity = 4;
  ExecutorGroup ex(opts);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 100;
  std::mutex mu;
  std::vector<std::pair<int, int>> log;  // (producer, seq)
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ex.submit(0, [&, p, i] {
          std::unique_lock lk(mu);
          log.emplace_back(p, i);
        }, 1);
      }
    });
  }
  for (auto& t : producers) t.join();
  ex.shutdown();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::vector<int> next(kProducers, 0);
  for (const auto& [p, seq] : log) {
    EXPECT_EQ(seq, next[static_cast<std::size_t>(p)]) << "producer " << p << " reordered";
    ++next[static_cast<std::size_t>(p)];
  }
}

TEST(ExecutorGroup, ShutdownRunsQueuedWork) {
  // Tasks still queued when shutdown() is called must execute, not drop.
  ExecutorOptions opts;
  opts.shards = 2;
  ExecutorGroup ex(opts);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    ex.submit(static_cast<std::size_t>(i) % 2, [&] { ran.fetch_add(1); }, 1);
  }
  ex.shutdown();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ExecutorGroup, SubmitAfterShutdownThrows) {
  ExecutorGroup ex(ExecutorOptions{.shards = 1});
  ex.shutdown();
  EXPECT_THROW(ex.submit(0, [] {}, 1), std::runtime_error);
  ex.shutdown();  // idempotent
}

TEST(ExecutorGroup, RoundRobinCyclesAllShards) {
  ExecutorGroup ex(ExecutorOptions{.shards = 3});
  EXPECT_EQ(ex.shard_count(), 3u);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_EQ(ex.next_shard(), i % 3);
}

TEST(ExecutorGroup, StatsCountDispatches) {
  CCStats stats;
  ExecutorGroup ex(ExecutorOptions{.shards = 1}, &stats);
  for (int i = 0; i < 10; ++i) ex.submit(0, [] {}, 1);
  ex.shutdown();
  EXPECT_EQ(stats.exec_dispatched.value(), 10u);
  EXPECT_EQ(stats.exec_enqueues.value(), 10u);
  EXPECT_GE(stats.exec_batches.value(), 1u);
  EXPECT_GE(stats.exec_batch_size.count(), 1u);
}

// --- Runtime / Context integration ---------------------------------------

struct RecorderMp : Microprotocol {
  explicit RecorderMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [this](Context&, const Message& msg) {
      std::unique_lock lk(mu);
      seen.push_back(msg.as<int>());
    });
  }
  const Handler* handler = nullptr;
  std::mutex mu;
  std::vector<int> seen;
};

RuntimeOptions exec_opts() {
  RuntimeOptions o;
  o.policy = CCPolicy::kVCABasic;
  o.dispatch_impl = DispatchImpl::kExecutor;
  return o;
}

TEST(ExecutorDispatch, AsyncTriggersOfOneMpRunInIssueOrder) {
  // Every async dispatch to one microprotocol lands on its shard; the
  // shard's FIFO makes issue order the execution order, with no gate or
  // lock involved.
  Stack stack;
  auto& mp = stack.emplace<RecorderMp>("rec");
  EventType ev("Rec");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, exec_opts());
  ASSERT_NE(rt.executor_group(), nullptr);
  auto h = rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) {
    for (int i = 0; i < 64; ++i) ctx.async_trigger(ev, Message::of(i));
  });
  h.wait();
  rt.drain();
  ASSERT_EQ(mp.seen.size(), 64u);
  for (int i = 0; i < 64; ++i) EXPECT_EQ(mp.seen[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(rt.controller().stats().gate_waits.value(), 0u);
}

TEST(ExecutorDispatch, FanoutBatchesOneNodePerTargetShard) {
  // async_trigger_all must enqueue one node per distinct target shard,
  // not one per handler.
  Stack stack;
  std::vector<ProbeMp*> mps;
  std::vector<const Microprotocol*> members;
  EventType ev("Fan");
  for (int i = 0; i < 6; ++i) {
    auto& mp = stack.emplace<ProbeMp>("fan" + std::to_string(i));
    stack.bind(ev, *mp.handler);
    mps.push_back(&mp);
    members.push_back(&mp);
  }
  Runtime rt(stack, exec_opts());
  ExecutorGroup* ex = rt.executor_group();
  ASSERT_NE(ex, nullptr);
  std::vector<bool> shard_hit(ex->shard_count(), false);
  for (ProbeMp* mp : mps) shard_hit[ex->shard_of(mp->id().value())] = true;
  std::size_t distinct = 0;
  for (bool hit : shard_hit) distinct += hit ? 1 : 0;

  auto h = rt.spawn_isolated(Isolation::basic(members),
                             [&](Context& ctx) { ctx.async_trigger_all(ev); });
  h.wait();
  rt.drain();
  for (ProbeMp* mp : mps) EXPECT_EQ(mp->calls.load(), 1);
  const CCStats& stats = rt.controller().stats();
  // One enqueue for the root task plus one per distinct handler shard.
  EXPECT_EQ(stats.exec_enqueues.value(), 1u + distinct);
  EXPECT_EQ(rt.stats().handler_calls.value(), 6u);
}

TEST(ExecutorDispatch, NoConflictWorkloadNeverParksOrSlowAdmits) {
  // Single-mp computations on disjoint microprotocols: the admission fast
  // path and shard FIFO keep both slow admissions and gate parks at zero.
  Stack stack;
  std::vector<ProbeMp*> mps;
  for (int i = 0; i < 16; ++i) {
    mps.push_back(&stack.emplace<ProbeMp>("own" + std::to_string(i)));
  }
  RuntimeOptions opts = exec_opts();
  opts.record_trace = true;
  Runtime rt(stack, opts);
  std::vector<EventType> evs;
  evs.reserve(mps.size());
  for (std::size_t i = 0; i < mps.size(); ++i) {
    evs.emplace_back("Own" + std::to_string(i));
    stack.bind(evs[i], *mps[i]->handler);
  }
  std::vector<ComputationHandle> hs;
  for (std::size_t i = 0; i < mps.size(); ++i) {
    hs.push_back(rt.spawn_isolated(Isolation::basic({mps[i]}), [&, i](Context& ctx) {
      ctx.trigger(evs[i]);
      ctx.async_trigger(evs[i]);
    }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  const CCStats& stats = rt.controller().stats();
  EXPECT_EQ(stats.admit_slow.value(), 0u);
  EXPECT_EQ(stats.gate_waits.value(), 0u);
  EXPECT_GE(stats.exec_dispatched.value(), 16u);
  testing::expect_isolated(rt);
}

TEST(ExecutorDispatch, BlockedHandlerHandsOffConsumerRole) {
  // A handler parked in an instrumented wait must not wedge its shard:
  // the consumer role moves to a replacement and queued/new computations
  // keep completing.
  Stack stack;
  auto& blocker = stack.emplace<BlockingMp>("blocker");
  auto& probe = stack.emplace<ProbeMp>("probe");
  EventType block_ev("Block");
  EventType probe_ev("Probe");
  stack.bind(block_ev, *blocker.handler);
  stack.bind(probe_ev, *probe.handler);
  Runtime rt(stack, exec_opts());
  auto blocked = rt.spawn_isolated(Isolation::basic({&blocker}),
                                   [&](Context& ctx) { ctx.trigger(block_ev); });
  blocker.started.wait();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 6; ++i) {
    hs.push_back(rt.spawn_isolated(Isolation::basic({&probe}),
                                   [&](Context& ctx) { ctx.trigger(probe_ev); }));
  }
  for (auto& h : hs) h.wait();
  EXPECT_EQ(probe.calls.load(), 6);
  EXPECT_GE(rt.controller().stats().exec_handoffs.value(), 1u);
  blocker.release.set();
  blocked.wait();
  rt.drain();
}

struct Boom {};

struct ThrowerMp : Microprotocol {
  explicit ThrowerMp(std::string name) : Microprotocol(std::move(name)) {
    boom = &register_handler("boom", [](Context&, const Message&) { throw Boom{}; });
    ok = &register_handler("ok", [this](Context&, const Message&) { ok_calls.fetch_add(1); });
  }
  const Handler* boom = nullptr;
  const Handler* ok = nullptr;
  std::atomic<int> ok_calls{0};
};

TEST(ExecutorDispatch, ThrowingQueuedTaskDoesNotWedgeShard) {
  // A queued async handler that throws is recorded on its computation and
  // the shard keeps draining — the cancel-while-queued shape: the work is
  // abandoned by its computation, never by the queue.
  Stack stack;
  auto& thrower = stack.emplace<ThrowerMp>("thrower");
  EventType boom_ev("Boom");
  EventType ok_ev("Ok");
  stack.bind(boom_ev, *thrower.boom);
  stack.bind(ok_ev, *thrower.ok);
  Runtime rt(stack, exec_opts());
  auto failing = rt.spawn_isolated(Isolation::basic({&thrower}),
                                   [&](Context& ctx) { ctx.async_trigger(boom_ev); });
  EXPECT_THROW(failing.wait(), Boom);
  auto ok = rt.spawn_isolated(Isolation::basic({&thrower}),
                              [&](Context& ctx) { ctx.trigger(ok_ev); });
  ok.wait();
  EXPECT_EQ(thrower.ok_calls.load(), 1);
  rt.drain();
}

TEST(ExecutorDispatch, DiagDumpNamesExecutorShards) {
  Stack stack;
  stack.emplace<ProbeMp>("p");
  Runtime rt(stack, exec_opts());
  const diag::Dump dump = diag::WaitRegistry::instance().snapshot();
  bool found = false;
  for (const diag::ExecutorGroupState& g : dump.executors) {
    if (g.group == static_cast<const void*>(rt.executor_group())) {
      found = true;
      EXPECT_EQ(g.shards.size(), 8u);  // auto default
    }
  }
  EXPECT_TRUE(found) << "executor group missing from the wait-registry dump";
  EXPECT_NE(dump.to_text().find("executor"), std::string::npos);
  EXPECT_NE(dump.to_json().find("\"executors\""), std::string::npos);
}

class NullHook final : public StepHook {
 public:
  std::uint64_t on_task_submitted(ComputationId) override { return 0; }
  void on_task_started(ComputationId, std::uint64_t) override {}
  void on_task_finished(ComputationId) override {}
  void step_point(ComputationId, const char*) override {}
  void resync(ComputationId) override {}
};

TEST(ExecutorDispatch, ResolutionHonoursOptionAndStepHook) {
  Stack stack;
  stack.emplace<ProbeMp>("p");
  {
    RuntimeOptions o;
    o.dispatch_impl = DispatchImpl::kElasticPool;
    Runtime rt(stack, o);
    EXPECT_EQ(rt.dispatch_impl(), DispatchImpl::kElasticPool);
    EXPECT_EQ(rt.executor_group(), nullptr);
  }
  {
    RuntimeOptions o;
    o.dispatch_impl = DispatchImpl::kExecutor;
    Runtime rt(stack, o);
    EXPECT_EQ(rt.dispatch_impl(), DispatchImpl::kExecutor);
    EXPECT_NE(rt.executor_group(), nullptr);
  }
  {
    // Exploration always forces the pool, whatever was requested.
    NullHook hook;
    RuntimeOptions o;
    o.dispatch_impl = DispatchImpl::kExecutor;
    o.step_hook = &hook;
    Runtime rt(stack, o);
    EXPECT_EQ(rt.dispatch_impl(), DispatchImpl::kElasticPool);
    EXPECT_EQ(rt.executor_group(), nullptr);
  }
}

}  // namespace
}  // namespace samoa
