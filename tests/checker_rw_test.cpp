// Read/write-aware checker semantics (the VCArw extension) and the
// abort-aware trace handling (TSO), on hand-crafted traces.
#include <gtest/gtest.h>

#include "verify/checker.hpp"

namespace samoa {
namespace {

const ComputationId kA{1}, kB{2}, kC{3};
const MicroprotocolId mpP{1};
const HandlerId hR{1}, hW{2};

struct T {
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;

  T& spawn(ComputationId k) {
    events.push_back({seq++, TracePhase::kSpawn, k, {}, {}, false});
    return *this;
  }
  T& done(ComputationId k) {
    events.push_back({seq++, TracePhase::kDone, k, {}, {}, false});
    return *this;
  }
  T& abort(ComputationId k) {
    events.push_back({seq++, TracePhase::kAbort, k, {}, {}, false});
    return *this;
  }
  T& start(ComputationId k, HandlerId h, bool ro) {
    events.push_back({seq++, TracePhase::kStart, k, mpP, h, ro});
    return *this;
  }
  T& end(ComputationId k, HandlerId h, bool ro) {
    events.push_back({seq++, TracePhase::kEnd, k, mpP, h, ro});
    return *this;
  }
};

TEST(CheckerRW, OverlappingReadsAreIsolated) {
  T t;
  t.spawn(kA).spawn(kB);
  t.start(kA, hR, true).start(kB, hR, true).end(kA, hR, true).end(kB, hR, true);
  t.done(kA).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_FALSE(report.serial);
}

TEST(CheckerRW, ReadOverlappingWriteViolates) {
  T t;
  t.spawn(kA).spawn(kB);
  t.start(kA, hR, true).start(kB, hW, false).end(kA, hR, true).end(kB, hW, false);
  t.done(kA).done(kB);
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerRW, WriteOverlappingWriteViolates) {
  T t;
  t.spawn(kA).spawn(kB);
  t.start(kA, hW, false).start(kB, hW, false).end(kB, hW, false).end(kA, hW, false);
  t.done(kA).done(kB);
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerRW, ReaderSandwichedBetweenWritesIsOrdered) {
  // W_A < R_B < W_C: edges A->B->C, no cycle.
  T t;
  t.spawn(kA).spawn(kB).spawn(kC);
  t.start(kA, hW, false).end(kA, hW, false);
  t.start(kB, hR, true).end(kB, hR, true);
  t.start(kC, hW, false).end(kC, hW, false);
  t.done(kA).done(kB).done(kC);
  auto report = check_isolation(t.events);
  ASSERT_TRUE(report.isolated) << report.summary();
  ASSERT_EQ(report.equivalent_serial_order.size(), 3u);
  EXPECT_EQ(report.equivalent_serial_order.front(), kA);
  EXPECT_EQ(report.equivalent_serial_order.back(), kC);
}

TEST(CheckerRW, ReadWriteCycleDetected) {
  // A reads-then B writes on p... and B's earlier write precedes A's later
  // read elsewhere — emulate with two accesses on the same mp creating
  // A->B (A's read before B's write) and B->A (B's other write before A's
  // other read).
  T t;
  t.spawn(kA).spawn(kB);
  t.start(kA, hR, true).end(kA, hR, true);    // A before B (conflict w/ B's write)
  t.start(kB, hW, false).end(kB, hW, false);  // edge A->B
  t.start(kA, hR, true).end(kA, hR, true);    // A again after B: edge B->A
  t.done(kA).done(kB);
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAbort, AbortedAccessesAreIgnored) {
  // kA's first pass overlaps kB, then aborts and re-runs cleanly; only the
  // post-abort accesses count.
  T t;
  t.spawn(kA).spawn(kB);
  t.start(kA, hW, false).start(kB, hW, false).end(kA, hW, false).end(kB, hW, false);
  t.abort(kA);  // everything kA did above was rolled back
  t.start(kA, hW, false).end(kA, hW, false);
  t.done(kA).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(CheckerAbort, PostAbortViolationStillDetected) {
  T t;
  t.spawn(kA).spawn(kB);
  t.abort(kA);
  t.start(kA, hW, false).start(kB, hW, false).end(kA, hW, false).end(kB, hW, false);
  t.done(kA).done(kB);
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAbort, OnlyLastAbortMatters) {
  T t;
  t.spawn(kA);
  t.start(kA, hW, false).end(kA, hW, false);
  t.abort(kA);
  t.start(kA, hW, false).end(kA, hW, false);
  t.abort(kA);
  t.start(kA, hW, false).end(kA, hW, false);
  t.done(kA);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

}  // namespace
}  // namespace samoa
