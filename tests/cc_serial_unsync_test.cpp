// Tests for the two baselines: the Appia-like serial controller (FIFO, one
// computation at a time) and the Cactus-like unsynchronised controller
// (free interleaving — demonstrably capable of isolation violations, which
// is exactly what it is for).
#include <gtest/gtest.h>

#include <thread>

#include "proto/fig1.hpp"
#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;
using testing::ProbeMp;

TEST(Serial, ComputationsRunOneAtATimeInFifoOrder) {
  Stack stack;
  std::vector<int> order;
  std::mutex mu;
  class Tag : public Microprotocol {
   public:
    Tag(std::vector<int>& order, std::mutex& mu) : Microprotocol("tag") {
      handler = &register_handler("run", [&order, &mu](Context&, const Message& m) {
        std::unique_lock lock(mu);
        order.push_back(m.as<int>());
      });
    }
    const Handler* handler;
  };
  auto& mp = stack.emplace<Tag>(order, mu);
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kSerial});
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 10; ++i) {
    hs.push_back(rt.spawn_isolated(Isolation::basic({&mp}), [&, i](Context& ctx) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      ctx.trigger(ev, Message::of(i));
    }));
  }
  for (auto& h : hs) h.wait();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(Serial, DisjointComputationsStillSerialized) {
  // The whole point of the baseline: even computations with disjoint M
  // sets cannot overlap (the paper's r2 is impossible in Appia).
  Stack stack;
  auto& a = stack.emplace<BlockingMp>("a");
  auto& b = stack.emplace<ProbeMp>("b");
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.handler);
  stack.bind(evb, *b.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kSerial});

  auto k1 = rt.spawn_isolated(Isolation::basic({&a}), [&](Context& ctx) { ctx.trigger(eva); });
  a.started.wait();
  auto k2 = rt.spawn_isolated(Isolation::basic({&b}), [&](Context& ctx) { ctx.trigger(evb); });
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_EQ(b.calls.load(), 0) << "serial baseline overlapped two computations";
  a.release.set();
  k1.wait();
  k2.wait();
  EXPECT_EQ(b.calls.load(), 1);
}

TEST(Serial, TraceIsSerial) {
  proto::Fig1Protocol proto;
  Runtime rt(proto.stack(), RuntimeOptions{.policy = CCPolicy::kSerial, .record_trace = true});
  proto.spawn(rt, proto::Fig1Msg{.tag = 'a'});
  proto.spawn(rt, proto::Fig1Msg{.tag = 'b'});
  rt.drain();
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated);
  EXPECT_TRUE(report.serial) << "serial controller produced a concurrent run";
}

TEST(Unsync, AllowsOverlappingComputations) {
  Stack stack;
  auto& a = stack.emplace<BlockingMp>("a");
  auto& b = stack.emplace<ProbeMp>("b");
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.handler);
  stack.bind(evb, *b.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kUnsync});
  auto k1 = rt.spawn_isolated(Isolation::basic({&a}), [&](Context& ctx) { ctx.trigger(eva); });
  a.started.wait();
  auto k2 = rt.spawn_isolated(Isolation::basic({&b}), [&](Context& ctx) { ctx.trigger(evb); });
  k2.wait();  // completes while k1 still parked
  EXPECT_EQ(b.calls.load(), 1);
  a.release.set();
  k1.wait();
}

TEST(Unsync, CanViolateIsolationOnSharedState) {
  // Two computations race on the same microprotocol; the unsynchronised
  // baseline lets their executions overlap, which the checker reports.
  Stack stack;
  auto& shared = stack.emplace<ProbeMp>("shared", std::chrono::microseconds(2000));
  EventType ev("Run");
  stack.bind(ev, *shared.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kUnsync, .record_trace = true});
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 8; ++i) {
    hs.push_back(rt.spawn_isolated(Isolation::basic({&shared}),
                                   [&](Context& ctx) { ctx.trigger(ev); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  // On any machine this overlaps with overwhelming probability; assert the
  // *detector* fires when executions truly overlapped.
  if (shared.max_in_flight.load() > 1) {
    auto report = check_isolation(rt.trace()->snapshot());
    EXPECT_FALSE(report.isolated) << "checker missed a real overlap";
  }
}

TEST(Unsync, IgnoresDeclarations) {
  // Cactus-like: no membership validation at all.
  Stack stack;
  auto& a = stack.emplace<ProbeMp>("a");
  auto& b = stack.emplace<ProbeMp>("b");
  EventType evb("B");
  stack.bind(evb, *b.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kUnsync});
  auto h = rt.spawn_isolated(Isolation::basic({&a}),
                             [&](Context& ctx) { ctx.trigger(evb); });
  EXPECT_NO_THROW(h.wait());
  EXPECT_EQ(b.calls.load(), 1);
}

TEST(Policies, ToStringNames) {
  EXPECT_STREQ(to_string(CCPolicy::kSerial), "serial");
  EXPECT_STREQ(to_string(CCPolicy::kUnsync), "unsync");
  EXPECT_STREQ(to_string(CCPolicy::kVCABasic), "VCAbasic");
  EXPECT_STREQ(to_string(CCPolicy::kVCABound), "VCAbound");
  EXPECT_STREQ(to_string(CCPolicy::kVCARoute), "VCAroute");
}

TEST(Policies, ControllerFactoryMatchesNames) {
  for (auto p : {CCPolicy::kSerial, CCPolicy::kUnsync, CCPolicy::kVCABasic, CCPolicy::kVCABound,
                 CCPolicy::kVCARoute}) {
    auto c = make_controller(p);
    EXPECT_STREQ(c->name(), to_string(p));
  }
}

}  // namespace
}  // namespace samoa
