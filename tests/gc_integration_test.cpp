// Integration tests: full group-communication stacks on the simulated
// network — reliable broadcast, atomic broadcast total order, membership
// changes, crashes, lossy links, and the Section 3 view-change race.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "gc/group_node.hpp"
#include "verify/checker.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// Default options with calm periodic timers, so the suite stays robust
/// under sanitizer slowdowns (aggressive 2ms ticks measure the scheduler,
/// not the protocols).
inline GcOptions calm_opts() {
  GcOptions o;
  o.heartbeat_interval = std::chrono::microseconds(20'000);
  o.fd_timeout = std::chrono::microseconds(200'000);
  o.cs_retry_interval = std::chrono::microseconds(50'000);
  o.cs_retry_timeout = std::chrono::microseconds(100'000);
  return o;
}

struct Cluster {
  SimNetwork net;
  std::vector<std::unique_ptr<GroupNode>> nodes;

  explicit Cluster(int n, GcOptions opts = calm_opts(),
                   LinkOptions links = LinkOptions{.base_latency = std::chrono::microseconds(100)},
                   std::uint64_t seed = 1)
      : net(links, seed) {
    for (int i = 0; i < n; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  }

  /// Start all nodes in the view of the first `in_view` of them (default
  /// all).
  void start(int in_view = -1) {
    if (in_view < 0) in_view = static_cast<int>(nodes.size());
    std::vector<SiteId> members;
    for (int i = 0; i < in_view; ++i) members.push_back(nodes[i]->id());
    const View initial(1, members);
    for (int i = 0; i < in_view; ++i) nodes[i]->start(initial);
    // Nodes outside the initial view start alone, awaiting a ViewInstall.
    for (std::size_t i = in_view; i < nodes.size(); ++i) {
      nodes[i]->start(View(1, {nodes[i]->id()}));
    }
  }

  GroupNode& operator[](std::size_t i) { return *nodes[i]; }
};

TEST(GcIntegration, RbcastReachesAllSites) {
  Cluster c(3);
  c.start();
  c[0].rbcast("hello").wait();
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().rdelivered().size() != 1) return false;
    }
    return true;
  }));
  for (auto& n : c.nodes) {
    EXPECT_EQ(n->sink().rdelivered()[0].data, "hello");
  }
}

TEST(GcIntegration, RbcastManyFromAllSites) {
  Cluster c(3);
  c.start();
  constexpr int kPerSite = 5;
  for (int i = 0; i < kPerSite; ++i) {
    for (auto& n : c.nodes) n->rbcast("m" + std::to_string(i));
  }
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().rdelivered().size() != 3 * kPerSite) return false;
    }
    return true;
  }));
}

TEST(GcIntegration, AbcastDeliversInTotalOrder) {
  Cluster c(3);
  c.start();
  constexpr int kPerSite = 4;
  for (int i = 0; i < kPerSite; ++i) {
    for (auto& n : c.nodes) n->abcast("a" + std::to_string(i));
  }
  ASSERT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 3 * kPerSite) return false;
    }
    return true;
  })) << "not all abcasts delivered";

  const auto reference = c[0].sink().adelivered();
  for (auto& n : c.nodes) {
    const auto got = n->sink().adelivered();
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, reference[i].id) << "total order diverged at position " << i;
    }
  }
}

TEST(GcIntegration, AbcastSurvivesLossyLinks) {
  Cluster c(3, calm_opts(),
            LinkOptions{.base_latency = std::chrono::microseconds(100),
                        .drop_probability = 0.05},
            /*seed=*/99);
  c.start();
  for (int i = 0; i < 3; ++i) c[0].abcast("x" + std::to_string(i));
  EXPECT_TRUE(wait_until(
      [&] {
        for (auto& n : c.nodes) {
          if (n->sink().adelivered().size() != 3) return false;
        }
        return true;
      },
      std::chrono::milliseconds(30000)))
      << "abcast did not converge under 5% loss";
}

TEST(GcIntegration, JoinInstallsConsistentViews) {
  Cluster c(4);
  c.start(3);  // node 3 starts outside the view
  c[0].request_join(c[3].id());
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->membership().view_snapshot().size() != 4) return false;
    }
    return true;
  }));
  for (auto& n : c.nodes) {
    EXPECT_TRUE(n->membership().view_snapshot().contains(c[3].id()));
  }
  // The joined site now participates in broadcasts.
  c[1].rbcast("after-join");
  EXPECT_TRUE(wait_until([&] { return c[3].sink().rdelivered().size() == 1; }));
}

TEST(GcIntegration, LeaveShrinksView) {
  Cluster c(3);
  c.start();
  c[0].request_leave(c[2].id());
  EXPECT_TRUE(wait_until([&] {
    return c[0].membership().view_snapshot().size() == 2 &&
           c[1].membership().view_snapshot().size() == 2;
  }));
  EXPECT_FALSE(c[0].membership().view_snapshot().contains(c[2].id()));
}

TEST(GcIntegration, ViewHistoryConsistentAcrossMembers) {
  Cluster c(4);
  c.start(3);
  c[0].request_join(c[3].id());
  ASSERT_TRUE(wait_until([&] {
    return c[0].membership().view_snapshot().size() == 4 &&
           c[1].membership().view_snapshot().size() == 4 &&
           c[2].membership().view_snapshot().size() == 4;
  }));
  c[1].request_leave(c[2].id());
  ASSERT_TRUE(wait_until([&] {
    return c[0].membership().view_snapshot().size() == 3 &&
           c[1].membership().view_snapshot().size() == 3;
  }));
  // All old members saw the same sequence of views (ids 1, 2, 3).
  const auto h0 = c[0].membership().installed_views();
  const auto h1 = c[1].membership().installed_views();
  ASSERT_GE(h0.size(), 3u);
  // Skip the empty pre-start view at history[0].
  std::vector<std::uint64_t> ids0, ids1;
  for (const auto& v : h0) {
    if (v.id() > 0) ids0.push_back(v.id());
  }
  for (const auto& v : h1) {
    if (v.id() > 0) ids1.push_back(v.id());
  }
  EXPECT_EQ(ids0, ids1);
}

TEST(GcIntegration, FailureDetectorSuspectsCrashedSite) {
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(1000);
  opts.fd_timeout = std::chrono::microseconds(8000);
  Cluster c(3, opts);
  c.start();
  // Let heartbeats flow first so last_heard is seeded with real evidence.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  c[2].crash();
  EXPECT_TRUE(wait_until([&] { return c[0].fd().is_suspected(c[2].id()); }));
  EXPECT_TRUE(wait_until([&] { return c[1].fd().is_suspected(c[2].id()); }));
  EXPECT_FALSE(c[0].fd().is_suspected(c[1].id()));
}

TEST(GcIntegration, AbcastSurvivesNonCoordinatorCrash) {
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(1000);
  opts.fd_timeout = std::chrono::microseconds(8000);
  Cluster c(3, opts);
  c.start();
  // Crash the last member: the coordinator of instance 1 (member_at(1)) is
  // nodes[1]; crash nodes[2], a plain acceptor — majority {0,1} remains.
  c[2].crash();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  c[0].abcast("post-crash");
  EXPECT_TRUE(wait_until(
      [&] {
        return c[0].sink().adelivered().size() == 1 && c[1].sink().adelivered().size() == 1;
      },
      std::chrono::milliseconds(30000)))
      << "abcast did not decide despite a live majority";
}

TEST(GcIntegration, RelCommRetransmitsThroughLoss) {
  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1500);
  Cluster c(2, opts,
            LinkOptions{.base_latency = std::chrono::microseconds(50),
                        .drop_probability = 0.4},
            /*seed=*/1234);
  c.start();
  for (int i = 0; i < 5; ++i) c[0].rbcast("r" + std::to_string(i));
  EXPECT_TRUE(wait_until(
      [&] { return c[1].sink().rdelivered().size() == 5; },
      std::chrono::milliseconds(30000)))
      << "reliable delivery failed under 40% loss; retransmissions="
      << c[0].rel_comm().retransmissions();
  EXPECT_GT(c[0].rel_comm().retransmissions() + c[1].rel_comm().retransmissions(), 0u);
}

// The Section 3 experiment in miniature. A new site joins while a member
// floods broadcasts. Under an isolation-preserving policy every message
// broadcast *after* the join is installed reaches the new site. Under the
// unsynchronised baseline (with per-microprotocol manual locks — the
// Cactus-style discipline), the widened view-change window lets RelCast
// address the new view while RelComm still filters with the old one, and
// messages are silently discarded.
// Returns the total number of messages RelComm silently discarded because
// its (possibly stale) view did not contain the target — the paper's exact
// failure mode ("the message will be silently discarded since RelComm does
// not know about s"). Returns -1 if the join never completed.
std::int64_t discarded_in_race(CCPolicy policy, bool manual_locks,
                               std::chrono::microseconds window) {
  GcOptions opts;
  opts.policy = policy;
  opts.manual_locks = manual_locks;
  opts.view_change_delay = window;
  // The unsync baseline's lost-message race needs computations to overlap
  // at the OS level; the executor's per-mp shards serialize them away.
  if (policy == CCPolicy::kUnsync) opts.dispatch_impl = DispatchImpl::kElasticPool;
  Cluster c(4, opts);
  c.start(3);

  c[0].request_join(c[3].id());
  // Flood rbcasts from node 1 while the view change propagates; each one
  // that runs inside the race window meets RelCast(new view) +
  // RelComm(old view) under the unsynchronised baseline.
  for (int i = 0; i < 40; ++i) {
    c[1].rbcast("flood" + std::to_string(i));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  if (!wait_until([&] { return c[3].membership().view_snapshot().size() == 4; })) return -1;
  // Let in-flight floods settle, then stop the periodic timers so the
  // nodes can actually drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (auto& n : c.nodes) n->stop_timers();
  for (auto& n : c.nodes) n->drain();
  std::int64_t discarded = 0;
  for (auto& n : c.nodes) {
    discarded += static_cast<std::int64_t>(n->rel_comm().discarded_out_of_view());
  }
  return discarded;
}

TEST(GcIntegration, ViewChangeRaceLosesMessagesOnlyWithoutIsolation) {
  // Under an isolation-preserving policy every computation sees RelCast
  // and RelComm with *consistent* views, so RelComm never drops a message
  // RelCast addressed: zero out-of-view discards. Under the Cactus-style
  // baseline (free interleaving + per-microprotocol manual locks) the
  // widened window makes discards overwhelmingly likely; scheduling noise
  // means an occasional lucky run, so it is retried.
  const auto lost_isolated =
      discarded_in_race(CCPolicy::kVCABasic, false, std::chrono::microseconds(2000));
  ASSERT_GE(lost_isolated, 0) << "join never completed under VCAbasic";
  EXPECT_EQ(lost_isolated, 0) << "VCAbasic let RelComm see a stale view";

  std::int64_t lost_unsync = 0;
  for (int attempt = 0; attempt < 5 && lost_unsync <= 0; ++attempt) {
    lost_unsync = discarded_in_race(CCPolicy::kUnsync, true, std::chrono::microseconds(2000));
  }
  EXPECT_GT(lost_unsync, 0)
      << "expected the unsynchronised baseline to discard messages in the race window";
}

TEST(GcIntegration, NodeTracesAreIsolatedUnderVCABasic) {
  GcOptions opts = calm_opts();
  opts.record_trace = true;
  Cluster c(3, opts);
  c.start();
  for (int i = 0; i < 3; ++i) c[0].abcast("t" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 3) return false;
    }
    return true;
  }));
  for (auto& n : c.nodes) n->stop_timers();
  for (auto& n : c.nodes) {
    n->drain();
    auto report = check_isolation(n->runtime().trace()->snapshot());
    EXPECT_TRUE(report.isolated) << "site " << n->id().value() << ": " << report.summary();
  }
}

TEST(GcIntegration, SerialPolicyAlsoWorksEndToEnd) {
  GcOptions opts = calm_opts();
  opts.policy = CCPolicy::kSerial;
  Cluster c(3, opts);
  c.start();
  c[0].abcast("serial-1");
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 1) return false;
    }
    return true;
  }));
}

TEST(GcIntegration, VCABoundPolicyAlsoWorksEndToEnd) {
  GcOptions opts = calm_opts();
  opts.policy = CCPolicy::kVCABound;
  Cluster c(3, opts);
  c.start();
  c[0].abcast("bound-1");
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 1) return false;
    }
    return true;
  }));
}

TEST(GcIntegration, SerializedWirePathWorksEndToEnd) {
  // Full marshalling: every message crosses the network as bytes through
  // net/codec and is decoded on delivery — abcast still totally orders.
  GcOptions opts = calm_opts();
  opts.serialize_wire = true;
  Cluster c(3, opts);
  c.start();
  for (int i = 0; i < 3; ++i) c[0].abcast("wire" + std::to_string(i));
  c[1].rbcast("plain");
  EXPECT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 3) return false;
      if (n->sink().rdelivered().size() != 1) return false;
    }
    return true;
  }));
  const auto ref = c[0].sink().adelivered();
  for (auto& n : c.nodes) {
    const auto got = n->sink().adelivered();
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].id, ref[i].id);
  }
}

TEST(GcIntegration, SerializedJoinCarriesViewInstall) {
  GcOptions opts = calm_opts();
  opts.serialize_wire = true;
  Cluster c(4, opts);
  c.start(3);
  c[0].request_join(c[3].id());
  EXPECT_TRUE(wait_until([&] {
    return c[3].membership().view_snapshot().size() == 4;
  })) << "ViewInstall did not survive the marshalling path";
}

TEST(GcIntegration, VCARouteIsRejectedWithClearError) {
  GcOptions opts;
  opts.policy = CCPolicy::kVCARoute;
  SimNetwork net;
  GroupNode node(net, opts);
  EXPECT_THROW(node.start(View(1, {node.id()})), ConfigError);
}

}  // namespace
}  // namespace samoa::gc
