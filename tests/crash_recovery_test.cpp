// Crash–recovery & rejoin tests.
//
// Covers the restart lifecycle end to end on real-time clusters (restart
// wipes volatile state, the membership join + ViewInstall state transfer
// catches the new incarnation up to the group's ordering floor), the
// RelComm view-change GC (the eager drop-and-count is a regression test:
// against the old tick-time-only eviction it fails), SimNetwork recover(),
// and the virtual-synchrony checker itself on hand-built traces.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "gc/group_node.hpp"
#include "net/sim_network.hpp"
#include "verify/vs_checker.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

struct Fleet {
  SimNetwork net;
  std::vector<std::unique_ptr<GroupNode>> nodes;

  explicit Fleet(GcOptions opts = {},
                 LinkOptions links = LinkOptions{.base_latency = std::chrono::microseconds(80)},
                 int n = 3)
      : net(links, 5) {
    for (int i = 0; i < n; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
    std::vector<SiteId> members;
    for (auto& node : nodes) members.push_back(node->id());
    for (auto& node : nodes) node->start(View(1, members));
  }
};

// --- SimNetwork recover ---------------------------------------------------

TEST(SimRecover, CrashedSiteDeliversAgainAfterRecover) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(50)}, 7);
  std::atomic<int> got{0};
  const SiteId a = net.add_site([](const net::Packet&) {});
  const SiteId b = net.add_site([&](const net::Packet&) { got.fetch_add(1); });
  net.crash(b);
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got.load(), 0) << "crashed site received a packet";
  net.recover(b);
  net.send(a, b, Message::of(2));
  net.drain();
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(net.stats().recoveries.value(), 1u);
}

// --- RelComm eviction GC (regression) ------------------------------------

TEST(RelCommRecovery, ViewChangeDropsAndCountsWithoutRetransmitTick) {
  // Regression: unacked/backlog entries for an evicted peer must be
  // dropped — and counted — AT the view change, not lazily at the next
  // retransmit tick. The retransmit interval is set far beyond the test
  // horizon, so with the old tick-time-only eviction the buffer stays
  // non-empty and this test fails.
  GcOptions opts;
  opts.retransmit_interval = std::chrono::seconds(3600);
  opts.retransmit_timeout = std::chrono::seconds(3600);
  opts.retransmit_backoff_cap = std::chrono::seconds(3600);
  Fleet f(opts);
  f.net.set_partitioned(f.nodes[0]->id(), f.nodes[2]->id(), true);
  f.nodes[0]->rbcast("to-all");
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->rel_comm().unacked_in_flight() > 0; }));
  EXPECT_EQ(f.nodes[0]->rel_comm().view_change_drops(), 0u);
  f.nodes[0]->request_leave(f.nodes[2]->id());
  EXPECT_TRUE(wait_until([&] { return f.nodes[0]->rel_comm().unacked_in_flight() == 0; }))
      << "view change did not flush entries for the evicted peer";
  EXPECT_GT(f.nodes[0]->rel_comm().view_change_drops(), 0u)
      << "dropped entries were not counted";
}

TEST(RelCommRecovery, RetransmissionsToEvictedPeerStopGrowing) {
  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1500);
  Fleet f(opts);
  const SiteId dead = f.nodes[2]->id();
  f.nodes[2]->crash();
  f.nodes[0]->rbcast("into-the-void");
  // The dead peer never acks: the backoff retransmitter starts resending.
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->rel_comm().retransmissions_to(dead) > 0; }));
  f.nodes[0]->request_leave(dead);
  ASSERT_TRUE(wait_until([&] {
    return !f.nodes[0]->membership().view_snapshot().contains(dead);
  }));
  // After the eviction view change the counter must freeze.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const auto frozen = f.nodes[0]->rel_comm().retransmissions_to(dead);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(f.nodes[0]->rel_comm().retransmissions_to(dead), frozen)
      << "still retransmitting to an evicted peer";
}

// --- Restart + rejoin lifecycle ------------------------------------------

TEST(Rejoin, RestartedNodeContinuesWithoutReplay) {
  Fleet f;
  GroupNode& victim = *f.nodes[2];
  const SiteId vid = victim.id();

  f.nodes[0]->abcast("a0");
  f.nodes[1]->abcast("a1");
  ASSERT_TRUE(wait_until([&] { return victim.sink().adelivered().size() == 2; }));

  victim.crash();
  f.nodes[0]->request_leave(vid);
  ASSERT_TRUE(wait_until([&] {
    return !f.nodes[0]->membership().view_snapshot().contains(vid) &&
           !f.nodes[1]->membership().view_snapshot().contains(vid);
  }));

  // Traffic the crashed node misses for good: state transfer hands the
  // rejoiner the ordering floor, not the message history.
  f.nodes[1]->abcast("b0");
  ASSERT_TRUE(wait_until([&] { return f.nodes[0]->sink().adelivered().size() == 3; }));

  victim.restart();
  EXPECT_EQ(victim.incarnation(), 1u);
  EXPECT_TRUE(victim.sink().adelivered().empty()) << "restart kept volatile state";
  f.nodes[0]->request_join(vid);
  ASSERT_TRUE(wait_until([&] { return victim.membership().view_snapshot().contains(vid); }))
      << "restarted node never rejoined";
  EXPECT_EQ(victim.rejoins_completed(), 1u);

  // Post-rejoin traffic reaches the new incarnation; the pre-crash history
  // is not replayed.
  f.nodes[0]->abcast("c0");
  f.nodes[1]->abcast("c1");
  ASSERT_TRUE(wait_until([&] { return victim.sink().adelivered().size() == 2; }));
  // c0/c1 race through consensus from different origins, so either decided
  // order is legal — what matters is that the rejoined incarnation gets
  // exactly these two, in the group's order (checked against node 0 below).
  const auto got = victim.sink().adelivered();
  EXPECT_TRUE((got[0].data == "c0" && got[1].data == "c1") ||
              (got[0].data == "c1" && got[1].data == "c0"))
      << got[0].data << ", " << got[1].data;

  // All three sites settle on the same tail, and the union of every
  // incarnation's trace satisfies virtual synchrony.
  ASSERT_TRUE(wait_until([&] {
    const auto r0 = f.nodes[0]->sink().delivery_records();
    const auto r1 = f.nodes[1]->sink().delivery_records();
    const auto r2 = victim.sink().delivery_records();
    return r0.size() == 5 && r1.size() == 5 && !r2.empty() &&
           r0.back().id == r1.back().id && r0.back().id == r2.back().id;
  }));
  {
    const auto r0 = f.nodes[0]->sink().delivery_records();
    const auto r2 = victim.sink().delivery_records();
    ASSERT_EQ(r2.size(), 2u);
    EXPECT_EQ(r2[0].id, r0[3].id);
    EXPECT_EQ(r2[1].id, r0[4].id);
  }
  std::vector<verify::IncarnationTrace> traces;
  for (auto& n : f.nodes) {
    for (auto& t : n->vs_traces()) traces.push_back(std::move(t));
  }
  const auto report = verify::check_virtual_synchrony(traces);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.incarnations_checked, 4u);  // 3 sites + the archived lifetime
}

// --- Virtual-synchrony checker self-tests --------------------------------

verify::DeliveryRecord rec(std::uint64_t ordinal, std::uint64_t id, std::uint64_t view,
                           std::string data) {
  return verify::DeliveryRecord{id, view, ordinal, std::move(data)};
}

verify::IncarnationTrace trace(std::uint32_t site, std::uint64_t inc, bool crashed,
                               std::vector<verify::DeliveryRecord> recs) {
  verify::IncarnationTrace t;
  t.site = SiteId(site);
  t.incarnation = inc;
  t.crashed = crashed;
  t.deliveries = std::move(recs);
  return t;
}

TEST(VsChecker, AcceptsCrashRejoinContinuation) {
  const auto report = verify::check_virtual_synchrony({
      trace(1, 0, false, {rec(1, 11, 1, "x"), rec(2, 12, 1, "y"), rec(3, 13, 2, "z")}),
      trace(2, 0, true, {rec(1, 11, 1, "x")}),             // crashed early
      trace(2, 1, false, {rec(3, 13, 2, "z")}),            // rejoined past the gap
  });
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.reference_length, 3u);
}

TEST(VsChecker, RejectsDuplicateReplayAcrossIncarnations) {
  const auto report = verify::check_virtual_synchrony({
      trace(1, 0, false, {rec(1, 11, 1, "x"), rec(2, 12, 1, "y"), rec(3, 13, 2, "z")}),
      trace(2, 0, true, {rec(1, 11, 1, "x"), rec(2, 12, 1, "y")}),
      trace(2, 1, false, {rec(2, 12, 1, "y"), rec(3, 13, 2, "z")}),  // y delivered twice
  });
  EXPECT_FALSE(report.ok()) << "duplicate replay across incarnations not detected";
}

TEST(VsChecker, RejectsHoleInTrace) {
  const auto report = verify::check_virtual_synchrony({
      trace(1, 0, false, {rec(1, 11, 1, "x"), rec(2, 12, 1, "y"), rec(3, 13, 1, "z")}),
      trace(2, 0, false, {rec(1, 11, 1, "x"), rec(3, 13, 1, "z")}),  // skipped y
  });
  EXPECT_FALSE(report.ok()) << "delivery hole not detected";
}

TEST(VsChecker, RejectsLostStableDeliveryAtLiveSite) {
  const auto report = verify::check_virtual_synchrony({
      trace(1, 0, false, {rec(1, 11, 1, "x"), rec(2, 12, 1, "y")}),
      trace(2, 0, false, {rec(1, 11, 1, "x")}),  // alive but stopped short
  });
  EXPECT_FALSE(report.ok()) << "lost delivery at a live site not detected";
}

TEST(VsChecker, RejectsSameViewDisagreement) {
  const auto report = verify::check_virtual_synchrony({
      trace(1, 0, false, {rec(1, 11, 1, "x")}),
      trace(2, 0, false, {rec(1, 11, 2, "x")}),  // same message, different view
  });
  EXPECT_FALSE(report.ok()) << "same-view agreement violation not detected";
}

}  // namespace
}  // namespace samoa::gc
