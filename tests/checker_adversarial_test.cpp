// Adversarial tests for the isolation oracle: hand-built traces chosen to
// probe the checker's blind spots (interleaving shapes, long precedence
// cycles, rollback exclusion, incompleteness modes), plus a fuzz loop that
// *constructs* traces containing a conflicting overlap and asserts the
// oracle never calls them isolated. The schedule explorer trusts this
// oracle unconditionally — a false "isolated" here silently disarms the
// whole exploration harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "gc/view.hpp"
#include "test_support.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"
#include "verify/vs_checker.hpp"

namespace samoa {
namespace {

struct TraceBuilder {
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;

  TraceBuilder& spawn(ComputationId k) {
    events.push_back({seq++, TracePhase::kSpawn, k, {}, {}});
    return *this;
  }
  TraceBuilder& done(ComputationId k) {
    events.push_back({seq++, TracePhase::kDone, k, {}, {}});
    return *this;
  }
  TraceBuilder& abort(ComputationId k) {
    events.push_back({seq++, TracePhase::kAbort, k, {}, {}});
    return *this;
  }
  TraceBuilder& start(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    events.push_back({seq++, TracePhase::kStart, k, mp, h, ro});
    return *this;
  }
  TraceBuilder& end(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    events.push_back({seq++, TracePhase::kEnd, k, mp, h, ro});
    return *this;
  }
  TraceBuilder& exec(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    return start(k, mp, h, ro).end(k, mp, h, ro);
  }
};

ComputationId comp(std::uint32_t n) { return ComputationId{n}; }
MicroprotocolId mp(std::uint32_t n) { return MicroprotocolId{n}; }
HandlerId h(std::uint32_t n) { return HandlerId{n}; }

// --- A-B-A interleavings -------------------------------------------------

TEST(CheckerAdversarial, AbaInterleavingViolatesEvenWithoutOverlap) {
  // No intervals overlap; the violation is purely block contiguity.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.exec(comp(1), mp(1), h(1));
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated) << report.summary();
}

TEST(CheckerAdversarial, AbaAcrossDistinctHandlersOfOneMpViolates) {
  // The unit of conflict is the microprotocol, not the handler: A-B-A with
  // three different handlers of the same mp is still unserialisable.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(2));
  t.exec(comp(1), mp(1), h(3));
  t.done(comp(1)).done(comp(2));
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAdversarial, AbaWhereMiddleBlockWasRolledBackIsIsolated) {
  // The middle access belongs to a computation that aborted *after* it:
  // rolled back, never visible, so the trace serialises.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.abort(comp(2));  // rolls back the access above
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));  // the retry, after comp(1)'s block
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(CheckerAdversarial, AbaAfterAbortStillViolates) {
  // The same A-B-A shape but *after* the abort: rollback must not excuse
  // post-restart accesses.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.abort(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.exec(comp(1), mp(1), h(1));
  t.done(comp(1)).done(comp(2));
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAdversarial, ReadOnlyAbaCommutesAndIsIsolated) {
  // A-B-A where every access is declared read-only: all pairs commute, no
  // conflict edges, serialisable.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1), /*ro=*/true);
  t.exec(comp(2), mp(1), h(1), /*ro=*/true);
  t.exec(comp(1), mp(1), h(1), /*ro=*/true);
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

// --- long precedence cycles ---------------------------------------------

/// Ring of `n` computations: comp i precedes comp i+1 on microprotocol i,
/// and comp n-1 precedes comp 0 on microprotocol n-1 — a length-n cycle
/// with no overlapping intervals anywhere.
std::vector<TraceEvent> precedence_ring(std::uint32_t n) {
  TraceBuilder t;
  for (std::uint32_t i = 0; i < n; ++i) t.spawn(comp(i + 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    t.exec(comp(i + 1), mp(i + 1), h(i + 1));
    t.exec(comp((i + 1) % n + 1), mp(i + 1), h(i + 1));
  }
  for (std::uint32_t i = 0; i < n; ++i) t.done(comp(i + 1));
  return t.events;
}

TEST(CheckerAdversarial, PrecedenceCyclesOfLength3To6Detected) {
  for (std::uint32_t n = 3; n <= 6; ++n) {
    auto report = check_isolation(precedence_ring(n));
    EXPECT_FALSE(report.isolated) << "cycle length " << n << " not detected";
    EXPECT_TRUE(report.equivalent_serial_order.empty());
  }
}

TEST(CheckerAdversarial, BrokenRingSerialises) {
  // Same ring shape minus the closing edge: must serialise (guards against
  // the cycle check over-firing on long chains).
  TraceBuilder t;
  const std::uint32_t n = 5;
  for (std::uint32_t i = 0; i < n; ++i) t.spawn(comp(i + 1));
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.exec(comp(i + 1), mp(i + 1), h(i + 1));
    t.exec(comp(i + 2), mp(i + 1), h(i + 1));
  }
  for (std::uint32_t i = 0; i < n; ++i) t.done(comp(i + 1));
  auto report = check_isolation(t.events);
  ASSERT_TRUE(report.isolated) << report.summary();
  ASSERT_EQ(report.equivalent_serial_order.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(report.equivalent_serial_order[i], comp(i + 1));
  }
}

// --- allow_incomplete, both ways ----------------------------------------

TEST(CheckerAdversarial, IncompleteAccessStrictVsLax) {
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(2), h(2));
  t.start(comp(2), mp(3), h(3));  // still running when the trace was cut
  EXPECT_FALSE(check_isolation(t.events, /*allow_incomplete=*/false).isolated);
  EXPECT_TRUE(check_isolation(t.events, /*allow_incomplete=*/true).isolated);
}

TEST(CheckerAdversarial, LaxModeStillCatchesCompleteViolations) {
  // allow_incomplete forgives pending accesses, nothing else: a completed
  // overlap in the same trace must still be flagged.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2)).spawn(comp(3));
  t.start(comp(1), mp(1), h(1)).start(comp(2), mp(1), h(1));
  t.end(comp(1), mp(1), h(1)).end(comp(2), mp(1), h(1));
  t.start(comp(3), mp(2), h(2));  // pending, unrelated
  EXPECT_FALSE(check_isolation(t.events, /*allow_incomplete=*/true).isolated);
}

// --- fuzz: the oracle must never bless an overlap -----------------------

/// Generate a random serial background (each computation's accesses
/// contiguous per mp, no overlaps), then splice in one guaranteed
/// read-write overlap between two fresh computations on a fresh
/// microprotocol. Whatever else the trace contains, "isolated" would be a
/// false negative.
std::vector<TraceEvent> trace_with_planted_overlap(Rng& rng) {
  TraceBuilder t;
  const std::uint32_t background = 2 + static_cast<std::uint32_t>(rng.next_below(4));
  const std::uint32_t shared_mps = 1 + static_cast<std::uint32_t>(rng.next_below(3));
  // Background computations run strictly one after another.
  for (std::uint32_t k = 0; k < background; ++k) {
    t.spawn(comp(100 + k));
    const std::uint32_t accesses = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    for (std::uint32_t a = 0; a < accesses; ++a) {
      const auto m = static_cast<std::uint32_t>(rng.next_below(shared_mps));
      t.exec(comp(100 + k), mp(50 + m), h(50 + m), rng.chance(0.3));
    }
    t.done(comp(100 + k));
  }
  // The planted pair: overlapping write accesses on their own mp, spliced
  // at a random position by reassigning sequence numbers afterwards.
  TraceBuilder planted;
  planted.seq = t.seq;
  planted.spawn(comp(1)).spawn(comp(2));
  planted.start(comp(1), mp(9), h(9));
  planted.start(comp(2), mp(9), h(9));
  if (rng.chance(0.5)) {
    planted.end(comp(1), mp(9), h(9)).end(comp(2), mp(9), h(9));
  } else {
    planted.end(comp(2), mp(9), h(9)).end(comp(1), mp(9), h(9));
  }
  planted.done(comp(1)).done(comp(2));

  // Interleave the planted pair into the background at a random offset,
  // keeping relative order within each list (stable seq renumbering).
  std::vector<TraceEvent> all = t.events;
  const std::size_t at = rng.next_below(all.size() + 1);
  all.insert(all.begin() + static_cast<std::ptrdiff_t>(at), planted.events.begin(),
             planted.events.end());
  for (std::size_t i = 0; i < all.size(); ++i) all[i].seq = i;
  return all;
}

TEST(CheckerAdversarial, FuzzedOverlapTracesAreNeverIsolated) {
  const std::uint64_t seed = testing::test_seed(20260807);
  Rng rng(seed);
  for (int round = 0; round < 300; ++round) {
    const auto events = trace_with_planted_overlap(rng);
    auto report = check_isolation(events, /*allow_incomplete=*/true);
    ASSERT_FALSE(report.isolated)
        << "oracle blessed a trace with a planted overlap (seed=" << seed << " round=" << round
        << ")\n"
        << TraceRecorder::format(events);
  }
}

// --- vs_checker at fleet scale -------------------------------------------
//
// Hand-built incarnation traces for a 120-site fleet going through the
// SWIM churn shape — suspicion-driven evictions, refuted members rejoining
// as new incarnations — probing the virtual-synchrony checker's agreement,
// window, duplicate and view invariants at a scale where a quadratic or
// per-pair formulation would have been written off. The consistent
// baseline must pass; each single-site corruption must be caught.

namespace vs_adversarial {

using samoa::gc::View;
using samoa::verify::DeliveryRecord;
using samoa::verify::IncarnationTrace;
using samoa::verify::check_virtual_synchrony;

constexpr int kSites = 120;
constexpr int kEvicted = 12;    // sites 108..119 evicted in view 2
constexpr int kRejoined = 6;    // sites 108..113 re-added in view 3

DeliveryRecord rec(std::uint64_t n, std::uint64_t view_id) {
  return DeliveryRecord{n, view_id, n, "m" + std::to_string(n)};
}

// Message n lives in view 1 (n <= 8), view 2 (n <= 14) or view 3.
std::uint64_t view_of(std::uint64_t n) { return n <= 8 ? 1 : n <= 14 ? 2 : 3; }

std::vector<IncarnationTrace> churn_fleet_traces() {
  std::vector<SiteId> all;
  for (int i = 0; i < kSites; ++i) all.push_back(SiteId{static_cast<std::uint32_t>(i)});
  std::vector<SiteId> v2(all.begin(), all.end() - kEvicted);
  std::vector<SiteId> v3 = v2;
  for (int i = 0; i < kRejoined; ++i) v3.push_back(all[kSites - kEvicted + i]);
  const View view1(1, all), view2(2, v2), view3(3, v3);

  std::vector<IncarnationTrace> traces;
  // Survivors: full history across all three views.
  for (int i = 0; i < kSites - kEvicted; ++i) {
    IncarnationTrace t;
    t.site = all[i];
    t.views = {view1, view2, view3};
    for (std::uint64_t n = 1; n <= 20; ++n) t.deliveries.push_back(rec(n, view_of(n)));
    traces.push_back(std::move(t));
  }
  // Evicted sites: a crashed first incarnation holding the view-1 prefix.
  for (int i = kSites - kEvicted; i < kSites; ++i) {
    IncarnationTrace t;
    t.site = all[i];
    t.crashed = true;
    t.views = {view1};
    for (std::uint64_t n = 1; n <= 8; ++n) t.deliveries.push_back(rec(n, 1));
    traces.push_back(std::move(t));
  }
  // Rejoined sites: a second incarnation re-entering at view 3 with a gap
  // (messages 9..14 happened while it was out — allowed), alive at end.
  for (int i = kSites - kEvicted; i < kSites - kEvicted + kRejoined; ++i) {
    IncarnationTrace t;
    t.site = all[i];
    t.incarnation = 1;
    t.views = {view3};
    for (std::uint64_t n = 15; n <= 20; ++n) t.deliveries.push_back(rec(n, 3));
    traces.push_back(std::move(t));
  }
  return traces;
}

TEST(VsCheckerAdversarial, ConsistentChurnFleetAtScalePasses) {
  const auto traces = churn_fleet_traces();
  const auto report = check_virtual_synchrony(traces);
  EXPECT_TRUE(report.ok()) << report.describe();
  EXPECT_EQ(report.incarnations_checked, static_cast<std::size_t>(kSites + kRejoined));
  EXPECT_EQ(report.reference_length, 20u);
}

TEST(VsCheckerAdversarial, OneSiteDeliveringInStaleViewIsCaught) {
  auto traces = churn_fleet_traces();
  // Site 57 claims message 12 was delivered in view 3; everyone else says
  // view 2 — the same-view agreement the view-change flush exists for.
  traces[57].deliveries[11].view_id = 3;
  const auto report = check_virtual_synchrony(traces);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.violations.front().find("same-view agreement"), std::string::npos)
      << report.describe();
}

TEST(VsCheckerAdversarial, RejoinedIncarnationReenteringEarlyIsCaught) {
  auto traces = churn_fleet_traces();
  // Rejoined site 108#1 starts its window at message 8 — which its crashed
  // incarnation 108#0 already delivered: a duplicate across incarnations.
  IncarnationTrace& rejoined = traces[kSites];  // first second-incarnation trace
  ASSERT_EQ(rejoined.incarnation, 1u);
  rejoined.deliveries.clear();
  for (std::uint64_t n = 8; n <= 20; ++n) rejoined.deliveries.push_back(rec(n, view_of(n)));
  const auto report = check_virtual_synchrony(traces);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("duplicate delivery") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.describe();
}

TEST(VsCheckerAdversarial, SuspicionHoleInsideWindowIsCaught) {
  auto traces = churn_fleet_traces();
  // Site 31 skipped message 10 mid-window (e.g. dropped while wrongly
  // suspected) but kept delivering afterwards: a hole, not a window.
  auto& d = traces[31].deliveries;
  d.erase(d.begin() + 9);
  const auto report = check_virtual_synchrony(traces);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("window consistency") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.describe();
}

TEST(VsCheckerAdversarial, ConflictingMemberSetsForOneViewIdAreCaught) {
  auto traces = churn_fleet_traces();
  // Site 99 installed a "view 3" missing one rejoined member — two member
  // sets under one view id.
  std::vector<SiteId> wrong = traces[99].views[2].members();
  wrong.pop_back();
  traces[99].views[2] = View(3, wrong);
  const auto report = check_virtual_synchrony(traces);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("view agreement") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.describe();
}

TEST(VsCheckerAdversarial, DivergentOrdinalAtScaleIsCaught) {
  auto traces = churn_fleet_traces();
  // One site slots message 12 at a different total-order position.
  traces[3].deliveries[11].ordinal = 99;
  const auto report = check_virtual_synchrony(traces);
  ASSERT_FALSE(report.ok());
  bool found = false;
  for (const auto& v : report.violations) {
    if (v.find("total order") != std::string::npos) found = true;
  }
  EXPECT_TRUE(found) << report.describe();
}

}  // namespace vs_adversarial

}  // namespace
}  // namespace samoa
