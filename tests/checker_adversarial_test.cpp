// Adversarial tests for the isolation oracle: hand-built traces chosen to
// probe the checker's blind spots (interleaving shapes, long precedence
// cycles, rollback exclusion, incompleteness modes), plus a fuzz loop that
// *constructs* traces containing a conflicting overlap and asserts the
// oracle never calls them isolated. The schedule explorer trusts this
// oracle unconditionally — a false "isolated" here silently disarms the
// whole exploration harness.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "test_support.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace samoa {
namespace {

struct TraceBuilder {
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;

  TraceBuilder& spawn(ComputationId k) {
    events.push_back({seq++, TracePhase::kSpawn, k, {}, {}});
    return *this;
  }
  TraceBuilder& done(ComputationId k) {
    events.push_back({seq++, TracePhase::kDone, k, {}, {}});
    return *this;
  }
  TraceBuilder& abort(ComputationId k) {
    events.push_back({seq++, TracePhase::kAbort, k, {}, {}});
    return *this;
  }
  TraceBuilder& start(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    events.push_back({seq++, TracePhase::kStart, k, mp, h, ro});
    return *this;
  }
  TraceBuilder& end(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    events.push_back({seq++, TracePhase::kEnd, k, mp, h, ro});
    return *this;
  }
  TraceBuilder& exec(ComputationId k, MicroprotocolId mp, HandlerId h, bool ro = false) {
    return start(k, mp, h, ro).end(k, mp, h, ro);
  }
};

ComputationId comp(std::uint32_t n) { return ComputationId{n}; }
MicroprotocolId mp(std::uint32_t n) { return MicroprotocolId{n}; }
HandlerId h(std::uint32_t n) { return HandlerId{n}; }

// --- A-B-A interleavings -------------------------------------------------

TEST(CheckerAdversarial, AbaInterleavingViolatesEvenWithoutOverlap) {
  // No intervals overlap; the violation is purely block contiguity.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.exec(comp(1), mp(1), h(1));
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated) << report.summary();
}

TEST(CheckerAdversarial, AbaAcrossDistinctHandlersOfOneMpViolates) {
  // The unit of conflict is the microprotocol, not the handler: A-B-A with
  // three different handlers of the same mp is still unserialisable.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(2));
  t.exec(comp(1), mp(1), h(3));
  t.done(comp(1)).done(comp(2));
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAdversarial, AbaWhereMiddleBlockWasRolledBackIsIsolated) {
  // The middle access belongs to a computation that aborted *after* it:
  // rolled back, never visible, so the trace serialises.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.abort(comp(2));  // rolls back the access above
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));  // the retry, after comp(1)'s block
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(CheckerAdversarial, AbaAfterAbortStillViolates) {
  // The same A-B-A shape but *after* the abort: rollback must not excuse
  // post-restart accesses.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.abort(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(1), h(1));
  t.exec(comp(1), mp(1), h(1));
  t.done(comp(1)).done(comp(2));
  EXPECT_FALSE(check_isolation(t.events).isolated);
}

TEST(CheckerAdversarial, ReadOnlyAbaCommutesAndIsIsolated) {
  // A-B-A where every access is declared read-only: all pairs commute, no
  // conflict edges, serialisable.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1), /*ro=*/true);
  t.exec(comp(2), mp(1), h(1), /*ro=*/true);
  t.exec(comp(1), mp(1), h(1), /*ro=*/true);
  t.done(comp(1)).done(comp(2));
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

// --- long precedence cycles ---------------------------------------------

/// Ring of `n` computations: comp i precedes comp i+1 on microprotocol i,
/// and comp n-1 precedes comp 0 on microprotocol n-1 — a length-n cycle
/// with no overlapping intervals anywhere.
std::vector<TraceEvent> precedence_ring(std::uint32_t n) {
  TraceBuilder t;
  for (std::uint32_t i = 0; i < n; ++i) t.spawn(comp(i + 1));
  for (std::uint32_t i = 0; i < n; ++i) {
    t.exec(comp(i + 1), mp(i + 1), h(i + 1));
    t.exec(comp((i + 1) % n + 1), mp(i + 1), h(i + 1));
  }
  for (std::uint32_t i = 0; i < n; ++i) t.done(comp(i + 1));
  return t.events;
}

TEST(CheckerAdversarial, PrecedenceCyclesOfLength3To6Detected) {
  for (std::uint32_t n = 3; n <= 6; ++n) {
    auto report = check_isolation(precedence_ring(n));
    EXPECT_FALSE(report.isolated) << "cycle length " << n << " not detected";
    EXPECT_TRUE(report.equivalent_serial_order.empty());
  }
}

TEST(CheckerAdversarial, BrokenRingSerialises) {
  // Same ring shape minus the closing edge: must serialise (guards against
  // the cycle check over-firing on long chains).
  TraceBuilder t;
  const std::uint32_t n = 5;
  for (std::uint32_t i = 0; i < n; ++i) t.spawn(comp(i + 1));
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.exec(comp(i + 1), mp(i + 1), h(i + 1));
    t.exec(comp(i + 2), mp(i + 1), h(i + 1));
  }
  for (std::uint32_t i = 0; i < n; ++i) t.done(comp(i + 1));
  auto report = check_isolation(t.events);
  ASSERT_TRUE(report.isolated) << report.summary();
  ASSERT_EQ(report.equivalent_serial_order.size(), n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(report.equivalent_serial_order[i], comp(i + 1));
  }
}

// --- allow_incomplete, both ways ----------------------------------------

TEST(CheckerAdversarial, IncompleteAccessStrictVsLax) {
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2));
  t.exec(comp(1), mp(1), h(1));
  t.exec(comp(2), mp(2), h(2));
  t.start(comp(2), mp(3), h(3));  // still running when the trace was cut
  EXPECT_FALSE(check_isolation(t.events, /*allow_incomplete=*/false).isolated);
  EXPECT_TRUE(check_isolation(t.events, /*allow_incomplete=*/true).isolated);
}

TEST(CheckerAdversarial, LaxModeStillCatchesCompleteViolations) {
  // allow_incomplete forgives pending accesses, nothing else: a completed
  // overlap in the same trace must still be flagged.
  TraceBuilder t;
  t.spawn(comp(1)).spawn(comp(2)).spawn(comp(3));
  t.start(comp(1), mp(1), h(1)).start(comp(2), mp(1), h(1));
  t.end(comp(1), mp(1), h(1)).end(comp(2), mp(1), h(1));
  t.start(comp(3), mp(2), h(2));  // pending, unrelated
  EXPECT_FALSE(check_isolation(t.events, /*allow_incomplete=*/true).isolated);
}

// --- fuzz: the oracle must never bless an overlap -----------------------

/// Generate a random serial background (each computation's accesses
/// contiguous per mp, no overlaps), then splice in one guaranteed
/// read-write overlap between two fresh computations on a fresh
/// microprotocol. Whatever else the trace contains, "isolated" would be a
/// false negative.
std::vector<TraceEvent> trace_with_planted_overlap(Rng& rng) {
  TraceBuilder t;
  const std::uint32_t background = 2 + static_cast<std::uint32_t>(rng.next_below(4));
  const std::uint32_t shared_mps = 1 + static_cast<std::uint32_t>(rng.next_below(3));
  // Background computations run strictly one after another.
  for (std::uint32_t k = 0; k < background; ++k) {
    t.spawn(comp(100 + k));
    const std::uint32_t accesses = 1 + static_cast<std::uint32_t>(rng.next_below(4));
    for (std::uint32_t a = 0; a < accesses; ++a) {
      const auto m = static_cast<std::uint32_t>(rng.next_below(shared_mps));
      t.exec(comp(100 + k), mp(50 + m), h(50 + m), rng.chance(0.3));
    }
    t.done(comp(100 + k));
  }
  // The planted pair: overlapping write accesses on their own mp, spliced
  // at a random position by reassigning sequence numbers afterwards.
  TraceBuilder planted;
  planted.seq = t.seq;
  planted.spawn(comp(1)).spawn(comp(2));
  planted.start(comp(1), mp(9), h(9));
  planted.start(comp(2), mp(9), h(9));
  if (rng.chance(0.5)) {
    planted.end(comp(1), mp(9), h(9)).end(comp(2), mp(9), h(9));
  } else {
    planted.end(comp(2), mp(9), h(9)).end(comp(1), mp(9), h(9));
  }
  planted.done(comp(1)).done(comp(2));

  // Interleave the planted pair into the background at a random offset,
  // keeping relative order within each list (stable seq renumbering).
  std::vector<TraceEvent> all = t.events;
  const std::size_t at = rng.next_below(all.size() + 1);
  all.insert(all.begin() + static_cast<std::ptrdiff_t>(at), planted.events.begin(),
             planted.events.end());
  for (std::size_t i = 0; i < all.size(); ++i) all[i].seq = i;
  return all;
}

TEST(CheckerAdversarial, FuzzedOverlapTracesAreNeverIsolated) {
  const std::uint64_t seed = testing::test_seed(20260807);
  Rng rng(seed);
  for (int round = 0; round < 300; ++round) {
    const auto events = trace_with_planted_overlap(rng);
    auto report = check_isolation(events, /*allow_incomplete=*/true);
    ASSERT_FALSE(report.isolated)
        << "oracle blessed a trace with a planted overlap (seed=" << seed << " round=" << round
        << ")\n"
        << TraceRecorder::format(events);
  }
}

}  // namespace
}  // namespace samoa
