// Tests for VCAbound (paper Section 5.2): window-based gating, Rule 4
// early release after the budget is used, exhaustion errors, and the extra
// parallelism over VCAbasic the paper claims.
#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;
using testing::ProbeMp;

RuntimeOptions bound_opts(bool trace = false) {
  RuntimeOptions o;
  o.policy = CCPolicy::kVCABound;
  o.record_trace = trace;
  return o;
}

TEST(VCABound, RequiresBoundDeclaration) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, bound_opts());
  EXPECT_THROW(rt.spawn_isolated(Isolation::basic({&mp}), [](Context&) {}), ConfigError);
}

TEST(VCABound, RunsWithinBudget) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, bound_opts());
  rt.spawn_isolated(Isolation::bound({{&mp, 3}}), [&](Context& ctx) {
      for (int i = 0; i < 3; ++i) ctx.trigger(ev);
    }).wait();
  EXPECT_EQ(mp.calls.load(), 3);
}

TEST(VCABound, ExhaustedBoundThrows) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, bound_opts());
  auto h = rt.spawn_isolated(Isolation::bound({{&mp, 2}}), [&](Context& ctx) {
    for (int i = 0; i < 3; ++i) ctx.trigger(ev);
  });
  EXPECT_THROW(h.wait(), IsolationError);
  EXPECT_EQ(mp.calls.load(), 2);
}

TEST(VCABound, UndeclaredMicroprotocolThrows) {
  Stack stack;
  auto& a = stack.emplace<ProbeMp>("a");
  auto& b = stack.emplace<ProbeMp>("b");
  EventType evb("B");
  stack.bind(evb, *b.handler);
  Runtime rt(stack, bound_opts());
  auto h = rt.spawn_isolated(Isolation::bound({{&a, 1}}),
                             [&](Context& ctx) { ctx.trigger(evb); });
  EXPECT_THROW(h.wait(), IsolationError);
}

TEST(VCABound, EarlyReleaseAfterBudgetUsed) {
  // The headline claim of Section 5.2: once k1 visited p the declared
  // number of times, k2 may proceed on p *while k1 is still running*.
  Stack stack;
  auto& shared = stack.emplace<ProbeMp>("shared");
  auto& slow = stack.emplace<BlockingMp>("slow");
  EventType evs("S"), evb("Blk");
  stack.bind(evs, *shared.handler);
  stack.bind(evb, *slow.handler);
  Runtime rt(stack, bound_opts());

  auto k1 = rt.spawn_isolated(Isolation::bound({{&shared, 1}, {&slow, 1}}), [&](Context& ctx) {
    ctx.trigger(evs);  // budget for `shared` now exhausted -> lv upgraded
    ctx.trigger(evb);  // park k1 inside `slow`
  });
  slow.started.wait();
  ASSERT_EQ(shared.calls.load(), 1);

  // k2 touches only `shared`; under VCAbasic it would wait for k1 to
  // complete, under VCAbound it must proceed immediately.
  auto k2 = rt.spawn_isolated(Isolation::bound({{&shared, 1}}),
                              [&](Context& ctx) { ctx.trigger(evs); });
  EXPECT_TRUE(k2.wait_for(std::chrono::milliseconds(5000)))
      << "VCAbound failed to release `shared` before k1 completed";
  EXPECT_EQ(shared.calls.load(), 2);

  slow.release.set();
  k1.wait();
}

TEST(VCABound, UnderusedBudgetReleasedAtCompletion) {
  // k1 declares bound 3 but visits once: k2 must wait for k1's completion
  // (Rule 3), then run.
  Stack stack;
  auto& shared = stack.emplace<ProbeMp>("shared");
  auto& park = stack.emplace<BlockingMp>("park");
  EventType evs("S"), evp("P");
  stack.bind(evs, *shared.handler);
  stack.bind(evp, *park.handler);
  Runtime rt(stack, bound_opts());

  auto k1 = rt.spawn_isolated(Isolation::bound({{&shared, 3}, {&park, 1}}), [&](Context& ctx) {
    ctx.trigger(evs);
    ctx.trigger(evp);
  });
  park.started.wait();

  std::atomic<bool> k2_done{false};
  auto k2 = rt.spawn_isolated(Isolation::bound({{&shared, 1}}), [&](Context& ctx) {
    ctx.trigger(evs);
    k2_done.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(k2_done.load()) << "k2 ran before k1 completed despite unused budget";

  park.release.set();
  k1.wait();
  k2.wait();
  EXPECT_TRUE(k2_done.load());
}

TEST(VCABound, WindowsChainAcrossThreeComputations) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p", std::chrono::microseconds(200));
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, bound_opts(/*trace=*/true));
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 3; ++i) {
    hs.push_back(rt.spawn_isolated(Isolation::bound({{&mp, 2}}), [&](Context& ctx) {
      ctx.trigger(ev);
      ctx.trigger(ev);
    }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(mp.calls.load(), 6);
  testing::expect_isolated(rt);
}

TEST(VCABound, StressIsIsolated) {
  Stack stack;
  auto& a = stack.emplace<ProbeMp>("a", std::chrono::microseconds(30));
  auto& b = stack.emplace<ProbeMp>("b", std::chrono::microseconds(30));
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.handler);
  stack.bind(evb, *b.handler);
  Runtime rt(stack, bound_opts(/*trace=*/true));
  Rng rng(99);
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 50; ++i) {
    const auto na = 1 + rng.next_below(3);
    const auto nb = 1 + rng.next_below(3);
    hs.push_back(rt.spawn_isolated(
        Isolation::bound({{&a, static_cast<std::uint32_t>(na)},
                          {&b, static_cast<std::uint32_t>(nb)}}),
        [&, na, nb](Context& ctx) {
          for (std::uint64_t j = 0; j < na; ++j) ctx.async_trigger(eva);
          for (std::uint64_t j = 0; j < nb; ++j) ctx.async_trigger(evb);
        }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  testing::expect_isolated(rt);
}

TEST(VCABound, ExhaustionDoesNotWedgeSuccessors) {
  // A computation that dies on bound exhaustion must still release its
  // windows so later computations proceed.
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, bound_opts());
  auto bad = rt.spawn_isolated(Isolation::bound({{&mp, 1}}), [&](Context& ctx) {
    ctx.trigger(ev);
    ctx.trigger(ev);  // throws
  });
  EXPECT_THROW(bad.wait(), IsolationError);
  auto good = rt.spawn_isolated(Isolation::bound({{&mp, 1}}),
                                [&](Context& ctx) { ctx.trigger(ev); });
  EXPECT_TRUE(good.wait_for(std::chrono::milliseconds(5000)));
}

}  // namespace
}  // namespace samoa
