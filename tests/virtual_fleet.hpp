// Scripted virtual-time chaos harness for the group-communication fleet.
//
// Shared by gc_chaos_test (convergence assertions) and determinism_test
// (same-seed replay comparison). The whole scenario — traffic bursts, a
// transient partition, a crash — is scheduled at fixed *virtual* times on
// a harness TimerService driven by the same time::VirtualClock as the
// SimNetwork and every node, so a run burns zero real time in sleeps and
// is a pure function of its seed.
//
// Scheduling discipline: every scripted callback performs exactly ONE
// node API call (one spawned computation). The clock's dispatch turns plus
// the runtime's activity pins then serialize all computations, which is
// what makes the message streams — and the seeded RNG draws they trigger —
// replay identically.
#pragma once

#include <chrono>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/fault_plan.hpp"
#include "gc/group_node.hpp"
#include "time/clock.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "verify/vs_checker.hpp"

namespace samoa::gc::testing {

struct FleetOutcome {
  bool converged = false;   // all survivors complete before the virtual horizon
  long converged_at_us = -1;  // virtual time at which the checker saw it
  // Per surviving site (0 .. kSites-2), in delivery order.
  std::vector<std::vector<AppMessage>> adelivered;
  std::vector<std::vector<std::string>> cdelivered;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
};

constexpr int kFleetSites = 5;
constexpr int kFleetAbcasts = 10;
constexpr int kFleetCcasts = 6;

inline FleetOutcome run_chaos_fleet(std::uint64_t seed) {
  using namespace std::chrono;

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.heartbeat_interval = microseconds(2000);
  opts.fd_timeout = microseconds(20000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = 0.05},
                      seed, &clock);
  net::TimerService script(&clock);  // harness-owned scenario timers

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kFleetSites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());

  FleetOutcome out;
  OneShotEvent done;

  const auto all_survivors_complete = [&] {
    for (int i = 0; i < kFleetSites - 1; ++i) {
      if (nodes[i]->sink().adelivered().size() != kFleetAbcasts) return false;
      if (nodes[i]->sink().cdelivered().size() != kFleetCcasts) return false;
    }
    return true;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();  // includes the timer whose callback is running
  };

  {
    // Freeze virtual time while the scenario is armed: nothing fires until
    // every node started and every scripted event is scheduled.
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    Rng rng(seed);
    int sent_abcasts = 0;
    // First traffic burst.
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(100 + 200 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Transient partition between two random distinct sites, healed ~20ms
    // (virtual) later.
    const auto pa = rng.next_below(kFleetSites);
    const auto pb = (pa + 1 + rng.next_below(kFleetSites - 1)) % kFleetSites;
    script.schedule(microseconds(1500), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), true);
    });
    script.schedule(microseconds(22000), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), false);
    });
    // Causal stream from one origin, and a second abcast burst, both while
    // the partition is up.
    for (int i = 0; i < kFleetCcasts; ++i) {
      const std::string payload = "c" + std::to_string(i);
      script.schedule(microseconds(1600 + 150 * i),
                      [&nodes, payload] { nodes[2]->ccast(payload); });
    }
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(2600 + 300 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Crash the last site after the heal (never the coordinator of the
    // first consensus instances; a majority survives).
    script.schedule(microseconds(23000), [&nodes] { nodes[kFleetSites - 1]->crash(); });

    // Convergence checker: the shutdown point must itself be a scripted
    // (virtual-time) event, or the collected stats would depend on real
    // teardown timing.
    script.schedule_periodic(microseconds(1000), [&] {
      if (!all_survivors_complete()) return;
      out.converged = true;
      out.converged_at_us = static_cast<long>(
          duration_cast<microseconds>(clock.now().time_since_epoch()).count());
      shut_down_fleet();
      done.set();
    });
    // Horizon failsafe: give up after 2 virtual seconds.
    script.schedule(microseconds(2'000'000), [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint: drained packets can complete computations that
  // send more packets; loop until a full round adds no network activity.
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  for (int i = 0; i < kFleetSites - 1; ++i) {
    out.adelivered.push_back(nodes[i]->sink().adelivered());
    out.cdelivered.push_back(nodes[i]->sink().cdelivered());
  }
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  return out;
}

// --- Crash/recovery fleet -------------------------------------------------
//
// A second scripted scenario exercising the full restart/rejoin machinery:
// five sites, three traffic bursts, a transient partition, a loss burst,
// and TWO crash → evict → restart → rejoin cycles (site 4 while the
// partition is up, site 3 under the loss burst). All faults are driven by
// a chaos::ChaosEngine armed with one declarative chaos::FaultPlan; node
// restarts and membership requests enter the plan as labelled calls.
// The outcome carries everything the chaos, determinism and bench callers
// need: the virtual-synchrony traces of every incarnation, serialized
// trace/view lines for byte-comparison, the bounded-retransmission probes,
// and the observability counters.

struct RecoveryOutcome {
  bool converged = false;
  long converged_at_us = -1;
  long rejoin4_requested_us = -1;   // virtual time of site 4's re-join request
  long rejoin4_first_delivery_us = -1;  // first post-rejoin totally-ordered delivery
  std::vector<verify::IncarnationTrace> traces;  // all sites, all incarnations
  // Serialized forms for byte-identical replay comparison.
  std::vector<std::string> trace_lines;  // one line per incarnation
  std::vector<std::string> view_lines;   // one line per site: installed view ids+members
  std::vector<std::uint64_t> retransmissions;  // per site, summed over incarnations
  // Retransmissions towards evicted site 4, sampled twice while it stayed
  // evicted: equal samples = the counter stopped growing after the view
  // change (the backoff/GC boundedness criterion).
  std::uint64_t retrans_to_evicted_probe1 = 0;
  std::uint64_t retrans_to_evicted_probe2 = 0;
  std::uint64_t net_recoveries = 0;
  std::uint64_t rejoins_completed = 0;       // summed over sites
  std::uint64_t suspicion_revocations = 0;   // summed over sites (current incarnations)
  std::uint64_t view_change_drops = 0;       // summed over sites + archives
  std::vector<std::string> chaos_log;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
};

constexpr int kRecoverySites = 5;
constexpr int kRecoveryMessages = 20;  // burst A (8) + burst B (6) + burst C (6)

inline RecoveryOutcome run_recovery_fleet(std::uint64_t seed) {
  using namespace std::chrono;

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.rng_seed = seed;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.retransmit_backoff_cap = microseconds(12000);
  opts.heartbeat_interval = microseconds(2000);
  opts.fd_timeout = microseconds(4000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = 0.02},
                      seed, &clock);
  net::TimerService script(&clock);  // harness-owned scenario + chaos timers
  chaos::ChaosEngine engine(net, script);

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kRecoverySites; ++i) {
    nodes.push_back(std::make_unique<GroupNode>(net, opts));
  }
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());
  const SiteId site3 = nodes[3]->id();
  const SiteId site4 = nodes[4]->id();

  RecoveryOutcome out;
  OneShotEvent done;

  const auto now_us = [&clock] {
    return static_cast<long>(
        duration_cast<microseconds>(clock.now().time_since_epoch()).count());
  };
  // Sum of every alive old member's retransmission counter towards the
  // evicted site 4.
  const auto retrans_to_site4 = [&] {
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += nodes[i]->rel_comm().retransmissions_to(site4);
    return sum;
  };
  const auto last_record_id = [](GroupNode& n) -> std::uint64_t {
    const auto recs = n.sink().delivery_records();
    return recs.empty() ? 0 : recs.back().id;
  };
  const auto all_converged = [&] {
    // The never-crashed sites must hold the complete application history;
    // the rejoined sites must have caught up to the same final delivery.
    for (int i = 0; i < 3; ++i) {
      if (nodes[i]->sink().adelivered().size() !=
          static_cast<std::size_t>(kRecoveryMessages)) {
        return false;
      }
    }
    const std::uint64_t tail = last_record_id(*nodes[0]);
    if (tail == 0) return false;
    return last_record_id(*nodes[3]) == tail && last_record_id(*nodes[4]) == tail;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();  // includes the timer whose callback is running
  };

  {
    // Freeze virtual time while the scenario is armed.
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    Rng rng(seed);
    int sent = 0;
    // Burst A: everyone is up.
    for (int i = 0; i < 8; ++i) {
      const auto who = rng.next_below(kRecoverySites);
      const std::string payload = "m" + std::to_string(sent++);
      script.schedule(microseconds(200 + 200 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Burst B: while site 4 is back but site 3 is still a member.
    std::vector<std::pair<int, std::string>> burst_b;
    for (int i = 0; i < 6; ++i) {
      burst_b.emplace_back(rng.next_below(4), "m" + std::to_string(sent++));  // 0..3
    }
    // Burst C: after site 3's restart; site 3 is mid-rejoin, so origins
    // are the other four.
    std::vector<std::pair<int, std::string>> burst_c;
    for (int i = 0; i < 6; ++i) {
      const int origins[4] = {0, 1, 2, 4};
      burst_c.emplace_back(origins[rng.next_below(4)], "m" + std::to_string(sent++));
    }

    chaos::FaultPlan plan;
    // Cycle 1: crash site 4 while a partition between 1 and 2 is up, evict
    // it, probe the (frozen) retransmission counter twice, then restart +
    // rejoin. The partition outlasts the failure-detector timeout, so 1
    // and 2 suspect each other and must revoke after the heal.
    plan.partition(microseconds(1500), nodes[1]->id(), nodes[2]->id())
        .call(microseconds(5000), "crash node 4", [&nodes] { nodes[4]->crash(); })
        .call(microseconds(7000), "evict node 4",
              [&nodes, site4] { nodes[0]->request_leave(site4); })
        .call(microseconds(24000), "probe retransmissions to evicted node 4",
              [&out, retrans_to_site4] { out.retrans_to_evicted_probe1 = retrans_to_site4(); })
        .heal(microseconds(26000), nodes[1]->id(), nodes[2]->id())
        .call(microseconds(32000), "re-probe retransmissions to evicted node 4",
              [&out, retrans_to_site4] { out.retrans_to_evicted_probe2 = retrans_to_site4(); })
        .call(microseconds(34000), "restart node 4", [&nodes] { nodes[4]->restart(); })
        .call(microseconds(35000), "rejoin node 4", [&nodes, &out, site4, now_us] {
          out.rejoin4_requested_us = now_us();
          nodes[0]->request_join(site4);
        });
    for (std::size_t i = 0; i < burst_b.size(); ++i) {
      const auto [who, payload] = burst_b[i];
      plan.call(microseconds(38000 + 300 * i), "abcast " + payload,
                [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Cycle 2: crash site 3 under a loss burst, evict, restart, rejoin.
    plan.loss_burst(microseconds(44000), microseconds(52000),
                    net::LinkOptions{.base_latency = microseconds(100),
                                     .jitter = microseconds(200),
                                     .drop_probability = 0.20})
        .call(microseconds(45000), "crash node 3", [&nodes] { nodes[3]->crash(); })
        .call(microseconds(47000), "evict node 3",
              [&nodes, site3] { nodes[0]->request_leave(site3); })
        .call(microseconds(62000), "restart node 3", [&nodes] { nodes[3]->restart(); })
        .call(microseconds(63000), "rejoin node 3",
              [&nodes, site3] { nodes[2]->request_join(site3); });
    for (std::size_t i = 0; i < burst_c.size(); ++i) {
      const auto [who, payload] = burst_c[i];
      plan.call(microseconds(68000 + 300 * i), "abcast " + payload,
                [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    engine.arm(plan);

    // Recovery-time metric: first totally-ordered delivery at site 4's new
    // incarnation, polled at scenario resolution.
    script.schedule_periodic(microseconds(500), [&] {
      if (out.rejoin4_first_delivery_us >= 0 || out.rejoin4_requested_us < 0) return;
      if (!nodes[4]->sink().delivery_records().empty()) {
        out.rejoin4_first_delivery_us = now_us();
      }
    });
    // Convergence checker (scripted, so the shutdown point is virtual-time
    // deterministic).
    script.schedule_periodic(microseconds(1000), [&] {
      if (!all_converged()) return;
      out.converged = true;
      out.converged_at_us = now_us();
      shut_down_fleet();
      done.set();
    });
    // Horizon failsafe.
    script.schedule(microseconds(5'000'000), [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint (see run_chaos_fleet).
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  for (auto& n : nodes) {
    for (auto& t : n->vs_traces()) out.traces.push_back(std::move(t));
    out.retransmissions.push_back(n->total_retransmissions());
    out.rejoins_completed += n->rejoins_completed();
    out.suspicion_revocations += n->fd().suspicion_revocations();
    out.view_change_drops += n->rel_comm().view_change_drops();
    for (const auto& arc : n->archives()) out.view_change_drops += arc.view_change_drops;
  }
  for (const auto& t : out.traces) {
    std::ostringstream os;
    os << "site" << t.site.value() << "/inc" << t.incarnation
       << (t.crashed ? "/crashed" : "/alive");
    for (const auto& r : t.deliveries) {
      os << " " << r.ordinal << ":" << r.id << ":" << r.view_id << ":" << r.data;
    }
    out.trace_lines.push_back(os.str());
  }
  for (auto& n : nodes) {
    std::ostringstream os;
    os << "site" << n->id().value() << " views:";
    for (const auto& t : n->vs_traces()) {
      for (const auto& v : t.views) {
        os << " " << v.id() << "{";
        for (const auto& m : v.members()) os << m.value() << ",";
        os << "}";
      }
    }
    out.view_lines.push_back(os.str());
  }
  out.chaos_log = engine.log();
  out.net_recoveries = net.stats().recoveries.value();
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  return out;
}

}  // namespace samoa::gc::testing
