// Scripted virtual-time chaos harness for the group-communication fleet.
//
// Shared by gc_chaos_test (convergence assertions) and determinism_test
// (same-seed replay comparison). The whole scenario — traffic bursts, a
// transient partition, a crash — is scheduled at fixed *virtual* times on
// a harness TimerService driven by the same time::VirtualClock as the
// SimNetwork and every node, so a run burns zero real time in sleeps and
// is a pure function of its seed.
//
// Scheduling discipline: every scripted callback performs exactly ONE
// node API call (one spawned computation). The clock's dispatch turns plus
// the runtime's activity pins then serialize all computations, which is
// what makes the message streams — and the seeded RNG draws they trigger —
// replay identically.
#pragma once

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "gc/group_node.hpp"
#include "time/clock.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"

namespace samoa::gc::testing {

struct FleetOutcome {
  bool converged = false;   // all survivors complete before the virtual horizon
  long converged_at_us = -1;  // virtual time at which the checker saw it
  // Per surviving site (0 .. kSites-2), in delivery order.
  std::vector<std::vector<AppMessage>> adelivered;
  std::vector<std::vector<std::string>> cdelivered;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
};

constexpr int kFleetSites = 5;
constexpr int kFleetAbcasts = 10;
constexpr int kFleetCcasts = 6;

inline FleetOutcome run_chaos_fleet(std::uint64_t seed) {
  using namespace std::chrono;

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.heartbeat_interval = microseconds(2000);
  opts.fd_timeout = microseconds(20000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = 0.05},
                      seed, &clock);
  net::TimerService script(&clock);  // harness-owned scenario timers

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kFleetSites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());

  FleetOutcome out;
  OneShotEvent done;

  const auto all_survivors_complete = [&] {
    for (int i = 0; i < kFleetSites - 1; ++i) {
      if (nodes[i]->sink().adelivered().size() != kFleetAbcasts) return false;
      if (nodes[i]->sink().cdelivered().size() != kFleetCcasts) return false;
    }
    return true;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();  // includes the timer whose callback is running
  };

  {
    // Freeze virtual time while the scenario is armed: nothing fires until
    // every node started and every scripted event is scheduled.
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    Rng rng(seed);
    int sent_abcasts = 0;
    // First traffic burst.
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(100 + 200 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Transient partition between two random distinct sites, healed ~20ms
    // (virtual) later.
    const auto pa = rng.next_below(kFleetSites);
    const auto pb = (pa + 1 + rng.next_below(kFleetSites - 1)) % kFleetSites;
    script.schedule(microseconds(1500), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), true);
    });
    script.schedule(microseconds(22000), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), false);
    });
    // Causal stream from one origin, and a second abcast burst, both while
    // the partition is up.
    for (int i = 0; i < kFleetCcasts; ++i) {
      const std::string payload = "c" + std::to_string(i);
      script.schedule(microseconds(1600 + 150 * i),
                      [&nodes, payload] { nodes[2]->ccast(payload); });
    }
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(2600 + 300 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Crash the last site after the heal (never the coordinator of the
    // first consensus instances; a majority survives).
    script.schedule(microseconds(23000), [&nodes] { nodes[kFleetSites - 1]->crash(); });

    // Convergence checker: the shutdown point must itself be a scripted
    // (virtual-time) event, or the collected stats would depend on real
    // teardown timing.
    script.schedule_periodic(microseconds(1000), [&] {
      if (!all_survivors_complete()) return;
      out.converged = true;
      out.converged_at_us = static_cast<long>(
          duration_cast<microseconds>(clock.now().time_since_epoch()).count());
      shut_down_fleet();
      done.set();
    });
    // Horizon failsafe: give up after 2 virtual seconds.
    script.schedule(microseconds(2'000'000), [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint: drained packets can complete computations that
  // send more packets; loop until a full round adds no network activity.
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  for (int i = 0; i < kFleetSites - 1; ++i) {
    out.adelivered.push_back(nodes[i]->sink().adelivered());
    out.cdelivered.push_back(nodes[i]->sink().cdelivered());
  }
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  return out;
}

}  // namespace samoa::gc::testing
