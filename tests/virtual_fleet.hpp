// Scripted virtual-time chaos harness for the group-communication fleet.
//
// Shared by gc_chaos_test (convergence assertions) and determinism_test
// (same-seed replay comparison). The whole scenario — traffic bursts, a
// transient partition, a crash — is scheduled at fixed *virtual* times on
// a harness TimerService driven by the same time::VirtualClock as the
// SimNetwork and every node, so a run burns zero real time in sleeps and
// is a pure function of its seed.
//
// Scheduling discipline: every scripted callback performs exactly ONE
// node API call (one spawned computation). The clock's dispatch turns plus
// the runtime's activity pins then serialize all computations, which is
// what makes the message streams — and the seeded RNG draws they trigger —
// replay identically.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/fault_plan.hpp"
#include "gc/group_node.hpp"
#include "time/clock.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "verify/vs_checker.hpp"

namespace samoa::gc::testing {

struct FleetOutcome {
  bool converged = false;   // all survivors complete before the virtual horizon
  long converged_at_us = -1;  // virtual time at which the checker saw it
  // Per surviving site (0 .. kSites-2), in delivery order.
  std::vector<std::vector<AppMessage>> adelivered;
  std::vector<std::vector<std::string>> cdelivered;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
};

constexpr int kFleetSites = 5;
constexpr int kFleetAbcasts = 10;
constexpr int kFleetCcasts = 6;

inline FleetOutcome run_chaos_fleet(std::uint64_t seed) {
  using namespace std::chrono;

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.heartbeat_interval = microseconds(2000);
  opts.fd_timeout = microseconds(20000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = 0.05},
                      seed, &clock);
  net::TimerService script(&clock);  // harness-owned scenario timers

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kFleetSites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());

  FleetOutcome out;
  OneShotEvent done;

  const auto all_survivors_complete = [&] {
    for (int i = 0; i < kFleetSites - 1; ++i) {
      if (nodes[i]->sink().adelivered().size() != kFleetAbcasts) return false;
      if (nodes[i]->sink().cdelivered().size() != kFleetCcasts) return false;
    }
    return true;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();  // includes the timer whose callback is running
  };

  {
    // Freeze virtual time while the scenario is armed: nothing fires until
    // every node started and every scripted event is scheduled.
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    Rng rng(seed);
    int sent_abcasts = 0;
    // First traffic burst.
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(100 + 200 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Transient partition between two random distinct sites, healed ~20ms
    // (virtual) later.
    const auto pa = rng.next_below(kFleetSites);
    const auto pb = (pa + 1 + rng.next_below(kFleetSites - 1)) % kFleetSites;
    script.schedule(microseconds(1500), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), true);
    });
    script.schedule(microseconds(22000), [&net, &nodes, pa, pb] {
      net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), false);
    });
    // Causal stream from one origin, and a second abcast burst, both while
    // the partition is up.
    for (int i = 0; i < kFleetCcasts; ++i) {
      const std::string payload = "c" + std::to_string(i);
      script.schedule(microseconds(1600 + 150 * i),
                      [&nodes, payload] { nodes[2]->ccast(payload); });
    }
    for (int i = 0; i < kFleetAbcasts / 2; ++i) {
      const auto who = rng.next_below(kFleetSites);
      const std::string payload = "a" + std::to_string(sent_abcasts++);
      script.schedule(microseconds(2600 + 300 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Crash the last site after the heal (never the coordinator of the
    // first consensus instances; a majority survives).
    script.schedule(microseconds(23000), [&nodes] { nodes[kFleetSites - 1]->crash(); });

    // Convergence checker: the shutdown point must itself be a scripted
    // (virtual-time) event, or the collected stats would depend on real
    // teardown timing.
    script.schedule_periodic(microseconds(1000), [&] {
      if (!all_survivors_complete()) return;
      out.converged = true;
      out.converged_at_us = static_cast<long>(
          duration_cast<microseconds>(clock.now().time_since_epoch()).count());
      shut_down_fleet();
      done.set();
    });
    // Horizon failsafe: give up after 2 virtual seconds.
    script.schedule(microseconds(2'000'000), [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint: drained packets can complete computations that
  // send more packets; loop until a full round adds no network activity.
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  for (int i = 0; i < kFleetSites - 1; ++i) {
    out.adelivered.push_back(nodes[i]->sink().adelivered());
    out.cdelivered.push_back(nodes[i]->sink().cdelivered());
  }
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  return out;
}

// --- Crash/recovery fleet -------------------------------------------------
//
// A second scripted scenario exercising the full restart/rejoin machinery:
// five sites, three traffic bursts, a transient partition, a loss burst,
// and TWO crash → evict → restart → rejoin cycles (site 4 while the
// partition is up, site 3 under the loss burst). All faults are driven by
// a chaos::ChaosEngine armed with one declarative chaos::FaultPlan; node
// restarts and membership requests enter the plan as labelled calls.
// The outcome carries everything the chaos, determinism and bench callers
// need: the virtual-synchrony traces of every incarnation, serialized
// trace/view lines for byte-comparison, the bounded-retransmission probes,
// and the observability counters.

struct RecoveryOutcome {
  bool converged = false;
  long converged_at_us = -1;
  long rejoin4_requested_us = -1;   // virtual time of site 4's re-join request
  long rejoin4_first_delivery_us = -1;  // first post-rejoin totally-ordered delivery
  std::vector<verify::IncarnationTrace> traces;  // all sites, all incarnations
  // Serialized forms for byte-identical replay comparison.
  std::vector<std::string> trace_lines;  // one line per incarnation
  std::vector<std::string> view_lines;   // one line per site: installed view ids+members
  std::vector<std::uint64_t> retransmissions;  // per site, summed over incarnations
  // Retransmissions towards evicted site 4, sampled twice while it stayed
  // evicted: equal samples = the counter stopped growing after the view
  // change (the backoff/GC boundedness criterion).
  std::uint64_t retrans_to_evicted_probe1 = 0;
  std::uint64_t retrans_to_evicted_probe2 = 0;
  std::uint64_t net_recoveries = 0;
  std::uint64_t rejoins_completed = 0;       // summed over sites
  std::uint64_t suspicion_revocations = 0;   // summed over sites (current incarnations)
  std::uint64_t view_change_drops = 0;       // summed over sites + archives
  std::vector<std::string> chaos_log;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
};

constexpr int kRecoverySites = 5;
constexpr int kRecoveryMessages = 20;  // burst A (8) + burst B (6) + burst C (6)

inline RecoveryOutcome run_recovery_fleet(std::uint64_t seed) {
  using namespace std::chrono;

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.rng_seed = seed;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.retransmit_backoff_cap = microseconds(12000);
  opts.heartbeat_interval = microseconds(2000);
  opts.fd_timeout = microseconds(4000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = 0.02},
                      seed, &clock);
  net::TimerService script(&clock);  // harness-owned scenario + chaos timers
  chaos::ChaosEngine engine(net, script);

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kRecoverySites; ++i) {
    nodes.push_back(std::make_unique<GroupNode>(net, opts));
  }
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());
  const SiteId site3 = nodes[3]->id();
  const SiteId site4 = nodes[4]->id();

  RecoveryOutcome out;
  OneShotEvent done;

  const auto now_us = [&clock] {
    return static_cast<long>(
        duration_cast<microseconds>(clock.now().time_since_epoch()).count());
  };
  // Sum of every alive old member's retransmission counter towards the
  // evicted site 4.
  const auto retrans_to_site4 = [&] {
    std::uint64_t sum = 0;
    for (int i = 0; i < 4; ++i) sum += nodes[i]->rel_comm().retransmissions_to(site4);
    return sum;
  };
  const auto last_record_id = [](GroupNode& n) -> std::uint64_t {
    const auto recs = n.sink().delivery_records();
    return recs.empty() ? 0 : recs.back().id;
  };
  const auto all_converged = [&] {
    // The never-crashed sites must hold the complete application history;
    // the rejoined sites must have caught up to the same final delivery.
    for (int i = 0; i < 3; ++i) {
      if (nodes[i]->sink().adelivered().size() !=
          static_cast<std::size_t>(kRecoveryMessages)) {
        return false;
      }
    }
    const std::uint64_t tail = last_record_id(*nodes[0]);
    if (tail == 0) return false;
    return last_record_id(*nodes[3]) == tail && last_record_id(*nodes[4]) == tail;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();  // includes the timer whose callback is running
  };

  {
    // Freeze virtual time while the scenario is armed.
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    Rng rng(seed);
    int sent = 0;
    // Burst A: everyone is up.
    for (int i = 0; i < 8; ++i) {
      const auto who = rng.next_below(kRecoverySites);
      const std::string payload = "m" + std::to_string(sent++);
      script.schedule(microseconds(200 + 200 * i),
                      [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Burst B: while site 4 is back but site 3 is still a member.
    std::vector<std::pair<int, std::string>> burst_b;
    for (int i = 0; i < 6; ++i) {
      burst_b.emplace_back(rng.next_below(4), "m" + std::to_string(sent++));  // 0..3
    }
    // Burst C: after site 3's restart; site 3 is mid-rejoin, so origins
    // are the other four.
    std::vector<std::pair<int, std::string>> burst_c;
    for (int i = 0; i < 6; ++i) {
      const int origins[4] = {0, 1, 2, 4};
      burst_c.emplace_back(origins[rng.next_below(4)], "m" + std::to_string(sent++));
    }

    chaos::FaultPlan plan;
    // Cycle 1: crash site 4 while a partition between 1 and 2 is up, evict
    // it, probe the (frozen) retransmission counter twice, then restart +
    // rejoin. The partition outlasts the failure-detector timeout, so 1
    // and 2 suspect each other and must revoke after the heal.
    plan.partition(microseconds(1500), nodes[1]->id(), nodes[2]->id())
        .call(microseconds(5000), "crash node 4", [&nodes] { nodes[4]->crash(); })
        .call(microseconds(7000), "evict node 4",
              [&nodes, site4] { nodes[0]->request_leave(site4); })
        .call(microseconds(24000), "probe retransmissions to evicted node 4",
              [&out, retrans_to_site4] { out.retrans_to_evicted_probe1 = retrans_to_site4(); })
        .heal(microseconds(26000), nodes[1]->id(), nodes[2]->id())
        .call(microseconds(32000), "re-probe retransmissions to evicted node 4",
              [&out, retrans_to_site4] { out.retrans_to_evicted_probe2 = retrans_to_site4(); })
        .call(microseconds(34000), "restart node 4", [&nodes] { nodes[4]->restart(); })
        .call(microseconds(35000), "rejoin node 4", [&nodes, &out, site4, now_us] {
          out.rejoin4_requested_us = now_us();
          nodes[0]->request_join(site4);
        });
    for (std::size_t i = 0; i < burst_b.size(); ++i) {
      const auto [who, payload] = burst_b[i];
      plan.call(microseconds(38000 + 300 * i), "abcast " + payload,
                [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    // Cycle 2: crash site 3 under a loss burst, evict, restart, rejoin.
    plan.loss_burst(microseconds(44000), microseconds(52000),
                    net::LinkOptions{.base_latency = microseconds(100),
                                     .jitter = microseconds(200),
                                     .drop_probability = 0.20})
        .call(microseconds(45000), "crash node 3", [&nodes] { nodes[3]->crash(); })
        .call(microseconds(47000), "evict node 3",
              [&nodes, site3] { nodes[0]->request_leave(site3); })
        .call(microseconds(62000), "restart node 3", [&nodes] { nodes[3]->restart(); })
        .call(microseconds(63000), "rejoin node 3",
              [&nodes, site3] { nodes[2]->request_join(site3); });
    for (std::size_t i = 0; i < burst_c.size(); ++i) {
      const auto [who, payload] = burst_c[i];
      plan.call(microseconds(68000 + 300 * i), "abcast " + payload,
                [&nodes, who, payload] { nodes[who]->abcast(payload); });
    }
    engine.arm(plan);

    // Recovery-time metric: first totally-ordered delivery at site 4's new
    // incarnation, polled at scenario resolution.
    script.schedule_periodic(microseconds(500), [&] {
      if (out.rejoin4_first_delivery_us >= 0 || out.rejoin4_requested_us < 0) return;
      if (!nodes[4]->sink().delivery_records().empty()) {
        out.rejoin4_first_delivery_us = now_us();
      }
    });
    // Convergence checker (scripted, so the shutdown point is virtual-time
    // deterministic).
    script.schedule_periodic(microseconds(1000), [&] {
      if (!all_converged()) return;
      out.converged = true;
      out.converged_at_us = now_us();
      shut_down_fleet();
      done.set();
    });
    // Horizon failsafe.
    script.schedule(microseconds(5'000'000), [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint (see run_chaos_fleet).
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  for (auto& n : nodes) {
    for (auto& t : n->vs_traces()) out.traces.push_back(std::move(t));
    out.retransmissions.push_back(n->total_retransmissions());
    out.rejoins_completed += n->rejoins_completed();
    out.suspicion_revocations += n->detector().suspicion_revocations();
    out.view_change_drops += n->rel_comm().view_change_drops();
    for (const auto& arc : n->archives()) out.view_change_drops += arc.view_change_drops;
  }
  for (const auto& t : out.traces) {
    std::ostringstream os;
    os << "site" << t.site.value() << "/inc" << t.incarnation
       << (t.crashed ? "/crashed" : "/alive");
    for (const auto& r : t.deliveries) {
      os << " " << r.ordinal << ":" << r.id << ":" << r.view_id << ":" << r.data;
    }
    out.trace_lines.push_back(os.str());
  }
  for (auto& n : nodes) {
    std::ostringstream os;
    os << "site" << n->id().value() << " views:";
    for (const auto& t : n->vs_traces()) {
      for (const auto& v : t.views) {
        os << " " << v.id() << "{";
        for (const auto& m : v.members()) os << m.value() << ",";
        os << "}";
      }
    }
    out.view_lines.push_back(os.str());
  }
  out.chaos_log = engine.log();
  out.net_recoveries = net.stats().recoveries.value();
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  return out;
}

// --- Churn fleet (fleet-scale failure detection) --------------------------
//
// The E-SWIM scenario: a parameterized fleet (tested up to hundreds of
// sites) driven through scripted churn — flapping links (including an
// asymmetric one-way flap), a minority island partitioned away and healed,
// and a simultaneous crash of ~10% of the fleet — while the selected
// failure detector (heartbeat or SWIM, behind the Detector seam) feeds
// suspicion state and scripted evictions shrink the view. The outcome
// carries detection-latency samples, false-positive pairs (a live site
// suspected by a live observer), the SWIM counters, the vs_checker report
// over every incarnation trace, and serialized trace/view lines so the
// determinism test can byte-compare two same-seed runs.
//
// Site layout (indices into the fleet):
//   [0 .. s-1]                    survivors   (s = sites - crashes)
//   [s .. sites-1]                crash victims (simultaneous crash, then
//                                 evicted one by one from site 0)
//   survivors [s-p .. s-1]        partition island (cut off 8ms..20ms)
//   low survivor indices (1, 2..) flap pairs, disjoint from the island
// Site 0 is never crashed, islanded or flapped: it is the eviction
// proposer and the detection-latency observer.

struct ChurnConfig {
  int sites = 50;
  std::uint64_t seed = 1;
  DetectorImpl detector = DetectorImpl::kSwim;
  int crashes = -1;         // -1 => max(1, sites/10)
  int flap_pairs = 2;       // symmetric flapping links (best effort at small n)
  int oneway_flaps = 1;     // asymmetric (one-direction) flapping links
  int partition_size = -1;  // -1 => max(2, sites/10), clamped to survivors-2
  int abcasts = 6;          // total app broadcasts (half warmup, half post-evict)
  std::chrono::microseconds probe_interval{2000};  // SWIM period
  /// Wait between the simultaneous crash and the first scripted eviction:
  /// the window in which detection latency is sampled.
  std::chrono::microseconds detect_window{20000};
  std::chrono::microseconds horizon{5'000'000};
  double drop_probability = 0.01;
};

struct ChurnOutcome {
  bool converged = false;     // survivors agree on the survivor view + all traffic
  long converged_at_us = -1;
  // Detection latency, sampled at site 0 every 500us after the crash:
  // first crashed site suspected / every crashed site suspected (-1 = the
  // eviction landed first, so the sample window closed).
  long first_suspicion_us = -1;
  long all_suspected_us = -1;
  // Distinct (observer, target) survivor pairs ever seen suspected while
  // both were alive — the accuracy cost of churn (flaps, island, losses).
  std::uint64_t false_positive_pairs = 0;
  std::uint64_t suspicions = 0;    // summed over survivors, active detector
  std::uint64_t revocations = 0;   // suspicion revocations, ditto
  // SWIM-only counters (zero under the heartbeat detector).
  std::uint64_t refutations = 0;
  std::uint64_t confirmations = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t ping_reqs_sent = 0;
  std::uint64_t acks_relayed = 0;
  std::uint64_t updates_piggybacked = 0;
  std::uint64_t periods = 0;
  verify::VsReport vs;
  std::vector<verify::IncarnationTrace> traces;
  std::vector<std::string> trace_lines;
  std::vector<std::string> view_lines;
  std::vector<std::string> chaos_log;
  std::uint64_t net_sent = 0;
  std::uint64_t net_delivered = 0;
  std::uint64_t net_dropped = 0;
  // FNV-1a over SimNetwork's packet-level event stream (deliveries, late
  // drops, control firings, in execution order): the delivery-order
  // fingerprint of the whole run, independent of protocol-level state.
  std::uint64_t event_hash = 0;
};

inline ChurnOutcome run_churn_fleet(const ChurnConfig& cfg) {
  using namespace std::chrono;

  const int sites = cfg.sites;
  const int crashes = cfg.crashes >= 0 ? cfg.crashes : std::max(1, sites / 10);
  const int s = sites - crashes;  // survivors
  const int island =
      std::clamp(cfg.partition_size >= 0 ? cfg.partition_size : std::max(2, sites / 10), 0,
                 std::max(0, s - 2));
  const int island_begin = s - island;  // survivor indices [island_begin, s)
  // Flap pairs walk up from survivor index 1 and stop before the island.
  int flap_cursor = 1;
  const auto take_pair = [&](int& a, int& b) {
    if (flap_cursor + 1 >= island_begin) return false;
    a = flap_cursor++;
    b = flap_cursor++;
    return true;
  };

  time::VirtualClock clock;

  GcOptions opts;
  opts.clock = &clock;
  opts.rng_seed = cfg.seed;
  opts.retransmit_interval = microseconds(2000);
  opts.retransmit_timeout = microseconds(3000);
  opts.retransmit_backoff_cap = microseconds(12000);
  opts.cs_retry_interval = microseconds(5000);
  opts.cs_retry_timeout = microseconds(8000);
  opts.detector_impl = cfg.detector;
  opts.swim_probe_interval = cfg.probe_interval;
  opts.swim_ack_timeout = microseconds(600);
  // Equal-bandwidth heartbeat baseline: SWIM sends O(1) packets per period
  // per site; all-to-all heartbeats send (n-1). Matching per-site send
  // rates means hb_interval scales with n — which is exactly why heartbeat
  // detection latency grows O(n) at fixed bandwidth (the E-SWIM story).
  opts.heartbeat_interval = cfg.probe_interval * std::max(1, sites - 1) / 2;
  opts.fd_timeout = 3 * opts.heartbeat_interval;

  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(100),
                                       .jitter = microseconds(200),
                                       .drop_probability = cfg.drop_probability},
                      cfg.seed, &clock);
  net.enable_event_log(/*store_lines=*/false);  // rolling hash only
  net::TimerService script(&clock);
  chaos::ChaosEngine engine(net, script);

  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < sites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());

  ChurnOutcome out;
  OneShotEvent done;

  const auto now_us = [&clock] {
    return static_cast<long>(
        duration_cast<microseconds>(clock.now().time_since_epoch()).count());
  };
  // Survivor id set, for the view-agreement convergence criterion.
  std::vector<SiteId> survivor_ids(members.begin(), members.begin() + s);
  const auto all_converged = [&] {
    for (int i = 0; i < s; ++i) {
      if (nodes[i]->sink().adelivered().size() != static_cast<std::size_t>(cfg.abcasts)) {
        return false;
      }
      if (nodes[i]->membership().view_snapshot().members() != survivor_ids) return false;
    }
    return true;
  };
  const auto shut_down_fleet = [&] {
    for (auto& n : nodes) n->stop_timers();
    script.cancel_all();
  };

  // False-positive sampling state: packed (observer, target) pairs.
  std::unordered_set<std::uint64_t> fp_pairs;
  const int fp_observers = std::min(s, 8);

  {
    time::Pin setup(clock);
    for (auto& n : nodes) n->start(View(1, members));

    chaos::FaultPlan plan;

    // Warmup traffic, finished well before the churn starts.
    int sent = 0;
    for (int i = 0; i < cfg.abcasts / 2; ++i) {
      const int who = i % s;
      plan.call(microseconds(500 + 400 * i), "abcast a" + std::to_string(sent),
                [&nodes, who, payload = "a" + std::to_string(sent)] { nodes[who]->abcast(payload); });
      ++sent;
    }

    // Flapping links among low-index survivors (disjoint from the island):
    // cut/heal three times with a 2ms period, 6ms..16ms.
    for (int p = 0; p < cfg.flap_pairs; ++p) {
      int a = 0, b = 0;
      if (!take_pair(a, b)) break;
      plan.flap(microseconds(6000), members[a], members[b], microseconds(2000), 3);
    }
    // Asymmetric flap: only the a -> b direction drops, so b keeps hearing
    // a while a times out on b's acks — the classic one-way-link trap for
    // a naive detector.
    for (int p = 0; p < cfg.oneway_flaps; ++p) {
      int a = 0, b = 0;
      if (!take_pair(a, b)) break;
      plan.partition_oneway(microseconds(7000), members[a], members[b])
          .heal_oneway(microseconds(13000), members[a], members[b]);
    }

    // Minority island: survivors [island_begin, s) are cut off from every
    // other site 8ms..20ms — long enough for SWIM to confirm them faulty,
    // so the heal exercises incarnation-numbered resurrection/refutation.
    for (int i = island_begin; i < s; ++i) {
      for (int j = 0; j < sites; ++j) {
        if (j >= island_begin && j < s) continue;
        plan.partition(microseconds(8000), members[i], members[j])
            .heal(microseconds(20000), members[i], members[j]);
      }
    }

    // Simultaneous crash of the last `crashes` sites (one scripted action:
    // a correlated rack failure, not a trickle).
    plan.call(microseconds(30000), "crash " + std::to_string(crashes) + " sites",
              [&nodes, s, sites] {
                for (int i = s; i < sites; ++i) nodes[i]->crash();
              });

    // Scripted evictions from site 0 once the detection window closed.
    const auto evict_at = microseconds(30000) + cfg.detect_window;
    for (int i = s; i < sites; ++i) {
      const auto victim = members[i];
      plan.call(evict_at + microseconds(300) * (i - s), "evict site " + std::to_string(i),
                [&nodes, victim] { nodes[0]->request_leave(victim); });
    }

    // Post-eviction traffic: the shrunken view still orders and delivers.
    const auto post_at = evict_at + microseconds(300) * crashes + microseconds(3000);
    for (int i = cfg.abcasts / 2; i < cfg.abcasts; ++i) {
      const int who = (i * 7) % s;
      plan.call(post_at + microseconds(400) * i, "abcast a" + std::to_string(sent),
                [&nodes, who, payload = "a" + std::to_string(sent)] { nodes[who]->abcast(payload); });
      ++sent;
    }
    engine.arm(plan);

    // Detection-latency sampling at site 0 (500us resolution). Eviction
    // removes a site from the detector's tracked set, so sampling is only
    // meaningful inside the detect window; unset samples stay -1.
    script.schedule_periodic(microseconds(500), [&, s, sites] {
      if (out.all_suspected_us >= 0) return;
      if (now_us() < 30000) return;
      auto& det = nodes[0]->detector();
      bool any = false, all = true;
      for (int i = s; i < sites; ++i) {
        if (det.is_suspected(members[i])) {
          any = true;
        } else {
          all = false;
        }
      }
      if (any && out.first_suspicion_us < 0) out.first_suspicion_us = now_us();
      if (all && out.all_suspected_us < 0) out.all_suspected_us = now_us();
    });
    // False-positive sampling: a survivor suspected by a live observer.
    script.schedule_periodic(microseconds(2000), [&, s] {
      for (int i = 0; i < fp_observers; ++i) {
        auto& det = nodes[i]->detector();
        for (int j = 0; j < s; ++j) {
          if (j == i) continue;
          if (det.is_suspected(members[j])) {
            fp_pairs.insert((static_cast<std::uint64_t>(i) << 32) |
                            static_cast<std::uint32_t>(j));
          }
        }
      }
    });
    // Convergence checker (scripted shutdown point, virtual-time exact).
    script.schedule_periodic(microseconds(2000), [&] {
      if (!all_converged()) return;
      out.converged = true;
      out.converged_at_us = now_us();
      shut_down_fleet();
      done.set();
    });
    script.schedule(cfg.horizon, [&] {
      shut_down_fleet();
      done.set();
    });
  }

  done.wait();
  // Quiesce to the fixpoint (see run_chaos_fleet).
  std::uint64_t prev = ~std::uint64_t{0};
  for (;;) {
    net.drain();
    for (auto& n : nodes) n->drain();
    const std::uint64_t total = net.stats().sent.value() + net.stats().delivered.value() +
                                net.stats().dropped.value();
    if (total == prev) break;
    prev = total;
  }

  out.false_positive_pairs = fp_pairs.size();
  for (int i = 0; i < s; ++i) {
    out.suspicions += nodes[i]->detector().suspicions();
    out.revocations += nodes[i]->detector().suspicion_revocations();
    if (cfg.detector == DetectorImpl::kSwim) {
      auto& sw = nodes[i]->swim();
      out.refutations += sw.refutations();
      out.confirmations += sw.confirmations();
      out.probes_sent += sw.probes_sent();
      out.ping_reqs_sent += sw.ping_reqs_sent();
      out.acks_relayed += sw.acks_relayed();
      out.updates_piggybacked += sw.updates_piggybacked();
      out.periods += sw.periods();
    }
  }
  for (auto& n : nodes) {
    for (auto& t : n->vs_traces()) out.traces.push_back(std::move(t));
  }
  out.vs = verify::check_virtual_synchrony(out.traces);
  for (const auto& t : out.traces) {
    std::ostringstream os;
    os << "site" << t.site.value() << "/inc" << t.incarnation
       << (t.crashed ? "/crashed" : "/alive");
    for (const auto& r : t.deliveries) {
      os << " " << r.ordinal << ":" << r.id << ":" << r.view_id << ":" << r.data;
    }
    out.trace_lines.push_back(os.str());
  }
  for (auto& n : nodes) {
    std::ostringstream os;
    os << "site" << n->id().value() << " views:";
    for (const auto& t : n->vs_traces()) {
      for (const auto& v : t.views) {
        os << " " << v.id() << "{";
        for (const auto& m : v.members()) os << m.value() << ",";
        os << "}";
      }
    }
    out.view_lines.push_back(os.str());
  }
  out.chaos_log = engine.log();
  out.net_sent = net.stats().sent.value();
  out.net_delivered = net.stats().delivered.value();
  out.net_dropped = net.stats().dropped.value();
  out.event_hash = net.event_hash();
  return out;
}

}  // namespace samoa::gc::testing
