// Tests for VCAbasic (paper Section 5.1): version acquisition order,
// blocking of conflicting computations, concurrency of disjoint ones, and
// the isolation property over stress schedules.
#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;
using testing::ProbeMp;

RuntimeOptions basic_opts(bool trace = false) {
  RuntimeOptions o;
  o.policy = CCPolicy::kVCABasic;
  o.record_trace = trace;
  return o;
}

TEST(VCABasic, SecondComputationWaitsForSharedMicroprotocol) {
  Stack stack;
  auto& shared = stack.emplace<BlockingMp>("shared");
  EventType ev("Run");
  stack.bind(ev, *shared.handler);
  Runtime rt(stack, basic_opts());

  auto k1 = rt.spawn_isolated(Isolation::basic({&shared}),
                              [&](Context& ctx) { ctx.trigger(ev); });
  shared.started.wait();  // k1 is inside the handler

  std::atomic<bool> k2_done{false};
  auto k2 = rt.spawn_isolated(Isolation::basic({&shared}), [&](Context& ctx) {
    ctx.trigger(ev);
    k2_done.store(true);
  });
  // k2 must be gated: give it ample time to (incorrectly) slip through.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(k2_done.load());

  shared.release.set();
  k1.wait();
  k2.wait();
  EXPECT_TRUE(k2_done.load());
  EXPECT_EQ(shared.calls.load(), 2);
}

TEST(VCABasic, DisjointComputationsRunConcurrently) {
  Stack stack;
  auto& a = stack.emplace<BlockingMp>("a");
  auto& b = stack.emplace<BlockingMp>("b");
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.handler);
  stack.bind(evb, *b.handler);
  Runtime rt(stack, basic_opts());

  auto k1 = rt.spawn_isolated(Isolation::basic({&a}), [&](Context& ctx) { ctx.trigger(eva); });
  auto k2 = rt.spawn_isolated(Isolation::basic({&b}), [&](Context& ctx) { ctx.trigger(evb); });
  // Both handlers must start even though neither released: disjoint M
  // sets never gate each other.
  a.started.wait();
  b.started.wait();
  a.release.set();
  b.release.set();
  k1.wait();
  k2.wait();
}

TEST(VCABasic, VersionOrderFollowsAdmissionOrder) {
  // k1 admitted first but slow to reach the shared microprotocol; k2 must
  // still run after k1 (versions are assigned at admission, not first use).
  Stack stack;
  std::vector<std::string> log;
  std::mutex log_mu;
  class TaggedMp : public Microprotocol {
   public:
    TaggedMp(std::vector<std::string>& log, std::mutex& mu)
        : Microprotocol("shared") {
      handler = &register_handler("run", [&log, &mu](Context&, const Message& m) {
        std::unique_lock lock(mu);
        log.push_back(m.as<std::string>());
      });
    }
    const Handler* handler;
  };
  auto& shared = stack.emplace<TaggedMp>(log, log_mu);
  EventType ev("Run");
  stack.bind(ev, *shared.handler);
  Runtime rt(stack, basic_opts());

  auto k1 = rt.spawn_isolated(Isolation::basic({&shared}), [&](Context& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    ctx.trigger(ev, Message::of(std::string("k1")));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  auto k2 = rt.spawn_isolated(Isolation::basic({&shared}), [&](Context& ctx) {
    ctx.trigger(ev, Message::of(std::string("k2")));
  });
  k1.wait();
  k2.wait();
  EXPECT_EQ(log, (std::vector<std::string>{"k1", "k2"}));
}

TEST(VCABasic, MultipleCallsBySameComputationAllowed) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, basic_opts());
  rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) {
      for (int i = 0; i < 10; ++i) ctx.trigger(ev);
    }).wait();
  EXPECT_EQ(mp.calls.load(), 10);
}

TEST(VCABasic, IntraComputationParallelCallsOnSameMp) {
  // Threads of one computation may execute handlers of the same
  // microprotocol concurrently — isolation is between computations.
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p", std::chrono::microseconds(2000));
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, basic_opts());
  rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) {
      for (int i = 0; i < 4; ++i) ctx.async_trigger(ev);
    }).wait();
  EXPECT_EQ(mp.calls.load(), 4);
}

TEST(VCABasic, StressManyComputationsIsIsolated) {
  Stack stack;
  auto& a = stack.emplace<ProbeMp>("a", std::chrono::microseconds(50));
  auto& b = stack.emplace<ProbeMp>("b", std::chrono::microseconds(50));
  auto& c = stack.emplace<ProbeMp>("c", std::chrono::microseconds(50));
  EventType eva("A"), evb("B"), evc("C");
  stack.bind(eva, *a.handler);
  stack.bind(evb, *b.handler);
  stack.bind(evc, *c.handler);
  Runtime rt(stack, basic_opts(/*trace=*/true));

  Rng rng(123);
  std::vector<ComputationHandle> handles;
  for (int i = 0; i < 60; ++i) {
    const int pick = static_cast<int>(rng.next_below(3));
    std::vector<const Microprotocol*> members;
    std::vector<EventType> evs;
    if (pick != 0) {
      members.push_back(&a);
      evs.push_back(eva);
    }
    if (pick != 1) {
      members.push_back(&b);
      evs.push_back(evb);
    }
    if (pick != 2) {
      members.push_back(&c);
      evs.push_back(evc);
    }
    handles.push_back(rt.spawn_isolated(Isolation::basic(members), [evs](Context& ctx) {
      for (const auto& e : evs) ctx.async_trigger(e);
    }));
  }
  for (auto& h : handles) h.wait();
  rt.drain();
  testing::expect_isolated(rt);
}

TEST(VCABasic, GateWaitStatisticsAreRecorded) {
  Stack stack;
  auto& shared = stack.emplace<BlockingMp>("s");
  EventType ev("Run");
  stack.bind(ev, *shared.handler);
  Runtime rt(stack, basic_opts());
  auto k1 = rt.spawn_isolated(Isolation::basic({&shared}),
                              [&](Context& ctx) { ctx.trigger(ev); });
  shared.started.wait();
  auto k2 = rt.spawn_isolated(Isolation::basic({&shared}),
                              [&](Context& ctx) { ctx.trigger(ev); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  shared.release.set();
  k1.wait();
  k2.wait();
  EXPECT_GE(rt.controller().stats().gate_waits.value(), 1u);
  EXPECT_GE(rt.controller().stats().admissions.value(), 2u);
}

TEST(VCABasic, AcceptsBoundSpecMembers) {
  // A Bound declaration is a superset of a Basic one; VCAbasic uses just
  // the member set.
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, basic_opts());
  rt.spawn_isolated(Isolation::bound({{&mp, 2}}), [&](Context& ctx) {
      ctx.trigger(ev);
    }).wait();
  EXPECT_EQ(mp.calls.load(), 1);
}

TEST(VCABasic, NeverTwoComputationsInsideOneMicroprotocol) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p", std::chrono::microseconds(500));
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, basic_opts());
  std::vector<ComputationHandle> handles;
  for (int i = 0; i < 16; ++i) {
    handles.push_back(rt.spawn_isolated(Isolation::basic({&mp}),
                                        [&](Context& ctx) { ctx.trigger(ev); }));
  }
  for (auto& h : handles) h.wait();
  // Within one computation only one call happened at a time here (single
  // sync call each), so any in-flight > 1 means two computations overlapped.
  EXPECT_EQ(mp.max_in_flight.load(), 1);
  EXPECT_EQ(mp.calls.load(), 16);
}

}  // namespace
}  // namespace samoa
