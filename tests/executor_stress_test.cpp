// Executor dispatch under adversarial load (PR 8): several spawner
// threads hammer one runtime with a seeded mix of single-mp, shared-mp
// and multi-mp computations, sync and async triggers, fan-outs, and
// handlers that park mid-task. Run under both dispatch substrates so the
// executor path and the elastic-pool fallback face the same workload; a
// fail-fast deadlock watchdog turns any shard wedge (the zombie-consumer
// class of bug) into an immediate abort with a shard-state dump instead
// of a 300-second ctest timeout. CI runs this under TSan as well — the
// Vyukov ring's seq protocol and the park/handoff protocol are exactly
// the code TSan is for.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cc/controller.hpp"
#include "diag/watchdog.hpp"
#include "tests/test_support.hpp"
#include "util/rng.hpp"

namespace samoa {
namespace {

using namespace std::chrono_literals;
using testing::BlockingMp;
using testing::ProbeMp;

#if defined(__SANITIZE_THREAD__)
#define SAMOA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMOA_UNDER_TSAN 1
#endif
#endif
#ifndef SAMOA_UNDER_TSAN
#define SAMOA_UNDER_TSAN 0
#endif

constexpr int kSpawnsPerThread = SAMOA_UNDER_TSAN ? 40 : 120;
constexpr int kSpawnerThreads = 4;

class ExecutorStress : public ::testing::Test {
 protected:
  void SetUp() override {
    diag::WatchdogOptions opts;
    opts.budget = 60s;
    opts.name = "executor_stress";
    opts.abort_on_stall = true;
    if (const char* dir = std::getenv("SAMOA_WATCHDOG_DIR")) opts.dump_dir = dir;
    dog_ = std::make_unique<diag::DeadlockWatchdog>(std::move(opts));
  }
  void TearDown() override { dog_.reset(); }

  std::unique_ptr<diag::DeadlockWatchdog> dog_;
};

struct Workload {
  Stack stack;
  std::vector<ProbeMp*> own;      // one per spawner thread
  ProbeMp* shared = nullptr;      // contended by every thread
  std::vector<EventType> own_ev;
  EventType shared_ev{"Shared"};
  EventType fan_ev{"Fan"};        // bound to three of the own mps

  Workload() {
    for (int i = 0; i < kSpawnerThreads; ++i) {
      auto& mp = stack.emplace<ProbeMp>("own" + std::to_string(i), std::chrono::microseconds(5));
      own.push_back(&mp);
      own_ev.emplace_back("Own" + std::to_string(i));
      stack.bind(own_ev.back(), *mp.handler);
    }
    shared = &stack.emplace<ProbeMp>("shared", std::chrono::microseconds(5));
    stack.bind(shared_ev, *shared->handler);
    for (int i = 0; i < 3; ++i) stack.bind(fan_ev, *own[static_cast<std::size_t>(i)]->handler);
  }
};

void run_mixed_cell(DispatchImpl impl, std::uint64_t seed) {
  Workload w;
  RuntimeOptions opts;
  opts.policy = CCPolicy::kVCABasic;
  opts.dispatch_impl = impl;
  opts.record_trace = true;
  Runtime rt(w.stack, opts);

  std::atomic<int> spawned{0};
  std::vector<std::thread> spawners;
  for (int t = 0; t < kSpawnerThreads; ++t) {
    spawners.emplace_back([&, t] {
      Rng rng(seed * 1000003u + static_cast<std::uint64_t>(t));
      std::vector<ComputationHandle> inflight;
      for (int i = 0; i < kSpawnsPerThread; ++i) {
        const std::uint64_t shape = rng.next_below(4);
        ComputationHandle h;
        if (shape == 0) {
          // Single private mp, sync + async trigger chain.
          h = rt.spawn_isolated(Isolation::basic({w.own[static_cast<std::size_t>(t)]}),
                                [&, t](Context& ctx) {
                                  ctx.trigger(w.own_ev[static_cast<std::size_t>(t)]);
                                  ctx.async_trigger(w.own_ev[static_cast<std::size_t>(t)]);
                                });
        } else if (shape == 1) {
          // Contended shared mp.
          h = rt.spawn_isolated(Isolation::basic({w.shared}),
                                [&](Context& ctx) { ctx.trigger(w.shared_ev); });
        } else if (shape == 2) {
          // Multi-mp: private + shared, exercises the slow admission path.
          h = rt.spawn_isolated(
              Isolation::basic({w.own[static_cast<std::size_t>(t)], w.shared}),
              [&, t](Context& ctx) {
                ctx.trigger(w.own_ev[static_cast<std::size_t>(t)]);
                ctx.async_trigger(w.shared_ev);
              });
        } else {
          // Batched fan-out across three mps' shards.
          h = rt.spawn_isolated(Isolation::basic({w.own[0], w.own[1], w.own[2]}),
                                [&](Context& ctx) { ctx.async_trigger_all(w.fan_ev); });
        }
        spawned.fetch_add(1);
        inflight.push_back(std::move(h));
        if (inflight.size() >= 16) {
          for (auto& handle : inflight) handle.wait();
          inflight.clear();
        }
      }
      for (auto& handle : inflight) handle.wait();
    });
  }
  for (auto& t : spawners) t.join();
  rt.drain();

  EXPECT_EQ(spawned.load(), kSpawnerThreads * kSpawnsPerThread);
  // Isolation must hold regardless of substrate: no mp ever runs two
  // handlers concurrently.
  for (ProbeMp* mp : w.own) EXPECT_LE(mp->max_in_flight.load(), 1) << mp->name();
  EXPECT_LE(w.shared->max_in_flight.load(), 1);
  testing::expect_isolated(rt);
  if (impl == DispatchImpl::kExecutor) {
    ASSERT_NE(rt.executor_group(), nullptr);
    EXPECT_GT(rt.controller().stats().exec_dispatched.value(), 0u);
  } else {
    EXPECT_EQ(rt.executor_group(), nullptr);
  }
}

TEST_F(ExecutorStress, MixedWorkloadExecutorDispatch) {
  const std::uint64_t seed = testing::test_seed(2024);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  run_mixed_cell(DispatchImpl::kExecutor, seed);
  dog_->kick();
}

TEST_F(ExecutorStress, MixedWorkloadPoolDispatch) {
  const std::uint64_t seed = testing::test_seed(2024);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  run_mixed_cell(DispatchImpl::kElasticPool, seed);
  dog_->kick();
}

TEST_F(ExecutorStress, BlockingChurnForcesHandoffs) {
  // Repeatedly park a consumer inside a handler while other computations
  // keep flowing: the consumer role must hand off and recover every round.
  const std::uint64_t seed = testing::test_seed(7);
  SCOPED_TRACE("seed=" + std::to_string(seed));
  constexpr int kRounds = SAMOA_UNDER_TSAN ? 4 : 10;
  Stack stack;
  auto& probe = stack.emplace<ProbeMp>("p", std::chrono::microseconds(2));
  EventType probe_ev("P");
  stack.bind(probe_ev, *probe.handler);
  std::vector<BlockingMp*> blockers;
  std::vector<EventType> block_evs;
  for (int r = 0; r < kRounds; ++r) {
    auto& b = stack.emplace<BlockingMp>("b" + std::to_string(r));
    blockers.push_back(&b);
    block_evs.emplace_back("B" + std::to_string(r));
    stack.bind(block_evs.back(), *b.handler);
  }
  RuntimeOptions opts;
  opts.policy = CCPolicy::kVCABasic;
  opts.dispatch_impl = DispatchImpl::kExecutor;
  opts.record_trace = true;
  Runtime rt(stack, opts);
  for (int r = 0; r < kRounds; ++r) {
    auto blocked = rt.spawn_isolated(
        Isolation::basic({blockers[static_cast<std::size_t>(r)]}),
        [&, r](Context& ctx) { ctx.trigger(block_evs[static_cast<std::size_t>(r)]); });
    blockers[static_cast<std::size_t>(r)]->started.wait();
    std::vector<ComputationHandle> hs;
    for (int i = 0; i < 8; ++i) {
      hs.push_back(rt.spawn_isolated(Isolation::basic({&probe}),
                                     [&](Context& ctx) { ctx.trigger(probe_ev); }));
    }
    for (auto& h : hs) h.wait();
    blockers[static_cast<std::size_t>(r)]->release.set();
    blocked.wait();
    dog_->kick();
  }
  rt.drain();
  EXPECT_EQ(probe.calls.load(), kRounds * 8);
  EXPECT_GE(rt.controller().stats().exec_handoffs.value(), static_cast<std::uint64_t>(kRounds));
  testing::expect_isolated(rt);
}

}  // namespace
}  // namespace samoa
