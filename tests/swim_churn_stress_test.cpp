// 200-site churn stress: the E-SWIM acceptance scenario as a stress cell.
//
// Runs the virtual_fleet churn harness at fleet scale — simultaneous crash
// of 10% of the sites, flapping links (one asymmetric), a partitioned-and-
// healed minority island — under the SWIM detector, and requires
// convergence to the agreed survivor view with zero virtual-synchrony
// violations. A deadlock watchdog converts any wedge into an immediate
// abort with a blocked-state dump instead of a silent ctest timeout; on an
// assertion-level failure the chaos log, detector counters and vs_checker
// report are written to SAMOA_WATCHDOG_DIR for CI artifact upload.
//
// Scale knobs: SAMOA_CHURN_SITES overrides the fleet size (the nightly CI
// sweep sets 200; the tier-1/TSan default is smaller because the RelCast
// flood makes each broadcast O(n^2) packets and sanitizers multiply the
// per-packet cost).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "diag/watchdog.hpp"
#include "virtual_fleet.hpp"

#if defined(__SANITIZE_THREAD__)
#define SAMOA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMOA_UNDER_TSAN 1
#endif
#endif
#ifndef SAMOA_UNDER_TSAN
#define SAMOA_UNDER_TSAN 0
#endif

namespace samoa::gc {
namespace {

using namespace std::chrono_literals;

int churn_sites() {
  if (const char* env = std::getenv("SAMOA_CHURN_SITES")) {
    const int n = std::atoi(env);
    if (n >= 5) return n;
  }
  return SAMOA_UNDER_TSAN ? 64 : 120;
}

// Virtual-time failsafe override, for triage: a non-converging fleet burns
// wall clock until the horizon, so a short horizon plus the failure report
// gives a cheap state snapshot of how far views/deliveries progressed.
std::chrono::microseconds churn_horizon() {
  if (const char* env = std::getenv("SAMOA_CHURN_HORIZON_MS")) {
    const long ms = std::atol(env);
    if (ms > 0) return std::chrono::microseconds(ms * 1000);
  }
  return std::chrono::microseconds(20'000'000);
}

void dump_failure_report(const testing::ChurnConfig& cfg, const testing::ChurnOutcome& out) {
  const char* dir = std::getenv("SAMOA_WATCHDOG_DIR");
  if (dir == nullptr) return;
  std::ofstream f(std::string(dir) + "/swim_churn_report.txt");
  f << "swim_churn_stress failure report\n"
    << "sites=" << cfg.sites << " seed=" << cfg.seed << " converged=" << out.converged
    << " converged_at_us=" << out.converged_at_us << "\n"
    << "first_suspicion_us=" << out.first_suspicion_us
    << " all_suspected_us=" << out.all_suspected_us
    << " false_positive_pairs=" << out.false_positive_pairs << "\n"
    << "suspicions=" << out.suspicions << " revocations=" << out.revocations
    << " refutations=" << out.refutations << " confirmations=" << out.confirmations << "\n"
    << "net sent=" << out.net_sent << " delivered=" << out.net_delivered
    << " dropped=" << out.net_dropped << "\n\n"
    << out.vs.describe() << "\n\nchaos log:\n";
  for (const auto& line : out.chaos_log) f << "  " << line << "\n";
  f << "\nview lines:\n";
  for (const auto& line : out.view_lines) f << "  " << line << "\n";
  f << "\ndelivery traces:\n";
  for (const auto& line : out.trace_lines) f << "  " << line << "\n";
}

class SwimChurnStress : public ::testing::Test {
 protected:
  void SetUp() override {
    diag::WatchdogOptions opts;
    // Virtual-clock fleets make steady progress or are wedged; the budget
    // only needs to cover sanitizer-paced packet processing.
    opts.budget = SAMOA_UNDER_TSAN ? 600s : 180s;
    opts.name = "swim_churn_stress";
    opts.abort_on_stall = true;
    if (const char* dir = std::getenv("SAMOA_WATCHDOG_DIR")) opts.dump_dir = dir;
    if (const char* ms = std::getenv("SAMOA_WATCHDOG_STUCK")) {
      const int n = std::atoi(ms);
      if (n > 0) opts.stuck_wait_budget = std::chrono::milliseconds(n);
    }
    dog_ = std::make_unique<diag::DeadlockWatchdog>(std::move(opts));
  }
  void TearDown() override { dog_.reset(); }

  std::unique_ptr<diag::DeadlockWatchdog> dog_;
};

TEST_F(SwimChurnStress, MassCrashFlapsAndPartitionConverge) {
  testing::ChurnConfig cfg;
  cfg.sites = churn_sites();
  cfg.seed = 20260809;
  cfg.detector = DetectorImpl::kSwim;
  // Bigger fleet => longer dissemination tail before every crashed site is
  // known at the observer: ~log2(n) epidemic rounds per rumor, but n/10
  // simultaneous rumors compete for the per-message piggyback cap (and 1%
  // of carriers drop), so the slowest of the batch needs linear-ish
  // headroom. 30ms was not enough for 20 parallel rumors at 200 sites.
  if (cfg.sites > 120) {
    cfg.detect_window = std::chrono::microseconds(20'000 + 200L * cfg.sites);
  }
  cfg.horizon = churn_horizon();

  const auto out = testing::run_churn_fleet(cfg);
  if (!out.converged || !out.vs.ok()) dump_failure_report(cfg, out);

  ASSERT_TRUE(out.converged) << "churn fleet never converged (sites=" << cfg.sites << ")";
  ASSERT_TRUE(out.vs.ok()) << out.vs.describe();
  dog_->kick();

  // The detector earned its keep: the mass crash was noticed quickly and
  // fully inside the detect window, churn produced suspicions, and the
  // healed island refuted instead of staying confirmed-faulty.
  EXPECT_GE(out.first_suspicion_us, 30000);
  EXPECT_GT(out.all_suspected_us, 0);
  EXPECT_GT(out.suspicions, 0u);
  EXPECT_GT(out.refutations, 0u);
  EXPECT_GT(out.revocations, 0u);
  EXPECT_GT(out.updates_piggybacked, 0u);

  RecordProperty("sites", cfg.sites);
  RecordProperty("first_suspicion_us", static_cast<int>(out.first_suspicion_us));
  RecordProperty("all_suspected_us", static_cast<int>(out.all_suspected_us));
  RecordProperty("false_positive_pairs", static_cast<int>(out.false_positive_pairs));
  RecordProperty("net_sent", static_cast<int>(out.net_sent));
  std::printf(
      "sites=%d converged_at_us=%ld detect(first/all)=%ld/%ld us after crash "
      "fp_pairs=%llu suspicions=%llu revocations=%llu refutations=%llu "
      "probes=%llu ping_reqs=%llu piggybacked=%llu net_sent=%llu\n",
      cfg.sites, out.converged_at_us, out.first_suspicion_us - 30000, out.all_suspected_us - 30000,
      static_cast<unsigned long long>(out.false_positive_pairs),
      static_cast<unsigned long long>(out.suspicions),
      static_cast<unsigned long long>(out.revocations),
      static_cast<unsigned long long>(out.refutations),
      static_cast<unsigned long long>(out.probes_sent),
      static_cast<unsigned long long>(out.ping_reqs_sent),
      static_cast<unsigned long long>(out.updates_piggybacked),
      static_cast<unsigned long long>(out.net_sent));
}

}  // namespace
}  // namespace samoa::gc
