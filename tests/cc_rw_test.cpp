// Tests for VCArw — the read/write extension (paper Section 7 future
// work): reader groups share a microprotocol concurrently, writers stay
// exclusive and ordered, and declaration violations are rejected.
#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;

RuntimeOptions rw_opts(bool trace = false) {
  RuntimeOptions o;
  o.policy = CCPolicy::kVCARW;
  o.record_trace = trace;
  return o;
}

/// Microprotocol with one read-write and one read-only handler, plus
/// instrumentation for concurrent-reader detection.
class Register : public Microprotocol {
 public:
  Register() : Microprotocol("register") {
    write = &register_handler("write", [this](Context&, const Message& m) {
      value = m.as<int>();
      writes.fetch_add(1);
    });
    read = &register_handler(
        "read",
        [this](Context&, const Message&) {
          const int now = readers_in.fetch_add(1) + 1;
          int seen = max_readers.load();
          while (now > seen && !max_readers.compare_exchange_weak(seen, now)) {
          }
          // Sleep (not spin): on a single-core host a sleeping reader
          // yields the CPU, so concurrent group members genuinely overlap.
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
          last_seen.store(value);
          readers_in.fetch_sub(1);
          reads.fetch_add(1);
        },
        HandlerMode::kReadOnly);
  }
  const Handler* write = nullptr;
  const Handler* read = nullptr;
  int value = 0;
  std::atomic<int> writes{0};
  std::atomic<int> reads{0};
  std::atomic<int> last_seen{0};
  std::atomic<int> readers_in{0};
  std::atomic<int> max_readers{0};
};

struct Fixture {
  Stack stack;
  Register* reg;
  EventType ev_read{"Read"}, ev_write{"Write"};

  Fixture() {
    reg = &stack.emplace<Register>();
    stack.bind(ev_read, *reg->read);
    stack.bind(ev_write, *reg->write);
  }

  Isolation reader() const { return Isolation::read_write({{reg, Access::kRead}}); }
  Isolation writer() const { return Isolation::read_write({{reg, Access::kWrite}}); }
};

TEST(VCARW, RequiresReadWriteDeclaration) {
  Fixture f;
  Runtime rt(f.stack, rw_opts());
  EXPECT_THROW(rt.spawn_isolated(Isolation::basic({f.reg}), [](Context&) {}), ConfigError);
}

TEST(VCARW, HandlerModesAreRecorded) {
  Fixture f;
  EXPECT_TRUE(f.reg->read->read_only());
  EXPECT_FALSE(f.reg->write->read_only());
  EXPECT_EQ(f.reg->read->mode(), HandlerMode::kReadOnly);
}

TEST(VCARW, ReadDeclarationRejectsWriteHandler) {
  Fixture f;
  Runtime rt(f.stack, rw_opts());
  auto h = rt.spawn_isolated(f.reader(),
                             [&](Context& ctx) { ctx.trigger(f.ev_write, Message::of(1)); });
  EXPECT_THROW(h.wait(), IsolationError);
  EXPECT_EQ(f.reg->writes.load(), 0);
}

TEST(VCARW, WriteDeclarationAllowsBothHandlerKinds) {
  Fixture f;
  Runtime rt(f.stack, rw_opts());
  rt.spawn_isolated(f.writer(), [&](Context& ctx) {
      ctx.trigger(f.ev_write, Message::of(7));
      ctx.trigger(f.ev_read);
    }).wait();
  EXPECT_EQ(f.reg->writes.load(), 1);
  EXPECT_EQ(f.reg->reads.load(), 1);
  EXPECT_EQ(f.reg->last_seen.load(), 7);
}

TEST(VCARW, UndeclaredMicroprotocolThrows) {
  Fixture f;
  auto& other = f.stack.emplace<Register>();
  EventType ev_other("Other");
  f.stack.bind(ev_other, *other.read);
  Runtime rt(f.stack, rw_opts());
  auto h = rt.spawn_isolated(f.reader(), [&](Context& ctx) { ctx.trigger(ev_other); });
  EXPECT_THROW(h.wait(), IsolationError);
}

TEST(VCARW, ReadersOfOneGroupRunConcurrently) {
  Fixture f;
  Runtime rt(f.stack, rw_opts(/*trace=*/true));
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 8; ++i) {
    hs.push_back(
        rt.spawn_isolated(f.reader(), [&](Context& ctx) { ctx.trigger(f.ev_read); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(f.reg->reads.load(), 8);
  // All eight were admitted back-to-back into one group; with 500us of
  // read work on an otherwise idle machine at least two must have
  // genuinely overlapped.
  EXPECT_GE(f.reg->max_readers.load(), 2)
      << "reader group never overlapped — VCArw degraded to exclusive access";
  testing::expect_isolated(rt);
}

TEST(VCARW, WritersRemainExclusive) {
  Fixture f;
  Runtime rt(f.stack, rw_opts(/*trace=*/true));
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 10; ++i) {
    hs.push_back(rt.spawn_isolated(
        f.writer(), [&, i](Context& ctx) { ctx.trigger(f.ev_write, Message::of(i)); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(f.reg->writes.load(), 10);
  EXPECT_EQ(f.reg->value, 9);  // admission order = version order = FIFO
  testing::expect_isolated(rt);
}

TEST(VCARW, WriterClosesReaderGroup) {
  // Readers admitted after a writer must not join the pre-writer group:
  // they would otherwise read concurrently with state the writer is
  // mutating. Schedule: R1 (blocking read) | W | R2 — R2 must wait for W.
  Stack stack;
  class GatedRegister : public Microprotocol {
   public:
    GatedRegister() : Microprotocol("gated") {
      write = &register_handler("write", [this](Context&, const Message&) {
        write_done.store(true);
      });
      read = &register_handler(
          "read",
          [this](Context&, const Message&) {
            if (!first_read_started.is_set()) {
              first_read_started.set();
              release_first.wait();
            } else {
              second_saw_write.store(write_done.load());
            }
          },
          HandlerMode::kReadOnly);
    }
    const Handler* write = nullptr;
    const Handler* read = nullptr;
    OneShotEvent first_read_started, release_first;
    std::atomic<bool> write_done{false};
    std::atomic<bool> second_saw_write{false};
  };
  auto& reg = stack.emplace<GatedRegister>();
  EventType ev_read("R"), ev_write("W");
  stack.bind(ev_read, *reg.read);
  stack.bind(ev_write, *reg.write);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCARW, .record_trace = true});

  auto r1 = rt.spawn_isolated(Isolation::read_write({{&reg, Access::kRead}}),
                              [&](Context& ctx) { ctx.trigger(ev_read); });
  reg.first_read_started.wait();
  auto w = rt.spawn_isolated(Isolation::read_write({{&reg, Access::kWrite}}),
                             [&](Context& ctx) { ctx.trigger(ev_write); });
  auto r2 = rt.spawn_isolated(Isolation::read_write({{&reg, Access::kRead}}),
                              [&](Context& ctx) { ctx.trigger(ev_read); });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(reg.write_done.load()) << "writer ran while the reader group was active";
  reg.release_first.set();
  r1.wait();
  w.wait();
  r2.wait();
  EXPECT_TRUE(reg.second_saw_write.load()) << "post-writer reader joined the pre-writer group";
  rt.drain();
  testing::expect_isolated(rt);
}

TEST(VCARW, MixedWorkloadIsIsolated) {
  Fixture f;
  Runtime rt(f.stack, rw_opts(/*trace=*/true));
  Rng rng(77);
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 60; ++i) {
    if (rng.chance(0.7)) {
      hs.push_back(
          rt.spawn_isolated(f.reader(), [&](Context& ctx) { ctx.trigger(f.ev_read); }));
    } else {
      hs.push_back(rt.spawn_isolated(
          f.writer(), [&, i](Context& ctx) { ctx.trigger(f.ev_write, Message::of(i)); }));
    }
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  auto report = testing::expect_isolated(rt);
  EXPECT_FALSE(report.serial);  // reader groups genuinely overlapped
}

TEST(VCARW, BlockedReaderDoesNotWedgeLaterGroups) {
  // A reader group that finishes while an *older* writer still holds the
  // version must defer its upgrade; everything still completes.
  Fixture f;
  auto& park = f.stack.emplace<BlockingMp>("park");
  EventType ev_park("Park");
  f.stack.bind(ev_park, *park.handler);
  Runtime rt(f.stack, rw_opts());
  // Writer W holds `register` while parked in `park`.
  auto w = rt.spawn_isolated(
      Isolation::read_write({{f.reg, Access::kWrite}, {&park, Access::kWrite}}),
      [&](Context& ctx) {
        ctx.trigger(f.ev_write, Message::of(1));
        ctx.trigger(ev_park);
      });
  park.started.wait();
  auto r1 = rt.spawn_isolated(f.reader(), [&](Context& ctx) { ctx.trigger(f.ev_read); });
  auto r2 = rt.spawn_isolated(f.reader(), [&](Context& ctx) { ctx.trigger(f.ev_read); });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(f.reg->reads.load(), 0) << "readers overtook an older writer";
  park.release.set();
  w.wait();
  r1.wait();
  r2.wait();
  EXPECT_EQ(f.reg->reads.load(), 2);
}

}  // namespace
}  // namespace samoa
