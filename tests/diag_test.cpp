// Blocked-state registry + deadlock watchdog tests.
//
// The acceptance bar for the diag layer: when a run is wedged, the dump
// must *name* the cycle — which computation waits on which gate version,
// and which computation holds it — rather than just reporting "stuck".
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"
#include "diag/wait_registry.hpp"
#include "diag/watchdog.hpp"
#include "time/clock.hpp"
#include "util/sync.hpp"

namespace samoa {
namespace {

using namespace std::chrono_literals;
using diag::WaitRegistry;

TEST(WaitRegistry, RecordsAndRemovesWaits) {
  auto& reg = WaitRegistry::instance();
  const auto before = reg.wait_count();
  {
    diag::ScopedWait wait(diag::WaitKind::kExternal, nullptr, "unit", 7, 8, 3);
    EXPECT_EQ(reg.wait_count(), before + 1);
    const diag::Dump dump = reg.snapshot();
    bool found = false;
    for (const auto& w : dump.waits) {
      if (w.subject_name == "unit" && w.awaiting_lo == 7 && w.observed == 3) found = true;
    }
    EXPECT_TRUE(found) << "registered wait missing from snapshot";
  }
  EXPECT_EQ(reg.wait_count(), before);
}

TEST(WaitRegistry, TracksHoldersUntilRelease) {
  auto& reg = WaitRegistry::instance();
  int subject_tag = 0;  // any unique address works as a subject
  reg.note_admission(&subject_tag, "holders-mp", 1, 101);
  reg.note_admission(&subject_tag, "holders-mp", 2, 102);

  auto holders_of = [&](const diag::Dump& d) -> std::vector<diag::HolderEntry> {
    for (const auto& s : d.subjects) {
      if (s.subject == &subject_tag) return s.holders;
    }
    return {};
  };
  auto held = holders_of(reg.snapshot());
  ASSERT_EQ(held.size(), 2u);
  EXPECT_EQ(held[0].version, 1u);
  EXPECT_EQ(held[0].comp, 101u);

  reg.note_release(&subject_tag, 1);  // v1 published: only v2 outstanding
  held = holders_of(reg.snapshot());
  ASSERT_EQ(held.size(), 1u);
  EXPECT_EQ(held[0].version, 2u);
  EXPECT_EQ(held[0].comp, 102u);

  reg.forget_subject(&subject_tag);
  EXPECT_TRUE(holders_of(reg.snapshot()).empty());
}

TEST(WaitRegistry, ProgressEpochAdvancesOnGatePublish) {
  auto& reg = WaitRegistry::instance();
  const auto before = reg.progress_epoch();
  VersionGate gate;
  gate.set_lv(1);
  EXPECT_GT(reg.progress_epoch(), before);
}

// Two computations, two gates, crossed waits: comp 1 holds gate A's v1
// and waits on gate B; comp 2 holds gate B's v1 and waits on gate A. The
// snapshot must derive both wait-for edges and name the cycle.
class CrossedGateDeadlock {
 public:
  CrossedGateDeadlock() {
    // Gates self-report holders to the registry (HolderSource): admitting
    // through the gate is what records "comp N holds v1".
    gate_a_.admit(1, 1);
    gate_b_.admit(1, 2);
    t1_ = std::thread([this] {
      diag::ScopedComputation as_comp(1);
      gate_b_.wait_exact(1, stats_, "mp-B");  // blocked until comp 2 publishes
      done_.fetch_add(1);
    });
    t2_ = std::thread([this] {
      diag::ScopedComputation as_comp(2);
      gate_a_.wait_exact(1, stats_, "mp-A");  // blocked until comp 1 publishes
      done_.fetch_add(1);
    });
    // Wait until both threads actually parked.
    const auto deadline = std::chrono::steady_clock::now() + 5s;
    while (parked_waits() < 2 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(1ms);
    }
  }

  ~CrossedGateDeadlock() {
    // Break the deadlock so the test can end: publish both versions.
    gate_a_.set_lv(1);
    gate_b_.set_lv(1);
    t1_.join();
    t2_.join();
    // The gates unregister themselves from the registry on destruction.
  }

  std::size_t parked_waits() const {
    const auto dump = WaitRegistry::instance().snapshot();
    std::size_t n = 0;
    for (const auto& w : dump.waits) {
      if (w.subject == &gate_a_ || w.subject == &gate_b_) ++n;
    }
    return n;
  }

 private:
  VersionGate gate_a_;
  VersionGate gate_b_;
  CCStats stats_;
  std::thread t1_;
  std::thread t2_;
  std::atomic<int> done_{0};
};

TEST(WaitRegistry, NamesTheCycleOnCrossedGateWaits) {
  CrossedGateDeadlock wedge;
  ASSERT_EQ(wedge.parked_waits(), 2u) << "deadlock fixture failed to park both threads";

  const diag::Dump dump = WaitRegistry::instance().snapshot();
  ASSERT_FALSE(dump.cycle.empty()) << "cycle detection missed a 2-cycle:\n" << dump.to_text();
  // The cycle must name both gates, the versions, and the holders.
  const std::string text = dump.to_text();
  EXPECT_NE(text.find("DEADLOCK CYCLE"), std::string::npos) << text;
  EXPECT_NE(text.find("mp-A"), std::string::npos) << text;
  EXPECT_NE(text.find("mp-B"), std::string::npos) << text;
  EXPECT_NE(text.find("needs v1"), std::string::npos) << text;
  EXPECT_NE(text.find("held by comp"), std::string::npos) << text;

  const std::string json = dump.to_json();
  EXPECT_NE(json.find("\"deadlock\":true"), std::string::npos) << json;
}

TEST(DeadlockWatchdog, FiresOnStallAndReportsCycle) {
  std::atomic<int> stalls_seen{0};
  std::string cycle_text;
  std::mutex text_mu;

  diag::WatchdogOptions opts;
  opts.budget = 300ms;
  opts.poll = 20ms;
  opts.name = "diag-test";
  opts.dump_to_stderr = false;
  opts.on_stall = [&](const diag::Dump& dump) {
    std::unique_lock lock(text_mu);
    if (stalls_seen.fetch_add(1) == 0) cycle_text = dump.to_text();
  };
  diag::DeadlockWatchdog dog(opts);

  {
    CrossedGateDeadlock wedge;
    ASSERT_EQ(wedge.parked_waits(), 2u);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (stalls_seen.load() == 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(10ms);
    }
  }
  ASSERT_GE(stalls_seen.load(), 1) << "watchdog never detected the induced deadlock";
  EXPECT_GE(dog.stalls(), 1u);
  std::unique_lock lock(text_mu);
  EXPECT_NE(cycle_text.find("DEADLOCK CYCLE"), std::string::npos) << cycle_text;
  EXPECT_NE(cycle_text.find("held by comp"), std::string::npos) << cycle_text;
}

TEST(DeadlockWatchdog, StaysQuietWhenIdle) {
  // An idle process — no parked waits, no queued work — must not count as
  // a stall even though the progress epoch is frozen.
  diag::WatchdogOptions opts;
  opts.budget = 100ms;
  opts.poll = 10ms;
  opts.name = "idle-test";
  opts.dump_to_stderr = false;
  diag::DeadlockWatchdog dog(opts);
  std::this_thread::sleep_for(400ms);
  EXPECT_EQ(dog.stalls(), 0u);
}

TEST(DeadlockWatchdog, KickResetsTheWindow) {
  diag::WatchdogOptions opts;
  opts.budget = 200ms;
  opts.poll = 10ms;
  opts.name = "kick-test";
  opts.dump_to_stderr = false;
  std::atomic<int> stalls_seen{0};
  opts.on_stall = [&](const diag::Dump&) { stalls_seen.fetch_add(1); };
  diag::DeadlockWatchdog dog(opts);

  // Hold a wait open (so the stall predicate is armed) but keep kicking:
  // progress resets the window, so no stall may fire.
  diag::ScopedWait wait(diag::WaitKind::kExternal, nullptr, "kicked", 0, 0, 0);
  for (int i = 0; i < 10; ++i) {
    std::this_thread::sleep_for(50ms);
    dog.kick();
  }
  EXPECT_EQ(stalls_seen.load(), 0);
}

// A worker that drip-feeds a VirtualClock: each iteration parks on a short
// virtual deadline (the scheduler jumps time forward and wakes it), then
// spends real wall time before the next one — so simulated time keeps
// moving across the watchdog's polls, the way a long live experiment does.
class VirtualTimeDriver {
 public:
  explicit VirtualTimeDriver(time::VirtualClock& clock) : clock_(clock) {
    thread_ = std::thread([this] {
      time::WorkerHandle worker(clock_);
      std::mutex mu;
      std::condition_variable cv;
      while (!stop_.load(std::memory_order_relaxed)) {
        const auto deadline = clock_.now() + 1ms;
        {
          std::unique_lock lock(mu);
          while (clock_.now() < deadline && !stop_.load(std::memory_order_relaxed)) {
            clock_.wait_until(worker.id(), lock, cv, deadline,
                              [this] { return stop_.load(std::memory_order_relaxed); });
          }
        }
        std::this_thread::sleep_for(5ms);
      }
    });
  }

  ~VirtualTimeDriver() {
    stop_.store(true, std::memory_order_relaxed);
    clock_.interrupt();  // in case the worker is parked when we stop
    thread_.join();
  }

 private:
  time::VirtualClock& clock_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

TEST(DeadlockWatchdog, ClockAwareStuckBudgetIgnoresLongVirtualWaits) {
  // A wait parked for far longer than the stuck budget while the virtual
  // clock keeps advancing is a live simulation, not a wedge. The
  // clock-aware watchdog must stay quiet; an identically-configured
  // wall-budget watchdog (the control) must trip, proving the window the
  // clock awareness closes.
  time::VirtualClock clock;
  VirtualTimeDriver driver(clock);

  diag::WatchdogOptions aware_opts;
  aware_opts.budget = 30s;  // only the stuck-wait detector is under test
  aware_opts.poll = 10ms;
  aware_opts.stuck_wait_budget = 150ms;
  aware_opts.clock = &clock;
  aware_opts.name = "vclock-aware";
  aware_opts.dump_to_stderr = false;
  diag::DeadlockWatchdog aware(aware_opts);

  diag::WatchdogOptions naive_opts = aware_opts;
  naive_opts.clock = nullptr;
  naive_opts.name = "vclock-naive";
  diag::DeadlockWatchdog naive(naive_opts);

  {
    diag::ScopedWait wait(diag::WaitKind::kExternal, nullptr, "virtual-sleep", 0, 0, 0);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (naive.stalls() == 0 && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(10ms);
    }
  }
  EXPECT_GE(naive.stalls(), 1u) << "control never tripped; the fixture is not parking long enough";
  EXPECT_EQ(aware.stalls(), 0u) << "clock-aware watchdog false-tripped on a live simulation";
}

TEST(DeadlockWatchdog, ClockAwareStuckBudgetStillTripsWhenSimulationFreezes) {
  // Clock awareness must not disable the detector: a virtual clock that
  // never advances (a wedged scheduler) plus a long-parked wait is exactly
  // the stall the stuck budget exists for.
  time::VirtualClock clock;  // no workers, no deadlines: now() is frozen
  diag::WatchdogOptions opts;
  opts.budget = 30s;
  opts.poll = 10ms;
  opts.stuck_wait_budget = 100ms;
  opts.clock = &clock;
  opts.name = "vclock-frozen";
  opts.dump_to_stderr = false;
  std::atomic<int> stalls_seen{0};
  opts.on_stall = [&](const diag::Dump&) { stalls_seen.fetch_add(1); };
  diag::DeadlockWatchdog dog(opts);

  diag::ScopedWait wait(diag::WaitKind::kExternal, nullptr, "wedged", 0, 0, 0);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (stalls_seen.load() == 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_GE(stalls_seen.load(), 1) << "frozen virtual clock + parked wait never tripped";
  EXPECT_GE(dog.stalls(), 1u);
}

}  // namespace
}  // namespace samoa
