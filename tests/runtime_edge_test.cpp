// Edge-case and robustness tests for the runtime kernel: empty
// computations, deep nesting, fan-out limits, error paths, handle
// semantics, and cross-policy spec compatibility.
#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace samoa {
namespace {

using testing::ProbeMp;

TEST(RuntimeEdge, EmptyRootCompletesUnderEveryPolicy) {
  for (auto policy : {CCPolicy::kSerial, CCPolicy::kUnsync, CCPolicy::kVCABasic,
                      CCPolicy::kVCABound, CCPolicy::kVCARoute, CCPolicy::kVCARW,
                      CCPolicy::kTSO}) {
    Stack stack;
    auto& mp = stack.emplace<ProbeMp>("p");
    Runtime rt(stack, RuntimeOptions{.policy = policy});
    Isolation iso = [&]() -> Isolation {
      switch (policy) {
        case CCPolicy::kVCABound:
          return Isolation::bound({{&mp, 1}});
        case CCPolicy::kVCARoute:
          return Isolation::route(RouteSpec{}.entry(*mp.handler));
        case CCPolicy::kVCARW:
          return Isolation::read_write({{&mp, Access::kWrite}});
        default:
          return Isolation::basic({&mp});
      }
    }();
    auto h = rt.spawn_isolated(std::move(iso), [](Context&) {});
    EXPECT_TRUE(h.wait_for(std::chrono::milliseconds(5000)))
        << "empty computation hung under " << to_string(policy);
    EXPECT_FALSE(h.failed());
  }
}

TEST(RuntimeEdge, DeepSyncNesting) {
  // 200-deep recursive sync triggers through one microprotocol.
  Stack stack;
  EventType ev("Recurse");
  class Recurser : public Microprotocol {
   public:
    explicit Recurser(EventType ev) : Microprotocol("rec"), ev_(ev) {
      h = &register_handler("h", [this](Context& ctx, const Message& m) {
        const int depth = m.as<int>();
        max_depth = std::max(max_depth, depth);
        if (depth > 0) ctx.trigger(ev_, Message::of(depth - 1));
      });
    }
    const Handler* h;
    int max_depth = 0;
   private:
    EventType ev_;
  };
  auto& rec = stack.emplace<Recurser>(ev);
  stack.bind(ev, *rec.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&rec}),
                    [&](Context& ctx) { ctx.trigger(ev, Message::of(200)); })
      .wait();
  EXPECT_EQ(rec.max_depth, 200);
}

TEST(RuntimeEdge, WideAsyncFanout) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) {
      for (int i = 0; i < 500; ++i) ctx.async_trigger(ev);
    }).wait();
  EXPECT_EQ(mp.calls.load(), 500);
}

TEST(RuntimeEdge, HandleWaitForTimesOutWhileRunning) {
  Stack stack;
  auto& mp = stack.emplace<testing::BlockingMp>("b");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({&mp}),
                             [&](Context& ctx) { ctx.trigger(ev); });
  EXPECT_FALSE(h.wait_for(std::chrono::milliseconds(30)));
  EXPECT_FALSE(h.done());
  mp.release.set();
  EXPECT_TRUE(h.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_TRUE(h.done());
}

TEST(RuntimeEdge, ManySequentialRuntimesOnOneStack) {
  // A stack can be driven by consecutive runtimes (e.g. test fixtures).
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  for (int r = 0; r < 3; ++r) {
    Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
    rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) { ctx.trigger(ev); }).wait();
  }
  EXPECT_EQ(mp.calls.load(), 3);
}

TEST(RuntimeEdge, ErrorInOneComputationDoesNotPoisonOthers) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  class Thrower : public Microprotocol {
   public:
    Thrower() : Microprotocol("thrower") {
      h = &register_handler("h", [](Context&, const Message&) {
        throw std::runtime_error("bang");
      });
    }
    const Handler* h;
  };
  auto& bad = stack.emplace<Thrower>();
  EventType ev_ok("Ok"), ev_bad("Bad");
  stack.bind(ev_ok, *mp.handler);
  stack.bind(ev_bad, *bad.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  std::vector<ComputationHandle> oks;
  for (int i = 0; i < 10; ++i) {
    rt.spawn_isolated(Isolation::basic({&bad}), [&](Context& ctx) { ctx.trigger(ev_bad); });
    oks.push_back(
        rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) { ctx.trigger(ev_ok); }));
  }
  for (auto& h : oks) EXPECT_NO_THROW(h.wait());
  EXPECT_EQ(mp.calls.load(), 10);
  rt.drain();
}

TEST(RuntimeEdge, StatsCountersAreConsistent) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  EventType ev("Run");
  stack.bind(ev, *mp.handler);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  for (int i = 0; i < 7; ++i) {
    rt.spawn_isolated(Isolation::basic({&mp}), [&](Context& ctx) {
      ctx.trigger(ev);
      ctx.trigger(ev);
    });
  }
  rt.drain();
  EXPECT_EQ(rt.stats().spawned.value(), 7u);
  EXPECT_EQ(rt.stats().completed.value(), 7u);
  EXPECT_EQ(rt.stats().handler_calls.value(), 14u);
}

TEST(RuntimeEdge, MessagePayloadVariety) {
  Stack stack;
  struct Big {
    std::vector<int> data;
    std::string label;
  };
  class Sink : public Microprotocol {
   public:
    Sink() : Microprotocol("sink") {
      h = &register_handler("h", [this](Context&, const Message& m) {
        total += m.as<Big>().data.size();
      });
    }
    const Handler* h;
    std::size_t total = 0;
  };
  auto& sink = stack.emplace<Sink>();
  EventType ev("Big");
  stack.bind(ev, *sink.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&sink}), [&](Context& ctx) {
      ctx.trigger(ev, Message::of(Big{std::vector<int>(10000, 1), "large"}));
    }).wait();
  EXPECT_EQ(sink.total, 10000u);
}

TEST(RuntimeEdge, MixedPoliciesAcrossRuntimesCoexist) {
  // Two runtimes with different policies over different stacks running
  // concurrently in one process (controllers are per-runtime).
  Stack s1, s2;
  auto& a = s1.emplace<ProbeMp>("a", std::chrono::microseconds(100));
  auto& b = s2.emplace<ProbeMp>("b", std::chrono::microseconds(100));
  EventType eva("A"), evb("B");
  s1.bind(eva, *a.handler);
  s2.bind(evb, *b.handler);
  Runtime r1(s1, RuntimeOptions{.policy = CCPolicy::kSerial});
  Runtime r2(s2, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 10; ++i) {
    hs.push_back(r1.spawn_isolated(Isolation::basic({&a}),
                                   [&](Context& ctx) { ctx.trigger(eva); }));
    hs.push_back(r2.spawn_isolated(Isolation::basic({&b}),
                                   [&](Context& ctx) { ctx.trigger(evb); }));
  }
  for (auto& h : hs) h.wait();
  EXPECT_EQ(a.calls.load(), 10);
  EXPECT_EQ(b.calls.load(), 10);
}

}  // namespace
}  // namespace samoa
