// End-to-end tests on the paper's Figure 1 protocol: every controller is
// exercised with the two concurrent external events a0 and b0, and the
// recorded runs are classified exactly as Section 2 does for r1/r2/r3.
#include <gtest/gtest.h>

#include "proto/fig1.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace samoa {
namespace {

using proto::Fig1Msg;
using proto::Fig1Protocol;

struct Fig1Param {
  CCPolicy policy;
  bool must_be_serial;  // Appia-like baseline admits only serial runs
};

class Fig1AllPolicies : public ::testing::TestWithParam<Fig1Param> {};

TEST_P(Fig1AllPolicies, TwoExternalEventsAreIsolated) {
  const auto param = GetParam();
  Fig1Protocol proto;
  Runtime rt(proto.stack(), RuntimeOptions{.policy = param.policy, .record_trace = true});

  // Slow R for ka so that schedules genuinely interleave when permitted.
  auto ka = proto.spawn(rt, Fig1Msg{.tag = 'a', .delay_r = std::chrono::microseconds(2000)});
  auto kb = proto.spawn(rt, Fig1Msg{.tag = 'b'});
  ka.wait();
  kb.wait();
  rt.drain();

  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << to_string(param.policy) << ": " << report.summary();
  if (param.must_be_serial) {
    EXPECT_TRUE(report.serial);
  }

  // All four stages executed for both computations.
  const auto log = proto.access_log();
  EXPECT_EQ(log.size(), 6u);
}

INSTANTIATE_TEST_SUITE_P(
    Policies, Fig1AllPolicies,
    ::testing::Values(Fig1Param{CCPolicy::kSerial, true},
                      Fig1Param{CCPolicy::kVCABasic, false},
                      Fig1Param{CCPolicy::kVCABound, false},
                      Fig1Param{CCPolicy::kVCARoute, false}),
    [](const ::testing::TestParamInfo<Fig1Param>& info) {
      return to_string(info.param.policy);
    });

TEST(Fig1, RepeatedPairsStayIsolatedUnderVCABasic) {
  Fig1Protocol proto;
  Runtime rt(proto.stack(), RuntimeOptions{.policy = CCPolicy::kVCABasic, .record_trace = true});
  std::vector<ComputationHandle> hs;
  Rng rng(2024);
  for (int i = 0; i < 25; ++i) {
    hs.push_back(proto.spawn(
        rt, Fig1Msg{.tag = 'a',
                    .delay_r = std::chrono::microseconds(rng.next_below(500))}));
    hs.push_back(proto.spawn(
        rt, Fig1Msg{.tag = 'b',
                    .delay_s = std::chrono::microseconds(rng.next_below(500))}));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_EQ(proto.access_log().size(), 50u * 3u);
}

TEST(Fig1, UnsyncProducesR3StyleViolation) {
  // Engineer the paper's run r3: ka is slow inside R (so kb's R execution
  // overlaps or slips in between) and slow before S. Repeat until the
  // checker flags a violation — the unsynchronised baseline permits it.
  bool violated = false;
  for (int attempt = 0; attempt < 20 && !violated; ++attempt) {
    Fig1Protocol proto;
    // Pin the elastic pool: the r3 demo needs ka and kb to overlap at the
    // OS level, and under executor dispatch both root tasks land on the
    // same per-mp shard (serialized even without gates — which is exactly
    // the point of that substrate).
    RuntimeOptions opts{.policy = CCPolicy::kUnsync, .record_trace = true};
    opts.dispatch_impl = DispatchImpl::kElasticPool;
    Runtime rt(proto.stack(), opts);
    auto ka = proto.spawn(rt, Fig1Msg{.tag = 'a', .delay_r = std::chrono::microseconds(3000)});
    auto kb = proto.spawn(rt, Fig1Msg{.tag = 'b'});
    ka.wait();
    kb.wait();
    rt.drain();
    violated = !check_isolation(rt.trace()->snapshot()).isolated;
  }
  EXPECT_TRUE(violated) << "unsync baseline never produced an r3-style run in 20 attempts";
}

TEST(Fig1, SerialOrderMatchesCausality) {
  // Under VCAbasic the admission order fixes the serialization order:
  // ka spawned first must precede kb in the equivalent serial order when
  // they conflict on R and S.
  Fig1Protocol proto;
  Runtime rt(proto.stack(), RuntimeOptions{.policy = CCPolicy::kVCABasic, .record_trace = true});
  auto ka = proto.spawn(rt, Fig1Msg{.tag = 'a', .delay_r = std::chrono::microseconds(1000)});
  auto kb = proto.spawn(rt, Fig1Msg{.tag = 'b'});
  ka.wait();
  kb.wait();
  rt.drain();
  auto report = check_isolation(rt.trace()->snapshot());
  ASSERT_TRUE(report.isolated);
  ASSERT_EQ(report.equivalent_serial_order.size(), 2u);
  EXPECT_EQ(report.equivalent_serial_order[0], ka.id());
  EXPECT_EQ(report.equivalent_serial_order[1], kb.id());
}

TEST(Fig1, BoundVariantReleasesREarly) {
  // With per-microprotocol bound 1, ka's completed R visit releases R to
  // kb while ka is still inside S — more overlap than VCAbasic, still
  // isolated.
  Fig1Protocol proto;
  Runtime rt(proto.stack(), RuntimeOptions{.policy = CCPolicy::kVCABound, .record_trace = true});
  auto ka = proto.spawn(rt, Fig1Msg{.tag = 'a', .delay_s = std::chrono::microseconds(5000)});
  auto kb = proto.spawn(rt, Fig1Msg{.tag = 'b'});
  ka.wait();
  kb.wait();
  rt.drain();
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
}

}  // namespace
}  // namespace samoa
