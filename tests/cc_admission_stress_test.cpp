// Admission fast-path stress cells — tier-1 pin for the sharded lock-free
// admission scheme (and the TSan subject for its memory ordering).
//
// Three layers are hammered concurrently:
//   1. the raw gate protocol: threads admit / park / publish on shared
//      VersionGates, including claim_range bursts, and the gates must end
//      at exactly the number of admitted versions;
//   2. the controller scoreboard: a single-mp-only workload driven through
//      a real Runtime from many spawner threads must never touch the
//      lock-ordered slow path (admit_slow == 0 is the acceptance criterion
//      for "no-conflict admits take no locks");
//   3. mixed single/multi-mp batches racing each other, which exercises
//      the OrderedAdmission transaction against concurrent lock-free
//      fetch_adds on the same gates.
//
// A fail-fast deadlock watchdog converts any lost wakeup or admission
// deadlock into an abort with a blocked-state dump instead of a silent
// 300-second ctest timeout. The CI TSan job runs this binary to catch the
// data-race flavor of the same bugs.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"
#include "diag/watchdog.hpp"
#include "test_support.hpp"

#if defined(__SANITIZE_THREAD__)
#define SAMOA_UNDER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define SAMOA_UNDER_TSAN 1
#endif
#endif
#ifndef SAMOA_UNDER_TSAN
#define SAMOA_UNDER_TSAN 0
#endif

namespace samoa {
namespace {

using namespace std::chrono_literals;
using testing::ProbeMp;

// TSan costs ~15x; shrink the iteration counts so the tier-1 wall time
// stays in seconds under both builds.
constexpr int kScale = SAMOA_UNDER_TSAN ? 8 : 1;

diag::WatchdogOptions watchdog_options(const char* name) {
  diag::WatchdogOptions opts;
  opts.budget = std::chrono::milliseconds(60000);
  opts.name = name;
  opts.abort_on_stall = true;
  return opts;
}

// Raw gate protocol under contention: every admitted version is published
// by its owner after waiting for its predecessor (the VCAbasic discipline),
// so admissions, parks and publishes from all threads interleave freely.
// claim_range bursts are mixed in; their sub-versions are published
// stepwise, exactly as batch-admitted computations complete one by one.
TEST(AdmissionStress, GateAdmitParkPublishRace) {
  diag::DeadlockWatchdog dog(watchdog_options("gate-admit-stress"));
  constexpr int kThreads = 8;
  constexpr int kGates = 3;
  const int iters = 20000 / kScale;

  GateTable gates;
  CCStats stats;
  std::atomic<std::uint64_t> admitted_per_gate[kGates] = {};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(testing::test_seed(900) + static_cast<std::uint64_t>(t));
      for (int i = 0; i < iters; ++i) {
        const int g = static_cast<int>(rng.next_below(kGates));
        VersionGate& gate = gates.gate(MicroprotocolId{static_cast<std::uint32_t>(g)});
        const std::uint64_t comp = static_cast<std::uint64_t>(t) * 1000000 + i + 1;
        if (rng.chance(0.25)) {
          // Burst claim: versions [first, last] all owned by this thread.
          const std::uint64_t n = 1 + rng.next_below(4);
          const std::uint64_t last = gate.claim_range(n);
          admitted_per_gate[g].fetch_add(n, std::memory_order_relaxed);
          for (std::uint64_t v = last - n + 1; v <= last; ++v) {
            gate.note_holder(v, comp);
            gate.wait_exact(v - 1, stats, "stress-burst");
            gate.set_lv(v);
          }
        } else {
          const std::uint64_t pv = gate.admit(1, comp);
          admitted_per_gate[g].fetch_add(1, std::memory_order_relaxed);
          gate.wait_exact(pv - 1, stats, "stress-admit");
          gate.set_lv(pv);
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  for (int g = 0; g < kGates; ++g) {
    VersionGate& gate = gates.gate(MicroprotocolId{static_cast<std::uint32_t>(g)});
    const std::uint64_t admitted = admitted_per_gate[g].load();
    EXPECT_EQ(gate.lv(), admitted) << "gate " << g << " lost a publish";
    EXPECT_EQ(gate.gv(), admitted) << "gate " << g << " lost an admission";
  }
}

// Controller scoreboard: a workload of exclusively single-mp computations,
// spawned concurrently from several threads (mixing spawn_isolated and
// spawn_isolated_batch), must be admitted entirely on the lock-free ticket
// path. admit_slow == 0 here is the repo's acceptance criterion for the
// admission fast path; a regression that sneaks a lock-ordered admission
// into the no-conflict case trips this exact counter.
TEST(AdmissionStress, SingleMpWorkloadNeverTakesSlowPath) {
  diag::DeadlockWatchdog dog(watchdog_options("single-mp-admission-stress"));
  constexpr int kSpawners = 4;
  constexpr int kMps = 4;
  const int per_thread = 400 / kScale;
  const int batch = 8;

  Stack stack;
  std::vector<ProbeMp*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < kMps; ++i) {
    auto& mp = stack.emplace<ProbeMp>("mp" + std::to_string(i));
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }
  stack.seal();  // spawners race below; seal before they start

  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  std::vector<std::thread> spawners;
  for (int t = 0; t < kSpawners; ++t) {
    spawners.emplace_back([&, t] {
      Rng rng(testing::test_seed(901) + static_cast<std::uint64_t>(t));
      std::vector<ComputationHandle> hs;
      for (int i = 0; i < per_thread; ++i) {
        const int m = static_cast<int>(rng.next_below(kMps));
        auto root = [&evs, m](Context& ctx) { ctx.trigger(evs[m]); };
        if (rng.chance(0.5)) {
          std::vector<Runtime::SpawnRequest> reqs;
          for (int b = 0; b < batch; ++b) {
            const int bm = static_cast<int>(rng.next_below(kMps));
            reqs.push_back({Isolation::basic({mps[bm]}),
                            [&evs, bm](Context& ctx) { ctx.trigger(evs[bm]); }});
          }
          i += batch - 1;
          for (auto& h : rt.spawn_isolated_batch(std::move(reqs))) hs.push_back(std::move(h));
        } else {
          hs.push_back(rt.spawn_isolated(Isolation::basic({mps[m]}), root));
        }
      }
      for (auto& h : hs) h.wait();
    });
  }
  for (auto& t : spawners) t.join();
  rt.drain();

  const CCStats& stats = rt.controller().stats();
  EXPECT_EQ(stats.admit_slow.value(), 0u)
      << "single-mp-only workload touched the lock-ordered admission path";
  EXPECT_EQ(stats.admit_fast.value(), stats.admissions.value());
  EXPECT_GT(stats.admissions_batched.value(), 0u);
  int total_calls = 0;
  for (auto* mp : mps) total_calls += mp->calls.load();
  EXPECT_EQ(static_cast<std::uint64_t>(total_calls), stats.admissions.value());
}

// Mixed fast/slow race: multi-mp batches (lock-ordered transactions over
// gate unions) run against a flood of lock-free single-mp admissions on
// the same gates. The atomic-admission invariant must hold throughout —
// the isolation oracle over the recorded trace is the judge.
TEST(AdmissionStress, MixedBatchesKeepAtomicAdmission) {
  diag::DeadlockWatchdog dog(watchdog_options("mixed-admission-stress"));
  constexpr int kSpawners = 4;
  constexpr int kMps = 3;
  const int rounds = 60 / kScale;

  Stack stack;
  std::vector<ProbeMp*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < kMps; ++i) {
    auto& mp = stack.emplace<ProbeMp>("mp" + std::to_string(i),
                                      std::chrono::microseconds(i * 5));
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }
  stack.seal();

  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic, .record_trace = true});
  std::vector<std::thread> spawners;
  for (int t = 0; t < kSpawners; ++t) {
    spawners.emplace_back([&, t] {
      Rng rng(testing::test_seed(902) + static_cast<std::uint64_t>(t));
      std::vector<ComputationHandle> hs;
      for (int i = 0; i < rounds; ++i) {
        std::vector<Runtime::SpawnRequest> reqs;
        const int batch = 1 + static_cast<int>(rng.next_below(5));
        for (int b = 0; b < batch; ++b) {
          std::vector<int> picks;
          for (int m = 0; m < kMps; ++m) {
            if (rng.chance(0.4)) picks.push_back(m);
          }
          if (picks.empty()) picks.push_back(static_cast<int>(rng.next_below(kMps)));
          std::vector<const Microprotocol*> members;
          for (int m : picks) members.push_back(mps[m]);
          reqs.push_back({Isolation::basic(members), [&evs, picks](Context& ctx) {
                            for (int m : picks) ctx.trigger(evs[m]);
                          }});
        }
        for (auto& h : rt.spawn_isolated_batch(std::move(reqs))) hs.push_back(std::move(h));
      }
      for (auto& h : hs) h.wait();
    });
  }
  for (auto& t : spawners) t.join();
  rt.drain();

  for (auto* mp : mps) {
    EXPECT_LE(mp->max_in_flight.load(), 1)
        << mp->name() << " executed concurrently: admission was not atomic";
  }
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_GT(rt.controller().stats().admit_slow.value(), 0u)
      << "fixture bug: no multi-mp admissions were generated";
}

}  // namespace
}  // namespace samoa
