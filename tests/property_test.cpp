// Property-based sweeps: randomized workloads over randomized microprotocol
// sets, executed under every isolation-preserving policy and multiple
// seeds; the recorded trace must always be conflict-serializable. This is
// the repository's main correctness oracle for the VCA algorithms.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <tuple>
#include <vector>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"
#include "diag/watchdog.hpp"
#include "test_support.hpp"

namespace samoa {
namespace {

using testing::ProbeMp;

class PolicySeedProperty
    : public ::testing::TestWithParam<std::tuple<CCPolicy, std::uint64_t>> {};

TEST_P(PolicySeedProperty, RandomWorkloadIsIsolated) {
  const auto [policy, seed] = GetParam();
  Rng rng(seed);

  constexpr int kMps = 4;
  Stack stack;
  std::vector<ProbeMp*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < kMps; ++i) {
    auto& mp = stack.emplace<ProbeMp>("mp" + std::to_string(i),
                                      std::chrono::microseconds(rng.next_below(150)));
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }

  Runtime rt(stack, RuntimeOptions{.policy = policy, .record_trace = true});

  std::vector<ComputationHandle> hs;
  for (int k = 0; k < 40; ++k) {
    // Random non-empty member subset with random per-mp call counts 1..3.
    std::vector<int> picks;
    for (int i = 0; i < kMps; ++i) {
      if (rng.chance(0.5)) picks.push_back(i);
    }
    if (picks.empty()) picks.push_back(static_cast<int>(rng.next_below(kMps)));

    std::vector<std::pair<int, int>> plan;  // (mp index, calls)
    for (int i : picks) plan.emplace_back(i, 1 + static_cast<int>(rng.next_below(3)));
    const bool use_async = rng.chance(0.5);

    Isolation iso = [&]() -> Isolation {
      switch (policy) {
        case CCPolicy::kVCABound: {
          std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
          for (auto [i, n] : plan) bounds.emplace_back(mps[i], static_cast<std::uint32_t>(n));
          return Isolation::bound(bounds);
        }
        case CCPolicy::kVCARoute: {
          // Root may call each picked handler directly; no inter-handler
          // edges are needed since ProbeMp handlers never trigger.
          RouteSpec spec;
          for (auto [i, n] : plan) {
            (void)n;
            spec.entry(*mps[i]->handler);
          }
          return Isolation::route(spec);
        }
        case CCPolicy::kVCARW: {
          std::vector<std::pair<const Microprotocol*, Access>> accesses;
          for (auto [i, n] : plan) {
            (void)n;
            accesses.emplace_back(mps[i], Access::kWrite);
          }
          return Isolation::read_write(accesses);
        }
        default: {
          std::vector<const Microprotocol*> members;
          for (auto [i, n] : plan) {
            (void)n;
            members.push_back(mps[i]);
          }
          return Isolation::basic(members);
        }
      }
    }();

    hs.push_back(rt.spawn_isolated(std::move(iso), [&, plan, use_async](Context& ctx) {
      for (auto [i, n] : plan) {
        for (int c = 0; c < n; ++c) {
          if (use_async) {
            ctx.async_trigger(evs[i]);
          } else {
            ctx.trigger(evs[i]);
          }
        }
      }
    }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();

  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << to_string(policy) << " seed=" << seed << "\n"
                               << report.summary();
  // Every computation appears in the serial order or touched nothing.
  EXPECT_LE(report.equivalent_serial_order.size(), 40u);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PolicySeedProperty,
    ::testing::Combine(::testing::Values(CCPolicy::kSerial, CCPolicy::kVCABasic,
                                         CCPolicy::kVCABound, CCPolicy::kVCARoute,
                                         CCPolicy::kVCARW),
                       // The last slot honours SAMOA_TEST_SEED (seed appears
                       // in the generated test name, so failures name it).
                       ::testing::Values(1u, 7u, 42u, 1234u, testing::test_seed(99999))),
    [](const ::testing::TestParamInfo<std::tuple<CCPolicy, std::uint64_t>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

class PipelineProperty : public ::testing::TestWithParam<std::tuple<CCPolicy, std::uint64_t>> {};

TEST_P(PipelineProperty, RandomPipelinesAreIsolated) {
  // Chained protocols: stage i triggers stage i+1 (mixed sync/async per
  // message), exercising nested gating and early release under load.
  const auto [policy, seed] = GetParam();
  Rng rng(seed);

  struct PipeMsg {
    int remaining_hops;
    bool async;
  };
  constexpr int kStages = 3;
  Stack stack;
  std::vector<EventType> evs;
  for (int i = 0; i <= kStages; ++i) evs.emplace_back("stage" + std::to_string(i));

  class StageMp : public Microprotocol {
   public:
    StageMp(std::string n, const EventType* next, std::uint64_t work_us)
        : Microprotocol(std::move(n)) {
      handler = &register_handler("run", [this, next, work_us](Context& ctx, const Message& m) {
        calls.fetch_add(1);
        spin_for(std::chrono::microseconds(work_us));
        const auto& msg = m.as<PipeMsg>();
        if (next != nullptr && msg.remaining_hops > 0) {
          PipeMsg fwd{msg.remaining_hops - 1, msg.async};
          if (msg.async) {
            ctx.async_trigger(*next, Message::of(fwd));
          } else {
            ctx.trigger(*next, Message::of(fwd));
          }
        }
      });
    }
    const Handler* handler;
    std::atomic<int> calls{0};
  };

  std::vector<StageMp*> stages;
  for (int i = 0; i < kStages; ++i) {
    const EventType* next = i + 1 < kStages ? &evs[i + 1] : nullptr;
    auto& mp = stack.emplace<StageMp>("stage" + std::to_string(i), next, rng.next_below(100));
    stages.push_back(&mp);
    stack.bind(evs[i], *mp.handler);
  }

  Runtime rt(stack, RuntimeOptions{.policy = policy, .record_trace = true});
  std::vector<ComputationHandle> hs;
  for (int k = 0; k < 30; ++k) {
    const bool async = rng.chance(0.5);
    Isolation iso = [&]() -> Isolation {
      switch (policy) {
        case CCPolicy::kVCABound: {
          std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
          for (auto* s : stages) bounds.emplace_back(s, 1);
          return Isolation::bound(bounds);
        }
        case CCPolicy::kVCARoute: {
          RouteSpec spec;
          spec.entry(*stages[0]->handler);
          for (int i = 0; i + 1 < kStages; ++i) {
            spec.edge(*stages[i]->handler, *stages[i + 1]->handler);
          }
          return Isolation::route(spec);
        }
        default: {
          std::vector<const Microprotocol*> members(stages.begin(), stages.end());
          return Isolation::basic(members);
        }
      }
    }();
    hs.push_back(rt.spawn_isolated(std::move(iso), [&, async](Context& ctx) {
      ctx.trigger(evs[0], Message::of(PipeMsg{kStages - 1, async}));
    }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();

  for (auto* s : stages) EXPECT_EQ(s->calls.load(), 30);
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << to_string(policy) << " seed=" << seed << "\n"
                               << report.summary();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PipelineProperty,
    ::testing::Combine(::testing::Values(CCPolicy::kSerial, CCPolicy::kVCABasic,
                                         CCPolicy::kVCABound, CCPolicy::kVCARoute),
                       ::testing::Values(3u, 17u, testing::test_seed(2718))),
    [](const ::testing::TestParamInfo<std::tuple<CCPolicy, std::uint64_t>>& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

// Batch admission linearizability property: spawn_isolated_batch must be
// indistinguishable from calling spawn_isolated once per request in
// request order. The observable consequence pinned here: on every
// microprotocol, the gated execution order of batch members equals the
// request order — i.e. the versions claimed by the batch (one claim_range
// per gate on the all-single-mp fast path, one lock-ordered transaction
// for mixed batches) are exactly the versions sequential admissions would
// have claimed. Swept over random batch compositions and cross-checked
// against the isolation oracle.
class BatchAdmissionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchAdmissionProperty, BatchMatchesSequentialVersionOrder) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  struct Seq {
    int idx;  // global spawn index, the order sequential admits would use
  };
  constexpr int kMps = 3;

  // Records the spawn index of every gated execution, per microprotocol.
  class RecorderMp : public Microprotocol {
   public:
    RecorderMp(std::string n, std::vector<int>& order, std::mutex& mu)
        : Microprotocol(std::move(n)) {
      handler = &register_handler("run", [&order, &mu](Context&, const Message& m) {
        std::unique_lock lock(mu);
        order.push_back(m.as<Seq>().idx);
      });
    }
    const Handler* handler = nullptr;
  };

  Stack stack;
  std::vector<EventType> evs;
  std::mutex order_mu;
  std::vector<std::vector<int>> exec_order(kMps);
  std::vector<RecorderMp*> mps;
  for (int i = 0; i < kMps; ++i) {
    auto& mp = stack.emplace<RecorderMp>("mp" + std::to_string(i), exec_order[i], order_mu);
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }

  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic, .record_trace = true});

  std::vector<std::vector<int>> admitted(kMps);  // request order, per mp
  std::vector<ComputationHandle> hs;
  std::uint64_t total_members = 0;
  int next_idx = 0;
  for (int round = 0; round < 6; ++round) {
    // Batches overlap in time with earlier rounds' still-running members,
    // so later claims genuinely race with concurrent waits and publishes.
    const int batch_size = 1 + static_cast<int>(rng.next_below(8));
    std::vector<Runtime::SpawnRequest> reqs;
    for (int b = 0; b < batch_size; ++b) {
      std::vector<int> picks;
      if (rng.chance(0.6)) {
        // Single-mp request: with a whole batch of these, admission goes
        // through the claim_range fast path.
        picks.push_back(static_cast<int>(rng.next_below(kMps)));
      } else {
        for (int i = 0; i < kMps; ++i) {
          if (rng.chance(0.5)) picks.push_back(i);
        }
        if (picks.empty()) picks.push_back(static_cast<int>(rng.next_below(kMps)));
      }
      const int idx = next_idx++;
      std::vector<const Microprotocol*> members;
      for (int i : picks) {
        admitted[i].push_back(idx);
        members.push_back(mps[i]);
      }
      reqs.push_back({Isolation::basic(members), [idx, picks, &evs](Context& ctx) {
                        for (int i : picks) ctx.trigger(evs[i], Message::of(Seq{idx}));
                      }});
    }
    total_members += reqs.size();
    for (auto& h : rt.spawn_isolated_batch(std::move(reqs))) hs.push_back(std::move(h));
  }
  for (auto& h : hs) h.wait();
  rt.drain();

  // Per-mp gated execution order == version order == request order: the
  // exact sequence sequential spawn_isolated calls would have produced.
  for (int i = 0; i < kMps; ++i) {
    EXPECT_EQ(exec_order[i], admitted[i]) << "mp" << i << " seed=" << seed;
  }
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << "seed=" << seed << "\n" << report.summary();
  EXPECT_EQ(rt.controller().stats().admissions_batched.value(), total_members);
  EXPECT_EQ(rt.controller().stats().admissions.value(), total_members);
}

INSTANTIATE_TEST_SUITE_P(Sweep, BatchAdmissionProperty,
                         ::testing::Values(2u, 11u, 77u, testing::test_seed(4242)),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// Gate wakeup property: every version published through a GateTable gate
// wakes all waiters whose predicate it satisfies, under randomized
// publish methods (set_lv / increment_lv / deferred schedule_set chains),
// randomized wait styles (exact and window) and randomized timing.
//
// The model mirrors the protocol's structure: the waiter admitted at
// version v is the only publisher of v (Step 3), so lv never races past a
// version whose waiter has not proceeded — the same invariant that makes
// the real algorithms lost-wakeup-free. "Deferred" versions model
// VCAroute's Rule 4(b): no thread waits for them, the schedule_set chain
// publishes them off the back of the preceding publish. A lost wakeup
// strands a waiter forever; the fail-fast watchdog converts that into an
// abort with a blocked-state dump instead of a ctest timeout. The TSan CI
// job runs this test to also catch the data-race flavor of the same bug.
TEST(GateWakeupProperty, PublishAlwaysWakesAllMatchingWaiters) {
  diag::WatchdogOptions wopts;
  wopts.budget = std::chrono::milliseconds(30000);
  wopts.name = "gate_wakeup_property";
  wopts.abort_on_stall = true;
  diag::DeadlockWatchdog dog(wopts);

  for (std::uint64_t seed : {std::uint64_t{5}, std::uint64_t{23}, std::uint64_t{101},
                             std::uint64_t{424}, std::uint64_t{1009}, testing::test_seed(31337)}) {
    Rng rng(seed);
    GateTable gates;
    VersionGate& gate = gates.gate(MicroprotocolId{1});
    constexpr std::uint64_t kVersions = 16;

    // Per-version publish method, fixed up-front. Deferred versions are
    // scheduled before any waiter starts, so they exercise the true
    // deferred path of apply_deferred (consecutive deferrals chain).
    enum class Pub { kSet, kIncrement, kDeferred };
    std::vector<Pub> method(kVersions + 1, Pub::kSet);
    for (std::uint64_t v = 2; v <= kVersions; ++v) {
      const auto r = rng.next_below(3);
      method[v] = r == 0 ? Pub::kSet : (r == 1 ? Pub::kIncrement : Pub::kDeferred);
      if (method[v] == Pub::kDeferred) gate.schedule_set(v - 1, v);
    }

    std::atomic<std::uint64_t> woken{0};
    CCStats stats;
    std::vector<std::thread> waiters;
    for (std::uint64_t v = 1; v <= kVersions; ++v) {
      if (method[v] == Pub::kDeferred) continue;  // published by the chain
      // Exact wait (VCAbasic/route) or window wait (VCAbound). The model's
      // windows overlap (several can be open at one lv), unlike real
      // VCAbound where admission tiles disjoint [pv-bound, pv) windows per
      // gate — so a window waiter released early must still wait for its
      // exact predecessor before publishing, or its set_lv(v) could skip
      // straight past a slower waiter's still-open window (exactly the
      // single-closer-per-version invariant the real controllers keep).
      const bool exact = rng.chance(0.5);
      const std::uint64_t lo = exact ? v - 1 : (v - 1) - rng.next_below(std::min<std::uint64_t>(v, 3));
      const auto spin = std::chrono::nanoseconds(rng.next_below(50000));
      waiters.emplace_back([&, v, exact, lo, spin] {
        if (exact) {
          gate.wait_exact(v - 1, stats, "wakeup-property");
        } else {
          gate.wait_window(lo, v, stats, "wakeup-property");
          gate.wait_exact(v - 1, stats, "wakeup-property");
        }
        spin_for(spin);
        if (method[v] == Pub::kIncrement) {
          gate.increment_lv();
        } else {
          gate.set_lv(v);
        }
        woken.fetch_add(1);
      });
    }
    const auto expected_woken = waiters.size();

    for (auto& t : waiters) t.join();
    EXPECT_EQ(woken.load(), expected_woken) << "seed=" << seed;
    EXPECT_EQ(gate.lv(), kVersions) << "seed=" << seed;
  }
}

// Regression pin for the E2 join-flood livelock: a publish must wake only
// the waiter(s) whose window it opens, never the whole parked population.
// With the broadcast-wakeup gate, each of the K publishes below woke every
// parked waiter (O(K^2) total); the targeted gate delivers at most one
// notification per parked waiter, so the counter is bounded by the number
// of waits that ever parked.
TEST(GateWakeupProperty, PublishWakesOnlyMatchingWaiters) {
  GateTable gates;
  VersionGate& gate = gates.gate(MicroprotocolId{1});
  CCStats stats;
  constexpr std::uint64_t kWaiters = 64;

  std::vector<std::thread> waiters;
  for (std::uint64_t v = 1; v <= kWaiters; ++v) {
    waiters.emplace_back([&gate, &stats, v] {
      gate.wait_exact(v - 1, stats, "targeted-wakeup");
      gate.set_lv(v);
    });
  }
  for (auto& t : waiters) t.join();

  EXPECT_EQ(gate.lv(), kWaiters);
  // Each parked waiter is notified exactly once (waiters that found their
  // version already published never parked and cost zero notifications).
  EXPECT_LE(gate.wakeups_delivered(), kWaiters);
}

}  // namespace
}  // namespace samoa
