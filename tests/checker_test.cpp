// Unit tests for the isolation checker on hand-crafted traces, including
// the paper's runs r1, r2 and r3 (Section 2).
#include <gtest/gtest.h>

#include "verify/checker.hpp"

namespace samoa {
namespace {

// Trace-building helpers over fixed ids.
const ComputationId kA{1}, kB{2};
const MicroprotocolId mpP{1}, mpQ{2}, mpR{3}, mpS{4};
const HandlerId hP{1}, hQ{2}, hR{3}, hS{4};

struct TraceBuilder {
  std::vector<TraceEvent> events;
  std::uint64_t seq = 0;

  TraceBuilder& spawn(ComputationId k) {
    events.push_back({seq++, TracePhase::kSpawn, k, {}, {}});
    return *this;
  }
  TraceBuilder& done(ComputationId k) {
    events.push_back({seq++, TracePhase::kDone, k, {}, {}});
    return *this;
  }
  TraceBuilder& start(ComputationId k, MicroprotocolId mp, HandlerId h) {
    events.push_back({seq++, TracePhase::kStart, k, mp, h});
    return *this;
  }
  TraceBuilder& end(ComputationId k, MicroprotocolId mp, HandlerId h) {
    events.push_back({seq++, TracePhase::kEnd, k, mp, h});
    return *this;
  }
  /// start immediately followed by end.
  TraceBuilder& exec(ComputationId k, MicroprotocolId mp, HandlerId h) {
    return start(k, mp, h).end(k, mp, h);
  }
};

TEST(Checker, EmptyTraceIsIsolated) {
  auto report = check_isolation({});
  EXPECT_TRUE(report.isolated);
  EXPECT_TRUE(report.serial);
}

TEST(Checker, PaperRunR1SerialIsIsolated) {
  // r1 = ((a0,P),(a1,R),(a2,S),(b0,Q),(b1,R),(b2,S)) — serial.
  TraceBuilder t;
  t.spawn(kA).exec(kA, mpP, hP).exec(kA, mpR, hR).exec(kA, mpS, hS).done(kA);
  t.spawn(kB).exec(kB, mpQ, hQ).exec(kB, mpR, hR).exec(kB, mpS, hS).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_TRUE(report.serial);
}

TEST(Checker, PaperRunR2ConcurrentIsIsolated) {
  // r2 = ((a0,P),(b0,Q),(a1,R),(a2,S),(b1,R),(b2,S)) — concurrent but
  // isolated: ka visits R and S strictly before kb.
  TraceBuilder t;
  t.spawn(kA).spawn(kB);
  t.exec(kA, mpP, hP).exec(kB, mpQ, hQ);
  t.exec(kA, mpR, hR).exec(kA, mpS, hS).done(kA);
  t.exec(kB, mpR, hR).exec(kB, mpS, hS).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_FALSE(report.serial);
  // The equivalent serial order must put kA before kB.
  ASSERT_EQ(report.equivalent_serial_order.size(), 2u);
  EXPECT_EQ(report.equivalent_serial_order[0], kA);
  EXPECT_EQ(report.equivalent_serial_order[1], kB);
}

TEST(Checker, PaperRunR3ViolatesIsolation) {
  // r3 = ((a0,P),(b0,Q),(a1,R),(b1,R),(b2,S),(a2,S)):
  // kb follows ka on R, but ka follows kb on S — a precedence cycle.
  TraceBuilder t;
  t.spawn(kA).spawn(kB);
  t.exec(kA, mpP, hP).exec(kB, mpQ, hQ);
  t.exec(kA, mpR, hR).exec(kB, mpR, hR);
  t.exec(kB, mpS, hS).done(kB);
  t.exec(kA, mpS, hS).done(kA);
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated);
  EXPECT_FALSE(report.serial);
}

TEST(Checker, OverlappingExecutionsOnSameMpViolate) {
  TraceBuilder t;
  t.spawn(kA).spawn(kB);
  t.start(kA, mpR, hR).start(kB, mpR, hR).end(kA, mpR, hR).end(kB, mpR, hR);
  t.done(kA).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated);
  EXPECT_FALSE(report.violations.empty());
}

TEST(Checker, InterleavedBlocksViolate) {
  // A, then B, then A again on the same microprotocol.
  TraceBuilder t;
  t.spawn(kA).spawn(kB);
  t.exec(kA, mpR, hR).exec(kB, mpR, hR).exec(kA, mpR, hR);
  t.done(kA).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated);
}

TEST(Checker, SameComputationMayInterleaveWithItself) {
  // Multiple executions by one computation are always fine.
  TraceBuilder t;
  t.spawn(kA);
  t.start(kA, mpR, hR).start(kA, mpR, hR).end(kA, mpR, hR).end(kA, mpR, hR);
  t.done(kA);
  auto report = check_isolation(t.events);
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(Checker, PendingExecutionIsViolationByDefault) {
  TraceBuilder t;
  t.spawn(kA).start(kA, mpR, hR);
  auto strict = check_isolation(t.events);
  EXPECT_FALSE(strict.isolated);
  auto lax = check_isolation(t.events, /*allow_incomplete=*/true);
  EXPECT_TRUE(lax.isolated);
}

TEST(Checker, EndWithoutStartIsViolation) {
  TraceBuilder t;
  t.spawn(kA).end(kA, mpR, hR);
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated);
}

TEST(Checker, ThreeWayCycleDetected) {
  const ComputationId kC{3};
  TraceBuilder t;
  t.spawn(kA).spawn(kB).spawn(kC);
  t.exec(kA, mpP, hP).exec(kB, mpP, hP);  // A < B on P
  t.exec(kB, mpQ, hQ).exec(kC, mpQ, hQ);  // B < C on Q
  t.exec(kC, mpR, hR).exec(kA, mpR, hR);  // C < A on R -> cycle
  t.done(kA).done(kB).done(kC);
  auto report = check_isolation(t.events);
  EXPECT_FALSE(report.isolated);
}

TEST(Checker, ChainGivesTopologicalOrder) {
  const ComputationId kC{3};
  TraceBuilder t;
  t.spawn(kA).spawn(kB).spawn(kC);
  t.exec(kB, mpP, hP).exec(kC, mpP, hP);  // B < C
  t.exec(kA, mpQ, hQ).exec(kB, mpQ, hQ);  // A < B
  t.done(kA).done(kB).done(kC);
  auto report = check_isolation(t.events);
  ASSERT_TRUE(report.isolated) << report.summary();
  ASSERT_EQ(report.equivalent_serial_order.size(), 3u);
  EXPECT_EQ(report.equivalent_serial_order[0], kA);
  EXPECT_EQ(report.equivalent_serial_order[1], kB);
  EXPECT_EQ(report.equivalent_serial_order[2], kC);
}

TEST(Checker, SummaryMentionsViolations) {
  TraceBuilder t;
  t.spawn(kA).spawn(kB);
  t.start(kA, mpR, hR).start(kB, mpR, hR).end(kA, mpR, hR).end(kB, mpR, hR);
  t.done(kA).done(kB);
  auto report = check_isolation(t.events);
  EXPECT_NE(report.summary().find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace samoa
