// Tests for the CausalCast layer (vector-clock causal delivery) and
// RelComm's credit-based flow control.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "gc/group_node.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(CausalCodec, HeaderRoundTrip) {
  CausalMsg msg;
  msg.origin = SiteId{3};
  msg.vc = {{SiteId{0}, 5}, {SiteId{3}, 9}};
  msg.payload = "hello causal";
  const auto encoded = CausalCast::encode(msg);
  CausalMsg decoded;
  ASSERT_TRUE(CausalCast::decode(encoded, decoded));
  EXPECT_EQ(decoded.origin, msg.origin);
  EXPECT_EQ(decoded.vc, msg.vc);
  EXPECT_EQ(decoded.payload, msg.payload);
}

TEST(CausalCodec, OrdinaryPayloadsAreRejected) {
  CausalMsg out;
  EXPECT_FALSE(CausalCast::decode("plain text", out));
  EXPECT_FALSE(CausalCast::decode("", out));
  EXPECT_FALSE(CausalCast::decode("\x01", out));
  EXPECT_FALSE(CausalCast::decode("\x01X", out));
}

TEST(CausalCodec, TruncatedHeaderIsRejectedSafely) {
  CausalMsg msg;
  msg.origin = SiteId{1};
  msg.vc = {{SiteId{1}, 1}};
  msg.payload = "payload";
  const auto encoded = CausalCast::encode(msg);
  CausalMsg out;
  for (std::size_t cut = 2; cut < encoded.size(); ++cut) {
    EXPECT_FALSE(CausalCast::decode(encoded.substr(0, cut), out)) << "cut=" << cut;
  }
}

/// Deterministic unit fixture: one CausalCast fed crafted deliveries
/// directly (no network), with a recorder on the causal_deliver event.
struct CausalUnit {
  GcOptions opts;
  GcEvents events;
  Stack stack;
  CausalCast* causal;
  std::vector<std::string>* log;

  class Recorder : public Microprotocol {
   public:
    explicit Recorder(std::vector<std::string>& log) : Microprotocol("rec") {
      h = &register_handler("h", [&log](Context&, const Message& m) {
        log.push_back(m.as<std::string>());
      });
    }
    const Handler* h;
  };

  Runtime* rt;
  std::unique_ptr<Runtime> rt_owned;

  CausalUnit() {
    static std::vector<std::string> static_dummy;  // not used
    log = new std::vector<std::string>();
    causal = &stack.emplace<CausalCast>(opts, events, SiteId{9}, View(1, {SiteId{9}}));
    auto& rec = stack.emplace<Recorder>(*log);
    stack.bind(events.deliver_out, *causal->on_rdeliver_handler());
    stack.bind(events.causal_deliver, *rec.h);
    rt_owned = std::make_unique<Runtime>(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
    rt = rt_owned.get();
    mps_ = {causal, &rec};
  }
  ~CausalUnit() { delete log; }

  /// Inject a causal message as if RelCast had just delivered it.
  void inject(SiteId origin, std::map<SiteId, std::uint64_t> vc, std::string payload) {
    CausalMsg msg{origin, std::move(vc), std::move(payload)};
    AppMessage app{make_msg_id(origin, 1), CausalCast::encode(msg), false};
    rt->spawn_isolated(Isolation::basic(mps_), [&, app](Context& ctx) {
        ctx.trigger_all(events.deliver_out, Message::of(app));
      }).wait();
  }

 private:
  std::vector<const Microprotocol*> mps_;
};

TEST(CausalCast, InOrderDeliveryIsImmediate) {
  CausalUnit u;
  const SiteId a{1};
  u.inject(a, {{a, 1}}, "m1");
  u.inject(a, {{a, 2}}, "m2");
  EXPECT_EQ(*u.log, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(u.causal->buffered_count(), 0u);
}

TEST(CausalCast, OutOfOrderFromOneOriginIsBuffered) {
  CausalUnit u;
  const SiteId a{1};
  u.inject(a, {{a, 2}}, "m2");  // arrives first
  EXPECT_TRUE(u.log->empty());
  u.inject(a, {{a, 1}}, "m1");
  EXPECT_EQ(*u.log, (std::vector<std::string>{"m1", "m2"}));
  EXPECT_EQ(u.causal->buffered_count(), 1u);
}

TEST(CausalCast, CrossOriginCausalityIsRespected) {
  // m2 from B causally depends on m1 from A (B's clock includes A:1);
  // m2 arriving first must wait for m1.
  CausalUnit u;
  const SiteId a{1}, b{2};
  u.inject(b, {{a, 1}, {b, 1}}, "m2");
  EXPECT_TRUE(u.log->empty()) << "delivered m2 before its causal predecessor";
  u.inject(a, {{a, 1}}, "m1");
  EXPECT_EQ(*u.log, (std::vector<std::string>{"m1", "m2"}));
}

TEST(CausalCast, ConcurrentMessagesDeliverInAnyOrder) {
  CausalUnit u;
  const SiteId a{1}, b{2};
  u.inject(b, {{b, 1}}, "from-b");  // concurrent with from-a
  u.inject(a, {{a, 1}}, "from-a");
  EXPECT_EQ(u.log->size(), 2u);
}

TEST(CausalCast, DuplicatesAreIgnored) {
  CausalUnit u;
  const SiteId a{1};
  u.inject(a, {{a, 1}}, "m1");
  u.inject(a, {{a, 1}}, "m1");
  EXPECT_EQ(u.log->size(), 1u);
}

TEST(CausalCast, ChainedBufferDrain) {
  CausalUnit u;
  const SiteId a{1};
  u.inject(a, {{a, 3}}, "m3");
  u.inject(a, {{a, 2}}, "m2");
  EXPECT_TRUE(u.log->empty());
  u.inject(a, {{a, 1}}, "m1");  // releases the whole chain
  EXPECT_EQ(*u.log, (std::vector<std::string>{"m1", "m2", "m3"}));
}

TEST(CausalCast, EndToEndCausalOrderAcrossSites) {
  // A ccasts m1; B (after causally delivering m1) ccasts m2; every site —
  // including C, whose direct link from A is cut so m1 only arrives via
  // B's rebroadcast — must deliver m1 before m2.
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100)}, 11);
  GcOptions opts;
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id()});
  net.set_partitioned(nodes[0]->id(), nodes[2]->id(), true);  // A-C cut
  for (auto& n : nodes) n->start(initial);

  nodes[0]->ccast("m1");
  ASSERT_TRUE(wait_until([&] { return nodes[1]->sink().cdelivered().size() == 1; }));
  nodes[1]->ccast("m2");
  ASSERT_TRUE(wait_until([&] {
    return nodes[2]->sink().cdelivered().size() == 2 &&
           nodes[0]->sink().cdelivered().size() == 2;
  })) << "causal broadcasts did not converge";
  for (auto& n : nodes) {
    EXPECT_EQ(n->sink().cdelivered(),
              (std::vector<std::string>{"m1", "m2"}))
        << "site " << n->id().value() << " violated causal order";
  }
  for (auto& n : nodes) n->stop_timers();
}

TEST(FlowControl, WindowCapsInFlightMessages) {
  GcOptions opts;
  opts.flow_window = 2;
  opts.retransmit_interval = std::chrono::microseconds(2000);
  opts.retransmit_timeout = std::chrono::microseconds(4000);
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(300)}, 21);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 2; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id()});
  for (auto& n : nodes) n->start(initial);

  for (int i = 0; i < 12; ++i) nodes[0]->rbcast("f" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] { return nodes[1]->sink().rdelivered().size() == 12; }))
      << "flow-controlled sends never drained";
  EXPECT_LE(nodes[0]->rel_comm().peak_in_flight_per_peer(), 2u)
      << "credit window exceeded";
  EXPECT_GT(nodes[0]->rel_comm().flow_deferred(), 0u) << "window never engaged";
  for (auto& n : nodes) n->stop_timers();
}

TEST(FlowControl, DisabledWindowSendsEagerly) {
  GcOptions opts;
  opts.flow_window = 0;  // off
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(300)}, 22);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 2; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id()});
  for (auto& n : nodes) n->start(initial);

  for (int i = 0; i < 12; ++i) nodes[0]->rbcast("e" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] { return nodes[1]->sink().rdelivered().size() == 12; }));
  EXPECT_EQ(nodes[0]->rel_comm().flow_deferred(), 0u);
  EXPECT_GT(nodes[0]->rel_comm().peak_in_flight_per_peer(), 2u);
  for (auto& n : nodes) n->stop_timers();
}

}  // namespace
}  // namespace samoa::gc
