// Shared fixtures for the concurrency-control tests: small instrumented
// microprotocols and helpers to build the paper's example protocols.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "util/rng.hpp"
#include "util/sync.hpp"
#include "verify/checker.hpp"

namespace samoa::testing {

/// One seed knob for every randomized test (property sweeps, stress
/// fuzzing, schedule exploration): SAMOA_TEST_SEED overrides the default
/// when set, so a CI failure under a swept seed reruns locally with
/// `SAMOA_TEST_SEED=<n> ctest ...`. Tests must put the effective seed in
/// their failure output (SCOPED_TRACE / assertion message / test name).
inline std::uint64_t test_seed(std::uint64_t def) {
  if (const char* env = std::getenv("SAMOA_TEST_SEED"); env != nullptr && *env != '\0') {
    char* end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end != env && *end == '\0') return static_cast<std::uint64_t>(v);
  }
  return def;
}

/// Microprotocol with a single handler that optionally busy-waits and
/// counts its executions. `in_flight`/`max_in_flight` detect concurrent
/// executions on the same microprotocol (which would violate isolation).
class ProbeMp : public Microprotocol {
 public:
  explicit ProbeMp(std::string name, std::chrono::microseconds work = {})
      : Microprotocol(std::move(name)), work_(work) {
    handler = &register_handler("run", [this](Context&, const Message&) {
      const int now = in_flight.fetch_add(1) + 1;
      int seen = max_in_flight.load();
      while (now > seen && !max_in_flight.compare_exchange_weak(seen, now)) {
      }
      if (work_.count() > 0) spin_for(work_);
      calls.fetch_add(1);
      in_flight.fetch_sub(1);
    });
  }

  const Handler* handler = nullptr;
  std::atomic<int> calls{0};
  std::atomic<int> in_flight{0};
  std::atomic<int> max_in_flight{0};

 private:
  std::chrono::microseconds work_;
};

/// Microprotocol whose handler blocks until released — for constructing
/// deterministic schedules in tests.
class BlockingMp : public Microprotocol {
 public:
  explicit BlockingMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [this](Context&, const Message&) {
      started.set();
      release.wait();
      calls.fetch_add(1);
    });
  }

  const Handler* handler = nullptr;
  OneShotEvent started;
  OneShotEvent release;
  std::atomic<int> calls{0};
};

/// Appends each execution to a shared order log (for schedule assertions).
class LoggingMp : public Microprotocol {
 public:
  LoggingMp(std::string name, std::vector<std::string>& log, std::mutex& log_mu)
      : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [this, &log, &log_mu](Context&, const Message&) {
      std::unique_lock lock(log_mu);
      log.push_back(this->name());
    });
  }
  const Handler* handler = nullptr;
};

/// Assert that a runtime's recorded trace satisfies the isolation property.
inline IsolationReport expect_isolated(Runtime& rt) {
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
  return report;
}

}  // namespace samoa::testing
