// ElasticThreadPool unit tests.
//
// The pool's contract is the load-bearing half of SAMOA's deadlock-freedom
// argument: a runnable task must never starve for a thread, even when
// every existing worker is parked inside a version gate. The regression
// tests at the bottom pin the exact wedge behind the bench_viewchange E2
// hang: a worker parking *mid-task* used to keep its runnable slot, so a
// queued task that would have unblocked it could wait forever once the
// pool hit its cap.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cc/controller.hpp"
#include "cc/version_gate.hpp"
#include "diag/wait_registry.hpp"
#include "diag/watchdog.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace samoa {
namespace {

using namespace std::chrono_literals;

TEST(ElasticThreadPool, RunsSubmittedTasks) {
  ElasticThreadPool pool;
  std::atomic<int> ran{0};
  OneShotEvent done;
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] {
      if (ran.fetch_add(1) + 1 == 100) done.set();
    });
  }
  ASSERT_TRUE(done.wait_for(5000ms));
  EXPECT_EQ(ran.load(), 100);
}

TEST(ElasticThreadPool, GrowsPastIdleWorkersUnderBurst) {
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 64, 200ms});
  // Saturate: 8 tasks that all block until released. The pool must grow
  // to run them concurrently (they would deadlock a fixed 1-thread pool,
  // as each blocks on the event only the test sets).
  std::atomic<int> arrived{0};
  OneShotEvent all_arrived;
  OneShotEvent release;
  for (int i = 0; i < 8; ++i) {
    pool.submit([&] {
      if (arrived.fetch_add(1) + 1 == 8) all_arrived.set();
      release.wait();
    });
  }
  ASSERT_TRUE(all_arrived.wait_for(5000ms)) << "pool failed to grow for queued tasks";
  EXPECT_GE(pool.peak_thread_count(), 8u);
  release.set();
}

TEST(ElasticThreadPool, PeakThreadCountAccountsGrowthAndRetire) {
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 32, 50ms});
  std::atomic<int> arrived{0};
  OneShotEvent all_arrived;
  OneShotEvent release;
  constexpr int kTasks = 6;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] {
      if (arrived.fetch_add(1) + 1 == kTasks) all_arrived.set();
      release.wait();
    });
  }
  ASSERT_TRUE(all_arrived.wait_for(5000ms));
  const auto peak = pool.peak_thread_count();
  EXPECT_GE(peak, static_cast<std::size_t>(kTasks));
  release.set();
  // Idle workers retire back toward min_threads; peak is sticky.
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (pool.thread_count() > 1 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(pool.thread_count(), 1u) << "idle workers failed to retire to min_threads";
  EXPECT_EQ(pool.peak_thread_count(), peak);
}

TEST(ElasticThreadPool, SubmitRacingRetireNeverDropsTasks) {
  // Tiny idle timeout so workers retire constantly while submits race the
  // retire/reap path. Every task must still run exactly once.
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 16, 1ms});
  std::atomic<int> ran{0};
  constexpr int kTasks = 400;
  for (int i = 0; i < kTasks; ++i) {
    pool.submit([&] { ran.fetch_add(1); });
    if (i % 7 == 0) std::this_thread::sleep_for(1ms);  // let workers time out
  }
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (ran.load() < kTasks && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(ran.load(), kTasks);
  pool.shutdown();
  EXPECT_EQ(ran.load(), kTasks);
}

TEST(ElasticThreadPool, ShutdownRunsBacklogToCompletion) {
  std::atomic<int> ran{0};
  {
    ElasticThreadPool pool(ElasticThreadPool::Options{1, 4, 200ms});
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] {
        std::this_thread::sleep_for(100us);
        ran.fetch_add(1);
      });
    }
    pool.shutdown();
  }
  EXPECT_EQ(ran.load(), 50);
}

// --- park accounting -------------------------------------------------------

TEST(ElasticThreadPool, ParkedWorkersAreCountedAndVisible) {
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 8, 200ms});
  OneShotEvent parked_seen;
  OneShotEvent release;
  pool.submit([&] {
    diag::ScopedWait wait(diag::WaitKind::kExternal, nullptr, "test-park", 0, 0, 0);
    parked_seen.set();
    release.wait();
  });
  ASSERT_TRUE(parked_seen.wait_for(5000ms));
  // The worker registered both with the registry and with its pool.
  EXPECT_GE(pool.parked_count(), 1u);
  EXPECT_GE(pool.peak_parked_count(), 1u);
  EXPECT_GE(diag::WaitRegistry::instance().wait_count(), 1u);
  release.set();
  const auto deadline = std::chrono::steady_clock::now() + 5s;
  while (pool.parked_count() > 0 && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(1ms);
  }
  EXPECT_EQ(pool.parked_count(), 0u);
}

// --- the E2 wedge, reduced to its smallest deterministic shape -------------
//
// max_threads = 1. Task A parks in a version gate waiting for v1; the task
// that publishes v1 is already queued behind it. Before the fix the parked
// worker kept the pool's only runnable slot, so the publisher never ran:
// a guaranteed, seed-independent deadlock. With park-aware capacity the
// pool grows the moment A parks and the publisher unblocks it.
TEST(ElasticThreadPool, ParkedWorkerDoesNotStarveQueuedUnblocker) {
  // Everything the tasks touch is declared before the pool: the pool's
  // destructor joins its workers, and a worker can still be inside
  // wait_exact's epilogue after done.set() fires.
  VersionGate gate;
  CCStats stats;
  OneShotEvent done;
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 1, 200ms});
  pool.submit([&] {
    gate.wait_exact(1, stats, "mp-under-test");  // parks until lv == 1
    done.set();
  });
  // Give A a moment to take the only worker and park.
  std::this_thread::sleep_for(20ms);
  pool.submit([&] { gate.set_lv(1); });  // the unblocker: queued, needs a thread
  ASSERT_TRUE(done.wait_for(10000ms))
      << "queued publisher starved behind a parked worker (pre-fix E2 wedge)";
  EXPECT_GE(pool.peak_thread_count(), 2u) << "pool never grew past the parked worker";
}

// Same shape driven through submit-order alone: the unblocker is queued
// *before* the parker runs, exercising the growth check at park time
// rather than at submit time.
TEST(ElasticThreadPool, ParkTriggersGrowthForAlreadyQueuedTasks) {
  VersionGate gate;  // declared before the pool; see the test above
  CCStats stats;
  OneShotEvent done;
  std::atomic<bool> first_ran{false};
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 1, 200ms});
  pool.submit([&] {
    first_ran.store(true);
    gate.wait_exact(1, stats);
  });
  // Enqueued while the single worker is busy parking: no submit happens
  // afterwards, so only note_worker_parked() can trigger the growth.
  pool.submit([&] {
    gate.set_lv(1);
    done.set();
  });
  ASSERT_TRUE(done.wait_for(10000ms)) << "park-time growth missing: queued task stranded";
  EXPECT_TRUE(first_ran.load());
}

}  // namespace
}  // namespace samoa
