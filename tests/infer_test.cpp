// Tests for isolation-declaration inference (core/infer): member-set and
// routing-pattern derivation from declared handler triggers, and
// consistency of inferred declarations with actual executions.
#include <gtest/gtest.h>

#include "core/infer.hpp"
#include "proto/fig1.hpp"
#include "test_support.hpp"

namespace samoa {
namespace {

/// a --evB--> b --evC--> c, plus an unreachable d.
struct ChainStack {
  Stack stack;
  EventType eva{"A"}, evb{"B"}, evc{"C"}, evd{"D"};

  class Fwd : public Microprotocol {
   public:
    Fwd(std::string n, const EventType* next) : Microprotocol(std::move(n)) {
      handler = &register_handler("run", [next](Context& ctx, const Message& m) {
        if (next != nullptr) ctx.trigger(*next, m);
      });
    }
    const Handler* handler;
  };

  Fwd *a, *b, *c, *d;
  TriggerDeclarations decls;

  ChainStack() {
    a = &stack.emplace<Fwd>("a", &evb);
    b = &stack.emplace<Fwd>("b", &evc);
    c = &stack.emplace<Fwd>("c", nullptr);
    d = &stack.emplace<Fwd>("d", nullptr);
    stack.bind(eva, *a->handler);
    stack.bind(evb, *b->handler);
    stack.bind(evc, *c->handler);
    stack.bind(evd, *d->handler);
    decls.declare(*a->handler, evb).declare(*b->handler, evc);
  }
};

TEST(Infer, MembersFollowDeclaredTriggers) {
  ChainStack f;
  auto iso = infer_members(f.stack, f.decls, {f.eva});
  EXPECT_EQ(iso.members().size(), 3u);
  EXPECT_TRUE(iso.declares(f.a->id()));
  EXPECT_TRUE(iso.declares(f.b->id()));
  EXPECT_TRUE(iso.declares(f.c->id()));
  EXPECT_FALSE(iso.declares(f.d->id()));
}

TEST(Infer, MembersFromMidChain) {
  ChainStack f;
  auto iso = infer_members(f.stack, f.decls, {f.evb});
  EXPECT_EQ(iso.members().size(), 2u);
  EXPECT_FALSE(iso.declares(f.a->id()));
}

TEST(Infer, MultipleRootEventsUnion) {
  ChainStack f;
  auto iso = infer_members(f.stack, f.decls, {f.evc, f.evd});
  EXPECT_EQ(iso.members().size(), 2u);
  EXPECT_TRUE(iso.declares(f.c->id()));
  EXPECT_TRUE(iso.declares(f.d->id()));
}

TEST(Infer, UnboundRootThrows) {
  ChainStack f;
  EventType unbound("Unbound");
  EXPECT_THROW(infer_members(f.stack, f.decls, {unbound}), ConfigError);
  EXPECT_THROW(infer_route(f.stack, f.decls, {unbound}), ConfigError);
}

TEST(Infer, InferredMembersRunTheComputation) {
  ChainStack f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(infer_members(f.stack, f.decls, {f.eva}),
                             [&](Context& ctx) { ctx.trigger(f.eva); });
  EXPECT_NO_THROW(h.wait());
}

TEST(Infer, MissingDeclarationIsCaughtAtRuntime) {
  // Declarations that lie (b omits its trigger of evc) produce an
  // under-approximated M; the runtime rejects the undeclared call — the
  // declared metadata is checkable, not trusted.
  ChainStack f;
  TriggerDeclarations partial;
  partial.declare(*f.a->handler, f.evb);  // b's trigger of evc omitted
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(infer_members(f.stack, partial, {f.eva}),
                             [&](Context& ctx) { ctx.trigger(f.eva); });
  EXPECT_THROW(h.wait(), IsolationError);
}

TEST(Infer, RouteEntriesAndEdges) {
  ChainStack f;
  auto iso = infer_route(f.stack, f.decls, {f.eva});
  iso.resolve_route(f.stack);
  const auto& spec = iso.route_spec();
  ASSERT_EQ(spec.entries.size(), 1u);
  EXPECT_EQ(spec.entries[0], f.a->handler->id());
  EXPECT_EQ(spec.edges.size(), 2u);
}

TEST(Infer, InferredRouteRunsUnderVCARoute) {
  ChainStack f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCARoute, .record_trace = true});
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 10; ++i) {
    hs.push_back(rt.spawn_isolated(infer_route(f.stack, f.decls, {f.eva}),
                                   [&](Context& ctx) { ctx.trigger(f.eva); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  testing::expect_isolated(rt);
}

TEST(Infer, CyclicDeclarationsTerminate) {
  Stack stack;
  EventType evx("X"), evy("Y");
  class Fwd : public Microprotocol {
   public:
    explicit Fwd(std::string n) : Microprotocol(std::move(n)) {
      handler = &register_handler("run", [](Context&, const Message&) {});
    }
    const Handler* handler;
  };
  auto& x = stack.emplace<Fwd>("x");
  auto& y = stack.emplace<Fwd>("y");
  stack.bind(evx, *x.handler);
  stack.bind(evy, *y.handler);
  TriggerDeclarations decls;
  decls.declare(*x.handler, evy).declare(*y.handler, evx);  // cycle
  auto iso = infer_members(stack, decls, {evx});
  EXPECT_EQ(iso.members().size(), 2u);
  auto route = infer_route(stack, decls, {evx});
  route.resolve_route(stack);
  EXPECT_EQ(route.route_spec().edges.size(), 2u);
}

TEST(Infer, Fig1EquivalentToHandWrittenDeclaration) {
  // Reconstruct Figure 1's declaration by inference from the protocol's
  // wiring (P -> toR, Q -> toR, R -> toS) and compare it with the
  // hand-written `isolated [P R S]` declaration from proto/fig1.
  proto::Fig1Protocol proto;
  const Handler* p = proto.p().handlers()[0].get();
  const Handler* q = proto.q().handlers()[0].get();
  const Handler* r = proto.r().handlers()[0].get();
  TriggerDeclarations decls;
  decls.declare(*p, proto.ev_to_r())
      .declare(*q, proto.ev_to_r())
      .declare(*r, proto.ev_to_s());

  const auto inferred_a = infer_members(proto.stack(), decls, {proto.ev_a0()});
  const auto hand_written_a = proto.iso_a_basic();
  EXPECT_EQ(inferred_a.members().size(), hand_written_a.members().size());
  for (MicroprotocolId mp : hand_written_a.members()) {
    EXPECT_TRUE(inferred_a.declares(mp));
  }
  EXPECT_FALSE(inferred_a.declares(proto.q().id()));

  const auto inferred_b = infer_members(proto.stack(), decls, {proto.ev_b0()});
  EXPECT_TRUE(inferred_b.declares(proto.q().id()));
  EXPECT_FALSE(inferred_b.declares(proto.p().id()));

  // The inferred declaration actually drives the protocol.
  Runtime rt(proto.stack(), RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(inferred_a, [&](Context& ctx) {
    ctx.trigger(proto.ev_a0(), Message::of(proto::Fig1Msg{.tag = 'a'}));
  });
  EXPECT_NO_THROW(h.wait());
}

}  // namespace
}  // namespace samoa
