// Unit tests for the group-communication building blocks that don't need a
// network: views, message ids, the membership op codec, wire kinds.
#include <gtest/gtest.h>

#include "gc/membership.hpp"
#include "gc/view.hpp"
#include "gc/wire.hpp"

namespace samoa::gc {
namespace {

TEST(View, MembersSortedAndDeduped) {
  View v(1, {SiteId{3}, SiteId{1}, SiteId{3}, SiteId{2}});
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.members()[0], SiteId{1});
  EXPECT_EQ(v.members()[2], SiteId{3});
}

TEST(View, ContainsAndMajority) {
  View v(1, {SiteId{0}, SiteId{1}, SiteId{2}});
  EXPECT_TRUE(v.contains(SiteId{1}));
  EXPECT_FALSE(v.contains(SiteId{9}));
  EXPECT_EQ(v.majority(), 2u);
  View v5(1, {SiteId{0}, SiteId{1}, SiteId{2}, SiteId{3}, SiteId{4}});
  EXPECT_EQ(v5.majority(), 3u);
}

TEST(View, WithAndWithoutBumpId) {
  View v(1, {SiteId{0}, SiteId{1}});
  View plus = v.with(SiteId{2});
  EXPECT_EQ(plus.id(), 2u);
  EXPECT_TRUE(plus.contains(SiteId{2}));
  View minus = plus.without(SiteId{0});
  EXPECT_EQ(minus.id(), 3u);
  EXPECT_FALSE(minus.contains(SiteId{0}));
  EXPECT_EQ(minus.size(), 2u);
}

TEST(View, MemberAtWrapsAround) {
  View v(1, {SiteId{10}, SiteId{20}, SiteId{30}});
  EXPECT_EQ(v.member_at(0), SiteId{10});
  EXPECT_EQ(v.member_at(3), SiteId{10});
  EXPECT_EQ(v.member_at(4), SiteId{20});
}

TEST(View, DescribeIsHumanReadable) {
  View v(7, {SiteId{0}, SiteId{2}});
  EXPECT_EQ(v.describe(), "view#7{0,2}");
}

TEST(MsgId, OriginRoundTrips) {
  const MsgId id = make_msg_id(SiteId{5}, 1234);
  EXPECT_EQ(msg_origin(id), SiteId{5});
  EXPECT_EQ(id & 0xFFFFFFFFull, 1234u);
}

TEST(MsgId, DistinctAcrossOrigins) {
  EXPECT_NE(make_msg_id(SiteId{1}, 7), make_msg_id(SiteId{2}, 7));
  EXPECT_NE(make_msg_id(SiteId{1}, 7), make_msg_id(SiteId{1}, 8));
}

TEST(MembershipCodec, RoundTrip) {
  const auto joined = Membership::encode_op('+', SiteId{42});
  char op;
  SiteId site;
  ASSERT_TRUE(Membership::decode_op(joined, op, site));
  EXPECT_EQ(op, '+');
  EXPECT_EQ(site, SiteId{42});

  const auto left = Membership::encode_op('-', SiteId{3});
  ASSERT_TRUE(Membership::decode_op(left, op, site));
  EXPECT_EQ(op, '-');
  EXPECT_EQ(site, SiteId{3});
}

TEST(MembershipCodec, RejectsOrdinaryPayloads) {
  char op;
  SiteId site;
  EXPECT_FALSE(Membership::decode_op("hello", op, site));
  EXPECT_FALSE(Membership::decode_op("!view", op, site));
  EXPECT_FALSE(Membership::decode_op("!viewX3", op, site));
  EXPECT_FALSE(Membership::decode_op("!view+", op, site));
  EXPECT_FALSE(Membership::decode_op("", op, site));
}

TEST(WireKind, NamesAllAlternatives) {
  EXPECT_STREQ(wire_kind(Wire{RcData{}}), "RcData");
  EXPECT_STREQ(wire_kind(Wire{RcAck{}}), "RcAck");
  EXPECT_STREQ(wire_kind(Wire{FdHeartbeat{}}), "FdHeartbeat");
  EXPECT_STREQ(wire_kind(Wire{CsPrepare{}}), "CsPrepare");
  EXPECT_STREQ(wire_kind(Wire{CsPromise{}}), "CsPromise");
  EXPECT_STREQ(wire_kind(Wire{CsAccept{}}), "CsAccept");
  EXPECT_STREQ(wire_kind(Wire{CsAccepted{}}), "CsAccepted");
  EXPECT_STREQ(wire_kind(Wire{CsDecide{}}), "CsDecide");
  EXPECT_STREQ(wire_kind(Wire{ViewInstall{}}), "ViewInstall");
}

}  // namespace
}  // namespace samoa::gc
