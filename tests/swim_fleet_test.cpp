// Fleet-scale SWIM membership under scripted churn (tier-1 size).
//
// Drives tests/virtual_fleet.hpp's churn harness at 50 sites on the
// virtual clock: flapping links (one of them asymmetric), a minority
// island partitioned away long enough to be confirmed faulty and then
// healed (exercising incarnation-numbered resurrection), and a
// simultaneous crash of 10% of the fleet followed by scripted evictions.
// Asserts convergence to the agreed survivor view with zero
// virtual-synchrony violations, and that the detection-latency samples
// landed inside the detect window. A heartbeat-detector cell runs the same
// scenario at small scale through the same Detector seam.
#include <gtest/gtest.h>

#include <string>

#include "virtual_fleet.hpp"

namespace samoa::gc {
namespace {

using testing::ChurnConfig;
using testing::run_churn_fleet;

TEST(SwimFleet, FiftySiteChurnConvergesWithZeroVsViolations) {
  ChurnConfig cfg;
  cfg.sites = 50;
  cfg.seed = 1;
  cfg.detector = DetectorImpl::kSwim;
  const auto out = run_churn_fleet(cfg);

  ASSERT_TRUE(out.converged) << "fleet never converged; chaos log tail:\n"
                             << (out.chaos_log.empty() ? "" : out.chaos_log.back());
  EXPECT_TRUE(out.vs.ok()) << out.vs.describe();
  EXPECT_GT(out.traces.size(), 0u);

  // The crash was detected: a first suspicion inside the detect window,
  // and site 0 saw every crashed site suspected before the evictions.
  EXPECT_GE(out.first_suspicion_us, 30000) << "suspicion sampled before the crash?";
  EXPECT_GT(out.all_suspected_us, 0) << "not every crashed site was suspected in the window";
  EXPECT_LE(out.all_suspected_us, 50000);

  // SWIM actually ran: probes every period, suspicions from the churn,
  // refutations from the healed island, piggybacked dissemination.
  EXPECT_GT(out.periods, 0u);
  EXPECT_GT(out.probes_sent, 0u);
  EXPECT_GT(out.suspicions, 0u);
  EXPECT_GT(out.updates_piggybacked, 0u);
  EXPECT_GT(out.refutations, 0u) << "the healed island never refuted its confirmed-faulty state";
  EXPECT_GT(out.revocations, 0u);
}

TEST(SwimFleet, HeartbeatDetectorRunsSameScenarioThroughSeam) {
  // Same harness, heartbeat detector, small scale (the equal-bandwidth
  // heartbeat interval grows with n, so a big fleet would need a huge
  // detect window — that trade-off is the E-SWIM bench's subject, not
  // this test's).
  ChurnConfig cfg;
  cfg.sites = 10;
  cfg.seed = 3;
  cfg.detector = DetectorImpl::kHeartbeat;
  // Heartbeat detection latency is up to 2*fd_timeout after last contact
  // (the check tick runs once per fd_timeout); at 10 sites the equal-
  // bandwidth scaling makes that ~54ms past the crash. Size the window so
  // the suspicion lands before the evictions close the sample.
  cfg.detect_window = std::chrono::microseconds(60000);
  const auto out = run_churn_fleet(cfg);

  ASSERT_TRUE(out.converged);
  EXPECT_TRUE(out.vs.ok()) << out.vs.describe();
  EXPECT_GT(out.suspicions, 0u);
  // SWIM counters must stay untouched behind the heartbeat seam.
  EXPECT_EQ(out.probes_sent, 0u);
  EXPECT_EQ(out.periods, 0u);
}

}  // namespace
}  // namespace samoa::gc
