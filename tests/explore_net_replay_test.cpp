// Replay fidelity of network-schedule exploration — 'n' decisions over
// SimNetwork's DeliveryHook seam. The property everything rests on: a
// (cell options, 'n'-decision trace) pair reproduces the packet-level
// event stream bit-for-bit, across strategies, with fault controls in the
// decision mix, and across a lane-count change (candidate keys are site
// ids, so appending sites must not perturb a recorded schedule). Also pins
// the off-by-default contract: without a hook there are zero 'n' decisions
// and two runs are byte-identical, and a hook that always picks index 0
// reproduces the default (deliver_at, seq) merge order exactly.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/net_runner.hpp"
#include "explore/strategy.hpp"
#include "explore/trace.hpp"
#include "test_support.hpp"

namespace samoa::explore {
namespace {

NetCellOptions base_cell(NetProtocol protocol) {
  NetCellOptions o;
  o.protocol = protocol;
  o.seed = samoa::testing::test_seed(42);
  o.members = 3;
  o.relays = 3;
  o.views = 3;
  return o;
}

void expect_same_run(const NetRunResult& a, const NetRunResult& b, const std::string& label) {
  EXPECT_EQ(a.event_hash, b.event_hash) << label;
  ASSERT_EQ(a.events.size(), b.events.size()) << label;
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i], b.events[i]) << label << " event " << i;
  }
  EXPECT_EQ(a.executed, b.executed) << label;
  EXPECT_EQ(a.violated, b.violated) << label;
}

TEST(ScheduleTraceNet, NDecisionsRoundtripAlongsideStepAndClock) {
  ScheduleTrace t;
  t.record('s', 2, 4);
  t.record('n', 1, 3);
  t.record('c', 1, 2);
  t.record('n', 0, 5);
  EXPECT_EQ(t.encode(), "s2/4.n1/3.c1/2.n0/5");
  EXPECT_EQ(ScheduleTrace::decode(t.encode()), t);
}

TEST(ExploreNetReplay, RecordedTracesReplayByteIdenticallyAcrossStrategies) {
  const NetCellOptions o = base_cell(NetProtocol::kSynced);
  const std::uint64_t seed = samoa::testing::test_seed(7);

  RandomWalkStrategy walk(seed);
  PctStrategy pct(seed, /*k=*/3);
  FirstStrategy first;
  Strategy* strategies[] = {&walk, &pct, &first};
  const char* names[] = {"random-walk", "pct", "first"};
  for (std::size_t i = 0; i < 3; ++i) {
    const NetRunResult recorded = run_net_schedule(o, strategies[i]);
    const NetRunResult replayed = replay_net_schedule(o, recorded.executed);
    EXPECT_FALSE(replayed.replay_diverged) << names[i];
    expect_same_run(recorded, replayed, names[i]);
    for (const Decision& d : recorded.executed.decisions()) EXPECT_EQ(d.kind, 'n') << names[i];
  }
}

TEST(ExploreNetReplay, FaultControlDecisionsReplayByteIdentically) {
  // With the inert FaultPlan routed through ChaosEngine Route::kNetwork,
  // fault firings are candidates at the same decision points as packets —
  // and the recorded interleaving still replays exactly.
  NetCellOptions o = base_cell(NetProtocol::kUnsync);
  o.with_faults = true;
  RandomWalkStrategy walk(samoa::testing::test_seed(99));
  const NetRunResult recorded = run_net_schedule(o, &walk);
  EXPECT_GE(recorded.executed.size(), 1u);
  const NetRunResult replayed = replay_net_schedule(o, recorded.executed);
  EXPECT_FALSE(replayed.replay_diverged);
  expect_same_run(recorded, replayed, "with-faults");
}

TEST(ExploreNetReplay, TraceSurvivesLaneCountChange) {
  // Candidate keys are site ids; extra idle sites append new (never
  // eligible) lanes without shifting an existing id. A trace recorded
  // before the lane-count change must replay bit-for-bit after it.
  const NetCellOptions before = base_cell(NetProtocol::kSynced);
  RandomWalkStrategy walk(samoa::testing::test_seed(3));
  const NetRunResult recorded = run_net_schedule(before, &walk);

  NetCellOptions after = before;
  after.extra_sites = 4;
  const NetRunResult replayed = replay_net_schedule(after, recorded.executed);
  EXPECT_FALSE(replayed.replay_diverged);
  expect_same_run(recorded, replayed, "lane-count change");
}

TEST(ExploreNetReplay, NoHookRunsAreByteIdenticalWithZeroNetDecisions) {
  const NetCellOptions o = base_cell(NetProtocol::kSynced);
  const NetRunResult a = run_net_schedule(o, nullptr);
  const NetRunResult b = run_net_schedule(o, nullptr);
  EXPECT_TRUE(a.executed.empty());
  EXPECT_TRUE(b.executed.empty());
  expect_same_run(a, b, "no hook");
}

TEST(ExploreNetReplay, FirstStrategyReproducesTheDefaultMergeOrder) {
  // Candidates are presented in natural (deliver_at, seq) order, so index
  // 0 is the default merge choice: the explored run under FirstStrategy
  // must match the unexplored run byte-for-byte.
  const NetCellOptions o = base_cell(NetProtocol::kSynced);
  const NetRunResult plain = run_net_schedule(o, nullptr);
  FirstStrategy first;
  const NetRunResult hooked = run_net_schedule(o, &first);
  EXPECT_GE(hooked.executed.size(), 1u) << "decision points must exist in this workload";
  EXPECT_EQ(plain.event_hash, hooked.event_hash);
  EXPECT_EQ(plain.events, hooked.events);
}

TEST(ExploreNetReplay, ProtocolStateDoesNotLeakIntoTheNetworkSchedule) {
  // kSynced and kUnsync differ only in member-side view installation; the
  // packet-level schedule is identical, so the event streams are too.
  const NetRunResult synced = run_net_schedule(base_cell(NetProtocol::kSynced), nullptr);
  const NetRunResult unsync = run_net_schedule(base_cell(NetProtocol::kUnsync), nullptr);
  EXPECT_EQ(synced.event_hash, unsync.event_hash);
  EXPECT_EQ(synced.events, unsync.events);
  EXPECT_FALSE(synced.violated);
  EXPECT_FALSE(unsync.violated);
}

}  // namespace
}  // namespace samoa::explore
