// Deterministic-simulation regression tests.
//
// Under a time::VirtualClock, a run of the network substrate — and of the
// full group-communication fleet — must be a pure function of its seed:
// same seed ⇒ byte-identical delivery traces, timer firing sequences and
// SimNetwork stats. These tests replay scenarios twice per seed and
// compare everything; they are the harness a timing-race fix is validated
// against.
#include <gtest/gtest.h>

#include <ios>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "net/sim_network.hpp"
#include "net/timer_service.hpp"
#include "time/clock.hpp"
#include "util/sync.hpp"
#include "virtual_fleet.hpp"

namespace samoa::net {
namespace {

using time::Pin;
using time::VirtualClock;

long virtual_us(const time::ClockSource& clock) {
  return static_cast<long>(std::chrono::duration_cast<std::chrono::microseconds>(
                               clock.now().time_since_epoch())
                               .count());
}

// --- Network + timer trace reproducibility -------------------------------

struct SimTrace {
  std::vector<std::string> events;  // "<t_us> site<i> <- site<from> hops=<n>"
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t timer_fires = 0;

  bool operator==(const SimTrace&) const = default;
};

// A 4-site relay mesh with jitter and loss, driven by scripted injections,
// a transient partition and a crash. Every delivery with hops left relays
// to the next site, so cascades interleave with fresh injections.
SimTrace run_sim(std::uint64_t seed) {
  using namespace std::chrono;
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = microseconds(100),
                             .jitter = microseconds(200),
                             .drop_probability = 0.1},
                 seed, &clock);
  TimerService timers(&clock);

  SimTrace trace;
  std::mutex mu;
  constexpr int kSites = 4;
  std::vector<SiteId> sites(kSites);
  for (int i = 0; i < kSites; ++i) {
    sites[i] = net.add_site([&, i](const Packet& p) {
      const int hops = p.payload.as<int>();
      {
        std::unique_lock lock(mu);
        trace.events.push_back(std::to_string(virtual_us(clock)) + " site" + std::to_string(i) +
                               " <- site" + std::to_string(p.from.value()) +
                               " hops=" + std::to_string(hops));
      }
      if (hops > 0) net.send(sites[i], sites[(i + 1) % kSites], Message::of(hops - 1));
    });
  }

  OneShotEvent horizon;
  {
    Pin setup(clock);
    for (int k = 0; k < 10; ++k) {
      timers.schedule(microseconds(100 + 500 * k), [&, k] {
        net.send(sites[k % kSites], sites[(k + 1) % kSites], Message::of(3));
      });
    }
    timers.schedule(microseconds(2000),
                    [&] { net.set_partitioned(sites[0], sites[1], true); });
    timers.schedule(microseconds(4000),
                    [&] { net.set_partitioned(sites[0], sites[1], false); });
    timers.schedule(microseconds(5000), [&] { net.crash(sites[3]); });
    timers.schedule(microseconds(20000), [&] { horizon.set(); });
  }
  horizon.wait();
  net.drain();

  std::unique_lock lock(mu);
  trace.sent = net.stats().sent.value();
  trace.delivered = net.stats().delivered.value();
  trace.dropped = net.stats().dropped.value();
  trace.timer_fires = timers.fired_count();
  return trace;
}

TEST(Determinism, NetTimerTraceReproducible) {
  for (const std::uint64_t seed : {1ull, 99ull, 31337ull}) {
    const SimTrace a = run_sim(seed);
    const SimTrace b = run_sim(seed);
    EXPECT_EQ(a.events, b.events) << "seed " << seed << ": delivery trace diverged";
    EXPECT_EQ(a.sent, b.sent) << "seed " << seed;
    EXPECT_EQ(a.delivered, b.delivered) << "seed " << seed;
    EXPECT_EQ(a.dropped, b.dropped) << "seed " << seed;
    EXPECT_EQ(a.timer_fires, b.timer_fires) << "seed " << seed;
    EXPECT_FALSE(a.events.empty());
  }
  // Different seeds give different jitter/loss draws — sanity that the
  // trace actually depends on the seed.
  EXPECT_NE(run_sim(1).events, run_sim(99).events);
}

// --- RNG stream contract across fault states -----------------------------

// Every send consumes its link's RNG draws whether or not the packet is
// dropped for a crash/partition/unknown destination. Consequence: the
// delivery timing of *unrelated* traffic is identical whatever the fault
// state of other destinations. (Regression: send() used to short-circuit
// the loss draw for blocked packets, shifting the whole stream.)
std::vector<long> run_with_faulty_peer(bool crash_c, std::uint64_t seed) {
  using namespace std::chrono;
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = microseconds(100),
                             .jitter = microseconds(1000),
                             .drop_probability = 0.5},
                 seed, &clock);
  std::vector<long> times;
  std::mutex mu;
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) {
    std::unique_lock lock(mu);
    times.push_back(virtual_us(clock));
  });
  SiteId c = net.add_site([](const Packet&) {});
  if (crash_c) net.crash(c);
  {
    // Pin while injecting: every send must be stamped at the same virtual
    // instant, or delivery timing depends on the arming race.
    Pin inject(clock);
    net.send(a, c, Message::of(0));  // consumes draws regardless of c's fate
    for (int i = 0; i < 50; ++i) net.send(a, b, Message::of(i));
  }
  net.drain();
  std::unique_lock lock(mu);
  return times;
}

TEST(Determinism, RngStreamAlignedAcrossFaultStates) {
  const auto healthy = run_with_faulty_peer(false, 99);
  const auto crashed = run_with_faulty_peer(true, 99);
  EXPECT_EQ(healthy, crashed)
      << "the RNG stream diverged based on a peer's crash state";
  EXPECT_FALSE(healthy.empty());
}

}  // namespace
}  // namespace samoa::net

namespace samoa::gc {
namespace {

// --- Full-fleet determinism ----------------------------------------------

TEST(Determinism, GcFleetSeedSweepReplaysIdentically) {
  for (const std::uint64_t seed : {1ull, 17ull}) {
    const auto a = testing::run_chaos_fleet(seed);
    const auto b = testing::run_chaos_fleet(seed);
    ASSERT_TRUE(a.converged) << "seed " << seed;
    ASSERT_TRUE(b.converged) << "seed " << seed;
    EXPECT_EQ(a.converged_at_us, b.converged_at_us) << "seed " << seed;
    EXPECT_EQ(a.net_sent, b.net_sent) << "seed " << seed;
    EXPECT_EQ(a.net_delivered, b.net_delivered) << "seed " << seed;
    EXPECT_EQ(a.net_dropped, b.net_dropped) << "seed " << seed;
    ASSERT_EQ(a.adelivered.size(), b.adelivered.size());
    for (std::size_t i = 0; i < a.adelivered.size(); ++i) {
      ASSERT_EQ(a.adelivered[i].size(), b.adelivered[i].size())
          << "seed " << seed << " site " << i;
      for (std::size_t j = 0; j < a.adelivered[i].size(); ++j) {
        EXPECT_EQ(a.adelivered[i][j].id, b.adelivered[i][j].id)
            << "seed " << seed << " site " << i << " position " << j;
        EXPECT_EQ(a.adelivered[i][j].data, b.adelivered[i][j].data)
            << "seed " << seed << " site " << i << " position " << j;
      }
    }
    EXPECT_EQ(a.cdelivered, b.cdelivered) << "seed " << seed;
  }
}

// --- Crash/recovery fleet determinism ------------------------------------

// Two full crash → evict → restart → rejoin cycles must be a pure function
// of the seed: byte-identical view sequences, per-incarnation delivery
// traces, retransmission counts and chaos-engine logs across replays.
TEST(Determinism, RecoveryFleetReplaysIdentically) {
  for (const std::uint64_t seed : {1ull, 17ull}) {
    const auto a = testing::run_recovery_fleet(seed);
    const auto b = testing::run_recovery_fleet(seed);
    ASSERT_TRUE(a.converged) << "seed " << seed;
    ASSERT_TRUE(b.converged) << "seed " << seed;
    EXPECT_EQ(a.converged_at_us, b.converged_at_us) << "seed " << seed;
    EXPECT_EQ(a.trace_lines, b.trace_lines) << "seed " << seed << ": delivery traces diverged";
    EXPECT_EQ(a.view_lines, b.view_lines) << "seed " << seed << ": view sequences diverged";
    EXPECT_EQ(a.retransmissions, b.retransmissions)
        << "seed " << seed << ": retransmission counts diverged";
    EXPECT_EQ(a.retrans_to_evicted_probe1, b.retrans_to_evicted_probe1) << "seed " << seed;
    EXPECT_EQ(a.retrans_to_evicted_probe2, b.retrans_to_evicted_probe2) << "seed " << seed;
    EXPECT_EQ(a.chaos_log, b.chaos_log) << "seed " << seed << ": fault injection diverged";
    EXPECT_EQ(a.net_sent, b.net_sent) << "seed " << seed;
    EXPECT_EQ(a.net_delivered, b.net_delivered) << "seed " << seed;
    EXPECT_EQ(a.net_dropped, b.net_dropped) << "seed " << seed;
    EXPECT_EQ(a.rejoin4_first_delivery_us, b.rejoin4_first_delivery_us) << "seed " << seed;
    EXPECT_FALSE(a.trace_lines.empty());
  }
}

// --- Churn fleet determinism ---------------------------------------------

// The SWIM churn scenario — sharded-lane network, randomized probe order,
// gossip buffers, flapping links, an island partition, a mass crash and
// scripted evictions — must replay byte-identically: the per-lane queues
// merge to exactly the global (deliver_at, seq) order and every protocol
// RNG is seeded, so two same-seed runs may not diverge in any observable.
TEST(Determinism, ChurnFleetReplaysIdentically) {
  // Golden packet-level event-stream hashes (FNV-1a over SimNetwork's
  // delivery/drop/control event lines, in execution order). These pin that
  // with exploration disabled — no DeliveryHook installed — the delivery
  // order is bit-identical to what it was before the hook seam existed:
  // any change to the (deliver_at, seq) merge, the lane claim protocol or
  // the per-send RNG draw discipline shifts the hash. The literals are
  // libstdc++-specific (jitter draws go through std::uniform_int_distribution,
  // whose output is implementation-defined), so other stdlibs only check
  // replay equality.
#ifdef __GLIBCXX__
  const std::map<std::uint64_t, std::uint64_t> golden = {
      {1ull, 0xd017962d316934ecull},
      {17ull, 0x6f21072a3be5e26cull},
  };
#endif
  for (const std::uint64_t seed : {1ull, 17ull}) {
    testing::ChurnConfig cfg;
    cfg.sites = 30;
    cfg.seed = seed;
    const auto a = testing::run_churn_fleet(cfg);
    const auto b = testing::run_churn_fleet(cfg);
    ASSERT_TRUE(a.converged) << "seed " << seed;
    ASSERT_TRUE(b.converged) << "seed " << seed;
    EXPECT_EQ(a.converged_at_us, b.converged_at_us) << "seed " << seed;
    EXPECT_EQ(a.event_hash, b.event_hash) << "seed " << seed << ": event streams diverged";
#ifdef __GLIBCXX__
    EXPECT_EQ(a.event_hash, golden.at(seed))
        << "seed " << seed << ": delivery order changed vs the golden pin; actual hash is 0x"
        << std::hex << a.event_hash
        << ". If the change is intentional, re-run and update the literal.";
#endif
    EXPECT_EQ(a.trace_lines, b.trace_lines) << "seed " << seed << ": delivery traces diverged";
    EXPECT_EQ(a.view_lines, b.view_lines) << "seed " << seed << ": view sequences diverged";
    EXPECT_EQ(a.chaos_log, b.chaos_log) << "seed " << seed << ": fault injection diverged";
    EXPECT_EQ(a.first_suspicion_us, b.first_suspicion_us) << "seed " << seed;
    EXPECT_EQ(a.all_suspected_us, b.all_suspected_us) << "seed " << seed;
    EXPECT_EQ(a.false_positive_pairs, b.false_positive_pairs) << "seed " << seed;
    EXPECT_EQ(a.suspicions, b.suspicions) << "seed " << seed;
    EXPECT_EQ(a.refutations, b.refutations) << "seed " << seed;
    EXPECT_EQ(a.probes_sent, b.probes_sent) << "seed " << seed;
    EXPECT_EQ(a.ping_reqs_sent, b.ping_reqs_sent) << "seed " << seed;
    EXPECT_EQ(a.updates_piggybacked, b.updates_piggybacked) << "seed " << seed;
    EXPECT_EQ(a.net_sent, b.net_sent) << "seed " << seed;
    EXPECT_EQ(a.net_delivered, b.net_delivered) << "seed " << seed;
    EXPECT_EQ(a.net_dropped, b.net_dropped) << "seed " << seed;
    EXPECT_FALSE(a.trace_lines.empty());
  }
  // Seed sensitivity: the randomized probe schedule must actually depend
  // on the seed (otherwise the determinism above proves nothing).
  testing::ChurnConfig c1;
  c1.sites = 30;
  c1.seed = 1;
  testing::ChurnConfig c2 = c1;
  c2.seed = 17;
  EXPECT_NE(testing::run_churn_fleet(c1).net_sent, testing::run_churn_fleet(c2).net_sent);
}

}  // namespace
}  // namespace samoa::gc
