// Unit tests for the network substrate: SimNetwork (latency, loss,
// partitions, crashes, detach) and TimerService.
//
// Most cases run on a time::VirtualClock: deadlines fire in virtual time
// at quiescence, so the tests are deterministic and burn zero wall-clock
// time in sleeps. The two *regression* tests at the bottom (drain during a
// delivery callback, cancel during a periodic callback) deliberately run
// on the wall clock with short bounded sleeps — they reproduce races that
// only exist when callbacks overlap real time.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/sim_network.hpp"
#include "net/timer_service.hpp"
#include "time/clock.hpp"
#include "util/sync.hpp"

namespace samoa::net {
namespace {

using time::Pin;
using time::VirtualClock;

TEST(SimNetwork, DeliversPacketToCallback) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(50)}, 1, &clock);
  std::atomic<int> got{0};
  SiteId a = net.add_site([&](const Packet&) {});
  SiteId b = net.add_site([&](const Packet& p) {
    EXPECT_EQ(p.from, a);
    EXPECT_EQ(p.payload.as<int>(), 42);
    got.fetch_add(1);
  });
  net.send(a, b, Message::of(42));
  net.drain();
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(net.stats().delivered.value(), 1u);
}

TEST(SimNetwork, VirtualLatencyIsExact) {
  // Under virtual time the link latency is not a lower bound, it is the
  // exact delivery offset: the scheduler jumps now() to the deadline.
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(20000)}, 1, &clock);
  std::atomic<long> delivered_at_us{-1};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) {
    delivered_at_us.store(std::chrono::duration_cast<std::chrono::microseconds>(
                              clock.now().time_since_epoch())
                              .count());
  });
  const auto start = clock.now();
  net.send(a, b, Message::of(1));
  net.drain();
  const auto start_us =
      std::chrono::duration_cast<std::chrono::microseconds>(start.time_since_epoch()).count();
  EXPECT_EQ(delivered_at_us.load(), start_us + 20000);
}

TEST(SimNetwork, OrderPreservedOnOneLink) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100)}, 1, &clock);
  std::vector<int> received;
  std::mutex mu;
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet& p) {
    std::unique_lock lock(mu);
    received.push_back(p.payload.as<int>());
  });
  for (int i = 0; i < 20; ++i) net.send(a, b, Message::of(i));
  net.drain();
  std::unique_lock lock(mu);
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimNetwork, DropProbabilityLosesPackets) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10),
                             .drop_probability = 0.5},
                 /*seed=*/7, &clock);
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  for (int i = 0; i < 200; ++i) net.send(a, b, Message::of(i));
  net.drain();
  EXPECT_GT(got.load(), 50);
  EXPECT_LT(got.load(), 150);
  EXPECT_EQ(net.stats().dropped.value() + got.load(), 200u);
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)}, 1, &clock);
  std::atomic<int> got_a{0}, got_b{0};
  SiteId a = net.add_site([&](const Packet&) { got_a.fetch_add(1); });
  SiteId b = net.add_site([&](const Packet&) { got_b.fetch_add(1); });
  net.set_partitioned(a, b, true);
  net.send(a, b, Message::of(1));
  net.send(b, a, Message::of(2));
  net.drain();
  EXPECT_EQ(got_a.load() + got_b.load(), 0);
  net.set_partitioned(a, b, false);
  net.send(a, b, Message::of(3));
  net.drain();
  EXPECT_EQ(got_b.load(), 1);
}

TEST(SimNetwork, OnewayPartitionBlocksSingleDirection) {
  // Asymmetric cut: a -> b is dead while b -> a still delivers — the
  // failure mode where a site can talk but not hear (or vice versa).
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)}, 1, &clock);
  std::atomic<int> got_a{0}, got_b{0};
  SiteId a = net.add_site([&](const Packet&) { got_a.fetch_add(1); });
  SiteId b = net.add_site([&](const Packet&) { got_b.fetch_add(1); });
  net.set_partitioned_oneway(a, b, true);
  net.send(a, b, Message::of(1));
  net.send(b, a, Message::of(2));
  net.drain();
  EXPECT_EQ(got_b.load(), 0) << "cut direction delivered";
  EXPECT_EQ(got_a.load(), 1) << "healthy direction blocked";
  // Healing the cut direction restores it; the other was never affected.
  net.set_partitioned_oneway(a, b, false);
  net.send(a, b, Message::of(3));
  net.drain();
  EXPECT_EQ(got_b.load(), 1);
}

TEST(SimNetwork, OnewayAndSymmetricPartitionsCompose) {
  // A symmetric partition heals as a unit even when a one-way cut of the
  // same pair came first: each primitive owns only its own direction(s).
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)}, 1, &clock);
  std::atomic<int> got_b{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got_b.fetch_add(1); });
  net.set_partitioned_oneway(a, b, true);
  net.set_partitioned(a, b, true);
  net.set_partitioned(a, b, false);  // heals both directions, including a->b
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got_b.load(), 1);
}

TEST(SimNetwork, CrashedSiteDropsTraffic) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)}, 1, &clock);
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  net.crash(b);
  EXPECT_TRUE(net.crashed(b));
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got.load(), 0);
}

TEST(SimNetwork, PerLinkOverride) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)}, 1, &clock);
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  net.set_link(a, b, LinkOptions{.base_latency = std::chrono::microseconds(10),
                                 .drop_probability = 1.0});
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got.load(), 0);
  net.set_link(a, b, LinkOptions{.base_latency = std::chrono::microseconds(10)});
  net.send(a, b, Message::of(2));
  net.drain();
  EXPECT_EQ(got.load(), 1);
}

TEST(SimNetwork, UnknownDestinationCountsAsDrop) {
  VirtualClock clock;
  SimNetwork net({}, 1, &clock);
  SiteId a = net.add_site([](const Packet&) {});
  net.send(a, SiteId{99}, Message::of(1));
  net.drain();
  EXPECT_EQ(net.stats().dropped.value(), 1u);
}

TEST(SimNetwork, DetachStopsCallbacksSafely) {
  VirtualClock clock;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(50)}, 1, &clock);
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  for (int i = 0; i < 10; ++i) net.send(a, b, Message::of(i));
  net.detach(b);  // returns only when no callback for b is running
  const int at_detach = got.load();
  net.drain();
  EXPECT_EQ(got.load(), at_detach);  // nothing delivered after detach returned
}

TEST(TimerService, OneShotFires) {
  VirtualClock clock;
  TimerService timers(&clock);
  OneShotEvent fired;
  timers.schedule(std::chrono::microseconds(1000), [&] { fired.set(); });
  EXPECT_TRUE(fired.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(timers.fired_count(), 1u);
}

TEST(TimerService, FiresInDeadlineOrder) {
  VirtualClock clock;
  TimerService timers(&clock);
  std::vector<int> order;
  std::mutex mu;
  WaitGroup wg;
  wg.add(2);
  {
    // The pin keeps virtual time frozen until both timers are armed, so
    // the order is decided by the deadlines, not the arming race.
    Pin setup(clock);
    timers.schedule(std::chrono::microseconds(40000), [&] {
      std::unique_lock lock(mu);
      order.push_back(2);
      wg.done();
    });
    timers.schedule(std::chrono::microseconds(2000), [&] {
      std::unique_lock lock(mu);
      order.push_back(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerService, CancelPreventsFiring) {
  VirtualClock clock;
  TimerService timers(&clock);
  std::atomic<bool> fired{false};
  OneShotEvent sentinel;
  TimerId id = 0;
  {
    Pin setup(clock);
    id = timers.schedule(std::chrono::microseconds(50000), [&] { fired.store(true); });
    EXPECT_TRUE(timers.cancel(id));
    // Sentinel strictly after the cancelled deadline: when it fires, the
    // cancelled timer's slot has definitively passed.
    timers.schedule(std::chrono::microseconds(100000), [&] { sentinel.set(); });
  }
  EXPECT_TRUE(sentinel.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(timers.cancel(id));  // already gone
}

TEST(TimerService, PeriodicFiresRepeatedly) {
  VirtualClock clock;
  TimerService timers(&clock);
  std::atomic<int> count{0};
  std::atomic<TimerId> id{0};
  OneShotEvent done, sentinel;
  {
    Pin setup(clock);
    id = timers.schedule_periodic(std::chrono::microseconds(2000), [&] {
      if (count.fetch_add(1) + 1 == 3) {
        // Mid-callback cancel of the running periodic timer: must stick.
        EXPECT_TRUE(timers.cancel(id.load()));
        done.set();
      }
    });
  }
  EXPECT_TRUE(done.wait_for(std::chrono::milliseconds(5000)));
  {
    Pin fence(clock);
    timers.schedule(std::chrono::microseconds(50000), [&] { sentinel.set(); });
  }
  EXPECT_TRUE(sentinel.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(count.load(), 3);  // exact: the cancel suppressed the re-arm
}

TEST(TimerService, CancelAllStopsEverything) {
  VirtualClock clock;
  TimerService timers(&clock);
  std::atomic<int> count{0};
  OneShotEvent sentinel;
  {
    Pin setup(clock);
    timers.schedule_periodic(std::chrono::microseconds(1000), [&] { count.fetch_add(1); });
    timers.schedule(std::chrono::microseconds(1000), [&] { count.fetch_add(1); });
    timers.cancel_all();
    timers.schedule(std::chrono::microseconds(10000), [&] { sentinel.set(); });
  }
  EXPECT_TRUE(sentinel.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(count.load(), 0);
}

// --- Race regressions (wall clock on purpose; see file header) ---

TEST(SimNetwork, DrainWaitsForInFlightDeliveryCallback) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)});
  OneShotEvent in_callback, release;
  std::atomic<int> c_got{0};
  SiteId b{}, c{};
  SiteId a = net.add_site([](const Packet&) {});
  b = net.add_site([&](const Packet&) {
    in_callback.set();
    release.wait();
    // The callback produces follow-up traffic *before* it returns — the
    // exact window in which a drain() keyed only on the queue leaks work.
    net.send(b, c, Message::of(1));
  });
  c = net.add_site([&](const Packet&) { c_got.fetch_add(1); });

  net.send(a, b, Message::of(0));
  in_callback.wait();  // b's callback is now running, queue is empty

  std::atomic<bool> drain_returned{false};
  std::thread drainer([&] {
    net.drain();
    drain_returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(drain_returned.load()) << "drain returned while a delivery callback was running";
  release.set();
  drainer.join();
  // drain() covered the callback's follow-up send too.
  EXPECT_EQ(c_got.load(), 1);
}

TEST(TimerService, CancelDuringPeriodicCallbackIsHonored) {
  TimerService timers;
  OneShotEvent in_callback, release;
  std::atomic<int> count{0};
  TimerId id = timers.schedule_periodic(std::chrono::microseconds(1000), [&] {
    if (count.fetch_add(1) == 0) {
      in_callback.set();
      release.wait();
    }
  });
  in_callback.wait();  // the callback is running; the entry is not queued
  EXPECT_TRUE(timers.cancel(id)) << "cancel lost while the periodic callback was running";
  release.set();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(count.load(), 1) << "periodic timer re-armed despite cancellation";
  EXPECT_FALSE(timers.cancel(id));  // gone for good
}

}  // namespace
}  // namespace samoa::net
