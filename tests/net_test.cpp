// Unit tests for the network substrate: SimNetwork (latency, loss,
// partitions, crashes, detach) and TimerService.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "net/sim_network.hpp"
#include "net/timer_service.hpp"
#include "util/sync.hpp"

namespace samoa::net {
namespace {

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(5000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return pred();
}

TEST(SimNetwork, DeliversPacketToCallback) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(50)});
  std::atomic<int> got{0};
  SiteId a = net.add_site([&](const Packet&) {});
  SiteId b = net.add_site([&](const Packet& p) {
    EXPECT_EQ(p.from, a);
    EXPECT_EQ(p.payload.as<int>(), 42);
    got.fetch_add(1);
  });
  net.send(a, b, Message::of(42));
  EXPECT_TRUE(wait_until([&] { return got.load() == 1; }));
  EXPECT_EQ(net.stats().delivered.value(), 1u);
}

TEST(SimNetwork, LatencyIsRespected) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(20000)});
  std::atomic<bool> got{false};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.store(true); });
  const auto start = Clock::now();
  net.send(a, b, Message::of(1));
  EXPECT_TRUE(wait_until([&] { return got.load(); }));
  EXPECT_GE(Clock::now() - start, std::chrono::microseconds(20000));
}

TEST(SimNetwork, OrderPreservedOnOneLink) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100)});
  std::vector<int> received;
  std::mutex mu;
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet& p) {
    std::unique_lock lock(mu);
    received.push_back(p.payload.as<int>());
  });
  for (int i = 0; i < 20; ++i) net.send(a, b, Message::of(i));
  net.drain();
  std::unique_lock lock(mu);
  ASSERT_EQ(received.size(), 20u);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(received[i], i);
}

TEST(SimNetwork, DropProbabilityLosesPackets) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10),
                             .drop_probability = 0.5},
                 /*seed=*/7);
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  for (int i = 0; i < 200; ++i) net.send(a, b, Message::of(i));
  net.drain();
  EXPECT_GT(got.load(), 50);
  EXPECT_LT(got.load(), 150);
  EXPECT_EQ(net.stats().dropped.value() + got.load(), 200u);
}

TEST(SimNetwork, PartitionBlocksBothDirections) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)});
  std::atomic<int> got_a{0}, got_b{0};
  SiteId a = net.add_site([&](const Packet&) { got_a.fetch_add(1); });
  SiteId b = net.add_site([&](const Packet&) { got_b.fetch_add(1); });
  net.set_partitioned(a, b, true);
  net.send(a, b, Message::of(1));
  net.send(b, a, Message::of(2));
  net.drain();
  EXPECT_EQ(got_a.load() + got_b.load(), 0);
  net.set_partitioned(a, b, false);
  net.send(a, b, Message::of(3));
  net.drain();
  EXPECT_EQ(got_b.load(), 1);
}

TEST(SimNetwork, CrashedSiteDropsTraffic) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)});
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  net.crash(b);
  EXPECT_TRUE(net.crashed(b));
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got.load(), 0);
}

TEST(SimNetwork, PerLinkOverride) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(10)});
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  net.set_link(a, b, LinkOptions{.base_latency = std::chrono::microseconds(10),
                                 .drop_probability = 1.0});
  net.send(a, b, Message::of(1));
  net.drain();
  EXPECT_EQ(got.load(), 0);
  net.set_link(a, b, LinkOptions{.base_latency = std::chrono::microseconds(10)});
  net.send(a, b, Message::of(2));
  net.drain();
  EXPECT_EQ(got.load(), 1);
}

TEST(SimNetwork, UnknownDestinationCountsAsDrop) {
  SimNetwork net;
  SiteId a = net.add_site([](const Packet&) {});
  net.send(a, SiteId{99}, Message::of(1));
  net.drain();
  EXPECT_EQ(net.stats().dropped.value(), 1u);
}

TEST(SimNetwork, DetachStopsCallbacksSafely) {
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(50)});
  std::atomic<int> got{0};
  SiteId a = net.add_site([](const Packet&) {});
  SiteId b = net.add_site([&](const Packet&) { got.fetch_add(1); });
  for (int i = 0; i < 10; ++i) net.send(a, b, Message::of(i));
  net.detach(b);  // returns only when no callback for b is running
  const int at_detach = got.load();
  net.drain();
  EXPECT_EQ(got.load(), at_detach);  // nothing delivered after detach returned
}

TEST(TimerService, OneShotFires) {
  TimerService timers;
  OneShotEvent fired;
  timers.schedule(std::chrono::microseconds(1000), [&] { fired.set(); });
  EXPECT_TRUE(fired.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(timers.fired_count(), 1u);
}

TEST(TimerService, FiresInDeadlineOrder) {
  TimerService timers;
  std::vector<int> order;
  std::mutex mu;
  WaitGroup wg;
  wg.add(2);
  timers.schedule(std::chrono::microseconds(40000), [&] {
    std::unique_lock lock(mu);
    order.push_back(2);
    wg.done();
  });
  timers.schedule(std::chrono::microseconds(2000), [&] {
    std::unique_lock lock(mu);
    order.push_back(1);
    wg.done();
  });
  wg.wait();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(TimerService, CancelPreventsFiring) {
  TimerService timers;
  std::atomic<bool> fired{false};
  auto id = timers.schedule(std::chrono::microseconds(50000), [&] { fired.store(true); });
  EXPECT_TRUE(timers.cancel(id));
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_FALSE(fired.load());
  EXPECT_FALSE(timers.cancel(id));  // already gone
}

TEST(TimerService, PeriodicFiresRepeatedly) {
  TimerService timers;
  std::atomic<int> count{0};
  auto id = timers.schedule_periodic(std::chrono::microseconds(2000), [&] { count.fetch_add(1); });
  EXPECT_TRUE(wait_until([&] { return count.load() >= 3; }));
  timers.cancel(id);
  const int at_cancel = count.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_LE(count.load(), at_cancel + 1);  // at most one in-flight firing
}

TEST(TimerService, CancelAllStopsEverything) {
  TimerService timers;
  std::atomic<int> count{0};
  timers.schedule_periodic(std::chrono::microseconds(1000), [&] { count.fetch_add(1); });
  timers.schedule(std::chrono::microseconds(1000), [&] { count.fetch_add(1); });
  timers.cancel_all();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(count.load(), 0);
}

}  // namespace
}  // namespace samoa::net
