// Strategy x protocol sweep of the network-schedule explorer — the
// distributed half of the exploration gate. Within a bounded schedule
// budget, random-walk and PCT-k exploration of SimNetwork delivery order
// must expose the unsynchronised view-installation protocol as a
// virtual-synchrony violation (vs_checker rule 1: the same message
// delivered in different views on different members), with a shrunk,
// replayable counterexample — while the default (deliver_at, seq) order
// never hits it, and the synchronised protocol stays clean over the whole
// explored matrix, fault-timing decisions included.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "explore/net_runner.hpp"
#include "explore/runner.hpp"
#include "explore/trace.hpp"
#include "test_support.hpp"

namespace samoa::explore {
namespace {

NetCellOptions gate_cell(NetProtocol protocol, StrategyKind strategy) {
  NetCellOptions o;
  o.protocol = protocol;
  o.strategy = strategy;
  o.seed = samoa::testing::test_seed(42);
  o.members = 3;
  o.relays = 3;
  o.views = 2;  // one epoch: keeps violating traces (and their shrinks) small
  o.max_schedules = 40;
  return o;
}

TEST(ExploreNetSweep, RandomWalkFlagsUnsyncWithShrunkCounterexample) {
  const NetCellResult res = explore_net_cell(gate_cell(NetProtocol::kUnsync, StrategyKind::kRandomWalk));
  ASSERT_TRUE(res.violation_found)
      << "random walk never violated vs-unsync within " << res.schedules_run
      << " schedules (seed " << res.options.seed << ")";
  EXPECT_FALSE(res.violation_summary.empty());
  EXPECT_LE(res.shrunk.size(), res.first_violation.size());
  ASSERT_FALSE(res.shrunk.empty()) << "the natural network schedule should not violate";
  // Regression pin: the counterexample stays small. The violation needs
  // only a handful of relay-race inversions; the shrinker lands at 3-4
  // decisions, so 8 is generous without letting quality regress silently.
  EXPECT_LE(res.shrunk.size(), 8u) << res.shrunk.encode();
  EXPECT_NE(res.repro.find(res.shrunk.encode()), std::string::npos)
      << "repro snippet must embed the shrunk trace";
  // Every explored decision in a net cell is a network decision.
  EXPECT_GT(res.decisions.n, 0u);
  EXPECT_EQ(res.decisions.s, 0u);
  EXPECT_EQ(res.decisions.c, 0u);
  EXPECT_EQ(res.decisions.total(), res.decisions.n);

  // The shrunk counterexample replays as a standalone repro: same seeded
  // fleet, forced decisions, violation reproduced, no divergence.
  const NetRunResult replay = replay_net_schedule(res.options, res.shrunk);
  EXPECT_FALSE(replay.replay_diverged) << res.shrunk.encode();
  EXPECT_TRUE(replay.violated) << res.shrunk.encode();
}

TEST(ExploreNetSweep, ReproSnippetTraceSurvivesTextRoundtrip) {
  const NetCellResult res = explore_net_cell(gate_cell(NetProtocol::kUnsync, StrategyKind::kRandomWalk));
  ASSERT_TRUE(res.violation_found);
  const ScheduleTrace decoded = ScheduleTrace::decode(res.shrunk.encode());
  const NetRunResult replay = replay_net_schedule(res.options, decoded);
  EXPECT_TRUE(replay.violated);
  EXPECT_FALSE(replay.replay_diverged);
}

TEST(ExploreNetSweep, PctFlagsUnsync) {
  NetCellOptions o = gate_cell(NetProtocol::kUnsync, StrategyKind::kPct);
  o.max_schedules = 100;
  o.pct_k = 3;
  const NetCellResult res = explore_net_cell(o);
  EXPECT_TRUE(res.violation_found)
      << "PCT never violated vs-unsync within " << res.schedules_run << " schedules (seed "
      << res.options.seed << ")";
}

TEST(ExploreNetSweep, DefaultDeliveryOrderNeverHitsTheViolation) {
  // The seeded bug needs a relay-race inversion the (deliver_at, seq)
  // merge can't produce: the coordinator seeds data before views and FIFO
  // preserves that through every lane. Several seeds, both fault modes.
  for (std::uint64_t seed : {1ull, 7ull, 42ull, 1337ull}) {
    for (bool faults : {false, true}) {
      NetCellOptions o = gate_cell(NetProtocol::kUnsync, StrategyKind::kFirst);
      o.seed = seed;
      o.with_faults = faults;
      const NetRunResult r = run_net_schedule(o, nullptr);
      EXPECT_FALSE(r.violated) << "seed " << seed << " faults " << faults << ": "
                               << r.violation_summary;
      EXPECT_TRUE(r.executed.empty());
    }
  }
}

TEST(ExploreNetSweep, SyncedProtocolStaysCleanAcrossTheExploredMatrix) {
  // The other half of the gate: with the synchronisation barrier in
  // place, every explored interleaving — fault-timing decisions included
  // — yields a clean vs_checker report, and clean cells exhaust their
  // whole budget with real 'n' decisions explored.
  NetCellOptions base = gate_cell(NetProtocol::kSynced, StrategyKind::kRandomWalk);
  base.max_schedules = 8;
  for (bool faults : {false, true}) {
    base.with_faults = faults;
    const std::vector<NetCellResult> results =
        net_sweep({NetProtocol::kSynced}, {StrategyKind::kRandomWalk, StrategyKind::kPct},
                  {samoa::testing::test_seed(42), samoa::testing::test_seed(1337)}, base);
    ASSERT_EQ(results.size(), 4u);
    for (const NetCellResult& res : results) {
      EXPECT_FALSE(res.violation_found)
          << res.cell_name() << " violated virtual synchrony!\n"
          << res.violation_summary << "\nshrunk trace: " << res.shrunk.encode() << "\nrepro:\n"
          << res.repro;
      EXPECT_EQ(res.schedules_run, schedule_budget(base.max_schedules)) << res.cell_name();
      EXPECT_GT(res.decisions.n, 0u) << res.cell_name() << ": no network decisions explored";
    }
  }
}

TEST(ExploreNetSweep, FaultControlsWidenTheDecisionSpace) {
  // Same cell, faults on vs off: the inert plan's control events are
  // extra candidates at existing decision points, so the per-run decision
  // trace gets strictly richer while behaviour stays clean.
  NetCellOptions o = gate_cell(NetProtocol::kSynced, StrategyKind::kRandomWalk);
  o.max_schedules = 4;
  const NetCellResult without = explore_net_cell(o);
  o.with_faults = true;
  const NetCellResult with = explore_net_cell(o);
  EXPECT_FALSE(without.violation_found);
  EXPECT_FALSE(with.violation_found);
  EXPECT_GT(with.decisions.n, without.decisions.n);
}

}  // namespace
}  // namespace samoa::explore
