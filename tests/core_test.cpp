// Unit tests for the core kernel: events, messages, microprotocols,
// stacks/bindings, triggers, computations and runtime lifecycle.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "core/errors.hpp"
#include "core/runtime.hpp"
#include "verify/checker.hpp"

namespace samoa {
namespace {

TEST(EventType, IdentityIsPerInstance) {
  EventType a("X"), b("X");
  EXPECT_EQ(a.name(), "X");
  EXPECT_FALSE(a == b);  // same name, distinct types (J-SAMOA semantics)
  EventType c = a;
  EXPECT_TRUE(a == c);
}

TEST(Message, TypedPayloadRoundTrip) {
  auto m = Message::of(std::string("hello"));
  EXPECT_EQ(m.as<std::string>(), "hello");
  EXPECT_TRUE(m.holds<std::string>());
  EXPECT_FALSE(m.holds<int>());
}

TEST(Message, WrongTypeThrows) {
  auto m = Message::of(42);
  EXPECT_THROW(m.as<std::string>(), MessageTypeError);
}

TEST(Message, EmptyMessage) {
  Message m;
  EXPECT_TRUE(m.empty());
  EXPECT_THROW(m.as<int>(), MessageTypeError);
}

/// Minimal microprotocol: one counter, one handler that bumps it.
class CounterMp : public Microprotocol {
 public:
  explicit CounterMp(std::string name) : Microprotocol(std::move(name)) {
    bump = &register_handler("bump", [this](Context&, const Message& m) {
      count += m.empty() ? 1 : m.as<int>();
    });
  }
  const Handler* bump = nullptr;
  int count = 0;
};

TEST(Microprotocol, HandlerRegistrationAndLookup) {
  CounterMp mp("c");
  EXPECT_EQ(mp.name(), "c");
  EXPECT_EQ(mp.handlers().size(), 1u);
  EXPECT_EQ(mp.find_handler("bump"), mp.bump);
  EXPECT_EQ(mp.find_handler("nope"), nullptr);
  EXPECT_EQ(&mp.bump->owner(), &mp);
}

TEST(Microprotocol, DuplicateHandlerNameThrows) {
  class Bad : public Microprotocol {
   public:
    Bad() : Microprotocol("bad") {
      register_handler("h", [](Context&, const Message&) {});
      register_handler("h", [](Context&, const Message&) {});
    }
  };
  EXPECT_THROW(Bad{}, ConfigError);
}

TEST(Stack, BindAndLookup) {
  Stack stack;
  auto& mp = stack.emplace<CounterMp>("c");
  EventType ev("Bump");
  stack.bind(ev, *mp.bump);
  ASSERT_EQ(stack.bound_handlers(ev.id()).size(), 1u);
  EXPECT_EQ(stack.bound_handlers(ev.id())[0], mp.bump);
  EXPECT_TRUE(stack.bound_handlers(EventType("Other").id()).empty());
}

TEST(Stack, BindAfterSealThrows) {
  Stack stack;
  auto& mp = stack.emplace<CounterMp>("c");
  EventType ev("Bump");
  stack.seal();
  EXPECT_THROW(stack.bind(ev, *mp.bump), ConfigError);
}

TEST(Stack, BindForeignHandlerThrows) {
  Stack s1, s2;
  auto& mp = s1.emplace<CounterMp>("c");
  EventType ev("Bump");
  EXPECT_THROW(s2.bind(ev, *mp.bump), ConfigError);
}

TEST(Stack, FindByIds) {
  Stack stack;
  auto& mp = stack.emplace<CounterMp>("c");
  EXPECT_EQ(stack.find(mp.id()), &mp);
  EXPECT_EQ(stack.find_handler(mp.bump->id()), mp.bump);
  EXPECT_EQ(stack.find(MicroprotocolId{}), nullptr);
  EXPECT_EQ(stack.find_handler(HandlerId{}), nullptr);
}

struct Fixture {
  Stack stack;
  CounterMp* mp;
  EventType bump{"Bump"};

  explicit Fixture() {
    mp = &stack.emplace<CounterMp>("c");
    stack.bind(bump, *mp->bump);
  }
};

TEST(Runtime, SyncTriggerRunsHandler) {
  Fixture f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({f.mp}),
                             [&](Context& ctx) { ctx.trigger(f.bump, Message::of(5)); });
  h.wait();
  EXPECT_EQ(f.mp->count, 5);
  EXPECT_EQ(rt.stats().handler_calls.value(), 1u);
  EXPECT_EQ(rt.stats().spawned.value(), 1u);
  EXPECT_EQ(rt.stats().completed.value(), 1u);
}

TEST(Runtime, AsyncTriggerRunsHandler) {
  Fixture f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({f.mp}),
                             [&](Context& ctx) { ctx.async_trigger(f.bump, Message::of(3)); });
  h.wait();
  EXPECT_EQ(f.mp->count, 3);
}

TEST(Runtime, TriggerWithZeroBindingsThrows) {
  Fixture f;
  EventType unbound("Unbound");
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({f.mp}),
                             [&](Context& ctx) { ctx.trigger(unbound); });
  EXPECT_THROW(h.wait(), ConfigError);
  EXPECT_TRUE(h.failed());
}

TEST(Runtime, TriggerWithMultipleBindingsThrows) {
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  auto& b = stack.emplace<CounterMp>("b");
  EventType ev("Multi");
  stack.bind(ev, *a.bump);
  stack.bind(ev, *b.bump);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({&a, &b}),
                             [&](Context& ctx) { ctx.trigger(ev); });
  EXPECT_THROW(h.wait(), ConfigError);
}

TEST(Runtime, TriggerAllFiresInBindingOrder) {
  Stack stack;
  std::vector<std::string> order;
  class Rec : public Microprotocol {
   public:
    Rec(std::string n, std::vector<std::string>& order) : Microprotocol(n) {
      h = &register_handler("h", [this, &order](Context&, const Message&) {
        order.push_back(name());
      });
    }
    const Handler* h;
  };
  auto& a = stack.emplace<Rec>("a", order);
  auto& b = stack.emplace<Rec>("b", order);
  auto& c = stack.emplace<Rec>("c", order);
  EventType ev("All");
  stack.bind(ev, *b.h);
  stack.bind(ev, *a.h);
  stack.bind(ev, *c.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&a, &b, &c}),
                    [&](Context& ctx) { ctx.trigger_all(ev); })
      .wait();
  EXPECT_EQ(order, (std::vector<std::string>{"b", "a", "c"}));
}

TEST(Runtime, TriggerAllWithZeroBindingsIsNoop) {
  Fixture f;
  EventType unbound("Unbound");
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({f.mp}),
                             [&](Context& ctx) { ctx.trigger_all(unbound); });
  EXPECT_NO_THROW(h.wait());
}

TEST(Runtime, UndeclaredMicroprotocolThrowsIsolationError) {
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  auto& b = stack.emplace<CounterMp>("b");
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.bump);
  stack.bind(evb, *b.bump);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  // Declares only {a} but calls into b.
  auto h = rt.spawn_isolated(Isolation::basic({&a}), [&](Context& ctx) {
    ctx.trigger(eva);
    ctx.trigger(evb);
  });
  EXPECT_THROW(h.wait(), IsolationError);
  EXPECT_EQ(a.count, 1);  // first call went through
  EXPECT_EQ(b.count, 0);
}

TEST(Runtime, OverDeclaredMicroprotocolIsFine) {
  // "There is no problem if some microprotocol declared in M is not called."
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  auto& b = stack.emplace<CounterMp>("b");
  EventType eva("A");
  stack.bind(eva, *a.bump);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto h = rt.spawn_isolated(Isolation::basic({&a, &b}),
                             [&](Context& ctx) { ctx.trigger(eva); });
  EXPECT_NO_THROW(h.wait());
  EXPECT_EQ(a.count, 1);
}

TEST(Runtime, HandlerErrorsPropagateToWait) {
  Stack stack;
  class Thrower : public Microprotocol {
   public:
    Thrower() : Microprotocol("thrower") {
      h = &register_handler("boom", [](Context&, const Message&) {
        throw std::runtime_error("boom");
      });
    }
    const Handler* h;
  };
  auto& t = stack.emplace<Thrower>();
  EventType ev("Boom");
  stack.bind(ev, *t.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});

  auto sync = rt.spawn_isolated(Isolation::basic({&t}),
                                [&](Context& ctx) { ctx.trigger(ev); });
  EXPECT_THROW(sync.wait(), std::runtime_error);

  auto async = rt.spawn_isolated(Isolation::basic({&t}),
                                 [&](Context& ctx) { ctx.async_trigger(ev); });
  EXPECT_THROW(async.wait(), std::runtime_error);
}

TEST(Runtime, FailedComputationStillReleasesVersions) {
  // A crashing computation must not wedge the next one (never-abort +
  // Step 3 always runs).
  Fixture f;
  EventType unbound("Unbound");
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  auto bad = rt.spawn_isolated(Isolation::basic({f.mp}),
                               [&](Context& ctx) { ctx.trigger(unbound); });
  EXPECT_THROW(bad.wait(), ConfigError);
  auto good = rt.spawn_isolated(Isolation::basic({f.mp}),
                                [&](Context& ctx) { ctx.trigger(f.bump); });
  EXPECT_TRUE(good.wait_for(std::chrono::milliseconds(5000)));
  EXPECT_EQ(f.mp->count, 1);
}

TEST(Runtime, NestedSyncTriggers) {
  Stack stack;
  class Outer : public Microprotocol {
   public:
    Outer(EventType inner_ev) : Microprotocol("outer"), inner_ev_(inner_ev) {
      h = &register_handler("h", [this](Context& ctx, const Message&) {
        ctx.trigger(inner_ev_);
      });
    }
    const Handler* h;
   private:
    EventType inner_ev_;
  };
  EventType inner_ev("Inner");
  auto& inner = stack.emplace<CounterMp>("inner");
  auto& outer = stack.emplace<Outer>(inner_ev);
  EventType outer_ev("Outer");
  stack.bind(outer_ev, *outer.h);
  stack.bind(inner_ev, *inner.bump);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&outer, &inner}),
                    [&](Context& ctx) { ctx.trigger(outer_ev); })
      .wait();
  EXPECT_EQ(inner.count, 1);
}

TEST(Runtime, DrainWaitsForAllComputations) {
  Fixture f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  for (int i = 0; i < 20; ++i) {
    rt.spawn_isolated(Isolation::basic({f.mp}),
                      [&](Context& ctx) { ctx.async_trigger(f.bump); });
  }
  rt.drain();
  EXPECT_EQ(f.mp->count, 20);
}

TEST(Runtime, TraceRecordsRun) {
  Fixture f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic, .record_trace = true});
  rt.spawn_isolated(Isolation::basic({f.mp}),
                    [&](Context& ctx) { ctx.trigger(f.bump); })
      .wait();
  rt.drain();
  ASSERT_NE(rt.trace(), nullptr);
  auto events = rt.trace()->snapshot();
  // spawn, issue, start, end, done.
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].phase, TracePhase::kSpawn);
  EXPECT_EQ(events[1].phase, TracePhase::kIssue);
  EXPECT_EQ(events[2].phase, TracePhase::kStart);
  EXPECT_EQ(events[3].phase, TracePhase::kEnd);
  EXPECT_EQ(events[4].phase, TracePhase::kDone);
  auto report = check_isolation(events);
  EXPECT_TRUE(report.isolated);
  EXPECT_TRUE(report.serial);
}

TEST(Runtime, ContextExposesEnvironment) {
  Fixture f;
  Runtime rt(f.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({f.mp}), [&](Context& ctx) {
      EXPECT_EQ(&ctx.runtime(), &rt);
      EXPECT_EQ(&ctx.stack(), &f.stack);
      EXPECT_FALSE(ctx.current_handler().valid());  // root expression
    }).wait();
}

TEST(Isolation, BasicDeduplicatesMembers) {
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  auto iso = Isolation::basic({&a, &a, &a});
  EXPECT_EQ(iso.members().size(), 1u);
  EXPECT_TRUE(iso.declares(a.id()));
}

TEST(Isolation, BoundRejectsZeroAndDuplicates) {
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  EXPECT_THROW(Isolation::bound({{&a, 0}}), ConfigError);
  EXPECT_THROW(Isolation::bound({{&a, 1}, {&a, 2}}), ConfigError);
}

TEST(Isolation, RouteResolutionFillsMembers) {
  Stack stack;
  auto& a = stack.emplace<CounterMp>("a");
  auto& b = stack.emplace<CounterMp>("b");
  auto iso = Isolation::route(RouteSpec{}.entry(*a.bump).edge(*a.bump, *b.bump));
  iso.resolve_route(stack);
  EXPECT_EQ(iso.members().size(), 2u);
  EXPECT_TRUE(iso.declares(a.id()));
  EXPECT_TRUE(iso.declares(b.id()));
  EXPECT_EQ(iso.route_owners().at(a.bump->id()), a.id());
}

TEST(Isolation, EmptyRouteThrows) {
  Stack stack;
  auto iso = Isolation::route(RouteSpec{});
  EXPECT_THROW(iso.resolve_route(stack), ConfigError);
}

}  // namespace
}  // namespace samoa
