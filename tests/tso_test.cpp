// Tests for the TSO controller (timestamp ordering with rollback/restart)
// and the TxVar/UndoLog substrate.
#include <gtest/gtest.h>

#include <thread>

#include "cc/tso.hpp"
#include "core/txvar.hpp"
#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;

RuntimeOptions tso_opts(bool trace = false) {
  RuntimeOptions o;
  o.policy = CCPolicy::kTSO;
  o.record_trace = trace;
  return o;
}

/// A transactional counter microprotocol: its state lives in a TxVar so
/// aborted computations roll back cleanly.
class TxCounter : public Microprotocol {
 public:
  explicit TxCounter(std::string name, std::chrono::microseconds work = {})
      : Microprotocol(std::move(name)) {
    add = &register_handler("add", [this, work](Context& ctx, const Message& m) {
      value.set(ctx, value.get() + m.as<int>());
      if (work.count() > 0) std::this_thread::sleep_for(work);
    });
  }
  const Handler* add = nullptr;
  TxVar<int> value{0};
};

TEST(UndoLog, RollbackRunsInReverse) {
  UndoLog log;
  std::vector<int> order;
  log.record([&] { order.push_back(1); });
  log.record([&] { order.push_back(2); });
  log.record([&] { order.push_back(3); });
  EXPECT_EQ(log.size(), 3u);
  log.rollback();
  EXPECT_EQ(order, (std::vector<int>{3, 2, 1}));
  EXPECT_EQ(log.size(), 0u);
}

TEST(TSO, SingleComputationCommits) {
  Stack stack;
  auto& c = stack.emplace<TxCounter>("c");
  EventType ev("Add");
  stack.bind(ev, *c.add);
  Runtime rt(stack, tso_opts());
  rt.spawn_isolated(Isolation::basic({&c}),
                    [&](Context& ctx) { ctx.trigger(ev, Message::of(5)); })
      .wait();
  EXPECT_EQ(c.value.get(), 5);
}

TEST(TSO, NoDeclarationNeeded) {
  // TSO discovers conflicts dynamically: an empty-ish declaration is fine
  // even though the computation touches the microprotocol.
  Stack stack;
  auto& c = stack.emplace<TxCounter>("c");
  auto& other = stack.emplace<TxCounter>("other");
  EventType ev("Add");
  stack.bind(ev, *c.add);
  Runtime rt(stack, tso_opts());
  // Declares `other` only — under VCAbasic this would throw; TSO ignores M.
  rt.spawn_isolated(Isolation::basic({&other}),
                    [&](Context& ctx) { ctx.trigger(ev, Message::of(3)); })
      .wait();
  EXPECT_EQ(c.value.get(), 3);
}

TEST(TSO, AsyncTriggersAreRejected) {
  Stack stack;
  auto& c = stack.emplace<TxCounter>("c");
  EventType ev("Add");
  stack.bind(ev, *c.add);
  Runtime rt(stack, tso_opts());
  auto h = rt.spawn_isolated(Isolation::basic({&c}),
                             [&](Context& ctx) { ctx.async_trigger(ev, Message::of(1)); });
  EXPECT_THROW(h.wait(), ConfigError);
}

TEST(TSO, OlderWaitsForYoungerHolder) {
  // k1 (older) parks inside a blocking mp; k2 (younger) claims `c` and
  // completes; when k1 then reaches `c` it... wait-die: k1 older than the
  // completed k2 -> no conflict. Construct the actual wait: k1 older
  // arrives while k2 YOUNGER holds the claim -> k1 must WAIT (not die).
  Stack stack;
  auto& c = stack.emplace<TxCounter>("c");
  auto& gate = stack.emplace<BlockingMp>("gate");
  EventType ev_add("Add"), ev_gate("Gate");
  stack.bind(ev_add, *c.add);
  stack.bind(ev_gate, *gate.handler);
  Runtime rt(stack, tso_opts());

  // k1 admitted first (older, ts1) but sleeps before touching c.
  std::atomic<bool> k1_done{false};
  auto k1 = rt.spawn_isolated(Isolation::basic({&c, &gate}), [&](Context& ctx) {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ctx.trigger(ev_add, Message::of(1));
    k1_done.store(true);
  });
  // k2 (younger, ts2) claims c immediately and parks in `gate` while
  // holding it.
  auto k2 = rt.spawn_isolated(Isolation::basic({&c, &gate}), [&](Context& ctx) {
    ctx.trigger(ev_add, Message::of(10));
    ctx.trigger(ev_gate);
  });
  gate.started.wait();
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(k1_done.load()) << "older computation did not wait for the younger holder";
  gate.release.set();
  k1.wait();
  k2.wait();
  EXPECT_EQ(c.value.get(), 11);
}

TEST(TSO, HandoffWakesExactlyOncePerParkUnderHighFanIn) {
  // Regression for the shared-broadcast-cv claim wait: every release used
  // to notify_all every waiter of every claim, so a bench_tso-shaped
  // high-fan-in pile-up (N computations contending one microprotocol) cost
  // O(N) wakeups per release, O(N^2) per drain. The targeted handoff wakes
  // exactly the youngest parked waiter: one wakeup per park, period.
  //
  // Deterministic pile-up: 8 old computations (admitted first, so their
  // timestamps are smallest) block in their roots on `go` while the
  // youngest claims the blocking mp and parks inside its handler. Released,
  // the 8 arrive at a claim held by a younger computation -> all 8 park
  // (wait-die says wait, old -> young). Then the holder finishes and the
  // claim hands down the age ladder: 8 parks, 8 handoffs, nothing else.
  Stack stack;
  auto& contended = stack.emplace<BlockingMp>("contended");
  EventType ev("Hit");
  stack.bind(ev, *contended.handler);
  Runtime rt(stack, tso_opts(/*trace=*/true));

  constexpr int kOldComps = 8;
  OneShotEvent go;
  std::vector<ComputationHandle> handles;
  for (int i = 0; i < kOldComps; ++i) {
    handles.push_back(rt.spawn_isolated(Isolation::basic({&contended}), [&](Context& ctx) {
      go.wait();
      ctx.trigger(ev);
    }));
  }
  auto youngest = rt.spawn_isolated(Isolation::basic({&contended}),
                                    [&](Context& ctx) { ctx.trigger(ev); });
  contended.started.wait();  // youngest holds the claim, parked in-handler
  go.set();                  // the 8 older computations now pile onto it
  // Give them time to actually park before the release (the counts below
  // are upper-bounded either way; this makes the equality meaningful).
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  contended.release.set();
  for (auto& h : handles) h.wait();
  youngest.wait();
  rt.drain();

  auto& tso = static_cast<TSOController&>(rt.controller());
  EXPECT_LE(tso.claim_wakeups(), tso.claim_parks())
      << "more wakeups than parks: releases are broadcasting again";
  EXPECT_GT(tso.claim_parks(), 0u) << "no contention happened; the cell is broken";
  EXPECT_EQ(contended.calls.load(), kOldComps + 1);
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(TSO, YoungerDiesAndRestartsWithRollback) {
  // k1 (older) claims `a` and parks; k2 (younger) first writes `b`, then
  // tries `a` -> wait-die kills k2; its write to `b` must be rolled back
  // before the retry, so the final value of b reflects exactly one commit.
  Stack stack;
  auto& a = stack.emplace<TxCounter>("a");
  auto& b = stack.emplace<TxCounter>("b");
  auto& gate = stack.emplace<BlockingMp>("gate");
  EventType ev_a("A"), ev_b("B"), ev_gate("Gate");
  stack.bind(ev_a, *a.add);
  stack.bind(ev_b, *b.add);
  stack.bind(ev_gate, *gate.handler);
  Runtime rt(stack, tso_opts());

  auto k1 = rt.spawn_isolated(Isolation::basic({&a, &gate}), [&](Context& ctx) {
    ctx.trigger(ev_a, Message::of(100));
    ctx.trigger(ev_gate);  // hold the claim on a
  });
  gate.started.wait();

  auto k2 = rt.spawn_isolated(Isolation::basic({&a, &b}), [&](Context& ctx) {
    ctx.trigger(ev_b, Message::of(1));  // uncommitted write
    ctx.trigger(ev_a, Message::of(1));  // conflicts with k1 -> dies first time
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  gate.release.set();
  k1.wait();
  k2.wait();
  EXPECT_EQ(a.value.get(), 101);
  EXPECT_EQ(b.value.get(), 1) << "rolled-back write to b leaked or was double-applied";
  auto& tso = dynamic_cast<TSOController&>(rt.controller());
  EXPECT_GE(tso.restarts(), 1u);
}

TEST(TSO, ContendedCountersStayExact) {
  // The classic lost-update test: N computations increment two counters in
  // opposite orders; restarts must never double-apply or lose an update.
  Stack stack;
  auto& x = stack.emplace<TxCounter>("x", std::chrono::microseconds(100));
  auto& y = stack.emplace<TxCounter>("y", std::chrono::microseconds(100));
  EventType ev_x("X"), ev_y("Y");
  stack.bind(ev_x, *x.add);
  stack.bind(ev_y, *y.add);
  Runtime rt(stack, tso_opts(/*trace=*/true));

  constexpr int kN = 24;
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < kN; ++i) {
    const bool x_first = i % 2 == 0;
    hs.push_back(rt.spawn_isolated(Isolation::basic({&x, &y}), [&, x_first](Context& ctx) {
      ctx.trigger(x_first ? ev_x : ev_y, Message::of(1));
      ctx.trigger(x_first ? ev_y : ev_x, Message::of(1));
    }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(x.value.get(), kN);
  EXPECT_EQ(y.value.get(), kN);
  auto report = check_isolation(rt.trace()->snapshot());
  EXPECT_TRUE(report.isolated) << report.summary();
}

TEST(TSO, TraceMarksAbortsAndCheckerIgnoresThem) {
  Stack stack;
  auto& a = stack.emplace<TxCounter>("a");
  auto& gate = stack.emplace<BlockingMp>("gate");
  EventType ev_a("A"), ev_gate("Gate");
  stack.bind(ev_a, *a.add);
  stack.bind(ev_gate, *gate.handler);
  Runtime rt(stack, tso_opts(/*trace=*/true));
  auto k1 = rt.spawn_isolated(Isolation::basic({&a, &gate}), [&](Context& ctx) {
    ctx.trigger(ev_a, Message::of(1));
    ctx.trigger(ev_gate);
  });
  gate.started.wait();
  auto k2 = rt.spawn_isolated(Isolation::basic({&a}), [&](Context& ctx) {
    ctx.trigger(ev_a, Message::of(1));  // dies at least once
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gate.release.set();
  k1.wait();
  k2.wait();
  rt.drain();
  const auto events = rt.trace()->snapshot();
  bool has_abort = false;
  for (const auto& e : events) has_abort |= e.phase == TracePhase::kAbort;
  EXPECT_TRUE(has_abort);
  auto report = check_isolation(events);
  EXPECT_TRUE(report.isolated) << report.summary();
  EXPECT_EQ(a.value.get(), 2);
}

TEST(TxVar, NoUndoOverheadUnderVersioningPolicies) {
  // Under VCAbasic the undo log stays empty (never-abort => no rollback
  // bookkeeping needed).
  Stack stack;
  auto& c = stack.emplace<TxCounter>("c");
  EventType ev("Add");
  stack.bind(ev, *c.add);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&c}), [&](Context& ctx) {
      ctx.trigger(ev, Message::of(4));
      EXPECT_EQ(ctx.computation().undo_log().size(), 0u);
    }).wait();
  EXPECT_EQ(c.value.get(), 4);
}

TEST(TxVar, UpdateHelperIsUndoable) {
  Stack stack;
  class VecMp : public Microprotocol {
   public:
    VecMp() : Microprotocol("vec") {
      push = &register_handler("push", [this](Context& ctx, const Message& m) {
        items.update(ctx, [&](std::vector<int>& v) { v.push_back(m.as<int>()); });
      });
    }
    const Handler* push = nullptr;
    TxVar<std::vector<int>> items;
  };
  auto& v = stack.emplace<VecMp>();
  EventType ev("Push");
  stack.bind(ev, *v.push);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kTSO});
  rt.spawn_isolated(Isolation::basic({&v}), [&](Context& ctx) {
      ctx.trigger(ev, Message::of(1));
      ctx.trigger(ev, Message::of(2));
    }).wait();
  EXPECT_EQ(v.items.get(), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace samoa
