// Chaos testing: the full group-communication fleet under randomized
// faults — message loss, transient partitions, one crash (minority), mixed
// traffic on all three broadcast channels — must still converge to
// identical totally-ordered histories, causal orders, and views.
//
// The scenario runs under a time::VirtualClock (see virtual_fleet.hpp):
// every fault and every message is scheduled at a fixed virtual time, so
// the sweep is reproducible per seed and spends no real time sleeping.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>

#include "virtual_fleet.hpp"

namespace samoa::gc {
namespace {

using testing::kFleetAbcasts;
using testing::kFleetCcasts;
using testing::kFleetSites;
using testing::run_chaos_fleet;

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, FleetConvergesUnderFaults) {
  const std::uint64_t seed = GetParam();
  const auto out = run_chaos_fleet(seed);
  ASSERT_TRUE(out.converged) << "seed " << seed << ": fleet did not converge under chaos "
                             << "within the virtual horizon";

  // Every surviving site converged on the abcast history...
  const auto& ref = out.adelivered[0];
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kFleetAbcasts));
  for (int i = 1; i < kFleetSites - 1; ++i) {
    const auto& got = out.adelivered[i];
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, ref[j].id)
          << "seed " << seed << ": site " << i << " diverged at " << j;
    }
  }

  // ...and on the causal stream, in the sender's order (single origin).
  for (int i = 0; i < kFleetSites - 1; ++i) {
    const auto& got = out.cdelivered[i];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kFleetCcasts));
    for (int j = 0; j < kFleetCcasts; ++j) {
      EXPECT_EQ(got[j], "c" + std::to_string(j))
          << "seed " << seed << ": causal order broken at site " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(1u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Crash/recovery chaos -------------------------------------------------
//
// Two full crash → evict → restart → rejoin cycles (one overlapping a
// partition-heal window, one under a loss burst), scripted by a FaultPlan
// on the chaos engine. Every incarnation's delivery trace must satisfy
// the virtual-synchrony checker, and retransmissions towards an evicted
// peer must stop growing after the view change.
class RecoverySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySweep, RejoinedFleetStaysVirtuallySynchronous) {
  const std::uint64_t seed = GetParam();
  const auto out = testing::run_recovery_fleet(seed);
  if (!out.converged) {
    for (const auto& line : out.trace_lines) std::printf("%s\n", line.c_str());
    for (const auto& line : out.view_lines) std::printf("%s\n", line.c_str());
  }
  ASSERT_TRUE(out.converged) << "seed " << seed
                             << ": recovery fleet did not converge within the virtual horizon";

  const auto report = verify::check_virtual_synchrony(out.traces);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.describe();
  EXPECT_GE(report.incarnations_checked, 7u);  // 5 sites + 2 archived lifetimes
  EXPECT_EQ(report.reference_length, static_cast<std::size_t>(testing::kRecoveryMessages));

  // Bounded retransmission to the evicted site: the counter moved while
  // the dead member was still in the view, then froze after the change.
  EXPECT_GT(out.retrans_to_evicted_probe1, 0u)
      << "seed " << seed << ": no retransmissions towards the dead member before eviction";
  EXPECT_EQ(out.retrans_to_evicted_probe1, out.retrans_to_evicted_probe2)
      << "seed " << seed << ": retransmissions to the evicted peer kept growing";

  // Observability counters.
  EXPECT_EQ(out.net_recoveries, 2u);
  EXPECT_EQ(out.rejoins_completed, 2u);
  EXPECT_GE(out.suspicion_revocations, 2u)
      << "the healed partition never produced a suspicion revocation";
  EXPECT_GT(out.view_change_drops, 0u);
  EXPECT_GE(out.rejoin4_first_delivery_us, out.rejoin4_requested_us);

  std::printf("seed %llu: recoveries=%llu rejoins_completed=%llu suspicion_revocations=%llu "
              "view_change_drops=%llu rejoin_to_first_delivery=%ldus\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(out.net_recoveries),
              static_cast<unsigned long long>(out.rejoins_completed),
              static_cast<unsigned long long>(out.suspicion_revocations),
              static_cast<unsigned long long>(out.view_change_drops),
              out.rejoin4_first_delivery_us - out.rejoin4_requested_us);
  for (const auto& line : out.chaos_log) std::printf("  %s\n", line.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySweep, ::testing::Values(1u, 4u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Fault-plan primitives (flap, one-way partitions) --------------------

TEST(FaultPlan, FlapExpandsToAlternatingCutsAndHeals) {
  using namespace std::chrono;
  chaos::FaultPlan plan;
  plan.flap(microseconds(1000), SiteId{1}, SiteId{2}, microseconds(500), 3);
  const auto& actions = plan.actions();
  ASSERT_EQ(actions.size(), 6u);  // 3 cuts + 3 heals
  for (std::size_t i = 0; i < actions.size(); ++i) {
    const auto& a = actions[i];
    EXPECT_EQ(a.kind, i % 2 == 0 ? chaos::FaultAction::Kind::kPartition
                                 : chaos::FaultAction::Kind::kHeal)
        << "action " << i;
    EXPECT_EQ(a.at, microseconds(1000) + microseconds(500) * i) << "action " << i;
    EXPECT_EQ(a.a, SiteId{1});
    EXPECT_EQ(a.b, SiteId{2});
  }
}

TEST(FaultPlan, OnewayPrimitivesRecordDirection) {
  using namespace std::chrono;
  chaos::FaultPlan plan;
  plan.partition_oneway(microseconds(10), SiteId{3}, SiteId{4})
      .heal_oneway(microseconds(20), SiteId{3}, SiteId{4});
  const auto& actions = plan.actions();
  ASSERT_EQ(actions.size(), 2u);
  EXPECT_EQ(actions[0].kind, chaos::FaultAction::Kind::kPartitionOneway);
  EXPECT_EQ(actions[1].kind, chaos::FaultAction::Kind::kHealOneway);
  EXPECT_EQ(actions[0].a, SiteId{3});
  EXPECT_EQ(actions[0].b, SiteId{4});
}

TEST(ChaosEngine, AppliesFlapAndOnewayCutsAtVirtualTimes) {
  // A flap (one cut/heal cycle) plus an asymmetric cut, with probe sends
  // scheduled between the toggles: each send must see exactly the link
  // state its virtual instant implies, and the engine log must record
  // every applied action.
  using namespace std::chrono;
  time::VirtualClock clock;
  net::SimNetwork net(net::LinkOptions{.base_latency = microseconds(10)}, 1, &clock);
  net::TimerService script(&clock);
  chaos::ChaosEngine engine(net, script);
  std::atomic<int> got_b{0}, got_a{0};
  const SiteId a = net.add_site([&](const net::Packet&) { got_a.fetch_add(1); });
  const SiteId b = net.add_site([&](const net::Packet&) { got_b.fetch_add(1); });

  OneShotEvent horizon;
  {
    time::Pin setup(clock);
    chaos::FaultPlan plan;
    plan.flap(microseconds(1000), a, b, microseconds(1000), 1);  // cut 1ms..2ms
    plan.partition_oneway(microseconds(3000), a, b).heal_oneway(microseconds(5000), a, b);
    engine.arm(plan);
    script.schedule(microseconds(500), [&] { net.send(a, b, Message::of(0)); });   // up
    script.schedule(microseconds(1500), [&] { net.send(a, b, Message::of(1)); });  // flapped
    script.schedule(microseconds(2500), [&] { net.send(a, b, Message::of(2)); });  // healed
    script.schedule(microseconds(3500), [&] {
      net.send(a, b, Message::of(3));  // one-way cut: a->b dead...
      net.send(b, a, Message::of(4));  // ...but b->a alive
    });
    script.schedule(microseconds(5500), [&] { net.send(a, b, Message::of(5)); });  // healed
    script.schedule(microseconds(6000), [&] { horizon.set(); });
  }
  horizon.wait();
  net.drain();

  EXPECT_EQ(got_b.load(), 3);  // sends 0, 2, 5
  EXPECT_EQ(got_a.load(), 1);  // send 4 through the un-cut direction
  EXPECT_EQ(engine.stats().partitions.value(), 2u);
  EXPECT_EQ(engine.stats().heals.value(), 2u);
  bool oneway_logged = false;
  for (const auto& line : engine.log()) {
    if (line.find("(one-way)") != std::string::npos) oneway_logged = true;
  }
  EXPECT_TRUE(oneway_logged) << "one-way actions missing from the chaos log";
}

}  // namespace
}  // namespace samoa::gc
