// Chaos testing: the full group-communication fleet under randomized
// faults — message loss, transient partitions, one crash (minority), mixed
// traffic on all three broadcast channels — must still converge to
// identical totally-ordered histories, causal orders, and views.
//
// The scenario runs under a time::VirtualClock (see virtual_fleet.hpp):
// every fault and every message is scheduled at a fixed virtual time, so
// the sweep is reproducible per seed and spends no real time sleeping.
#include <gtest/gtest.h>

#include "virtual_fleet.hpp"

namespace samoa::gc {
namespace {

using testing::kFleetAbcasts;
using testing::kFleetCcasts;
using testing::kFleetSites;
using testing::run_chaos_fleet;

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, FleetConvergesUnderFaults) {
  const std::uint64_t seed = GetParam();
  const auto out = run_chaos_fleet(seed);
  ASSERT_TRUE(out.converged) << "seed " << seed << ": fleet did not converge under chaos "
                             << "within the virtual horizon";

  // Every surviving site converged on the abcast history...
  const auto& ref = out.adelivered[0];
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kFleetAbcasts));
  for (int i = 1; i < kFleetSites - 1; ++i) {
    const auto& got = out.adelivered[i];
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, ref[j].id)
          << "seed " << seed << ": site " << i << " diverged at " << j;
    }
  }

  // ...and on the causal stream, in the sender's order (single origin).
  for (int i = 0; i < kFleetSites - 1; ++i) {
    const auto& got = out.cdelivered[i];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kFleetCcasts));
    for (int j = 0; j < kFleetCcasts; ++j) {
      EXPECT_EQ(got[j], "c" + std::to_string(j))
          << "seed " << seed << ": causal order broken at site " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(1u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace samoa::gc
