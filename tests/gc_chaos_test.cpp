// Chaos testing: the full group-communication fleet under randomized
// faults — message loss, transient partitions, one crash (minority), mixed
// traffic on all three broadcast channels — must still converge to
// identical totally-ordered histories, causal orders, and views.
//
// The scenario runs under a time::VirtualClock (see virtual_fleet.hpp):
// every fault and every message is scheduled at a fixed virtual time, so
// the sweep is reproducible per seed and spends no real time sleeping.
#include <gtest/gtest.h>

#include <cstdio>

#include "virtual_fleet.hpp"

namespace samoa::gc {
namespace {

using testing::kFleetAbcasts;
using testing::kFleetCcasts;
using testing::kFleetSites;
using testing::run_chaos_fleet;

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, FleetConvergesUnderFaults) {
  const std::uint64_t seed = GetParam();
  const auto out = run_chaos_fleet(seed);
  ASSERT_TRUE(out.converged) << "seed " << seed << ": fleet did not converge under chaos "
                             << "within the virtual horizon";

  // Every surviving site converged on the abcast history...
  const auto& ref = out.adelivered[0];
  ASSERT_EQ(ref.size(), static_cast<std::size_t>(kFleetAbcasts));
  for (int i = 1; i < kFleetSites - 1; ++i) {
    const auto& got = out.adelivered[i];
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, ref[j].id)
          << "seed " << seed << ": site " << i << " diverged at " << j;
    }
  }

  // ...and on the causal stream, in the sender's order (single origin).
  for (int i = 0; i < kFleetSites - 1; ++i) {
    const auto& got = out.cdelivered[i];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(kFleetCcasts));
    for (int j = 0; j < kFleetCcasts; ++j) {
      EXPECT_EQ(got[j], "c" + std::to_string(j))
          << "seed " << seed << ": causal order broken at site " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(1u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// --- Crash/recovery chaos -------------------------------------------------
//
// Two full crash → evict → restart → rejoin cycles (one overlapping a
// partition-heal window, one under a loss burst), scripted by a FaultPlan
// on the chaos engine. Every incarnation's delivery trace must satisfy
// the virtual-synchrony checker, and retransmissions towards an evicted
// peer must stop growing after the view change.
class RecoverySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RecoverySweep, RejoinedFleetStaysVirtuallySynchronous) {
  const std::uint64_t seed = GetParam();
  const auto out = testing::run_recovery_fleet(seed);
  if (!out.converged) {
    for (const auto& line : out.trace_lines) std::printf("%s\n", line.c_str());
    for (const auto& line : out.view_lines) std::printf("%s\n", line.c_str());
  }
  ASSERT_TRUE(out.converged) << "seed " << seed
                             << ": recovery fleet did not converge within the virtual horizon";

  const auto report = verify::check_virtual_synchrony(out.traces);
  EXPECT_TRUE(report.ok()) << "seed " << seed << ": " << report.describe();
  EXPECT_GE(report.incarnations_checked, 7u);  // 5 sites + 2 archived lifetimes
  EXPECT_EQ(report.reference_length, static_cast<std::size_t>(testing::kRecoveryMessages));

  // Bounded retransmission to the evicted site: the counter moved while
  // the dead member was still in the view, then froze after the change.
  EXPECT_GT(out.retrans_to_evicted_probe1, 0u)
      << "seed " << seed << ": no retransmissions towards the dead member before eviction";
  EXPECT_EQ(out.retrans_to_evicted_probe1, out.retrans_to_evicted_probe2)
      << "seed " << seed << ": retransmissions to the evicted peer kept growing";

  // Observability counters.
  EXPECT_EQ(out.net_recoveries, 2u);
  EXPECT_EQ(out.rejoins_completed, 2u);
  EXPECT_GE(out.suspicion_revocations, 2u)
      << "the healed partition never produced a suspicion revocation";
  EXPECT_GT(out.view_change_drops, 0u);
  EXPECT_GE(out.rejoin4_first_delivery_us, out.rejoin4_requested_us);

  std::printf("seed %llu: recoveries=%llu rejoins_completed=%llu suspicion_revocations=%llu "
              "view_change_drops=%llu rejoin_to_first_delivery=%ldus\n",
              static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(out.net_recoveries),
              static_cast<unsigned long long>(out.rejoins_completed),
              static_cast<unsigned long long>(out.suspicion_revocations),
              static_cast<unsigned long long>(out.view_change_drops),
              out.rejoin4_first_delivery_us - out.rejoin4_requested_us);
  for (const auto& line : out.chaos_log) std::printf("  %s\n", line.c_str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecoverySweep, ::testing::Values(1u, 4u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace samoa::gc
