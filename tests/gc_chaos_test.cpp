// Chaos testing: the full group-communication fleet under randomized
// faults — message loss, transient partitions, one crash (minority), mixed
// traffic on all three broadcast channels — must still converge to
// identical totally-ordered histories, causal orders, and views.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "gc/group_node.hpp"
#include "util/rng.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(45000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, FleetConvergesUnderFaults) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);

  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(2000);
  opts.retransmit_timeout = std::chrono::microseconds(3000);
  opts.heartbeat_interval = std::chrono::microseconds(2000);
  opts.fd_timeout = std::chrono::microseconds(20000);
  opts.cs_retry_interval = std::chrono::microseconds(5000);
  opts.cs_retry_timeout = std::chrono::microseconds(8000);

  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100),
                             .jitter = std::chrono::microseconds(200),
                             .drop_probability = 0.05},
                 seed);
  constexpr int kSites = 5;
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < kSites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());
  for (auto& n : nodes) n->start(View(1, members));

  // Traffic burst with a transient partition in the middle and a crash of
  // one non-coordinator site (majority survives).
  constexpr int kAbcasts = 10;
  constexpr int kCcasts = 6;
  int sent_abcasts = 0;
  for (int i = 0; i < kAbcasts / 2; ++i) {
    nodes[rng.next_below(kSites)]->abcast("a" + std::to_string(sent_abcasts++));
  }
  // Transient partition between two random distinct sites.
  const auto pa = rng.next_below(kSites);
  const auto pb = (pa + 1 + rng.next_below(kSites - 1)) % kSites;
  net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), true);
  for (int i = 0; i < kCcasts; ++i) {
    nodes[2]->ccast("c" + std::to_string(i));
  }
  for (int i = 0; i < kAbcasts / 2; ++i) {
    nodes[rng.next_below(kSites)]->abcast("a" + std::to_string(sent_abcasts++));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  net.set_partitioned(nodes[pa]->id(), nodes[pb]->id(), false);  // heal

  // Crash the last site (never the coordinator of the first instances).
  nodes[kSites - 1]->crash();

  // Every surviving site must converge on the abcast history...
  ASSERT_TRUE(wait_until([&] {
    for (int i = 0; i < kSites - 1; ++i) {
      if (nodes[i]->sink().adelivered().size() != kAbcasts) return false;
    }
    return true;
  })) << "seed " << seed << ": abcast did not converge under chaos";
  const auto ref = nodes[0]->sink().adelivered();
  for (int i = 1; i < kSites - 1; ++i) {
    const auto got = nodes[i]->sink().adelivered();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j].id, ref[j].id)
          << "seed " << seed << ": site " << i << " diverged at " << j;
    }
  }

  // ...and on the causal stream, in the sender's order (single origin).
  ASSERT_TRUE(wait_until([&] {
    for (int i = 0; i < kSites - 1; ++i) {
      if (nodes[i]->sink().cdelivered().size() != kCcasts) return false;
    }
    return true;
  })) << "seed " << seed << ": causal broadcasts did not converge";
  for (int i = 0; i < kSites - 1; ++i) {
    const auto got = nodes[i]->sink().cdelivered();
    for (int j = 0; j < kCcasts; ++j) {
      EXPECT_EQ(got[j], "c" + std::to_string(j))
          << "seed " << seed << ": causal order broken at site " << i;
    }
  }

  for (auto& n : nodes) n->stop_timers();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep, ::testing::Values(1u, 17u, 4242u),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace samoa::gc
