// Unit tests for the concurrency-control building blocks: VersionGate
// (counters, waits, deferred upgrades), RoutingGraph (closure and
// reachability), and the trace formatting utilities.
#include <gtest/gtest.h>

#include <thread>

#include "cc/routing_graph.hpp"
#include "cc/version_gate.hpp"
#include "core/stack.hpp"
#include "core/trace.hpp"
#include "diag/wait_registry.hpp"
#include "util/sync.hpp"

namespace samoa {
namespace {

TEST(VersionGate, AdmitAccumulates) {
  VersionGate gate;
  EXPECT_EQ(gate.admit(1), 1u);
  EXPECT_EQ(gate.admit(1), 2u);
  EXPECT_EQ(gate.admit(5), 7u);
  EXPECT_EQ(gate.lv(), 0u);
}

TEST(VersionGate, WaitExactFastPath) {
  VersionGate gate;
  CCStats stats;
  gate.wait_exact(0, stats);  // lv == 0 already
  EXPECT_EQ(stats.gate_waits.value(), 0u);  // no blocking happened
}

TEST(VersionGate, WaitExactBlocksUntilUpgrade) {
  VersionGate gate;
  CCStats stats;
  OneShotEvent passed;
  std::thread waiter([&] {
    gate.wait_exact(1, stats);
    passed.set();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.is_set());
  gate.set_lv(1);
  passed.wait();
  waiter.join();
  EXPECT_EQ(stats.gate_waits.value(), 1u);
  EXPECT_GT(stats.gate_wait_time.count(), 0u);
}

TEST(VersionGate, WaitWindowSemantics) {
  VersionGate gate;
  CCStats stats;
  gate.wait_window(0, 2, stats);  // 0 <= 0 < 2 immediately
  gate.set_lv(1);
  gate.wait_window(0, 2, stats);  // 0 <= 1 < 2
  OneShotEvent passed;
  std::thread waiter([&] {
    gate.wait_window(3, 5, stats);
    passed.set();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(passed.is_set());
  gate.set_lv(3);
  passed.wait();
  waiter.join();
}

TEST(VersionGate, IncrementLv) {
  VersionGate gate;
  gate.increment_lv();
  gate.increment_lv();
  EXPECT_EQ(gate.lv(), 2u);
}

TEST(VersionGate, DowngradeThrows) {
  VersionGate gate;
  gate.set_lv(5);
  EXPECT_THROW(gate.set_lv(3), std::logic_error);
}

TEST(VersionGate, ScheduleSetFiresImmediatelyWhenDue) {
  VersionGate gate;
  gate.set_lv(2);
  gate.schedule_set(2, 3);  // lv == trigger -> applied now
  EXPECT_EQ(gate.lv(), 3u);
}

TEST(VersionGate, ScheduleSetDefersUntilTrigger) {
  VersionGate gate;
  gate.schedule_set(2, 3);
  EXPECT_EQ(gate.lv(), 0u);
  gate.set_lv(1);
  EXPECT_EQ(gate.lv(), 1u);
  gate.set_lv(2);  // reaches the trigger -> chained upgrade to 3
  EXPECT_EQ(gate.lv(), 3u);
}

TEST(VersionGate, ScheduleSetChains) {
  VersionGate gate;
  gate.schedule_set(1, 2);
  gate.schedule_set(2, 3);
  gate.schedule_set(3, 4);
  gate.set_lv(1);  // cascades 1 -> 2 -> 3 -> 4
  EXPECT_EQ(gate.lv(), 4u);
}

TEST(VersionGate, StaleScheduleIsIgnored) {
  VersionGate gate;
  gate.set_lv(5);
  gate.schedule_set(2, 3);  // trigger already passed
  EXPECT_EQ(gate.lv(), 5u);
}

TEST(VersionGate, DeferredUpgradeWakesWaiters) {
  VersionGate gate;
  CCStats stats;
  gate.schedule_set(1, 2);
  OneShotEvent passed;
  std::thread waiter([&] {
    gate.wait_exact(2, stats);  // waits for lv == 2
    passed.set();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.set_lv(1);  // deferred takes it to 2
  passed.wait();
  waiter.join();
}

TEST(VersionGate, FastPublishSkipsLockWhenNobodyParked) {
  VersionGate gate;
  gate.admit(1);
  gate.set_lv(1);  // nobody parked, nothing deferred -> lock-free publish
  gate.increment_lv();
  EXPECT_EQ(gate.fast_publishes(), 2u);
  EXPECT_EQ(gate.slow_publishes(), 0u);
}

TEST(VersionGate, SlowPublishTakenWhenWaiterParked) {
  VersionGate gate;
  CCStats stats;
  OneShotEvent passed;
  std::thread waiter([&] {
    gate.wait_exact(1, stats);
    passed.set();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.set_lv(1);
  passed.wait();
  waiter.join();
  EXPECT_EQ(gate.slow_publishes(), 1u);
}

TEST(VersionGate, ClaimRangeReservesConsecutiveVersions) {
  VersionGate gate;
  // A batch of 4 single-mp admissions claims [1, 4] with one fetch_add.
  EXPECT_EQ(gate.claim_range(4), 4u);
  // The next admission continues where the range ended.
  EXPECT_EQ(gate.admit(1), 5u);
}

TEST(VersionGate, CancelWhileParkedUnwindsWithException) {
  VersionGate gate;
  CCStats stats;
  OneShotEvent cancelled_seen;
  std::thread waiter([&] {
    diag::ScopedComputation as_comp(77);
    try {
      gate.wait_exact(5, stats);
    } catch (const WaitCancelled&) {
      cancelled_seen.set();
    }
  });
  // Wait until the thread is actually parked before revoking it.
  while (diag::WaitRegistry::instance().wait_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(gate.cancel_waiters(77), 1u);
  cancelled_seen.wait();
  waiter.join();
}

TEST(VersionGate, CancelledWaiterLeavesNoStaleAccounting) {
  // Regression: a waiter cancelled mid-park used to stay hooked in the
  // waiter lists, so later publishes notified (and counted) the stale
  // entry — wakeups_delivered() drifted past the number of real parks.
  VersionGate gate;
  CCStats stats;
  OneShotEvent window_cancelled;
  std::thread parked_window([&] {
    diag::ScopedComputation as_comp(88);
    try {
      gate.wait_window(3, 5, stats);
    } catch (const WaitCancelled&) {
      window_cancelled.set();
    }
  });
  while (diag::WaitRegistry::instance().wait_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(gate.cancel_waiters(88), 1u);
  window_cancelled.wait();
  parked_window.join();
  // Publish straight through the cancelled waiter's window: nothing is
  // parked any more, so no wakeup may be delivered or counted.
  gate.set_lv(3);
  gate.set_lv(4);
  EXPECT_EQ(gate.wakeups_delivered(), 0u);
  // Cancelling a computation with no parked waits is a no-op.
  EXPECT_EQ(gate.cancel_waiters(88), 0u);
}

TEST(VersionGate, WakeupCountedOncePerParkAcrossDeferredChain) {
  // A window waiter notified at several intermediate lv values of one
  // deferred chain still counts as a single delivered wakeup: the bound
  // pinned here is what keeps the publish path O(1) in the backlog.
  VersionGate gate;
  CCStats stats;
  gate.schedule_set(1, 2);
  gate.schedule_set(2, 3);
  OneShotEvent passed;
  std::thread waiter([&] {
    gate.wait_window(1, 10, stats);
    passed.set();
  });
  while (diag::WaitRegistry::instance().wait_count() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  gate.set_lv(1);  // chain: 1 -> 2 -> 3, each landing inside the window
  passed.wait();
  waiter.join();
  EXPECT_EQ(gate.lv(), 3u);
  EXPECT_EQ(gate.wakeups_delivered(), 1u);
}

class ThreeMp : public Microprotocol {
 public:
  explicit ThreeMp(std::string name) : Microprotocol(std::move(name)) {
    a = &register_handler("a", [](Context&, const Message&) {});
    b = &register_handler("b", [](Context&, const Message&) {});
  }
  const Handler *a, *b;
};

struct GraphFixture {
  Stack stack;
  ThreeMp *x, *y, *z;

  GraphFixture() {
    x = &stack.emplace<ThreeMp>("x");
    y = &stack.emplace<ThreeMp>("y");
    z = &stack.emplace<ThreeMp>("z");
  }

  RoutingGraph build(const RouteSpec& spec) {
    auto iso = Isolation::route(spec);
    iso.resolve_route(stack);
    return RoutingGraph(iso.route_spec(), iso.route_owners());
  }
};

TEST(RoutingGraph, NodesEntriesAndOwners) {
  GraphFixture f;
  auto g = f.build(RouteSpec{}.entry(*f.x->a).edge(*f.x->a, *f.y->a));
  EXPECT_TRUE(g.has_node(f.x->a->id()));
  EXPECT_TRUE(g.has_node(f.y->a->id()));
  EXPECT_FALSE(g.has_node(f.z->a->id()));
  EXPECT_TRUE(g.is_entry(f.x->a->id()));
  EXPECT_FALSE(g.is_entry(f.y->a->id()));
  EXPECT_EQ(g.owner(f.x->a->id()), f.x->id());
  EXPECT_EQ(g.microprotocols().size(), 2u);
}

TEST(RoutingGraph, TransitiveClosure) {
  GraphFixture f;
  auto g = f.build(RouteSpec{}
                       .entry(*f.x->a)
                       .edge(*f.x->a, *f.y->a)
                       .edge(*f.y->a, *f.z->a));
  EXPECT_TRUE(g.has_path(f.x->a->id(), f.y->a->id()));
  EXPECT_TRUE(g.has_path(f.x->a->id(), f.z->a->id()));  // transitive
  EXPECT_TRUE(g.has_path(f.y->a->id(), f.z->a->id()));
  EXPECT_FALSE(g.has_path(f.z->a->id(), f.x->a->id()));
  EXPECT_FALSE(g.has_path(f.y->a->id(), f.x->a->id()));
}

TEST(RoutingGraph, SelfPathOnlyWithCycle) {
  GraphFixture f;
  auto acyclic = f.build(RouteSpec{}.entry(*f.x->a).edge(*f.x->a, *f.y->a));
  EXPECT_FALSE(acyclic.has_path(f.x->a->id(), f.x->a->id()));
  auto cyclic = f.build(
      RouteSpec{}.entry(*f.x->a).edge(*f.x->a, *f.y->a).edge(*f.y->a, *f.x->a));
  EXPECT_TRUE(cyclic.has_path(f.x->a->id(), f.x->a->id()));
}

TEST(RoutingGraph, ReachabilityFromSources) {
  GraphFixture f;
  auto g = f.build(RouteSpec{}
                       .entry(*f.x->a)
                       .edge(*f.x->a, *f.y->a)
                       .edge(*f.y->a, *f.z->a));
  auto from_y = g.reachable_from({f.y->a->id()});
  EXPECT_TRUE(from_y.contains(f.y->a->id()));  // sources included
  EXPECT_TRUE(from_y.contains(f.z->a->id()));
  EXPECT_FALSE(from_y.contains(f.x->a->id()));
  auto from_root = g.reachable_from_root();
  EXPECT_EQ(from_root.size(), 3u);
  EXPECT_TRUE(g.reachable_from({}).empty());
}

TEST(RoutingGraph, HandlersGroupedByMicroprotocol) {
  GraphFixture f;
  auto g = f.build(RouteSpec{}
                       .entry(*f.x->a)
                       .edge(*f.x->a, *f.x->b)
                       .edge(*f.x->b, *f.y->a));
  EXPECT_EQ(g.handlers_of(f.x->id()).size(), 2u);
  EXPECT_EQ(g.handlers_of(f.y->id()).size(), 1u);
}

TEST(RoutingGraph, UnresolvedOwnersThrow) {
  GraphFixture f;
  RouteSpec spec = RouteSpec{}.entry(*f.x->a);
  std::unordered_map<HandlerId, MicroprotocolId> empty;
  EXPECT_THROW(RoutingGraph(spec, empty), ConfigError);
}

TEST(Trace, PhaseNames) {
  EXPECT_STREQ(to_string(TracePhase::kIssue), "issue");
  EXPECT_STREQ(to_string(TracePhase::kStart), "start");
  EXPECT_STREQ(to_string(TracePhase::kEnd), "end");
  EXPECT_STREQ(to_string(TracePhase::kSpawn), "spawn");
  EXPECT_STREQ(to_string(TracePhase::kDone), "done");
}

TEST(Trace, FormatListsStartsOnly) {
  TraceRecorder tr;
  tr.record(TracePhase::kSpawn, ComputationId{1}, {}, {});
  tr.record(TracePhase::kIssue, ComputationId{1}, MicroprotocolId{2}, HandlerId{3});
  tr.record(TracePhase::kStart, ComputationId{1}, MicroprotocolId{2}, HandlerId{3});
  tr.record(TracePhase::kEnd, ComputationId{1}, MicroprotocolId{2}, HandlerId{3});
  const auto s = TraceRecorder::format(tr.snapshot());
  EXPECT_EQ(s, "((k1, h3))");
}

TEST(Trace, ClearResetsSequence) {
  TraceRecorder tr;
  tr.record(TracePhase::kSpawn, ComputationId{1}, {}, {});
  tr.clear();
  EXPECT_TRUE(tr.snapshot().empty());
  tr.record(TracePhase::kSpawn, ComputationId{2}, {}, {});
  EXPECT_EQ(tr.snapshot()[0].seq, 0u);
}

}  // namespace
}  // namespace samoa
