// Unit tests for the util substrate: ids, rng, stats, thread pool, sync.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/sync.hpp"
#include "util/thread_pool.hpp"

namespace samoa {
namespace {

TEST(Ids, DistinctAndOrdered) {
  IdAllocator<MicroprotocolTag> alloc;
  auto a = alloc.next();
  auto b = alloc.next();
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE(MicroprotocolId{}.valid());
}

TEST(Ids, HashUsableInSets) {
  IdAllocator<HandlerTag> alloc;
  std::set<HandlerId> s;
  for (int i = 0; i < 100; ++i) s.insert(alloc.next());
  EXPECT_EQ(s.size(), 100u);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
  EXPECT_EQ(r.next_below(0), 0u);
  EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, UniformCoversRange) {
  Rng r(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = r.uniform(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, DoublesInUnitInterval) {
  Rng r(13);
  for (int i = 0; i < 10000; ++i) {
    double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ChanceExtremes) {
  Rng r(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
  }
}

TEST(Rng, ChanceRoughlyCalibrated) {
  Rng r(19);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) hits += r.chance(0.3);
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng r(23);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.2);
  EXPECT_EQ(r.exponential(0.0), 0.0);
  EXPECT_EQ(r.exponential(-1.0), 0.0);
}

TEST(Rng, SplitIndependentStreams) {
  Rng a(31);
  Rng b = a.split();
  // The split stream must not mirror the parent.
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(Counter, ConcurrentAdds) {
  Counter c;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < 10000; ++i) c.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), 40000u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, MeanAndQuantiles) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record_ns(1000);  // all equal
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean_ns(), 1000.0);
  // Bucketed quantile: upper bound of the bucket containing 1000ns.
  EXPECT_GE(h.quantile_ns(0.5), 1000.0);
  EXPECT_LE(h.quantile_ns(0.5), 1300.0);
}

TEST(Histogram, QuantileOrdering) {
  Histogram h;
  Rng r(5);
  for (int i = 0; i < 10000; ++i) h.record_ns(r.next_below(1'000'000));
  EXPECT_LE(h.quantile_ns(0.5), h.quantile_ns(0.99));
  EXPECT_LE(h.quantile_ns(0.1), h.quantile_ns(0.5));
}

TEST(Histogram, MeanConsistentUnderConcurrentRecording) {
  // Regression: mean_ns() used to read total_count_ and total_ns_ as two
  // independent atomic loads, so a record() landing between them produced
  // a mean computed from mismatched totals. With every thread recording
  // the same constant, any consistent (count, ns) snapshot yields exactly
  // that constant — a skewed pair shows up as a different value.
  Histogram h;
  constexpr std::uint64_t kValue = 100;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) h.record_ns(kValue);
    });
  }
  // On a single-core host the verification loop can finish before any
  // writer thread is scheduled at all; wait for the first record so the
  // loop really runs against concurrent writers (and the final count
  // check cannot race to zero).
  while (h.count() == 0) std::this_thread::yield();
  for (int i = 0; i < 20000; ++i) {
    ASSERT_DOUBLE_EQ(h.mean_ns(), static_cast<double>(kValue));
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_DOUBLE_EQ(h.mean_ns(), static_cast<double>(kValue));
  EXPECT_GT(h.count(), 0u);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.record_ns(5);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_ns(), 0.0);
}

TEST(FormatDuration, PicksUnits) {
  EXPECT_EQ(format_duration_ns(500), "500.0ns");
  EXPECT_EQ(format_duration_ns(1500), "1.50us");
  EXPECT_EQ(format_duration_ns(2.5e6), "2.50ms");
  EXPECT_EQ(format_duration_ns(3.2e9), "3.20s");
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ElasticThreadPool pool;
  std::atomic<int> ran{0};
  WaitGroup wg;
  for (int i = 0; i < 100; ++i) {
    wg.add();
    pool.submit([&] {
      ran.fetch_add(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(ran.load(), 100);
}

TEST(ThreadPool, GrowsWhenTasksBlock) {
  // All currently-running tasks block on an event; a newly submitted task
  // must still run (elastic growth), otherwise this test deadlocks.
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 64, std::chrono::milliseconds(50)});
  OneShotEvent release;
  WaitGroup wg;
  for (int i = 0; i < 8; ++i) {
    wg.add();
    pool.submit([&] {
      release.wait();
      wg.done();
    });
  }
  OneShotEvent unblocked;
  pool.submit([&] { unblocked.set(); });
  EXPECT_TRUE(unblocked.wait_for(std::chrono::milliseconds(5000)));
  release.set();
  wg.wait();
  EXPECT_GE(pool.peak_thread_count(), 2u);
}

TEST(ThreadPool, ShutdownDrainsBacklog) {
  std::atomic<int> ran{0};
  {
    ElasticThreadPool pool(ElasticThreadPool::Options{1, 4, std::chrono::milliseconds(50)});
    for (int i = 0; i < 50; ++i) {
      pool.submit([&] { ran.fetch_add(1); });
    }
    pool.shutdown();
  }
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ElasticThreadPool pool;
  pool.shutdown();
  EXPECT_THROW(pool.submit([] {}), std::runtime_error);
}

TEST(ThreadPool, IdleWorkersRetire) {
  ElasticThreadPool pool(ElasticThreadPool::Options{1, 64, std::chrono::milliseconds(20)});
  OneShotEvent release;
  WaitGroup wg;
  for (int i = 0; i < 16; ++i) {
    wg.add();
    pool.submit([&] {
      release.wait();
      wg.done();
    });
  }
  release.set();
  wg.wait();
  // Give idle workers several timeout periods to retire.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_LE(pool.thread_count(), 16u);
  EXPECT_GE(pool.peak_thread_count(), 2u);
}

TEST(WaitGroup, WaitsForAll) {
  WaitGroup wg;
  std::atomic<int> done{0};
  wg.add(4);
  std::vector<std::thread> threads;
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      done.fetch_add(1);
      wg.done();
    });
  }
  wg.wait();
  EXPECT_EQ(done.load(), 4);
  for (auto& t : threads) t.join();
}

TEST(WaitGroup, DoneWithoutAddThrows) {
  WaitGroup wg;
  EXPECT_THROW(wg.done(), std::logic_error);
}

TEST(WaitGroup, WaitForTimesOut) {
  WaitGroup wg;
  wg.add();
  EXPECT_FALSE(wg.wait_for(std::chrono::milliseconds(20)));
  wg.done();
  EXPECT_TRUE(wg.wait_for(std::chrono::milliseconds(1000)));
}

TEST(OneShotEvent, SetReleasesWaiters) {
  OneShotEvent e;
  EXPECT_FALSE(e.is_set());
  std::thread t([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    e.set();
  });
  e.wait();
  EXPECT_TRUE(e.is_set());
  t.join();
}

TEST(SpinFor, WaitsApproximately) {
  const auto start = Clock::now();
  spin_for(std::chrono::microseconds(500));
  const auto elapsed = Clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(500));
}

}  // namespace
}  // namespace samoa
