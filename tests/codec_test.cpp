// Tests for the binary wire codec: primitive round-trips, full Wire
// round-trips for every alternative, malformed-input rejection, and a
// randomized round-trip sweep.
#include <gtest/gtest.h>

#include "net/codec.hpp"
#include "util/rng.hpp"

namespace samoa::net {
namespace {

using namespace samoa::gc;

TEST(ByteCodec, VarintRoundTrip) {
  ByteWriter w;
  const std::uint64_t values[] = {0, 1, 127, 128, 300, 16383, 16384, 1ull << 32,
                                  ~std::uint64_t{0}};
  for (auto v : values) w.put_varint(v);
  auto bytes = w.take();
  ByteReader r(bytes);
  for (auto v : values) EXPECT_EQ(r.get_varint(), v);
  EXPECT_TRUE(r.exhausted());
}

TEST(ByteCodec, VarintIsCompact) {
  ByteWriter w;
  w.put_varint(5);
  EXPECT_EQ(w.bytes().size(), 1u);
  w.put_varint(300);
  EXPECT_EQ(w.bytes().size(), 3u);  // 1 + 2
}

TEST(ByteCodec, StringRoundTrip) {
  ByteWriter w;
  w.put_string("");
  w.put_string("hello");
  w.put_string(std::string(1000, 'x'));
  auto bytes = w.take();
  ByteReader r(bytes);
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), std::string(1000, 'x'));
}

TEST(ByteCodec, TruncatedInputThrows) {
  ByteWriter w;
  w.put_string("hello");
  auto bytes = w.take();
  bytes.resize(3);  // cut mid-string
  ByteReader r(bytes);
  EXPECT_THROW(r.get_string(), CodecError);

  std::vector<std::uint8_t> empty;
  ByteReader r2(empty);
  EXPECT_THROW(r2.get_u8(), CodecError);
  EXPECT_THROW(ByteReader(empty).get_varint(), CodecError);
}

TEST(ByteCodec, OverlongVarintThrows) {
  std::vector<std::uint8_t> bytes(11, 0x80);  // never terminates within 64 bits
  ByteReader r(bytes);
  EXPECT_THROW(r.get_varint(), CodecError);
}

template <typename T>
void expect_roundtrip(SiteId from, const T& msg, bool (*eq)(const T&, const T&)) {
  const auto bytes = encode_wire(from, Wire{msg});
  const auto fw = decode_wire(bytes);
  EXPECT_EQ(fw.from, from);
  ASSERT_TRUE(std::holds_alternative<T>(fw.wire));
  EXPECT_TRUE(eq(std::get<T>(fw.wire), msg));
}

TEST(WireCodec, RcDataRoundTrip) {
  expect_roundtrip<RcData>(SiteId{3}, RcData{42, AppMessage{77, "payload", true}},
                           [](const RcData& a, const RcData& b) {
                             return a.seq == b.seq && a.body == b.body;
                           });
}

TEST(WireCodec, RcAckRoundTrip) {
  expect_roundtrip<RcAck>(SiteId{1}, RcAck{99},
                          [](const RcAck& a, const RcAck& b) { return a.seq == b.seq; });
}

TEST(WireCodec, HeartbeatRoundTrip) {
  expect_roundtrip<FdHeartbeat>(
      SiteId{0}, FdHeartbeat{123},
      [](const FdHeartbeat& a, const FdHeartbeat& b) { return a.epoch == b.epoch; });
}

TEST(WireCodec, ConsensusMessagesRoundTrip) {
  expect_roundtrip<CsPrepare>(SiteId{2}, CsPrepare{5, 1000001},
                              [](const CsPrepare& a, const CsPrepare& b) {
                                return a.instance == b.instance && a.round == b.round;
                              });
  expect_roundtrip<CsAccepted>(SiteId{2}, CsAccepted{5, 1000001},
                               [](const CsAccepted& a, const CsAccepted& b) {
                                 return a.instance == b.instance && a.round == b.round;
                               });
  expect_roundtrip<CsAccept>(
      SiteId{4}, CsAccept{7, 3, {AppMessage{1, "a", true}, AppMessage{2, "b", true}}},
      [](const CsAccept& a, const CsAccept& b) {
        return a.instance == b.instance && a.round == b.round && a.value == b.value;
      });
  expect_roundtrip<CsDecide>(SiteId{4}, CsDecide{7, {AppMessage{1, "a", true}}},
                             [](const CsDecide& a, const CsDecide& b) {
                               return a.instance == b.instance && a.value == b.value;
                             });
}

TEST(WireCodec, PromiseWithAndWithoutValue) {
  expect_roundtrip<CsPromise>(SiteId{5}, CsPromise{1, 2, 0, std::nullopt},
                              [](const CsPromise& a, const CsPromise& b) {
                                return a.instance == b.instance && a.round == b.round &&
                                       a.accepted_round == b.accepted_round &&
                                       a.accepted_value == b.accepted_value;
                              });
  expect_roundtrip<CsPromise>(
      SiteId{5}, CsPromise{1, 9, 4, ConsensusValue{AppMessage{11, "v", true}}},
      [](const CsPromise& a, const CsPromise& b) {
        return a.accepted_value == b.accepted_value && a.accepted_round == b.accepted_round;
      });
}

TEST(WireCodec, ViewInstallRoundTrip) {
  expect_roundtrip<ViewInstall>(SiteId{0},
                                ViewInstall{3, {SiteId{0}, SiteId{1}, SiteId{2}}},
                                [](const ViewInstall& a, const ViewInstall& b) {
                                  return a.view_id == b.view_id && a.members == b.members;
                                });
}

TEST(WireCodec, SwimMessagesRoundTrip) {
  const std::vector<SwimUpdate> updates = {
      SwimUpdate{SwimStatus::kAlive, SiteId{7}, 3},
      SwimUpdate{SwimStatus::kSuspect, SiteId{12}, 0},
      SwimUpdate{SwimStatus::kFaulty, SiteId{900}, 17},
  };
  expect_roundtrip<SwimPing>(SiteId{2}, SwimPing{41, updates},
                             [](const SwimPing& a, const SwimPing& b) {
                               return a.seq == b.seq && a.updates == b.updates;
                             });
  expect_roundtrip<SwimPing>(SiteId{2}, SwimPing{42, {}},
                             [](const SwimPing& a, const SwimPing& b) {
                               return a.seq == b.seq && a.updates == b.updates;
                             });
  expect_roundtrip<SwimAck>(SiteId{9}, SwimAck{41, SiteId{5}, updates},
                            [](const SwimAck& a, const SwimAck& b) {
                              return a.seq == b.seq && a.on_behalf_of == b.on_behalf_of &&
                                     a.updates == b.updates;
                            });
  expect_roundtrip<SwimPingReq>(SiteId{0}, SwimPingReq{77, SiteId{3}, updates},
                                [](const SwimPingReq& a, const SwimPingReq& b) {
                                  return a.seq == b.seq && a.target == b.target &&
                                         a.updates == b.updates;
                                });
}

TEST(WireCodec, SwimBadStatusByteThrows) {
  // Corrupt the status byte of the first piggybacked update: only 0..2
  // decode; anything else must throw, not silently map to a state.
  auto bytes = encode_wire(SiteId{1}, Wire{SwimPing{1, {SwimUpdate{SwimStatus::kAlive,
                                                                   SiteId{2}, 0}}}});
  // Layout: from varint, tag u8, seq varint, count varint, status u8, ...
  // For these small values every varint is one byte, so status is bytes[4].
  ASSERT_GT(bytes.size(), 4u);
  bytes[4] = 9;
  EXPECT_THROW(decode_wire(bytes), CodecError);
}

TEST(WireCodec, UnknownTagThrows) {
  ByteWriter w;
  w.put_varint(0);  // from
  w.put_u8(200);    // bogus tag
  EXPECT_THROW(decode_wire(w.take()), CodecError);
}

TEST(WireCodec, TrailingBytesThrow) {
  auto bytes = encode_wire(SiteId{1}, Wire{RcAck{7}});
  bytes.push_back(0xFF);
  EXPECT_THROW(decode_wire(bytes), CodecError);
}

TEST(WireCodec, TruncatedWireThrows) {
  const auto full = encode_wire(
      SiteId{1}, Wire{RcData{42, AppMessage{77, "some payload data", true}}});
  // Every strict prefix must throw, never crash or mis-decode silently.
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    std::vector<std::uint8_t> prefix(full.begin(), full.begin() + cut);
    EXPECT_THROW(decode_wire(prefix), CodecError) << "prefix length " << cut;
  }
}

TEST(WireCodec, RandomizedRoundTrips) {
  Rng rng(424242);
  for (int trial = 0; trial < 500; ++trial) {
    const SiteId from(static_cast<SiteId::value_type>(rng.next_below(1000)));
    Wire wire;
    switch (rng.next_below(6)) {
      case 0:
        wire = RcData{rng.next(), AppMessage{rng.next(), std::string(rng.next_below(50), 'q'),
                                             rng.chance(0.5)}};
        break;
      case 1:
        wire = RcAck{rng.next()};
        break;
      case 2:
        wire = FdHeartbeat{rng.next()};
        break;
      case 3: {
        ConsensusValue v;
        const auto n = rng.next_below(5);
        for (std::uint64_t i = 0; i < n; ++i) {
          v.push_back(AppMessage{rng.next(), "m" + std::to_string(i), true});
        }
        wire = CsAccept{rng.next(), rng.next(), std::move(v)};
        break;
      }
      case 4:
        wire = CsPromise{rng.next(), rng.next(), rng.next(), std::nullopt};
        break;
      default: {
        std::vector<SiteId> members;
        const auto n = 1 + rng.next_below(7);
        for (std::uint64_t i = 0; i < n; ++i) {
          members.push_back(SiteId(static_cast<SiteId::value_type>(rng.next_below(100))));
        }
        wire = ViewInstall{rng.next(), std::move(members)};
        break;
      }
    }
    const auto bytes = encode_wire(from, wire);
    const auto fw = decode_wire(bytes);
    EXPECT_EQ(fw.from, from);
    EXPECT_EQ(fw.wire.index(), wire.index());
    EXPECT_STREQ(wire_kind(fw.wire), wire_kind(wire));
  }
}

}  // namespace
}  // namespace samoa::net
