// Tests for the fixed-sequencer atomic broadcast: total order, order
// announcements, interop invariants, and sequencer takeover on eviction.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "gc/group_node.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

struct SeqCluster {
  SimNetwork net;
  std::vector<std::unique_ptr<GroupNode>> nodes;

  explicit SeqCluster(int n, GcOptions opts = make_opts(), std::uint64_t seed = 31)
      : net(LinkOptions{.base_latency = std::chrono::microseconds(100)}, seed) {
    for (int i = 0; i < n; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
    std::vector<SiteId> members;
    for (auto& node : nodes) members.push_back(node->id());
    for (auto& node : nodes) node->start(View(1, members));
  }

  static GcOptions make_opts() {
    GcOptions o;
    o.abcast_impl = ABcastImpl::kSequencer;
    // Calm periodic timers so the suite is robust under sanitizer
    // slowdowns (the defaults generate 2ms-period background load).
    o.heartbeat_interval = std::chrono::microseconds(20'000);
    o.fd_timeout = std::chrono::microseconds(200'000);
    o.cs_retry_interval = std::chrono::microseconds(50'000);
    o.cs_retry_timeout = std::chrono::microseconds(100'000);
    return o;
  }

  GroupNode& operator[](std::size_t i) { return *nodes[i]; }
};

TEST(SeqOrderCodec, RoundTrip) {
  const MsgId id = make_msg_id(SiteId{4}, 77);
  const auto data = SeqABcast::encode_order(id, 42);
  EXPECT_TRUE(SeqABcast::is_order_msg(data));
  MsgId got_id;
  std::uint64_t got_seq;
  ASSERT_TRUE(SeqABcast::decode_order(data, got_id, got_seq));
  EXPECT_EQ(got_id, id);
  EXPECT_EQ(got_seq, 42u);
  EXPECT_FALSE(SeqABcast::is_order_msg("plain"));
  MsgId dummy_id;
  std::uint64_t dummy_seq;
  EXPECT_FALSE(SeqABcast::decode_order("plain", dummy_id, dummy_seq));
}

TEST(SeqABcastTest, TotalOrderAcrossSites) {
  SeqCluster c(3);
  constexpr int kPerSite = 4;
  for (int i = 0; i < kPerSite; ++i) {
    for (auto& n : c.nodes) n->abcast("s" + std::to_string(i));
  }
  ASSERT_TRUE(wait_until([&] {
    for (auto& n : c.nodes) {
      if (n->sink().adelivered().size() != 3 * kPerSite) return false;
    }
    return true;
  })) << "sequencer abcast did not converge";
  const auto ref = c[0].sink().adelivered();
  for (auto& n : c.nodes) {
    const auto got = n->sink().adelivered();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].id, ref[i].id) << "sequencer total order diverged at " << i;
    }
  }
  // Only the lowest-id member sequenced anything.
  EXPECT_TRUE(c[0].seq_ab().is_sequencer());
  EXPECT_EQ(c[0].seq_ab().sequenced(), 3u * kPerSite);
  EXPECT_EQ(c[1].seq_ab().sequenced(), 0u);
}

TEST(SeqABcastTest, OrderAnnouncementsInvisibleToApp) {
  SeqCluster c(3);
  c[1].abcast("only-atomic");
  c[1].rbcast("only-plain");
  ASSERT_TRUE(wait_until([&] {
    return c[2].sink().adelivered().size() == 1 && c[2].sink().rdelivered().size() == 1;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(c[2].sink().rdelivered().size(), 1u)
      << "order announcements leaked into the application's rdeliver list";
  EXPECT_EQ(c[2].sink().rdelivered()[0].data, "only-plain");
}

TEST(SeqABcastTest, SequencerEvictionTriggersTakeover) {
  SeqCluster c(3);
  // Crash the sequencer (node 0) and evict it through membership; node 1
  // must take over and order the backlog.
  c[0].crash();
  c[1].request_leave(c[0].id());
  ASSERT_TRUE(wait_until([&] {
    return c[1].membership().view_snapshot().size() == 2 &&
           c[2].membership().view_snapshot().size() == 2;
  })) << "eviction of the crashed sequencer never installed";
  // Hmm — the eviction itself needs ordering, which needs... the eviction
  // travels through the *membership* abcast path, which in this
  // configuration is the sequencer impl too. The crash happens before the
  // leave is submitted, so the leave is ordered by... node 0 is crashed.
  // The takeover bootstrap is the view change; see the note in
  // seq_abcast.hpp. This test therefore asserts the end state only after
  // the view installs — if the design were broken, the wait above times
  // out.
  c[1].abcast("after-takeover");
  EXPECT_TRUE(wait_until([&] {
    return c[1].sink().adelivered().size() == 1 && c[2].sink().adelivered().size() == 1;
  })) << "no total-order delivery after sequencer takeover";
  EXPECT_TRUE(c[1].seq_ab().is_sequencer());
  for (auto& n : c.nodes) n->stop_timers();
}

TEST(SeqABcastTest, SurvivesLossyLinks) {
  GcOptions opts = SeqCluster::make_opts();
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1500);
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100),
                             .drop_probability = 0.1},
                 /*seed=*/77);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 3; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& node : nodes) members.push_back(node->id());
  for (auto& node : nodes) node->start(View(1, members));
  for (int i = 0; i < 4; ++i) nodes[1]->abcast("lossy" + std::to_string(i));
  EXPECT_TRUE(wait_until(
      [&] {
        for (auto& n : nodes) {
          if (n->sink().adelivered().size() != 4) return false;
        }
        return true;
      },
      std::chrono::milliseconds(30000)))
      << "sequencer abcast did not converge under loss";
  for (auto& n : nodes) n->stop_timers();
}

}  // namespace
}  // namespace samoa::gc
