// Replay fidelity of the schedule-exploration harness — the property the
// whole tentpole rests on: a (workload seed, decision trace) pair
// reproduces a run bit-for-bit. Covers the ScheduleTrace wire format, the
// strategies' mechanics (exhaustive DFS, replay divergence detection), the
// delta-debugging shrinker against a synthetic oracle, end-to-end replay
// across every controller policy, and the VirtualClock WakePolicy seam
// ('c' decisions).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "explore/runner.hpp"
#include "explore/shrink.hpp"
#include "explore/strategy.hpp"
#include "explore/trace.hpp"
#include "test_support.hpp"
#include "time/clock.hpp"

namespace samoa::explore {
namespace {

// --- trace wire format ---------------------------------------------------

TEST(ScheduleTrace, EncodeDecodeRoundtrip) {
  ScheduleTrace t;
  t.record('s', 2, 4);
  t.record('s', 0, 3);
  t.record('c', 1, 2);
  EXPECT_EQ(t.encode(), "s2/4.s0/3.c1/2");
  EXPECT_EQ(ScheduleTrace::decode(t.encode()), t);
  EXPECT_TRUE(ScheduleTrace::decode("").empty());
}

TEST(ScheduleTrace, DecodeRejectsMalformedInput) {
  EXPECT_THROW(ScheduleTrace::decode("x1/2"), std::invalid_argument);   // unknown kind
  EXPECT_THROW(ScheduleTrace::decode("s3/2"), std::invalid_argument);   // chosen >= ncand
  EXPECT_THROW(ScheduleTrace::decode("s0/1"), std::invalid_argument);   // not a decision
  EXPECT_THROW(ScheduleTrace::decode("s1"), std::invalid_argument);     // no count
  EXPECT_THROW(ScheduleTrace::decode("gibberish"), std::invalid_argument);
}

// --- strategy mechanics --------------------------------------------------

TEST(ExhaustiveStrategy, EnumeratesEveryPathExactlyOnce) {
  // Synthetic schedule space: every run hits 3 binary decision points.
  ExhaustiveStrategy strat(/*max_depth=*/8);
  std::set<std::string> seen;
  const std::vector<std::uint64_t> keys{1, 2};
  for (int guard = 0; guard < 100; ++guard) {
    ScheduleTrace executed;
    for (int i = 0; i < 3; ++i) {
      const std::size_t pick = strat.choose('s', keys);
      executed.record('s', static_cast<std::uint32_t>(pick), 2);
    }
    EXPECT_TRUE(seen.insert(executed.encode()).second) << "path repeated: " << executed.encode();
    if (!strat.advance(executed)) break;
  }
  EXPECT_EQ(seen.size(), 8u);  // 2^3 distinct paths, then exhaustion
}

TEST(ExhaustiveStrategy, DepthBoundLimitsTheSpace) {
  ExhaustiveStrategy strat(/*max_depth=*/2);
  std::set<std::string> seen;
  const std::vector<std::uint64_t> keys{1, 2};
  for (int guard = 0; guard < 100; ++guard) {
    ScheduleTrace executed;
    for (int i = 0; i < 3; ++i) {
      executed.record('s', static_cast<std::uint32_t>(strat.choose('s', keys)), 2);
    }
    seen.insert(executed.encode());
    if (!strat.advance(executed)) break;
  }
  EXPECT_EQ(seen.size(), 4u);  // only the first two decisions vary
}

TEST(ReplayStrategy, FlagsDivergenceOnCandidateCountMismatch) {
  ScheduleTrace t;
  t.record('s', 1, 3);
  ReplayStrategy strat(t);
  EXPECT_EQ(strat.choose('s', {1, 2}), 1u);  // ncand 2 != recorded 3
  EXPECT_TRUE(strat.diverged());
}

TEST(ReplayStrategy, PastEndFallsBackToZeroWithoutDiverging) {
  ScheduleTrace t;
  t.record('s', 1, 2);
  ReplayStrategy strat(t);
  EXPECT_EQ(strat.choose('s', {1, 2}), 1u);
  EXPECT_EQ(strat.choose('s', {1, 2, 3}), 0u);  // past the trace
  EXPECT_FALSE(strat.diverged());
}

// --- shrinker against a synthetic oracle ---------------------------------

TEST(Shrink, ReducesToTheTwoLoadBearingDecisions) {
  // Violation iff decision 3 picked candidate 2 AND decision 9 picked 1;
  // runs always execute 12 ternary decisions.
  auto run = [](const ScheduleTrace& forced) {
    ScheduleTrace executed;
    for (std::size_t i = 0; i < 12; ++i) {
      std::uint32_t pick = i < forced.size() ? forced.decisions()[i].chosen : 0;
      executed.record('s', std::min(pick, 2u), 3);
    }
    const auto& ds = executed.decisions();
    return ShrinkOutcome{ds[3].chosen == 2 && ds[9].chosen == 1, executed};
  };

  ScheduleTrace noisy;  // the load-bearing picks buried in junk
  for (std::size_t i = 0; i < 12; ++i) {
    noisy.record('s', i == 3 ? 2u : (i == 9 ? 1u : static_cast<std::uint32_t>((i * 7) % 3)), 3);
  }
  ASSERT_TRUE(run(noisy).violated);

  ShrinkStats stats;
  const ScheduleTrace shrunk = shrink_trace(noisy, run, /*max_runs=*/200, &stats);
  ASSERT_TRUE(run(shrunk).violated);
  ASSERT_EQ(shrunk.size(), 10u);  // trailing zeros dropped past decision 9
  for (std::size_t i = 0; i < shrunk.size(); ++i) {
    const std::uint32_t expect = i == 3 ? 2u : (i == 9 ? 1u : 0u);
    EXPECT_EQ(shrunk.decisions()[i].chosen, expect) << "decision " << i;
  }
  EXPECT_LE(stats.final_size, stats.original_size);
  EXPECT_GT(stats.runs, 0u);
}

// --- end-to-end replay fidelity ------------------------------------------

/// Raw MicroprotocolId/HandlerId values are process-global allocations and
/// differ between runs; canonical_log remaps them so equality means "same
/// schedule, bit for bit".
void expect_same_events(const std::vector<TraceEvent>& a, const std::vector<TraceEvent>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(canonical_log(a), canonical_log(b));
}

CellOptions small_cell(CCPolicy policy) {
  CellOptions o;
  o.policy = policy;
  o.seed = samoa::testing::test_seed(7);
  o.comps = 3;
  o.mps = 2;
  o.calls = 2;
  return o;
}

TEST(ExploreReplay, EveryPolicyReplaysBitForBit) {
  for (CCPolicy policy :
       {CCPolicy::kSerial, CCPolicy::kUnsync, CCPolicy::kVCABasic, CCPolicy::kVCABound,
        CCPolicy::kVCARoute, CCPolicy::kVCARW, CCPolicy::kTSO}) {
    const CellOptions opts = small_cell(policy);
    SCOPED_TRACE(std::string(to_string(policy)) + " seed=" + std::to_string(opts.seed));

    RandomWalkStrategy walk(opts.seed);
    const RunResult original = run_schedule(opts, walk);
    ASSERT_FALSE(original.events.empty());

    const RunResult replayed = replay_schedule(opts, original.executed);
    EXPECT_FALSE(replayed.replay_diverged)
        << "trace no longer matches the workload: " << original.executed.encode();
    EXPECT_EQ(replayed.executed, original.executed);
    EXPECT_EQ(replayed.violated, original.violated);
    expect_same_events(original.events, replayed.events);
  }
}

TEST(ExploreReplay, ExecutorDispatchExploresAndReplaysIdentically) {
  // Under a step hook the runtime must resolve any requested dispatch
  // substrate to the elastic pool: the token barrier requires every
  // submitted task to be independently startable, which single-consumer
  // executor shards cannot provide. Pin that resolution, and with it that
  // a kExecutor cell explores the same schedule space and replays
  // bit-for-bit against a kElasticPool cell.
  for (CCPolicy policy : {CCPolicy::kVCABasic, CCPolicy::kUnsync}) {
    CellOptions pool_opts = small_cell(policy);
    pool_opts.dispatch_impl = DispatchImpl::kElasticPool;
    CellOptions exec_opts = small_cell(policy);
    exec_opts.dispatch_impl = DispatchImpl::kExecutor;
    SCOPED_TRACE(std::string(to_string(policy)) + " seed=" + std::to_string(exec_opts.seed));

    RandomWalkStrategy a(pool_opts.seed);
    RandomWalkStrategy b(exec_opts.seed);
    const RunResult pool_run = run_schedule(pool_opts, a);
    const RunResult exec_run = run_schedule(exec_opts, b);
    ASSERT_FALSE(exec_run.events.empty());
    EXPECT_EQ(exec_run.executed, pool_run.executed);
    expect_same_events(pool_run.events, exec_run.events);

    const RunResult replayed = replay_schedule(exec_opts, exec_run.executed);
    EXPECT_FALSE(replayed.replay_diverged);
    EXPECT_EQ(replayed.executed, exec_run.executed);
    expect_same_events(exec_run.events, replayed.events);
  }
}

TEST(ExploreReplay, SameStrategySeedGivesIdenticalRuns) {
  const CellOptions opts = small_cell(CCPolicy::kVCABasic);
  RandomWalkStrategy a(opts.seed);
  RandomWalkStrategy b(opts.seed);
  const RunResult r1 = run_schedule(opts, a);
  const RunResult r2 = run_schedule(opts, b);
  EXPECT_EQ(r1.executed, r2.executed);
  expect_same_events(r1.events, r2.events);
}

TEST(ExploreReplay, FirstStrategyRunsSeriallyAndClean) {
  // Index-0 everywhere = the submitting order, run to completion one
  // computation at a time: even kUnsync cannot overlap anything.
  CellOptions opts = small_cell(CCPolicy::kUnsync);
  FirstStrategy first;
  const RunResult r = run_schedule(opts, first);
  EXPECT_FALSE(r.violated) << r.violation_summary;
  EXPECT_TRUE(r.executed.empty() ||
              std::all_of(r.executed.decisions().begin(), r.executed.decisions().end(),
                          [](const Decision& d) { return d.chosen == 0; }));
}

// --- VirtualClock WakePolicy seam ('c' decisions) -------------------------

/// Three worker threads, each sleeping through a fixed ladder of virtual
/// deadlines; returns the order in which wakes were granted.
std::vector<int> run_clock_scenario(time::VirtualClock& clock) {
  std::mutex log_mu;
  std::vector<int> order;

  std::mutex ready_mu;
  std::condition_variable ready_cv;
  int ready = 0;

  const std::vector<std::vector<int>> ladders = {{5, 12, 9}, {7, 3, 11}, {4, 8, 6}};
  std::vector<std::thread> threads;
  {
    // Pin virtual time until every worker registered and reached its first
    // park, so the first decision point always sees all three candidates.
    time::Pin setup(clock);
    for (int idx = 0; idx < 3; ++idx) {
      threads.emplace_back([&, idx] {
        time::WorkerHandle worker(clock);
        std::mutex mu;
        std::condition_variable cv;
        {
          std::lock_guard g(ready_mu);
          ++ready;
        }
        ready_cv.notify_one();
        for (int ms : ladders[static_cast<std::size_t>(idx)]) {
          const auto deadline = clock.now() + std::chrono::milliseconds(ms);
          std::unique_lock lock(mu);
          while (clock.now() < deadline) {
            clock.wait_until(worker.id(), lock, cv, deadline, [] { return false; });
          }
          lock.unlock();
          {
            std::lock_guard g(log_mu);
            order.push_back(idx);
          }
          lock.lock();
        }
      });
    }
    std::unique_lock lock(ready_mu);
    ready_cv.wait(lock, [&] { return ready == 3; });
  }
  for (auto& t : threads) t.join();
  return order;
}

TEST(ExploreReplay, ClockWakePolicyDecisionsReplay) {
  const std::uint64_t seed = samoa::testing::test_seed(11);

  ScheduleTrace recorded;
  std::vector<int> explored_order;
  {
    time::VirtualClock clock;
    RandomWalkStrategy walk(seed);
    ExploringWakePolicy policy(walk);
    clock.set_wake_policy(&policy);
    explored_order = run_clock_scenario(clock);
    recorded = policy.trace();
  }
  ASSERT_EQ(explored_order.size(), 9u);

  // Replay the 'c' decisions: identical wake order, no divergence.
  {
    time::VirtualClock clock;
    ReplayStrategy replay(recorded);
    ExploringWakePolicy policy(replay);
    clock.set_wake_policy(&policy);
    const std::vector<int> replayed_order = run_clock_scenario(clock);
    EXPECT_EQ(replayed_order, explored_order) << "trace: " << recorded.encode();
    EXPECT_FALSE(replay.diverged());
    EXPECT_EQ(policy.trace(), recorded);
  }

  // Without a policy the clock stays its deterministic min-deadline self.
  {
    time::VirtualClock a;
    time::VirtualClock b;
    EXPECT_EQ(run_clock_scenario(a), run_clock_scenario(b));
  }
}

}  // namespace
}  // namespace samoa::explore
