// Tests for VCAroute (paper Section 5.3): route validation, early release
// by reachability analysis, cycle fallback, and the active-at-issue rule
// for asynchronous callees.
#include <gtest/gtest.h>

#include <thread>

#include "test_support.hpp"

namespace samoa {
namespace {

using testing::BlockingMp;
using testing::ProbeMp;

RuntimeOptions route_opts(bool trace = false) {
  RuntimeOptions o;
  o.policy = CCPolicy::kVCARoute;
  o.record_trace = trace;
  return o;
}

struct ChainFixture {
  // a -> b -> c: a pipeline of three microprotocols.
  Stack stack;
  ProbeMp *a, *b, *c;
  EventType eva{"A"}, evb{"B"}, evc{"C"};

  class Link : public Microprotocol {
   public:
    Link(std::string name, EventType next) : Microprotocol(std::move(name)), next_(next) {
      handler = &register_handler("run", [this](Context& ctx, const Message& m) {
        calls.fetch_add(1);
        ctx.trigger(next_, m);
      });
    }
    const Handler* handler;
    std::atomic<int> calls{0};
   private:
    EventType next_;
  };

  Link *la, *lb;

  ChainFixture() {
    la = &stack.emplace<Link>("a", evb);
    lb = &stack.emplace<Link>("b", evc);
    c = &stack.emplace<ProbeMp>("c");
    a = nullptr;
    b = nullptr;
    stack.bind(eva, *la->handler);
    stack.bind(evb, *lb->handler);
    stack.bind(evc, *c->handler);
  }

  Isolation chain_route() {
    return Isolation::route(RouteSpec{}
                                .entry(*la->handler)
                                .edge(*la->handler, *lb->handler)
                                .edge(*lb->handler, *c->handler));
  }
};

TEST(VCARoute, RequiresRouteDeclaration) {
  Stack stack;
  auto& mp = stack.emplace<ProbeMp>("p");
  Runtime rt(stack, route_opts());
  EXPECT_THROW(rt.spawn_isolated(Isolation::basic({&mp}), [](Context&) {}), ConfigError);
}

TEST(VCARoute, DeclaredChainExecutes) {
  ChainFixture f;
  Runtime rt(f.stack, route_opts());
  rt.spawn_isolated(f.chain_route(), [&](Context& ctx) { ctx.trigger(f.eva); }).wait();
  EXPECT_EQ(f.la->calls.load(), 1);
  EXPECT_EQ(f.lb->calls.load(), 1);
  EXPECT_EQ(f.c->calls.load(), 1);
}

TEST(VCARoute, UndeclaredHandlerThrows) {
  ChainFixture f;
  auto& rogue = f.stack.emplace<ProbeMp>("rogue");
  EventType evr("R");
  f.stack.bind(evr, *rogue.handler);
  Runtime rt(f.stack, route_opts());
  auto h = rt.spawn_isolated(f.chain_route(), [&](Context& ctx) { ctx.trigger(evr); });
  EXPECT_THROW(h.wait(), IsolationError);
}

TEST(VCARoute, NonEntryRootCallThrows) {
  ChainFixture f;
  Runtime rt(f.stack, route_opts());
  // Root calls b directly, but only a is an entry.
  auto h = rt.spawn_isolated(f.chain_route(), [&](Context& ctx) { ctx.trigger(f.evb); });
  EXPECT_THROW(h.wait(), IsolationError);
}

TEST(VCARoute, MissingEdgeThrows) {
  ChainFixture f;
  // Declare only a -> b; the b -> c call must fail.
  auto iso = Isolation::route(
      RouteSpec{}.entry(*f.la->handler).edge(*f.la->handler, *f.lb->handler));
  Runtime rt(f.stack, route_opts());
  auto h = rt.spawn_isolated(iso, [&](Context& ctx) { ctx.trigger(f.eva); });
  EXPECT_THROW(h.wait(), IsolationError);
  EXPECT_EQ(f.c->calls.load(), 0);
}

TEST(VCARoute, TransitiveRouteAllowsIndirectCall) {
  // Rule 2 accepts a *path*, not only a direct edge: a may call c through
  // the declared a -> b -> c chain even if b's body skips straight to c.
  Stack stack;
  EventType eva("A"), evc("C");
  class Skipper : public Microprotocol {
   public:
    Skipper(EventType evc) : Microprotocol("skipper"), evc_(evc) {
      handler = &register_handler("run",
                                  [this](Context& ctx, const Message&) { ctx.trigger(evc_); });
    }
    const Handler* handler;
   private:
    EventType evc_;
  };
  auto& a = stack.emplace<Skipper>(evc);
  auto& b = stack.emplace<ProbeMp>("b");
  auto& c = stack.emplace<ProbeMp>("c");
  stack.bind(eva, *a.handler);
  stack.bind(evc, *c.handler);
  auto iso = Isolation::route(RouteSpec{}
                                  .entry(*a.handler)
                                  .edge(*a.handler, *b.handler)
                                  .edge(*b.handler, *c.handler));
  Runtime rt(stack, route_opts());
  rt.spawn_isolated(iso, [&](Context& ctx) { ctx.trigger(eva); }).wait();
  EXPECT_EQ(c.calls.load(), 1);
}

TEST(VCARoute, EarlyReleaseOfCompletedPrefix) {
  // Pipeline a -> b(blocking): after a's handler completed and is no
  // longer reachable from active handlers, a's microprotocol must be
  // released to the next computation while k1 is still parked in b.
  Stack stack;
  EventType eva("A"), evb("B");
  class Head : public Microprotocol {
   public:
    Head(EventType next) : Microprotocol("head"), next_(next) {
      handler = &register_handler("run", [this](Context& ctx, const Message&) {
        calls.fetch_add(1);
        ctx.trigger(next_);
      });
    }
    const Handler* handler;
    std::atomic<int> calls{0};
   private:
    EventType next_;
  };
  auto& head = stack.emplace<Head>(evb);
  auto& tail = stack.emplace<BlockingMp>("tail");
  stack.bind(eva, *head.handler);
  stack.bind(evb, *tail.handler);
  Runtime rt(stack, route_opts());

  auto route1 = Isolation::route(
      RouteSpec{}.entry(*head.handler).edge(*head.handler, *tail.handler));
  auto k1 = rt.spawn_isolated(route1, [&](Context& ctx) { ctx.trigger(eva); });
  tail.started.wait();
  // head's handler has completed (it is the caller of the blocking tail)?
  // No: head is *still on the stack* of the synchronous call chain, hence
  // still active -> head must NOT be released yet. Verify k2 blocks.
  OneShotEvent k2_done;
  auto route2 = Isolation::route(RouteSpec{}.entry(*head.handler));
  // k2 calls only head; bind a separate event for direct head calls.
  auto k2 = rt.spawn_isolated(route2, [&](Context& ctx) {
    ctx.trigger(eva);  // wait: eva triggers head which triggers evb -> undeclared!
    k2_done.set();
  });
  EXPECT_FALSE(k2_done.wait_for(std::chrono::milliseconds(50)));
  tail.release.set();
  k1.wait();
  // k2's head call eventually runs, but its nested evb trigger violates
  // k2's route (head has no outgoing edge there).
  EXPECT_THROW(k2.wait(), IsolationError);
}

TEST(VCARoute, AsyncStageReleasesFinishedUpstream) {
  // Pipeline with an asynchronous hop: head completes, then the tail runs
  // asynchronously. Once head is inactive and unreachable, k2 can use head
  // while k1's tail still blocks.
  Stack stack;
  EventType eva("A"), evb("B");
  class AsyncHead : public Microprotocol {
   public:
    AsyncHead(EventType next) : Microprotocol("ahead"), next_(next) {
      handler = &register_handler("run", [this](Context& ctx, const Message&) {
        calls.fetch_add(1);
        ctx.async_trigger(next_);
      });
    }
    const Handler* handler;
    std::atomic<int> calls{0};
   private:
    EventType next_;
  };
  auto& head = stack.emplace<AsyncHead>(evb);
  auto& tail = stack.emplace<BlockingMp>("tail");
  stack.bind(eva, *head.handler);
  stack.bind(evb, *tail.handler);
  Runtime rt(stack, route_opts());

  auto route1 = Isolation::route(
      RouteSpec{}.entry(*head.handler).edge(*head.handler, *tail.handler));
  auto k1 = rt.spawn_isolated(route1, [&](Context& ctx) { ctx.trigger(eva); });
  tail.started.wait();  // head's handler completed; only tail is active

  auto route2 = Isolation::route(
      RouteSpec{}.entry(*head.handler).edge(*head.handler, *tail.handler));
  // k2 uses head only (over-declaring tail is allowed).
  OneShotEvent head_done;
  auto k2 = rt.spawn_isolated(route2, [&](Context& ctx) {
    ctx.trigger(eva);  // head runs, issues async tail event
    head_done.set();
  });
  // k2's head call must be admitted while k1's tail is still blocked:
  // head was released early by Rule 4(b).
  EXPECT_TRUE(head_done.wait_for(std::chrono::milliseconds(5000)))
      << "head not released early despite being unreachable";
  // k2's own tail event now waits behind k1's tail; release both.
  tail.release.set();
  k1.wait();
  k2.wait();
  EXPECT_EQ(head.calls.load(), 2);
  EXPECT_EQ(tail.calls.load(), 2);
}

TEST(VCARoute, ActiveAtIssueProtectsQueuedAsyncCallee) {
  // The caller issues an async event to the tail and returns. If the tail
  // were only marked active when it *starts*, the release scan running at
  // the caller's completion could release the tail's microprotocol and let
  // another computation slip in before the queued event — violating
  // isolation. The trace checker would catch the interleave.
  Stack stack;
  EventType eva("A"), evb("B");
  class AsyncHead : public Microprotocol {
   public:
    AsyncHead(EventType next) : Microprotocol("ahead2"), next_(next) {
      handler = &register_handler("run", [this](Context& ctx, const Message&) {
        ctx.async_trigger(next_);
      });
    }
    const Handler* handler;
   private:
    EventType next_;
  };
  auto& head = stack.emplace<AsyncHead>(evb);
  auto& tail = stack.emplace<ProbeMp>("tail2", std::chrono::microseconds(300));
  stack.bind(eva, *head.handler);
  stack.bind(evb, *tail.handler);
  Runtime rt(stack, route_opts(/*trace=*/true));

  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 30; ++i) {
    auto iso = Isolation::route(
        RouteSpec{}.entry(*head.handler).edge(*head.handler, *tail.handler));
    hs.push_back(rt.spawn_isolated(iso, [&](Context& ctx) { ctx.trigger(eva); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(tail.max_in_flight.load(), 1);
  testing::expect_isolated(rt);
}

TEST(VCARoute, CycleFallsBackToCompletionRelease) {
  // A cyclic route (ping <-> pong) keeps both reachable while either is
  // active, so neither is released before completion, but the computation
  // still terminates and releases everything at Step 3.
  Stack stack;
  EventType evp("Ping"), evq("Pong");
  class Ping : public Microprotocol {
   public:
    Ping(std::string n, EventType next) : Microprotocol(std::move(n)), next_(next) {
      handler = &register_handler("run", [this](Context& ctx, const Message& m) {
        const int hops = m.as<int>();
        calls.fetch_add(1);
        if (hops > 0) ctx.trigger(next_, Message::of(hops - 1));
      });
    }
    const Handler* handler;
    std::atomic<int> calls{0};
   private:
    EventType next_;
  };
  auto& ping = stack.emplace<Ping>("ping", evq);
  auto& pong = stack.emplace<Ping>("pong", evp);
  stack.bind(evp, *ping.handler);
  stack.bind(evq, *pong.handler);
  Runtime rt(stack, route_opts(/*trace=*/true));

  auto make_iso = [&] {
    return Isolation::route(RouteSpec{}
                                .entry(*ping.handler)
                                .edge(*ping.handler, *pong.handler)
                                .edge(*pong.handler, *ping.handler));
  };
  auto k1 = rt.spawn_isolated(make_iso(),
                              [&](Context& ctx) { ctx.trigger(evp, Message::of(5)); });
  auto k2 = rt.spawn_isolated(make_iso(),
                              [&](Context& ctx) { ctx.trigger(evp, Message::of(4)); });
  k1.wait();
  k2.wait();
  rt.drain();
  EXPECT_EQ(ping.calls.load() + pong.calls.load(), 6 + 5);
  testing::expect_isolated(rt);
}

TEST(VCARoute, StressPipelineIsIsolated) {
  ChainFixture f;
  Runtime rt(f.stack, route_opts(/*trace=*/true));
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < 40; ++i) {
    hs.push_back(
        rt.spawn_isolated(f.chain_route(), [&](Context& ctx) { ctx.trigger(f.eva); }));
  }
  for (auto& h : hs) h.wait();
  rt.drain();
  EXPECT_EQ(f.c->calls.load(), 40);
  testing::expect_isolated(rt);
}

}  // namespace
}  // namespace samoa
