// Component-level tests of the group-communication microprotocols on
// small clusters: RelComm dedup/acks/retransmit give-up, RelCast
// rebroadcast semantics, ABcast batching, consensus under coordinator
// crash, and Outbox ordering.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "gc/group_node.hpp"
#include "util/rng.hpp"

namespace samoa::gc {
namespace {

using net::LinkOptions;
using net::SimNetwork;

template <typename Pred>
bool wait_until(Pred pred, std::chrono::milliseconds timeout = std::chrono::milliseconds(20000)) {
  const auto deadline = Clock::now() + timeout;
  while (Clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

struct Pair {
  SimNetwork net;
  std::vector<std::unique_ptr<GroupNode>> nodes;

  explicit Pair(GcOptions opts = {},
                LinkOptions links = LinkOptions{.base_latency = std::chrono::microseconds(80)},
                int n = 2)
      : net(links, 5) {
    for (int i = 0; i < n; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
    std::vector<SiteId> members;
    for (auto& node : nodes) members.push_back(node->id());
    for (auto& node : nodes) node->start(View(1, members));
  }
};

TEST(RelCommComponent, DuplicateDataSuppressed) {
  // With a lossy ack path the sender retransmits; the receiver must
  // deliver each payload exactly once.
  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1200);
  Pair p(opts);
  // Drop most acks from node1 back to node0 to force duplicates.
  p.net.set_link(p.nodes[1]->id(), p.nodes[0]->id(),
                 LinkOptions{.base_latency = std::chrono::microseconds(80),
                             .drop_probability = 0.7});
  for (int i = 0; i < 5; ++i) p.nodes[0]->rbcast("dup" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] { return p.nodes[1]->sink().rdelivered().size() >= 5; }));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_EQ(p.nodes[1]->sink().rdelivered().size(), 5u) << "duplicate delivery";
  EXPECT_GT(p.nodes[0]->rel_comm().retransmissions(), 0u);
}

TEST(RelCommComponent, AcksClearRetransmitBuffer) {
  Pair p;
  p.nodes[0]->rbcast("acked");
  ASSERT_TRUE(wait_until([&] { return p.nodes[1]->sink().rdelivered().size() == 1; }));
  EXPECT_TRUE(wait_until([&] { return p.nodes[0]->rel_comm().unacked_in_flight() == 0; }))
      << "acked messages still buffered";
}

TEST(RelCommComponent, EvictedTargetDroppedFromBuffer) {
  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1500);
  Pair p(opts, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  // Partition node2 so sends to it stay unacked, then evict it.
  p.net.set_partitioned(p.nodes[0]->id(), p.nodes[2]->id(), true);
  p.nodes[0]->rbcast("to-all");
  ASSERT_TRUE(wait_until([&] { return p.nodes[0]->rel_comm().unacked_in_flight() > 0; }));
  p.nodes[0]->request_leave(p.nodes[2]->id());
  EXPECT_TRUE(wait_until([&] { return p.nodes[0]->rel_comm().unacked_in_flight() == 0; }))
      << "retransmit buffer kept entries for an evicted site";
}

TEST(RelCastComponent, EveryMemberRebroadcastsOnce) {
  Pair p(GcOptions{}, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  p.nodes[0]->rbcast("fanout");
  ASSERT_TRUE(wait_until([&] {
    for (auto& n : p.nodes) {
      if (n->sink().rdelivered().size() != 1) return false;
    }
    return true;
  }));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // bcast on the origin + one rebroadcast per member on first receipt.
  std::uint64_t broadcasts = 0;
  for (auto& n : p.nodes) broadcasts += n->rel_cast().broadcasts();
  EXPECT_EQ(broadcasts, 4u);
}

TEST(ABcastComponent, BatchesRespectMsgIdOrder) {
  // Burst from one site: decided batches are sorted by MsgId, so the
  // delivery order must equal submission order for a single origin.
  Pair p(GcOptions{}, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  for (int i = 0; i < 8; ++i) p.nodes[0]->abcast("b" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] { return p.nodes[2]->sink().adelivered().size() == 8; }));
  const auto got = p.nodes[2]->sink().adelivered();
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(got[i].data, "b" + std::to_string(i));
  }
}

TEST(ABcastComponent, InstanceCountBounded) {
  // Batching: a burst must not burn one consensus instance per message.
  // Calm timers: under sanitizer slowdowns the default 2ms periodic load
  // starves the burst and the test measures the scheduler instead.
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(20'000);
  opts.fd_timeout = std::chrono::microseconds(200'000);
  opts.cs_retry_interval = std::chrono::microseconds(50'000);
  opts.cs_retry_timeout = std::chrono::microseconds(100'000);
  Pair p(opts, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  for (int i = 0; i < 12; ++i) p.nodes[0]->abcast("x" + std::to_string(i));
  ASSERT_TRUE(wait_until([&] { return p.nodes[0]->sink().adelivered().size() == 12; }));
  EXPECT_LT(p.nodes[0]->ab().next_instance(), 12u)
      << "no batching happened: one instance per message";
}

TEST(ConsensusComponent, CoordinatorCrashRotatesViaSuspicion) {
  // Instance 1's coordinator is members[1]; crash it before proposing.
  // The failure detector must suspect it and the next coordinator
  // (members[2]) finishes the instance with the majority {0, 2}.
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(1000);
  opts.fd_timeout = std::chrono::microseconds(6000);
  opts.cs_retry_interval = std::chrono::microseconds(4000);
  opts.cs_retry_timeout = std::chrono::microseconds(6000);
  Pair p(opts, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));  // heartbeats flowing
  p.nodes[1]->crash();
  p.nodes[0]->abcast("despite-crash");
  EXPECT_TRUE(wait_until(
      [&] {
        return p.nodes[0]->sink().adelivered().size() == 1 &&
               p.nodes[2]->sink().adelivered().size() == 1;
      },
      std::chrono::milliseconds(30000)))
      << "consensus did not rotate past the crashed coordinator";
  // A pre-crash heartbeat delivered late can revoke suspicion for one
  // check period; the site stays dead, so suspicion must re-form.
  EXPECT_TRUE(wait_until([&] { return p.nodes[0]->fd().is_suspected(p.nodes[1]->id()); }));
}

TEST(ConsensusComponent, RetryRecoversFromLostRounds) {
  // Very lossy links: rounds get lost; the retry timer must eventually
  // push an instance through (safety is unconditional, liveness via
  // retries).
  GcOptions opts;
  opts.retransmit_interval = std::chrono::microseconds(1000);
  opts.retransmit_timeout = std::chrono::microseconds(1500);
  opts.cs_retry_interval = std::chrono::microseconds(3000);
  opts.cs_retry_timeout = std::chrono::microseconds(5000);
  Pair p(opts,
         LinkOptions{.base_latency = std::chrono::microseconds(80), .drop_probability = 0.25},
         3);
  p.nodes[0]->abcast("lossy");
  EXPECT_TRUE(wait_until(
      [&] { return p.nodes[2]->sink().adelivered().size() == 1; },
      std::chrono::milliseconds(40000)))
      << "consensus never recovered under 25% loss";
}

TEST(ConsensusComponent, DecisionsIdenticalAcrossSites) {
  Pair p(GcOptions{}, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  Rng rng(3);
  for (int i = 0; i < 6; ++i) {
    p.nodes[rng.next_below(3)]->abcast("d" + std::to_string(i));
  }
  ASSERT_TRUE(wait_until([&] {
    for (auto& n : p.nodes) {
      if (n->sink().adelivered().size() != 6) return false;
    }
    return true;
  }));
  const auto ref = p.nodes[0]->sink().adelivered();
  for (auto& n : p.nodes) {
    const auto got = n->sink().adelivered();
    ASSERT_EQ(got.size(), ref.size());
    for (std::size_t i = 0; i < got.size(); ++i) EXPECT_EQ(got[i].id, ref[i].id);
  }
}

TEST(FailureDetectorComponent, ViewChangePrunesEvictedBookkeeping) {
  // Regression: the viewChange handler used to leave last_heard_ and
  // suspected_ entries behind for evicted peers, so the detector kept
  // "suspecting" non-members forever (and kept their timestamps alive
  // across a later re-join, poisoning the fresh incarnation's timeout).
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(1000);
  opts.fd_timeout = std::chrono::microseconds(6000);
  Pair p(opts, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 3);
  const SiteId victim = p.nodes[2]->id();
  ASSERT_TRUE(p.nodes[0]->fd().tracks(victim));
  p.nodes[2]->crash();
  ASSERT_TRUE(wait_until([&] { return p.nodes[0]->fd().is_suspected(victim); }));
  p.nodes[0]->request_leave(victim);
  EXPECT_TRUE(wait_until([&] { return !p.nodes[0]->fd().tracks(victim); }))
      << "last_heard_ entry survived the eviction";
  EXPECT_FALSE(p.nodes[0]->fd().is_suspected(victim))
      << "suspected_ entry survived the eviction";
}

TEST(FailureDetectorComponent, ViewChangeSeedsJoinerTimestamp) {
  // Regression: a fresh joiner had no last_heard_ seed, so the detector
  // skipped it until its first heartbeat arrived — a newcomer that died
  // immediately after joining was never suspected. The viewChange handler
  // must seed every new member at "now".
  GcOptions opts;
  opts.heartbeat_interval = std::chrono::microseconds(1000);
  opts.fd_timeout = std::chrono::microseconds(8000);
  Pair p(opts, LinkOptions{.base_latency = std::chrono::microseconds(80)}, 4);
  auto joiner = std::make_unique<GroupNode>(p.net, opts);
  joiner->start(View(1, {joiner->id()}));
  p.nodes[0]->request_join(joiner->id());
  ASSERT_TRUE(wait_until([&] { return p.nodes[0]->fd().tracks(joiner->id()); }))
      << "joiner never seeded into last_heard_";
  // Kill the newcomer right away: the seed (not a received heartbeat) must
  // be what starts its timeout clock.
  joiner->crash();
  EXPECT_TRUE(wait_until([&] { return p.nodes[0]->fd().is_suspected(joiner->id()); }))
      << "joiner crash after join was never detected";
  joiner->stop_timers();
  joiner->drain();
}

TEST(Outbox, FlushesInQueueingOrder) {
  Stack stack;
  std::vector<std::string> log;
  class Rec : public Microprotocol {
   public:
    Rec(std::string n, std::vector<std::string>& log) : Microprotocol(n) {
      h = &register_handler("h", [this, &log](Context&, const Message& m) {
        log.push_back(name() + ":" + m.as<std::string>());
      });
    }
    const Handler* h;
  };
  auto& a = stack.emplace<Rec>("a", log);
  auto& b = stack.emplace<Rec>("b", log);
  EventType eva("A"), evb("B");
  stack.bind(eva, *a.h);
  stack.bind(evb, *b.h);
  Runtime rt(stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  rt.spawn_isolated(Isolation::basic({&a, &b}), [&](Context& ctx) {
      Outbox out;
      out.trigger(evb, Message::of(std::string("1")));
      out.trigger(eva, Message::of(std::string("2")));
      out.trigger_all(evb, Message::of(std::string("3")));
      out.flush(ctx);
      out.flush(ctx);  // second flush is a no-op (entries cleared)
    }).wait();
  EXPECT_EQ(log, (std::vector<std::string>{"b:1", "a:2", "b:3"}));
}

}  // namespace
}  // namespace samoa::gc
