# Empty dependencies file for bench_bound.
# This may be replaced when dependencies are built.
