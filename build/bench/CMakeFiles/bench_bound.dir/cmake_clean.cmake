file(REMOVE_RECURSE
  "CMakeFiles/bench_bound.dir/bench_bound.cpp.o"
  "CMakeFiles/bench_bound.dir/bench_bound.cpp.o.d"
  "bench_bound"
  "bench_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
