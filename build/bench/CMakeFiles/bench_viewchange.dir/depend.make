# Empty dependencies file for bench_viewchange.
# This may be replaced when dependencies are built.
