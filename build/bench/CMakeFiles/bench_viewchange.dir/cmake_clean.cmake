file(REMOVE_RECURSE
  "CMakeFiles/bench_viewchange.dir/bench_viewchange.cpp.o"
  "CMakeFiles/bench_viewchange.dir/bench_viewchange.cpp.o.d"
  "bench_viewchange"
  "bench_viewchange.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_viewchange.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
