# Empty compiler generated dependencies file for bench_cc_overhead.
# This may be replaced when dependencies are built.
