file(REMOVE_RECURSE
  "CMakeFiles/bench_cc_overhead.dir/bench_cc_overhead.cpp.o"
  "CMakeFiles/bench_cc_overhead.dir/bench_cc_overhead.cpp.o.d"
  "bench_cc_overhead"
  "bench_cc_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cc_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
