# Empty compiler generated dependencies file for bench_rw.
# This may be replaced when dependencies are built.
