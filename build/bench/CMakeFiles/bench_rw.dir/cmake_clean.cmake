file(REMOVE_RECURSE
  "CMakeFiles/bench_rw.dir/bench_rw.cpp.o"
  "CMakeFiles/bench_rw.dir/bench_rw.cpp.o.d"
  "bench_rw"
  "bench_rw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
