file(REMOVE_RECURSE
  "CMakeFiles/bench_route.dir/bench_route.cpp.o"
  "CMakeFiles/bench_route.dir/bench_route.cpp.o.d"
  "bench_route"
  "bench_route.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_route.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
