# Empty compiler generated dependencies file for bench_route.
# This may be replaced when dependencies are built.
