# Empty dependencies file for causal_chat.
# This may be replaced when dependencies are built.
