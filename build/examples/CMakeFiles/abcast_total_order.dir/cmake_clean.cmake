file(REMOVE_RECURSE
  "CMakeFiles/abcast_total_order.dir/abcast_total_order.cpp.o"
  "CMakeFiles/abcast_total_order.dir/abcast_total_order.cpp.o.d"
  "abcast_total_order"
  "abcast_total_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abcast_total_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
