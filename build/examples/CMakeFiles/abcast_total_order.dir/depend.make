# Empty dependencies file for abcast_total_order.
# This may be replaced when dependencies are built.
