# Empty dependencies file for group_broadcast.
# This may be replaced when dependencies are built.
