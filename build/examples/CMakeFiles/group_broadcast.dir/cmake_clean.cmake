file(REMOVE_RECURSE
  "CMakeFiles/group_broadcast.dir/group_broadcast.cpp.o"
  "CMakeFiles/group_broadcast.dir/group_broadcast.cpp.o.d"
  "group_broadcast"
  "group_broadcast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/group_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
