# Empty dependencies file for fig1_pqrs.
# This may be replaced when dependencies are built.
