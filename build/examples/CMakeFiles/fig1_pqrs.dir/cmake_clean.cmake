file(REMOVE_RECURSE
  "CMakeFiles/fig1_pqrs.dir/fig1_pqrs.cpp.o"
  "CMakeFiles/fig1_pqrs.dir/fig1_pqrs.cpp.o.d"
  "fig1_pqrs"
  "fig1_pqrs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_pqrs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
