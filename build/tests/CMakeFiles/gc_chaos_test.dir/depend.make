# Empty dependencies file for gc_chaos_test.
# This may be replaced when dependencies are built.
