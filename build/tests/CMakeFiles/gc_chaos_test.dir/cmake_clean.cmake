file(REMOVE_RECURSE
  "CMakeFiles/gc_chaos_test.dir/gc_chaos_test.cpp.o"
  "CMakeFiles/gc_chaos_test.dir/gc_chaos_test.cpp.o.d"
  "gc_chaos_test"
  "gc_chaos_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_chaos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
