# Empty dependencies file for causal_flow_test.
# This may be replaced when dependencies are built.
