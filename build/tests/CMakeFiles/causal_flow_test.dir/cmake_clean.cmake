file(REMOVE_RECURSE
  "CMakeFiles/causal_flow_test.dir/causal_flow_test.cpp.o"
  "CMakeFiles/causal_flow_test.dir/causal_flow_test.cpp.o.d"
  "causal_flow_test"
  "causal_flow_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/causal_flow_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
