file(REMOVE_RECURSE
  "CMakeFiles/gc_unit_test.dir/gc_unit_test.cpp.o"
  "CMakeFiles/gc_unit_test.dir/gc_unit_test.cpp.o.d"
  "gc_unit_test"
  "gc_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
