# Empty dependencies file for gc_unit_test.
# This may be replaced when dependencies are built.
