# Empty dependencies file for checker_rw_test.
# This may be replaced when dependencies are built.
