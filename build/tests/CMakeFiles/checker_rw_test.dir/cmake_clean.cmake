file(REMOVE_RECURSE
  "CMakeFiles/checker_rw_test.dir/checker_rw_test.cpp.o"
  "CMakeFiles/checker_rw_test.dir/checker_rw_test.cpp.o.d"
  "checker_rw_test"
  "checker_rw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checker_rw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
