# Empty dependencies file for cc_rw_test.
# This may be replaced when dependencies are built.
