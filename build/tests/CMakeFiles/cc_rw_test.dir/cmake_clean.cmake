file(REMOVE_RECURSE
  "CMakeFiles/cc_rw_test.dir/cc_rw_test.cpp.o"
  "CMakeFiles/cc_rw_test.dir/cc_rw_test.cpp.o.d"
  "cc_rw_test"
  "cc_rw_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_rw_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
