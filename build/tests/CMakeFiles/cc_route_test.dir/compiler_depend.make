# Empty compiler generated dependencies file for cc_route_test.
# This may be replaced when dependencies are built.
