file(REMOVE_RECURSE
  "CMakeFiles/cc_route_test.dir/cc_route_test.cpp.o"
  "CMakeFiles/cc_route_test.dir/cc_route_test.cpp.o.d"
  "cc_route_test"
  "cc_route_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_route_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
