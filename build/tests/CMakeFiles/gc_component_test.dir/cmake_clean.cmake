file(REMOVE_RECURSE
  "CMakeFiles/gc_component_test.dir/gc_component_test.cpp.o"
  "CMakeFiles/gc_component_test.dir/gc_component_test.cpp.o.d"
  "gc_component_test"
  "gc_component_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_component_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
