# Empty dependencies file for cc_serial_unsync_test.
# This may be replaced when dependencies are built.
