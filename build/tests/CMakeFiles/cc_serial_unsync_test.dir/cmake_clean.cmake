file(REMOVE_RECURSE
  "CMakeFiles/cc_serial_unsync_test.dir/cc_serial_unsync_test.cpp.o"
  "CMakeFiles/cc_serial_unsync_test.dir/cc_serial_unsync_test.cpp.o.d"
  "cc_serial_unsync_test"
  "cc_serial_unsync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_serial_unsync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
