file(REMOVE_RECURSE
  "CMakeFiles/cc_gate_test.dir/cc_gate_test.cpp.o"
  "CMakeFiles/cc_gate_test.dir/cc_gate_test.cpp.o.d"
  "cc_gate_test"
  "cc_gate_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
