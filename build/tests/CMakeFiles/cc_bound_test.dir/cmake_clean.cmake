file(REMOVE_RECURSE
  "CMakeFiles/cc_bound_test.dir/cc_bound_test.cpp.o"
  "CMakeFiles/cc_bound_test.dir/cc_bound_test.cpp.o.d"
  "cc_bound_test"
  "cc_bound_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_bound_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
