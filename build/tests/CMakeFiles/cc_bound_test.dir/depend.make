# Empty dependencies file for cc_bound_test.
# This may be replaced when dependencies are built.
