file(REMOVE_RECURSE
  "CMakeFiles/seq_abcast_test.dir/seq_abcast_test.cpp.o"
  "CMakeFiles/seq_abcast_test.dir/seq_abcast_test.cpp.o.d"
  "seq_abcast_test"
  "seq_abcast_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_abcast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
