# Empty dependencies file for seq_abcast_test.
# This may be replaced when dependencies are built.
