file(REMOVE_RECURSE
  "CMakeFiles/cc_basic_test.dir/cc_basic_test.cpp.o"
  "CMakeFiles/cc_basic_test.dir/cc_basic_test.cpp.o.d"
  "cc_basic_test"
  "cc_basic_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cc_basic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
