
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/controller.cpp" "src/CMakeFiles/samoa.dir/cc/controller.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/controller.cpp.o.d"
  "/root/repo/src/cc/routing_graph.cpp" "src/CMakeFiles/samoa.dir/cc/routing_graph.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/routing_graph.cpp.o.d"
  "/root/repo/src/cc/serial.cpp" "src/CMakeFiles/samoa.dir/cc/serial.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/serial.cpp.o.d"
  "/root/repo/src/cc/tso.cpp" "src/CMakeFiles/samoa.dir/cc/tso.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/tso.cpp.o.d"
  "/root/repo/src/cc/unsync.cpp" "src/CMakeFiles/samoa.dir/cc/unsync.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/unsync.cpp.o.d"
  "/root/repo/src/cc/vca_basic.cpp" "src/CMakeFiles/samoa.dir/cc/vca_basic.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/vca_basic.cpp.o.d"
  "/root/repo/src/cc/vca_bound.cpp" "src/CMakeFiles/samoa.dir/cc/vca_bound.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/vca_bound.cpp.o.d"
  "/root/repo/src/cc/vca_route.cpp" "src/CMakeFiles/samoa.dir/cc/vca_route.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/vca_route.cpp.o.d"
  "/root/repo/src/cc/vca_rw.cpp" "src/CMakeFiles/samoa.dir/cc/vca_rw.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/vca_rw.cpp.o.d"
  "/root/repo/src/cc/version_gate.cpp" "src/CMakeFiles/samoa.dir/cc/version_gate.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/cc/version_gate.cpp.o.d"
  "/root/repo/src/core/computation.cpp" "src/CMakeFiles/samoa.dir/core/computation.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/computation.cpp.o.d"
  "/root/repo/src/core/context.cpp" "src/CMakeFiles/samoa.dir/core/context.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/context.cpp.o.d"
  "/root/repo/src/core/event.cpp" "src/CMakeFiles/samoa.dir/core/event.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/event.cpp.o.d"
  "/root/repo/src/core/infer.cpp" "src/CMakeFiles/samoa.dir/core/infer.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/infer.cpp.o.d"
  "/root/repo/src/core/isolation.cpp" "src/CMakeFiles/samoa.dir/core/isolation.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/isolation.cpp.o.d"
  "/root/repo/src/core/microprotocol.cpp" "src/CMakeFiles/samoa.dir/core/microprotocol.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/microprotocol.cpp.o.d"
  "/root/repo/src/core/runtime.cpp" "src/CMakeFiles/samoa.dir/core/runtime.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/runtime.cpp.o.d"
  "/root/repo/src/core/stack.cpp" "src/CMakeFiles/samoa.dir/core/stack.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/stack.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/samoa.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/core/trace.cpp.o.d"
  "/root/repo/src/gc/abcast.cpp" "src/CMakeFiles/samoa.dir/gc/abcast.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/abcast.cpp.o.d"
  "/root/repo/src/gc/causal_cast.cpp" "src/CMakeFiles/samoa.dir/gc/causal_cast.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/causal_cast.cpp.o.d"
  "/root/repo/src/gc/consensus.cpp" "src/CMakeFiles/samoa.dir/gc/consensus.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/consensus.cpp.o.d"
  "/root/repo/src/gc/failure_detector.cpp" "src/CMakeFiles/samoa.dir/gc/failure_detector.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/failure_detector.cpp.o.d"
  "/root/repo/src/gc/group_node.cpp" "src/CMakeFiles/samoa.dir/gc/group_node.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/group_node.cpp.o.d"
  "/root/repo/src/gc/membership.cpp" "src/CMakeFiles/samoa.dir/gc/membership.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/membership.cpp.o.d"
  "/root/repo/src/gc/rel_cast.cpp" "src/CMakeFiles/samoa.dir/gc/rel_cast.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/rel_cast.cpp.o.d"
  "/root/repo/src/gc/rel_comm.cpp" "src/CMakeFiles/samoa.dir/gc/rel_comm.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/rel_comm.cpp.o.d"
  "/root/repo/src/gc/seq_abcast.cpp" "src/CMakeFiles/samoa.dir/gc/seq_abcast.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/seq_abcast.cpp.o.d"
  "/root/repo/src/gc/transport.cpp" "src/CMakeFiles/samoa.dir/gc/transport.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/transport.cpp.o.d"
  "/root/repo/src/gc/view.cpp" "src/CMakeFiles/samoa.dir/gc/view.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/view.cpp.o.d"
  "/root/repo/src/gc/wire.cpp" "src/CMakeFiles/samoa.dir/gc/wire.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/gc/wire.cpp.o.d"
  "/root/repo/src/net/codec.cpp" "src/CMakeFiles/samoa.dir/net/codec.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/net/codec.cpp.o.d"
  "/root/repo/src/net/sim_network.cpp" "src/CMakeFiles/samoa.dir/net/sim_network.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/net/sim_network.cpp.o.d"
  "/root/repo/src/net/timer_service.cpp" "src/CMakeFiles/samoa.dir/net/timer_service.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/net/timer_service.cpp.o.d"
  "/root/repo/src/proto/fig1.cpp" "src/CMakeFiles/samoa.dir/proto/fig1.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/proto/fig1.cpp.o.d"
  "/root/repo/src/util/ids.cpp" "src/CMakeFiles/samoa.dir/util/ids.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/util/ids.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/samoa.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/samoa.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/util/stats.cpp.o.d"
  "/root/repo/src/util/sync.cpp" "src/CMakeFiles/samoa.dir/util/sync.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/util/sync.cpp.o.d"
  "/root/repo/src/util/thread_pool.cpp" "src/CMakeFiles/samoa.dir/util/thread_pool.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/util/thread_pool.cpp.o.d"
  "/root/repo/src/verify/checker.cpp" "src/CMakeFiles/samoa.dir/verify/checker.cpp.o" "gcc" "src/CMakeFiles/samoa.dir/verify/checker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
