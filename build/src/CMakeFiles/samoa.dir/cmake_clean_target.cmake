file(REMOVE_RECURSE
  "libsamoa.a"
)
