# Empty compiler generated dependencies file for samoa.
# This may be replaced when dependencies are built.
