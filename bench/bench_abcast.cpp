// E4 — the paper's Section 7 experiment: the Atomic Broadcast protocol
// expressed in the framework, "variants of the concurrency control with a
// different grain of concurrent execution".
//
// N sites on the simulated network; a burst of abcasts is submitted and we
// measure time-to-total-order (all sites delivered everything) plus mean
// per-message delivery latency, for each per-site controller:
//   serial        one computation at a time per site (Appia-like)
//   VCAbasic      per-declaration versioning (the paper's default)
//   VCAbound      generous bounds (same declarations, windowed gates)
//   unsync+locks  Cactus-style manual synchronisation baseline
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "gc/group_node.hpp"

namespace samoa::bench {
namespace {

using namespace samoa::gc;
using net::LinkOptions;
using net::SimNetwork;

struct Result {
  double makespan_ns = -1;  // -1: did not converge
  std::uint64_t packets = 0;
};

Result run_abcast(CCPolicy policy, bool manual_locks, int sites, int messages,
                  std::chrono::microseconds link_latency,
                  ABcastImpl impl = ABcastImpl::kConsensus) {
  GcOptions opts;
  opts.policy = policy;
  opts.manual_locks = manual_locks;
  opts.abcast_impl = impl;
  // Calm the periodic machinery: on the single-core CI host the default
  // (aggressive) timers flood the run with heartbeats and spurious
  // consensus retries that measure the scheduler, not the controllers.
  opts.heartbeat_interval = std::chrono::microseconds(50'000);
  opts.fd_timeout = std::chrono::microseconds(500'000);
  opts.retransmit_interval = std::chrono::microseconds(10'000);
  opts.retransmit_timeout = std::chrono::microseconds(20'000);
  opts.cs_retry_interval = std::chrono::microseconds(200'000);
  opts.cs_retry_timeout = std::chrono::microseconds(400'000);
  SimNetwork net(LinkOptions{.base_latency = link_latency}, /*seed=*/7);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < sites; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  std::vector<SiteId> members;
  for (auto& n : nodes) members.push_back(n->id());
  for (auto& n : nodes) n->start(View(1, members));

  const auto start = Clock::now();
  for (int m = 0; m < messages; ++m) {
    nodes[m % sites]->abcast("msg" + std::to_string(m));
  }
  const auto deadline = start + std::chrono::seconds(30);
  bool converged = false;
  while (Clock::now() < deadline) {
    converged = true;
    for (auto& n : nodes) {
      if (n->sink().adelivered().size() != static_cast<std::size_t>(messages)) {
        converged = false;
        break;
      }
    }
    if (converged) break;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  Result res;
  if (converged) res.makespan_ns = ns_since(start);
  res.packets = net.stats().sent.value();
  for (auto& n : nodes) n->stop_timers();
  return res;
}

std::string cell(const Result& r, int messages) {
  if (r.makespan_ns < 0) return "DNF";
  const double per_msg = r.makespan_ns / messages;
  return format_duration_ns(r.makespan_ns) + " (" + format_duration_ns(per_msg) + "/msg)";
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_abcast");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr int kMessages = 20;
  constexpr auto kLatency = std::chrono::microseconds(200);
  std::printf(
      "E4: Atomic Broadcast on the simulated network (%d messages, %lldus links),\n"
      "per-site concurrency control varied (paper Section 7).\n",
      kMessages, static_cast<long long>(kLatency.count()));

  Table table({"sites", "serial", "VCAbasic", "VCAbound", "unsync+manual-locks"});
  for (int sites : {3, 5, 7}) {
    const auto serial = run_abcast(CCPolicy::kSerial, false, sites, kMessages, kLatency);
    const auto basic = run_abcast(CCPolicy::kVCABasic, false, sites, kMessages, kLatency);
    const auto bound = run_abcast(CCPolicy::kVCABound, false, sites, kMessages, kLatency);
    const auto unsync = run_abcast(CCPolicy::kUnsync, true, sites, kMessages, kLatency);
    table.add_row({std::to_string(sites), cell(serial, kMessages), cell(basic, kMessages),
                   cell(bound, kMessages), cell(unsync, kMessages)});
  }
  table.print("Time to total order (all sites delivered every message)");

  // Ablation: ordering implementation under the default controller.
  Table impls({"sites", "consensus (Paxos/slot)", "fixed sequencer", "packets c/s"});
  for (int sites : {3, 5, 7}) {
    const auto cons = run_abcast(CCPolicy::kVCABasic, false, sites, kMessages, kLatency,
                                 ABcastImpl::kConsensus);
    const auto seq = run_abcast(CCPolicy::kVCABasic, false, sites, kMessages, kLatency,
                                ABcastImpl::kSequencer);
    impls.add_row({std::to_string(sites), cell(cons, kMessages), cell(seq, kMessages),
                   std::to_string(cons.packets) + "/" + std::to_string(seq.packets)});
  }
  impls.print("Ordering-implementation ablation (VCAbasic on every site)");
  std::printf(
      "\nAblation note: on this bursty workload the consensus implementation\n"
      "wins — it batches up to 16 messages per instance, while the sequencer\n"
      "announces every message individually through the O(n^2) reliable\n"
      "broadcast (see the packet counts). The sequencer's classic two-delay\n"
      "latency advantage applies to isolated messages, not saturated bursts.\n");

  std::printf(
      "\nExpected shape: all controllers converge, and the versioned\n"
      "controllers track the hand-locked baseline within a small factor —\n"
      "the paper's Section 7 claim that the concurrency-control overhead is\n"
      "relatively low. Serial is competitive on this workload because the\n"
      "abcast data path is inherently sequential per site; its cost appears\n"
      "when computations could overlap (bench_scaling, bench_bound,\n"
      "bench_route quantify exactly that).\n");
  return 0;
}
