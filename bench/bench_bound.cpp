// E5 — VCAbound's extra parallelism and the cost of imprecise bounds.
//
// Section 5.2 claims VCAbound enables "more parallelism than in the case
// of VCAbasic, where computation k must firstly complete". The workload:
// K computations, each visiting a shared head microprotocol exactly once
// (cheap) and then a private tail microprotocol (expensive I/O). Under
// VCAbasic the shared head serializes everything until each computation
// *completes*; under VCAbound with an exact bound the head is released
// after its single visit, so the expensive tails overlap.
//
// The bound-slack sweep shows the ablation: a slack bound (declared much
// larger than the actual visit count) postpones the release to completion
// (Rule 3), degrading VCAbound back towards VCAbasic.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"

namespace samoa::bench {
namespace {

class QuickMp : public Microprotocol {
 public:
  explicit QuickMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [](Context&, const Message&) {});
  }
  const Handler* handler = nullptr;
};

class SlowMp : public Microprotocol {
 public:
  SlowMp(std::string name, std::chrono::microseconds latency) : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [latency](Context&, const Message&) {
      std::this_thread::sleep_for(latency);
    });
  }
  const Handler* handler = nullptr;
};

struct Workload {
  Stack stack;
  QuickMp* head;
  std::vector<SlowMp*> tails;
  EventType head_ev{"head"};
  std::vector<EventType> tail_evs;

  explicit Workload(int k, std::chrono::microseconds tail_latency) {
    head = &stack.emplace<QuickMp>("head");
    stack.bind(head_ev, *head->handler);
    for (int i = 0; i < k; ++i) {
      auto& mp = stack.emplace<SlowMp>("tail" + std::to_string(i), tail_latency);
      tails.push_back(&mp);
      tail_evs.emplace_back("tail_ev" + std::to_string(i));
      stack.bind(tail_evs.back(), *mp.handler);
    }
  }
};

/// Makespan with the given policy; `declared_bound` only matters for
/// VCAbound (1 = exact, larger = slack).
double makespan_ns(CCPolicy policy, int k, std::uint32_t declared_bound,
                   std::chrono::microseconds tail_latency) {
  Workload w(k, tail_latency);
  Runtime rt(w.stack, RuntimeOptions{.policy = policy});
  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    Isolation iso = policy == CCPolicy::kVCABound
                        ? Isolation::bound({{w.head, declared_bound}, {w.tails[i], 1}})
                        : Isolation::basic({w.head, w.tails[i]});
    hs.push_back(rt.spawn_isolated(std::move(iso), [&, i](Context& ctx) {
      ctx.trigger(w.head_ev);      // one visit to the shared microprotocol
      ctx.trigger(w.tail_evs[i]);  // expensive private work
    }));
  }
  for (auto& h : hs) h.wait();
  return ns_since(start);
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_bound");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr auto kTail = std::chrono::microseconds(400);
  constexpr int kReps = 5;
  std::printf(
      "E5: K computations sharing one microprotocol (1 visit each) followed by\n"
      "%lldus of private work; VCAbound releases the shared head after the visit.\n",
      static_cast<long long>(kTail.count()));

  Table table({"K", "VCAbasic", "VCAbound(exact)", "VCAbound(slack x8)", "basic/bound(exact)"});
  for (int k : {2, 4, 8, 16}) {
    double basic = 0, exact = 0, slack = 0;
    for (int r = 0; r < kReps; ++r) {
      basic += makespan_ns(CCPolicy::kVCABasic, k, 1, kTail);
      exact += makespan_ns(CCPolicy::kVCABound, k, 1, kTail);
      slack += makespan_ns(CCPolicy::kVCABound, k, 8, kTail);
    }
    basic /= kReps;
    exact /= kReps;
    slack /= kReps;
    table.add_row({std::to_string(k), format_duration_ns(basic), format_duration_ns(exact),
                   format_duration_ns(slack), Table::fmt(basic / exact, 1) + "x"});
  }
  table.print("Makespan: early release via least-upper-bounds (paper Section 5.2)");

  std::printf(
      "\nExpected shape: VCAbound(exact) ~flat in K (tails overlap: the head's\n"
      "budget is used up after one visit, Rule 4 opens the next window).\n"
      "VCAbasic ~linear (head released only at completion). Slack bounds\n"
      "degrade back towards VCAbasic: the unused budget is only returned at\n"
      "completion (Rule 3), so the successor's window opens just as late.\n"
      "This is the paper's warning that the variants need *accurate* bounds.\n");
  return 0;
}
