// E7 — concurrency scaling on disjoint computations.
//
// The paper (Section 5) rejects the "simplest possible solution" — block
// every new computation until the running one completes — because "the
// protocol may make poor use of its resources". This experiment
// quantifies that: K computations with pairwise-disjoint declarations,
// each performing an I/O-like handler (busy 300us, standing in for a
// socket write / disk op). Serial makespan grows linearly in K; the VCA
// algorithms overlap the latencies.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "util/sync.hpp"

namespace samoa::bench {
namespace {

class IoMp : public Microprotocol {
 public:
  IoMp(std::string name, std::chrono::microseconds latency)
      : Microprotocol(std::move(name)) {
    handler = &register_handler("io", [latency](Context&, const Message&) {
      // Stand-in for a blocking I/O call: the thread is occupied but the
      // CPU is (mostly) free, which is how concurrency pays off even on a
      // single core.
      std::this_thread::sleep_for(latency);
    });
  }
  const Handler* handler = nullptr;
};

double makespan_ns(CCPolicy policy, int k, std::chrono::microseconds latency) {
  Stack stack;
  std::vector<IoMp*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < k; ++i) {
    auto& mp = stack.emplace<IoMp>("io" + std::to_string(i), latency);
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }
  Runtime rt(stack, RuntimeOptions{.policy = policy});
  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    Isolation iso = [&]() -> Isolation {
      switch (policy) {
        case CCPolicy::kVCABound:
          return Isolation::bound({{mps[i], 1}});
        case CCPolicy::kVCARoute:
          return Isolation::route(RouteSpec{}.entry(*mps[i]->handler));
        default:
          return Isolation::basic({mps[i]});
      }
    }();
    hs.push_back(rt.spawn_isolated(std::move(iso),
                                   [&, i](Context& ctx) { ctx.trigger(evs[i]); }));
  }
  for (auto& h : hs) h.wait();
  return ns_since(start);
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_scaling");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr auto kLatency = std::chrono::microseconds(300);
  std::printf("E7: makespan of K disjoint computations, each one %lldus of I/O-like work\n",
              static_cast<long long>(kLatency.count()));

  Table table({"K", "serial", "VCAbasic", "VCAbound", "VCAroute", "serial/VCAbasic"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    double serial = 0, basic = 0, bound = 0, route = 0;
    constexpr int kReps = 5;
    for (int r = 0; r < kReps; ++r) {
      serial += makespan_ns(CCPolicy::kSerial, k, kLatency);
      basic += makespan_ns(CCPolicy::kVCABasic, k, kLatency);
      bound += makespan_ns(CCPolicy::kVCABound, k, kLatency);
      route += makespan_ns(CCPolicy::kVCARoute, k, kLatency);
    }
    serial /= kReps;
    basic /= kReps;
    bound /= kReps;
    route /= kReps;
    table.add_row({std::to_string(k), format_duration_ns(serial), format_duration_ns(basic),
                   format_duration_ns(bound), format_duration_ns(route),
                   Table::fmt(serial / basic, 1) + "x"});
  }
  table.print("Makespan vs in-flight computations (disjoint declarations)");

  std::printf(
      "\nExpected shape: serial grows ~linearly with K; the VCA controllers\n"
      "stay ~flat (latencies overlap), with the gap widening as K grows.\n");
  return 0;
}
