// E7 — concurrency scaling on disjoint computations.
//
// The paper (Section 5) rejects the "simplest possible solution" — block
// every new computation until the running one completes — because "the
// protocol may make poor use of its resources". This experiment
// quantifies that: K computations with pairwise-disjoint declarations,
// each performing an I/O-like handler (busy 300us, standing in for a
// socket write / disk op). Serial makespan grows linearly in K; the VCA
// algorithms overlap the latencies.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "util/sync.hpp"

namespace samoa::bench {
namespace {

class IoMp : public Microprotocol {
 public:
  IoMp(std::string name, std::chrono::microseconds latency)
      : Microprotocol(std::move(name)) {
    handler = &register_handler("io", [latency](Context&, const Message&) {
      // Stand-in for a blocking I/O call: the thread is occupied but the
      // CPU is (mostly) free, which is how concurrency pays off even on a
      // single core.
      std::this_thread::sleep_for(latency);
    });
  }
  const Handler* handler = nullptr;
};

double makespan_ns(CCPolicy policy, int k, std::chrono::microseconds latency) {
  Stack stack;
  std::vector<IoMp*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < k; ++i) {
    auto& mp = stack.emplace<IoMp>("io" + std::to_string(i), latency);
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.handler);
  }
  Runtime rt(stack, RuntimeOptions{.policy = policy});
  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    Isolation iso = [&]() -> Isolation {
      switch (policy) {
        case CCPolicy::kVCABound:
          return Isolation::bound({{mps[i], 1}});
        case CCPolicy::kVCARoute:
          return Isolation::route(RouteSpec{}.entry(*mps[i]->handler));
        default:
          return Isolation::basic({mps[i]});
      }
    }();
    hs.push_back(rt.spawn_isolated(std::move(iso),
                                   [&, i](Context& ctx) { ctx.trigger(evs[i]); }));
  }
  for (auto& h : hs) h.wait();
  return ns_since(start);
}

class TinyMp : public Microprotocol {
 public:
  explicit TinyMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("nop", [](Context&, const Message&) {});
  }
  const Handler* handler = nullptr;
};

/// Admissions completed per second with `threads` spawner threads, each
/// spawning trivial computations on its own microprotocol (pairwise
/// disjoint: the admission path itself is the only shared state). With
/// the sharded lock-free admission the per-gate tickets never contend
/// across threads; a controller-global admission lock would serialize
/// exactly this loop. `batch` > 1 amortises submission through
/// spawn_isolated_batch in groups of that size.
double admissions_per_second(CCPolicy policy, int threads, int per_thread, int batch) {
  Stack stack;
  std::vector<TinyMp*> mps;
  std::vector<EventType> evs;
  for (int t = 0; t < threads; ++t) {
    auto& mp = stack.emplace<TinyMp>("adm" + std::to_string(t));
    mps.push_back(&mp);
    evs.emplace_back("adm-ev" + std::to_string(t));
    stack.bind(evs.back(), *mp.handler);
  }
  stack.seal();
  Runtime rt(stack, RuntimeOptions{.policy = policy});
  const auto start = Clock::now();
  std::vector<std::thread> spawners;
  for (int t = 0; t < threads; ++t) {
    spawners.emplace_back([&, t] {
      for (int i = 0; i < per_thread; i += batch) {
        if (batch == 1) {
          rt.spawn_isolated(Isolation::basic({mps[t]}), [](Context&) {}).wait();
        } else {
          std::vector<Runtime::SpawnRequest> reqs;
          reqs.reserve(batch);
          for (int b = 0; b < batch; ++b) {
            reqs.push_back({Isolation::basic({mps[t]}), [](Context&) {}});
          }
          for (auto& h : rt.spawn_isolated_batch(std::move(reqs))) h.wait();
        }
      }
    });
  }
  for (auto& t : spawners) t.join();
  const double total = static_cast<double>(threads) * per_thread;
  return total / (ns_since(start) / 1e9);
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_scaling");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr auto kLatency = std::chrono::microseconds(300);
  std::printf("E7: makespan of K disjoint computations, each one %lldus of I/O-like work\n",
              static_cast<long long>(kLatency.count()));

  Table table({"K", "serial", "VCAbasic", "VCAbound", "VCAroute", "serial/VCAbasic"});
  for (int k : {1, 2, 4, 8, 16, 32}) {
    double serial = 0, basic = 0, bound = 0, route = 0;
    constexpr int kReps = 5;
    for (int r = 0; r < kReps; ++r) {
      serial += makespan_ns(CCPolicy::kSerial, k, kLatency);
      basic += makespan_ns(CCPolicy::kVCABasic, k, kLatency);
      bound += makespan_ns(CCPolicy::kVCABound, k, kLatency);
      route += makespan_ns(CCPolicy::kVCARoute, k, kLatency);
    }
    serial /= kReps;
    basic /= kReps;
    bound /= kReps;
    route /= kReps;
    table.add_row({std::to_string(k), format_duration_ns(serial), format_duration_ns(basic),
                   format_duration_ns(bound), format_duration_ns(route),
                   Table::fmt(serial / basic, 1) + "x"});
  }
  table.print("Makespan vs in-flight computations (disjoint declarations)");

  std::printf(
      "\nExpected shape: serial grows ~linearly with K; the VCA controllers\n"
      "stay ~flat (latencies overlap), with the gap widening as K grows.\n");

  // E-ADMIT — admission throughput vs spawner threads (disjoint single-mp
  // computations, so the admission path is the only shared state).
  constexpr int kPerThread = 2000;
  std::printf("\nE-ADMIT: admissions/sec, %d trivial computations per spawner thread\n",
              kPerThread);
  Table adm({"threads", "serial", "VCAbasic", "VCAbasic batch32", "VCAbasic/serial"});
  for (int t : {1, 2, 4, 8}) {
    const double serial = admissions_per_second(CCPolicy::kSerial, t, kPerThread, 1);
    const double basic = admissions_per_second(CCPolicy::kVCABasic, t, kPerThread, 1);
    const double batched = admissions_per_second(CCPolicy::kVCABasic, t, kPerThread, 32);
    adm.add_row({std::to_string(t), Table::fmt(serial / 1000.0, 1) + "k/s",
                 Table::fmt(basic / 1000.0, 1) + "k/s", Table::fmt(batched / 1000.0, 1) + "k/s",
                 Table::fmt(basic / serial, 2) + "x"});
  }
  adm.print("Admission throughput vs spawner threads (disjoint declarations)");
  std::printf(
      "\nExpected shape: VCAbasic throughput grows with threads (sharded\n"
      "lock-free tickets; no shared admission lock), batching amortises\n"
      "submission further, and the VCAbasic/serial gap widens with cores.\n");
  return 0;
}
