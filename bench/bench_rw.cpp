// E8 — read/write access modes (the paper's Section 7 future work,
// implemented): reader-group throughput vs exclusive versioning.
//
// Workload: one shared table microprotocol; K computations, a fraction of
// which only call the table's read-only handler (declared Access::kRead).
// Under VCAbasic every access is exclusive; under VCArw consecutive
// readers form a group and overlap. Sweep the read fraction.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "util/rng.hpp"

namespace samoa::bench {
namespace {

class TableMp : public Microprotocol {
 public:
  explicit TableMp(std::chrono::microseconds op_latency) : Microprotocol("table") {
    write = &register_handler("write", [this, op_latency](Context&, const Message&) {
      std::this_thread::sleep_for(op_latency);
      ++version_;
    });
    read = &register_handler(
        "read",
        [op_latency](Context&, const Message&) { std::this_thread::sleep_for(op_latency); },
        HandlerMode::kReadOnly);
  }
  const Handler* write = nullptr;
  const Handler* read = nullptr;

 private:
  std::uint64_t version_ = 0;
};

double makespan_ns(CCPolicy policy, int k, double read_fraction,
                   std::chrono::microseconds op_latency, std::uint64_t seed) {
  Stack stack;
  auto& table = stack.emplace<TableMp>(op_latency);
  EventType ev_read("Read"), ev_write("Write");
  stack.bind(ev_read, *table.read);
  stack.bind(ev_write, *table.write);
  Runtime rt(stack, RuntimeOptions{.policy = policy});
  Rng rng(seed);

  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    const bool is_read = rng.chance(read_fraction);
    Isolation iso = policy == CCPolicy::kVCARW
                        ? Isolation::read_write(
                              {{&table, is_read ? Access::kRead : Access::kWrite}})
                        : Isolation::basic({&table});
    const EventType& ev = is_read ? ev_read : ev_write;
    hs.push_back(
        rt.spawn_isolated(std::move(iso), [&ev](Context& ctx) { ctx.trigger(ev); }));
  }
  for (auto& h : hs) h.wait();
  return ns_since(start);
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_rw");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr int kK = 24;
  constexpr auto kOp = std::chrono::microseconds(300);
  constexpr int kReps = 5;
  std::printf(
      "E8: %d computations on one shared table, %lldus per operation;\n"
      "read fraction swept (paper Section 7 future work: read-only handlers).\n",
      kK, static_cast<long long>(kOp.count()));

  Table table({"read fraction", "VCAbasic", "VCArw", "basic/rw"});
  for (double frac : {0.0, 0.5, 0.9, 1.0}) {
    double basic = 0, rw = 0;
    for (int r = 0; r < kReps; ++r) {
      basic += makespan_ns(CCPolicy::kVCABasic, kK, frac, kOp, 100 + r);
      rw += makespan_ns(CCPolicy::kVCARW, kK, frac, kOp, 100 + r);
    }
    basic /= kReps;
    rw /= kReps;
    table.add_row({Table::fmt(frac, 1), format_duration_ns(basic), format_duration_ns(rw),
                   Table::fmt(basic / rw, 1) + "x"});
  }
  table.print("Makespan vs read fraction (reader groups share the microprotocol)");

  std::printf(
      "\nExpected shape: identical at read fraction 0 (all writers are\n"
      "exclusive under both controllers); VCArw pulls ahead as the read\n"
      "fraction grows, approaching full overlap of the reader latencies at\n"
      "fraction 1.0 — the isolation-level relaxation the paper sketches in\n"
      "Section 7, with reads kept serializable (read-read pairs commute).\n");
  return 0;
}
