// Deterministic-simulation seed sweep (virtual-time chaos harness).
//
// Replays the scripted chaos fleet (tests/virtual_fleet.hpp) across a
// sweep of seeds, twice per seed, and reports per-seed: convergence time
// in *virtual* microseconds, wall-clock cost of the simulation, packet
// counts, and whether the replay was bit-identical. This is the harness
// for reproducing a distributed-runtime bug: find a seed that trips it,
// then replay that seed as often as needed — every run is identical and
// costs no real-time sleeps.
//
// Usage: bench_detsim [n_seeds]   (default 10; seeds are 1..n)
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "virtual_fleet.hpp"

int main(int argc, char** argv) {
  samoa::diag::install_env_watchdog("bench_detsim");
  using namespace samoa;
  using namespace samoa::gc::testing;

  const int n_seeds = argc > 1 ? std::atoi(argv[1]) : 10;

  std::printf("E-DET — virtual-time chaos fleet, %d-seed sweep (%d sites, %d abcasts, %d ccasts "
              "per run, transient partition + crash)\n\n",
              n_seeds, kFleetSites, kFleetAbcasts, kFleetCcasts);
  std::printf("%6s  %12s  %12s  %10s  %10s  %10s\n", "seed", "virt-us", "wall-ms", "sent",
              "dropped", "replay");

  int converged = 0;
  int identical = 0;
  for (int s = 1; s <= n_seeds; ++s) {
    const auto seed = static_cast<std::uint64_t>(s);
    const auto start = Clock::now();
    const auto a = run_chaos_fleet(seed);
    const auto b = run_chaos_fleet(seed);
    const double wall_ms = bench::ns_since(start) / 2e6;  // per run

    const bool same = a.converged == b.converged && a.converged_at_us == b.converged_at_us &&
                      a.net_sent == b.net_sent && a.net_delivered == b.net_delivered &&
                      a.net_dropped == b.net_dropped && a.cdelivered == b.cdelivered;
    converged += a.converged ? 1 : 0;
    identical += same ? 1 : 0;
    std::printf("%6llu  %12ld  %12.2f  %10llu  %10llu  %10s\n",
                static_cast<unsigned long long>(seed), a.converged_at_us, wall_ms,
                static_cast<unsigned long long>(a.net_sent),
                static_cast<unsigned long long>(a.net_dropped),
                same ? "identical" : "DIVERGED");
  }
  std::printf("\nconverged %d/%d, bit-identical replays %d/%d\n", converged, n_seeds, identical,
              n_seeds);
  return (converged == n_seeds && identical == n_seeds) ? 0 : 1;
}
