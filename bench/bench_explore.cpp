// Schedule-exploration sweep (E-EXPLORE) — the numbers behind the
// EXPERIMENTS.md entry and the nightly CI job.
//
// Runs the standard conflicting cell (4 computations x 3 triggers over a
// 3-mp stack with a shared hotspot) under every controller policy and
// every exploration strategy, and reports per cell: schedules executed,
// decision points recorded, wall cost, and — when a violation is found —
// the trace sizes before and after shrinking. The sanity gate doubles as
// the exit code: kUnsync must be flagged non-isolated by every strategy
// within the budget, and kSerial, the VCA family and kTSO must stay clean.
//
// Usage: bench_explore [max_schedules] [seed]   (defaults 64, 42)
// Honors SAMOA_EXPLORE_SCHEDULES (budget multiplier) and
// SAMOA_EXPLORE_DUMP_DIR (shrunk-trace dumps) like the tests do.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "explore/runner.hpp"

int main(int argc, char** argv) {
  samoa::diag::install_env_watchdog("bench_explore");
  using namespace samoa;
  using namespace samoa::explore;

  CellOptions base;
  base.max_schedules =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : std::size_t{64};
  base.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  const std::vector<CCPolicy> policies{CCPolicy::kSerial,   CCPolicy::kUnsync,
                                       CCPolicy::kVCABasic, CCPolicy::kVCABound,
                                       CCPolicy::kVCARoute, CCPolicy::kVCARW,
                                       CCPolicy::kTSO};
  const std::vector<StrategyKind> strategies{StrategyKind::kRandomWalk, StrategyKind::kPct,
                                             StrategyKind::kExhaustive};

  std::printf("E-EXPLORE — schedule exploration, %d policies x %d strategies, budget %zu "
              "schedules/cell (x SAMOA_EXPLORE_SCHEDULES), workload seed %llu\n\n",
              static_cast<int>(policies.size()), static_cast<int>(strategies.size()),
              base.max_schedules, static_cast<unsigned long long>(base.seed));
  std::printf("%-10s %-11s %10s %10s %9s %9s  %s\n", "policy", "strategy", "schedules",
              "decisions", "wall-ms", "us/sched", "verdict");

  bool unsync_flagged_by_all = true;
  bool isolating_clean = true;
  for (StrategyKind strategy : strategies) {
    bool unsync_flagged = false;
    for (CCPolicy policy : policies) {
      CellOptions opts = base;
      opts.policy = policy;
      opts.strategy = strategy;
      const auto start = Clock::now();
      const CellResult r = explore_cell(opts);
      const double wall_ms = bench::ns_since(start) / 1e6;
      const double us_per = r.schedules_run == 0
                                ? 0.0
                                : wall_ms * 1e3 / static_cast<double>(r.schedules_run);

      char verdict[128];
      if (r.violation_found) {
        std::snprintf(verdict, sizeof(verdict), "VIOLATION (trace %zu -> shrunk %zu)",
                      r.first_violation.size(), r.shrunk.size());
      } else {
        std::snprintf(verdict, sizeof(verdict), "clean");
      }
      std::printf("%-10s %-11s %10zu %10llu %9.1f %9.1f  %s\n", to_string(policy),
                  to_string(strategy), r.schedules_run,
                  static_cast<unsigned long long>(r.decision_points), wall_ms, us_per, verdict);

      if (policy == CCPolicy::kUnsync) {
        unsync_flagged = r.violation_found;
      } else if (r.violation_found) {
        isolating_clean = false;
        std::printf("  !! %s should be isolated; repro:\n%s\n", to_string(policy),
                    r.repro.c_str());
      }
    }
    if (!unsync_flagged) {
      unsync_flagged_by_all = false;
      std::printf("  !! %s failed to flag kUnsync within the budget\n", to_string(strategy));
    }
    std::printf("\n");
  }

  std::printf("sanity gate: unsync flagged by all strategies = %s, isolating policies clean = %s\n",
              unsync_flagged_by_all ? "yes" : "NO", isolating_clean ? "yes" : "NO");
  return (unsync_flagged_by_all && isolating_clean) ? 0 : 1;
}
