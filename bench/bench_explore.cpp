// Schedule-exploration sweep (E-EXPLORE + E-EXPLORE-NET) — the numbers
// behind the EXPERIMENTS.md entries and the nightly CI job.
//
// Part 1 (E-EXPLORE) runs the standard conflicting cell (4 computations x
// 3 triggers over a 3-mp stack with a shared hotspot) under every
// controller policy and every exploration strategy, and reports per cell:
// schedules executed, decision points by kind (s=step, c=clock,
// n=network), wall cost, and — when a violation is found — the trace
// sizes before and after shrinking.
//
// Part 2 (E-EXPLORE-NET) runs the whole-fleet network cells: the toy
// view-sync fleet (3 members, 3 relays, rotating relay assignment) under
// random-walk and PCT exploration of SimNetwork delivery order, with
// vs_checker as the oracle and fault-timing controls in the decision mix.
//
// The sanity gates double as the exit code: kUnsync must be flagged
// non-isolated by every strategy within the budget and the isolating
// policies must stay clean; vs-unsync must be flagged by every network
// strategy while vs-synced stays clean and the default (deliver_at, seq)
// order never violates.
//
// Usage: bench_explore [max_schedules] [seed]   (defaults 64, 42)
// Honors SAMOA_EXPLORE_SCHEDULES (budget multiplier) and
// SAMOA_EXPLORE_DUMP_DIR (shrunk-trace dumps) like the tests do.
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "explore/net_runner.hpp"
#include "explore/runner.hpp"

int main(int argc, char** argv) {
  samoa::diag::install_env_watchdog("bench_explore");
  using namespace samoa;
  using namespace samoa::explore;

  CellOptions base;
  base.max_schedules =
      argc > 1 ? static_cast<std::size_t>(std::atol(argv[1])) : std::size_t{64};
  base.seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  const std::vector<CCPolicy> policies{CCPolicy::kSerial,   CCPolicy::kUnsync,
                                       CCPolicy::kVCABasic, CCPolicy::kVCABound,
                                       CCPolicy::kVCARoute, CCPolicy::kVCARW,
                                       CCPolicy::kTSO};
  const std::vector<StrategyKind> strategies{StrategyKind::kRandomWalk, StrategyKind::kPct,
                                             StrategyKind::kExhaustive};

  std::printf("E-EXPLORE — schedule exploration, %d policies x %d strategies, budget %zu "
              "schedules/cell (x SAMOA_EXPLORE_SCHEDULES), workload seed %llu\n\n",
              static_cast<int>(policies.size()), static_cast<int>(strategies.size()),
              base.max_schedules, static_cast<unsigned long long>(base.seed));
  std::printf("%-10s %-11s %10s %-18s %9s %9s  %s\n", "policy", "strategy", "schedules",
              "decisions", "wall-ms", "us/sched", "verdict");

  bool unsync_flagged_by_all = true;
  bool isolating_clean = true;
  for (StrategyKind strategy : strategies) {
    bool unsync_flagged = false;
    for (CCPolicy policy : policies) {
      CellOptions opts = base;
      opts.policy = policy;
      opts.strategy = strategy;
      const auto start = Clock::now();
      const CellResult r = explore_cell(opts);
      const double wall_ms = bench::ns_since(start) / 1e6;
      const double us_per = r.schedules_run == 0
                                ? 0.0
                                : wall_ms * 1e3 / static_cast<double>(r.schedules_run);

      char verdict[128];
      if (r.violation_found) {
        std::snprintf(verdict, sizeof(verdict), "VIOLATION (trace %zu -> shrunk %zu)",
                      r.first_violation.size(), r.shrunk.size());
      } else {
        std::snprintf(verdict, sizeof(verdict), "clean");
      }
      std::printf("%-10s %-11s %10zu %-18s %9.1f %9.1f  %s\n", to_string(policy),
                  to_string(strategy), r.schedules_run, r.decisions.summary().c_str(), wall_ms,
                  us_per, verdict);

      if (policy == CCPolicy::kUnsync) {
        unsync_flagged = r.violation_found;
      } else if (r.violation_found) {
        isolating_clean = false;
        std::printf("  !! %s should be isolated; repro:\n%s\n", to_string(policy),
                    r.repro.c_str());
      }
    }
    if (!unsync_flagged) {
      unsync_flagged_by_all = false;
      std::printf("  !! %s failed to flag kUnsync within the budget\n", to_string(strategy));
    }
    std::printf("\n");
  }

  // --- Part 2: whole-fleet network cells (E-EXPLORE-NET) ------------------
  NetCellOptions net_base;
  net_base.max_schedules = base.max_schedules;
  net_base.seed = base.seed;
  net_base.views = 2;

  const std::vector<NetProtocol> protocols{NetProtocol::kSynced, NetProtocol::kUnsync};
  const std::vector<StrategyKind> net_strategies{StrategyKind::kRandomWalk, StrategyKind::kPct};

  std::printf("E-EXPLORE-NET — SimNetwork delivery-order exploration, toy view-sync fleet "
              "(3 members, 3 relays, %d epoch(s)), vs_checker oracle\n\n",
              net_base.views > 1 ? net_base.views - 1 : 1);
  std::printf("%-10s %-11s %-6s %10s %-18s %9s  %s\n", "protocol", "strategy", "faults",
              "schedules", "decisions", "wall-ms", "verdict");

  bool net_unsync_flagged_by_all = true;
  bool net_synced_clean = true;
  bool net_default_clean = true;
  for (StrategyKind strategy : net_strategies) {
    bool unsync_flagged = false;
    for (NetProtocol protocol : protocols) {
      for (bool faults : {false, true}) {
        NetCellOptions opts = net_base;
        opts.protocol = protocol;
        opts.strategy = strategy;
        opts.with_faults = faults;
        const auto start = Clock::now();
        const NetCellResult r = explore_net_cell(opts);
        const double wall_ms = bench::ns_since(start) / 1e6;

        char verdict[128];
        if (r.violation_found) {
          std::snprintf(verdict, sizeof(verdict), "VIOLATION (trace %zu -> shrunk %zu)",
                        r.first_violation.size(), r.shrunk.size());
        } else {
          std::snprintf(verdict, sizeof(verdict), "clean");
        }
        std::printf("%-10s %-11s %-6s %10zu %-18s %9.1f  %s\n", to_string(protocol),
                    to_string(strategy), faults ? "on" : "off", r.schedules_run,
                    r.decisions.summary().c_str(), wall_ms, verdict);

        if (protocol == NetProtocol::kUnsync) {
          unsync_flagged = unsync_flagged || r.violation_found;
        } else if (r.violation_found) {
          net_synced_clean = false;
          std::printf("  !! vs-synced should hold under every interleaving; repro:\n%s\n",
                      r.repro.c_str());
        }
      }
    }
    if (!unsync_flagged) {
      net_unsync_flagged_by_all = false;
      std::printf("  !! %s failed to flag vs-unsync within the budget\n", to_string(strategy));
    }
    std::printf("\n");
  }

  // Default (deliver_at, seq) order: the seeded bug is invisible without
  // exploration — data is seeded before views and FIFO keeps it that way.
  for (NetProtocol protocol : protocols) {
    for (bool faults : {false, true}) {
      NetCellOptions opts = net_base;
      opts.protocol = protocol;
      opts.with_faults = faults;
      const NetRunResult r = run_net_schedule(opts, nullptr);
      if (r.violated) {
        net_default_clean = false;
        std::printf("  !! default order violated %s (faults %s): %s\n", to_string(protocol),
                    faults ? "on" : "off", r.violation_summary.c_str());
      }
    }
  }

  std::printf("sanity gate: unsync flagged by all strategies = %s, isolating policies clean = %s, "
              "vs-unsync flagged by all net strategies = %s, vs-synced clean = %s, "
              "default net order clean = %s\n",
              unsync_flagged_by_all ? "yes" : "NO", isolating_clean ? "yes" : "NO",
              net_unsync_flagged_by_all ? "yes" : "NO", net_synced_clean ? "yes" : "NO",
              net_default_clean ? "yes" : "NO");
  return (unsync_flagged_by_all && isolating_clean && net_unsync_flagged_by_all &&
          net_synced_clean && net_default_clean)
             ? 0
             : 1;
}
