// Shared helpers for the experiment binaries.
#pragma once

#include <chrono>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "util/stats.hpp"

namespace samoa::bench {

inline const std::vector<CCPolicy>& isolating_policies() {
  static const std::vector<CCPolicy> kPolicies = {
      CCPolicy::kSerial, CCPolicy::kVCABasic, CCPolicy::kVCABound, CCPolicy::kVCARoute};
  return kPolicies;
}

inline double ns_since(Clock::time_point start) {
  return static_cast<double>(
      std::chrono::duration_cast<Nanos>(Clock::now() - start).count());
}

}  // namespace samoa::bench
