// E6 — VCAroute's reachability-based early release vs graph shape.
//
// Section 5.3: a microprotocol is released as soon as its handlers are
// inactive and unreachable from active handlers; cycles in the declared
// pattern prevent the reachability decision, so release degrades to
// completion time (Rule 3).
//
// Workload: K computations share a cheap dispatcher microprotocol (head)
// and then perform expensive private work (tail_i, asynchronous hand-off).
// Three declarations:
//   basic          VCAbasic {head, tail_i}: head is released only when the
//                  whole computation completes -> computations serialize.
//   route(chain)   head -> tail_i: once head's handler finished and only
//                  the (unrelated) tail is active, head is unreachable and
//                  released (Rule 4(b)) -> the private tails overlap.
//   route(cycle)   chain + tail_i -> head: head stays reachable while the
//                  tail runs, so release degrades to completion (Rule 3).
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"

namespace samoa::bench {
namespace {

struct Workload {
  Stack stack;
  EventType ev_head{"head"};
  std::vector<EventType> tail_evs;

  class Head : public Microprotocol {
   public:
    Head() : Microprotocol("head") {
      handler = &register_handler("run", [](Context& ctx, const Message& m) {
        // Dispatch to the private tail named in the message.
        const auto* ev = m.as<const EventType*>();
        ctx.async_trigger(*ev);
      });
    }
    const Handler* handler = nullptr;
  };

  class Tail : public Microprotocol {
   public:
    Tail(std::string name, std::chrono::microseconds latency) : Microprotocol(std::move(name)) {
      handler = &register_handler("run", [latency](Context&, const Message&) {
        std::this_thread::sleep_for(latency);
      });
    }
    const Handler* handler = nullptr;
  };

  Head* head;
  std::vector<Tail*> tails;

  Workload(int k, std::chrono::microseconds tail_latency) {
    head = &stack.emplace<Head>();
    stack.bind(ev_head, *head->handler);
    for (int i = 0; i < k; ++i) {
      auto& mp = stack.emplace<Tail>("tail" + std::to_string(i), tail_latency);
      tails.push_back(&mp);
      tail_evs.emplace_back("tail_ev" + std::to_string(i));
      stack.bind(tail_evs.back(), *mp.handler);
    }
  }
};

enum class Shape { kBasic, kChain, kCycle };

double makespan_ns(Shape shape, int k, std::chrono::microseconds tail_latency) {
  Workload w(k, tail_latency);
  const CCPolicy policy = shape == Shape::kBasic ? CCPolicy::kVCABasic : CCPolicy::kVCARoute;
  Runtime rt(w.stack, RuntimeOptions{.policy = policy});
  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    Isolation iso = [&]() -> Isolation {
      switch (shape) {
        case Shape::kChain:
          return Isolation::route(RouteSpec{}
                                      .entry(*w.head->handler)
                                      .edge(*w.head->handler, *w.tails[i]->handler));
        case Shape::kCycle:
          return Isolation::route(RouteSpec{}
                                      .entry(*w.head->handler)
                                      .edge(*w.head->handler, *w.tails[i]->handler)
                                      .edge(*w.tails[i]->handler, *w.head->handler));
        default:
          return Isolation::basic({w.head, w.tails[i]});
      }
    }();
    hs.push_back(rt.spawn_isolated(std::move(iso), [&, i](Context& ctx) {
      ctx.trigger(w.ev_head, Message::of(static_cast<const EventType*>(&w.tail_evs[i])));
    }));
  }
  for (auto& h : hs) h.wait();
  return ns_since(start);
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_route");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr auto kTail = std::chrono::microseconds(500);
  constexpr int kReps = 5;
  std::printf(
      "E6: K computations through a shared dispatcher (head) followed by\n"
      "%lldus of private asynchronous work; routing patterns of different\n"
      "shapes (paper Section 5.3).\n",
      static_cast<long long>(kTail.count()));

  Table table({"K", "VCAbasic", "route(chain)", "route(cycle)", "basic/chain"});
  for (int k : {2, 4, 8, 16}) {
    double basic = 0, chain = 0, cycle = 0;
    for (int r = 0; r < kReps; ++r) {
      basic += makespan_ns(Shape::kBasic, k, kTail);
      chain += makespan_ns(Shape::kChain, k, kTail);
      cycle += makespan_ns(Shape::kCycle, k, kTail);
    }
    basic /= kReps;
    chain /= kReps;
    cycle /= kReps;
    table.add_row({std::to_string(k), format_duration_ns(basic), format_duration_ns(chain),
                   format_duration_ns(cycle), Table::fmt(basic / chain, 1) + "x"});
  }
  table.print("Makespan vs routing-pattern shape");

  std::printf(
      "\nExpected shape: route(chain) ~flat in K — the shared head is\n"
      "released as soon as its handler is done and unreachable, so the\n"
      "private tails overlap. VCAbasic ~linear (head held to completion).\n"
      "route(cycle) ~linear too: the declared back-edge keeps head reachable\n"
      "while the tail is active, so Rule 4(b) cannot fire — the cost of\n"
      "imprecise routing declarations.\n");
  return 0;
}
