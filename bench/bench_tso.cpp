// E9 — the second algorithm family: timestamp ordering with
// rollback/recovery vs the versioning family.
//
// The paper (Section 5) introduces two groups of deadlock-free algorithms
// and details only the versioning one; this experiment measures the
// trade-off against the other group. Workload: K computations over a pool
// of microprotocols; each touches `footprint` of them (random order,
// 200us of work each). VCAbasic must declare the full footprint up front
// and orders by admission; TSO declares nothing, discovers conflicts, and
// pays with wait-die restarts as contention grows.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "cc/tso.hpp"
#include "core/txvar.hpp"
#include "util/rng.hpp"

namespace samoa::bench {
namespace {

class TxWork : public Microprotocol {
 public:
  explicit TxWork(std::string name) : Microprotocol(std::move(name)) {
    run = &register_handler("run", [this](Context& ctx, const Message&) {
      count.set(ctx, count.get() + 1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    });
  }
  const Handler* run = nullptr;
  TxVar<int> count{0};
};

struct Result {
  double makespan_ns = 0;
  std::uint64_t restarts = 0;
};

Result run(CCPolicy policy, int pool_size, int k, int footprint, std::uint64_t seed) {
  Stack stack;
  std::vector<TxWork*> mps;
  std::vector<EventType> evs;
  for (int i = 0; i < pool_size; ++i) {
    auto& mp = stack.emplace<TxWork>("w" + std::to_string(i));
    mps.push_back(&mp);
    evs.emplace_back("ev" + std::to_string(i));
    stack.bind(evs.back(), *mp.run);
  }
  Runtime rt(stack, RuntimeOptions{.policy = policy});
  Rng rng(seed);

  const auto start = Clock::now();
  std::vector<ComputationHandle> hs;
  for (int i = 0; i < k; ++i) {
    // Random footprint (distinct microprotocols, random order).
    std::vector<int> picks;
    while (static_cast<int>(picks.size()) < footprint) {
      const int p = static_cast<int>(rng.next_below(pool_size));
      bool dup = false;
      for (int q : picks) dup |= q == p;
      if (!dup) picks.push_back(p);
    }
    std::vector<const Microprotocol*> members;
    for (int p : picks) members.push_back(mps[p]);
    hs.push_back(rt.spawn_isolated(Isolation::basic(members), [&, picks](Context& ctx) {
      for (int p : picks) ctx.trigger(evs[p]);
    }));
  }
  for (auto& h : hs) h.wait();
  Result res;
  res.makespan_ns = ns_since(start);
  if (auto* tso = dynamic_cast<TSOController*>(&rt.controller())) {
    res.restarts = tso->restarts();
  }
  // Sanity: no update lost or double-applied despite restarts.
  int total = 0;
  for (auto* mp : mps) total += mp->count.get();
  if (total != k * footprint) {
    std::printf("!! consistency violation: %d updates, expected %d\n", total, k * footprint);
  }
  return res;
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_tso");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr int kK = 16;
  std::printf(
      "E9: %d computations, each visiting `footprint` microprotocols of a pool\n"
      "(200us work per visit). Versioning (declared M, never aborts) vs\n"
      "timestamp ordering (no declarations, wait-die restarts).\n",
      kK);

  Table table(
      {"pool", "footprint", "contention", "VCAbasic", "TSO", "TSO restarts", "basic/TSO"});
  struct Cell {
    int pool;
    int footprint;
    const char* label;
  };
  for (Cell cell : {Cell{32, 2, "low"}, Cell{8, 3, "medium"}, Cell{4, 3, "high"}}) {
    double basic = 0, tso = 0;
    std::uint64_t restarts = 0;
    constexpr int kReps = 5;
    for (int r = 0; r < kReps; ++r) {
      basic += run(CCPolicy::kVCABasic, cell.pool, kK, cell.footprint, 50 + r).makespan_ns;
      const auto t = run(CCPolicy::kTSO, cell.pool, kK, cell.footprint, 50 + r);
      tso += t.makespan_ns;
      restarts += t.restarts;
    }
    basic /= kReps;
    tso /= kReps;
    table.add_row({std::to_string(cell.pool), std::to_string(cell.footprint), cell.label,
                   format_duration_ns(basic), format_duration_ns(tso),
                   Table::fmt(static_cast<double>(restarts) / kReps, 1),
                   Table::fmt(basic / tso, 2) + "x"});
  }
  table.print("Versioning vs timestamp ordering with rollback");

  std::printf(
      "\nExpected shape: at low contention the two are comparable (TSO's\n"
      "claims behave like locks that are rarely contended, and it needs no\n"
      "declarations at all). As contention grows, TSO burns work on wait-die\n"
      "restarts while VCAbasic's admission-ordered versions never abort —\n"
      "the trade-off between the paper's two algorithm families.\n");
  return 0;
}
