// E1 — the Figure 1 protocol and the paper's run classification.
//
// For every controller, spawn the two concurrent external events a0/b0
// many times with randomized stage delays and classify each recorded run
// the way Section 2 classifies r1/r2/r3:
//
//   serial              (r1-style: computations never overlap)
//   concurrent+isolated (r2-style: overlap, but equivalent to a serial run)
//   VIOLATION           (r3-style: not serializable)
//
// The table reproduces the paper's qualitative claims: Appia-like serial
// execution admits only r1; the VCA algorithms admit r2 but never r3; the
// Cactus-like unsynchronised baseline admits r3. Mean pair latency shows
// what the admitted concurrency buys.
#include <cstdio>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "proto/fig1.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace samoa::bench {
namespace {

using proto::Fig1Msg;
using proto::Fig1Protocol;

struct Cell {
  int serial = 0;
  int concurrent_isolated = 0;
  int violations = 0;
  double total_ns = 0;
};

Cell run_policy(CCPolicy policy, int trials, std::uint64_t seed) {
  Rng rng(seed);
  Cell cell;
  for (int t = 0; t < trials; ++t) {
    Fig1Protocol proto;
    Runtime rt(proto.stack(), RuntimeOptions{.policy = policy, .record_trace = true});
    const auto start = Clock::now();
    auto ka = proto.spawn(
        rt, Fig1Msg{.tag = 'a',
                    .delay_r = std::chrono::microseconds(200 + rng.next_below(800))});
    auto kb = proto.spawn(
        rt, Fig1Msg{.tag = 'b',
                    .delay_s = std::chrono::microseconds(rng.next_below(400))});
    ka.wait();
    kb.wait();
    rt.drain();
    cell.total_ns += ns_since(start);
    auto report = check_isolation(rt.trace()->snapshot());
    if (!report.isolated) {
      ++cell.violations;
    } else if (report.serial) {
      ++cell.serial;
    } else {
      ++cell.concurrent_isolated;
    }
  }
  return cell;
}

}  // namespace
}  // namespace samoa::bench

int main() {
  samoa::diag::install_env_watchdog("bench_fig1");
  using namespace samoa;
  using namespace samoa::bench;

  constexpr int kTrials = 60;
  std::printf("E1: Figure 1 protocol, %d trials of two concurrent external events (a0, b0)\n",
              kTrials);

  Table table({"controller", "serial (r1)", "concurrent isolated (r2)", "VIOLATIONS (r3)",
               "mean pair latency"});
  for (CCPolicy policy : {CCPolicy::kSerial, CCPolicy::kUnsync, CCPolicy::kVCABasic,
                          CCPolicy::kVCABound, CCPolicy::kVCARoute}) {
    const auto cell = run_policy(policy, kTrials, 42);
    table.add_row({to_string(policy), std::to_string(cell.serial),
                   std::to_string(cell.concurrent_isolated), std::to_string(cell.violations),
                   format_duration_ns(cell.total_ns / kTrials)});
  }
  table.print("Run classification per controller (paper Section 2, runs r1/r2/r3)");

  std::printf(
      "\nExpected shape: serial admits only r1; VCA* admit r2 and never r3;\n"
      "unsync admits r3 (violations > 0). VCA* pair latency beats serial\n"
      "because the a/b computations overlap on disjoint stages.\n");
  return 0;
}
