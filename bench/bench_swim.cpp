// E-SWIM — failure-detector comparison under fleet-scale churn.
//
// Runs the scripted churn scenario (tests/virtual_fleet.hpp): flapping
// links (one asymmetric), a partitioned-then-healed minority island, and a
// simultaneous crash of 10% of the fleet — once per (detector, fleet size)
// cell, on the virtual clock. Both detectors get the same message budget:
// the heartbeat interval is stretched so its per-site send rate matches
// SWIM's one probe per period, which is exactly the trade the SWIM paper
// targets — at fixed bandwidth, heartbeat detection latency grows O(n)
// while SWIM's stays constant.
//
// Reported per cell: detection latency (first crashed site suspected at
// the observer / all crashed sites suspected), false-positive pairs
// (distinct observer->survivor suspicions while both were alive),
// detector traffic, and the virtual-synchrony verdict over every
// incarnation trace.
//
// Usage: bench_swim [tiers]   (default 2 => {5, 50} sites; 3 adds the
//                              200-site cell, which costs minutes of wall
//                              clock per detector — the RelCast flood is
//                              O(n^2) packets per broadcast)
#include <cstdio>
#include <cstdlib>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "virtual_fleet.hpp"

int main(int argc, char** argv) {
  samoa::diag::install_env_watchdog("bench_swim");
  using namespace samoa;
  using namespace samoa::gc;
  using namespace samoa::gc::testing;
  using std::chrono::microseconds;

  const int tiers = argc > 1 ? std::atoi(argv[1]) : 2;
  const int kTierSites[] = {5, 50, 200};
  const int n_tiers = tiers < 1 ? 1 : (tiers > 3 ? 3 : tiers);

  std::printf("E-SWIM — churn fleet, heartbeat vs SWIM at equal per-site bandwidth\n");
  std::printf("(crash 10%% of the fleet at t=30ms virtual; latencies measured from the crash)\n\n");
  std::printf("%10s %6s %12s %12s %9s %11s %11s %10s %9s %8s %5s\n", "detector", "sites",
              "first-us", "all-us", "fp-pairs", "suspicions", "revocations", "net-sent",
              "piggyback", "wall-ms", "vs");

  bool all_ok = true;
  for (int t = 0; t < n_tiers; ++t) {
    const int sites = kTierSites[t];
    for (const auto detector : {DetectorImpl::kHeartbeat, DetectorImpl::kSwim}) {
      ChurnConfig cfg;
      cfg.sites = sites;
      cfg.seed = 1;
      cfg.detector = detector;
      cfg.horizon = microseconds(20'000'000);
      if (detector == DetectorImpl::kHeartbeat) {
        // Equal-bandwidth heartbeat: interval = probe_interval * (n-1) / 2,
        // fd_timeout = 3 * interval, and the detector's check tick runs once
        // per fd_timeout — detection can land up to 2 * fd_timeout past the
        // last contact. Size the pre-eviction sample window for that.
        const auto fd_timeout = 3 * cfg.probe_interval * std::max(1, sites - 1) / 2;
        cfg.detect_window = 3 * fd_timeout + microseconds(20'000);
      } else {
        // SWIM's window covers the dissemination tail: n/10 simultaneous
        // rumors compete for the piggyback cap, so big fleets need
        // linear-ish headroom past the ~log2(n)-round epidemic spread.
        cfg.detect_window = microseconds(sites > 120 ? 20'000 + 200L * sites : 20'000);
      }

      const auto start = Clock::now();
      const auto out = run_churn_fleet(cfg);
      const double wall_ms = bench::ns_since(start) / 1e6;

      const bool ok = out.converged && out.vs.ok();
      all_ok = all_ok && ok;
      const long base = 30'000;  // crash instant (virtual us)
      std::printf("%10s %6d %12ld %12ld %9llu %11llu %11llu %10llu %9llu %8.0f %5s\n",
                  detector == DetectorImpl::kSwim ? "swim" : "heartbeat", sites,
                  out.first_suspicion_us >= 0 ? out.first_suspicion_us - base : -1,
                  out.all_suspected_us >= 0 ? out.all_suspected_us - base : -1,
                  static_cast<unsigned long long>(out.false_positive_pairs),
                  static_cast<unsigned long long>(out.suspicions),
                  static_cast<unsigned long long>(out.revocations),
                  static_cast<unsigned long long>(out.net_sent),
                  static_cast<unsigned long long>(out.updates_piggybacked), wall_ms,
                  ok ? "ok" : "FAIL");
      if (!ok) {
        std::printf("  cell failed: converged=%d vs=%s\n", out.converged,
                    out.vs.describe().c_str());
      }
    }
  }
  std::printf("\n(first-us/all-us: virtual microseconds from the mass crash until the observer\n"
              " suspects the first / every crashed site; -1 = window closed before detection)\n");
  return all_ok ? 0 : 1;
}
