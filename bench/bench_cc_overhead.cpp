// E3 — concurrency-control overhead (paper Section 7: "the overhead
// incurred by J-SAMOA's concurrency control algorithms ... is relatively
// low").
//
// Micro-benchmarks, one cell per (controller, |M|):
//   * spawn+complete of an empty computation (admission + Step 3 cost),
//   * a computation performing 16 gated handler calls (per-call cost),
// against the raw cost of calling the same handler functions directly.
// Run with --benchmark_* flags; default output is the google-benchmark
// table.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

namespace samoa::bench {
namespace {

class NopMp : public Microprotocol {
 public:
  explicit NopMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("nop", [](Context&, const Message&) {});
  }
  const Handler* handler = nullptr;
};

struct Env {
  Stack stack;
  std::vector<NopMp*> mps;
  std::vector<EventType> evs;

  explicit Env(int n_mps) {
    for (int i = 0; i < n_mps; ++i) {
      auto& mp = stack.emplace<NopMp>("mp" + std::to_string(i));
      mps.push_back(&mp);
      evs.emplace_back("ev" + std::to_string(i));
      stack.bind(evs.back(), *mp.handler);
    }
  }

  Isolation iso(CCPolicy policy) const {
    switch (policy) {
      case CCPolicy::kVCABound: {
        std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
        for (auto* mp : mps) bounds.emplace_back(mp, 32);
        return Isolation::bound(bounds);
      }
      case CCPolicy::kVCARoute: {
        RouteSpec spec;
        for (auto* mp : mps) spec.entry(*mp->handler);
        return Isolation::route(spec);
      }
      default: {
        std::vector<const Microprotocol*> members(mps.begin(), mps.end());
        return Isolation::basic(members);
      }
    }
  }
};

CCPolicy policy_from(int index) {
  static const CCPolicy kAll[] = {CCPolicy::kSerial, CCPolicy::kUnsync, CCPolicy::kVCABasic,
                                  CCPolicy::kVCABound, CCPolicy::kVCARoute};
  return kAll[index];
}

/// Cost of spawning and completing an empty isolated computation. The
/// admit_fast / admit_slow counters make the fast-path claim auditable in
/// the output: |M| = 1 cells must report admit_slow == 0 (no admission
/// ever took a lock), larger |M| cells go through the lock-ordered path.
void BM_SpawnEmpty(benchmark::State& state) {
  const CCPolicy policy = policy_from(static_cast<int>(state.range(0)));
  const int n_mps = static_cast<int>(state.range(1));
  Env env(n_mps);
  Runtime rt(env.stack, RuntimeOptions{.policy = policy});
  for (auto _ : state) {
    rt.spawn_isolated(env.iso(policy), [](Context&) {}).wait();
  }
  const CCStats& cc = rt.controller().stats();
  state.counters["admit_fast"] = static_cast<double>(cc.admit_fast.value());
  state.counters["admit_slow"] = static_cast<double>(cc.admit_slow.value());
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_SpawnEmpty)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 4, 16, 64}})
    ->Unit(benchmark::kMicrosecond);

/// Batched admission: one spawn_isolated_batch call admitting `batch`
/// single-mp computations (one claim_range fetch_add per distinct gate,
/// one pool lock for the whole burst). Throughput is per member, directly
/// comparable to the |M| = 1 BM_SpawnEmpty cells.
void BM_SpawnBatchSingleMp(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  Env env(4);
  Runtime rt(env.stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  for (auto _ : state) {
    std::vector<Runtime::SpawnRequest> reqs;
    reqs.reserve(batch);
    for (int b = 0; b < batch; ++b) {
      reqs.push_back({Isolation::basic({env.mps[b % env.mps.size()]}), [](Context&) {}});
    }
    auto hs = rt.spawn_isolated_batch(std::move(reqs));
    for (auto& h : hs) h.wait();
  }
  state.SetItemsProcessed(state.iterations() * batch);
  const CCStats& cc = rt.controller().stats();
  state.counters["admit_fast"] = static_cast<double>(cc.admit_fast.value());
  state.counters["admit_slow"] = static_cast<double>(cc.admit_slow.value());
  state.SetLabel("VCAbasic batch");
}
BENCHMARK(BM_SpawnBatchSingleMp)->Arg(4)->Arg(16)->Arg(64)->Unit(benchmark::kMicrosecond);

/// Concurrent admissions from T benchmark threads, each spawning on its
/// own microprotocol (no conflicts). With the sharded lock-free admission
/// this scales with threads; with a controller-global admission mutex it
/// flatlines — the regression this cell exists to catch.
void BM_ThreadedSingleMpAdmit(benchmark::State& state) {
  static Env* env = nullptr;
  static Runtime* rt = nullptr;
  if (state.thread_index() == 0) {
    env = new Env(64);
    env->stack.seal();
    rt = new Runtime(env->stack, RuntimeOptions{.policy = CCPolicy::kVCABasic});
  }
  // All threads rendezvous at the timed-loop barrier, so env/rt written by
  // thread 0 above are visible to every thread inside the loop.
  for (auto _ : state) {
    NopMp* mp = env->mps[state.thread_index() % env->mps.size()];
    rt->spawn_isolated(Isolation::basic({mp}), [](Context&) {}).wait();
  }
  state.SetItemsProcessed(state.iterations());
  if (state.thread_index() == 0) {
    const CCStats& cc = rt->controller().stats();
    state.counters["admit_fast"] = static_cast<double>(cc.admit_fast.value());
    state.counters["admit_slow"] = static_cast<double>(cc.admit_slow.value());
    delete rt;
    rt = nullptr;
    delete env;
    env = nullptr;
  }
  state.SetLabel("VCAbasic threaded");
}
BENCHMARK(BM_ThreadedSingleMpAdmit)->ThreadRange(1, 8)->Unit(benchmark::kMicrosecond)->UseRealTime();

/// E-DISPATCH — handler dispatches/sec under the two dispatch substrates
/// (RuntimeOptions::dispatch_impl), threaded single-mp cells: each thread
/// spawns computations on its own microprotocol, every computation issuing
/// 8 async handler dispatches. items_per_second is the handler-dispatch
/// rate. The executor cells also surface the PR 8 queue telemetry:
/// enqueues, drain batches, mean batch size, mean sampled queue depth,
/// consumer handoffs and ring-overflow enqueues.
void BM_ThreadedSingleMpDispatch(benchmark::State& state) {
  static Env* env = nullptr;
  static Runtime* rt = nullptr;
  const DispatchImpl impl =
      state.range(0) == 0 ? DispatchImpl::kElasticPool : DispatchImpl::kExecutor;
  if (state.thread_index() == 0) {
    env = new Env(64);
    env->stack.seal();
    RuntimeOptions opts;
    opts.policy = CCPolicy::kVCABasic;
    opts.dispatch_impl = impl;
    rt = new Runtime(env->stack, opts);
  }
  constexpr int kCalls = 8;
  for (auto _ : state) {
    const std::size_t slot = state.thread_index() % env->mps.size();
    NopMp* mp = env->mps[slot];
    const EventType& ev = env->evs[slot];
    rt->spawn_isolated(Isolation::basic({mp}), [&](Context& ctx) {
        for (int c = 0; c < kCalls; ++c) ctx.async_trigger(ev);
      }).wait();
  }
  state.SetItemsProcessed(state.iterations() * kCalls);
  if (state.thread_index() == 0) {
    const CCStats& cc = rt->controller().stats();
    state.counters["admit_slow"] = static_cast<double>(cc.admit_slow.value());
    state.counters["exec_enqueues"] = static_cast<double>(cc.exec_enqueues.value());
    state.counters["exec_batches"] = static_cast<double>(cc.exec_batches.value());
    state.counters["batch_mean"] = cc.exec_batch_size.mean_ns();
    state.counters["qdepth_mean"] = cc.exec_queue_depth.mean_ns();
    state.counters["handoffs"] = static_cast<double>(cc.exec_handoffs.value());
    state.counters["overflow"] = static_cast<double>(cc.exec_overflow.value());
    delete rt;
    rt = nullptr;
    delete env;
    env = nullptr;
  }
  state.SetLabel(impl == DispatchImpl::kExecutor ? "executor" : "pool");
}
BENCHMARK(BM_ThreadedSingleMpDispatch)
    ->ArgsProduct({{0, 1}})
    ->ThreadRange(1, 8)
    ->Unit(benchmark::kMicrosecond)
    ->UseRealTime();

/// E-DISPATCH fan-out cell: one computation async_trigger_all-ing an event
/// bound to 16 microprotocols. Under the executor this enqueues one node
/// per distinct target shard (<= 8) instead of 16 — exec_enqueues in the
/// output makes the batching visible; under the pool it is 16 pool submits.
void BM_FanoutDispatch(benchmark::State& state) {
  const DispatchImpl impl =
      state.range(0) == 0 ? DispatchImpl::kElasticPool : DispatchImpl::kExecutor;
  Env env(16);
  EventType fan("fan");
  for (auto* mp : env.mps) env.stack.bind(fan, *mp->handler);
  RuntimeOptions opts;
  opts.policy = CCPolicy::kVCABasic;
  opts.dispatch_impl = impl;
  Runtime rt(env.stack, opts);
  std::vector<const Microprotocol*> members(env.mps.begin(), env.mps.end());
  for (auto _ : state) {
    rt.spawn_isolated(Isolation::basic(members),
                      [&](Context& ctx) { ctx.async_trigger_all(fan); })
        .wait();
  }
  state.SetItemsProcessed(state.iterations() * 16);
  const CCStats& cc = rt.controller().stats();
  state.counters["exec_enqueues"] = static_cast<double>(cc.exec_enqueues.value());
  state.counters["exec_batches"] = static_cast<double>(cc.exec_batches.value());
  state.counters["batch_mean"] = cc.exec_batch_size.mean_ns();
  state.SetLabel(impl == DispatchImpl::kExecutor ? "executor" : "pool");
}
BENCHMARK(BM_FanoutDispatch)->Arg(0)->Arg(1)->Unit(benchmark::kMicrosecond);

/// Cost of 16 gated handler calls inside one computation.
void BM_GatedCalls(benchmark::State& state) {
  const CCPolicy policy = policy_from(static_cast<int>(state.range(0)));
  const int n_mps = static_cast<int>(state.range(1));
  Env env(n_mps);
  Runtime rt(env.stack, RuntimeOptions{.policy = policy});
  for (auto _ : state) {
    rt.spawn_isolated(env.iso(policy), [&](Context& ctx) {
        for (int c = 0; c < 16; ++c) ctx.trigger(env.evs[c % env.evs.size()]);
      }).wait();
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.SetLabel(to_string(policy));
}
BENCHMARK(BM_GatedCalls)
    ->ArgsProduct({{0, 1, 2, 3, 4}, {1, 4, 16}})
    ->Unit(benchmark::kMicrosecond);

/// Baseline: the same 16 handler bodies as plain function calls.
void BM_RawCalls(benchmark::State& state) {
  Env env(1);
  Stack& stack = env.stack;
  stack.seal();
  Runtime rt(env.stack, RuntimeOptions{.policy = CCPolicy::kUnsync});
  // One long-lived computation; measure only the call loop.
  for (auto _ : state) {
    rt.spawn_isolated(env.iso(CCPolicy::kUnsync), [&](Context& ctx) {
        for (int c = 0; c < 16; ++c) ctx.trigger(env.evs[0]);
      }).wait();
  }
  state.SetItemsProcessed(state.iterations() * 16);
  state.SetLabel("unsync-dispatch-only");
}
BENCHMARK(BM_RawCalls)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace samoa::bench

BENCHMARK_MAIN();
