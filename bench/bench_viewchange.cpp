// E2 — the Section 3 view-change race, quantified.
//
// A site joins the group while another member floods reliable broadcasts.
// RelComm silently discards any message whose target is missing from its
// *local* view; when message processing interleaves with the ViewChange
// computation (possible only without isolation), RelCast can address the
// new view while RelComm still filters with the old one. We count those
// discards across a sweep of race-window widths.
#include <cstdio>
#include <memory>
#include <thread>

#include "bench_common.hpp"
#include "diag/watchdog.hpp"
#include "gc/group_node.hpp"
#include "virtual_fleet.hpp"

namespace samoa::bench {
namespace {

using namespace samoa::gc;
using net::LinkOptions;
using net::SimNetwork;

/// Returns (discards, joiner got view) for one run.
std::pair<std::int64_t, bool> run_race(CCPolicy policy, bool manual_locks,
                                       std::chrono::microseconds window, std::uint64_t seed) {
  GcOptions opts;
  opts.policy = policy;
  opts.manual_locks = manual_locks;
  opts.view_change_delay = window;
  SimNetwork net(LinkOptions{.base_latency = std::chrono::microseconds(100)}, seed);
  std::vector<std::unique_ptr<GroupNode>> nodes;
  for (int i = 0; i < 4; ++i) nodes.push_back(std::make_unique<GroupNode>(net, opts));
  const View initial(1, {nodes[0]->id(), nodes[1]->id(), nodes[2]->id()});
  for (int i = 0; i < 3; ++i) nodes[i]->start(initial);
  nodes[3]->start(View(1, {nodes[3]->id()}));

  nodes[0]->request_join(nodes[3]->id());
  for (int i = 0; i < 40; ++i) {
    nodes[1]->rbcast("flood" + std::to_string(i));
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  const auto deadline = Clock::now() + std::chrono::seconds(10);
  bool joined = false;
  while (Clock::now() < deadline) {
    if (nodes[3]->membership().view_snapshot().size() == 4) {
      joined = true;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  for (auto& n : nodes) n->stop_timers();
  for (auto& n : nodes) n->drain();
  std::int64_t discarded = 0;
  for (auto& n : nodes) {
    discarded += static_cast<std::int64_t>(n->rel_comm().discarded_out_of_view());
  }
  return {discarded, joined};
}

}  // namespace
}  // namespace samoa::bench

int main() {
  using namespace samoa;
  using namespace samoa::bench;
  // Self-diagnose instead of hanging if the join-flood race wedges again
  // (SAMOA_WATCHDOG=<ms> arms it; see diag/watchdog.hpp).
  diag::install_env_watchdog("bench_viewchange");

  constexpr int kRuns = 3;
  std::printf(
      "E2: site join during a broadcast flood (40 messages, 4 sites);\n"
      "counting messages RelComm silently discarded to a stale view.\n"
      "%d runs per cell, format: total discards across runs.\n",
      kRuns);

  Table table({"race window", "serial", "VCAbasic", "VCAbound", "unsync+manual-locks"});
  for (auto window : {std::chrono::microseconds(0), std::chrono::microseconds(500),
                      std::chrono::microseconds(2000)}) {
    std::vector<std::string> row{format_duration_ns(static_cast<double>(window.count()) * 1e3)};
    struct Cfg {
      CCPolicy policy;
      bool locks;
    };
    for (Cfg cfg : {Cfg{CCPolicy::kSerial, false}, Cfg{CCPolicy::kVCABasic, false},
                    Cfg{CCPolicy::kVCABound, false}, Cfg{CCPolicy::kUnsync, true}}) {
      std::int64_t total = 0;
      int failed_joins = 0;
      for (int r = 0; r < kRuns; ++r) {
        std::fprintf(stderr, "[E2] window=%lldus policy=%d locks=%d run=%d\n",
                     static_cast<long long>(window.count()), static_cast<int>(cfg.policy),
                     cfg.locks ? 1 : 0, r);
        auto [discards, joined] = run_race(cfg.policy, cfg.locks, window, 100 + r);
        total += discards;
        failed_joins += joined ? 0 : 1;
      }
      std::string cell = std::to_string(total);
      if (failed_joins > 0) cell += " (" + std::to_string(failed_joins) + " joins DNF)";
      row.push_back(cell);
    }
    table.add_row(std::move(row));
  }
  table.print("Silently discarded messages (paper Section 3 'Problem')");

  std::printf(
      "\nExpected shape: zero discards for every isolation-preserving\n"
      "controller at every window width; the Cactus-style baseline discards\n"
      "messages once the window is wide enough to interleave the ViewChange\n"
      "with message processing — the paper's motivating bug.\n");

  // E-REJOIN — crash-recovery time. The scripted recovery fleet
  // (tests/virtual_fleet.hpp) crashes, evicts, restarts and re-joins a
  // site under a partition; the metric is the *virtual* time from the
  // re-join request to the rejoined incarnation's first totally-ordered
  // delivery (state transfer + ordering catch-up latency, free of
  // scheduling noise).
  std::printf("\nE-REJOIN: virtual-time recovery latency (5 sites, 2 crash/rejoin cycles)\n");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    std::fprintf(stderr, "[E-REJOIN] seed=%llu\n", static_cast<unsigned long long>(seed));
    const auto out = gc::testing::run_recovery_fleet(seed);
    const long recovery_us = (out.rejoin4_first_delivery_us >= 0 && out.rejoin4_requested_us >= 0)
                                 ? out.rejoin4_first_delivery_us - out.rejoin4_requested_us
                                 : -1;
    std::printf("BENCH {\"bench\":\"viewchange_recovery\",\"seed\":%llu,"
                "\"recovery_us\":%ld,\"converged\":%s,\"rejoins\":%llu,"
                "\"retransmissions_to_evicted\":%llu}\n",
                static_cast<unsigned long long>(seed), recovery_us,
                out.converged ? "true" : "false",
                static_cast<unsigned long long>(out.rejoins_completed),
                static_cast<unsigned long long>(out.retrans_to_evicted_probe2));
  }
  return 0;
}
