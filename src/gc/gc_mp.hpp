// Base class for group-communication microprotocols.
//
// Provides the optional Cactus-style manual lock: when GcOptions::
// manual_locks is set, every handler body runs under the microprotocol's
// own mutex (call guard() first thing). Under the VCA policies the guard
// is a no-op — the runtime's concurrency control already guarantees
// exclusive access per computation, which is the paper's whole point.
#pragma once

#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/context.hpp"
#include "core/microprotocol.hpp"
#include "gc/gc_options.hpp"

namespace samoa::gc {

/// Deferred event emission (C++ Core Guidelines CP.22: never call unknown
/// code while holding a lock). Handlers queue their outgoing events while
/// the microprotocol guard is held and flush them after releasing it, so
/// the manual-lock baseline can never deadlock on nested microprotocol
/// locks — the realistic discipline a careful Cactus programmer follows.
/// Under the VCA policies the guard is a no-op and the outbox merely
/// defers triggers to the end of the handler body, which is equivalent.
class Outbox {
 public:
  void trigger(const EventType& ev, Message msg) {
    entries_.push_back({ev, std::move(msg), Mode::kOne});
  }
  void trigger_all(const EventType& ev, Message msg) {
    entries_.push_back({ev, std::move(msg), Mode::kAll});
  }
  void async_trigger_all(const EventType& ev, Message msg) {
    entries_.push_back({ev, std::move(msg), Mode::kAsyncAll});
  }

  /// Emit everything in queueing order. Call WITHOUT holding the guard.
  void flush(Context& ctx) {
    for (auto& e : entries_) {
      switch (e.mode) {
        case Mode::kOne:
          ctx.trigger(e.ev, std::move(e.msg));
          break;
        case Mode::kAll:
          ctx.trigger_all(e.ev, std::move(e.msg));
          break;
        case Mode::kAsyncAll:
          ctx.async_trigger_all(e.ev, std::move(e.msg));
          break;
      }
    }
    entries_.clear();
  }

 private:
  enum class Mode { kOne, kAll, kAsyncAll };
  struct Entry {
    EventType ev;
    Message msg;
    Mode mode;
  };
  std::vector<Entry> entries_;
};

class GcMicroprotocol : public Microprotocol {
 protected:
  GcMicroprotocol(std::string name, const GcOptions& opts)
      : Microprotocol(std::move(name)), opts_(opts) {}

  /// Lock for this microprotocol's state iff manual synchronisation is on.
  std::unique_lock<std::mutex> guard() {
    if (opts_.manual_locks) return std::unique_lock(mu_);
    return std::unique_lock<std::mutex>();
  }

  const GcOptions& options() const { return opts_; }

 private:
  const GcOptions& opts_;
  std::mutex mu_;
};

}  // namespace samoa::gc
