// RelComm — reliable point-to-point communication (paper Section 3).
//
//   handler send (m, target): if (target in view) try to send m to target;
//   handler recv (m, sender): if (sender in view) asyncTriggerAll FromRComm m;
//   handler viewChange (new_view): view = new_view;
//
// "Try to send" is implemented with per-peer sequence numbers,
// acknowledgements, and timer-driven retransmission with capped
// exponential backoff (deterministically jittered from the seeded Rng);
// duplicate suppression keeps at-most-once delivery to the upper layers.
// Messages to targets outside the current view are silently discarded —
// the behaviour at the heart of the Section 3 consistency problem — and
// counted so experiments can observe exactly when the race bites.
//
// Crash-recovery hygiene: the viewChange handler garbage-collects every
// per-peer structure (unacked entries, flow-control backlog, dedup sets,
// sequence counters) for peers evicted from the view, so retransmissions
// to a dead peer stop at the view change instead of running forever, and
// a later re-join of the same site starts from clean sequence state on
// both sides.
#pragma once

#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class RelComm : public GcMicroprotocol {
 public:
  RelComm(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* send_handler() const { return send_; }
  const Handler* recv_data_handler() const { return recv_data_; }
  const Handler* recv_ack_handler() const { return recv_ack_; }
  const Handler* retransmit_handler() const { return retransmit_; }
  const Handler* view_change_handler() const { return view_change_; }

  /// Messages dropped because the target was not in the (possibly stale)
  /// local view — the Section 3 failure mode.
  std::uint64_t discarded_out_of_view() const { return discarded_out_of_view_.value(); }
  std::uint64_t discarded_unknown_sender() const { return discarded_unknown_sender_.value(); }
  std::uint64_t retransmissions() const { return retransmissions_.value(); }
  /// Retransmissions addressed to one specific peer — lets a chaos test
  /// assert that the counter stops growing once the peer left the view.
  std::uint64_t retransmissions_to(SiteId peer) const;
  /// Unacked/backlog entries dropped (and per-peer state wiped) because
  /// their target was evicted from the view.
  std::uint64_t view_change_drops() const { return view_change_drops_.value(); }
  std::uint64_t unacked_in_flight() const;
  /// Flow control introspection: sends deferred for lack of credits, and
  /// the peak per-peer in-flight count ever observed.
  std::uint64_t flow_deferred() const { return flow_deferred_.value(); }
  std::uint64_t peak_in_flight_per_peer() const { return peak_in_flight_.load(); }
  View view_snapshot();

 private:
  struct Pending {
    RcData data;
    SiteId target;
    Clock::time_point last_sent;
    std::chrono::microseconds rto{0};  // current (backed-off) timeout
  };

  void dispatch_send(Outbox& out, const AppMessage& m, SiteId target);
  /// Drop per-peer state for every peer outside `view_`; counts into
  /// view_change_drops_. Call with the guard held.
  void gc_evicted_peers();

  const GcEvents* events_ = nullptr;
  SiteId self_;
  View view_;
  Rng rng_;  // retransmission jitter; draws only inside handlers
  std::unordered_map<SiteId, std::uint64_t> out_seq_;
  std::map<std::pair<SiteId, std::uint64_t>, Pending> unacked_;  // (target, seq)
  std::unordered_map<SiteId, std::uint64_t> in_flight_;          // per-peer unacked count
  std::unordered_map<SiteId, std::deque<AppMessage>> backlog_;   // waiting for credits
  std::unordered_map<SiteId, std::set<std::uint64_t>> seen_;     // per-sender dedup
  std::unordered_map<SiteId, std::uint64_t> retrans_to_;  // per-peer retransmissions
  Counter discarded_out_of_view_;
  Counter discarded_unknown_sender_;
  Counter retransmissions_;
  Counter view_change_drops_;
  Counter flow_deferred_;
  std::atomic<std::uint64_t> peak_in_flight_{0};
  std::atomic<std::uint64_t> unacked_count_{0};  // mirror of unacked_.size() for cross-thread reads
  mutable std::mutex snap_mu_;  // guards cross-thread snapshots only

  const Handler* send_ = nullptr;
  const Handler* recv_data_ = nullptr;
  const Handler* recv_ack_ = nullptr;
  const Handler* retransmit_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
