#include "gc/membership.hpp"

#include <charconv>

namespace samoa::gc {

namespace {
constexpr std::string_view kPrefix = "!view";
}

std::string Membership::encode_op(char op, SiteId site) {
  return std::string(kPrefix) + op + std::to_string(site.value());
}

bool Membership::decode_op(const std::string& data, char& op, SiteId& site) {
  if (data.size() <= kPrefix.size() + 1 || data.compare(0, kPrefix.size(), kPrefix) != 0) {
    return false;
  }
  op = data[kPrefix.size()];
  if (op != '+' && op != '-') return false;
  SiteId::value_type value = 0;
  const char* begin = data.data() + kPrefix.size() + 1;
  const char* end = data.data() + data.size();
  if (std::from_chars(begin, end, value).ec != std::errc{}) return false;
  site = SiteId(value);
  return true;
}

Membership::Membership(const GcOptions& opts, const GcEvents& events, SiteId self,
                       View initial_view)
    : GcMicroprotocol("membership", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  history_.push_back(view_);

  joinleave_ = &register_handler("joinleave", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& req = m.as<JoinLeave>();
      out.trigger(events_->membership_abcast, Message::of(encode_op(req.op, req.site)));
    }
    out.flush(ctx);
  });

  on_adeliver_ = &register_handler("deliverView", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& del = m.as<ADelivery>();
      char op;
      SiteId site;
      if (!decode_op(del.m.data, op, site)) return;  // ordinary application message
      const View old_view = view_;
      const View next = op == '+' ? view_.with(site) : view_.without(site);
      install(out, next);
      if (op == '+' && old_view.contains(self_)) {
        // Every member of the previous view ships the new view plus the
        // ordering catch-up floors to the joining site (state-transfer
        // shortcut). The install travels over the raw transport, so the
        // redundancy is the loss protection; del.next_ordinal — the slot
        // after the one that ordered this very join op — is identical at
        // every member, so the duplicates agree.
        out.trigger(events_->transport_send,
                    Message::of(TransportSend{
                        site, Wire{ViewInstall{next.id(), next.members(), del.next_ordinal,
                                               order_floor_ ? order_floor_() : 0}}}));
      }
    }
    out.flush(ctx);
  });

  on_install_ = &register_handler("on_install", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto& vi = std::get<ViewInstall>(fw.wire);
      const View next(vi.view_id, vi.members);
      if (next.id() < view_.id()) return;  // stale install
      if (next.id() > view_.id()) {
        install(out, next);
        if (vi.next_instance > 0) joins_completed_.add();
      }
      // Catch-up floors are forwarded even when the view itself is a
      // duplicate: the ordering layers max-merge, and for the sequencer
      // floor only the (unknown) sequencer's copy is authoritative.
      if (vi.next_instance > 0) {
        out.trigger(events_->abcast_catchup, Message::of(vi.next_instance));
      }
      if (vi.next_seq > 0) {
        out.trigger(events_->seq_catchup, Message::of(vi.next_seq));
      }
    }
    out.flush(ctx);
  });
}

void Membership::install(Outbox& out, const View& next) {
  {
    std::unique_lock snap(snap_mu_);
    view_ = next;
    history_.push_back(next);
  }
  // Propagate the new view to every interested microprotocol — the
  // paper's synchronous triggerAll, delivering views in sequential order
  // (emitted once the membership guard is released).
  out.trigger_all(events_->view_change, Message::of(next));
}

View Membership::view_snapshot() {
  std::unique_lock snap(snap_mu_);
  return view_;
}

std::vector<View> Membership::installed_views() {
  std::unique_lock snap(snap_mu_);
  return history_;
}

}  // namespace samoa::gc
