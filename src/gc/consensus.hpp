// Distributed consensus — the substrate under atomic broadcast.
//
// One single-decree, Paxos-style instance per slot:
//   Phase 1  coordinator sends PREPARE(i, r); acceptors promise and report
//            their highest accepted (round, value).
//   Phase 2  coordinator picks the accepted value of the highest round
//            among a majority of promises (its own proposal otherwise) and
//            sends ACCEPT(i, r, v); acceptors accept and reply ACCEPTED.
//   Decide   on a majority of ACCEPTED the coordinator broadcasts
//            DECIDE(i, v); every site learns and hands the value up.
//
// The coordinator of instance i, attempt a is view.member_at(i + a);
// rounds are made proposer-unique by round = attempt * kRoundStride +
// self + 1. Attempts advance when the failure detector suspects the
// current coordinator or the retry timer finds the instance stuck, giving
// liveness under crashes and message loss (safety never depends on timing,
// as in Paxos).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class Consensus : public GcMicroprotocol {
 public:
  Consensus(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* propose_handler() const { return propose_; }
  const Handler* on_wire_handler() const { return on_wire_; }
  const Handler* on_suspect_handler() const { return on_suspect_; }
  const Handler* retry_handler() const { return retry_; }
  const Handler* view_change_handler() const { return view_change_; }

  std::uint64_t decided_count() const { return decided_count_.value(); }
  std::uint64_t rounds_started() const { return rounds_started_.value(); }
  std::uint64_t decision_pulls() const { return decision_pulls_.value(); }

  // Decision pull (gap repair). The ordering layer above reports the
  // instance it still waits for; if the retry tick finds that instance
  // undecided here while a *later* one has already decided, the group
  // moved past us and our copy of the frontier's DECIDE was lost. The
  // probe is a PREPARE with round 0 — never a real round, so undecided
  // acceptors ignore it (0 <= promised), while decided sites answer any
  // prepare with the decision. Wired before the stack spawns; must be
  // safe to call from the retry handler's thread without our guard.
  void set_frontier_source(std::function<std::uint64_t()> source) {
    frontier_source_ = std::move(source);
  }

 private:
  static constexpr std::uint64_t kRoundStride = 1u << 20;

  struct Instance {
    // Acceptor state.
    std::uint64_t promised = 0;
    std::uint64_t accepted_round = 0;
    std::optional<ConsensusValue> accepted_value;
    // Proposer state.
    bool have_proposal = false;
    ConsensusValue proposal;
    std::uint64_t attempt = 0;
    std::uint64_t my_round = 0;  // 0: not coordinating
    bool phase2 = false;
    std::map<SiteId, CsPromise> promises;
    std::set<SiteId> accepted_from;
    ConsensusValue chosen;
    Clock::time_point last_activity{};
    // Learner state.
    bool decided = false;
  };

  Instance& instance(std::uint64_t i);
  void try_coordinate(Outbox& out, std::uint64_t i);
  void broadcast(Outbox& out, const Wire& wire);
  void to(Outbox& out, SiteId site, const Wire& wire);

  void handle_prepare(Outbox& out, SiteId from, const CsPrepare& p);
  void handle_promise(Outbox& out, SiteId from, const CsPromise& p);
  void handle_accept(Outbox& out, SiteId from, const CsAccept& a);
  void handle_accepted(Outbox& out, SiteId from, const CsAccepted& a);
  void handle_decide(Outbox& out, const CsDecide& d);

  const GcEvents* events_;
  SiteId self_;
  View view_;
  std::unordered_map<std::uint64_t, Instance> instances_;
  Counter decided_count_;
  Counter rounds_started_;
  Counter decision_pulls_;
  std::function<std::uint64_t()> frontier_source_;

  const Handler* propose_ = nullptr;
  const Handler* on_wire_ = nullptr;
  const Handler* on_suspect_ = nullptr;
  const Handler* retry_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
