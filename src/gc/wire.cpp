#include "gc/wire.hpp"

namespace samoa::gc {

const char* wire_kind(const Wire& wire) {
  return std::visit(
      [](const auto& msg) -> const char* {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, RcData>) return "RcData";
        if constexpr (std::is_same_v<T, RcAck>) return "RcAck";
        if constexpr (std::is_same_v<T, FdHeartbeat>) return "FdHeartbeat";
        if constexpr (std::is_same_v<T, CsPrepare>) return "CsPrepare";
        if constexpr (std::is_same_v<T, CsPromise>) return "CsPromise";
        if constexpr (std::is_same_v<T, CsAccept>) return "CsAccept";
        if constexpr (std::is_same_v<T, CsAccepted>) return "CsAccepted";
        if constexpr (std::is_same_v<T, CsDecide>) return "CsDecide";
        if constexpr (std::is_same_v<T, ViewInstall>) return "ViewInstall";
        if constexpr (std::is_same_v<T, SwimPing>) return "SwimPing";
        if constexpr (std::is_same_v<T, SwimAck>) return "SwimAck";
        if constexpr (std::is_same_v<T, SwimPingReq>) return "SwimPingReq";
        return "?";
      },
      wire);
}

}  // namespace samoa::gc
