#include "gc/abcast.hpp"

#include <algorithm>

#include "gc/membership.hpp"

namespace samoa::gc {

ABcast::ABcast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view)
    : GcMicroprotocol("abcast", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  submit_ = &register_handler("submit", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      AppMessage msg{make_msg_id(self_, epoch_bits(options().id_epoch) | ++local_seq_),
                     m.as<std::string>(), /*atomic=*/true};
      submitted_.add();
      pending_.emplace(msg.id, msg);
      // Disseminate the payload reliably; ordering happens via consensus.
      out.trigger(events_->bcast, Message::of(msg));
      maybe_propose(out);
    }
    out.flush(ctx);
  });

  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& msg = m.as<AppMessage>();
      if (!msg.atomic) return;  // plain reliable broadcast: not ours to order
      if (!is_consensus_channel(msg.id)) return;  // another layer's traffic
      if (delivered_ids_.contains(msg.id) || pending_.contains(msg.id)) return;
      pending_.emplace(msg.id, msg);
      maybe_propose(out);
    }
    out.flush(ctx);
  });

  on_decide_ = &register_handler("on_decide", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& d = m.as<CsDecided>();
      decisions_.emplace(d.instance, d.value);
      apply_ready_decisions(out);
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    view_ = m.as<View>();
  });

  on_catchup_ = &register_handler("on_catchup", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto floor = m.as<std::uint64_t>();
      if (floor <= next_instance_) return;  // stale or bootstrap install
      next_instance_ = floor;
      frontier_.store(next_instance_, std::memory_order_release);
      rejoined_ = true;
      // Anything decided below the floor is pre-join history we must not
      // replay; anything we thought we proposed is void (fresh slate).
      decisions_.erase(decisions_.begin(), decisions_.lower_bound(next_instance_));
      proposed_.clear();
      maybe_propose(out);
    }
    out.flush(ctx);
  });
}

void ABcast::maybe_propose(Outbox& out) {
  if (pending_.empty()) return;
  if (proposed_.contains(next_instance_)) return;
  ConsensusValue batch;
  for (const auto& [id, msg] : pending_) {
    if (rejoined_ && msg_origin(id) != self_) continue;  // see rejoined_ in the header
    char op;
    SiteId site;
    if (Membership::decode_op(msg.data, op, site)) {
      // Membership ops ride in a slot of their own: a joiner's catch-up
      // floor is "the join op's slot + 1", which loses messages if app
      // payloads sort after the op inside the same batch. Every proposer
      // applies this rule, so no decided batch can mix them.
      if (batch.empty()) batch.push_back(msg);
      break;
    }
    batch.push_back(msg);
    if (batch.size() >= options().abcast_batch) break;
  }
  if (batch.empty()) return;  // rejoined and nothing self-originated pending
  proposed_.insert(next_instance_);
  out.trigger(events_->cs_propose, Message::of(CsPropose{next_instance_, std::move(batch)}));
}

void ABcast::apply_ready_decisions(Outbox& out) {
  auto it = decisions_.find(next_instance_);
  while (it != decisions_.end()) {
    ConsensusValue batch = it->second;
    decisions_.erase(it);
    std::sort(batch.begin(), batch.end(),
              [](const AppMessage& a, const AppMessage& b) { return a.id < b.id; });
    for (const AppMessage& msg : batch) {
      if (!delivered_ids_.insert(msg.id).second) continue;  // duplicate slot content
      pending_.erase(msg.id);
      delivered_count_.add();
      out.trigger_all(events_->adeliver, Message::of(ADelivery{msg, next_instance_ + 1}));
    }
    proposed_.erase(next_instance_);
    ++next_instance_;
    it = decisions_.find(next_instance_);
  }
  frontier_.store(next_instance_, std::memory_order_release);
  maybe_propose(out);
}

}  // namespace samoa::gc
