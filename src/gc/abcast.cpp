#include "gc/abcast.hpp"

#include <algorithm>

namespace samoa::gc {

ABcast::ABcast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view)
    : GcMicroprotocol("abcast", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  submit_ = &register_handler("submit", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      AppMessage msg{make_msg_id(self_, ++local_seq_), m.as<std::string>(), /*atomic=*/true};
      submitted_.add();
      pending_.emplace(msg.id, msg);
      // Disseminate the payload reliably; ordering happens via consensus.
      out.trigger(events_->bcast, Message::of(msg));
      maybe_propose(out);
    }
    out.flush(ctx);
  });

  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& msg = m.as<AppMessage>();
      if (!msg.atomic) return;  // plain reliable broadcast: not ours to order
      if (!is_consensus_channel(msg.id)) return;  // another layer's traffic
      if (delivered_ids_.contains(msg.id) || pending_.contains(msg.id)) return;
      pending_.emplace(msg.id, msg);
      maybe_propose(out);
    }
    out.flush(ctx);
  });

  on_decide_ = &register_handler("on_decide", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& d = m.as<CsDecided>();
      decisions_.emplace(d.instance, d.value);
      apply_ready_decisions(out);
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    view_ = m.as<View>();
  });
}

void ABcast::maybe_propose(Outbox& out) {
  if (pending_.empty()) return;
  if (proposed_.contains(next_instance_)) return;
  ConsensusValue batch;
  for (const auto& [id, msg] : pending_) {
    (void)id;
    batch.push_back(msg);
    if (batch.size() >= options().abcast_batch) break;
  }
  proposed_.insert(next_instance_);
  out.trigger(events_->cs_propose, Message::of(CsPropose{next_instance_, std::move(batch)}));
}

void ABcast::apply_ready_decisions(Outbox& out) {
  auto it = decisions_.find(next_instance_);
  while (it != decisions_.end()) {
    ConsensusValue batch = it->second;
    decisions_.erase(it);
    std::sort(batch.begin(), batch.end(),
              [](const AppMessage& a, const AppMessage& b) { return a.id < b.id; });
    for (const AppMessage& msg : batch) {
      if (!delivered_ids_.insert(msg.id).second) continue;  // duplicate slot content
      pending_.erase(msg.id);
      delivered_count_.add();
      out.trigger_all(events_->adeliver, Message::of(msg));
    }
    proposed_.erase(next_instance_);
    ++next_instance_;
    it = decisions_.find(next_instance_);
  }
  maybe_propose(out);
}

}  // namespace samoa::gc
