#include "gc/failure_detector.hpp"

#include "gc/wire.hpp"

namespace samoa::gc {

FailureDetector::FailureDetector(const GcOptions& opts, const GcEvents& events, SiteId self,
                                 View initial_view)
    : GcMicroprotocol("fd", opts), self_(self), view_(std::move(initial_view)) {
  on_heartbeat_ = &register_handler("on_heartbeat", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& fw = m.as<FromWire>();
    std::unique_lock snap(snap_mu_);
    last_heard_[fw.from] = options().now();
    if (suspected_.erase(fw.from) > 0) {
      revocations_.add();  // eventually-perfect: revoke on new evidence
    }
  });

  send_heartbeats_ = &register_handler("send_heartbeats",
                                       [this, &events](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      ++epoch_;
      for (SiteId site : view_.members()) {
        if (site == self_) continue;
        out.trigger(events.transport_send,
                    Message::of(TransportSend{site, Wire{FdHeartbeat{epoch_}}}));
      }
    }
    out.flush(ctx);
  });

  check_ = &register_handler("check", [this, &events](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      const auto now = options().now();
      std::unique_lock snap(snap_mu_);
      for (SiteId site : view_.members()) {
        if (site == self_) continue;
        auto it = last_heard_.find(site);
        // A peer we never heard from gets a full timeout from start-up;
        // seed its record on first check.
        if (it == last_heard_.end()) {
          last_heard_[site] = now;
          continue;
        }
        const bool overdue = now - it->second > options().fd_timeout;
        if (overdue && !suspected_.contains(site)) {
          suspected_.insert(site);
          suspicions_.add();
          out.trigger_all(events.suspect, Message::of(site));
        }
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    view_ = m.as<View>();
    const auto now = options().now();
    std::unique_lock snap(snap_mu_);
    for (auto it = suspected_.begin(); it != suspected_.end();) {
      it = view_.contains(*it) ? std::next(it) : suspected_.erase(it);
    }
    // Liveness records must track the view exactly. An evicted peer's
    // stale timestamp would otherwise survive into a later view: if the
    // peer restarts and rejoins, the very first check sees an ancient
    // last_heard_ and suspects it instantly. And a fresh joiner with no
    // record would ride on check's lazy seeding — one full fd_timeout of
    // instant-suspicion exposure if a check never ran between the install
    // and its first heartbeat. Prune and seed eagerly here instead.
    for (auto it = last_heard_.begin(); it != last_heard_.end();) {
      it = view_.contains(it->first) ? std::next(it) : last_heard_.erase(it);
    }
    for (SiteId site : view_.members()) {
      if (site == self_) continue;
      last_heard_.try_emplace(site, now);
    }
  });
}

bool FailureDetector::is_suspected(SiteId site) {
  std::unique_lock snap(snap_mu_);
  return suspected_.contains(site);
}

bool FailureDetector::tracks(SiteId site) const {
  std::unique_lock snap(snap_mu_);
  return last_heard_.contains(site);
}

}  // namespace samoa::gc
