// RelCast — reliable broadcast (paper Section 3).
//
//   handler bcast (m): for all site in view: trigger SendOut (m, site);
//   handler recv (m): if (new message m) { bcast m;
//                                          asyncTriggerAll DeliverOut m; }
//   handler viewChange (new_view): view = new_view;
//
// The recv-side rebroadcast guarantees all-or-nothing delivery within the
// view even if the original sender crashes mid-broadcast.
#pragma once

#include <unordered_set>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class RelCast : public GcMicroprotocol {
 public:
  RelCast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* bcast_handler() const { return bcast_; }
  const Handler* recv_handler() const { return recv_; }
  const Handler* view_change_handler() const { return view_change_; }

  std::uint64_t broadcasts() const { return broadcasts_.value(); }
  View view_snapshot();

 private:
  SiteId self_;
  View view_;
  std::unordered_set<MsgId> seen_;
  Counter broadcasts_;
  mutable std::mutex snap_mu_;

  const Handler* bcast_ = nullptr;
  const Handler* recv_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
