#include "gc/rel_comm.hpp"

#include "util/sync.hpp"

namespace samoa::gc {

RelComm::RelComm(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view)
    : GcMicroprotocol("relcomm", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  send_ = &register_handler("send", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& req = m.as<SendReq>();
      if (!view_.contains(req.target)) {
        // The Section 3 failure mode: with a stale local view the message
        // is silently discarded ("RelComm does not know about s").
        discarded_out_of_view_.add();
        return;
      }
      const std::size_t window = options().flow_window;
      if (window > 0 && in_flight_[req.target] >= window) {
        // Flow control: out of credits for this peer — queue until acks
        // free a slot (drained in recv_ack).
        backlog_[req.target].push_back(req.m);
        flow_deferred_.add();
        return;
      }
      dispatch_send(out, req.m, req.target);
    }
    out.flush(ctx);
  });

  recv_data_ = &register_handler("recv_data", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto& data = std::get<RcData>(fw.wire);
      // Always acknowledge — the sender believed we were a valid target,
      // and retransmitting into a check that keeps failing helps nobody.
      out.trigger(events_->transport_send,
                  Message::of(TransportSend{fw.from, Wire{RcAck{data.seq}}}));
      if (!view_.contains(fw.from)) {
        discarded_unknown_sender_.add();
      } else if (seen_[fw.from].insert(data.seq).second) {
        out.async_trigger_all(events_->from_rcomm, Message::of(data.body));
      }
    }
    out.flush(ctx);
  });

  recv_ack_ = &register_handler("recv_ack", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto& ack = std::get<RcAck>(fw.wire);
      if (unacked_.erase({fw.from, ack.seq}) > 0) {
        unacked_count_.fetch_sub(1, std::memory_order_relaxed);
        --in_flight_[fw.from];
        // Credits freed: drain the flow-control backlog for this peer.
        auto bit = backlog_.find(fw.from);
        const std::size_t window = options().flow_window;
        while (bit != backlog_.end() && !bit->second.empty() &&
               (window == 0 || in_flight_[fw.from] < window)) {
          dispatch_send(out, bit->second.front(), fw.from);
          bit->second.pop_front();
        }
      }
    }
    out.flush(ctx);
  });

  retransmit_ = &register_handler("retransmit", [this](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      const auto now = options().now();
      for (auto bit = backlog_.begin(); bit != backlog_.end();) {
        bit = view_.contains(bit->first) ? std::next(bit) : backlog_.erase(bit);
      }
      for (auto it = unacked_.begin(); it != unacked_.end();) {
        Pending& p = it->second;
        if (!view_.contains(p.target)) {
          --in_flight_[p.target];
          unacked_count_.fetch_sub(1, std::memory_order_relaxed);
          it = unacked_.erase(it);  // target evicted: give up
          continue;
        }
        if (now - p.last_sent >= options().retransmit_timeout) {
          p.last_sent = now;
          retransmissions_.add();
          out.trigger(events_->transport_send,
                      Message::of(TransportSend{p.target, Wire{p.data}}));
        }
        ++it;
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    // Widened race window (Section 3 experiment): the new view is adopted
    // only after this delay — deliberately *outside* the manual lock, so a
    // concurrent unsynchronised send can take the lock and read the stale
    // view while RelCast already uses the new one. Under the VCA policies
    // the whole computation is isolated and the placement is irrelevant.
    if (options().view_change_delay.count() > 0) spin_for(options().view_change_delay);
    auto lock = guard();
    std::unique_lock snap(snap_mu_);
    view_ = m.as<View>();
  });
}

void RelComm::dispatch_send(Outbox& out, const AppMessage& m, SiteId target) {
  const std::uint64_t seq = ++out_seq_[target];
  Pending p{RcData{seq, m}, target, options().now()};
  unacked_.emplace(std::make_pair(target, seq), p);
  unacked_count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now_in_flight = ++in_flight_[target];
  std::uint64_t peak = peak_in_flight_.load();
  while (now_in_flight > peak && !peak_in_flight_.compare_exchange_weak(peak, now_in_flight)) {
  }
  out.trigger(events_->transport_send, Message::of(TransportSend{target, Wire{p.data}}));
}

View RelComm::view_snapshot() {
  std::unique_lock snap(snap_mu_);
  return view_;
}

std::uint64_t RelComm::unacked_in_flight() const {
  return unacked_count_.load(std::memory_order_relaxed);
}

}  // namespace samoa::gc
