#include "gc/rel_comm.hpp"

#include "util/sync.hpp"

namespace samoa::gc {

RelComm::RelComm(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view)
    : GcMicroprotocol("relcomm", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)),
      rng_(opts.rng_seed ^ (0x9e3779b97f4a7c15ull * (self.value() + 1))) {
  send_ = &register_handler("send", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& req = m.as<SendReq>();
      if (!view_.contains(req.target)) {
        // The Section 3 failure mode: with a stale local view the message
        // is silently discarded ("RelComm does not know about s").
        discarded_out_of_view_.add();
        return;
      }
      const std::size_t window = options().flow_window;
      if (window > 0 && in_flight_[req.target] >= window) {
        // Flow control: out of credits for this peer — queue until acks
        // free a slot (drained in recv_ack).
        backlog_[req.target].push_back(req.m);
        flow_deferred_.add();
        return;
      }
      dispatch_send(out, req.m, req.target);
    }
    out.flush(ctx);
  });

  recv_data_ = &register_handler("recv_data", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto& data = std::get<RcData>(fw.wire);
      // Always acknowledge — the sender believed we were a valid target,
      // and retransmitting into a check that keeps failing helps nobody.
      out.trigger(events_->transport_send,
                  Message::of(TransportSend{fw.from, Wire{RcAck{data.seq}}}));
      if (!view_.contains(fw.from)) {
        discarded_unknown_sender_.add();
      } else if (seen_[fw.from].insert(data.seq).second) {
        out.async_trigger_all(events_->from_rcomm, Message::of(data.body));
      }
    }
    out.flush(ctx);
  });

  recv_ack_ = &register_handler("recv_ack", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto& ack = std::get<RcAck>(fw.wire);
      if (unacked_.erase({fw.from, ack.seq}) > 0) {
        unacked_count_.fetch_sub(1, std::memory_order_relaxed);
        --in_flight_[fw.from];
        // Credits freed: drain the flow-control backlog for this peer.
        auto bit = backlog_.find(fw.from);
        const std::size_t window = options().flow_window;
        while (bit != backlog_.end() && !bit->second.empty() &&
               (window == 0 || in_flight_[fw.from] < window)) {
          dispatch_send(out, bit->second.front(), fw.from);
          bit->second.pop_front();
        }
      }
    }
    out.flush(ctx);
  });

  retransmit_ = &register_handler("retransmit", [this](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      const auto now = options().now();
      for (auto bit = backlog_.begin(); bit != backlog_.end();) {
        bit = view_.contains(bit->first) ? std::next(bit) : backlog_.erase(bit);
      }
      for (auto it = unacked_.begin(); it != unacked_.end();) {
        Pending& p = it->second;
        if (!view_.contains(p.target)) {
          // Defence in depth: gc_evicted_peers() already dropped these at
          // the view change; anything racing in since counts the same way.
          --in_flight_[p.target];
          unacked_count_.fetch_sub(1, std::memory_order_relaxed);
          view_change_drops_.add();
          it = unacked_.erase(it);  // target evicted: give up
          continue;
        }
        if (now - p.last_sent >= p.rto) {
          p.last_sent = now;
          retransmissions_.add();
          {
            std::unique_lock snap(snap_mu_);
            ++retrans_to_[p.target];
          }
          // Capped exponential backoff with deterministic jitter: the next
          // deadline doubles (cap clamps the doubling, so compounded jitter
          // cannot drift past cap + cap/4) plus up to 1/4 extra so a fleet
          // of pendings to the same peer de-synchronises.
          auto next = p.rto * 2;
          if (next > options().retransmit_backoff_cap) next = options().retransmit_backoff_cap;
          if (next < options().retransmit_timeout) next = options().retransmit_timeout;
          p.rto = next + std::chrono::microseconds(rng_.next_below(
                             static_cast<std::uint64_t>(next.count() / 4) + 1));
          out.trigger(events_->transport_send,
                      Message::of(TransportSend{p.target, Wire{p.data}}));
        }
        ++it;
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    // Widened race window (Section 3 experiment): the new view is adopted
    // only after this delay — deliberately *outside* the manual lock, so a
    // concurrent unsynchronised send can take the lock and read the stale
    // view while RelCast already uses the new one. Under the VCA policies
    // the whole computation is isolated and the placement is irrelevant.
    if (options().view_change_delay.count() > 0) spin_for(options().view_change_delay);
    auto lock = guard();
    {
      std::unique_lock snap(snap_mu_);
      view_ = m.as<View>();
    }
    // Per-peer state for anyone evicted from the view is dead weight at
    // best (retransmissions to a crashed site would otherwise run forever)
    // and poison at worst (a stale dedup set would silently swallow a
    // rejoined incarnation's fresh sequence numbers).
    gc_evicted_peers();
  });
}

void RelComm::gc_evicted_peers() {
  for (auto it = unacked_.begin(); it != unacked_.end();) {
    const Pending& p = it->second;
    if (view_.contains(p.target)) {
      ++it;
      continue;
    }
    --in_flight_[p.target];
    unacked_count_.fetch_sub(1, std::memory_order_relaxed);
    view_change_drops_.add();
    it = unacked_.erase(it);
  }
  const auto evicted = [this](SiteId s) { return !view_.contains(s); };
  for (auto it = backlog_.begin(); it != backlog_.end();) {
    if (evicted(it->first)) {
      view_change_drops_.add(it->second.size());
      it = backlog_.erase(it);
    } else {
      ++it;
    }
  }
  // Dedup sets and sequence counters go too: Membership evicts a crashed
  // site before it can rejoin, so clearing here guarantees both sides of a
  // future re-join start from fresh sequence state. retrans_to_ survives
  // on purpose — it is a statistic, and tests sample it after eviction.
  for (auto it = seen_.begin(); it != seen_.end();)
    it = evicted(it->first) ? seen_.erase(it) : std::next(it);
  for (auto it = out_seq_.begin(); it != out_seq_.end();)
    it = evicted(it->first) ? out_seq_.erase(it) : std::next(it);
  for (auto it = in_flight_.begin(); it != in_flight_.end();)
    it = evicted(it->first) ? in_flight_.erase(it) : std::next(it);
}

void RelComm::dispatch_send(Outbox& out, const AppMessage& m, SiteId target) {
  const std::uint64_t seq = ++out_seq_[target];
  Pending p{RcData{seq, m}, target, options().now(), options().retransmit_timeout};
  unacked_.emplace(std::make_pair(target, seq), p);
  unacked_count_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t now_in_flight = ++in_flight_[target];
  std::uint64_t peak = peak_in_flight_.load();
  while (now_in_flight > peak && !peak_in_flight_.compare_exchange_weak(peak, now_in_flight)) {
  }
  out.trigger(events_->transport_send, Message::of(TransportSend{target, Wire{p.data}}));
}

View RelComm::view_snapshot() {
  std::unique_lock snap(snap_mu_);
  return view_;
}

std::uint64_t RelComm::retransmissions_to(SiteId peer) const {
  std::unique_lock snap(snap_mu_);
  auto it = retrans_to_.find(peer);
  return it == retrans_to_.end() ? 0 : it->second;
}

std::uint64_t RelComm::unacked_in_flight() const {
  return unacked_count_.load(std::memory_order_relaxed);
}

}  // namespace samoa::gc
