// Transport microprotocol: the boundary between the event world and the
// simulated network. Other microprotocols emit TransportSend events; this
// is the only component that talks to SimNetwork directly, so network
// access is itself gated by the isolation declarations like any other
// microprotocol state.
#pragma once

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "net/codec.hpp"
#include "net/sim_network.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class Transport : public GcMicroprotocol {
 public:
  Transport(const GcOptions& opts, const GcEvents& events, net::SimNetwork& net, SiteId self);

  const Handler* send_handler() const { return send_; }
  std::uint64_t sent() const { return sent_.value(); }

 private:
  net::SimNetwork& net_;
  SiteId self_;
  Counter sent_;
  const Handler* send_ = nullptr;
};

}  // namespace samoa::gc
