// SWIM gossip failure detector (Das, Gupta, Motivala 2002).
//
// Replaces all-to-all heartbeats with constant per-site probe load: every
// protocol period each site pings one randomized round-robin member; if
// the direct ack misses its deadline the prober asks k random proxies to
// ping-req the target on its behalf, and only when the whole period ends
// without any ack does the target become *suspected* — a state, not a
// verdict. A suspicion gossips through the fleet piggybacked on probe
// traffic; the accused refutes by re-announcing itself alive under a
// higher self-issued incarnation number, which outranks the suspicion
// wherever the two race. Suspicions that stand un-refuted for
// swim_suspect_periods harden into confirmed-faulty, which is what feeds
// the Suspect event into the unchanged consensus/view-change machinery.
//
// Dissemination is epidemic: membership updates ride in the spare bytes
// of pings/acks/ping-reqs, each update retransmitted ~3*log2(n) times
// before aging out (the paper's lambda*log n budget). No broadcast, no
// extra messages — detection and dissemination share the same O(n)
// traffic, which is the whole reason this scales where the heartbeat
// detector's O(n^2) does not.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "gc/detector.hpp"
#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class SwimDetector : public GcMicroprotocol, public Detector {
 public:
  SwimDetector(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* on_wire_handler() const { return on_wire_; }
  const Handler* tick_handler() const { return tick_; }
  const Handler* view_change_handler() const { return view_change_; }

  // Detector seam.
  bool is_suspected(SiteId site) override;
  std::uint64_t suspicions() const override { return suspicions_.value(); }
  std::uint64_t suspicion_revocations() const override { return revocations_.value(); }

  /// What this site currently believes about a peer (nullopt: not a
  /// member / self). Test introspection.
  std::optional<SwimStatus> status_of(SiteId site);

  /// This site's own incarnation number (bumped on each self-refutation).
  std::uint64_t incarnation() const;

  // Counters (fleet harness + E-SWIM bench).
  std::uint64_t refutations() const { return refutations_.value(); }
  std::uint64_t confirmations() const { return confirmations_.value(); }
  std::uint64_t probes_sent() const { return probes_sent_.value(); }
  std::uint64_t acks_sent() const { return acks_sent_.value(); }
  std::uint64_t ping_reqs_sent() const { return ping_reqs_sent_.value(); }
  std::uint64_t acks_relayed() const { return acks_relayed_.value(); }
  /// Protocol periods started (the bench's dissemination-round clock).
  std::uint64_t periods() const { return periods_.value(); }
  std::uint64_t updates_piggybacked() const { return updates_piggybacked_.value(); }

 private:
  struct Member {
    SwimStatus status = SwimStatus::kAlive;
    std::uint64_t incarnation = 0;
    Clock::time_point suspect_expiry{};
  };
  /// A buffered membership update with its remaining transmit budget.
  struct Gossip {
    SwimUpdate update;
    std::uint32_t sends_left = 0;
  };
  /// The one outstanding direct probe (at most one per period).
  struct Outstanding {
    SiteId target;
    std::uint64_t seq = 0;
    Clock::time_point direct_deadline{};  // miss -> ping-req through proxies
    Clock::time_point period_deadline{};  // miss -> suspect
    bool indirect_sent = false;
    bool active = false;
  };
  /// Proxy-side record of a ping-req being serviced: our own probe seq
  /// maps back to who asked and under which of *their* seqs to answer.
  struct Relay {
    SiteId origin;
    std::uint64_t origin_seq = 0;
    SiteId target;
    Clock::time_point expiry{};
  };

  // All private helpers assume guard() + snap_mu_ are held.
  void apply_update(const SwimUpdate& u, Clock::time_point now, Outbox& out);
  void enqueue_gossip(SwimUpdate u);
  /// Drain up to swim_piggyback_limit updates from the gossip buffer
  /// (freshest-first), decrementing budgets. `refute_hint`: also tell the
  /// addressee what we currently believe about *it* if that is not Alive,
  /// so a suspected/faulty-but-live peer learns it must refute.
  std::vector<SwimUpdate> make_updates(std::optional<SiteId> refute_hint);
  void suspect_locally(SiteId site, Clock::time_point now, Outbox& out);
  std::optional<SiteId> next_probe_target();
  std::uint32_t gossip_budget() const;
  Clock::time_point suspect_deadline(Clock::time_point now) const;

  const GcEvents& events_;
  SiteId self_;
  View view_;
  std::uint64_t self_incarnation_ = 0;
  std::unordered_map<SiteId, Member> members_;  // peers only (never self_)
  std::vector<Gossip> gossip_;
  Outstanding probe_;
  std::unordered_map<std::uint64_t, Relay> relays_;
  std::vector<SiteId> probe_order_;
  std::size_t probe_index_ = 0;
  std::uint64_t next_seq_ = 1;
  Clock::time_point next_period_{};
  Rng rng_;

  Counter suspicions_;
  Counter revocations_;
  Counter refutations_;
  Counter confirmations_;
  Counter probes_sent_;
  Counter acks_sent_;
  Counter ping_reqs_sent_;
  Counter acks_relayed_;
  Counter periods_;
  Counter updates_piggybacked_;
  mutable std::mutex snap_mu_;

  const Handler* on_wire_ = nullptr;
  const Handler* tick_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
