#include "gc/seq_abcast.hpp"

#include "net/codec.hpp"

namespace samoa::gc {

namespace {
constexpr char kMagic0 = '\x01';
constexpr char kMagic1 = 'S';
}  // namespace

bool SeqABcast::is_order_msg(const std::string& data) {
  return data.size() >= 2 && data[0] == kMagic0 && data[1] == kMagic1;
}

std::string SeqABcast::encode_order(MsgId id, std::uint64_t seq) {
  net::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(kMagic0));
  w.put_u8(static_cast<std::uint8_t>(kMagic1));
  w.put_varint(id);
  w.put_varint(seq);
  const auto bytes = w.take();
  return std::string(bytes.begin(), bytes.end());
}

bool SeqABcast::decode_order(const std::string& data, MsgId& id, std::uint64_t& seq) {
  if (!is_order_msg(data)) return false;
  const std::vector<std::uint8_t> bytes(data.begin(), data.end());
  net::ByteReader r(bytes);
  try {
    r.get_u8();
    r.get_u8();
    id = r.get_varint();
    seq = r.get_varint();
    return r.exhausted();
  } catch (const net::CodecError&) {
    return false;
  }
}

SeqABcast::SeqABcast(const GcOptions& opts, const GcEvents& events, SiteId self,
                     View initial_view)
    : GcMicroprotocol("seq_abcast", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  submit_ = &register_handler("submit", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      // MsgId subspace bit 29 keeps sequencer-abcast ids distinct.
      AppMessage msg{make_msg_id(self_, kSeqChannelBit | epoch_bits(options().id_epoch) |
                                            ++local_seq_),
                     m.as<std::string>(),
                     /*atomic=*/true};
      pending_.emplace(msg.id, msg);
      out.trigger(events_->bcast, Message::of(msg));
      maybe_sequence(out);
    }
    out.flush(ctx);
  });

  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& msg = m.as<AppMessage>();
      // Beware early returns here: everything queued on `out` must still
      // reach the flush below.
      if (!msg.atomic && is_order_msg(msg.data)) {
        // An order announcement from the (current or previous) sequencer.
        MsgId id;
        std::uint64_t seq;
        if (decode_order(msg.data, id, seq) && !ordered_ids_.contains(id) &&
            !order_.contains(seq)) {
          ordered_ids_.insert(id);
          order_.emplace(seq, id);
          if (seq >= next_assign_) {
            next_assign_ = seq + 1;  // takeover bookkeeping
            assign_mirror_.store(next_assign_, std::memory_order_relaxed);
          }
          maybe_deliver(out);
        }
      } else if (msg.atomic && in_channel(msg.id, kSeqChannelBit) &&
                 !delivered_ids_.contains(msg.id) && !pending_.contains(msg.id)) {
        pending_.emplace(msg.id, msg);
        maybe_sequence(out);
        maybe_deliver(out);
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      {
        std::unique_lock snap(snap_mu_);
        view_ = m.as<View>();
      }
      // Possibly just became the sequencer (takeover): sequence whatever
      // is pending and unordered.
      maybe_sequence(out);
    }
    out.flush(ctx);
  });

  on_catchup_ = &register_handler("on_catchup", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto floor = m.as<std::uint64_t>();
      if (floor <= next_deliver_) return;  // stale or bootstrap install
      // Fast-forward past the order history this rejoined incarnation will
      // never receive (announcements are not retransmitted to new
      // members). Anything already buffered below the floor is pre-join.
      next_deliver_ = floor;
      if (floor > next_assign_) {
        next_assign_ = floor;
        assign_mirror_.store(next_assign_, std::memory_order_relaxed);
      }
      order_.erase(order_.begin(), order_.lower_bound(next_deliver_));
      maybe_deliver(out);
    }
    out.flush(ctx);
  });
}

bool SeqABcast::is_sequencer() const {
  std::unique_lock snap(snap_mu_);
  return !view_.members().empty() && view_.members().front() == self_;
}

void SeqABcast::maybe_sequence(Outbox& out) {
  if (view_.members().empty() || view_.members().front() != self_) return;
  for (const auto& [id, msg] : pending_) {
    (void)msg;
    if (ordered_ids_.contains(id)) continue;
    const std::uint64_t seq = next_assign_++;
    assign_mirror_.store(next_assign_, std::memory_order_relaxed);
    ordered_ids_.insert(id);
    order_.emplace(seq, id);
    sequenced_.add();
    // Announce through RelCast so the mapping reaches every member
    // reliably (announcements are non-atomic payloads with a magic tag).
    // The epoch keeps a restarted takeover sequencer's announcement ids
    // distinct from its previous incarnation's (RelCast dedups by id).
    AppMessage announce{
        make_msg_id(self_, kSeqOrderChannelBit | epoch_bits(options().id_epoch) | seq),
        encode_order(id, seq),
        /*atomic=*/false};
    out.trigger(events_->bcast, Message::of(announce));
  }
  maybe_deliver(out);
}

void SeqABcast::maybe_deliver(Outbox& out) {
  for (;;) {
    auto it = order_.find(next_deliver_);
    if (it == order_.end()) return;  // order gap
    auto pit = pending_.find(it->second);
    if (pit == pending_.end()) return;  // payload not here yet
    const AppMessage msg = pit->second;
    pending_.erase(pit);
    delivered_ids_.insert(msg.id);
    ++next_deliver_;
    delivered_.add();
    out.trigger_all(events_->adeliver, Message::of(ADelivery{msg, next_deliver_}));
  }
}

}  // namespace samoa::gc
