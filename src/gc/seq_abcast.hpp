// SeqABcast — fixed-sequencer atomic broadcast.
//
// The classic alternative to consensus-per-slot ordering: payloads are
// disseminated with RelCast; the *sequencer* (the lowest-id member of the
// current view) assigns consecutive sequence numbers and announces the
// (message id -> seq) mapping through another reliable broadcast. Every
// site delivers messages in announced sequence order, waiting for both the
// payload and its order announcement.
//
// On a view change the new lowest-id member takes over, continuing from
// the highest announced sequence number it has observed (announcements are
// idempotent: the first announcement per message id wins, duplicates for
// an id or a seq are ignored).
//
// Trade-off vs the consensus implementation (measured in bench_abcast):
// per isolated message the sequencer needs only two message delays and no
// quorum round-trips, but it announces every message individually through
// the O(n^2) reliable broadcast while consensus batches a whole burst into
// one instance — so consensus wins on bursty workloads. Fault-tolerance
// also differs: a crashed sequencer stalls ordering until membership
// evicts it (which is why membership ops always order through consensus),
// whereas consensus itself only ever needs a live majority.
#pragma once

#include <atomic>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class SeqABcast : public GcMicroprotocol {
 public:
  SeqABcast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* submit_handler() const { return submit_; }
  const Handler* on_rdeliver_handler() const { return on_rdeliver_; }
  const Handler* view_change_handler() const { return view_change_; }
  const Handler* on_catchup_handler() const { return on_catchup_; }

  std::uint64_t delivered() const { return delivered_.value(); }
  std::uint64_t sequenced() const { return sequenced_.value(); }
  bool is_sequencer() const;

  /// Highest next-seq this site has observed (assignment counter at the
  /// sequencer, takeover bookkeeping elsewhere) — Membership ships it as
  /// the ViewInstall catch-up floor. The sequencer's own value is
  /// authoritative; the joiner max-merges across received installs.
  std::uint64_t order_floor() const { return assign_mirror_.load(std::memory_order_relaxed); }

  /// Order announcements travel as magic-prefixed RelCast payloads; the
  /// delivery sink uses this to filter them from application lists.
  static bool is_order_msg(const std::string& data);
  static std::string encode_order(MsgId id, std::uint64_t seq);
  static bool decode_order(const std::string& data, MsgId& id, std::uint64_t& seq);

 private:
  void maybe_sequence(Outbox& out);
  void maybe_deliver(Outbox& out);

  const GcEvents* events_;
  SiteId self_;
  View view_;
  std::uint64_t local_seq_ = 0;                       // MsgId subspace
  std::unordered_map<MsgId, AppMessage> pending_;     // payloads awaiting order/delivery
  std::unordered_set<MsgId> ordered_ids_;             // ids with an announcement
  std::map<std::uint64_t, MsgId> order_;              // seq -> id
  std::uint64_t next_assign_ = 1;                     // sequencer: next seq to hand out
  std::uint64_t next_deliver_ = 1;                    // everyone: next seq to deliver
  std::unordered_set<MsgId> delivered_ids_;
  Counter delivered_;
  Counter sequenced_;
  std::atomic<std::uint64_t> assign_mirror_{1};  // cross-thread copy of next_assign_
  mutable std::mutex snap_mu_;

  const Handler* submit_ = nullptr;
  const Handler* on_rdeliver_ = nullptr;
  const Handler* view_change_ = nullptr;
  const Handler* on_catchup_ = nullptr;
};

}  // namespace samoa::gc
