// GroupNode — one site's complete group-communication stack.
//
// Owns the Stack (Transport, RelComm, RelCast, FailureDetector, Consensus,
// ABcast, Membership, a delivery sink), its Runtime with the chosen
// concurrency-control policy, and a TimerService; registers with the
// SimNetwork and turns every network packet and timer tick into an
// `isolated` computation with the appropriate declaration.
//
// Design note: computations never block on remote events — all sends are
// fire-and-forget and every response arrives as a *new* external event, so
// version gates are strictly per-site and the paper's deadlock-freedom
// argument carries over to the distributed setting unchanged.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "gc/abcast.hpp"
#include "gc/causal_cast.hpp"
#include "gc/consensus.hpp"
#include "gc/events.hpp"
#include "gc/failure_detector.hpp"
#include "gc/gc_options.hpp"
#include "gc/membership.hpp"
#include "gc/rel_cast.hpp"
#include "gc/seq_abcast.hpp"
#include "gc/rel_comm.hpp"
#include "gc/swim.hpp"
#include "gc/transport.hpp"
#include "net/sim_network.hpp"
#include "net/timer_service.hpp"
#include "verify/vs_checker.hpp"

namespace samoa::gc {

/// Terminal microprotocol recording what the "application module" saw.
class DeliverSink : public GcMicroprotocol {
 public:
  DeliverSink(const GcOptions& opts, const GcEvents& events);

  const Handler* on_rdeliver_handler() const { return on_rdeliver_; }
  const Handler* on_adeliver_handler() const { return on_adeliver_; }
  const Handler* on_cdeliver_handler() const { return on_cdeliver_; }

  /// Reliable-broadcast deliveries (unordered), membership ops filtered.
  std::vector<AppMessage> rdelivered();
  /// Atomic-broadcast deliveries, in total order, membership ops filtered.
  std::vector<AppMessage> adelivered();
  /// Causal-broadcast deliveries, in causal order.
  std::vector<std::string> cdelivered();

  /// Provider of the current view id stamped on delivery records (wired
  /// by GroupNode to the membership view; unset disables recording).
  void set_view_source(std::function<std::uint64_t()> source) {
    view_source_ = std::move(source);
  }
  /// Atomic deliveries annotated with view + ordinal, for the
  /// virtual-synchrony checker.
  std::vector<verify::DeliveryRecord> delivery_records();

 private:
  mutable std::mutex mu_;
  std::vector<AppMessage> rdelivered_;
  std::vector<AppMessage> adelivered_;
  std::vector<std::string> cdelivered_;
  std::vector<verify::DeliveryRecord> records_;
  std::function<std::uint64_t()> view_source_;
  const Handler* on_rdeliver_ = nullptr;
  const Handler* on_adeliver_ = nullptr;
  const Handler* on_cdeliver_ = nullptr;
};

class GroupNode {
 public:
  /// Registers a site with `net`; the node's id is allocated there.
  GroupNode(net::SimNetwork& net, GcOptions opts);
  ~GroupNode();

  GroupNode(const GroupNode&) = delete;
  GroupNode& operator=(const GroupNode&) = delete;

  SiteId id() const { return self_; }

  /// Install the initial view and arm the periodic timers. Call exactly
  /// once, after every node of the experiment has been constructed.
  void start(View initial_view);

  /// Stop timers and detach from the network (simulated crash).
  void crash();

  /// Restart a crashed node as a fresh incarnation: the previous
  /// incarnation's trace is archived, every microprotocol is rebuilt from
  /// scratch (volatile state wiped — a crash loses everything), the
  /// MsgId epoch is bumped, and the site re-attaches to the network with
  /// timers re-armed. The node is NOT a group member afterwards: a current
  /// member must `request_join(id())` so the membership/state-transfer
  /// path installs a view (with ordering catch-up floors) on it.
  void restart();

  /// One finished lifetime of this node (archived by restart()).
  struct IncarnationArchive {
    std::vector<verify::DeliveryRecord> records;
    std::vector<AppMessage> adelivered;
    std::vector<View> views;
    std::uint64_t retransmissions = 0;
    std::uint64_t view_change_drops = 0;
    std::uint64_t joins_completed = 0;
  };
  std::vector<IncarnationArchive> archives() const;

  /// Incarnation number of the current lifetime (0 before any restart).
  std::uint64_t incarnation() const { return opts_.id_epoch; }

  /// Joins completed through the ViewInstall state-transfer path, summed
  /// over all incarnations — for a node started in the initial view this
  /// counts exactly its completed re-joins after crashes.
  std::uint64_t rejoins_completed() const;

  /// Retransmissions summed over all incarnations.
  std::uint64_t total_retransmissions() const;

  /// Every lifetime of this node as checker input: all archived
  /// incarnations (ended by a crash) plus the current one.
  std::vector<verify::IncarnationTrace> vs_traces() const;

  // --- Application API (each call is one external event) ---
  ComputationHandle rbcast(std::string data);
  ComputationHandle abcast(std::string data);
  ComputationHandle ccast(std::string data);  // causal-order broadcast
  ComputationHandle request_join(SiteId newcomer);
  ComputationHandle request_leave(SiteId member);

  // --- Introspection ---
  Runtime& runtime() { return *runtime_; }
  DeliverSink& sink() { return *sink_; }
  Membership& membership() { return *membership_; }
  RelComm& rel_comm() { return *relcomm_; }
  RelCast& rel_cast() { return *relcast_; }
  ABcast& ab() { return *abcast_; }
  CausalCast& causal() { return *causal_; }
  SeqABcast& seq_ab() { return *seq_abcast_; }
  Consensus& consensus() { return *consensus_; }
  FailureDetector& fd() { return *fd_; }
  SwimDetector& swim() { return *swim_; }
  /// The failure detector selected by GcOptions::detector_impl, behind
  /// the common seam (harnesses compare detectors through this).
  Detector& detector() {
    return opts_.detector_impl == DetectorImpl::kSwim ? static_cast<Detector&>(*swim_)
                                                      : static_cast<Detector&>(*fd_);
  }
  Transport& transport() { return *transport_; }
  const GcEvents& events() const { return events_; }
  const GcOptions& options() const { return opts_; }

  /// Stop the periodic timers (retransmit / heartbeat / fd / consensus
  /// retry). Needed before drain(): with timers armed, new computations
  /// keep arriving and the runtime never becomes idle.
  void stop_timers() { timers_.cancel_all(); }

  /// Wait until this node has no in-flight computations. Call
  /// stop_timers() first if the node should actually become idle.
  void drain() { runtime_->drain(); }

  /// Periodic tick computations skipped because the previous tick of the
  /// same class had not completed (see spawn_tick).
  std::uint64_t ticks_coalesced() const {
    return ticks_coalesced_.load(std::memory_order_relaxed);
  }

 private:
  enum class EventClass {
    kRcData,
    kRcAck,
    kFdHeartbeat,
    kSwimWire,
    kCsWire,
    kViewInstall,
    kRetransmitTick,
    kHeartbeatTick,
    kFdCheckTick,
    kSwimTick,
    kCsRetryTick,
    kApiRbcast,
    kApiAbcast,
    kApiCcast,
    kApiJoinLeave,
  };

  Isolation spec(EventClass klass) const;
  ComputationHandle spawn(EventClass klass, const EventType& ev, Message msg);
  /// Spawn a periodic tick computation unless the previous tick of the
  /// same class is still in flight (tick coalescing). A stalled stack —
  /// e.g. a view change blocking head-of-line — would otherwise accumulate
  /// one blocked computation per interval, unboundedly growing the thread
  /// pool; a tick re-run on the next interval observes the same state, so
  /// skipping loses nothing.
  void spawn_tick(std::size_t slot, EventClass klass, const EventType& ev);
  void on_packet(const net::Packet& packet);
  void build_stack();
  void bind_all();
  void arm_timers();
  void archive_incarnation();

  net::SimNetwork& net_;
  GcOptions opts_;
  GcEvents events_;
  SiteId self_;

  std::unique_ptr<Stack> stack_;
  Transport* transport_ = nullptr;
  RelComm* relcomm_ = nullptr;
  RelCast* relcast_ = nullptr;
  FailureDetector* fd_ = nullptr;
  SwimDetector* swim_ = nullptr;
  Consensus* consensus_ = nullptr;
  ABcast* abcast_ = nullptr;
  CausalCast* causal_ = nullptr;
  SeqABcast* seq_abcast_ = nullptr;
  Membership* membership_ = nullptr;
  DeliverSink* sink_ = nullptr;

  std::unique_ptr<Runtime> runtime_;
  // Tick-coalescing state is used by timer callbacks, so it must be
  // declared before timers_: the TimerService destructor joins its thread,
  // and anything declared after it would be destroyed while a callback
  // can still be running.
  std::mutex tick_mu_;
  std::array<ComputationHandle, 5> last_tick_;  // one slot per tick class
  std::atomic<std::uint64_t> ticks_coalesced_{0};
  net::TimerService timers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> rb_seq_{0};
  std::vector<IncarnationArchive> archives_;
  mutable std::mutex archive_mu_;
};

}  // namespace samoa::gc
