// GroupNode — one site's complete group-communication stack.
//
// Owns the Stack (Transport, RelComm, RelCast, FailureDetector, Consensus,
// ABcast, Membership, a delivery sink), its Runtime with the chosen
// concurrency-control policy, and a TimerService; registers with the
// SimNetwork and turns every network packet and timer tick into an
// `isolated` computation with the appropriate declaration.
//
// Design note: computations never block on remote events — all sends are
// fire-and-forget and every response arrives as a *new* external event, so
// version gates are strictly per-site and the paper's deadlock-freedom
// argument carries over to the distributed setting unchanged.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/runtime.hpp"
#include "gc/abcast.hpp"
#include "gc/causal_cast.hpp"
#include "gc/consensus.hpp"
#include "gc/events.hpp"
#include "gc/failure_detector.hpp"
#include "gc/gc_options.hpp"
#include "gc/membership.hpp"
#include "gc/rel_cast.hpp"
#include "gc/seq_abcast.hpp"
#include "gc/rel_comm.hpp"
#include "gc/transport.hpp"
#include "net/sim_network.hpp"
#include "net/timer_service.hpp"

namespace samoa::gc {

/// Terminal microprotocol recording what the "application module" saw.
class DeliverSink : public GcMicroprotocol {
 public:
  DeliverSink(const GcOptions& opts, const GcEvents& events);

  const Handler* on_rdeliver_handler() const { return on_rdeliver_; }
  const Handler* on_adeliver_handler() const { return on_adeliver_; }
  const Handler* on_cdeliver_handler() const { return on_cdeliver_; }

  /// Reliable-broadcast deliveries (unordered), membership ops filtered.
  std::vector<AppMessage> rdelivered();
  /// Atomic-broadcast deliveries, in total order, membership ops filtered.
  std::vector<AppMessage> adelivered();
  /// Causal-broadcast deliveries, in causal order.
  std::vector<std::string> cdelivered();

 private:
  mutable std::mutex mu_;
  std::vector<AppMessage> rdelivered_;
  std::vector<AppMessage> adelivered_;
  std::vector<std::string> cdelivered_;
  const Handler* on_rdeliver_ = nullptr;
  const Handler* on_adeliver_ = nullptr;
  const Handler* on_cdeliver_ = nullptr;
};

class GroupNode {
 public:
  /// Registers a site with `net`; the node's id is allocated there.
  GroupNode(net::SimNetwork& net, GcOptions opts);
  ~GroupNode();

  GroupNode(const GroupNode&) = delete;
  GroupNode& operator=(const GroupNode&) = delete;

  SiteId id() const { return self_; }

  /// Install the initial view and arm the periodic timers. Call exactly
  /// once, after every node of the experiment has been constructed.
  void start(View initial_view);

  /// Stop timers and detach from the network (simulated crash).
  void crash();

  // --- Application API (each call is one external event) ---
  ComputationHandle rbcast(std::string data);
  ComputationHandle abcast(std::string data);
  ComputationHandle ccast(std::string data);  // causal-order broadcast
  ComputationHandle request_join(SiteId newcomer);
  ComputationHandle request_leave(SiteId member);

  // --- Introspection ---
  Runtime& runtime() { return *runtime_; }
  DeliverSink& sink() { return *sink_; }
  Membership& membership() { return *membership_; }
  RelComm& rel_comm() { return *relcomm_; }
  RelCast& rel_cast() { return *relcast_; }
  ABcast& ab() { return *abcast_; }
  CausalCast& causal() { return *causal_; }
  SeqABcast& seq_ab() { return *seq_abcast_; }
  Consensus& consensus() { return *consensus_; }
  FailureDetector& fd() { return *fd_; }
  Transport& transport() { return *transport_; }
  const GcEvents& events() const { return events_; }
  const GcOptions& options() const { return opts_; }

  /// Stop the periodic timers (retransmit / heartbeat / fd / consensus
  /// retry). Needed before drain(): with timers armed, new computations
  /// keep arriving and the runtime never becomes idle.
  void stop_timers() { timers_.cancel_all(); }

  /// Wait until this node has no in-flight computations. Call
  /// stop_timers() first if the node should actually become idle.
  void drain() { runtime_->drain(); }

 private:
  enum class EventClass {
    kRcData,
    kRcAck,
    kFdHeartbeat,
    kCsWire,
    kViewInstall,
    kRetransmitTick,
    kHeartbeatTick,
    kFdCheckTick,
    kCsRetryTick,
    kApiRbcast,
    kApiAbcast,
    kApiCcast,
    kApiJoinLeave,
  };

  Isolation spec(EventClass klass) const;
  ComputationHandle spawn(EventClass klass, const EventType& ev, Message msg);
  void on_packet(const net::Packet& packet);
  void bind_all();

  net::SimNetwork& net_;
  GcOptions opts_;
  GcEvents events_;
  SiteId self_;

  Stack stack_;
  Transport* transport_ = nullptr;
  RelComm* relcomm_ = nullptr;
  RelCast* relcast_ = nullptr;
  FailureDetector* fd_ = nullptr;
  Consensus* consensus_ = nullptr;
  ABcast* abcast_ = nullptr;
  CausalCast* causal_ = nullptr;
  SeqABcast* seq_abcast_ = nullptr;
  Membership* membership_ = nullptr;
  DeliverSink* sink_ = nullptr;

  std::unique_ptr<Runtime> runtime_;
  net::TimerService timers_;
  std::atomic<bool> started_{false};
  std::atomic<bool> crashed_{false};
  std::atomic<std::uint64_t> rb_seq_{0};
};

}  // namespace samoa::gc
