// Group views.
//
// A view is the current set of sites considered non-faulty, kept
// consistent across all sites by the Membership microprotocol (paper
// Section 3). Views are immutable values: transforming a view produces a
// new one with an incremented identifier.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"

namespace samoa::gc {

class View {
 public:
  View() = default;
  View(std::uint64_t id, std::vector<SiteId> members);

  std::uint64_t id() const { return id_; }
  const std::vector<SiteId>& members() const { return members_; }
  std::size_t size() const { return members_.size(); }

  bool contains(SiteId site) const;

  /// Smallest quorum that intersects every other quorum.
  std::size_t majority() const { return members_.size() / 2 + 1; }

  /// The paper's `view op site` for op '+': id+1, members + site.
  View with(SiteId site) const;
  /// `view op site` for op '-': id+1, members - site.
  View without(SiteId site) const;

  /// Deterministic coordinator rotation (consensus round-robin).
  SiteId member_at(std::size_t index) const { return members_[index % members_.size()]; }

  std::string describe() const;

  friend bool operator==(const View& a, const View& b) {
    return a.id_ == b.id_ && a.members_ == b.members_;
  }

 private:
  std::uint64_t id_ = 0;
  std::vector<SiteId> members_;  // kept sorted
};

}  // namespace samoa::gc
