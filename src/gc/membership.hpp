// Membership — consistent group views (paper Section 3).
//
//   handler joinleave (op, site): trigger ABcast [op site];
//   handler deliverView (op, site): view = view op site;
//                                   triggerAll ViewChange view;
//
// View operations travel through atomic broadcast, so every member applies
// them in the same order and all local views stay consistent. A site being
// joined receives the freshly-installed view directly (ViewInstall) from
// every member of the previous view — redundant on purpose, since the
// install travels over the raw transport (no retransmission) and a lost
// install would strand the joiner. The install carries the ordering
// catch-up floors (see ViewInstall in wire.hpp); duplicates are harmless
// because the floors are max-merged and same-id installs are not
// re-installed. This is the state-transfer shortcut documented in
// DESIGN.md.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class Membership : public GcMicroprotocol {
 public:
  Membership(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* joinleave_handler() const { return joinleave_; }
  const Handler* on_adeliver_handler() const { return on_adeliver_; }
  const Handler* on_install_handler() const { return on_install_; }

  /// Encoding of membership operations inside AppMessage::data.
  static std::string encode_op(char op, SiteId site);
  /// Returns true and fills op/site if the payload is a membership op.
  static bool decode_op(const std::string& data, char& op, SiteId& site);

  View view_snapshot();
  std::vector<View> installed_views();

  /// Provider of the sequencer-abcast order floor shipped in ViewInstall
  /// (wired by GroupNode to SeqABcast::order_floor). Unset means 0.
  void set_order_floor_source(std::function<std::uint64_t()> source) {
    order_floor_ = std::move(source);
  }

  /// Joins completed via a received ViewInstall carrying catch-up floors —
  /// i.e. this incarnation entered an existing group through the
  /// state-transfer path (the bootstrap install of view 1 has no floors
  /// and does not count).
  std::uint64_t joins_completed() const { return joins_completed_.value(); }

 private:
  void install(Outbox& out, const View& next);

  const GcEvents* events_;
  SiteId self_;
  View view_;
  std::vector<View> history_;
  std::function<std::uint64_t()> order_floor_;
  Counter joins_completed_;
  mutable std::mutex snap_mu_;

  const Handler* joinleave_ = nullptr;
  const Handler* on_adeliver_ = nullptr;
  const Handler* on_install_ = nullptr;
};

}  // namespace samoa::gc
