// Failure-detector seam.
//
// Both detector implementations (heartbeat FailureDetector, gossip
// SwimDetector) publish suspicions the same way — triggerAll on the
// Suspect event feeding the unchanged consensus/view-change machinery —
// and expose the same introspection surface through this interface, so
// harnesses and benches can compare them without knowing which one a
// GroupNode was built with (`GcOptions::detector_impl` selects at
// runtime, `GroupNode::detector()` returns the active one).
#pragma once

#include <cstdint>

#include "util/ids.hpp"

namespace samoa::gc {

class Detector {
 public:
  virtual ~Detector() = default;

  /// Is `site` currently suspected (or, for SWIM, confirmed faulty)?
  /// Safe to call from any thread (snapshot-locked inside).
  virtual bool is_suspected(SiteId site) = 0;

  /// Total suspicions raised over the detector's lifetime.
  virtual std::uint64_t suspicions() const = 0;

  /// Suspicions withdrawn on new liveness evidence (heartbeat arrives
  /// again / an alive refutation with a newer incarnation gossips in) —
  /// the detector recovering from a false positive.
  virtual std::uint64_t suspicion_revocations() const = 0;
};

}  // namespace samoa::gc
