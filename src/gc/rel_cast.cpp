#include "gc/rel_cast.hpp"

namespace samoa::gc {

RelCast::RelCast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view)
    : GcMicroprotocol("relcast", opts), self_(self), view_(std::move(initial_view)) {
  bcast_ = &register_handler("bcast", [this, &events](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& msg = m.as<AppMessage>();
      // No dedup mark here: the origin's own copy arrives through loopback
      // and must still look "new" to recv, which performs local delivery
      // (this matches the paper's RelCast, where only recv filters).
      broadcasts_.add();
      // One SendOut per member, self included: local delivery flows
      // through the same loopback path as remote delivery.
      for (SiteId site : view_.members()) {
        out.trigger(events.send_out, Message::of(SendReq{msg, site}));
      }
    }
    out.flush(ctx);
  });

  recv_ = &register_handler("recv", [this, &events](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& msg = m.as<AppMessage>();
      if (!seen_.insert(msg.id).second) return;  // not a new message
      // Rebroadcast first (all-or-nothing even if the origin crashed),
      // then deliver locally.
      for (SiteId site : view_.members()) {
        out.trigger(events.send_out, Message::of(SendReq{msg, site}));
      }
      broadcasts_.add();
      out.async_trigger_all(events.deliver_out, Message::of(msg));
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    std::unique_lock snap(snap_mu_);
    view_ = m.as<View>();
  });
}

View RelCast::view_snapshot() {
  std::unique_lock snap(snap_mu_);
  return view_;
}

}  // namespace samoa::gc
