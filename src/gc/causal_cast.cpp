#include "gc/causal_cast.hpp"

#include <algorithm>

#include "net/codec.hpp"

namespace samoa::gc {

namespace {
// Two-byte magic prefix marking a causal header inside AppMessage::data.
constexpr char kMagic0 = '\x01';
constexpr char kMagic1 = 'V';
}  // namespace

std::string CausalCast::encode(const CausalMsg& msg) {
  net::ByteWriter w;
  w.put_u8(static_cast<std::uint8_t>(kMagic0));
  w.put_u8(static_cast<std::uint8_t>(kMagic1));
  w.put_varint(msg.origin.value());
  w.put_varint(msg.vc.size());
  for (const auto& [site, clock] : msg.vc) {
    w.put_varint(site.value());
    w.put_varint(clock);
  }
  w.put_string(msg.payload);
  const auto bytes = w.take();
  return std::string(bytes.begin(), bytes.end());
}

bool CausalCast::decode(const std::string& data, CausalMsg& out) {
  if (data.size() < 2 || data[0] != kMagic0 || data[1] != kMagic1) return false;
  const std::vector<std::uint8_t> bytes(data.begin(), data.end());
  net::ByteReader r(bytes);
  try {
    r.get_u8();
    r.get_u8();
    out.origin = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
    const auto n = r.get_varint();
    if (n > r.remaining()) return false;
    out.vc.clear();
    for (std::uint64_t i = 0; i < n; ++i) {
      const auto site = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
      out.vc[site] = r.get_varint();
    }
    out.payload = r.get_string();
    return r.exhausted();
  } catch (const net::CodecError&) {
    return false;
  }
}

CausalCast::CausalCast(const GcOptions& opts, const GcEvents& events, SiteId self,
                       View initial_view)
    : GcMicroprotocol("causal", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  submit_ = &register_handler("submit", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      CausalMsg msg;
      msg.origin = self_;
      ++vc_[self_];
      msg.vc = vc_;
      msg.payload = m.as<std::string>();
      // Own messages are delivered locally right away (they causally
      // depend only on what this site already delivered).
      delivered_.add();
      out.trigger_all(events_->causal_deliver, Message::of(msg.payload));
      // MsgId subspace bit 30 keeps causal ids apart from abcast / rbcast.
      AppMessage app{make_msg_id(self_, kCausalChannelBit | epoch_bits(options().id_epoch) |
                                            ++local_seq_),
                     encode(msg),
                     /*atomic=*/false};
      out.trigger(events_->bcast, Message::of(app));
    }
    out.flush(ctx);
  });

  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& app = m.as<AppMessage>();
      CausalMsg msg;
      if (app.atomic || !decode(app.data, msg)) return;  // not a causal broadcast
      if (msg.origin == self_) return;                   // delivered at submit
      if (msg.vc.count(msg.origin) == 0) return;         // malformed header
      if (msg.vc.at(msg.origin) <= vc_[msg.origin]) return;  // duplicate/old
      if (deliverable(msg)) {
        deliver(out, msg);
        drain_buffer(out);
      } else {
        buffered_.add();
        buffer_.push_back(std::move(msg));
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    view_ = m.as<View>();
  });
}

bool CausalCast::deliverable(const CausalMsg& m) const {
  for (const auto& [site, clock] : m.vc) {
    auto it = vc_.find(site);
    const std::uint64_t mine = it == vc_.end() ? 0 : it->second;
    if (site == m.origin) {
      if (clock != mine + 1) return false;  // must be the next from origin
    } else if (clock > mine) {
      return false;  // missing a causal predecessor from `site`
    }
  }
  return true;
}

void CausalCast::deliver(Outbox& out, const CausalMsg& m) {
  vc_[m.origin] = m.vc.at(m.origin);
  delivered_.add();
  out.trigger_all(events_->causal_deliver, Message::of(m.payload));
}

void CausalCast::drain_buffer(Outbox& out) {
  bool progressed = true;
  while (progressed) {
    progressed = false;
    for (auto it = buffer_.begin(); it != buffer_.end(); ++it) {
      if (deliverable(*it)) {
        CausalMsg m = std::move(*it);
        buffer_.erase(it);
        deliver(out, m);
        progressed = true;
        break;  // iterator invalidated; rescan
      }
    }
  }
}

}  // namespace samoa::gc
