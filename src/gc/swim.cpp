#include "gc/swim.hpp"

#include <algorithm>
#include <bit>

namespace samoa::gc {

namespace {

/// ceil(log2(n)) for n >= 1 (0 for n <= 1).
std::uint32_t log2_ceil(std::uint64_t n) {
  if (n <= 1) return 0;
  return static_cast<std::uint32_t>(std::bit_width(n - 1));
}

}  // namespace

SwimDetector::SwimDetector(const GcOptions& opts, const GcEvents& events, SiteId self,
                           View initial_view)
    : GcMicroprotocol("swim", opts),
      events_(events),
      self_(self),
      view_(std::move(initial_view)),
      // Distinct stream per site (and from RelComm's jitter stream).
      rng_(opts.rng_seed ^ (0xb5ad4eceda1ce2a9ull * (self.value() + 1))) {
  for (SiteId site : view_.members()) {
    if (site == self_) continue;
    members_.try_emplace(site);
    probe_order_.push_back(site);
  }
  probe_index_ = probe_order_.size();  // force a shuffle before the first probe

  on_wire_ = &register_handler("on_wire", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      const auto now = options().now();
      std::unique_lock snap(snap_mu_);
      std::visit(
          [&](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            // Piggybacked updates apply whatever the carrier message is —
            // dissemination is independent of the probe state machine.
            if constexpr (std::is_same_v<T, SwimPing> || std::is_same_v<T, SwimAck> ||
                          std::is_same_v<T, SwimPingReq>) {
              for (const auto& u : msg.updates) apply_update(u, now, out);
            }
            if constexpr (std::is_same_v<T, SwimPing>) {
              out.trigger(events_.transport_send,
                          Message::of(TransportSend{
                              fw.from, Wire{SwimAck{msg.seq, self_, make_updates(fw.from)}}}));
              acks_sent_.add();
            } else if constexpr (std::is_same_v<T, SwimPingReq>) {
              // Probe the target on the origin's behalf under our own seq;
              // the relay slot routes the eventual ack back.
              const std::uint64_t relay_seq = next_seq_++;
              relays_[relay_seq] =
                  Relay{fw.from, msg.seq, msg.target,
                        now + options().swim_probe_interval};
              out.trigger(events_.transport_send,
                          Message::of(TransportSend{
                              msg.target, Wire{SwimPing{relay_seq, make_updates(msg.target)}}}));
              probes_sent_.add();
            } else if constexpr (std::is_same_v<T, SwimAck>) {
              if (probe_.active && msg.seq == probe_.seq && msg.on_behalf_of == probe_.target) {
                probe_.active = false;  // target vouched for, period satisfied
              } else if (auto it = relays_.find(msg.seq); it != relays_.end()) {
                const Relay r = it->second;
                relays_.erase(it);
                out.trigger(events_.transport_send,
                            Message::of(TransportSend{
                                r.origin,
                                Wire{SwimAck{r.origin_seq, msg.on_behalf_of, make_updates(r.origin)}}}));
                acks_relayed_.add();
              }
            }
          },
          fw.wire);
    }
    out.flush(ctx);
  });

  tick_ = &register_handler("probe_tick", [this](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      const auto now = options().now();
      std::unique_lock snap(snap_mu_);

      // 1. Un-refuted suspicions harden into confirmed faulty. The site
      // stays a member (and stays probed) until the view-change machinery
      // evicts it — which is also what lets a partitioned-but-live peer
      // resurrect itself with a higher incarnation after the link heals.
      for (auto& [site, member] : members_) {
        if (member.status == SwimStatus::kSuspect && now >= member.suspect_expiry) {
          member.status = SwimStatus::kFaulty;
          confirmations_.add();
          enqueue_gossip({SwimStatus::kFaulty, site, member.incarnation});
        }
      }
      // 2. Expire relay slots whose acks never came.
      for (auto it = relays_.begin(); it != relays_.end();) {
        it = now >= it->second.expiry ? relays_.erase(it) : std::next(it);
      }
      // 3. Outstanding probe: escalate to indirect probing at the direct
      // deadline, suspect at the period deadline.
      if (probe_.active) {
        if (now >= probe_.period_deadline) {
          const SiteId target = probe_.target;
          probe_.active = false;
          suspect_locally(target, now, out);
        } else if (now >= probe_.direct_deadline && !probe_.indirect_sent) {
          probe_.indirect_sent = true;
          std::vector<SiteId> proxies;
          for (SiteId site : view_.members()) {
            if (site == self_ || site == probe_.target) continue;
            auto it = members_.find(site);
            if (it != members_.end() && it->second.status == SwimStatus::kAlive) {
              proxies.push_back(site);
            }
          }
          // Partial Fisher-Yates: the first k entries become the proxy set.
          const std::size_t k = std::min(options().swim_indirect_k, proxies.size());
          for (std::size_t i = 0; i < k; ++i) {
            const std::size_t j = i + static_cast<std::size_t>(
                                          rng_.next_below(proxies.size() - i));
            std::swap(proxies[i], proxies[j]);
            out.trigger(events_.transport_send,
                        Message::of(TransportSend{
                            proxies[i],
                            Wire{SwimPingReq{probe_.seq, probe_.target,
                                             make_updates(proxies[i])}}}));
            ping_reqs_sent_.add();
          }
        }
      }
      // 4. Start the next protocol period.
      if (now >= next_period_) {
        next_period_ = now + options().swim_probe_interval;
        periods_.add();
        if (auto target = next_probe_target()) {
          probe_ = Outstanding{*target, next_seq_++, now + options().swim_ack_timeout,
                               next_period_, false, true};
          out.trigger(events_.transport_send,
                      Message::of(TransportSend{
                          *target, Wire{SwimPing{probe_.seq, make_updates(*target)}}}));
          probes_sent_.add();
        }
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    const View next = m.as<View>();
    std::unique_lock snap(snap_mu_);
    view_ = next;
    for (auto it = members_.begin(); it != members_.end();) {
      it = view_.contains(it->first) ? std::next(it) : members_.erase(it);
    }
    for (SiteId site : view_.members()) {
      if (site == self_) continue;
      members_.try_emplace(site);  // joiners start Alive at incarnation 0
    }
    std::erase_if(gossip_, [this](const Gossip& g) {
      return g.update.site != self_ && !view_.contains(g.update.site);
    });
    if (probe_.active && !view_.contains(probe_.target)) probe_.active = false;
    probe_order_.clear();
    for (SiteId site : view_.members()) {
      if (site != self_) probe_order_.push_back(site);
    }
    probe_index_ = probe_order_.size();  // reshuffle on next pick
  });
}

void SwimDetector::apply_update(const SwimUpdate& u, Clock::time_point now, Outbox& out) {
  if (u.site == self_) {
    // Someone thinks we are suspect/faulty. Refute: outbid the accusation
    // with a fresh incarnation only we can issue.
    if (u.status != SwimStatus::kAlive && u.incarnation >= self_incarnation_) {
      self_incarnation_ = u.incarnation + 1;
      refutations_.add();
      enqueue_gossip({SwimStatus::kAlive, self_, self_incarnation_});
    }
    return;
  }
  auto it = members_.find(u.site);
  if (it == members_.end()) return;  // stale gossip about an evicted site
  Member& m = it->second;
  bool changed = false;
  switch (u.status) {
    case SwimStatus::kAlive:
      // A higher incarnation is proof of life issued by the subject
      // itself after the accusation — it overrides suspect and (unlike
      // strict SWIM, which removes faulty members immediately) also
      // confirmed-faulty, since here eviction is the view change's job
      // and a healed partition must be able to un-declare its victims.
      if (u.incarnation > m.incarnation) {
        if (m.status != SwimStatus::kAlive) revocations_.add();
        m.status = SwimStatus::kAlive;
        m.incarnation = u.incarnation;
        changed = true;
      }
      break;
    case SwimStatus::kSuspect:
      if (u.incarnation > m.incarnation ||
          (u.incarnation == m.incarnation && m.status == SwimStatus::kAlive)) {
        const bool newly = m.status == SwimStatus::kAlive;
        m.status = SwimStatus::kSuspect;
        m.incarnation = u.incarnation;
        m.suspect_expiry = suspect_deadline(now);
        changed = true;
        if (newly) {
          suspicions_.add();
          out.trigger_all(events_.suspect, Message::of(u.site));
        }
      }
      break;
    case SwimStatus::kFaulty:
      if (m.status != SwimStatus::kFaulty && u.incarnation >= m.incarnation) {
        const bool newly = m.status == SwimStatus::kAlive;
        m.status = SwimStatus::kFaulty;
        m.incarnation = std::max(m.incarnation, u.incarnation);
        changed = true;
        if (newly) {
          suspicions_.add();
          out.trigger_all(events_.suspect, Message::of(u.site));
        }
      }
      break;
  }
  if (changed) enqueue_gossip({m.status, u.site, m.incarnation});
}

void SwimDetector::enqueue_gossip(SwimUpdate u) {
  // At most one buffered update per subject: a newer state obsoletes
  // whatever was still in flight about the same site.
  std::erase_if(gossip_, [&](const Gossip& g) { return g.update.site == u.site; });
  gossip_.push_back({u, gossip_budget()});
}

std::vector<SwimUpdate> SwimDetector::make_updates(std::optional<SiteId> refute_hint) {
  std::vector<SwimUpdate> updates;
  const std::size_t limit = options().swim_piggyback_limit;
  if (limit == 0) return updates;
  // Freshest-first: highest remaining budget means most recently learned.
  // stable_sort keeps insertion order among equals, so selection is
  // deterministic and every buffered update eventually gets its turns.
  std::stable_sort(gossip_.begin(), gossip_.end(),
                   [](const Gossip& a, const Gossip& b) { return a.sends_left > b.sends_left; });
  for (auto& g : gossip_) {
    if (updates.size() >= limit) break;
    updates.push_back(g.update);
    --g.sends_left;
  }
  std::erase_if(gossip_, [](const Gossip& g) { return g.sends_left == 0; });
  // Refutation hint: if we believe the addressee itself is suspect or
  // faulty, say so to its face — a live addressee then refutes with a
  // bumped incarnation instead of waiting for third-party gossip that may
  // have aged out of every buffer.
  if (refute_hint) {
    if (auto it = members_.find(*refute_hint);
        it != members_.end() && it->second.status != SwimStatus::kAlive &&
        std::none_of(updates.begin(), updates.end(),
                     [&](const SwimUpdate& u) { return u.site == *refute_hint; })) {
      updates.push_back({it->second.status, *refute_hint, it->second.incarnation});
    }
  }
  updates_piggybacked_.add(updates.size());
  return updates;
}

void SwimDetector::suspect_locally(SiteId site, Clock::time_point now, Outbox& out) {
  auto it = members_.find(site);
  if (it == members_.end() || it->second.status != SwimStatus::kAlive) return;
  it->second.status = SwimStatus::kSuspect;
  it->second.suspect_expiry = suspect_deadline(now);
  suspicions_.add();
  enqueue_gossip({SwimStatus::kSuspect, site, it->second.incarnation});
  out.trigger_all(events_.suspect, Message::of(site));
}

std::optional<SiteId> SwimDetector::next_probe_target() {
  if (probe_order_.empty()) return std::nullopt;
  for (std::size_t scanned = 0; scanned <= probe_order_.size(); ++scanned) {
    if (probe_index_ >= probe_order_.size()) {
      // Randomized round-robin (SWIM section 4.3): every member is probed
      // exactly once per pass, passes are independently shuffled — worst
      // case detection time is bounded at 2 passes, unlike pure random
      // selection which starves targets with positive probability.
      for (std::size_t i = probe_order_.size() - 1; i > 0; --i) {
        const std::size_t j = static_cast<std::size_t>(rng_.next_below(i + 1));
        std::swap(probe_order_[i], probe_order_[j]);
      }
      probe_index_ = 0;
    }
    const SiteId site = probe_order_[probe_index_++];
    if (members_.contains(site)) return site;
  }
  return std::nullopt;
}

std::uint32_t SwimDetector::gossip_budget() const {
  if (options().swim_gossip_transmissions != 0) return options().swim_gossip_transmissions;
  return 3 * std::max<std::uint32_t>(1, log2_ceil(std::max<std::uint64_t>(view_.size(), 2)));
}

Clock::time_point SwimDetector::suspect_deadline(Clock::time_point now) const {
  return now + options().swim_suspect_periods * options().swim_probe_interval;
}

bool SwimDetector::is_suspected(SiteId site) {
  std::unique_lock snap(snap_mu_);
  auto it = members_.find(site);
  return it != members_.end() && it->second.status != SwimStatus::kAlive;
}

std::optional<SwimStatus> SwimDetector::status_of(SiteId site) {
  std::unique_lock snap(snap_mu_);
  auto it = members_.find(site);
  if (it == members_.end()) return std::nullopt;
  return it->second.status;
}

std::uint64_t SwimDetector::incarnation() const {
  std::unique_lock snap(snap_mu_);
  return self_incarnation_;
}

}  // namespace samoa::gc
