// Atomic broadcast on top of reliable broadcast + consensus.
//
// Submitted messages are disseminated with RelCast (so every site
// eventually buffers the payload) while consensus instances agree, slot by
// slot, on the batch of message ids delivered next. All sites deliver the
// same batches in the same slot order, and batches are sorted by message
// id — total order. Decisions arriving out of slot order are buffered
// until the gap closes.
#pragma once

#include <atomic>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class ABcast : public GcMicroprotocol {
 public:
  ABcast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* submit_handler() const { return submit_; }
  const Handler* on_rdeliver_handler() const { return on_rdeliver_; }
  const Handler* on_decide_handler() const { return on_decide_; }
  const Handler* view_change_handler() const { return view_change_; }
  const Handler* on_catchup_handler() const { return on_catchup_; }

  std::uint64_t submitted() const { return submitted_.value(); }
  std::uint64_t delivered() const { return delivered_count_.value(); }
  // Readable without the microprotocol guard (atomic mirror): consensus'
  // decision pull polls this from its own handler thread.
  std::uint64_t next_instance() const { return frontier_.load(std::memory_order_acquire); }

 private:
  void maybe_propose(Outbox& out);
  void apply_ready_decisions(Outbox& out);

  const GcEvents* events_;
  SiteId self_;
  View view_;
  std::uint64_t local_seq_ = 0;
  std::map<MsgId, AppMessage> pending_;           // buffered, not yet ordered
  std::unordered_set<MsgId> delivered_ids_;
  std::uint64_t next_instance_ = 1;
  std::atomic<std::uint64_t> frontier_{1};  // mirror of next_instance_
  std::unordered_set<std::uint64_t> proposed_;    // instances we proposed for
  std::map<std::uint64_t, ConsensusValue> decisions_;  // out-of-order buffer
  // Set by on_catchup (rejoin): this incarnation only proposes messages it
  // originated itself. RelCast rebroadcasts can hand a rejoined site
  // payloads the group already delivered before its join; a fresh
  // delivered_ids_ cannot recognise them, and proposing one would deliver
  // it here while every peer dedup-skips it — a virtual-synchrony
  // violation. Peers that held the message legitimately propose it.
  bool rejoined_ = false;
  Counter submitted_;
  Counter delivered_count_;

  const Handler* submit_ = nullptr;
  const Handler* on_rdeliver_ = nullptr;
  const Handler* on_decide_ = nullptr;
  const Handler* view_change_ = nullptr;
  const Handler* on_catchup_ = nullptr;
};

}  // namespace samoa::gc
