// Wire format of the group-communication stack.
//
// Everything crossing the simulated network is one of these structs inside
// a `Wire` variant. In-process simulation needs no byte serialization, but
// the types are value-only (no pointers into node state), so a real codec
// could be slotted underneath without touching the protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "gc/view.hpp"
#include "util/ids.hpp"

namespace samoa::gc {

/// Globally unique application-message id: origin site in the high bits,
/// per-origin sequence number in the low bits.
using MsgId = std::uint64_t;

inline MsgId make_msg_id(SiteId origin, std::uint64_t seq) {
  return (static_cast<MsgId>(origin.value()) << 32) | (seq & 0xFFFFFFFFull);
}
inline SiteId msg_origin(MsgId id) { return SiteId(static_cast<SiteId::value_type>(id >> 32)); }

/// Channel bits inside the per-origin sequence part of a MsgId. Several
/// broadcast layers share RelCast for dissemination; the bits let each
/// layer recognise its own messages in the DeliverOut fan-out (a layer
/// would otherwise order another layer's traffic). 29 bits of sequence
/// per channel per origin is plenty for any simulated run.
constexpr std::uint64_t kSeqChannelBit = 1ull << 29;     // sequencer abcast payloads
constexpr std::uint64_t kSeqOrderChannelBit = 1ull << 28;  // sequencer announcements
constexpr std::uint64_t kCausalChannelBit = 1ull << 30;  // causal broadcasts
constexpr std::uint64_t kPlainChannelBit = 1ull << 31;   // plain reliable broadcasts

/// Incarnation epoch, bits 24..27 of the per-origin sequence. A restarted
/// site wipes its volatile sequence counters; without the epoch its fresh
/// counters would re-issue MsgIds its previous incarnation already used
/// and every peer's dedup sets would silently swallow the new messages.
/// 24 bits of per-channel sequence remain — plenty for any simulated run.
inline constexpr std::uint64_t epoch_bits(std::uint64_t epoch) { return (epoch & 0xFull) << 24; }

inline bool in_channel(MsgId id, std::uint64_t bit) { return (id & bit) != 0; }
/// Consensus-ABcast messages use no channel bit (plain low sequence).
inline bool is_consensus_channel(MsgId id) {
  return (id & (kSeqChannelBit | kSeqOrderChannelBit | kCausalChannelBit | kPlainChannelBit)) ==
         0;
}

/// An application payload travelling through RelCast / ABcast. `atomic`
/// marks messages whose delivery order is decided by consensus (they are
/// disseminated via RelCast but only delivered via ADeliver).
struct AppMessage {
  MsgId id = 0;
  std::string data;
  bool atomic = false;

  friend bool operator==(const AppMessage& a, const AppMessage& b) {
    return a.id == b.id && a.data == b.data && a.atomic == b.atomic;
  }
};

// --- RelComm (reliable point-to-point) ---
struct RcData {
  std::uint64_t seq = 0;  // per (sender -> receiver) sequence for ack/dedup
  AppMessage body;
};
struct RcAck {
  std::uint64_t seq = 0;
};

// --- Failure detector (heartbeat) ---
struct FdHeartbeat {
  std::uint64_t epoch = 0;
};

// --- Failure detector (SWIM) ---
/// Member status as disseminated by the SWIM detector. Ordering rules
/// (Das et al., see DESIGN.md "Membership"): an Alive with a higher
/// incarnation overrides Alive/Suspect with lower ones; a Suspect
/// overrides Alive of the *same* incarnation; Faulty overrides everything
/// (only a view change resurrects a confirmed-faulty member).
enum class SwimStatus : std::uint8_t { kAlive = 0, kSuspect = 1, kFaulty = 2 };

/// One piggybacked membership update. `incarnation` is the subject's
/// self-issued incarnation number — only the subject itself may bump it
/// (by refuting a suspicion), which is what makes refutation unforgeable
/// against stale gossip.
struct SwimUpdate {
  SwimStatus status = SwimStatus::kAlive;
  SiteId site;
  std::uint64_t incarnation = 0;

  friend bool operator==(const SwimUpdate&, const SwimUpdate&) = default;
};

/// Direct probe. `seq` ties the eventual ack back to the prober's
/// outstanding probe (or to a proxy's relay slot).
struct SwimPing {
  std::uint64_t seq = 0;
  std::vector<SwimUpdate> updates;
};

/// Probe acknowledgement. `on_behalf_of` names the site whose liveness
/// the ack attests: the responder itself for a direct ack, the probe
/// target when a proxy relays an indirect ack back to the origin.
struct SwimAck {
  std::uint64_t seq = 0;
  SiteId on_behalf_of;
  std::vector<SwimUpdate> updates;
};

/// Indirect-probe request: "ping `target` for me and relay its ack back
/// under my sequence number `seq`".
struct SwimPingReq {
  std::uint64_t seq = 0;
  SiteId target;
  std::vector<SwimUpdate> updates;
};

// --- Consensus (single-decree, Paxos-style, one instance per slot) ---
using ConsensusValue = std::vector<AppMessage>;

struct CsPrepare {
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
};
struct CsPromise {
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
  std::uint64_t accepted_round = 0;  // 0: nothing accepted yet
  std::optional<ConsensusValue> accepted_value;
};
struct CsAccept {
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
  ConsensusValue value;
};
struct CsAccepted {
  std::uint64_t instance = 0;
  std::uint64_t round = 0;
};
struct CsDecide {
  std::uint64_t instance = 0;
  ConsensusValue value;
};

// --- Membership ---
/// Direct view installation for a site joining the group (the state-
/// transfer shortcut: the paper's system does a full ST protocol, we ship
/// the view plus ordering floors — the preserved behaviour is the
/// ViewChange cascade). The floors make a REJOIN a consistent
/// continuation: the joiner starts delivering at the consensus slot /
/// sequencer number right after the one that ordered its own join, so its
/// trace neither replays history nor skips messages ordered in its view.
/// Zero floors mean "no catch-up" (the bootstrap install of view 1).
struct ViewInstall {
  std::uint64_t view_id = 0;
  std::vector<SiteId> members;
  std::uint64_t next_instance = 0;  // consensus ABcast: first slot to apply
  std::uint64_t next_seq = 0;       // sequencer ABcast: first seq to deliver
};

using Wire = std::variant<RcData, RcAck, FdHeartbeat, CsPrepare, CsPromise, CsAccept, CsAccepted,
                          CsDecide, ViewInstall, SwimPing, SwimAck, SwimPingReq>;

/// Human-readable wire kind, for diagnostics and drop logs.
const char* wire_kind(const Wire& wire);

/// Wire messages handed to handlers carry their sender alongside the body.
struct FromWire {
  SiteId from;
  Wire wire;
};

}  // namespace samoa::gc
