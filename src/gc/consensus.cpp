#include "gc/consensus.hpp"

#include "gc/wire.hpp"

namespace samoa::gc {

Consensus::Consensus(const GcOptions& opts, const GcEvents& events, SiteId self,
                     View initial_view)
    : GcMicroprotocol("consensus", opts),
      events_(&events),
      self_(self),
      view_(std::move(initial_view)) {
  propose_ = &register_handler("propose", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& req = m.as<CsPropose>();
      Instance& inst = instance(req.instance);
      if (inst.decided || inst.have_proposal) return;
      inst.have_proposal = true;
      inst.proposal = req.value;
      inst.last_activity = options().now();
      try_coordinate(out, req.instance);
    }
    out.flush(ctx);
  });

  on_wire_ = &register_handler("on_wire", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const auto& fw = m.as<FromWire>();
      std::visit(
          [&](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, CsPrepare>) {
              handle_prepare(out, fw.from, msg);
            } else if constexpr (std::is_same_v<T, CsPromise>) {
              handle_promise(out, fw.from, msg);
            } else if constexpr (std::is_same_v<T, CsAccept>) {
              handle_accept(out, fw.from, msg);
            } else if constexpr (std::is_same_v<T, CsAccepted>) {
              handle_accepted(out, fw.from, msg);
            } else if constexpr (std::is_same_v<T, CsDecide>) {
              handle_decide(out, msg);
            }
          },
          fw.wire);
    }
    out.flush(ctx);
  });

  on_suspect_ = &register_handler("on_suspect", [this](Context& ctx, const Message& m) {
    Outbox out;
    {
      auto lock = guard();
      const SiteId suspected = m.as<SiteId>();
      for (auto& [i, inst] : instances_) {
        if (inst.decided || !inst.have_proposal) continue;
        if (view_.size() == 0) continue;
        const SiteId coord = view_.member_at(static_cast<std::size_t>(i + inst.attempt));
        if (coord == suspected) {
          ++inst.attempt;
          try_coordinate(out, i);
        }
      }
    }
    out.flush(ctx);
  });

  retry_ = &register_handler("retry", [this](Context& ctx, const Message&) {
    Outbox out;
    {
      auto lock = guard();
      const auto now = options().now();
      for (auto& [i, inst] : instances_) {
        if (inst.decided || !inst.have_proposal) continue;
        if (now - inst.last_activity < options().cs_retry_timeout) continue;
        // Stuck: either our own round's messages were lost, or a remote
        // coordinator stalled. Advance the attempt and retry.
        ++inst.attempt;
        inst.last_activity = now;
        try_coordinate(out, i);
      }
      // Decision pull: the loop above only heals instances we hold a
      // proposal for. A site that missed a DECIDE *and* has nothing to
      // propose into the slot (e.g. a rejoined member whose pending
      // filter withholds foreign payloads) would stall forever, so probe
      // the frontier instance whenever a later decision proves the group
      // has moved past it. See set_frontier_source in the header.
      if (frontier_source_) {
        const std::uint64_t want = frontier_source_();
        const auto fit = instances_.find(want);
        if (fit == instances_.end() || !fit->second.decided) {
          for (const auto& [i, inst] : instances_) {
            if (i > want && inst.decided) {
              decision_pulls_.add();
              broadcast(out, Wire{CsPrepare{want, 0}});
              break;
            }
          }
        }
      }
    }
    out.flush(ctx);
  });

  view_change_ = &register_handler("viewChange", [this](Context&, const Message& m) {
    auto lock = guard();
    view_ = m.as<View>();
  });
}

Consensus::Instance& Consensus::instance(std::uint64_t i) { return instances_[i]; }

void Consensus::broadcast(Outbox& out, const Wire& wire) {
  for (SiteId site : view_.members()) {
    out.trigger(events_->transport_send, Message::of(TransportSend{site, wire}));
  }
}

void Consensus::to(Outbox& out, SiteId site, const Wire& wire) {
  out.trigger(events_->transport_send, Message::of(TransportSend{site, wire}));
}

void Consensus::try_coordinate(Outbox& out, std::uint64_t i) {
  Instance& inst = instance(i);
  if (inst.decided || !inst.have_proposal || view_.size() == 0) return;
  const SiteId coord = view_.member_at(static_cast<std::size_t>(i + inst.attempt));
  if (coord != self_) return;
  inst.my_round = (inst.attempt + 1) * kRoundStride + self_.value() + 1;
  inst.phase2 = false;
  inst.promises.clear();
  inst.accepted_from.clear();
  inst.last_activity = options().now();
  rounds_started_.add();
  broadcast(out, Wire{CsPrepare{i, inst.my_round}});
}

void Consensus::handle_prepare(Outbox& out, SiteId from, const CsPrepare& p) {
  Instance& inst = instance(p.instance);
  if (inst.decided) {
    // Help a lagging coordinator (or answer a round-0 decision pull):
    // re-send the decision instead of playing another round.
    to(out, from, Wire{CsDecide{p.instance, inst.accepted_value.value_or(ConsensusValue{})}});
    return;
  }
  // Stale rounds — including round-0 pull probes — must not count as
  // activity, or periodic probes would forever suppress the retry timer.
  if (p.round <= inst.promised) return;
  inst.last_activity = options().now();
  inst.promised = p.round;
  to(out, from,
     Wire{CsPromise{p.instance, p.round, inst.accepted_round, inst.accepted_value}});
}

void Consensus::handle_promise(Outbox& out, SiteId from, const CsPromise& p) {
  Instance& inst = instance(p.instance);
  if (inst.decided || inst.phase2 || p.round != inst.my_round) return;
  inst.promises.emplace(from, p);
  if (inst.promises.size() < view_.majority()) return;
  // Phase 2: adopt the value of the highest accepted round, if any.
  const CsPromise* best = nullptr;
  for (const auto& [site, promise] : inst.promises) {
    (void)site;
    if (promise.accepted_value &&
        (best == nullptr || promise.accepted_round > best->accepted_round)) {
      best = &promise;
    }
  }
  inst.chosen = best != nullptr ? *best->accepted_value : inst.proposal;
  inst.phase2 = true;
  inst.last_activity = options().now();
  broadcast(out, Wire{CsAccept{p.instance, inst.my_round, inst.chosen}});
}

void Consensus::handle_accept(Outbox& out, SiteId from, const CsAccept& a) {
  Instance& inst = instance(a.instance);
  inst.last_activity = options().now();
  if (inst.decided) {
    to(out, from, Wire{CsDecide{a.instance, inst.accepted_value.value_or(ConsensusValue{})}});
    return;
  }
  if (a.round < inst.promised) return;
  inst.promised = a.round;
  inst.accepted_round = a.round;
  inst.accepted_value = a.value;
  to(out, from, Wire{CsAccepted{a.instance, a.round}});
}

void Consensus::handle_accepted(Outbox& out, SiteId from, const CsAccepted& a) {
  Instance& inst = instance(a.instance);
  if (inst.decided || !inst.phase2 || a.round != inst.my_round) return;
  inst.accepted_from.insert(from);
  if (inst.accepted_from.size() < view_.majority()) return;
  broadcast(out, Wire{CsDecide{a.instance, inst.chosen}});
  // Our own CsDecide arrives through loopback and runs handle_decide.
}

void Consensus::handle_decide(Outbox& out, const CsDecide& d) {
  Instance& inst = instance(d.instance);
  if (inst.decided) return;
  inst.decided = true;
  inst.accepted_value = d.value;
  decided_count_.add();
  out.trigger(events_->cs_decided, Message::of(CsDecided{d.instance, d.value}));
}

}  // namespace samoa::gc
