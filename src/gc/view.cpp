#include "gc/view.hpp"

#include <algorithm>
#include <sstream>

namespace samoa::gc {

View::View(std::uint64_t id, std::vector<SiteId> members) : id_(id), members_(std::move(members)) {
  std::sort(members_.begin(), members_.end());
  members_.erase(std::unique(members_.begin(), members_.end()), members_.end());
}

bool View::contains(SiteId site) const {
  return std::binary_search(members_.begin(), members_.end(), site);
}

View View::with(SiteId site) const {
  auto m = members_;
  m.push_back(site);
  return View(id_ + 1, std::move(m));
}

View View::without(SiteId site) const {
  auto m = members_;
  m.erase(std::remove(m.begin(), m.end(), site), m.end());
  return View(id_ + 1, std::move(m));
}

std::string View::describe() const {
  std::ostringstream os;
  os << "view#" << id_ << "{";
  for (std::size_t i = 0; i < members_.size(); ++i) {
    if (i) os << ",";
    os << members_[i].value();
  }
  os << "}";
  return os.str();
}

}  // namespace samoa::gc
