// CausalCast — causal-order broadcast on top of RelCast.
//
// Classic vector-clock causal delivery (Birman-Schiper-Stephenson style):
// every broadcast carries the sender's vector clock; a receiver delivers a
// message from origin o only when it is the next one from o
// (vc[o] == VC[o] + 1) and every causal predecessor from other sites has
// been delivered (vc[k] <= VC[k] for k != o). Messages arriving early are
// buffered. Own messages are delivered at submit time.
//
// The vector clock travels inside AppMessage::data (a magic-prefixed
// binary header built with the net/codec ByteWriter), so CausalCast rides
// the existing reliable broadcast unchanged — microprotocol layering as
// the paper's framework intends.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

/// Decoded causal header + payload.
struct CausalMsg {
  SiteId origin;
  std::map<SiteId, std::uint64_t> vc;  // sender's clock *after* increment
  std::string payload;
};

class CausalCast : public GcMicroprotocol {
 public:
  CausalCast(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* submit_handler() const { return submit_; }
  const Handler* on_rdeliver_handler() const { return on_rdeliver_; }
  const Handler* view_change_handler() const { return view_change_; }

  /// Messages that had to wait in the causality buffer before delivery.
  std::uint64_t buffered_count() const { return buffered_.value(); }
  std::uint64_t delivered_count() const { return delivered_.value(); }

  /// Encode / decode the causal header; decode returns false for ordinary
  /// (non-causal) payloads.
  static std::string encode(const CausalMsg& msg);
  static bool decode(const std::string& data, CausalMsg& out);

 private:
  bool deliverable(const CausalMsg& m) const;
  void deliver(Outbox& out, const CausalMsg& m);
  void drain_buffer(Outbox& out);

  const GcEvents* events_;
  SiteId self_;
  View view_;
  std::map<SiteId, std::uint64_t> vc_;  // delivered-so-far per origin
  std::vector<CausalMsg> buffer_;
  std::uint64_t local_seq_ = 0;  // MsgId subspace for causal broadcasts
  Counter buffered_;
  Counter delivered_;

  const Handler* submit_ = nullptr;
  const Handler* on_rdeliver_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
