// Heartbeat failure detector.
//
// Periodically sends heartbeats to every view member and suspects peers
// whose heartbeats stop arriving (eventually-perfect-style: a suspicion is
// revoked when a heartbeat arrives again). Suspicions are published with
// triggerAll on the Suspect event — the consensus microprotocol reacts by
// rotating the coordinator.
#pragma once

#include <unordered_map>
#include <unordered_set>

#include "gc/detector.hpp"
#include "gc/events.hpp"
#include "gc/gc_mp.hpp"
#include "gc/view.hpp"
#include "util/stats.hpp"

namespace samoa::gc {

class FailureDetector : public GcMicroprotocol, public Detector {
 public:
  FailureDetector(const GcOptions& opts, const GcEvents& events, SiteId self, View initial_view);

  const Handler* on_heartbeat_handler() const { return on_heartbeat_; }
  const Handler* send_heartbeats_handler() const { return send_heartbeats_; }
  const Handler* check_handler() const { return check_; }
  const Handler* view_change_handler() const { return view_change_; }

  std::uint64_t suspicions() const override { return suspicions_.value(); }
  /// Suspicions withdrawn because a heartbeat arrived again — the
  /// eventually-perfect detector recovering from a false positive (e.g. a
  /// partition outlasting fd_timeout, then healing).
  std::uint64_t suspicion_revocations() const override { return revocations_.value(); }
  bool is_suspected(SiteId site) override;

  /// Is there a liveness record for `site`? View-change bookkeeping probe:
  /// evicted peers must drop out of the map (else a rejoin inherits a
  /// stale timestamp and gets insta-suspected) and current members must
  /// have a seed (else the first check after a join starts the clock).
  bool tracks(SiteId site) const;

 private:
  SiteId self_;
  View view_;
  std::uint64_t epoch_ = 0;
  std::unordered_map<SiteId, Clock::time_point> last_heard_;
  std::unordered_set<SiteId> suspected_;
  Counter suspicions_;
  Counter revocations_;
  mutable std::mutex snap_mu_;

  const Handler* on_heartbeat_ = nullptr;
  const Handler* send_heartbeats_ = nullptr;
  const Handler* check_ = nullptr;
  const Handler* view_change_ = nullptr;
};

}  // namespace samoa::gc
