// Tunables of one group-communication node.
#pragma once

#include <chrono>

#include "cc/controller.hpp"
#include "core/runtime.hpp"
#include "time/clock.hpp"

namespace samoa::gc {

/// Which total-order broadcast implementation a GroupNode runs.
enum class ABcastImpl {
  kConsensus,  // one Paxos-style consensus instance per batch (default)
  kSequencer,  // fixed sequencer with takeover on view change
};

/// Which failure detector feeds the suspect/view-change machinery.
enum class DetectorImpl {
  kHeartbeat,  // all-to-all heartbeats, O(n^2) messages per interval
  kSwim,       // SWIM gossip: randomized probes + piggybacked dissemination, O(n)
};

struct GcOptions {
  CCPolicy policy = CCPolicy::kVCABasic;

  ABcastImpl abcast_impl = ABcastImpl::kConsensus;

  /// Record the node runtime's trace (for the isolation checker).
  bool record_trace = false;

  /// Cactus-style manual synchronisation: every microprotocol guards its
  /// handlers with its own mutex. Required for memory safety under
  /// CCPolicy::kUnsync; per-object locking alone still cannot provide the
  /// cross-microprotocol isolation the paper's Section 3 race needs, which
  /// is exactly what the view-change experiment demonstrates.
  bool manual_locks = false;

  /// Dispatch substrate of the node's runtime (see
  /// RuntimeOptions::dispatch_impl). The Section 3 race demo pins
  /// kElasticPool: reproducing the unsynchronised baseline's interleaving
  /// needs OS-level overlap of same-microprotocol computations, which the
  /// executor's per-mp serialization intentionally removes.
  DispatchImpl dispatch_impl = DispatchImpl::kAuto;

  /// Artificial widening of the Section 3 race window: RelComm's
  /// viewChange handler sleeps this long *before* adopting the new view,
  /// so concurrent message processing can observe RelCast(new)/RelComm(old).
  std::chrono::microseconds view_change_delay{0};

  std::chrono::microseconds retransmit_interval{2000};
  std::chrono::microseconds retransmit_timeout{3000};
  /// Retransmission backoff: a pending entry's timeout doubles after every
  /// resend up to this cap, with a deterministic jitter (seeded by
  /// rng_seed) of up to 1/4 of the backed-off timeout added on top, so
  /// retransmissions to a slow or dead peer thin out instead of hammering
  /// at a fixed cadence. Set equal to retransmit_timeout to disable.
  std::chrono::microseconds retransmit_backoff_cap{24000};
  std::chrono::microseconds heartbeat_interval{2000};
  std::chrono::microseconds fd_timeout{10000};

  DetectorImpl detector_impl = DetectorImpl::kHeartbeat;

  /// SWIM probe protocol period: one randomized direct probe per period.
  std::chrono::microseconds swim_probe_interval{2000};
  /// Deadline for the direct ack within a period; once it passes, the
  /// prober falls back to ping-req through `swim_indirect_k` proxies.
  /// Also the cadence of the SWIM tick (the state machine's resolution).
  std::chrono::microseconds swim_ack_timeout{600};
  /// Number of proxies asked to probe indirectly before suspecting.
  std::size_t swim_indirect_k = 3;
  /// A suspicion stands for this many probe periods before the suspect is
  /// confirmed faulty (time for an alive refutation to gossip back).
  std::uint32_t swim_suspect_periods = 3;
  /// Max membership updates piggybacked on one ping/ack/ping-req.
  std::size_t swim_piggyback_limit = 8;
  /// How many times each membership update is piggybacked before it ages
  /// out of the gossip buffer. 0 = auto: 3 * ceil(log2(view size)), the
  /// SWIM paper's lambda*log(n) dissemination budget.
  std::uint32_t swim_gossip_transmissions = 0;
  std::chrono::microseconds cs_retry_interval{5000};
  std::chrono::microseconds cs_retry_timeout{8000};

  /// Max messages ordered per consensus instance.
  std::size_t abcast_batch = 16;

  /// Flow control (paper Section 5 lists "message flow control" as part of
  /// the J-SAMOA implementation): max unacknowledged messages per peer in
  /// RelComm; further sends are queued until acks free credits. 0 = off.
  std::size_t flow_window = 32;

  /// Seed for protocol-level randomness (currently the retransmission
  /// jitter). Each microprotocol derives its stream from (rng_seed, site),
  /// so a fleet sharing one options template still gets distinct streams.
  std::uint64_t rng_seed = 1;

  /// Incarnation epoch mixed into locally-generated MsgIds (bits 24..27 of
  /// the per-origin sequence). GroupNode bumps it on every restart so a
  /// rejoined node's fresh sequence counters can never re-issue an id its
  /// previous incarnation already used — peers would silently drop the new
  /// message as a duplicate.
  std::uint64_t id_epoch = 0;

  /// Least-upper-bound used for every microprotocol when policy is
  /// VCAbound (generous over-declaration is legal; too small throws).
  std::uint32_t vca_bound = 256;

  /// Marshal every wire message to its binary network format (net/codec)
  /// before it enters the simulated network, and unmarshal on delivery —
  /// the full path a real UDP transport would take. Off by default (the
  /// in-process simulator can carry typed values directly).
  bool serialize_wire = false;

  /// Time base for the node: timer deadlines, retransmit/failure-detector
  /// timeouts and consensus retry clocks all read this source. Null means
  /// the process wall clock; point it (and the SimNetwork) at one shared
  /// time::VirtualClock for deterministic simulation.
  time::ClockSource* clock = nullptr;

  time::ClockSource& clock_source() const {
    return clock != nullptr ? *clock : time::wall_clock();
  }
  Clock::time_point now() const { return clock_source().now(); }
};

}  // namespace samoa::gc
