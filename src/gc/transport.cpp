#include "core/context.hpp"
#include "gc/transport.hpp"

namespace samoa::gc {

Transport::Transport(const GcOptions& opts, const GcEvents&, net::SimNetwork& net, SiteId self)
    : GcMicroprotocol("transport", opts), net_(net), self_(self) {
  send_ = &register_handler("send", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& req = m.as<TransportSend>();
    sent_.add();
    if (options().serialize_wire) {
      net_.send(self_, req.to, Message::of(net::encode_wire(self_, req.wire)));
    } else {
      net_.send(self_, req.to, Message::of(req.wire));
    }
  });
}

}  // namespace samoa::gc
