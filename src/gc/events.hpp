// Event vocabulary of one group-communication node.
//
// Each GroupNode owns one instance of GcEvents: the internal and external
// event types wiring its microprotocols together, mirroring the paper's
// Section 3 code (SendOut, FromRComm, Bcast, DeliverOut, ViewChange, ...).
#pragma once

#include "core/event.hpp"
#include "gc/wire.hpp"

namespace samoa::gc {

/// Request to send `m` to `target` through reliable point-to-point
/// communication (the argument of the paper's SendOut event).
struct SendReq {
  AppMessage m;
  SiteId target;
};

/// Request to push a wire message onto the network.
struct TransportSend {
  SiteId to;
  Wire wire;
};

/// Internal consensus kick: "agree on `value` for slot `instance`".
struct CsPropose {
  std::uint64_t instance = 0;
  ConsensusValue value;
};

/// Consensus outcome handed to the atomic broadcast layer.
struct CsDecided {
  std::uint64_t instance = 0;
  ConsensusValue value;
};

/// A membership operation (the paper's joinleave handler arguments).
struct JoinLeave {
  char op = '+';  // '+' join, '-' leave
  SiteId site;
};

/// Total-order delivery handed to Membership and the application sink.
/// `next_ordinal` is the ordering position right after this message's
/// (consensus slot + 1 / sequencer seq + 1): when the message is a join
/// op, that is exactly the catch-up floor Membership must ship to the
/// joining site — and unlike the deliverer's own ordering cursor it is
/// identical at every member, whatever else each one has buffered.
struct ADelivery {
  AppMessage m;
  std::uint64_t next_ordinal = 0;
};

struct GcEvents {
  // External (network / timers / API):
  EventType rc_data{"net.RcData"};
  EventType rc_ack{"net.RcAck"};
  EventType fd_heartbeat{"net.FdHeartbeat"};
  EventType swim_wire{"net.Swim"};
  EventType cs_wire{"net.Consensus"};
  EventType view_install{"net.ViewInstall"};
  EventType retransmit_tick{"tick.Retransmit"};
  EventType heartbeat_tick{"tick.Heartbeat"};
  EventType fd_check_tick{"tick.FdCheck"};
  EventType swim_tick{"tick.SwimProbe"};
  EventType cs_retry_tick{"tick.CsRetry"};
  EventType api_abcast{"api.ABcast"};
  EventType api_rbcast{"api.Bcast"};
  EventType api_ccast{"api.CCast"};
  EventType api_joinleave{"api.JoinLeave"};

  // Internal (between microprotocols):
  EventType send_out{"SendOut"};          // -> RelComm.send
  EventType from_rcomm{"FromRComm"};      // -> RelCast.recv (triggerAll)
  EventType bcast{"Bcast"};               // -> RelCast.bcast
  EventType deliver_out{"DeliverOut"};    // -> ABcast.on_rdeliver + app sink
  EventType adeliver{"ADeliver"};         // -> Membership.deliverView + app sink
  EventType causal_deliver{"CDeliver"};   // -> app sink (causal order)
  EventType view_change{"ViewChange"};    // -> every view-holding microprotocol
  EventType suspect{"Suspect"};           // -> Consensus.on_suspect
  EventType cs_propose{"CsPropose"};      // -> Consensus.propose
  EventType cs_decided{"CsDecided"};      // -> ABcast.on_decide
  EventType transport_send{"Transport"};  // -> Transport.send
  // Rejoin catch-up floors extracted from a received ViewInstall: the
  // ordering layers fast-forward their delivery cursors so the rejoined
  // site continues the total order instead of replaying or stalling.
  EventType abcast_catchup{"ABcastCatchup"};  // -> ABcast.on_catchup
  EventType seq_catchup{"SeqCatchup"};        // -> SeqABcast.on_catchup
  /// Membership operations are always ordered by the consensus-based
  /// ABcast, even when application messages use the sequencer
  /// implementation — a crashed sequencer cannot be evicted through an
  /// ordering service it is itself the single point of failure of.
  EventType membership_abcast{"MembershipABcast"};
};

}  // namespace samoa::gc
