#include "core/context.hpp"
#include "gc/group_node.hpp"

#include "core/errors.hpp"

namespace samoa::gc {

DeliverSink::DeliverSink(const GcOptions& opts, const GcEvents&)
    : GcMicroprotocol("app", opts) {
  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& msg = m.as<AppMessage>();
    if (msg.atomic) return;  // atomic payloads are delivered via ADeliver
    // Control payloads (causal headers, sequencer order announcements)
    // share the 0x01 prefix byte and are not application messages.
    if (!msg.data.empty() && msg.data[0] == '\x01') return;
    std::unique_lock snap(mu_);
    rdelivered_.push_back(msg);
  });
  on_cdeliver_ = &register_handler("on_cdeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    std::unique_lock snap(mu_);
    cdelivered_.push_back(m.as<std::string>());
  });
  on_adeliver_ = &register_handler("on_adeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& del = m.as<ADelivery>();
    char op;
    SiteId site;
    if (Membership::decode_op(del.m.data, op, site)) return;  // membership-internal
    std::unique_lock snap(mu_);
    adelivered_.push_back(del.m);
    if (view_source_) {
      records_.push_back(verify::DeliveryRecord{del.m.id, view_source_(), del.next_ordinal - 1,
                                                del.m.data});
    }
  });
}

std::vector<AppMessage> DeliverSink::rdelivered() {
  std::unique_lock snap(mu_);
  return rdelivered_;
}

std::vector<AppMessage> DeliverSink::adelivered() {
  std::unique_lock snap(mu_);
  return adelivered_;
}

std::vector<std::string> DeliverSink::cdelivered() {
  std::unique_lock snap(mu_);
  return cdelivered_;
}

std::vector<verify::DeliveryRecord> DeliverSink::delivery_records() {
  std::unique_lock snap(mu_);
  return records_;
}

GroupNode::GroupNode(net::SimNetwork& net, GcOptions opts)
    : net_(net), opts_(std::move(opts)), timers_(opts_.clock) {
  self_ = net_.add_site([this](const net::Packet& packet) { on_packet(packet); });
  build_stack();
}

void GroupNode::build_stack() {
  // A Stack seals its bindings on first spawn, so a restart cannot reuse
  // it: each incarnation composes a brand-new stack — which is also
  // exactly the crash semantics we want, since every microprotocol comes
  // back with empty volatile state.
  stack_ = std::make_unique<Stack>();
  const View empty;
  transport_ = &stack_->emplace<Transport>(opts_, events_, net_, self_);
  relcomm_ = &stack_->emplace<RelComm>(opts_, events_, self_, empty);
  relcast_ = &stack_->emplace<RelCast>(opts_, events_, self_, empty);
  fd_ = &stack_->emplace<FailureDetector>(opts_, events_, self_, empty);
  swim_ = &stack_->emplace<SwimDetector>(opts_, events_, self_, empty);
  consensus_ = &stack_->emplace<Consensus>(opts_, events_, self_, empty);
  abcast_ = &stack_->emplace<ABcast>(opts_, events_, self_, empty);
  causal_ = &stack_->emplace<CausalCast>(opts_, events_, self_, empty);
  seq_abcast_ = &stack_->emplace<SeqABcast>(opts_, events_, self_, empty);
  membership_ = &stack_->emplace<Membership>(opts_, events_, self_, empty);
  sink_ = &stack_->emplace<DeliverSink>(opts_, events_);

  // ABcast's frontier mirror is atomic, so consensus may poll it from the
  // retry tick without taking ABcast's guard (no lock-order coupling).
  consensus_->set_frontier_source([ab = abcast_] { return ab->next_instance(); });

  bind_all();

  RuntimeOptions rt_opts;
  rt_opts.policy = opts_.policy;
  rt_opts.record_trace = opts_.record_trace;
  rt_opts.clock = opts_.clock;
  rt_opts.dispatch_impl = opts_.dispatch_impl;
  runtime_ = std::make_unique<Runtime>(*stack_, rt_opts);
}

GroupNode::~GroupNode() {
  timers_.cancel_all();
  net_.detach(self_);  // no further delivery callbacks after this returns
  // runtime_ destructor drains in-flight computations.
}

void GroupNode::bind_all() {
  // External events.
  stack_->bind(events_.rc_data, *relcomm_->recv_data_handler());
  stack_->bind(events_.rc_ack, *relcomm_->recv_ack_handler());
  stack_->bind(events_.fd_heartbeat, *fd_->on_heartbeat_handler());
  stack_->bind(events_.swim_wire, *swim_->on_wire_handler());
  stack_->bind(events_.cs_wire, *consensus_->on_wire_handler());
  stack_->bind(events_.view_install, *membership_->on_install_handler());
  stack_->bind(events_.retransmit_tick, *relcomm_->retransmit_handler());
  stack_->bind(events_.heartbeat_tick, *fd_->send_heartbeats_handler());
  stack_->bind(events_.fd_check_tick, *fd_->check_handler());
  stack_->bind(events_.swim_tick, *swim_->tick_handler());
  stack_->bind(events_.cs_retry_tick, *consensus_->retry_handler());
  if (opts_.abcast_impl == ABcastImpl::kConsensus) {
    stack_->bind(events_.api_abcast, *abcast_->submit_handler());
  } else {
    stack_->bind(events_.api_abcast, *seq_abcast_->submit_handler());
  }
  stack_->bind(events_.api_rbcast, *relcast_->bcast_handler());
  stack_->bind(events_.api_ccast, *causal_->submit_handler());
  stack_->bind(events_.api_joinleave, *membership_->joinleave_handler());

  // Internal plumbing.
  stack_->bind(events_.send_out, *relcomm_->send_handler());
  stack_->bind(events_.from_rcomm, *relcast_->recv_handler());
  stack_->bind(events_.bcast, *relcast_->bcast_handler());
  stack_->bind(events_.deliver_out, *abcast_->on_rdeliver_handler());
  if (opts_.abcast_impl == ABcastImpl::kSequencer) {
    stack_->bind(events_.deliver_out, *seq_abcast_->on_rdeliver_handler());
  }
  stack_->bind(events_.deliver_out, *causal_->on_rdeliver_handler());
  stack_->bind(events_.deliver_out, *sink_->on_rdeliver_handler());
  stack_->bind(events_.adeliver, *membership_->on_adeliver_handler());
  stack_->bind(events_.adeliver, *sink_->on_adeliver_handler());
  stack_->bind(events_.causal_deliver, *sink_->on_cdeliver_handler());
  // ViewChange binding order is load-bearing for the Section 3 experiment:
  // RelCast adopts the new view first, RelComm (optionally delayed) last —
  // exactly the window in which an unsynchronised message computation sees
  // inconsistent views.
  stack_->bind(events_.view_change, *relcast_->view_change_handler());
  stack_->bind(events_.view_change, *relcomm_->view_change_handler());
  stack_->bind(events_.view_change, *fd_->view_change_handler());
  stack_->bind(events_.view_change, *swim_->view_change_handler());
  stack_->bind(events_.view_change, *consensus_->view_change_handler());
  stack_->bind(events_.view_change, *abcast_->view_change_handler());
  stack_->bind(events_.view_change, *causal_->view_change_handler());
  stack_->bind(events_.view_change, *seq_abcast_->view_change_handler());
  stack_->bind(events_.suspect, *consensus_->on_suspect_handler());
  stack_->bind(events_.cs_propose, *consensus_->propose_handler());
  stack_->bind(events_.cs_decided, *abcast_->on_decide_handler());
  // Membership ops always order through the consensus implementation (see
  // events.hpp); under the sequencer impl the consensus ABcast still needs
  // its dissemination input, so bind its rdeliver tap unconditionally.
  stack_->bind(events_.membership_abcast, *abcast_->submit_handler());
  stack_->bind(events_.abcast_catchup, *abcast_->on_catchup_handler());
  stack_->bind(events_.seq_catchup, *seq_abcast_->on_catchup_handler());
  stack_->bind(events_.transport_send, *transport_->send_handler());

  membership_->set_order_floor_source([sa = seq_abcast_] { return sa->order_floor(); });
  sink_->set_view_source([mb = membership_] { return mb->view_snapshot().id(); });
}

Isolation GroupNode::spec(EventClass klass) const {
  std::vector<const Microprotocol*> members;
  switch (klass) {
    case EventClass::kRcData:
      // Under the sequencer implementation the total-order delivery (and
      // hence the membership/view-change cascade) can fire directly from a
      // data packet's computation, so the declaration covers the full
      // stack (over-declaration is always legal).
      members = {transport_, relcomm_, relcast_,   abcast_, seq_abcast_, causal_,
                 consensus_, fd_,      swim_,       membership_, sink_};
      break;
    case EventClass::kRcAck:
      members = {transport_, relcomm_};
      break;
    case EventClass::kFdHeartbeat:
      members = {fd_};
      break;
    case EventClass::kSwimWire:
      // Piggybacked updates can raise a suspicion, and the Suspect event
      // feeds consensus (coordinator rotation), which sends.
      members = {transport_, swim_, consensus_};
      break;
    case EventClass::kCsWire:
      members = {transport_, relcomm_, relcast_, fd_,      swim_, consensus_, abcast_,
                 seq_abcast_, causal_, membership_, sink_};
      break;
    case EventClass::kViewInstall:
      members = {transport_, relcomm_, relcast_, fd_, swim_, consensus_, abcast_,
                 seq_abcast_, causal_, membership_};
      break;
    case EventClass::kRetransmitTick:
      members = {transport_, relcomm_};
      break;
    case EventClass::kHeartbeatTick:
      members = {transport_, fd_};
      break;
    case EventClass::kFdCheckTick:
      members = {transport_, fd_, consensus_};
      break;
    case EventClass::kSwimTick:
      members = {transport_, swim_, consensus_};
      break;
    case EventClass::kCsRetryTick:
      members = {transport_, consensus_};
      break;
    case EventClass::kApiRbcast:
      members = {transport_, relcomm_, relcast_, abcast_, seq_abcast_, causal_, sink_};
      break;
    case EventClass::kApiCcast:
      members = {transport_, relcomm_, relcast_, abcast_, seq_abcast_, causal_, sink_};
      break;
    case EventClass::kApiAbcast:
      // The submitting site may itself be the sequencer: ordering (and the
      // adeliver cascade) can complete synchronously inside this call.
      members = {transport_, relcomm_, relcast_,   abcast_, seq_abcast_, causal_,
                 consensus_, fd_,      swim_,       membership_, sink_};
      break;
    case EventClass::kApiJoinLeave:
      members = {transport_, relcomm_, relcast_, abcast_, consensus_, membership_};
      break;
  }
  if (opts_.policy == CCPolicy::kVCABound) {
    std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
    bounds.reserve(members.size());
    for (const auto* mp : members) bounds.emplace_back(mp, opts_.vca_bound);
    return Isolation::bound(std::move(bounds));
  }
  if (opts_.policy == CCPolicy::kVCARoute) {
    throw ConfigError(
        "GroupNode does not support VCAroute: the stack's call patterns are "
        "data-dependent (the paper notes the variants' use is limited when "
        "routing cannot be declared statically)");
  }
  return Isolation::basic(std::move(members));
}

ComputationHandle GroupNode::spawn(EventClass klass, const EventType& ev, Message msg) {
  return runtime_->spawn_isolated(
      spec(klass), [ev, msg = std::move(msg)](Context& ctx) { ctx.trigger(ev, msg); });
}

void GroupNode::on_packet(const net::Packet& packet) {
  if (!started_.load(std::memory_order_acquire) || crashed_.load(std::memory_order_acquire)) {
    return;
  }
  // Unmarshal from the binary network format when the codec path is on;
  // otherwise the simulator carried the typed value directly.
  const FromWire fw =
      opts_.serialize_wire
          ? net::decode_wire(packet.payload.as<std::vector<std::uint8_t>>())
          : FromWire{packet.from, packet.payload.as<Wire>()};
  const Wire& wire = fw.wire;
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, RcData>) {
          spawn(EventClass::kRcData, events_.rc_data, Message::of(fw));
        } else if constexpr (std::is_same_v<T, RcAck>) {
          spawn(EventClass::kRcAck, events_.rc_ack, Message::of(fw));
        } else if constexpr (std::is_same_v<T, FdHeartbeat>) {
          spawn(EventClass::kFdHeartbeat, events_.fd_heartbeat, Message::of(fw));
        } else if constexpr (std::is_same_v<T, SwimPing> || std::is_same_v<T, SwimAck> ||
                             std::is_same_v<T, SwimPingReq>) {
          spawn(EventClass::kSwimWire, events_.swim_wire, Message::of(fw));
        } else if constexpr (std::is_same_v<T, ViewInstall>) {
          spawn(EventClass::kViewInstall, events_.view_install, Message::of(fw));
        } else {
          spawn(EventClass::kCsWire, events_.cs_wire, Message::of(fw));
        }
      },
      wire);
}

void GroupNode::start(View initial_view) {
  if (started_.exchange(true)) throw ConfigError("GroupNode::start called twice");
  if (initial_view.id() == 0) {
    throw ConfigError("initial view must have id >= 1 (id 0 is the empty pre-start view)");
  }
  // Install the initial view through the regular ViewInstall path so every
  // microprotocol learns it inside one isolated computation.
  const FromWire fw{self_, Wire{ViewInstall{initial_view.id(), initial_view.members()}}};
  spawn(EventClass::kViewInstall, events_.view_install, Message::of(fw)).wait();

  arm_timers();
}

void GroupNode::spawn_tick(std::size_t slot, EventClass klass, const EventType& ev) {
  if (crashed_.load(std::memory_order_acquire)) return;
  std::unique_lock lock(tick_mu_);
  ComputationHandle& prev = last_tick_[slot];
  if (prev.valid() && !prev.done()) {
    ticks_coalesced_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  prev = spawn(klass, ev, Message{});
}

void GroupNode::arm_timers() {
  timers_.schedule_periodic(opts_.retransmit_interval, [this] {
    spawn_tick(0, EventClass::kRetransmitTick, events_.retransmit_tick);
  });
  // Only the selected failure detector's ticks run; the other detector's
  // microprotocol sits in the stack unticked (its handlers never fire).
  if (opts_.detector_impl == DetectorImpl::kHeartbeat) {
    timers_.schedule_periodic(opts_.heartbeat_interval, [this] {
      spawn_tick(1, EventClass::kHeartbeatTick, events_.heartbeat_tick);
    });
    timers_.schedule_periodic(opts_.fd_timeout, [this] {
      spawn_tick(2, EventClass::kFdCheckTick, events_.fd_check_tick);
    });
  } else {
    // The SWIM tick runs at the ack-timeout resolution: the state machine
    // (direct deadline, period deadline, suspicion expiry) is time-
    // compared inside the handler, so one fast tick drives all of it.
    timers_.schedule_periodic(opts_.swim_ack_timeout, [this] {
      spawn_tick(4, EventClass::kSwimTick, events_.swim_tick);
    });
  }
  timers_.schedule_periodic(opts_.cs_retry_interval, [this] {
    spawn_tick(3, EventClass::kCsRetryTick, events_.cs_retry_tick);
  });
}

void GroupNode::crash() {
  crashed_.store(true, std::memory_order_release);
  timers_.cancel_all();
  net_.crash(self_);
}

void GroupNode::archive_incarnation() {
  IncarnationArchive arc;
  arc.records = sink_->delivery_records();
  arc.adelivered = sink_->adelivered();
  arc.views = membership_->installed_views();
  arc.retransmissions = relcomm_->retransmissions();
  arc.view_change_drops = relcomm_->view_change_drops();
  arc.joins_completed = membership_->joins_completed();
  std::unique_lock lock(archive_mu_);
  archives_.push_back(std::move(arc));
}

void GroupNode::restart() {
  if (!started_.load(std::memory_order_acquire)) {
    throw ConfigError("GroupNode::restart: node was never started");
  }
  if (!crashed_.load(std::memory_order_acquire)) {
    throw ConfigError("GroupNode::restart: node is not crashed");
  }
  // crash() already cancelled the timers and marked the site crashed;
  // detach additionally waits out any delivery callback still executing,
  // so after drain() nothing can reach the old stack any more.
  net_.detach(self_);
  runtime_->drain();
  archive_incarnation();
  runtime_.reset();  // destroy the runtime before the stack it runs on
  ++opts_.id_epoch;  // new incarnation: fresh MsgId subspace (see wire.hpp)
  rb_seq_.store(0, std::memory_order_relaxed);
  build_stack();
  net_.attach(self_, [this](const net::Packet& packet) { on_packet(packet); });
  crashed_.store(false, std::memory_order_release);
  net_.recover(self_);
  arm_timers();
}

std::vector<GroupNode::IncarnationArchive> GroupNode::archives() const {
  std::unique_lock lock(archive_mu_);
  return archives_;
}

std::uint64_t GroupNode::rejoins_completed() const {
  std::uint64_t total = membership_->joins_completed();
  std::unique_lock lock(archive_mu_);
  for (const auto& arc : archives_) total += arc.joins_completed;
  return total;
}

std::uint64_t GroupNode::total_retransmissions() const {
  std::uint64_t total = relcomm_->retransmissions();
  std::unique_lock lock(archive_mu_);
  for (const auto& arc : archives_) total += arc.retransmissions;
  return total;
}

std::vector<verify::IncarnationTrace> GroupNode::vs_traces() const {
  std::vector<verify::IncarnationTrace> traces;
  {
    std::unique_lock lock(archive_mu_);
    for (std::size_t i = 0; i < archives_.size(); ++i) {
      verify::IncarnationTrace t;
      t.site = self_;
      t.incarnation = i;
      t.crashed = true;  // only restart() archives, and it requires a crash
      t.deliveries = archives_[i].records;
      t.views = archives_[i].views;
      traces.push_back(std::move(t));
    }
  }
  verify::IncarnationTrace cur;
  cur.site = self_;
  cur.incarnation = opts_.id_epoch;
  cur.crashed = crashed_.load(std::memory_order_acquire);
  cur.deliveries = sink_->delivery_records();
  cur.views = membership_->installed_views();
  traces.push_back(std::move(cur));
  return traces;
}

ComputationHandle GroupNode::rbcast(std::string data) {
  // Plain reliable broadcasts draw ids from a separate subspace (high bit
  // of the per-origin sequence) so they never collide with ABcast ids.
  const std::uint64_t seq = kPlainChannelBit | epoch_bits(opts_.id_epoch) | ++rb_seq_;
  AppMessage msg{make_msg_id(self_, seq), std::move(data), /*atomic=*/false};
  return spawn(EventClass::kApiRbcast, events_.api_rbcast, Message::of(msg));
}

ComputationHandle GroupNode::abcast(std::string data) {
  return spawn(EventClass::kApiAbcast, events_.api_abcast, Message::of(std::move(data)));
}

ComputationHandle GroupNode::ccast(std::string data) {
  return spawn(EventClass::kApiCcast, events_.api_ccast, Message::of(std::move(data)));
}

ComputationHandle GroupNode::request_join(SiteId newcomer) {
  return spawn(EventClass::kApiJoinLeave, events_.api_joinleave,
               Message::of(JoinLeave{'+', newcomer}));
}

ComputationHandle GroupNode::request_leave(SiteId member) {
  return spawn(EventClass::kApiJoinLeave, events_.api_joinleave,
               Message::of(JoinLeave{'-', member}));
}

}  // namespace samoa::gc
