#include "core/context.hpp"
#include "gc/group_node.hpp"

#include "core/errors.hpp"

namespace samoa::gc {

DeliverSink::DeliverSink(const GcOptions& opts, const GcEvents&)
    : GcMicroprotocol("app", opts) {
  on_rdeliver_ = &register_handler("on_rdeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& msg = m.as<AppMessage>();
    if (msg.atomic) return;  // atomic payloads are delivered via ADeliver
    // Control payloads (causal headers, sequencer order announcements)
    // share the 0x01 prefix byte and are not application messages.
    if (!msg.data.empty() && msg.data[0] == '\x01') return;
    std::unique_lock snap(mu_);
    rdelivered_.push_back(msg);
  });
  on_cdeliver_ = &register_handler("on_cdeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    std::unique_lock snap(mu_);
    cdelivered_.push_back(m.as<std::string>());
  });
  on_adeliver_ = &register_handler("on_adeliver", [this](Context&, const Message& m) {
    auto lock = guard();
    const auto& msg = m.as<AppMessage>();
    char op;
    SiteId site;
    if (Membership::decode_op(msg.data, op, site)) return;  // membership-internal
    std::unique_lock snap(mu_);
    adelivered_.push_back(msg);
  });
}

std::vector<AppMessage> DeliverSink::rdelivered() {
  std::unique_lock snap(mu_);
  return rdelivered_;
}

std::vector<AppMessage> DeliverSink::adelivered() {
  std::unique_lock snap(mu_);
  return adelivered_;
}

std::vector<std::string> DeliverSink::cdelivered() {
  std::unique_lock snap(mu_);
  return cdelivered_;
}

GroupNode::GroupNode(net::SimNetwork& net, GcOptions opts)
    : net_(net), opts_(std::move(opts)), timers_(opts_.clock) {
  self_ = net_.add_site([this](const net::Packet& packet) { on_packet(packet); });

  const View empty;
  transport_ = &stack_.emplace<Transport>(opts_, events_, net_, self_);
  relcomm_ = &stack_.emplace<RelComm>(opts_, events_, self_, empty);
  relcast_ = &stack_.emplace<RelCast>(opts_, events_, self_, empty);
  fd_ = &stack_.emplace<FailureDetector>(opts_, events_, self_, empty);
  consensus_ = &stack_.emplace<Consensus>(opts_, events_, self_, empty);
  abcast_ = &stack_.emplace<ABcast>(opts_, events_, self_, empty);
  causal_ = &stack_.emplace<CausalCast>(opts_, events_, self_, empty);
  seq_abcast_ = &stack_.emplace<SeqABcast>(opts_, events_, self_, empty);
  membership_ = &stack_.emplace<Membership>(opts_, events_, self_, empty);
  sink_ = &stack_.emplace<DeliverSink>(opts_, events_);

  bind_all();

  RuntimeOptions rt_opts;
  rt_opts.policy = opts_.policy;
  rt_opts.record_trace = opts_.record_trace;
  rt_opts.clock = opts_.clock;
  runtime_ = std::make_unique<Runtime>(stack_, rt_opts);
}

GroupNode::~GroupNode() {
  timers_.cancel_all();
  net_.detach(self_);  // no further delivery callbacks after this returns
  // runtime_ destructor drains in-flight computations.
}

void GroupNode::bind_all() {
  // External events.
  stack_.bind(events_.rc_data, *relcomm_->recv_data_handler());
  stack_.bind(events_.rc_ack, *relcomm_->recv_ack_handler());
  stack_.bind(events_.fd_heartbeat, *fd_->on_heartbeat_handler());
  stack_.bind(events_.cs_wire, *consensus_->on_wire_handler());
  stack_.bind(events_.view_install, *membership_->on_install_handler());
  stack_.bind(events_.retransmit_tick, *relcomm_->retransmit_handler());
  stack_.bind(events_.heartbeat_tick, *fd_->send_heartbeats_handler());
  stack_.bind(events_.fd_check_tick, *fd_->check_handler());
  stack_.bind(events_.cs_retry_tick, *consensus_->retry_handler());
  if (opts_.abcast_impl == ABcastImpl::kConsensus) {
    stack_.bind(events_.api_abcast, *abcast_->submit_handler());
  } else {
    stack_.bind(events_.api_abcast, *seq_abcast_->submit_handler());
  }
  stack_.bind(events_.api_rbcast, *relcast_->bcast_handler());
  stack_.bind(events_.api_ccast, *causal_->submit_handler());
  stack_.bind(events_.api_joinleave, *membership_->joinleave_handler());

  // Internal plumbing.
  stack_.bind(events_.send_out, *relcomm_->send_handler());
  stack_.bind(events_.from_rcomm, *relcast_->recv_handler());
  stack_.bind(events_.bcast, *relcast_->bcast_handler());
  stack_.bind(events_.deliver_out, *abcast_->on_rdeliver_handler());
  if (opts_.abcast_impl == ABcastImpl::kSequencer) {
    stack_.bind(events_.deliver_out, *seq_abcast_->on_rdeliver_handler());
  }
  stack_.bind(events_.deliver_out, *causal_->on_rdeliver_handler());
  stack_.bind(events_.deliver_out, *sink_->on_rdeliver_handler());
  stack_.bind(events_.adeliver, *membership_->on_adeliver_handler());
  stack_.bind(events_.adeliver, *sink_->on_adeliver_handler());
  stack_.bind(events_.causal_deliver, *sink_->on_cdeliver_handler());
  // ViewChange binding order is load-bearing for the Section 3 experiment:
  // RelCast adopts the new view first, RelComm (optionally delayed) last —
  // exactly the window in which an unsynchronised message computation sees
  // inconsistent views.
  stack_.bind(events_.view_change, *relcast_->view_change_handler());
  stack_.bind(events_.view_change, *relcomm_->view_change_handler());
  stack_.bind(events_.view_change, *fd_->view_change_handler());
  stack_.bind(events_.view_change, *consensus_->view_change_handler());
  stack_.bind(events_.view_change, *abcast_->view_change_handler());
  stack_.bind(events_.view_change, *causal_->view_change_handler());
  stack_.bind(events_.view_change, *seq_abcast_->view_change_handler());
  stack_.bind(events_.suspect, *consensus_->on_suspect_handler());
  stack_.bind(events_.cs_propose, *consensus_->propose_handler());
  stack_.bind(events_.cs_decided, *abcast_->on_decide_handler());
  // Membership ops always order through the consensus implementation (see
  // events.hpp); under the sequencer impl the consensus ABcast still needs
  // its dissemination input, so bind its rdeliver tap unconditionally.
  stack_.bind(events_.membership_abcast, *abcast_->submit_handler());
  stack_.bind(events_.transport_send, *transport_->send_handler());
}

Isolation GroupNode::spec(EventClass klass) const {
  std::vector<const Microprotocol*> members;
  switch (klass) {
    case EventClass::kRcData:
      // Under the sequencer implementation the total-order delivery (and
      // hence the membership/view-change cascade) can fire directly from a
      // data packet's computation, so the declaration covers the full
      // stack (over-declaration is always legal).
      members = {transport_, relcomm_, relcast_,   abcast_, seq_abcast_, causal_,
                 consensus_, fd_,      membership_, sink_};
      break;
    case EventClass::kRcAck:
      members = {transport_, relcomm_};
      break;
    case EventClass::kFdHeartbeat:
      members = {fd_};
      break;
    case EventClass::kCsWire:
      members = {transport_, relcomm_, relcast_, fd_,      consensus_, abcast_,
                 seq_abcast_, causal_, membership_, sink_};
      break;
    case EventClass::kViewInstall:
      members = {transport_, relcomm_, relcast_, fd_, consensus_, abcast_,
                 seq_abcast_, causal_, membership_};
      break;
    case EventClass::kRetransmitTick:
      members = {transport_, relcomm_};
      break;
    case EventClass::kHeartbeatTick:
      members = {transport_, fd_};
      break;
    case EventClass::kFdCheckTick:
      members = {transport_, fd_, consensus_};
      break;
    case EventClass::kCsRetryTick:
      members = {transport_, consensus_};
      break;
    case EventClass::kApiRbcast:
      members = {transport_, relcomm_, relcast_, abcast_, seq_abcast_, causal_, sink_};
      break;
    case EventClass::kApiCcast:
      members = {transport_, relcomm_, relcast_, abcast_, seq_abcast_, causal_, sink_};
      break;
    case EventClass::kApiAbcast:
      // The submitting site may itself be the sequencer: ordering (and the
      // adeliver cascade) can complete synchronously inside this call.
      members = {transport_, relcomm_, relcast_,   abcast_, seq_abcast_, causal_,
                 consensus_, fd_,      membership_, sink_};
      break;
    case EventClass::kApiJoinLeave:
      members = {transport_, relcomm_, relcast_, abcast_, consensus_, membership_};
      break;
  }
  if (opts_.policy == CCPolicy::kVCABound) {
    std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
    bounds.reserve(members.size());
    for (const auto* mp : members) bounds.emplace_back(mp, opts_.vca_bound);
    return Isolation::bound(std::move(bounds));
  }
  if (opts_.policy == CCPolicy::kVCARoute) {
    throw ConfigError(
        "GroupNode does not support VCAroute: the stack's call patterns are "
        "data-dependent (the paper notes the variants' use is limited when "
        "routing cannot be declared statically)");
  }
  return Isolation::basic(std::move(members));
}

ComputationHandle GroupNode::spawn(EventClass klass, const EventType& ev, Message msg) {
  return runtime_->spawn_isolated(
      spec(klass), [ev, msg = std::move(msg)](Context& ctx) { ctx.trigger(ev, msg); });
}

void GroupNode::on_packet(const net::Packet& packet) {
  if (!started_.load(std::memory_order_acquire) || crashed_.load(std::memory_order_acquire)) {
    return;
  }
  // Unmarshal from the binary network format when the codec path is on;
  // otherwise the simulator carried the typed value directly.
  const FromWire fw =
      opts_.serialize_wire
          ? net::decode_wire(packet.payload.as<std::vector<std::uint8_t>>())
          : FromWire{packet.from, packet.payload.as<Wire>()};
  const Wire& wire = fw.wire;
  std::visit(
      [&](const auto& body) {
        using T = std::decay_t<decltype(body)>;
        if constexpr (std::is_same_v<T, RcData>) {
          spawn(EventClass::kRcData, events_.rc_data, Message::of(fw));
        } else if constexpr (std::is_same_v<T, RcAck>) {
          spawn(EventClass::kRcAck, events_.rc_ack, Message::of(fw));
        } else if constexpr (std::is_same_v<T, FdHeartbeat>) {
          spawn(EventClass::kFdHeartbeat, events_.fd_heartbeat, Message::of(fw));
        } else if constexpr (std::is_same_v<T, ViewInstall>) {
          spawn(EventClass::kViewInstall, events_.view_install, Message::of(fw));
        } else {
          spawn(EventClass::kCsWire, events_.cs_wire, Message::of(fw));
        }
      },
      wire);
}

void GroupNode::start(View initial_view) {
  if (started_.exchange(true)) throw ConfigError("GroupNode::start called twice");
  if (initial_view.id() == 0) {
    throw ConfigError("initial view must have id >= 1 (id 0 is the empty pre-start view)");
  }
  // Install the initial view through the regular ViewInstall path so every
  // microprotocol learns it inside one isolated computation.
  const FromWire fw{self_, Wire{ViewInstall{initial_view.id(), initial_view.members()}}};
  spawn(EventClass::kViewInstall, events_.view_install, Message::of(fw)).wait();

  timers_.schedule_periodic(opts_.retransmit_interval, [this] {
    if (crashed_.load(std::memory_order_acquire)) return;
    spawn(EventClass::kRetransmitTick, events_.retransmit_tick, Message{});
  });
  timers_.schedule_periodic(opts_.heartbeat_interval, [this] {
    if (crashed_.load(std::memory_order_acquire)) return;
    spawn(EventClass::kHeartbeatTick, events_.heartbeat_tick, Message{});
  });
  timers_.schedule_periodic(opts_.fd_timeout, [this] {
    if (crashed_.load(std::memory_order_acquire)) return;
    spawn(EventClass::kFdCheckTick, events_.fd_check_tick, Message{});
  });
  timers_.schedule_periodic(opts_.cs_retry_interval, [this] {
    if (crashed_.load(std::memory_order_acquire)) return;
    spawn(EventClass::kCsRetryTick, events_.cs_retry_tick, Message{});
  });
}

void GroupNode::crash() {
  crashed_.store(true, std::memory_order_release);
  timers_.cancel_all();
  net_.crash(self_);
}

ComputationHandle GroupNode::rbcast(std::string data) {
  // Plain reliable broadcasts draw ids from a separate subspace (high bit
  // of the per-origin sequence) so they never collide with ABcast ids.
  const std::uint64_t seq = kPlainChannelBit | ++rb_seq_;
  AppMessage msg{make_msg_id(self_, seq), std::move(data), /*atomic=*/false};
  return spawn(EventClass::kApiRbcast, events_.api_rbcast, Message::of(msg));
}

ComputationHandle GroupNode::abcast(std::string data) {
  return spawn(EventClass::kApiAbcast, events_.api_abcast, Message::of(std::move(data)));
}

ComputationHandle GroupNode::ccast(std::string data) {
  return spawn(EventClass::kApiCcast, events_.api_ccast, Message::of(std::move(data)));
}

ComputationHandle GroupNode::request_join(SiteId newcomer) {
  return spawn(EventClass::kApiJoinLeave, events_.api_joinleave,
               Message::of(JoinLeave{'+', newcomer}));
}

ComputationHandle GroupNode::request_leave(SiteId member) {
  return spawn(EventClass::kApiJoinLeave, events_.api_joinleave,
               Message::of(JoinLeave{'-', member}));
}

}  // namespace samoa::gc
