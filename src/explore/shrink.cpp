#include "explore/shrink.hpp"

#include <algorithm>
#include <vector>

namespace samoa::explore {

namespace {

/// Trailing index-0 decisions carry no information (replay past the
/// trace's end already defaults to 0): drop them for free.
ScheduleTrace strip_trailing_zeros(const ScheduleTrace& t) {
  std::vector<Decision> ds = t.decisions();
  while (!ds.empty() && ds.back().chosen == 0) ds.pop_back();
  return ScheduleTrace(std::move(ds));
}

}  // namespace

ScheduleTrace shrink_trace(const ScheduleTrace& original, const ShrinkRunFn& run,
                           std::size_t max_runs, ShrinkStats* stats) {
  ScheduleTrace current = strip_trailing_zeros(original);
  std::size_t runs = 0;
  auto attempt = [&](const ScheduleTrace& candidate) -> bool {
    if (runs >= max_runs) return false;
    ++runs;
    ShrinkOutcome out = run(candidate);
    if (!out.violated) return false;
    current = strip_trailing_zeros(out.executed);
    return true;
  };

  bool improved = true;
  while (improved && runs < max_runs) {
    improved = false;

    // Phase 1 — truncation: keep halving the forced prefix while the
    // violation still reproduces.
    while (current.size() > 1 && runs < max_runs) {
      const std::size_t keep = current.size() / 2;
      ScheduleTrace candidate(
          std::vector<Decision>(current.decisions().begin(), current.decisions().begin() + keep));
      const std::size_t before = current.size();
      if (!attempt(candidate) || current.size() >= before) break;
      improved = true;
    }

    // Phase 2 — chunk zero-out: replace aligned chunks of decisions with
    // index 0, halving the chunk size down to 1.
    for (std::size_t chunk = std::max<std::size_t>(current.size() / 2, 1); chunk >= 1; chunk /= 2) {
      for (std::size_t at = 0; at < current.size() && runs < max_runs; at += chunk) {
        std::vector<Decision> ds = current.decisions();
        bool changed = false;
        for (std::size_t i = at; i < std::min(at + chunk, ds.size()); ++i) {
          if (ds[i].chosen != 0) {
            ds[i].chosen = 0;
            changed = true;
          }
        }
        if (!changed) continue;
        if (attempt(ScheduleTrace(std::move(ds)))) improved = true;
      }
      if (chunk == 1) break;
    }
  }

  if (stats != nullptr) {
    stats->runs = runs;
    stats->original_size = original.size();
    stats->final_size = current.size();
  }
  return current;
}

}  // namespace samoa::explore
