#include "explore/net_runner.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "chaos/chaos_engine.hpp"
#include "chaos/fault_plan.hpp"
#include "core/event.hpp"
#include "explore/shrink.hpp"
#include "gc/view.hpp"
#include "net/sim_network.hpp"
#include "net/timer_service.hpp"
#include "time/clock.hpp"
#include "util/rng.hpp"
#include "verify/vs_checker.hpp"

namespace samoa::explore {

namespace {

constexpr auto kHop = std::chrono::microseconds(100);     // per-link latency
constexpr auto kEpochGap = std::chrono::microseconds(1000);  // >> 2 * kHop

/// Wire payload of the toy view-sync protocol. One struct for both hops:
/// the coordinator seeds a relay (`relay_hop` true, `target` the final
/// member), the relay forwards the same payload to the member.
struct NetMsg {
  bool view = false;       // view announcement vs totally-ordered data
  bool relay_hop = false;  // coordinator -> relay leg
  std::uint64_t id = 0;    // data: global ordinal (1-based); view: view id
  std::uint64_t quota = 0;  // view: deliveries required before install
  std::uint32_t target = 0;  // relay leg: final member site id
};

/// One member's protocol state. Mutated only on the network's delivery
/// thread (callbacks are serialized), read by the harness after drain().
/// Data messages are released from a hold-back buffer in ordinal order —
/// the total order is fixed by the coordinator — so the only explorable
/// protocol behaviour is *which view each release is stamped with*:
///
///   synced   a view installs only once `delivered >= quota`, making the
///            stamped view a pure function of the ordinal — identical on
///            every member under every interleaving.
///   unsync   a view installs the instant its announcement arrives, so an
///            announcement that wins the relay race on one member and
///            loses it on another stamps the same ordinal with different
///            views (vs rule 1).
struct MemberState {
  bool synced = true;
  std::vector<SiteId> group;
  std::uint64_t current_view = 0;
  std::uint64_t next_ordinal = 1;
  std::uint64_t delivered = 0;
  std::map<std::uint64_t, NetMsg> holdback;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> pending;  // (view id, quota)
  std::vector<verify::DeliveryRecord> deliveries;
  std::vector<gc::View> views;

  void install(std::uint64_t id) {
    current_view = id;
    views.emplace_back(id, group);
  }

  void try_install() {
    while (!pending.empty() && delivered >= pending.front().second) {
      install(pending.front().first);
      pending.pop_front();
    }
  }

  void on_packet(const net::Packet& p) {
    const NetMsg& msg = p.payload.as<NetMsg>();
    if (msg.view) {
      if (synced) {
        pending.emplace_back(msg.id, msg.quota);
        try_install();
      } else {
        install(msg.id);  // the seeded bug: no synchronisation barrier
      }
      return;
    }
    holdback.emplace(msg.id, msg);
    while (holdback.contains(next_ordinal)) {
      holdback.erase(next_ordinal);
      deliveries.push_back(verify::DeliveryRecord{next_ordinal, current_view, next_ordinal,
                                                  "m" + std::to_string(next_ordinal)});
      ++next_ordinal;
      ++delivered;
      if (synced) try_install();
    }
  }
};

std::uint64_t net_run_seed(std::uint64_t cell_seed, std::size_t run_index) {
  SplitMix64 mix(cell_seed ^ (0x9E3779B97F4A7C15ULL * (run_index + 1)));
  return mix.next();
}

std::unique_ptr<Strategy> make_net_strategy(const NetCellOptions& opts, std::size_t run_index) {
  switch (opts.strategy) {
    case StrategyKind::kFirst:
      return std::make_unique<FirstStrategy>();
    case StrategyKind::kPct:
      return std::make_unique<PctStrategy>(net_run_seed(opts.seed, run_index), opts.pct_k);
    default:
      return std::make_unique<RandomWalkStrategy>(net_run_seed(opts.seed, run_index));
  }
}

const char* protocol_enum_name(NetProtocol protocol) {
  return protocol == NetProtocol::kSynced ? "kSynced" : "kUnsync";
}

const char* strategy_enum_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFirst:
      return "kFirst";
    case StrategyKind::kRandomWalk:
      return "kRandomWalk";
    case StrategyKind::kPct:
      return "kPct";
    case StrategyKind::kExhaustive:
      return "kExhaustive";
  }
  return "kRandomWalk";
}

std::string make_net_repro(const NetCellOptions& o, const ScheduleTrace& trace) {
  std::ostringstream out;
  out << "// Repro: replays the shrunk violating network schedule bit-for-bit.\n"
      << "samoa::explore::NetCellOptions o;\n"
      << "o.protocol = samoa::explore::NetProtocol::" << protocol_enum_name(o.protocol) << ";\n"
      << "o.strategy = samoa::explore::StrategyKind::" << strategy_enum_name(o.strategy) << ";\n"
      << "o.seed = " << o.seed << "ULL;\n"
      << "o.members = " << o.members << ";\n"
      << "o.relays = " << o.relays << ";\n"
      << "o.views = " << o.views << ";\n"
      << "o.with_faults = " << (o.with_faults ? "true" : "false") << ";\n"
      << "auto r = samoa::explore::replay_net_schedule(\n"
      << "    o, samoa::explore::ScheduleTrace::decode(\"" << trace.encode() << "\"));\n"
      << "ASSERT_FALSE(r.replay_diverged);\n"
      << "ASSERT_TRUE(r.violated);\n";
  return out.str();
}

void dump_net_if_requested(const NetCellResult& res) {
  const char* dir = std::getenv("SAMOA_EXPLORE_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + res.cell_name() + ".trace");
  if (!out) return;
  out << "cell: " << res.cell_name() << "\n"
      << "schedules_run: " << res.schedules_run << "\n"
      << "decisions: " << res.decisions.summary() << "\n"
      << "first_violation: " << res.first_violation.encode() << "\n"
      << "shrunk: " << res.shrunk.encode() << "\n"
      << res.violation_summary << "\n\n"
      << res.repro;
}

}  // namespace

const char* to_string(NetProtocol protocol) {
  return protocol == NetProtocol::kSynced ? "vs-synced" : "vs-unsync";
}

std::string NetCellResult::cell_name() const {
  std::ostringstream out;
  out << "net_" << to_string(options.protocol) << "_" << to_string(options.strategy) << "_seed"
      << options.seed;
  if (options.with_faults) out << "_faults";
  return out.str();
}

NetRunResult run_net_schedule(const NetCellOptions& opts, Strategy* strategy) {
  const int n_members = std::max(opts.members, 2);
  const int n_relays = std::max(opts.relays, 2);
  const int epochs = std::max(opts.views - 1, 1);

  time::VirtualClock clock;
  net::LinkOptions link;
  link.base_latency = kHop;
  link.jitter = std::chrono::microseconds(0);
  link.drop_probability = 0.0;

  // Declared before the network so every callback target outlives the
  // delivery thread; the hook likewise outlives the network, so it never
  // needs to be uninstalled.
  std::vector<MemberState> members(static_cast<std::size_t>(n_members));
  std::optional<ExploringDeliveryHook> hook;
  if (strategy != nullptr) hook.emplace(*strategy);

  net::SimNetwork net(link, opts.seed, &clock);
  net.enable_event_log(true);
  if (hook) net.set_delivery_hook(&*hook);

  // Site ids are allocated sequentially: members first, then relays, then
  // the coordinator, then any extra (idle) sites — so growing extra_sites
  // never shifts an existing id, and candidate keys stay stable.
  std::vector<SiteId> member_sites;
  member_sites.reserve(static_cast<std::size_t>(n_members));
  for (int m = 0; m < n_members; ++m) {
    MemberState* state = &members[static_cast<std::size_t>(m)];
    member_sites.push_back(
        net.add_site([state](const net::Packet& p) { state->on_packet(p); }));
  }
  for (int m = 0; m < n_members; ++m) {
    members[static_cast<std::size_t>(m)].synced = opts.protocol == NetProtocol::kSynced;
    members[static_cast<std::size_t>(m)].group = member_sites;
    members[static_cast<std::size_t>(m)].views.emplace_back(0, member_sites);
  }
  for (int r = 0; r < n_relays; ++r) {
    const SiteId self(static_cast<std::uint32_t>(n_members + r));
    net.add_site([&net, self](const net::Packet& p) {
      NetMsg fwd = p.payload.as<NetMsg>();
      fwd.relay_hop = false;
      net.send(self, SiteId(fwd.target), Message::of(fwd));
    });
  }
  const SiteId coord = net.add_site([](const net::Packet&) {});
  for (int x = 0; x < opts.extra_sites; ++x) {
    net.add_site([](const net::Packet&) {});
  }

  // Hold an activity pin across control scheduling: without it the
  // delivery thread can park on the first control's deadline and advance
  // virtual time before the remaining controls are scheduled, shifting
  // their (now + delay) absolute times run-to-run.
  std::optional<time::Pin> setup_pin;
  setup_pin.emplace(clock);

  // Inert fault plan, armed through the network's control queue: a
  // partition + heal between two members that never exchange packets, and
  // a loss burst whose link options equal the defaults. Timed to coincide
  // with the first epoch's relay and member delivery waves, so the
  // actions' *ordering* against those deliveries is explored while their
  // *effect* is nil — existing-protocol cells must stay clean.
  std::optional<net::TimerService> timers;
  std::optional<chaos::ChaosEngine> engine;
  if (opts.with_faults) {
    timers.emplace(&clock);
    engine.emplace(net, *timers, chaos::ChaosEngine::Route::kNetwork);
    chaos::FaultPlan plan;
    plan.partition(kEpochGap + kHop, member_sites[0], member_sites[1]);
    plan.heal(kEpochGap + 2 * kHop, member_sites[0], member_sites[1]);
    plan.loss_burst(kEpochGap + kHop, kEpochGap + 2 * kHop, link);
    engine->arm(plan);
  }

  // Epoch scripts. Each epoch the coordinator seeds two data messages and
  // one view announcement per member, each through a rotating relay
  // (payload p, member m -> relay (p + m + e) % R): any two members route
  // a given payload through different relays, so the relay-lane race
  // decides per-member arrival order independently. Seeds are sent
  // data-first, so the default FIFO merge delivers data before the view
  // announcement on every member — the violation needs exploration.
  for (int e = 0; e < epochs; ++e) {
    net.schedule_control(
        kEpochGap * (e + 1), "epoch:" + std::to_string(e),
        [&net, coord, member_sites, n_members, n_relays, e] {
          for (int p = 0; p < 3; ++p) {
            for (int m = 0; m < n_members; ++m) {
              const SiteId relay(
                  static_cast<std::uint32_t>(n_members + (p + m + e) % n_relays));
              NetMsg msg;
              msg.relay_hop = true;
              msg.target = member_sites[static_cast<std::size_t>(m)].value();
              if (p == 2) {
                msg.view = true;
                msg.id = static_cast<std::uint64_t>(e) + 1;
                msg.quota = 2 * (static_cast<std::uint64_t>(e) + 1);
              } else {
                msg.id = 2 * static_cast<std::uint64_t>(e) + static_cast<std::uint64_t>(p) + 1;
              }
              net.send(coord, relay, Message::of(msg));
            }
          }
        });
  }

  // All packets of epoch e complete well before epoch e + 1 (kEpochGap >>
  // 2 * kHop), so the finish control one gap after the last epoch fires
  // strictly after every delivery and fault action.
  std::promise<void> done;
  net.schedule_control(kEpochGap * (epochs + 1), "finish", [&done] { done.set_value(); });
  setup_pin.reset();  // release time: the simulation runs from here
  done.get_future().wait();
  net.drain();

  NetRunResult r;
  r.events = net.event_log();
  r.event_hash = net.event_hash();
  if (hook) r.executed = hook->trace();

  std::vector<verify::IncarnationTrace> traces;
  traces.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    verify::IncarnationTrace t;
    t.site = member_sites[m];
    t.incarnation = 0;
    t.crashed = false;
    t.deliveries = members[m].deliveries;
    t.views = members[m].views;
    traces.push_back(std::move(t));
  }
  const verify::VsReport report = verify::check_virtual_synchrony(traces);
  r.violated = !report.ok();
  if (r.violated) r.violation_summary = report.describe();
  return r;
}

NetRunResult replay_net_schedule(const NetCellOptions& opts, const ScheduleTrace& trace) {
  ReplayStrategy strategy(trace);
  NetRunResult r = run_net_schedule(opts, &strategy);
  r.replay_diverged = strategy.diverged();
  return r;
}

NetCellResult explore_net_cell(const NetCellOptions& opts) {
  NetCellResult res;
  res.options = opts;
  const std::size_t budget = schedule_budget(opts.max_schedules);

  auto note_run = [&](const NetRunResult& r) {
    ++res.schedules_run;
    res.decisions.add(r.executed);
  };

  auto on_violation = [&](const NetRunResult& r) {
    res.violation_found = true;
    res.first_violation = r.executed;
    res.violation_summary = r.violation_summary;
    ShrinkRunFn rerun = [&](const ScheduleTrace& forced) {
      NetRunResult rr = replay_net_schedule(opts, forced);
      note_run(rr);
      return ShrinkOutcome{rr.violated, rr.executed};
    };
    res.shrunk = shrink_trace(r.executed, rerun, opts.shrink_budget);
    res.repro = make_net_repro(opts, res.shrunk);
    dump_net_if_requested(res);
  };

  if (opts.strategy == StrategyKind::kExhaustive) {
    ExhaustiveStrategy strategy(opts.exhaustive_depth);
    for (std::size_t i = 0; i < budget; ++i) {
      NetRunResult r = run_net_schedule(opts, &strategy);
      note_run(r);
      if (r.violated) {
        on_violation(r);
        break;
      }
      if (!strategy.advance(r.executed)) break;  // space exhausted to depth
    }
  } else {
    for (std::size_t i = 0; i < budget; ++i) {
      std::unique_ptr<Strategy> strategy = make_net_strategy(opts, i);
      NetRunResult r = run_net_schedule(opts, strategy.get());
      note_run(r);
      if (r.violated) {
        on_violation(r);
        break;
      }
      if (opts.strategy == StrategyKind::kFirst) break;  // deterministic
    }
  }
  return res;
}

std::vector<NetCellResult> net_sweep(const std::vector<NetProtocol>& protocols,
                                     const std::vector<StrategyKind>& strategies,
                                     const std::vector<std::uint64_t>& seeds,
                                     const NetCellOptions& base) {
  std::vector<NetCellResult> results;
  results.reserve(protocols.size() * strategies.size() * seeds.size());
  for (NetProtocol protocol : protocols) {
    for (StrategyKind strategy : strategies) {
      for (std::uint64_t seed : seeds) {
        NetCellOptions opts = base;
        opts.protocol = protocol;
        opts.strategy = strategy;
        opts.seed = seed;
        results.push_back(explore_net_cell(opts));
      }
    }
  }
  return results;
}

}  // namespace samoa::explore
