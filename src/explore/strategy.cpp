#include "explore/strategy.hpp"

#include <algorithm>

namespace samoa::explore {

PctStrategy::PctStrategy(std::uint64_t seed, std::size_t k, std::size_t horizon) : rng_(seed) {
  // Priorities drawn below start at 2^32; demotions count down from just
  // under it, so a demoted key ranks below every un-demoted one.
  demote_next_ = (1ull << 32) - 1;
  for (std::size_t i = 0; i < k && horizon > 0; ++i) {
    change_points_.insert(static_cast<std::size_t>(rng_.next_below(horizon)));
  }
}

std::size_t PctStrategy::choose(char, const std::vector<std::uint64_t>& keys) {
  for (std::uint64_t key : keys) {
    if (!priority_.contains(key)) priority_[key] = (1ull << 32) + rng_.next();
  }
  auto best = keys.begin();
  for (auto it = keys.begin(); it != keys.end(); ++it) {
    if (priority_[*it] > priority_[*best]) best = it;
  }
  if (change_points_.contains(decision_index_)) {
    priority_[*best] = demote_next_--;
    // Re-pick after the demotion: the preemption takes effect immediately.
    best = keys.begin();
    for (auto it = keys.begin(); it != keys.end(); ++it) {
      if (priority_[*it] > priority_[*best]) best = it;
    }
  }
  ++decision_index_;
  return static_cast<std::size_t>(best - keys.begin());
}

std::size_t ReplayStrategy::choose(char kind, const std::vector<std::uint64_t>& keys) {
  if (index_ >= trace_.size()) return 0;
  const Decision& d = trace_.decisions()[index_++];
  if (d.kind != kind || d.ncand != keys.size()) diverged_ = true;
  return std::min<std::size_t>(d.chosen, keys.size() - 1);
}

std::size_t ExhaustiveStrategy::choose(char, const std::vector<std::uint64_t>& keys) {
  std::size_t pick = 0;
  if (index_ < prefix_.size()) pick = std::min<std::size_t>(prefix_[index_], keys.size() - 1);
  ++index_;
  return pick;
}

bool ExhaustiveStrategy::advance(const ScheduleTrace& executed) {
  index_ = 0;
  const auto& ds = executed.decisions();
  const std::size_t limit = std::min(ds.size(), max_depth_);
  for (std::size_t p = limit; p-- > 0;) {
    if (ds[p].chosen + 1 < ds[p].ncand) {
      prefix_.assign(p + 1, 0);
      for (std::size_t i = 0; i < p; ++i) prefix_[i] = ds[i].chosen;
      prefix_[p] = ds[p].chosen + 1;
      return true;
    }
  }
  return false;
}

std::size_t ExploringWakePolicy::choose(const std::vector<time::RunnableStep>& steps) {
  std::vector<std::uint64_t> keys;
  keys.reserve(steps.size());
  for (const time::RunnableStep& s : steps) {
    keys.push_back((static_cast<std::uint64_t>(s.kind) << 32) |
                   static_cast<std::uint32_t>(s.worker));
  }
  const std::size_t idx = std::min(strategy_->choose('c', keys), steps.size() - 1);
  trace_.record('c', static_cast<std::uint32_t>(idx), static_cast<std::uint32_t>(steps.size()));
  return idx;
}

std::size_t ExploringDeliveryHook::choose(const std::vector<std::uint64_t>& keys) {
  const std::size_t idx = std::min(strategy_->choose('n', keys), keys.size() - 1);
  trace_.record('n', static_cast<std::uint32_t>(idx), static_cast<std::uint32_t>(keys.size()));
  return idx;
}

}  // namespace samoa::explore
