// Network-schedule exploration cells — distributed interleavings under the
// SimNetwork DeliveryHook seam, with the virtual-synchrony checker as the
// oracle.
//
// A *net cell* is a fully-seeded fleet workload run on SimNetwork +
// VirtualClock under one exploration strategy: a coordinator fans
// totally-ordered data messages and view installations out through relay
// sites to a set of members, so several relay lanes race into each
// member's lane and the 'n' decisions at each drain step pick the
// interleaving. Two protocol variants close the loop from the paper's
// synchronisation argument:
//
//   kSynced    members defer a view installation until every data message
//              the view's quota names has been delivered — the
//              synchronisation microprotocol discipline. Clean under every
//              explored interleaving.
//   kUnsync    members install a view the moment its announcement arrives,
//              so a data message whose relay lost the race is delivered in
//              the *new* view on some members and the *old* view on others
//              — a same-view-agreement violation (vs_checker rule 1) that
//              the default (deliver_at, seq) order never produces, because
//              the coordinator seeds data before views and FIFO order
//              preserves that everywhere.
//
// Every schedule's member-observed IncarnationTraces are fed through
// check_virtual_synchrony; a violation stops the cell, gets shrunk by
// delta debugging (same shrinker as step schedules), and is reported with
// the executed 'n' trace plus a standalone repro snippet. With
// `with_faults`, a behaviourally-inert FaultPlan (a partition + heal
// between two members that never exchange packets, and a zero-drop loss
// burst) is armed through ChaosEngine Route::kNetwork so fault *timing*
// joins the decision space without perturbing the protocol.
//
// Environment knobs are shared with ExploreRunner: SAMOA_EXPLORE_SCHEDULES
// multiplies each cell's budget, SAMOA_EXPLORE_DUMP_DIR collects shrunk
// traces + repros of violating cells.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "explore/runner.hpp"
#include "explore/strategy.hpp"
#include "explore/trace.hpp"

namespace samoa::explore {

enum class NetProtocol { kSynced, kUnsync };

const char* to_string(NetProtocol protocol);

struct NetCellOptions {
  NetProtocol protocol = NetProtocol::kSynced;
  StrategyKind strategy = StrategyKind::kRandomWalk;
  std::uint64_t seed = 1;
  /// Fleet shape: `members` delivery sinks, `relays` racing forwarders,
  /// one coordinator. `views - 1` epochs each ship 2 data messages and one
  /// view installation through seeded relay assignments.
  int members = 3;
  int relays = 3;
  int views = 2;
  /// Arm the inert FaultPlan through ChaosEngine Route::kNetwork so fault
  /// events appear as 'n' decision candidates.
  bool with_faults = false;
  /// Idle sites appended after the coordinator: grows the lane count
  /// without touching any existing site id, so a trace recorded at
  /// extra_sites == 0 must replay bit-for-bit at extra_sites > 0 (the
  /// candidate keys are site ids, which do not shift).
  int extra_sites = 0;
  std::size_t max_schedules = 64;
  std::size_t pct_k = 3;
  std::size_t exhaustive_depth = 12;
  std::size_t shrink_budget = 150;
};

/// One schedule of a net cell.
struct NetRunResult {
  bool violated = false;
  ScheduleTrace executed;  // the 'n' decisions this run recorded
  /// Packet-level event log (one line per delivery / late drop / control
  /// firing, in execution order) and its FNV-1a hash: two runs took the
  /// same network schedule iff these are equal.
  std::vector<std::string> events;
  std::uint64_t event_hash = 0;
  std::string violation_summary;
  bool replay_diverged = false;  // replay_net_schedule only
};

struct NetCellResult {
  NetCellOptions options;
  std::size_t schedules_run = 0;
  DecisionCounts decisions;
  bool violation_found = false;
  ScheduleTrace first_violation;
  ScheduleTrace shrunk;  // delta-debugged minimum (still violating)
  std::string violation_summary;
  std::string repro;  // standalone snippet reproducing the shrunk schedule

  std::string cell_name() const;
};

/// Execute the cell workload once under `strategy` (pass nullptr for the
/// default (deliver_at, seq) order — no hook installed, zero 'n'
/// decisions).
NetRunResult run_net_schedule(const NetCellOptions& opts, Strategy* strategy);

/// Replay a recorded (cell, trace) pair — same seeded workload, decisions
/// forced from `trace`. With an unchanged cell the replay is bit-for-bit:
/// identical packet event log, replay_diverged == false.
NetRunResult replay_net_schedule(const NetCellOptions& opts, const ScheduleTrace& trace);

/// Run up to max_schedules schedules (times SAMOA_EXPLORE_SCHEDULES);
/// stop at the first vs violation, shrink it, build the repro.
NetCellResult explore_net_cell(const NetCellOptions& opts);

/// explore_net_cell over the cross product, one NetCellResult per cell.
std::vector<NetCellResult> net_sweep(const std::vector<NetProtocol>& protocols,
                                     const std::vector<StrategyKind>& strategies,
                                     const std::vector<std::uint64_t>& seeds,
                                     const NetCellOptions& base);

}  // namespace samoa::explore
