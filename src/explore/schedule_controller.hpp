// ScheduleController — cooperative token scheduler for interleaving
// exploration (CHESS-style sequentialisation).
//
// One controller drives one Runtime (wired in via RuntimeOptions::
// step_hook). It serialises every computation task behind a single token:
// at most one hooked task executes between scheduling points, and at each
// point where >= 2 tasks are runnable the installed Strategy picks which
// one goes — every such choice lands in a ScheduleTrace, making the run
// replayable bit-for-bit from (workload seed, trace).
//
// Scheduling points (see core/step_hook.hpp for the runtime's side):
// task start, task finish, Context::yield_point, the step point before
// each handler's gate, and — crucially — every controller park/unpark,
// observed through diag::WaitObserver. A task that parks in a version
// gate / serial turnstile / TSO claim releases the token while blocked;
// the publish that wakes it is reported by the controller wake paths
// (note_wakeup_delivered), and the scheduler defers its next decision
// until every delivered wakeup has been consumed (the woken thread
// re-entered the runnable set). Without that barrier the runnable set at
// a decision point would depend on OS thread timing and replays would
// diverge.
//
// Task identity: tasks are named by their submission ticket — submissions
// happen on token-holding threads (or under pause()), so ticket order is
// schedule-determined even though the pool may *start* tasks in any OS
// order. Candidates are presented to the Strategy sorted by ticket.
//
// Driver protocol:
//
//     ScheduleController sched(strategy);
//     Runtime rt(stack, {.policy = ..., .record_trace = true,
//                        .step_hook = &sched});
//     sched.pause();                  // hold decisions while spawning
//     ... rt.spawn_isolated(...) ...  // any number
//     sched.resume();
//     rt.drain();
//     sched.trace()                   // the executed decision string
//
// Constraints: one exploring runtime at a time per process (the
// controller installs itself as the global WaitObserver, and computation
// ids are only unique per runtime); every wake that unblocks a managed
// task must come from another managed task (a driver that publishes
// externally must bracket it with pause()/resume()). If all live tasks
// are blocked and nothing can wake them, the run has found a genuine
// protocol deadlock: the controller prints the decision trace plus the
// blocked-state dump and aborts — under the deadlock-free policies this
// fires only on a real bug.
//
// Lock order: the scheduler mutex is a leaf. Observer calls arrive with a
// gate/controller/subject mutex held and take only the scheduler mutex;
// the controller never calls out while holding it.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/step_hook.hpp"
#include "diag/wait_registry.hpp"
#include "explore/strategy.hpp"
#include "explore/trace.hpp"

namespace samoa::explore {

class ScheduleController final : public StepHook, public diag::WaitObserver {
 public:
  explicit ScheduleController(Strategy& strategy);
  ~ScheduleController() override;

  ScheduleController(const ScheduleController&) = delete;
  ScheduleController& operator=(const ScheduleController&) = delete;

  /// Hold all scheduling decisions (driver spawns deterministically while
  /// paused). resume() releases the machine.
  void pause();
  void resume();

  /// The decisions executed so far. Read only after drain().
  const ScheduleTrace& trace() const { return trace_; }

  /// Total scheduling points passed (including single-candidate ones).
  std::uint64_t steps() const;

  // --- StepHook ---
  std::uint64_t on_task_submitted(ComputationId id) override;
  void on_task_started(ComputationId id, std::uint64_t ticket) override;
  void on_task_finished(ComputationId id) override;
  void step_point(ComputationId id, const char* what) override;
  void resync(ComputationId id) override;

  // --- diag::WaitObserver ---
  void on_wait_park(diag::WaitKind kind, std::uint64_t comp) override;
  void on_wait_unpark(diag::WaitKind kind, std::uint64_t comp) override;
  void on_wakeup_delivered(std::uint64_t comp) override;

  // Internal, public only so the implementation's thread-local "current
  // participant" pointer can name the type.
  enum class State {
    kWaiting,  // runnable, not scheduled
    kGranted,  // holds the token, not yet observed it
    kRunning,  // holds the token, executing
    kBlocked,  // parked in a controller wait
    kDone,
  };

  struct Participant {
    std::uint64_t comp = 0;
    std::uint64_t ticket = 0;
    State state = State::kWaiting;
    std::condition_variable cv;
  };

 private:
  /// If the machine is quiescent (not paused, no submitted-but-unstarted
  /// task, no in-flight wakeup, token free), pick and grant the next
  /// runnable participant. Caller holds mu_.
  void maybe_decide_locked();
  void grant_locked(Participant& p);
  /// Block the calling participant until granted, then mark it running.
  void wait_for_grant(std::unique_lock<std::mutex>& lock, Participant& p);
  [[noreturn]] void report_deadlock_locked();

  Strategy& strategy_;
  ScheduleTrace trace_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Participant>> participants_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t steps_ = 0;
  int expected_arrivals_ = 0;
  int in_flight_wakes_ = 0;
  bool paused_ = false;
  bool token_held_ = false;
};

}  // namespace samoa::explore
