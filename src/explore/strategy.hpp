// Exploration strategies — who decides which runnable step goes next.
//
// A Strategy is consulted at every decision point (>= 2 candidates) with
// the candidates' schedule-stable keys, sorted ascending; it returns an
// index. Strategies are single-run objects (construct a fresh one per
// schedule) except ExhaustiveStrategy, which carries DFS state across runs
// to enumerate the schedule space to a depth bound.
//
//   FirstStrategy       always picks index 0 — the "natural" schedule
//                       (submission order); the deterministic baseline.
//   RandomWalkStrategy  uniform seeded choice at every point. Covers the
//                       space thinly but broadly; the workhorse fuzzer.
//   PctStrategy         PCT-style (Burckhardt et al.): random priorities
//                       per candidate key, run the highest, demote it at k
//                       pre-drawn preemption points. Finds bugs that need
//                       few ordering constraints with much better
//                       probability than a uniform walk.
//   ReplayStrategy      forces a recorded ScheduleTrace; decisions past
//                       the trace's end fall back to index 0. `diverged()`
//                       reports whether any decision point disagreed with
//                       the recorded candidate count (strict replays
//                       assert it stays false).
//   ExhaustiveStrategy  depth-bounded DFS: enumerate every decision
//                       sequence whose first `max_depth` decisions differ,
//                       choosing 0 beyond the bound. advance() moves to
//                       the next path; false when the space is exhausted.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "explore/trace.hpp"
#include "net/sim_network.hpp"
#include "time/clock.hpp"
#include "util/rng.hpp"

namespace samoa::explore {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Pick an index into `keys` (sorted ascending, size >= 2). Called with
  /// scheduler locks held: must not block or re-enter the runtime.
  virtual std::size_t choose(char kind, const std::vector<std::uint64_t>& keys) = 0;
};

class FirstStrategy final : public Strategy {
 public:
  std::size_t choose(char, const std::vector<std::uint64_t>&) override { return 0; }
};

class RandomWalkStrategy final : public Strategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed) : rng_(seed) {}

  std::size_t choose(char, const std::vector<std::uint64_t>& keys) override {
    return static_cast<std::size_t>(rng_.next_below(keys.size()));
  }

 private:
  Rng rng_;
};

class PctStrategy final : public Strategy {
 public:
  /// `k` preemption points are drawn uniformly from the first `horizon`
  /// decision indices.
  PctStrategy(std::uint64_t seed, std::size_t k, std::size_t horizon = 512);

  std::size_t choose(char kind, const std::vector<std::uint64_t>& keys) override;

 private:
  Rng rng_;
  std::unordered_map<std::uint64_t, std::uint64_t> priority_;  // key -> priority (higher runs)
  std::unordered_set<std::size_t> change_points_;
  std::size_t decision_index_ = 0;
  std::uint64_t demote_next_ = 0;  // descending, below every random priority
};

class ReplayStrategy final : public Strategy {
 public:
  explicit ReplayStrategy(ScheduleTrace trace) : trace_(std::move(trace)) {}

  std::size_t choose(char kind, const std::vector<std::uint64_t>& keys) override;

  bool diverged() const { return diverged_; }

 private:
  ScheduleTrace trace_;
  std::size_t index_ = 0;
  bool diverged_ = false;
};

class ExhaustiveStrategy final : public Strategy {
 public:
  explicit ExhaustiveStrategy(std::size_t max_depth) : max_depth_(max_depth) {}

  std::size_t choose(char, const std::vector<std::uint64_t>& keys) override;

  /// Advance the DFS using the decisions the last run actually executed.
  /// Returns false when every path within the depth bound has been run.
  bool advance(const ScheduleTrace& executed);

 private:
  std::size_t max_depth_;
  std::vector<std::uint32_t> prefix_;  // forced choices for the next run
  std::size_t index_ = 0;
};

/// Adapter wiring a Strategy into VirtualClock's WakePolicy seam: each
/// clock-level choice (which dispatch turn / timer fires next) becomes a
/// 'c' decision in the trace. Candidate keys are (kind, worker) — stable
/// across runs of a deterministic simulation. Install with
/// VirtualClock::set_wake_policy; `choose` runs under the clock's mutex,
/// which also serialises trace recording.
class ExploringWakePolicy final : public time::WakePolicy {
 public:
  explicit ExploringWakePolicy(Strategy& strategy) : strategy_(&strategy) {}

  std::size_t choose(const std::vector<time::RunnableStep>& steps) override;

  const ScheduleTrace& trace() const { return trace_; }

 private:
  Strategy* strategy_;
  ScheduleTrace trace_;
};

/// Adapter wiring a Strategy into SimNetwork's DeliveryHook seam: each
/// drain step with >= 2 eligible events (due lane heads, due control/fault
/// events) becomes an 'n' decision in the trace. Candidate keys are
/// destination site ids (packets) and kControlKeyBase + schedule index
/// (controls) — stable across runs of a deterministic simulation. Install
/// with SimNetwork::set_delivery_hook; `choose` runs under the network's
/// mutex, which also serialises trace recording.
class ExploringDeliveryHook final : public net::DeliveryHook {
 public:
  explicit ExploringDeliveryHook(Strategy& strategy) : strategy_(&strategy) {}

  std::size_t choose(const std::vector<std::uint64_t>& keys) override;

  const ScheduleTrace& trace() const { return trace_; }

 private:
  Strategy* strategy_;
  ScheduleTrace trace_;
};

}  // namespace samoa::explore
