#include "explore/trace.hpp"

#include <sstream>
#include <stdexcept>

namespace samoa::explore {

std::string ScheduleTrace::encode() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < decisions_.size(); ++i) {
    if (i) os << '.';
    os << decisions_[i].kind << decisions_[i].chosen << '/' << decisions_[i].ncand;
  }
  return os.str();
}

ScheduleTrace ScheduleTrace::decode(const std::string& text) {
  ScheduleTrace trace;
  if (text.empty()) return trace;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t end = text.find('.', pos);
    const std::string tok = text.substr(pos, end == std::string::npos ? end : end - pos);
    if (tok.size() < 4 || (tok[0] != 's' && tok[0] != 'c' && tok[0] != 'n')) {
      throw std::invalid_argument("ScheduleTrace: bad token '" + tok + "'");
    }
    const std::size_t slash = tok.find('/');
    if (slash == std::string::npos || slash == 1 || slash + 1 >= tok.size()) {
      throw std::invalid_argument("ScheduleTrace: bad token '" + tok + "'");
    }
    Decision d;
    d.kind = tok[0];
    try {
      d.chosen = static_cast<std::uint32_t>(std::stoul(tok.substr(1, slash - 1)));
      d.ncand = static_cast<std::uint32_t>(std::stoul(tok.substr(slash + 1)));
    } catch (const std::exception&) {
      throw std::invalid_argument("ScheduleTrace: bad token '" + tok + "'");
    }
    if (d.ncand < 2 || d.chosen >= d.ncand) {
      throw std::invalid_argument("ScheduleTrace: out-of-range token '" + tok + "'");
    }
    trace.decisions_.push_back(d);
    if (end == std::string::npos) break;
    pos = end + 1;
  }
  return trace;
}

}  // namespace samoa::explore
