#include "explore/runner.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/runtime.hpp"
#include "explore/schedule_controller.hpp"
#include "explore/shrink.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace samoa::explore {

namespace {

/// Workload microprotocol: the handler yields the interleaving token in
/// the middle of its critical section, so a controller that fails to gate
/// the microprotocol lets another computation's handler start in between —
/// which the trace shows as overlapping intervals (checker rule 1).
/// Counters are atomic only to keep kUnsync runs UB-free under TSan; the
/// oracle is the trace, not the counters.
class YieldMp : public Microprotocol {
 public:
  explicit YieldMp(std::string name) : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [this](Context& ctx, const Message&) {
      entered.fetch_add(1, std::memory_order_relaxed);
      ctx.yield_point("mid");
      left.fetch_add(1, std::memory_order_relaxed);
    });
  }

  const Handler* handler = nullptr;
  std::atomic<int> entered{0};
  std::atomic<int> left{0};
};

struct Workload {
  Stack stack;
  std::vector<YieldMp*> mps;
  std::vector<EventType> events;          // events[i] triggers mps[i]
  std::vector<std::vector<int>> plans;    // per computation: mp indices, in call order
};

/// Build the cell workload. Everything here is a pure function of the cell
/// seed — identical across every schedule of the cell, which is what makes
/// (seed, trace) a complete replay key.
void build_workload(const CellOptions& opts, Workload& w) {
  const int mps = std::max(opts.mps, 1);
  const int comps = std::max(opts.comps, 1);
  const int calls = std::max(opts.calls, 1);
  w.mps.reserve(static_cast<std::size_t>(mps));
  w.events.reserve(static_cast<std::size_t>(mps));
  for (int i = 0; i < mps; ++i) {
    w.mps.push_back(&w.stack.emplace<YieldMp>("mp" + std::to_string(i)));
    w.events.emplace_back("ev" + std::to_string(i));
    w.stack.bind(w.events.back(), *w.mps.back()->handler);
  }
  Rng rng(opts.seed);
  w.plans.resize(static_cast<std::size_t>(comps));
  for (auto& plan : w.plans) {
    plan.reserve(static_cast<std::size_t>(calls));
    // First call always hits mp0: a guaranteed shared hotspot, so every
    // pair of computations conflicts and a bad interleaving exists to find.
    plan.push_back(0);
    for (int c = 1; c < calls; ++c) {
      plan.push_back(static_cast<int>(rng.next_below(static_cast<std::uint64_t>(mps))));
    }
  }
}

Isolation make_isolation(const CellOptions& opts, const Workload& w, const std::vector<int>& plan) {
  std::vector<int> distinct;  // first-occurrence order
  for (int idx : plan) {
    if (std::find(distinct.begin(), distinct.end(), idx) == distinct.end()) distinct.push_back(idx);
  }
  switch (opts.policy) {
    case CCPolicy::kVCABound: {
      std::vector<std::pair<const Microprotocol*, std::uint32_t>> bounds;
      for (int idx : distinct) {
        const auto count = static_cast<std::uint32_t>(std::count(plan.begin(), plan.end(), idx));
        bounds.emplace_back(w.mps[static_cast<std::size_t>(idx)], count);
      }
      return Isolation::bound(std::move(bounds));
    }
    case CCPolicy::kVCARoute: {
      RouteSpec spec;
      for (int idx : distinct) spec.entry(*w.mps[static_cast<std::size_t>(idx)]->handler);
      return Isolation::route(std::move(spec));
    }
    case CCPolicy::kVCARW: {
      std::vector<std::pair<const Microprotocol*, Access>> accesses;
      for (int idx : distinct) {
        accesses.emplace_back(w.mps[static_cast<std::size_t>(idx)], Access::kWrite);
      }
      return Isolation::read_write(std::move(accesses));
    }
    default: {
      std::vector<const Microprotocol*> members;
      for (int idx : distinct) members.push_back(w.mps[static_cast<std::size_t>(idx)]);
      return Isolation::basic(std::move(members));
    }
  }
}

const char* policy_enum_name(CCPolicy policy) {
  switch (policy) {
    case CCPolicy::kSerial:
      return "kSerial";
    case CCPolicy::kUnsync:
      return "kUnsync";
    case CCPolicy::kVCABasic:
      return "kVCABasic";
    case CCPolicy::kVCABound:
      return "kVCABound";
    case CCPolicy::kVCARoute:
      return "kVCARoute";
    case CCPolicy::kVCARW:
      return "kVCARW";
    case CCPolicy::kTSO:
      return "kTSO";
  }
  return "kVCABasic";
}

const char* strategy_enum_name(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFirst:
      return "kFirst";
    case StrategyKind::kRandomWalk:
      return "kRandomWalk";
    case StrategyKind::kPct:
      return "kPct";
    case StrategyKind::kExhaustive:
      return "kExhaustive";
  }
  return "kRandomWalk";
}

/// Per-run strategy seed: decorrelated from the workload seed (which feeds
/// the plans) and from neighbouring runs.
std::uint64_t run_seed(std::uint64_t cell_seed, std::size_t run_index) {
  SplitMix64 mix(cell_seed ^ (0x9E3779B97F4A7C15ULL * (run_index + 1)));
  return mix.next();
}

std::unique_ptr<Strategy> make_fresh_strategy(const CellOptions& opts, std::size_t run_index) {
  switch (opts.strategy) {
    case StrategyKind::kFirst:
      return std::make_unique<FirstStrategy>();
    case StrategyKind::kPct:
      return std::make_unique<PctStrategy>(run_seed(opts.seed, run_index), opts.pct_k);
    default:
      return std::make_unique<RandomWalkStrategy>(run_seed(opts.seed, run_index));
  }
}

/// Standalone snippet a human can paste into a test body to re-execute the
/// shrunk schedule.
std::string make_repro(const CellOptions& o, const ScheduleTrace& trace) {
  std::ostringstream out;
  out << "// Repro: replays the shrunk violating schedule bit-for-bit.\n"
      << "samoa::explore::CellOptions o;\n"
      << "o.policy = samoa::CCPolicy::" << policy_enum_name(o.policy) << ";\n"
      << "o.strategy = samoa::explore::StrategyKind::" << strategy_enum_name(o.strategy) << ";\n"
      << "o.seed = " << o.seed << "ULL;\n"
      << "o.comps = " << o.comps << ";\n"
      << "o.mps = " << o.mps << ";\n"
      << "o.calls = " << o.calls << ";\n"
      << "auto r = samoa::explore::replay_schedule(\n"
      << "    o, samoa::explore::ScheduleTrace::decode(\"" << trace.encode() << "\"));\n"
      << "ASSERT_FALSE(r.replay_diverged);\n"
      << "ASSERT_TRUE(r.violated);\n";
  return out.str();
}

void dump_if_requested(const CellResult& res) {
  const char* dir = std::getenv("SAMOA_EXPLORE_DUMP_DIR");
  if (dir == nullptr || *dir == '\0') return;
  std::ofstream out(std::string(dir) + "/" + res.cell_name() + ".trace");
  if (!out) return;
  out << "cell: " << res.cell_name() << "\n"
      << "schedules_run: " << res.schedules_run << "\n"
      << "first_violation: " << res.first_violation.encode() << "\n"
      << "shrunk: " << res.shrunk.encode() << "\n"
      << res.violation_summary << "\n\n"
      << res.repro;
}

}  // namespace

void DecisionCounts::add(const ScheduleTrace& trace) {
  for (const Decision& d : trace.decisions()) {
    switch (d.kind) {
      case 's':
        ++s;
        break;
      case 'c':
        ++c;
        break;
      case 'n':
        ++n;
        break;
      default:
        break;
    }
  }
}

std::string DecisionCounts::summary() const {
  std::ostringstream out;
  out << "s=" << s << " c=" << c << " n=" << n;
  return out.str();
}

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kFirst:
      return "first";
    case StrategyKind::kRandomWalk:
      return "random-walk";
    case StrategyKind::kPct:
      return "pct";
    case StrategyKind::kExhaustive:
      return "exhaustive";
  }
  return "?";
}

std::string CellResult::cell_name() const {
  std::ostringstream out;
  out << to_string(options.policy) << "_" << to_string(options.strategy) << "_seed"
      << options.seed;
  return out.str();
}

std::size_t schedule_budget(std::size_t base) {
  const char* env = std::getenv("SAMOA_EXPLORE_SCHEDULES");
  if (env == nullptr || *env == '\0') return base;
  char* end = nullptr;
  const unsigned long long mult = std::strtoull(env, &end, 10);
  if (end == env || mult == 0) return base;
  return base * static_cast<std::size_t>(std::min<unsigned long long>(mult, 10000));
}

std::string canonical_log(const std::vector<TraceEvent>& events) {
  std::unordered_map<std::uint32_t, std::size_t> mp_ix;
  std::unordered_map<std::uint32_t, std::size_t> h_ix;
  auto dense = [](std::unordered_map<std::uint32_t, std::size_t>& map, std::uint32_t raw) {
    return map.emplace(raw, map.size()).first->second;
  };
  std::ostringstream out;
  for (const TraceEvent& e : events) {
    out << e.seq << ':' << to_string(e.phase) << ":k" << e.computation.value() << ":m"
        << dense(mp_ix, e.microprotocol.value()) << ":h" << dense(h_ix, e.handler.value());
    if (e.read_only) out << ":ro";
    out << '\n';
  }
  return out.str();
}

RunResult run_schedule(const CellOptions& opts, Strategy& strategy) {
  Workload w;
  build_workload(opts, w);

  ScheduleController sched(strategy);
  RuntimeOptions ro;
  ro.policy = opts.policy;
  ro.record_trace = true;
  ro.step_hook = &sched;
  ro.dispatch_impl = opts.dispatch_impl;  // non-null hook resolves this to the pool
  Runtime rt(w.stack, ro);

  sched.pause();
  std::vector<ComputationHandle> handles;
  handles.reserve(w.plans.size());
  for (const auto& plan : w.plans) {
    handles.push_back(rt.spawn_isolated(make_isolation(opts, w, plan), [&w, plan](Context& ctx) {
      for (int idx : plan) ctx.trigger(w.events[static_cast<std::size_t>(idx)]);
    }));
  }
  sched.resume();
  rt.drain();

  RunResult r;
  r.events = rt.trace()->snapshot();
  r.executed = sched.trace();
  r.steps = sched.steps();
  IsolationReport report = check_isolation(r.events);
  r.violated = !report.isolated;
  if (r.violated) r.violation_summary = report.summary();
  return r;
}

RunResult replay_schedule(const CellOptions& opts, const ScheduleTrace& trace) {
  ReplayStrategy strategy(trace);
  RunResult r = run_schedule(opts, strategy);
  r.replay_diverged = strategy.diverged();
  return r;
}

CellResult explore_cell(const CellOptions& opts) {
  CellResult res;
  res.options = opts;
  const std::size_t budget = schedule_budget(opts.max_schedules);

  auto note_run = [&](const RunResult& r) {
    ++res.schedules_run;
    res.decision_points += r.executed.size();
    res.decisions.add(r.executed);
  };

  auto on_violation = [&](const RunResult& r) {
    res.violation_found = true;
    res.first_violation = r.executed;
    res.violation_summary = r.violation_summary;
    ShrinkRunFn rerun = [&](const ScheduleTrace& forced) {
      RunResult rr = replay_schedule(opts, forced);
      note_run(rr);
      return ShrinkOutcome{rr.violated, rr.executed};
    };
    res.shrunk = shrink_trace(r.executed, rerun, opts.shrink_budget);
    res.repro = make_repro(opts, res.shrunk);
    dump_if_requested(res);
  };

  if (opts.strategy == StrategyKind::kExhaustive) {
    ExhaustiveStrategy strategy(opts.exhaustive_depth);
    for (std::size_t i = 0; i < budget; ++i) {
      RunResult r = run_schedule(opts, strategy);
      note_run(r);
      if (r.violated) {
        on_violation(r);
        break;
      }
      if (!strategy.advance(r.executed)) break;  // space exhausted to depth
    }
  } else {
    for (std::size_t i = 0; i < budget; ++i) {
      std::unique_ptr<Strategy> strategy = make_fresh_strategy(opts, i);
      RunResult r = run_schedule(opts, *strategy);
      note_run(r);
      if (r.violated) {
        on_violation(r);
        break;
      }
      if (opts.strategy == StrategyKind::kFirst) break;  // deterministic: one run says it all
    }
  }
  return res;
}

std::vector<CellResult> sweep(const std::vector<CCPolicy>& policies,
                              const std::vector<StrategyKind>& strategies,
                              const std::vector<std::uint64_t>& seeds, const CellOptions& base) {
  std::vector<CellResult> results;
  results.reserve(policies.size() * strategies.size() * seeds.size());
  for (CCPolicy policy : policies) {
    for (StrategyKind strategy : strategies) {
      for (std::uint64_t seed : seeds) {
        CellOptions opts = base;
        opts.policy = policy;
        opts.strategy = strategy;
        opts.seed = seed;
        results.push_back(explore_cell(opts));
      }
    }
  }
  return results;
}

}  // namespace samoa::explore
