// ExploreRunner — strategy x seed sweeps of schedule exploration cells.
//
// A *cell* is a fully-seeded conflict workload (a stack of yield-pointed
// microprotocols, `comps` computations each triggering a seeded plan of
// handlers) run under one controller policy and one exploration strategy.
// Every schedule's TraceEvent log is fed through check_isolation; a
// violation stops the cell, gets shrunk by delta debugging, and is
// reported with the executed decision trace plus a standalone repro
// snippet. This is the sanity gate from the issue: within a bounded number
// of schedules the explorer must flag kUnsync as non-isolated on the
// conflicting workload, while kSerial, the VCA family and kTSO stay clean.
//
// Environment knobs (CI):
//   SAMOA_EXPLORE_SCHEDULES   integer multiplier on every cell's schedule
//                             budget (nightly sweeps run longer than tier-1)
//   SAMOA_EXPLORE_DUMP_DIR    if set, violating cells write their shrunk
//                             trace + repro to <dir>/<cell>.trace
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cc/controller.hpp"
#include "core/runtime.hpp"
#include "core/trace.hpp"
#include "explore/strategy.hpp"
#include "explore/trace.hpp"

namespace samoa::explore {

enum class StrategyKind { kFirst, kRandomWalk, kPct, kExhaustive };

const char* to_string(StrategyKind kind);

struct CellOptions {
  CCPolicy policy = CCPolicy::kVCABasic;
  StrategyKind strategy = StrategyKind::kRandomWalk;
  std::uint64_t seed = 1;
  /// Workload shape: `comps` computations, each issuing `calls` triggers
  /// drawn (seeded) from a stack of `mps` microprotocols.
  int comps = 4;
  int mps = 3;
  int calls = 3;
  std::size_t max_schedules = 64;
  std::size_t pct_k = 3;
  std::size_t exhaustive_depth = 8;
  std::size_t shrink_budget = 150;
  /// Requested dispatch substrate for the cell's runtime. Exploration
  /// always resolves to the elastic pool (the ScheduleController's token
  /// barrier needs independently startable tasks — see
  /// RuntimeOptions::dispatch_impl), so a kExecutor request explores the
  /// same schedule space and replays the same traces bit-for-bit; the
  /// knob exists so that pin is a tested fact rather than an assumption.
  DispatchImpl dispatch_impl = DispatchImpl::kAuto;
};

/// One schedule of a cell.
struct RunResult {
  bool violated = false;
  ScheduleTrace executed;
  std::uint64_t steps = 0;  // scheduling points incl. single-candidate ones
  std::vector<TraceEvent> events;
  std::string violation_summary;
  bool replay_diverged = false;  // replay_schedule only
};

/// Recorded decisions per kind ('s' step / 'c' clock / 'n' network) across
/// a cell's schedules. Surfaced in sweep summaries so budget exhaustion on
/// network-heavy cells is diagnosable: a cell whose budget went mostly to
/// 'n' decisions explored little of the step space, and vice versa.
struct DecisionCounts {
  std::uint64_t s = 0;
  std::uint64_t c = 0;
  std::uint64_t n = 0;

  std::uint64_t total() const { return s + c + n; }
  void add(const ScheduleTrace& trace);
  std::string summary() const;  // "s=120 c=14 n=0"
};

struct CellResult {
  CellOptions options;
  std::size_t schedules_run = 0;
  std::uint64_t decision_points = 0;  // recorded decisions across all schedules
  DecisionCounts decisions;           // the same decisions, split by kind
  bool violation_found = false;
  ScheduleTrace first_violation;  // executed trace of the first violating run
  ScheduleTrace shrunk;           // delta-debugged minimum (still violating)
  std::string violation_summary;
  std::string repro;  // standalone snippet reproducing the shrunk schedule

  std::string cell_name() const;
};

/// Execute the cell workload once under `strategy`.
RunResult run_schedule(const CellOptions& opts, Strategy& strategy);

/// Replay a recorded (cell, trace) pair — same workload seed, decisions
/// forced from `trace`. With an unchanged cell the replay is bit-for-bit:
/// identical TraceEvent log, replay_diverged == false.
RunResult replay_schedule(const CellOptions& opts, const ScheduleTrace& trace);

/// Run up to max_schedules schedules (times SAMOA_EXPLORE_SCHEDULES);
/// stop at the first violation, shrink it, build the repro.
CellResult explore_cell(const CellOptions& opts);

/// explore_cell over the cross product, one CellResult per cell.
std::vector<CellResult> sweep(const std::vector<CCPolicy>& policies,
                              const std::vector<StrategyKind>& strategies,
                              const std::vector<std::uint64_t>& seeds,
                              const CellOptions& base);

/// `base` scaled by the SAMOA_EXPLORE_SCHEDULES multiplier (default 1).
std::size_t schedule_budget(std::size_t base);

/// Canonical rendering of a TraceEvent log: MicroprotocolId/HandlerId are
/// process-global allocations, so two runs of the same cell carry
/// different raw ids even when they executed the same schedule. This remaps
/// both to dense first-appearance indices (ComputationId is already
/// per-runtime); two runs took the same schedule iff their canonical logs
/// are equal.
std::string canonical_log(const std::vector<TraceEvent>& events);

}  // namespace samoa::explore
