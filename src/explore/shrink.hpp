// Greedy delta-debugging shrinker for violating schedule traces.
//
// Given a decision trace whose replay violates isolation, shrink it before
// reporting: (1) truncate — force only a prefix and let the rest of the
// run follow the natural schedule (index 0); (2) simplify — zero out
// aligned chunks of decisions, halving the chunk size down to 1. Every
// candidate is validated by actually re-running it (the `run` callback
// replays a forced trace and reports whether the violation reproduced,
// plus the decisions the run really executed); `current` is only ever
// replaced by an *executed, still-violating* trace, so the final result is
// directly replayable. Iterates to a fixpoint under a run budget.
#pragma once

#include <cstddef>
#include <functional>

#include "explore/trace.hpp"

namespace samoa::explore {

struct ShrinkOutcome {
  bool violated = false;
  ScheduleTrace executed;
};

/// Replay the forced trace against the workload; report whether the
/// isolation violation reproduced and what was actually executed.
using ShrinkRunFn = std::function<ShrinkOutcome(const ScheduleTrace& forced)>;

struct ShrinkStats {
  std::size_t runs = 0;
  std::size_t original_size = 0;
  std::size_t final_size = 0;
};

/// `original` must be the executed trace of a violating run. Returns the
/// smallest still-violating trace found within `max_runs` replays.
ScheduleTrace shrink_trace(const ScheduleTrace& original, const ShrinkRunFn& run,
                           std::size_t max_runs = 200, ShrinkStats* stats = nullptr);

}  // namespace samoa::explore
