// ScheduleTrace — the compact decision string a schedule run replays from.
//
// Every point where the explorer chose between >= 2 runnable steps is one
// Decision: which sorted candidate was picked and how many there were.
// Single-candidate points are not decisions (there is nothing to choose),
// so a trace is exactly the information-bearing part of a schedule: the
// pair (workload seed, trace) reproduces a run bit-for-bit.
//
// Wire format (one token per decision, '.'-separated):
//
//     s2/4.s0/3.c1/2.n1/3
//
// kind 's' = a step decision (which computation task runs next), kind 'c'
// = a clock decision (which VirtualClock dispatch/timer fires next), kind
// 'n' = a network decision (which eligible SimNetwork event — due lane
// head or due control/fault event — fires next); then chosen-index '/'
// candidate-count. The candidate count is stored so a replayer can detect
// divergence (a forced schedule that no longer matches the workload)
// instead of silently exploring something else.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace samoa::explore {

struct Decision {
  char kind = 's';
  std::uint32_t chosen = 0;
  std::uint32_t ncand = 0;

  friend bool operator==(const Decision&, const Decision&) = default;
};

class ScheduleTrace {
 public:
  ScheduleTrace() = default;
  explicit ScheduleTrace(std::vector<Decision> decisions) : decisions_(std::move(decisions)) {}

  void record(char kind, std::uint32_t chosen, std::uint32_t ncand) {
    decisions_.push_back({kind, chosen, ncand});
  }

  const std::vector<Decision>& decisions() const { return decisions_; }
  std::size_t size() const { return decisions_.size(); }
  bool empty() const { return decisions_.empty(); }
  void clear() { decisions_.clear(); }

  std::string encode() const;
  /// Inverse of encode. Throws std::invalid_argument on malformed input.
  static ScheduleTrace decode(const std::string& text);

  friend bool operator==(const ScheduleTrace&, const ScheduleTrace&) = default;

 private:
  std::vector<Decision> decisions_;
};

}  // namespace samoa::explore
