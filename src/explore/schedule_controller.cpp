#include "explore/schedule_controller.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace samoa::explore {

namespace {
/// The participant whose task runs on this thread (null on unmanaged
/// threads — the driver, other runtimes' workers). Set for the duration of
/// a task body; wait-observer callbacks use it to tell managed parks from
/// unrelated ones (kDrain, kCompletion, kExternal waits of the driver).
thread_local ScheduleController::Participant* t_self = nullptr;
}  // namespace

ScheduleController::ScheduleController(Strategy& strategy) : strategy_(strategy) {
  diag::WaitRegistry::instance().set_observer(this);
}

ScheduleController::~ScheduleController() { diag::WaitRegistry::instance().clear_observer(); }

void ScheduleController::pause() {
  std::lock_guard g(mu_);
  paused_ = true;
}

void ScheduleController::resume() {
  std::lock_guard g(mu_);
  paused_ = false;
  maybe_decide_locked();
}

std::uint64_t ScheduleController::steps() const {
  std::lock_guard g(mu_);
  return steps_;
}

std::uint64_t ScheduleController::on_task_submitted(ComputationId) {
  std::lock_guard g(mu_);
  ++expected_arrivals_;
  return next_ticket_++;
}

void ScheduleController::on_task_started(ComputationId id, std::uint64_t ticket) {
  std::unique_lock lock(mu_);
  auto p = std::make_unique<Participant>();
  p->comp = id.value();
  p->ticket = ticket;
  p->state = State::kWaiting;
  Participant* self = p.get();
  participants_.push_back(std::move(p));
  t_self = self;
  --expected_arrivals_;
  maybe_decide_locked();
  wait_for_grant(lock, *self);
}

void ScheduleController::on_task_finished(ComputationId) {
  std::lock_guard g(mu_);
  if (t_self == nullptr) return;
  t_self->state = State::kDone;
  t_self = nullptr;
  token_held_ = false;
  maybe_decide_locked();
}

void ScheduleController::step_point(ComputationId, const char*) {
  std::unique_lock lock(mu_);
  Participant* self = t_self;
  if (self == nullptr || self->state != State::kRunning) return;
  self->state = State::kWaiting;
  token_held_ = false;
  maybe_decide_locked();
  wait_for_grant(lock, *self);
}

void ScheduleController::resync(ComputationId) {
  std::unique_lock lock(mu_);
  Participant* self = t_self;
  if (self == nullptr) return;
  if (self->state == State::kRunning) return;  // never parked: token still held
  // The preceding call parked and the unpark left us kWaiting (or a
  // decision already re-granted us): block until the token comes back.
  wait_for_grant(lock, *self);
}

void ScheduleController::on_wait_park(diag::WaitKind, std::uint64_t) {
  std::lock_guard g(mu_);
  Participant* self = t_self;
  if (self == nullptr) return;
  if (self->state != State::kRunning && self->state != State::kWaiting) return;
  if (self->state == State::kRunning) token_held_ = false;
  self->state = State::kBlocked;
  maybe_decide_locked();
}

void ScheduleController::on_wait_unpark(diag::WaitKind, std::uint64_t) {
  std::lock_guard g(mu_);
  Participant* self = t_self;
  if (self == nullptr || self->state != State::kBlocked) return;
  self->state = State::kWaiting;
  if (in_flight_wakes_ > 0) --in_flight_wakes_;
  maybe_decide_locked();
}

void ScheduleController::on_wakeup_delivered(std::uint64_t comp) {
  std::lock_guard g(mu_);
  // Count only wakeups aimed at a managed blocked task; the woken thread
  // consumes it in on_wait_unpark. Until then no decision may be taken —
  // the runnable set is about to change.
  for (const auto& p : participants_) {
    if (p->comp == comp && p->state == State::kBlocked) {
      ++in_flight_wakes_;
      return;
    }
  }
}

void ScheduleController::grant_locked(Participant& p) {
  p.state = State::kGranted;
  token_held_ = true;
  p.cv.notify_one();
}

void ScheduleController::wait_for_grant(std::unique_lock<std::mutex>& lock, Participant& p) {
  p.cv.wait(lock, [&] { return p.state == State::kGranted; });
  p.state = State::kRunning;
}

void ScheduleController::maybe_decide_locked() {
  if (paused_ || token_held_ || expected_arrivals_ > 0 || in_flight_wakes_ > 0) return;
  std::vector<Participant*> cands;
  bool any_blocked = false;
  for (const auto& p : participants_) {
    if (p->state == State::kWaiting) cands.push_back(p.get());
    if (p->state == State::kBlocked) any_blocked = true;
  }
  if (cands.empty()) {
    if (any_blocked) report_deadlock_locked();
    return;  // all done (or nothing started yet)
  }
  std::sort(cands.begin(), cands.end(),
            [](const Participant* a, const Participant* b) { return a->ticket < b->ticket; });
  ++steps_;
  std::size_t idx = 0;
  if (cands.size() > 1) {
    std::vector<std::uint64_t> keys;
    keys.reserve(cands.size());
    for (const Participant* p : cands) keys.push_back(p->ticket);
    idx = std::min(strategy_.choose('s', keys), cands.size() - 1);
    trace_.record('s', static_cast<std::uint32_t>(idx), static_cast<std::uint32_t>(cands.size()));
  }
  grant_locked(*cands[idx]);
}

void ScheduleController::report_deadlock_locked() {
  // Every live task is parked and no wake is in flight: this schedule
  // wedged the protocol. Scream with enough context to replay, then die —
  // the deadlock-free policies can only reach this on a real bug.
  std::fprintf(stderr,
               "[explore] DEADLOCK under explored schedule\n[explore] decision trace: %s\n",
               trace_.encode().c_str());
  const auto dump = diag::WaitRegistry::instance().snapshot();
  std::fputs(dump.to_text().c_str(), stderr);
  std::abort();
}

}  // namespace samoa::explore
