// Deadlock watchdog — the detection half of the diag layer.
//
// A background thread samples the WaitRegistry's progress epoch (bumped on
// every version publish, pool task completion and computation completion).
// If the epoch does not move for a full budget while at least one thread
// is parked in a registered wait (or a pool has queued work it cannot
// schedule), the run is stalled: the watchdog takes a blocked-state
// snapshot, derives wait-for edges, runs cycle detection, and emits the
// dump (human-readable to stderr, JSON + text to files when a dump
// directory is configured) before invoking the configured reaction —
// fail-fast abort for tests and benches, or a callback for embedders.
//
// Off by default: nothing constructs a watchdog unless a test, bench or
// embedder installs one. Virtual-time aware: the no-progress budget is
// measured in wall time (a wedged simulation stops consuming wall time
// in handlers but its watchdog thread keeps running), and the stall
// predicate ignores an *idle* process — all workers idle, nothing queued,
// nothing parked — so a quiescent virtual-time fixture never trips it.
// Pointing WatchdogOptions::clock at the run's VirtualClock additionally
// treats simulated-time advancement as progress and gates the stuck-wait
// detector on the virtual clock being frozen.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <functional>
#include <string>
#include <thread>

#include "diag/wait_registry.hpp"

namespace samoa::time {
class ClockSource;
}

namespace samoa::diag {

struct WatchdogOptions {
  /// No-progress window that counts as a stall.
  std::chrono::milliseconds budget{2000};
  std::chrono::milliseconds poll{50};
  /// When > 0, a single wait parked longer than this is a stall *even if
  /// the global progress epoch keeps moving* — background traffic (acks,
  /// retransmissions, ticks) completing work does not prove the
  /// head-of-line computation is live. Disabled by default because some
  /// embedders legitimately hold long waits (e.g. a drain over a long
  /// experiment); tests of bounded workloads should set it.
  std::chrono::milliseconds stuck_wait_budget{0};
  /// When set to a *virtual* clock, the budgets become clock-source-aware:
  /// virtual time advancing counts as progress (the simulation is live
  /// even when no gate publishes), and the stuck-wait detector only trips
  /// once the virtual clock has been frozen for a full stuck budget of
  /// wall time. A legitimately long virtual experiment — hours of
  /// simulated time, every wait parked on a far deadline — therefore
  /// never false-trips, while a wedged simulation (virtual time stuck
  /// because the scheduler cannot reach quiescence) still does. Ignored
  /// for wall clocks, whose now() is the watchdog's own timebase. The
  /// clock must outlive the watchdog.
  time::ClockSource* clock = nullptr;
  /// Included in dump headers and file names.
  std::string name = "watchdog";
  /// When non-empty, the stall dump is written to
  /// <dump_dir>/<name>-<pid>.{txt,json}.
  std::string dump_dir;
  /// Print the text dump to stderr on stall (on by default: a wedged run
  /// should self-diagnose even when file output is not configured).
  bool dump_to_stderr = true;
  /// Abort the process after dumping (fail fast instead of hanging until
  /// an external timeout). The dump is flushed first.
  bool abort_on_stall = false;
  /// Invoked with the dump on every detected stall.
  std::function<void(const Dump&)> on_stall;
};

class DeadlockWatchdog {
 public:
  explicit DeadlockWatchdog(WatchdogOptions opts);
  ~DeadlockWatchdog();

  DeadlockWatchdog(const DeadlockWatchdog&) = delete;
  DeadlockWatchdog& operator=(const DeadlockWatchdog&) = delete;

  /// Number of stalls detected so far.
  std::uint64_t stalls() const { return stalls_.load(std::memory_order_relaxed); }

  /// Manually reset the no-progress timer (e.g. between test iterations
  /// whose boundaries do not bump the progress epoch).
  void kick() { WaitRegistry::instance().note_progress(); }

 private:
  void loop();
  void emit(const Dump& dump, const std::string& reason);

  WatchdogOptions opts_;
  std::atomic<bool> stop_{false};
  std::atomic<std::uint64_t> stalls_{0};
  bool reported_stuck_wait_ = false;  // watchdog thread only
  std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
};

/// Install a process-lifetime watchdog if SAMOA_WATCHDOG is set in the
/// environment (value = budget in milliseconds, empty/0 = 5000). Dump
/// files go to $SAMOA_WATCHDOG_DIR when set; SAMOA_WATCHDOG_STUCK (ms)
/// arms the stuck-wait detector. Benches call this first thing in main so
/// a wedged run self-diagnoses in CI; returns the watchdog (or nullptr
/// when the variable is unset).
DeadlockWatchdog* install_env_watchdog(const std::string& name, bool abort_on_stall = true);

}  // namespace samoa::diag
