#include "diag/watchdog.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "time/clock.hpp"

namespace samoa::diag {

DeadlockWatchdog::DeadlockWatchdog(WatchdogOptions opts) : opts_(std::move(opts)) {
  if (opts_.poll <= std::chrono::milliseconds(0)) opts_.poll = std::chrono::milliseconds(50);
  thread_ = std::thread([this] { loop(); });
}

DeadlockWatchdog::~DeadlockWatchdog() {
  {
    std::unique_lock lock(mu_);
    stop_.store(true, std::memory_order_relaxed);
  }
  cv_.notify_all();
  thread_.join();
}

void DeadlockWatchdog::loop() {
  auto& reg = WaitRegistry::instance();
  std::uint64_t last_epoch = reg.progress_epoch();
  auto last_change = std::chrono::steady_clock::now();
  bool reported_this_stall = false;
  // Clock-source-aware budgets: when watching a virtual clock, track the
  // last simulated timestamp we saw and the wall moment it last moved.
  const bool track_virtual = opts_.clock != nullptr && opts_.clock->is_virtual();
  Clock::time_point last_virtual_now =
      track_virtual ? opts_.clock->now() : Clock::time_point{};
  auto last_virtual_change = last_change;
  std::unique_lock lock(mu_);
  while (!stop_.load(std::memory_order_relaxed)) {
    cv_.wait_for(lock, opts_.poll, [this] { return stop_.load(std::memory_order_relaxed); });
    if (stop_.load(std::memory_order_relaxed)) break;
    const auto epoch = reg.progress_epoch();
    const auto now = std::chrono::steady_clock::now();
    if (track_virtual) {
      const auto vnow = opts_.clock->now();
      if (vnow != last_virtual_now) {
        // Simulated time moving is progress even when nothing publishes:
        // timers are firing, the scheduler keeps reaching quiescent
        // points. Restart both windows and re-arm the stuck detector.
        last_virtual_now = vnow;
        last_virtual_change = now;
        last_change = now;
        reported_this_stall = false;
        reported_stuck_wait_ = false;
      }
    }
    // Stuck-wait check first: it fires even while the epoch advances
    // (background traffic completing does not prove the oldest parked
    // thread will ever run again). Under a virtual clock a wait's wall age
    // only counts while the simulation is frozen — a long virtual sleep
    // parks for real wall time without being wedged.
    std::string reason;
    if (opts_.stuck_wait_budget > std::chrono::milliseconds(0)) {
      auto age = std::chrono::duration_cast<std::chrono::milliseconds>(reg.oldest_wait_age());
      if (track_virtual) {
        const auto frozen =
            std::chrono::duration_cast<std::chrono::milliseconds>(now - last_virtual_change);
        age = std::min(age, frozen);
      }
      if (age >= opts_.stuck_wait_budget) {
        if (!reported_stuck_wait_) {
          reason = "oldest wait parked for " + std::to_string(age.count()) + "ms (budget " +
                   std::to_string(opts_.stuck_wait_budget.count()) + "ms)";
        }
      } else {
        reported_stuck_wait_ = false;  // the starved wait resolved; re-arm
      }
    }
    if (reason.empty()) {
      if (epoch != last_epoch) {
        last_epoch = epoch;
        last_change = now;
        reported_this_stall = false;
        continue;
      }
      if (reported_this_stall || now - last_change < opts_.budget) continue;
      reason = "no progress for " + std::to_string(opts_.budget.count()) + "ms";
    }
    // Only a *blocked* quiescence counts: an idle process (no parked
    // waits, no stuck queue) is healthy. Executor consumers parked on
    // empty queues are idle; an executor shard with queued work and no
    // *running* consumer is exactly a stalled dispatch (a wedged or
    // never-spawned consumer) and must be reported.
    Dump dump = reg.snapshot();
    bool stuck_queue = false;
    for (const PoolState& p : dump.pools) {
      if (!p.queued_tags.empty() && p.idle == 0) stuck_queue = true;
    }
    for (const ExecutorGroupState& e : dump.executors) {
      for (const ExecutorShardState& s : e.shards) {
        if (s.queued > 0 && s.consumer != 2) stuck_queue = true;
      }
    }
    const bool any_blocking_wait =
        std::any_of(dump.waits.begin(), dump.waits.end(),
                    [](const WaitRecord& w) { return w.kind != WaitKind::kExecutorIdle; });
    if (!any_blocking_wait && !stuck_queue) {
      last_change = now;  // idle, not stalled; restart the window
      continue;
    }
    stalls_.fetch_add(1, std::memory_order_relaxed);
    reported_this_stall = true;
    reported_stuck_wait_ = true;
    lock.unlock();
    emit(dump, reason);
    if (opts_.on_stall) opts_.on_stall(dump);
    if (opts_.abort_on_stall) {
      std::fflush(stderr);
      std::abort();
    }
    lock.lock();
  }
}

void DeadlockWatchdog::emit(const Dump& dump, const std::string& reason) {
  const std::string header = "[" + opts_.name + "] " + reason + "; " +
                             (dump.cycle.empty() ? "no cycle named (see wait-for edges)"
                                                 : "DEADLOCK cycle detected") +
                             "\n";
  if (opts_.dump_to_stderr) {
    std::fputs(header.c_str(), stderr);
    std::fputs(dump.to_text().c_str(), stderr);
    std::fflush(stderr);
  }
  if (!opts_.dump_dir.empty()) {
    const std::string base =
        opts_.dump_dir + "/" + opts_.name + "-" + std::to_string(::getpid());
    std::ofstream txt(base + ".txt");
    txt << header << dump.to_text();
    std::ofstream json(base + ".json");
    json << dump.to_json() << "\n";
  }
}

DeadlockWatchdog* install_env_watchdog(const std::string& name, bool abort_on_stall) {
  const char* ms = std::getenv("SAMOA_WATCHDOG");
  if (ms == nullptr) return nullptr;
  WatchdogOptions opts;
  const long parsed = std::atol(ms);
  opts.budget = std::chrono::milliseconds(parsed > 0 ? parsed : 5000);
  opts.name = name;
  opts.abort_on_stall = abort_on_stall;
  if (const char* dir = std::getenv("SAMOA_WATCHDOG_DIR")) opts.dump_dir = dir;
  if (const char* stuck = std::getenv("SAMOA_WATCHDOG_STUCK")) {
    opts.stuck_wait_budget = std::chrono::milliseconds(std::atol(stuck));
  }
  static DeadlockWatchdog* dog = nullptr;  // process lifetime, installed once
  if (dog == nullptr) dog = new DeadlockWatchdog(std::move(opts));
  return dog;
}

}  // namespace samoa::diag
