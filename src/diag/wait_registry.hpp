// Blocked-state introspection — the registry half of the diag layer.
//
// SAMOA's liveness story is "a blocked handler is always unblocked by a
// version publish" (paper Sections 5-6). This registry is how we *check*
// that claim at runtime instead of assuming it: every blocking point in
// the runtime registers a typed wait record before parking (version-gate
// waits, the serial controller's turnstile, runtime drains, completion
// waits), and controllers record which computation will publish each
// version, so a stalled process can produce a thread dump with wait-for
// edges and name the cycle that wedged it.
//
// Registration is always on — it only touches the slow path (a thread
// about to park) — and doubles as the thread pool's park notification:
// ScopedWait tells the worker's ElasticThreadPool that this thread no
// longer consumes a runnable slot, which is what makes the pool's
// deadlock-freedom argument hold under a thread cap (see
// util/thread_pool.hpp). Holder tracking (admission -> version maps used
// for wait-for edges) is also cheap and always on: one map insert per
// (computation, microprotocol) admission.
//
// Lock order: a caller may hold its own gate/controller mutex when
// touching the registry; the registry may take a pool's mutex (snapshot,
// park hints run without registry lock). Nothing ever takes a gate or
// controller mutex from inside the registry or a pool.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

namespace samoa {
class ElasticThreadPool;
}

namespace samoa::diag {

enum class WaitKind {
  kGateExact,   // VersionGate::wait_exact (VCAbasic/route/rw Rule 2, Step 3)
  kGateWindow,  // VersionGate::wait_window (VCAbound Rule 2/3)
  kSerialTurn,  // serial controller turnstile (on_start)
  kClaim,       // TSO claim wait (wait-die: older computation parks)
  kClaimAbort,  // TSO post-abort wait for the killer claim to clear
  kDrain,        // Runtime::drain waiting for inflight_ to empty
  kCompletion,   // ComputationHandle/Computation wait_done
  kExecutorIdle, // executor shard consumer parked on an empty queue — not a
                 // stall: skipped by oldest_wait_age() and the watchdog's
                 // blocked-quiescence predicate
  kExternal,     // test/bench-registered wait (e.g. polling loops)
};

const char* to_string(WaitKind kind);

/// Observer of park/unpark/wakeup transitions, for schedule exploration.
///
/// The explorer needs two things the registry already sees: (1) "this
/// thread is about to park in a controller wait" / "it resumed", so it can
/// release and re-arm the scheduling token, and (2) "a wakeup was handed to
/// computation `comp`", so it can defer scheduling decisions until every
/// delivered-but-not-yet-consumed wakeup has landed (otherwise the runnable
/// set at a decision point would depend on OS thread timing and replay
/// would diverge).
///
/// Calls arrive on the transitioning thread (park/unpark: the waiter
/// itself, from the ScopedWait ctor/dtor; wakeup_delivered: the publisher,
/// from inside the subject's wake path). The subject's mutex may be held
/// for any of them, so implementations must treat their own lock as a leaf
/// and must never block. Exactly one observer may be installed at a time.
class WaitObserver {
 public:
  virtual ~WaitObserver() = default;
  virtual void on_wait_park(WaitKind kind, std::uint64_t comp) = 0;
  virtual void on_wait_unpark(WaitKind kind, std::uint64_t comp) = 0;
  virtual void on_wakeup_delivered(std::uint64_t comp) = 0;
};

/// One parked thread. `subject` identifies what it waits on (a gate or
/// controller address); `awaiting_lo`/`awaiting_hi` the version window it
/// needs ([lo, hi), hi == lo + 1 for exact waits; for kSerialTurn the
/// ticket); `observed` the subject's version when the thread parked.
struct WaitRecord {
  std::uint64_t id = 0;
  WaitKind kind = WaitKind::kExternal;
  const void* subject = nullptr;
  std::string subject_name;
  std::uint64_t awaiting_lo = 0;
  std::uint64_t awaiting_hi = 0;
  std::uint64_t observed = 0;
  std::uint64_t comp = 0;  // waiting computation id (0 = not a computation)
  const samoa::ElasticThreadPool* pool = nullptr;  // set if a pool worker
  std::thread::id thread;
  std::chrono::steady_clock::time_point since{};
};

/// Who will publish a version: admission bookkeeping per subject.
struct HolderEntry {
  std::uint64_t version = 0;
  std::uint64_t comp = 0;
};

/// A subject that tracks its own holders lock-free and hands the registry a
/// snapshot on demand, instead of funnelling every admission through
/// note_admission()'s global mutex. Version gates implement this: with a
/// lock-free admission fast path, one registry-mutex acquisition per
/// admission would serialise exactly the path the sharded ticket scheme
/// de-serialises. Both methods are called only from snapshot() (cold path)
/// and must be safe against concurrent admissions/publishes on the subject;
/// best-effort staleness is fine — dumps are diagnostics, not oracles.
class HolderSource {
 public:
  virtual ~HolderSource() = default;
  virtual std::uint64_t last_published() const = 0;
  virtual std::vector<HolderEntry> outstanding_holders() const = 0;
};

/// Per-thread park notification for worker threads that are not
/// ElasticThreadPool workers. An executor shard consumer installs itself
/// via set_current_park_target(); ScopedWait then brackets every
/// instrumented blocking point on that thread with parked()/unparked(),
/// mirroring the pool's note_worker_parked contract — which is how a
/// single-consumer shard hands its role off instead of wedging the tasks
/// queued behind a gate wait. Lives in diag (not util or core) so the
/// executor gets the hook without an include cycle.
class WorkerParkTarget {
 public:
  virtual ~WorkerParkTarget() = default;
  virtual void note_worker_parked() = 0;
  virtual void note_worker_unparked() = 0;
};

/// The calling thread's park target (null for ordinary threads and pool
/// workers — pools are tracked via ElasticThreadPool::current()).
WorkerParkTarget* current_park_target();
void set_current_park_target(WorkerParkTarget* target);

struct ExecutorShardState {
  std::size_t index = 0;
  int consumer = 0;  // ExecutorGroup::ConsumerState: 0 none, 1 idle, 2 running
  std::size_t queued = 0;
  std::uint64_t running_comp = 0;            // 0 = no task running
  std::vector<std::uint64_t> queued_comps;   // best-effort, truncated
};

struct ExecutorGroupState {
  const void* group = nullptr;
  std::uint64_t dispatched = 0;
  std::uint64_t handoffs = 0;
  std::vector<ExecutorShardState> shards;
};

/// Registered by each ExecutorGroup; snapshot() queries it for dumps and
/// the watchdog's stalled-shard check (queued work with no running
/// consumer). Called under the registry mutex; implementations may take
/// their own shard mutexes but never call back into the registry.
class ExecutorSource {
 public:
  virtual ~ExecutorSource() = default;
  virtual ExecutorGroupState diag_state() const = 0;
};

struct PoolState {
  const samoa::ElasticThreadPool* pool = nullptr;
  std::size_t live = 0;
  std::size_t idle = 0;
  std::size_t parked = 0;
  std::size_t queued = 0;
  std::size_t max_threads = 0;
  std::size_t peak = 0;
  std::vector<std::uint64_t> queued_tags;   // computation ids of queued tasks
  std::vector<std::uint64_t> running_tags;  // computation ids on workers
};

/// A wait-for edge for cycle detection. Nodes are computations (comp != 0)
/// or pools. "from waits for to".
struct WaitEdge {
  std::uint64_t from_comp = 0;
  const samoa::ElasticThreadPool* from_pool = nullptr;
  std::uint64_t to_comp = 0;
  const samoa::ElasticThreadPool* to_pool = nullptr;
  std::string label;  // human-readable reason
};

struct Dump {
  std::chrono::steady_clock::time_point taken{};
  std::vector<WaitRecord> waits;
  std::vector<PoolState> pools;
  std::vector<ExecutorGroupState> executors;
  /// subject -> (name, last published version, outstanding holders)
  struct SubjectState {
    const void* subject = nullptr;
    std::string name;
    std::uint64_t last_published = 0;
    std::vector<HolderEntry> holders;
  };
  std::vector<SubjectState> subjects;
  std::vector<WaitEdge> edges;
  /// Non-empty when cycle detection found a deadlock: the edges of the
  /// first cycle, in order.
  std::vector<WaitEdge> cycle;

  std::string to_text() const;
  std::string to_json() const;
};

class WaitRegistry {
 public:
  static WaitRegistry& instance();

  // --- progress epoch (read by the watchdog) ---
  /// Bumped by every version publish, task completion and computation
  /// completion; an unchanged epoch over a watchdog budget means no
  /// progress.
  void note_progress() { epoch_.fetch_add(1, std::memory_order_relaxed); }
  std::uint64_t progress_epoch() const { return epoch_.load(std::memory_order_relaxed); }

  // --- holder tracking (wait-for edges) ---
  /// Computation `comp` was admitted at `version` of `subject`: it is the
  /// one that will publish `version` (gate lv / serial now_serving reaches
  /// `version` when it completes).
  void note_admission(const void* subject, const char* name, std::uint64_t version,
                      std::uint64_t comp);
  /// `subject` published up to `version`: all holders <= version are done.
  void note_release(const void* subject, std::uint64_t version);
  /// Forget a subject entirely (its owner is being destroyed).
  void forget_subject(const void* subject);

  /// Register `subject` as self-tracking: snapshot() reads holders and the
  /// published version from `src` instead of the registry's own maps, and
  /// the subject never calls note_admission/note_release. Called once at
  /// subject construction (cold); detach via forget_subject.
  void attach_source(const void* subject, const HolderSource* src);

  // --- pools ---
  void register_pool(samoa::ElasticThreadPool* pool);
  void unregister_pool(samoa::ElasticThreadPool* pool);

  // --- executor groups ---
  void register_executor(const ExecutorSource* src);
  void unregister_executor(const ExecutorSource* src);

  /// Snapshot every wait record, pool and subject, derive wait-for edges,
  /// and run cycle detection.
  Dump snapshot() const;

  std::size_t wait_count() const;

  /// Age of the oldest currently-registered wait (zero when none). Lets
  /// the watchdog catch a *starved* wait — one parked far beyond any
  /// reasonable bound while unrelated work keeps the progress epoch
  /// moving (the signature of a head-of-line stall under background
  /// traffic, which pure no-progress detection is blind to).
  std::chrono::steady_clock::duration oldest_wait_age() const;

  // --- wait observer (schedule exploration) ---
  /// Install/remove the process-wide observer. Install before any observed
  /// runtime starts and remove after it drains; the registry does not
  /// synchronise observer lifetime against in-flight waits.
  void set_observer(WaitObserver* obs) { observer_.store(obs, std::memory_order_release); }
  void clear_observer() { observer_.store(nullptr, std::memory_order_release); }
  WaitObserver* observer() const { return observer_.load(std::memory_order_acquire); }

  /// Wake paths (VersionGate, serial turnstile, TSO claims) report each
  /// wakeup they hand to a parked computation, at most once per park (the
  /// caller guards with a per-waiter flag). Called under the subject's
  /// mutex; forwards to the observer if one is installed.
  void note_wakeup_delivered(std::uint64_t comp) {
    if (WaitObserver* obs = observer()) obs->on_wakeup_delivered(comp);
  }

  // -- internal (ScopedWait) --
  std::uint64_t add_wait(WaitRecord rec);
  void remove_wait(std::uint64_t id);

 private:
  struct Subject {
    std::string name;
    std::uint64_t last_published = 0;
    std::map<std::uint64_t, std::uint64_t> holders;  // version -> comp
    /// Non-null for self-tracking subjects (version gates): snapshot()
    /// queries the source and ignores the maps above.
    const HolderSource* source = nullptr;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, WaitRecord> waits_;
  std::unordered_map<const void*, Subject> subjects_;
  std::vector<samoa::ElasticThreadPool*> pools_;
  std::vector<const ExecutorSource*> executors_;
  std::uint64_t next_wait_id_ = 1;
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<WaitObserver*> observer_{nullptr};
};

/// RAII wait registration. Construct immediately before parking (the
/// caller may hold the mutex it parks with) and let it unwind after the
/// wait returns. Also marks the current thread parked in its
/// ElasticThreadPool (or its WorkerParkTarget — executor shard consumer),
/// releasing its runnable slot for the duration.
///
/// Nesting: only the outermost ScopedWait on a thread registers a record
/// and notifies the pool/target/observer. Inner waits (e.g. the
/// OneShotEvent park inside Computation::wait_done, which already holds a
/// kCompletion record) are invisible, so park notifications stay balanced
/// at one per actual park.
class ScopedWait {
 public:
  ScopedWait(WaitKind kind, const void* subject, std::string subject_name,
             std::uint64_t awaiting_lo, std::uint64_t awaiting_hi, std::uint64_t observed);
  ~ScopedWait();

  ScopedWait(const ScopedWait&) = delete;
  ScopedWait& operator=(const ScopedWait&) = delete;

 private:
  std::uint64_t id_ = 0;
  samoa::ElasticThreadPool* pool_ = nullptr;
  WorkerParkTarget* target_ = nullptr;
  WaitKind kind_ = WaitKind::kExternal;
  std::uint64_t comp_ = 0;
  bool outermost_ = false;
};

/// Thread-local id of the computation whose task runs on this thread
/// (0 = none). Set by the runtime around root/async task bodies so gate
/// waits can attribute themselves.
std::uint64_t current_computation();

class ScopedComputation {
 public:
  explicit ScopedComputation(std::uint64_t comp);
  ~ScopedComputation();

  ScopedComputation(const ScopedComputation&) = delete;
  ScopedComputation& operator=(const ScopedComputation&) = delete;

 private:
  std::uint64_t prev_;
};

}  // namespace samoa::diag
