#include "diag/wait_registry.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/thread_pool.hpp"

namespace samoa::diag {

const char* to_string(WaitKind kind) {
  switch (kind) {
    case WaitKind::kGateExact:
      return "gate-exact";
    case WaitKind::kGateWindow:
      return "gate-window";
    case WaitKind::kSerialTurn:
      return "serial-turn";
    case WaitKind::kClaim:
      return "claim";
    case WaitKind::kClaimAbort:
      return "claim-abort";
    case WaitKind::kDrain:
      return "drain";
    case WaitKind::kCompletion:
      return "completion";
    case WaitKind::kExecutorIdle:
      return "executor-idle";
    case WaitKind::kExternal:
      return "external";
  }
  return "?";
}

WaitRegistry& WaitRegistry::instance() {
  static WaitRegistry* reg = new WaitRegistry();  // leaked: outlives all users
  return *reg;
}

void WaitRegistry::note_admission(const void* subject, const char* name, std::uint64_t version,
                                  std::uint64_t comp) {
  std::unique_lock lock(mu_);
  auto& s = subjects_[subject];
  if (s.name.empty() && name != nullptr) s.name = name;
  s.holders.emplace(version, comp);
}

void WaitRegistry::note_release(const void* subject, std::uint64_t version) {
  std::unique_lock lock(mu_);
  auto it = subjects_.find(subject);
  if (it == subjects_.end()) return;
  auto& s = it->second;
  s.last_published = std::max(s.last_published, version);
  s.holders.erase(s.holders.begin(), s.holders.upper_bound(version));
}

void WaitRegistry::forget_subject(const void* subject) {
  std::unique_lock lock(mu_);
  subjects_.erase(subject);
}

void WaitRegistry::attach_source(const void* subject, const HolderSource* src) {
  std::unique_lock lock(mu_);
  subjects_[subject].source = src;
}

void WaitRegistry::register_pool(samoa::ElasticThreadPool* pool) {
  std::unique_lock lock(mu_);
  pools_.push_back(pool);
}

void WaitRegistry::unregister_pool(samoa::ElasticThreadPool* pool) {
  std::unique_lock lock(mu_);
  pools_.erase(std::remove(pools_.begin(), pools_.end(), pool), pools_.end());
}

void WaitRegistry::register_executor(const ExecutorSource* src) {
  std::unique_lock lock(mu_);
  executors_.push_back(src);
}

void WaitRegistry::unregister_executor(const ExecutorSource* src) {
  std::unique_lock lock(mu_);
  executors_.erase(std::remove(executors_.begin(), executors_.end(), src), executors_.end());
}

std::uint64_t WaitRegistry::add_wait(WaitRecord rec) {
  std::unique_lock lock(mu_);
  rec.id = next_wait_id_++;
  const auto id = rec.id;
  if (!rec.subject_name.empty() && rec.subject != nullptr) {
    // Admissions only know microprotocol ids; the first waiter that knows
    // the human name backfills it for dumps.
    auto it = subjects_.find(rec.subject);
    if (it != subjects_.end() && it->second.name.empty()) it->second.name = rec.subject_name;
  }
  waits_.emplace(id, std::move(rec));
  return id;
}

void WaitRegistry::remove_wait(std::uint64_t id) {
  std::unique_lock lock(mu_);
  waits_.erase(id);
}

std::size_t WaitRegistry::wait_count() const {
  std::unique_lock lock(mu_);
  return waits_.size();
}

std::chrono::steady_clock::duration WaitRegistry::oldest_wait_age() const {
  std::unique_lock lock(mu_);
  // An executor consumer parked on an empty queue is idle, not starved —
  // it would otherwise look like a stuck wait for as long as the runtime
  // is quiet and trip the watchdog's stuck-wait budget.
  auto oldest = std::chrono::steady_clock::time_point::max();
  bool any = false;
  for (const auto& [id, rec] : waits_) {
    if (rec.kind == WaitKind::kExecutorIdle) continue;
    oldest = std::min(oldest, rec.since);
    any = true;
  }
  if (!any) return {};
  return std::chrono::steady_clock::now() - oldest;
}

Dump WaitRegistry::snapshot() const {
  Dump d;
  d.taken = std::chrono::steady_clock::now();
  std::vector<samoa::ElasticThreadPool*> pools;
  {
    std::unique_lock lock(mu_);
    d.waits.reserve(waits_.size());
    for (const auto& [id, rec] : waits_) d.waits.push_back(rec);
    for (const auto& [subject, s] : subjects_) {
      Dump::SubjectState ss;
      ss.subject = subject;
      ss.name = s.name;
      if (s.source != nullptr) {
        // Self-tracking subject (version gate): pull a lock-free snapshot.
        // Sources never call back into the registry, so querying them under
        // mu_ is safe.
        ss.last_published = s.source->last_published();
        ss.holders = s.source->outstanding_holders();
      } else {
        ss.last_published = s.last_published;
        for (const auto& [ver, comp] : s.holders) ss.holders.push_back({ver, comp});
      }
      d.subjects.push_back(std::move(ss));
    }
    // Pool snapshots nest the pool mutex under the registry mutex (the
    // registry lock also blocks unregister_pool, keeping the pointers
    // alive). Pools never call back into the registry under their lock.
    for (auto* p : pools_) d.pools.push_back(p->diag_state());
    // Same contract for executor groups (shard mutexes are leaves).
    for (const auto* e : executors_) d.executors.push_back(e->diag_state());
  }
  std::sort(d.waits.begin(), d.waits.end(),
            [](const WaitRecord& a, const WaitRecord& b) { return a.id < b.id; });
  std::sort(d.subjects.begin(), d.subjects.end(),
            [](const auto& a, const auto& b) { return a.subject < b.subject; });

  // --- derive wait-for edges ---
  std::unordered_map<const void*, const Dump::SubjectState*> subject_index;
  for (const auto& s : d.subjects) subject_index.emplace(s.subject, &s);
  for (const WaitRecord& w : d.waits) {
    auto sit = subject_index.find(w.subject);
    if (sit == subject_index.end()) continue;
    const Dump::SubjectState* s = sit->second;
    // Every outstanding holder at or below the version the waiter needs
    // must publish before the wait can end; each is a real blocker.
    // kSerialTurn waits for now_serving == ticket, so strictly-older
    // tickets block; gate waits need lv to reach awaiting_lo, so holders
    // up to and including awaiting_lo block. Only the *nearest* few are
    // materialised as edges: with thousands of queued waiters a full
    // cross-product is quadratic, and a cycle through a farther holder
    // still shows up transitively via that holder's own wait record.
    const bool inclusive = w.kind != WaitKind::kSerialTurn;
    constexpr std::size_t kMaxHoldersPerWait = 8;
    auto past_end = std::upper_bound(
        s->holders.begin(), s->holders.end(), w.awaiting_lo,
        [](std::uint64_t lo, const HolderEntry& h) { return lo < h.version; });
    if (!inclusive) {
      while (past_end != s->holders.begin() && std::prev(past_end)->version == w.awaiting_lo) {
        --past_end;
      }
    }
    auto first = past_end;
    for (std::size_t n = 0; first != s->holders.begin() && n < kMaxHoldersPerWait; ++n) --first;
    for (auto hit = first; hit != past_end; ++hit) {
      const HolderEntry& h = *hit;
      if (h.comp == w.comp) continue;  // waiting on an older version of itself
      if (w.comp == 0) continue;
      WaitEdge e;
      e.from_comp = w.comp;
      e.to_comp = h.comp;
      std::ostringstream os;
      os << "comp " << w.comp << " " << to_string(w.kind) << " on " << s->name << " needs v"
         << w.awaiting_lo << (inclusive ? "" : " served") << "; v" << h.version << " held by comp "
         << h.comp;
      e.label = os.str();
      d.edges.push_back(std::move(e));
    }
  }
  // A computation whose task is queued in a pool that cannot schedule it
  // (no idle worker, growth exhausted) waits for the pool; the pool waits
  // for every computation its workers currently serve.
  for (const PoolState& p : d.pools) {
    const bool saturated =
        !p.queued_tags.empty() && p.idle == 0 && p.live - p.parked >= p.max_threads;
    if (!saturated) continue;
    std::unordered_set<std::uint64_t> queued_seen;
    for (std::uint64_t comp : p.queued_tags) {
      if (comp == 0 || !queued_seen.insert(comp).second) continue;
      WaitEdge e;
      e.from_comp = comp;
      e.to_pool = p.pool;
      std::ostringstream os;
      os << "comp " << comp << " has a runnable task queued in saturated pool (live=" << p.live
         << " parked=" << p.parked << " max=" << p.max_threads << ")";
      e.label = os.str();
      d.edges.push_back(std::move(e));
    }
    std::unordered_set<std::uint64_t> running_seen;
    for (std::uint64_t comp : p.running_tags) {
      if (comp == 0 || !running_seen.insert(comp).second) continue;
      WaitEdge e;
      e.from_pool = p.pool;
      e.to_comp = comp;
      std::ostringstream os;
      os << "pool worker occupied by comp " << comp;
      e.label = os.str();
      d.edges.push_back(std::move(e));
    }
  }

  // --- cycle detection (iterative DFS over comp/pool nodes) ---
  // Node key: computations get their id, pools get a pointer-derived key
  // in a disjoint range.
  auto node_of = [](std::uint64_t comp, const samoa::ElasticThreadPool* pool) -> std::uint64_t {
    return comp != 0 ? comp : reinterpret_cast<std::uintptr_t>(pool) | (1ull << 63);
  };
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> out;  // node -> edge idx
  for (std::size_t i = 0; i < d.edges.size(); ++i) {
    out[node_of(d.edges[i].from_comp, d.edges[i].from_pool)].push_back(i);
  }
  std::unordered_map<std::uint64_t, int> colour;  // 0 white 1 grey 2 black
  std::vector<std::size_t> path;                  // edge indices along DFS
  std::vector<WaitEdge> cycle;
  std::function<bool(std::uint64_t)> dfs = [&](std::uint64_t node) -> bool {
    colour[node] = 1;
    auto it = out.find(node);
    if (it != out.end()) {
      for (std::size_t ei : it->second) {
        const auto to = node_of(d.edges[ei].to_comp, d.edges[ei].to_pool);
        const int c = colour[to];
        if (c == 1) {
          // Found a back edge: unwind `path` to the first edge leaving `to`.
          path.push_back(ei);
          std::size_t start = 0;
          for (std::size_t i = 0; i < path.size(); ++i) {
            if (node_of(d.edges[path[i]].from_comp, d.edges[path[i]].from_pool) == to) {
              start = i;
              break;
            }
          }
          for (std::size_t i = start; i < path.size(); ++i) cycle.push_back(d.edges[path[i]]);
          return true;
        }
        if (c == 0) {
          path.push_back(ei);
          if (dfs(to)) return true;
          path.pop_back();
        }
      }
    }
    colour[node] = 2;
    return false;
  };
  for (const auto& [node, edges] : out) {
    (void)edges;
    if (colour[node] == 0 && dfs(node)) break;
  }
  d.cycle = std::move(cycle);
  return d;
}

std::string Dump::to_text() const {
  std::ostringstream os;
  os << "=== samoa blocked-state dump ===\n";
  os << waits.size() << " blocked thread(s), " << pools.size() << " pool(s), " << subjects.size()
     << " gated subject(s)\n";
  const auto now = taken;
  auto print_wait = [&](const WaitRecord& w) {
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(now - w.since).count();
    os << "  [wait " << w.id << "] " << to_string(w.kind) << " subject=" << w.subject_name
       << " awaiting=[" << w.awaiting_lo << "," << w.awaiting_hi << ") observed=" << w.observed
       << " comp=" << w.comp << (w.pool != nullptr ? " on-pool-worker" : "") << " blocked for "
       << ms << "ms\n";
  };
  constexpr std::size_t kMaxIndividual = 40;
  if (waits.size() <= kMaxIndividual) {
    for (const WaitRecord& w : waits) print_wait(w);
  } else {
    // Too many to list: show the oldest few (the likely head-of-line
    // blockers) and aggregate the rest by what they wait on.
    std::vector<WaitRecord> oldest(waits);
    std::sort(oldest.begin(), oldest.end(),
              [](const WaitRecord& a, const WaitRecord& b) { return a.since < b.since; });
    os << "oldest " << kMaxIndividual / 2 << " waits:\n";
    for (std::size_t i = 0; i < kMaxIndividual / 2; ++i) print_wait(oldest[i]);
    std::map<std::string, std::size_t> groups;
    for (const WaitRecord& w : waits) {
      std::ostringstream key;
      key << to_string(w.kind) << " subject=" << w.subject_name << " awaiting_lo="
          << w.awaiting_lo;
      ++groups[key.str()];
    }
    os << "all " << waits.size() << " waits grouped:\n";
    for (const auto& [key, n] : groups) os << "  " << n << " x " << key << "\n";
  }
  for (const PoolState& p : pools) {
    os << "  [pool " << p.pool << "] live=" << p.live << " idle=" << p.idle
       << " parked=" << p.parked << " queued=" << p.queued << " max=" << p.max_threads
       << " peak=" << p.peak << "\n";
    if (!p.queued_tags.empty()) {
      os << "    queued comps:";
      for (auto t : p.queued_tags) os << " " << t;
      os << "\n";
    }
    if (!p.running_tags.empty()) {
      os << "    running comps:";
      for (auto t : p.running_tags) os << " " << t;
      os << "\n";
    }
  }
  for (const ExecutorGroupState& e : executors) {
    os << "  [executor " << e.group << "] shards=" << e.shards.size()
       << " dispatched=" << e.dispatched << " handoffs=" << e.handoffs << "\n";
    for (const ExecutorShardState& s : e.shards) {
      if (s.queued == 0 && s.consumer == 0 && s.running_comp == 0) continue;
      const char* state = s.consumer == 2 ? "running" : (s.consumer == 1 ? "idle" : "NO-CONSUMER");
      os << "    shard " << s.index << ": " << state << " queued=" << s.queued;
      if (s.running_comp != 0) os << " running comp " << s.running_comp;
      if (s.queued > 0 && s.consumer != 2) os << "  <-- STALLED (backlog, no running consumer)";
      if (!s.queued_comps.empty()) {
        os << "\n      queued comps:";
        for (auto t : s.queued_comps) os << " " << t;
      }
      os << "\n";
    }
  }
  for (const SubjectState& s : subjects) {
    if (s.holders.empty()) continue;
    os << "  [subject " << (s.name.empty() ? "?" : s.name) << " @" << s.subject
       << "] published=" << s.last_published << " outstanding:";
    for (const auto& h : s.holders) os << " v" << h.version << "->comp" << h.comp;
    os << "\n";
  }
  if (!cycle.empty()) {
    os << "DEADLOCK CYCLE (" << cycle.size() << " edges):\n";
    for (const WaitEdge& e : cycle) os << "  " << e.label << "\n";
  } else if (!edges.empty()) {
    constexpr std::size_t kMaxEdges = 80;
    os << "wait-for edges (no cycle found):\n";
    for (std::size_t i = 0; i < std::min(edges.size(), kMaxEdges); ++i) {
      os << "  " << edges[i].label << "\n";
    }
    if (edges.size() > kMaxEdges) os << "  ... " << edges.size() - kMaxEdges << " more\n";
  }
  return os.str();
}

namespace {
void json_escape(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      default:
        os << c;
    }
  }
  os << '"';
}
}  // namespace

std::string Dump::to_json() const {
  std::ostringstream os;
  os << "{\"waits\":[";
  for (std::size_t i = 0; i < waits.size(); ++i) {
    const WaitRecord& w = waits[i];
    const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(taken - w.since).count();
    if (i) os << ",";
    os << "{\"id\":" << w.id << ",\"kind\":\"" << to_string(w.kind) << "\",\"subject\":";
    json_escape(os, w.subject_name);
    os << ",\"awaiting_lo\":" << w.awaiting_lo << ",\"awaiting_hi\":" << w.awaiting_hi
       << ",\"observed\":" << w.observed << ",\"comp\":" << w.comp
       << ",\"on_pool_worker\":" << (w.pool != nullptr ? "true" : "false")
       << ",\"blocked_ms\":" << ms << "}";
  }
  os << "],\"pools\":[";
  for (std::size_t i = 0; i < pools.size(); ++i) {
    const PoolState& p = pools[i];
    if (i) os << ",";
    os << "{\"live\":" << p.live << ",\"idle\":" << p.idle << ",\"parked\":" << p.parked
       << ",\"queued\":" << p.queued << ",\"max\":" << p.max_threads << ",\"peak\":" << p.peak
       << ",\"queued_comps\":[";
    for (std::size_t j = 0; j < p.queued_tags.size(); ++j) {
      if (j) os << ",";
      os << p.queued_tags[j];
    }
    os << "],\"running_comps\":[";
    for (std::size_t j = 0; j < p.running_tags.size(); ++j) {
      if (j) os << ",";
      os << p.running_tags[j];
    }
    os << "]}";
  }
  os << "],\"executors\":[";
  for (std::size_t i = 0; i < executors.size(); ++i) {
    const ExecutorGroupState& e = executors[i];
    if (i) os << ",";
    os << "{\"dispatched\":" << e.dispatched << ",\"handoffs\":" << e.handoffs << ",\"shards\":[";
    for (std::size_t j = 0; j < e.shards.size(); ++j) {
      const ExecutorShardState& s = e.shards[j];
      if (j) os << ",";
      os << "{\"index\":" << s.index << ",\"consumer\":" << s.consumer
         << ",\"queued\":" << s.queued << ",\"running_comp\":" << s.running_comp
         << ",\"queued_comps\":[";
      for (std::size_t k = 0; k < s.queued_comps.size(); ++k) {
        if (k) os << ",";
        os << s.queued_comps[k];
      }
      os << "]}";
    }
    os << "]}";
  }
  os << "],\"subjects\":[";
  bool first = true;
  for (const SubjectState& s : subjects) {
    if (s.holders.empty()) continue;
    if (!first) os << ",";
    first = false;
    os << "{\"name\":";
    json_escape(os, s.name);
    os << ",\"published\":" << s.last_published << ",\"holders\":[";
    for (std::size_t j = 0; j < s.holders.size(); ++j) {
      if (j) os << ",";
      os << "{\"version\":" << s.holders[j].version << ",\"comp\":" << s.holders[j].comp << "}";
    }
    os << "]}";
  }
  os << "],\"deadlock\":" << (cycle.empty() ? "false" : "true") << ",\"cycle\":[";
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    if (i) os << ",";
    json_escape(os, cycle[i].label);
  }
  os << "]}";
  return os.str();
}

namespace {
thread_local int t_wait_depth = 0;
thread_local WorkerParkTarget* t_park_target = nullptr;
}  // namespace

WorkerParkTarget* current_park_target() { return t_park_target; }
void set_current_park_target(WorkerParkTarget* target) { t_park_target = target; }

ScopedWait::ScopedWait(WaitKind kind, const void* subject, std::string subject_name,
                       std::uint64_t awaiting_lo, std::uint64_t awaiting_hi,
                       std::uint64_t observed) {
  // Nested waits (an instrumented primitive parking inside an already
  // registered wait, e.g. wait_done's OneShotEvent) stay invisible: the
  // outer record describes the park, and pool/target/observer must see
  // exactly one park per blocked thread.
  outermost_ = ++t_wait_depth == 1;
  if (!outermost_) return;
  WaitRecord rec;
  rec.kind = kind;
  rec.subject = subject;
  rec.subject_name = std::move(subject_name);
  rec.awaiting_lo = awaiting_lo;
  rec.awaiting_hi = awaiting_hi;
  rec.observed = observed;
  rec.comp = current_computation();
  rec.thread = std::this_thread::get_id();
  rec.since = std::chrono::steady_clock::now();
  kind_ = kind;
  comp_ = rec.comp;
  pool_ = samoa::ElasticThreadPool::current();
  target_ = t_park_target;
  rec.pool = pool_;
  id_ = WaitRegistry::instance().add_wait(std::move(rec));
  // Release this worker's runnable slot for the duration of the park —
  // the pool may need to grow (or the executor shard hand off its
  // consumer role) to run the task that unblocks us.
  if (pool_ != nullptr) pool_->note_worker_parked();
  if (target_ != nullptr) target_->note_worker_parked();
  if (WaitObserver* obs = WaitRegistry::instance().observer()) obs->on_wait_park(kind_, comp_);
}

ScopedWait::~ScopedWait() {
  --t_wait_depth;
  if (!outermost_) return;
  if (WaitObserver* obs = WaitRegistry::instance().observer()) obs->on_wait_unpark(kind_, comp_);
  if (target_ != nullptr) target_->note_worker_unparked();
  if (pool_ != nullptr) pool_->note_worker_unparked();
  WaitRegistry::instance().remove_wait(id_);
}

namespace {
thread_local std::uint64_t t_current_computation = 0;
}

std::uint64_t current_computation() { return t_current_computation; }

ScopedComputation::ScopedComputation(std::uint64_t comp) : prev_(t_current_computation) {
  t_current_computation = comp;
}

ScopedComputation::~ScopedComputation() { t_current_computation = prev_; }

}  // namespace samoa::diag
