#include "proto/fig1.hpp"

#include "util/sync.hpp"

namespace samoa::proto {

/// A stage of the Figure 1 protocol: logs its execution, burns the
/// per-stage delay carried by the message, and forwards to the next event
/// type (if any).
class Fig1Protocol::Stage : public Microprotocol {
 public:
  Stage(Fig1Protocol& proto, std::string name, const EventType* next, int which_delay)
      : Microprotocol(std::move(name)) {
    handler = &register_handler("run", [this, &proto, next, which_delay](Context& ctx,
                                                                         const Message& m) {
      const auto& msg = m.as<Fig1Msg>();
      {
        std::unique_lock lock(proto.log_mu_);
        proto.log_.push_back(this->name() + ":" + msg.tag);
      }
      switch (which_delay) {
        case 0:
          spin_for(msg.delay_pq);
          break;
        case 1:
          spin_for(msg.delay_r);
          break;
        default:
          spin_for(msg.delay_s);
          break;
      }
      if (next != nullptr) ctx.trigger(*next, m);
    });
  }

  const Handler* handler = nullptr;
};

Fig1Protocol::Fig1Protocol() {
  p_ = &stack_.emplace<Stage>(*this, "P", &ev_r_, 0);
  q_ = &stack_.emplace<Stage>(*this, "Q", &ev_r_, 0);
  r_ = &stack_.emplace<Stage>(*this, "R", &ev_s_, 1);
  s_ = &stack_.emplace<Stage>(*this, "S", nullptr, 2);
  stack_.bind(ev_a0_, *p_->handler);
  stack_.bind(ev_b0_, *q_->handler);
  stack_.bind(ev_r_, *r_->handler);
  stack_.bind(ev_s_, *s_->handler);
}

const Microprotocol& Fig1Protocol::p() const { return *p_; }
const Microprotocol& Fig1Protocol::q() const { return *q_; }
const Microprotocol& Fig1Protocol::r() const { return *r_; }
const Microprotocol& Fig1Protocol::s() const { return *s_; }

Isolation Fig1Protocol::iso_a_basic() const { return Isolation::basic({p_, r_, s_}); }
Isolation Fig1Protocol::iso_b_basic() const { return Isolation::basic({q_, r_, s_}); }

Isolation Fig1Protocol::iso_a_bound() const {
  return Isolation::bound({{p_, 1}, {r_, 1}, {s_, 1}});
}
Isolation Fig1Protocol::iso_b_bound() const {
  return Isolation::bound({{q_, 1}, {r_, 1}, {s_, 1}});
}

Isolation Fig1Protocol::iso_a_route() const {
  return Isolation::route(RouteSpec{}
                              .entry(*p_->handler)
                              .edge(*p_->handler, *r_->handler)
                              .edge(*r_->handler, *s_->handler));
}
Isolation Fig1Protocol::iso_b_route() const {
  return Isolation::route(RouteSpec{}
                              .entry(*q_->handler)
                              .edge(*q_->handler, *r_->handler)
                              .edge(*r_->handler, *s_->handler));
}

ComputationHandle Fig1Protocol::spawn(Runtime& rt, Fig1Msg msg) const {
  const bool is_a = msg.tag == 'a';
  Isolation iso = [&] {
    switch (rt.policy()) {
      case CCPolicy::kVCABound:
        return is_a ? iso_a_bound() : iso_b_bound();
      case CCPolicy::kVCARoute:
        return is_a ? iso_a_route() : iso_b_route();
      default:
        return is_a ? iso_a_basic() : iso_b_basic();
    }
  }();
  const EventType& ev = is_a ? ev_a0_ : ev_b0_;
  return rt.spawn_isolated(std::move(iso),
                           [&ev, msg](Context& ctx) { ctx.trigger(ev, Message::of(msg)); });
}

std::vector<std::string> Fig1Protocol::access_log() const {
  std::unique_lock lock(log_mu_);
  return log_;
}

void Fig1Protocol::clear_log() {
  std::unique_lock lock(log_mu_);
  log_.clear();
}

}  // namespace samoa::proto
