// The example protocol of the paper's Figure 1.
//
// Four handlers P, Q, R, S. External event a0 triggers P, b0 triggers Q;
// P and Q both forward to R (internal events a1/b1), R forwards to S
// (a2/b2). R and S are shared between the two computations
// ka = ((a0,P),(a1,R),(a2,S)) and kb = ((b0,Q),(b1,R),(b2,S)), so the
// paper's runs r1 (serial) and r2 (concurrent, isolated) are legal while
// r3 (interleaved on R and S) violates isolation.
//
// Handlers take a Fig1Msg whose per-stage delays let tests and benchmarks
// steer the schedule (e.g. provoke r3 under the unsynchronised baseline).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "core/runtime.hpp"

namespace samoa::proto {

struct Fig1Msg {
  char tag = 'a';  // 'a' for computation ka, 'b' for kb
  std::chrono::microseconds delay_pq{0};  // work inside P / Q
  std::chrono::microseconds delay_r{0};   // work inside R
  std::chrono::microseconds delay_s{0};   // work inside S
};

/// One P/Q/R/S stack plus the event types wiring it, and an access log of
/// (handler, tag) pairs for schedule assertions.
class Fig1Protocol {
 public:
  Fig1Protocol();

  Stack& stack() { return stack_; }

  const EventType& ev_a0() const { return ev_a0_; }
  const EventType& ev_b0() const { return ev_b0_; }
  /// Internal events (P/Q forward here, R forwards on) — exposed for
  /// declaration-inference tooling and tests.
  const EventType& ev_to_r() const { return ev_r_; }
  const EventType& ev_to_s() const { return ev_s_; }

  const Microprotocol& p() const;
  const Microprotocol& q() const;
  const Microprotocol& r() const;
  const Microprotocol& s() const;

  /// Declarations for the two computation types of the example:
  /// isolated [P R S] {trigger a0 m}  /  isolated [Q R S] {trigger b0 m}.
  Isolation iso_a_basic() const;
  Isolation iso_b_basic() const;
  /// Each microprotocol is visited exactly once per computation.
  Isolation iso_a_bound() const;
  Isolation iso_b_bound() const;
  /// Routing patterns P -> R -> S and Q -> R -> S.
  Isolation iso_a_route() const;
  Isolation iso_b_route() const;

  /// Spawn computation ka (or kb when tag == 'b') with the declaration
  /// matching the runtime's policy.
  ComputationHandle spawn(Runtime& rt, Fig1Msg msg) const;

  /// The access log: handler name + tag, in execution (start) order.
  std::vector<std::string> access_log() const;
  void clear_log();

 private:
  class Stage;

  Stack stack_;
  EventType ev_a0_{"a0"}, ev_b0_{"b0"}, ev_r_{"toR"}, ev_s_{"toS"};
  Stage *p_ = nullptr, *q_ = nullptr, *r_ = nullptr, *s_ = nullptr;

  mutable std::mutex log_mu_;
  std::vector<std::string> log_;
};

}  // namespace samoa::proto
