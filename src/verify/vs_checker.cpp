#include "verify/vs_checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

namespace samoa::verify {

namespace {

using OrderKey = std::pair<std::uint64_t, std::uint64_t>;  // (ordinal, id)

OrderKey key_of(const DeliveryRecord& r) { return {r.ordinal, r.id}; }

std::string name_of(const IncarnationTrace& t) {
  std::ostringstream os;
  os << "site " << t.site.value() << "#" << t.incarnation;
  return os.str();
}

}  // namespace

std::string VsReport::describe() const {
  std::ostringstream os;
  os << "virtual synchrony: " << (ok() ? "OK" : "VIOLATED") << " (" << incarnations_checked
     << " incarnations, reference order length " << reference_length << ")";
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

VsReport check_virtual_synchrony(const std::vector<IncarnationTrace>& traces) {
  VsReport report;
  report.incarnations_checked = traces.size();
  auto violate = [&report](const std::string& what) { report.violations.push_back(what); };

  // --- 1+2a. Global agreement: each message id has one view and one
  // ordinal everywhere; each ordinal position holds consistent content.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, const IncarnationTrace*>> view_of;
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, const IncarnationTrace*>> ord_of;
  std::map<OrderKey, std::string> reference;  // reconstructed total order
  for (const auto& t : traces) {
    for (const auto& r : t.deliveries) {
      auto [vit, vnew] = view_of.try_emplace(r.id, r.view_id, &t);
      if (!vnew && vit->second.first != r.view_id) {
        std::ostringstream os;
        os << "same-view agreement: message " << r.id << " delivered in view " << r.view_id
           << " at " << name_of(t) << " but in view " << vit->second.first << " at "
           << name_of(*vit->second.second);
        violate(os.str());
      }
      auto [oit, onew] = ord_of.try_emplace(r.id, r.ordinal, &t);
      if (!onew && oit->second.first != r.ordinal) {
        std::ostringstream os;
        os << "total order: message " << r.id << " at ordinal " << r.ordinal << " at "
           << name_of(t) << " but at ordinal " << oit->second.first << " at "
           << name_of(*oit->second.second);
        violate(os.str());
      }
      reference.emplace(key_of(r), r.data);
    }
  }
  report.reference_length = reference.size();

  // --- 2b+3. Per incarnation: strictly ordered trace forming a contiguous
  // window of the reference order.
  for (const auto& t : traces) {
    for (std::size_t i = 1; i < t.deliveries.size(); ++i) {
      if (!(key_of(t.deliveries[i - 1]) < key_of(t.deliveries[i]))) {
        std::ostringstream os;
        os << "local order: " << name_of(t) << " delivered message " << t.deliveries[i].id
           << " (ordinal " << t.deliveries[i].ordinal << ") after message "
           << t.deliveries[i - 1].id << " (ordinal " << t.deliveries[i - 1].ordinal << ")";
        violate(os.str());
      }
    }
    if (t.deliveries.empty()) continue;
    auto lo = reference.find(key_of(t.deliveries.front()));
    std::size_t i = 0;
    for (; lo != reference.end() && i < t.deliveries.size(); ++lo, ++i) {
      if (lo->first != key_of(t.deliveries[i])) {
        std::ostringstream os;
        os << "window consistency: " << name_of(t) << " skipped message " << lo->first.second
           << " (ordinal " << lo->first.first << ") delivered elsewhere inside its window";
        violate(os.str());
        break;
      }
    }
  }

  // --- 4. Per site: incarnation windows strictly advance (a rejoined
  // site continues the order; it never re-delivers its past).
  std::map<SiteId, std::vector<const IncarnationTrace*>> by_site;
  for (const auto& t : traces) by_site[t.site].push_back(&t);
  for (auto& [site, incs] : by_site) {
    (void)site;
    std::sort(incs.begin(), incs.end(),
              [](const auto* a, const auto* b) { return a->incarnation < b->incarnation; });
    const IncarnationTrace* prev = nullptr;
    for (const auto* t : incs) {
      if (prev != nullptr && !prev->deliveries.empty() && !t->deliveries.empty() &&
          !(key_of(prev->deliveries.back()) < key_of(t->deliveries.front()))) {
        std::ostringstream os;
        os << "duplicate delivery: " << name_of(*t) << " re-entered the order at ordinal "
           << t->deliveries.front().ordinal << " although " << name_of(*prev)
           << " already reached ordinal " << prev->deliveries.back().ordinal;
        violate(os.str());
      }
      if (!t->deliveries.empty()) prev = t;
    }
  }

  // --- 5. No lost stable delivery: every incarnation alive at the end of
  // the run drained to the end of the reference order.
  if (!reference.empty()) {
    const OrderKey last = reference.rbegin()->first;
    for (const auto& t : traces) {
      if (t.crashed) continue;
      if (t.deliveries.empty() || key_of(t.deliveries.back()) != last) {
        std::ostringstream os;
        os << "lost delivery: " << name_of(t) << " is alive but stopped at ordinal "
           << (t.deliveries.empty() ? 0 : t.deliveries.back().ordinal)
           << " while the reference order ends at ordinal " << last.first;
        violate(os.str());
      }
    }
  }

  // --- 6. View agreement: one member set per view id, strictly
  // increasing installs per incarnation.
  std::unordered_map<std::uint64_t, std::pair<const gc::View*, const IncarnationTrace*>> views;
  for (const auto& t : traces) {
    for (std::size_t i = 0; i < t.views.size(); ++i) {
      const gc::View& v = t.views[i];
      if (i > 0 && v.id() <= t.views[i - 1].id()) {
        std::ostringstream os;
        os << "view order: " << name_of(t) << " installed view " << v.id() << " after view "
           << t.views[i - 1].id();
        violate(os.str());
      }
      if (v.id() == 0) continue;  // the empty pre-start view
      auto [it, fresh] = views.try_emplace(v.id(), &v, &t);
      if (!fresh && !(*it->second.first == v)) {
        std::ostringstream os;
        os << "view agreement: view " << v.id() << " has different member sets at "
           << name_of(t) << " and " << name_of(*it->second.second);
        violate(os.str());
      }
    }
  }

  return report;
}

}  // namespace samoa::verify
