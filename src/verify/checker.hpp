// Isolation checker — the oracle used by tests and experiments.
//
// Given a recorded trace, decides whether the execution could have been
// produced by some serial execution of its computations (the paper's
// isolation property). The check is conflict-serializability specialised
// to the SAMOA model, where the unit of conflict is the microprotocol
// (every handler execution reads and may write its microprotocol's state):
//
//  1. Per microprotocol, handler-execution intervals of *different*
//     computations must not overlap in time (the version gates make each
//     microprotocol's object exclusive to one computation at a time).
//  2. Per microprotocol, a computation's accesses must form one
//     contiguous block (A B A interleavings are unserialisable).
//  3. The precedence graph over computations (edge A -> B when A's block
//     on some microprotocol precedes B's) must be acyclic.
//
// Violations of 1/2 are reported directly; 3 is decided by cycle search.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "core/trace.hpp"
#include "util/ids.hpp"

namespace samoa {

struct IsolationReport {
  bool isolated = true;
  /// True when no two computations' whole lifetimes overlapped at all.
  bool serial = true;
  std::vector<std::string> violations;
  /// Serialization order found (topological order of the precedence
  /// graph); empty when not isolated.
  std::vector<ComputationId> equivalent_serial_order;

  std::string summary() const;
};

/// Analyse a recorded trace. Ignores incomplete accesses (kStart without
/// kEnd) only if `allow_incomplete`; by default they are violations since
/// complete runs must not have pending events.
IsolationReport check_isolation(const std::vector<TraceEvent>& events,
                                bool allow_incomplete = false);

}  // namespace samoa
