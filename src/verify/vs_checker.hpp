// Virtual-synchrony checker.
//
// Mechanically validates the delivery guarantees the group-communication
// stack (paper Section 3) owes the application, across crash / recovery /
// rejoin cycles — the runtime-checking idea of the Derecho verification
// work (PAPERS.md) applied to SAMOA's stack. The unit of checking is an
// *incarnation*: one lifetime of one site, from start (or restart) until
// it crashed or the run ended. Each incarnation reports its totally-
// ordered deliveries (with the view each was delivered in and its global
// ordering position) plus the views it installed.
//
// Checked invariants:
//   1. Same-view delivery agreement — any two incarnations delivering the
//      same message deliver it in the same view.
//   2. Consistent total order — the (ordinal, id) positions agree across
//      incarnations, and every incarnation's trace is strictly ordered.
//   3. Window (prefix) consistency — each incarnation's trace is one
//      contiguous window of the reference order: no holes, so across a
//      crash/rejoin a site's history is old-window + gap + new-window,
//      a consistent continuation rather than a duplicate replay.
//   4. No duplicate delivery per site — successive incarnations' windows
//      are disjoint and strictly advancing.
//   5. No lost stable delivery — every incarnation alive at the end of
//      the run reached the end of the reference order.
//   6. View agreement — a view id maps to one member set everywhere, and
//      each incarnation installs strictly increasing view ids.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gc/view.hpp"
#include "util/ids.hpp"

namespace samoa::verify {

/// One totally-ordered delivery as the application sink observed it.
struct DeliveryRecord {
  std::uint64_t id = 0;       // gc::MsgId
  std::uint64_t view_id = 0;  // view installed when the delivery happened
  std::uint64_t ordinal = 0;  // global order position (consensus slot / sequencer seq)
  std::string data;
};

/// One lifetime of one site.
struct IncarnationTrace {
  SiteId site;
  std::uint64_t incarnation = 0;  // 0 = first lifetime, then 1, 2, ...
  bool crashed = false;           // ended by a crash (true) or alive at run end
  std::vector<DeliveryRecord> deliveries;
  std::vector<gc::View> views;  // views installed during this lifetime
};

struct VsReport {
  std::vector<std::string> violations;
  std::size_t reference_length = 0;  // length of the reconstructed total order
  std::size_t incarnations_checked = 0;

  bool ok() const { return violations.empty(); }
  /// Multi-line human-readable summary ("OK" or the violations).
  std::string describe() const;
};

/// Run all checks over the incarnation traces of one simulated run.
VsReport check_virtual_synchrony(const std::vector<IncarnationTrace>& traces);

}  // namespace samoa::verify
