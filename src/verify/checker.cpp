#include "verify/checker.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

namespace samoa {

namespace {

struct Access {
  ComputationId comp;
  std::uint64_t start = 0;
  std::uint64_t end = 0;
  bool read_only = false;
};

struct CompSpan {
  std::uint64_t spawn = ~std::uint64_t{0};
  std::uint64_t first_start = ~std::uint64_t{0};  // first handler commenced
  std::uint64_t done = 0;

  // The paper's serial-run definition is about when *handlers* commence,
  // not when the external event was issued: a computation queued behind a
  // running one still yields a serial run.
  std::uint64_t begin() const { return first_start != ~std::uint64_t{0} ? first_start : spawn; }
};

}  // namespace

std::string IsolationReport::summary() const {
  std::ostringstream os;
  os << (isolated ? "ISOLATED" : "VIOLATED") << (serial ? " (serial)" : " (concurrent)");
  for (const auto& v : violations) os << "\n  - " << v;
  return os.str();
}

IsolationReport check_isolation(const std::vector<TraceEvent>& events, bool allow_incomplete) {
  IsolationReport report;

  // Collect handler-execution intervals per microprotocol. Start/end pairs
  // are matched per (computation, handler) in FIFO order — handler bodies
  // never nest on one thread for the same (comp, handler) without the
  // inner one finishing first, and matching order does not affect the
  // block analysis below.
  std::unordered_map<MicroprotocolId, std::vector<Access>> per_mp;
  std::map<std::pair<ComputationId, HandlerId>, std::vector<std::uint64_t>> open;
  std::unordered_map<ComputationId, CompSpan> spans;

  // TSO restarts: accesses before a computation's last kAbort were rolled
  // back and never became visible — exclude them from the analysis.
  std::unordered_map<ComputationId, std::uint64_t> last_abort;
  for (const auto& e : events) {
    if (e.phase == TracePhase::kAbort) last_abort[e.computation] = e.seq;
  }

  for (const auto& e : events) {
    if (e.phase == TracePhase::kStart || e.phase == TracePhase::kEnd ||
        e.phase == TracePhase::kIssue) {
      auto it = last_abort.find(e.computation);
      if (it != last_abort.end() && e.seq < it->second) continue;  // rolled back
    }
    switch (e.phase) {
      case TracePhase::kSpawn:
        spans[e.computation].spawn = e.seq;
        break;
      case TracePhase::kDone:
        spans[e.computation].done = e.seq;
        break;
      case TracePhase::kStart: {
        auto& span = spans[e.computation];
        span.first_start = std::min(span.first_start, e.seq);
        open[{e.computation, e.handler}].push_back(e.seq);
        break;
      }
      case TracePhase::kEnd: {
        auto& starts = open[{e.computation, e.handler}];
        if (starts.empty()) {
          report.isolated = false;
          report.violations.push_back("kEnd without matching kStart in trace");
          break;
        }
        per_mp[e.microprotocol].push_back(
            Access{e.computation, starts.front(), e.seq, e.read_only});
        starts.erase(starts.begin());
        break;
      }
      case TracePhase::kIssue:
      case TracePhase::kAbort:
        break;
    }
  }

  for (const auto& [key, starts] : open) {
    if (!starts.empty() && !allow_incomplete) {
      std::ostringstream os;
      os << "pending handler execution (" << key.first << ", " << key.second
         << ") — run is not complete";
      report.isolated = false;
      report.violations.push_back(os.str());
    }
  }

  // Serial check: do any two computations' lifetimes overlap at all?
  {
    std::vector<CompSpan> all;
    for (const auto& [k, s] : spans) {
      (void)k;
      if (s.done != 0) all.push_back(s);
    }
    std::sort(all.begin(), all.end(),
              [](const CompSpan& a, const CompSpan& b) { return a.begin() < b.begin(); });
    for (std::size_t i = 1; i < all.size(); ++i) {
      if (all[i].begin() < all[i - 1].done) {
        report.serial = false;
        break;
      }
    }
  }

  // Per-microprotocol conflict analysis + precedence edges. Two accesses
  // conflict when they come from different computations and at least one
  // of them may write (read-read pairs commute, so reader groups — the
  // VCArw extension — are legal). Conflicting accesses must be disjoint in
  // time and induce a precedence edge; a cycle among edges means no
  // equivalent serial execution exists.
  std::unordered_map<ComputationId, std::unordered_set<ComputationId>> succ;
  std::unordered_set<ComputationId> comps;
  for (auto& [mp, accesses] : per_mp) {
    std::sort(accesses.begin(), accesses.end(),
              [](const Access& a, const Access& b) { return a.start < b.start; });
    for (const auto& a : accesses) comps.insert(a.comp);
    int overlap_reports = 0;
    for (std::size_t i = 0; i < accesses.size(); ++i) {
      for (std::size_t j = i + 1; j < accesses.size(); ++j) {
        const Access& a = accesses[i];
        const Access& b = accesses[j];  // b.start >= a.start
        if (a.comp == b.comp) continue;
        if (a.read_only && b.read_only) continue;  // commuting pair
        if (a.end <= b.start) {
          succ[a.comp].insert(b.comp);
        } else {
          report.isolated = false;
          if (++overlap_reports <= 4) {  // cap the noise per microprotocol
            std::ostringstream os;
            os << "overlapping conflicting executions on " << mp << ": " << a.comp << " and "
               << b.comp;
            report.violations.push_back(os.str());
          }
        }
      }
    }
  }

  // Cycle check via iterative DFS (colouring).
  enum class Colour { kWhite, kGrey, kBlack };
  std::unordered_map<ComputationId, Colour> colour;
  for (ComputationId k : comps) colour[k] = Colour::kWhite;
  std::vector<ComputationId> topo;

  for (ComputationId root : comps) {
    if (colour[root] != Colour::kWhite) continue;
    std::vector<std::pair<ComputationId, bool>> stack{{root, false}};
    while (!stack.empty()) {
      auto [node, children_done] = stack.back();
      stack.pop_back();
      if (children_done) {
        colour[node] = Colour::kBlack;
        topo.push_back(node);
        continue;
      }
      if (colour[node] == Colour::kBlack) continue;
      if (colour[node] == Colour::kGrey) continue;
      colour[node] = Colour::kGrey;
      stack.emplace_back(node, true);
      for (ComputationId next : succ[node]) {
        if (colour[next] == Colour::kGrey) {
          std::ostringstream os;
          os << "precedence cycle between computations " << node << " and " << next;
          report.isolated = false;
          report.violations.push_back(os.str());
        } else if (colour[next] == Colour::kWhite) {
          stack.emplace_back(next, false);
        }
      }
    }
  }

  if (report.isolated) {
    std::reverse(topo.begin(), topo.end());
    report.equivalent_serial_order = std::move(topo);
  }
  return report;
}

}  // namespace samoa
