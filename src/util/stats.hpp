// Lightweight measurement utilities shared by the runtime, the tests and
// the benchmark harnesses: thread-safe counters, latency histograms with
// percentile extraction, and a fixed-width table printer used by the
// experiment binaries to emit paper-style result tables.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace samoa {

using Clock = std::chrono::steady_clock;
using Nanos = std::chrono::nanoseconds;

/// Monotone counter, safe for concurrent increments.
class Counter {
 public:
  void add(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Latency histogram with logarithmic buckets covering ~1ns .. ~1000s.
/// Records are lock-free; percentile extraction takes a snapshot.
///
/// The running totals live in cache-line-padded *stripes*, each a tiny
/// seqlock over its (count, ns) pair. Recording CASes its stripe's
/// sequence to odd, bumps the pair, and releases to even; a reader retries
/// a stripe until it observes an even, unchanged sequence around the pair.
/// This is what makes mean_ns() exact under concurrent recording: with the
/// totals as two independent atomics (the old layout), a record landing
/// between the two loads skewed the reported mean — count from after the
/// record, sum from before it (or vice versa). Striping keeps writers
/// mostly uncontended (a writer only spins against another recorder that
/// hashed to the same stripe); every field is an atomic, so the protocol
/// is also race-free under TSan, not just in practice.
class Histogram {
 public:
  Histogram();

  void record(Nanos d) { record_ns(static_cast<std::uint64_t>(d.count() < 0 ? 0 : d.count())); }
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const;
  double mean_ns() const;
  /// q in [0, 1]; returns an upper bound of the bucket containing quantile q.
  double quantile_ns(double q) const;
  void reset();

 private:
  static constexpr int kBuckets = 128;
  static constexpr std::size_t kStripes = 16;
  static int bucket_for(std::uint64_t ns);
  static double bucket_upper_ns(int b);

  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> seq{0};  // odd while a writer updates the pair
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> ns{0};
  };

  Stripe& stripe_for_this_thread();
  /// Consistent (count, ns) totals: per-stripe seqlock reads, summed.
  void totals(std::uint64_t& count, std::uint64_t& ns) const;

  std::atomic<std::uint64_t> buckets_[kBuckets];
  Stripe stripes_[kStripes];
};

/// RAII timer recording into a histogram on destruction.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram& h) : hist_(h), start_(Clock::now()) {}
  ~ScopedTimer() { hist_.record(std::chrono::duration_cast<Nanos>(Clock::now() - start_)); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram& hist_;
  Clock::time_point start_;
};

/// Fixed-width ASCII table used by the bench binaries; mirrors the way the
/// paper would present a results table (header row + one row per cell).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render to stdout with column alignment.
  void print(const std::string& title = "") const;

  static std::string fmt(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format a nanosecond quantity with an adaptive unit (ns/us/ms/s).
std::string format_duration_ns(double ns);

}  // namespace samoa
