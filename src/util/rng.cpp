#include "util/rng.hpp"

#include <cmath>

namespace samoa {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.next();
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) {
  if (bound == 0) return 0;
  // Lemire's method; the slight modulo bias of the plain multiply-shift is
  // negligible for simulation purposes but we reject to keep it exact.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform(std::int64_t lo, std::int64_t hi) {
  if (hi <= lo) return lo;
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() {
  // 53 high-quality bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  double u = next_double();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::split() { return Rng(next()); }

}  // namespace samoa
