#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

#include "diag/wait_registry.hpp"

namespace samoa {

namespace {
thread_local ElasticThreadPool* t_current_pool = nullptr;
}

ElasticThreadPool* ElasticThreadPool::current() { return t_current_pool; }

ElasticThreadPool::ElasticThreadPool(Options opts) : opts_(opts) {
  if (opts_.min_threads > opts_.max_threads) opts_.min_threads = opts_.max_threads;
  {
    std::unique_lock lock(mu_);
    for (std::size_t i = 0; i < opts_.min_threads; ++i) spawn_worker_locked();
  }
  diag::WaitRegistry::instance().register_pool(this);
}

ElasticThreadPool::~ElasticThreadPool() {
  diag::WaitRegistry::instance().unregister_pool(this);
  shutdown();
}

void ElasticThreadPool::spawn_worker_locked() {
  workers_.emplace_back([this] { worker_loop(); });
  ++live_;
  ++starting_;  // counts as available until it enters worker_loop
  peak_ = std::max(peak_, live_);
}

void ElasticThreadPool::reap_retired_locked() {
  if (retired_.empty()) return;
  for (auto it = workers_.begin(); it != workers_.end();) {
    const bool is_retired =
        std::find(retired_.begin(), retired_.end(), it->get_id()) != retired_.end();
    if (is_retired) {
      it->join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
  retired_.clear();
}

void ElasticThreadPool::ensure_capacity_locked() {
  // Grow while queued work exceeds the number of waiting workers. The
  // idle_ count can be momentarily stale (a notified worker decrements it
  // only after re-acquiring the lock), so comparing against the queue
  // depth — rather than testing idle_ == 0 — is what prevents a task from
  // being stranded while every live worker is busy. Workers parked inside
  // a version gate (parked_) do not consume runnable capacity: blocked
  // computations must never prevent the task that would unblock them from
  // getting a thread (the E2 join-flood deadlock; see header).
  while (tasks_.size() > idle_ + starting_ && live_ - parked_ < opts_.max_threads) {
    spawn_worker_locked();
  }
}

void ElasticThreadPool::submit(std::function<void()> task, std::uint64_t tag) {
  std::unique_lock lock(mu_);
  if (shutdown_) throw std::runtime_error("ElasticThreadPool: submit after shutdown");
  tasks_.push_back(Task{std::move(task), tag});
  reap_retired_locked();
  ensure_capacity_locked();
  cv_.notify_one();
}

void ElasticThreadPool::submit_batch(std::vector<Task> batch) {
  if (batch.empty()) return;
  std::unique_lock lock(mu_);
  if (shutdown_) throw std::runtime_error("ElasticThreadPool: submit after shutdown");
  for (Task& t : batch) tasks_.push_back(std::move(t));
  reap_retired_locked();
  ensure_capacity_locked();
  // One broadcast instead of batch-size notify_one calls: every idle
  // worker re-checks the queue, and ensure_capacity_locked already grew
  // the pool for any overflow.
  cv_.notify_all();
}

void ElasticThreadPool::note_worker_parked() {
  std::unique_lock lock(mu_);
  ++parked_;
  peak_parked_ = std::max(peak_parked_, parked_);
  ensure_capacity_locked();
  cv_.notify_one();
}

void ElasticThreadPool::note_worker_unparked() {
  std::unique_lock lock(mu_);
  // The worker resumes runnable; live_ - parked_ may transiently exceed
  // max_threads until idle workers retire. That overshoot is benign — the
  // cap bounds growth, not concurrency of already-live workers.
  --parked_;
}

void ElasticThreadPool::worker_loop() {
  t_current_pool = this;
  std::unique_lock lock(mu_);
  --starting_;
  for (;;) {
    ++idle_;
    const bool has_work = cv_.wait_for(lock, opts_.idle_timeout, [this] {
      return !tasks_.empty() || shutdown_;
    });
    --idle_;
    if (!tasks_.empty()) {
      Task task = std::move(tasks_.front());
      tasks_.pop_front();
      running_[std::this_thread::get_id()] = task.tag;
      lock.unlock();
      task.fn();  // exceptions from tasks are the caller's responsibility
      diag::WaitRegistry::instance().note_progress();
      lock.lock();
      running_.erase(std::this_thread::get_id());
      continue;
    }
    if (shutdown_) break;
    if (!has_work && live_ > opts_.min_threads) {
      // Idle timeout: retire this worker. It cannot join itself, so it
      // leaves its id for the next submit/shutdown to reap.
      retired_.push_back(std::this_thread::get_id());
      --live_;
      t_current_pool = nullptr;
      return;
    }
  }
  --live_;
  t_current_pool = nullptr;
}

void ElasticThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    cv_.notify_all();
    to_join.swap(workers_);
    retired_.clear();
  }
  for (auto& t : to_join) t.join();
}

std::size_t ElasticThreadPool::thread_count() const {
  std::unique_lock lock(mu_);
  return live_;
}

std::size_t ElasticThreadPool::peak_thread_count() const {
  std::unique_lock lock(mu_);
  return peak_;
}

std::size_t ElasticThreadPool::parked_count() const {
  std::unique_lock lock(mu_);
  return parked_;
}

std::size_t ElasticThreadPool::peak_parked_count() const {
  std::unique_lock lock(mu_);
  return peak_parked_;
}

std::size_t ElasticThreadPool::queue_depth() const {
  std::unique_lock lock(mu_);
  return tasks_.size();
}

diag::PoolState ElasticThreadPool::diag_state() const {
  diag::PoolState s;
  std::unique_lock lock(mu_);
  s.pool = this;
  s.live = live_;
  s.idle = idle_;
  s.parked = parked_;
  s.queued = tasks_.size();
  s.max_threads = opts_.max_threads;
  s.peak = peak_;
  s.queued_tags.reserve(tasks_.size());
  for (const Task& t : tasks_) s.queued_tags.push_back(t.tag);
  s.running_tags.reserve(running_.size());
  for (const auto& [tid, tag] : running_) s.running_tags.push_back(tag);
  return s;
}

}  // namespace samoa
