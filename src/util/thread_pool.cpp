#include "util/thread_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace samoa {

ElasticThreadPool::ElasticThreadPool(Options opts) : opts_(opts) {
  if (opts_.min_threads > opts_.max_threads) opts_.min_threads = opts_.max_threads;
  std::unique_lock lock(mu_);
  for (std::size_t i = 0; i < opts_.min_threads; ++i) spawn_worker_locked();
}

ElasticThreadPool::~ElasticThreadPool() { shutdown(); }

void ElasticThreadPool::spawn_worker_locked() {
  workers_.emplace_back([this] { worker_loop(); });
  ++live_;
  peak_ = std::max(peak_, live_);
}

void ElasticThreadPool::reap_retired_locked() {
  if (retired_.empty()) return;
  for (auto it = workers_.begin(); it != workers_.end();) {
    const bool is_retired =
        std::find(retired_.begin(), retired_.end(), it->get_id()) != retired_.end();
    if (is_retired) {
      it->join();
      it = workers_.erase(it);
    } else {
      ++it;
    }
  }
  retired_.clear();
}

void ElasticThreadPool::submit(std::function<void()> task) {
  std::unique_lock lock(mu_);
  if (shutdown_) throw std::runtime_error("ElasticThreadPool: submit after shutdown");
  tasks_.push_back(std::move(task));
  reap_retired_locked();
  // Grow whenever queued work exceeds the number of waiting workers. The
  // idle_ count can be momentarily stale (a notified worker decrements it
  // only after re-acquiring the lock), so comparing against the queue
  // depth — rather than testing idle_ == 0 — is what prevents a task from
  // being stranded while every live worker is blocked inside a handler or
  // version gate.
  if (tasks_.size() > idle_ && live_ < opts_.max_threads) spawn_worker_locked();
  cv_.notify_one();
}

void ElasticThreadPool::worker_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    ++idle_;
    const bool has_work = cv_.wait_for(lock, opts_.idle_timeout, [this] {
      return !tasks_.empty() || shutdown_;
    });
    --idle_;
    if (!tasks_.empty()) {
      auto task = std::move(tasks_.front());
      tasks_.pop_front();
      lock.unlock();
      task();  // exceptions from tasks are the caller's responsibility
      lock.lock();
      continue;
    }
    if (shutdown_) break;
    if (!has_work && live_ > opts_.min_threads) {
      // Idle timeout: retire this worker. It cannot join itself, so it
      // leaves its id for the next submit/shutdown to reap.
      retired_.push_back(std::this_thread::get_id());
      --live_;
      return;
    }
  }
  --live_;
}

void ElasticThreadPool::shutdown() {
  std::vector<std::thread> to_join;
  {
    std::unique_lock lock(mu_);
    if (shutdown_ && workers_.empty()) return;
    shutdown_ = true;
    cv_.notify_all();
    to_join.swap(workers_);
    retired_.clear();
  }
  for (auto& t : to_join) t.join();
}

std::size_t ElasticThreadPool::thread_count() const {
  std::unique_lock lock(mu_);
  return live_;
}

std::size_t ElasticThreadPool::peak_thread_count() const {
  std::unique_lock lock(mu_);
  return peak_;
}

}  // namespace samoa
