#include "util/ids.hpp"

#include <ostream>

namespace samoa {

namespace {
template <typename Tag>
std::ostream& print(std::ostream& os, const char* prefix, Id<Tag> id) {
  if (!id.valid()) return os << prefix << "<invalid>";
  return os << prefix << id.value();
}
}  // namespace

std::ostream& operator<<(std::ostream& os, EventTypeId id) { return print(os, "ev", id); }
std::ostream& operator<<(std::ostream& os, MicroprotocolId id) { return print(os, "mp", id); }
std::ostream& operator<<(std::ostream& os, HandlerId id) { return print(os, "h", id); }
std::ostream& operator<<(std::ostream& os, ComputationId id) { return print(os, "k", id); }
std::ostream& operator<<(std::ostream& os, SiteId id) { return print(os, "site", id); }

}  // namespace samoa
