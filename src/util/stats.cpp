#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>
#include <sstream>
#include <thread>

namespace samoa {

Histogram::Histogram() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

int Histogram::bucket_for(std::uint64_t ns) {
  if (ns == 0) return 0;
  // 4 buckets per power of two: index = 4*log2(ns) + 2-bit sub-position.
  int log2 = 63 - __builtin_clzll(ns);
  int sub = log2 >= 2 ? static_cast<int>((ns >> (log2 - 2)) & 0x3) : 0;
  int idx = log2 * 4 + sub;
  return std::min(idx, kBuckets - 1);
}

double Histogram::bucket_upper_ns(int b) {
  int log2 = b / 4;
  int sub = b % 4;
  return std::ldexp(1.0 + (sub + 1) * 0.25, log2);
}

Histogram::Stripe& Histogram::stripe_for_this_thread() {
  // Hash of the thread id, cached: a thread always lands on the same
  // stripe, so writer contention only arises between threads that hash
  // together.
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kStripes;
  return stripes_[idx];
}

void Histogram::record_ns(std::uint64_t ns) {
  buckets_[bucket_for(ns)].fetch_add(1, std::memory_order_relaxed);
  Stripe& s = stripe_for_this_thread();
  // Seqlock write: take the stripe by CASing its sequence to odd, update
  // the pair, release to even. Readers retry while the sequence is odd or
  // moved, so they can never see a half-updated (count, ns) pair.
  std::uint64_t seq = s.seq.load(std::memory_order_relaxed);
  for (;;) {
    if ((seq & 1) == 0 &&
        s.seq.compare_exchange_weak(seq, seq + 1, std::memory_order_acquire,
                                    std::memory_order_relaxed)) {
      break;
    }
    if (seq & 1) seq = s.seq.load(std::memory_order_relaxed);
  }
  s.count.store(s.count.load(std::memory_order_relaxed) + 1, std::memory_order_relaxed);
  s.ns.store(s.ns.load(std::memory_order_relaxed) + ns, std::memory_order_relaxed);
  s.seq.store(seq + 2, std::memory_order_release);
}

void Histogram::totals(std::uint64_t& count, std::uint64_t& ns) const {
  count = 0;
  ns = 0;
  for (const Stripe& s : stripes_) {
    for (;;) {
      const std::uint64_t q1 = s.seq.load(std::memory_order_acquire);
      if (q1 & 1) continue;  // writer mid-update
      const std::uint64_t c = s.count.load(std::memory_order_acquire);
      const std::uint64_t n = s.ns.load(std::memory_order_acquire);
      if (s.seq.load(std::memory_order_acquire) == q1) {
        count += c;
        ns += n;
        break;
      }
    }
  }
}

std::uint64_t Histogram::count() const {
  std::uint64_t c, n;
  totals(c, n);
  return c;
}

double Histogram::mean_ns() const {
  std::uint64_t c, n;
  totals(c, n);
  if (c == 0) return 0.0;
  return static_cast<double>(n) / static_cast<double>(c);
}

double Histogram::quantile_ns(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto c = count();
  if (c == 0) return 0.0;
  const auto target = static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(c)));
  std::uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[b].load(std::memory_order_relaxed);
    if (seen >= target) return bucket_upper_ns(b);
  }
  return bucket_upper_ns(kBuckets - 1);
}

void Histogram::reset() {
  // Not atomic with respect to concurrent recording (same as before the
  // striping): reset between measurement phases, not mid-flight.
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  for (Stripe& s : stripes_) {
    s.count.store(0, std::memory_order_relaxed);
    s.ns.store(0, std::memory_order_relaxed);
  }
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

void Table::print(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_)
    for (std::size_t i = 0; i < row.size(); ++i) widths[i] = std::max(widths[i], row[i].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    std::cout << "| ";
    for (std::size_t i = 0; i < headers_.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      std::cout << cell << std::string(widths[i] - cell.size(), ' ') << " | ";
    }
    std::cout << "\n";
  };

  if (!title.empty()) std::cout << "\n== " << title << " ==\n";
  print_row(headers_);
  std::cout << "|";
  for (std::size_t w : widths) std::cout << std::string(w + 2, '-') << "|";
  std::cout << "\n";
  for (const auto& row : rows_) print_row(row);
  std::cout.flush();
}

std::string format_duration_ns(double ns) {
  const char* unit = "ns";
  double v = ns;
  if (v >= 1e9) {
    v /= 1e9;
    unit = "s";
  } else if (v >= 1e6) {
    v /= 1e6;
    unit = "ms";
  } else if (v >= 1e3) {
    v /= 1e3;
    unit = "us";
  }
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(v < 10 ? 2 : 1);
  os << v << unit;
  return os.str();
}

}  // namespace samoa
