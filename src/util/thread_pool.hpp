// Elastic thread pool.
//
// SAMOA computations may block inside version gates (the concurrency
// control algorithms delay handler calls whose version is not yet
// current). A fixed-size pool could therefore deadlock: every worker might
// be parked in a gate waiting for a computation whose remaining work can
// only run on a pool thread. This pool preserves the paper's
// deadlock-freedom argument by growing whenever a runnable task would
// otherwise be starved. Two growth triggers exist, and both are required:
//
//   * submit(): a task arrives and no idle worker can take it;
//   * note_worker_parked(): a worker blocks *mid-task* in a version gate
//     (reported by diag::ScopedWait) while tasks sit queued — without
//     this, a queued task is stranded until the next submit happens to
//     arrive, and permanently if it never does.
//
// The max_threads cap bounds RUNNABLE workers only: workers parked in
// gates do not count against it. Counting them (as this pool originally
// did) re-introduces the deadlock the growth rule exists to prevent —
// once max_threads computations pile up blocked, the one queued task
// whose execution would unblock them all can never get a thread. This
// was the root cause of the bench_viewchange E2 join-flood hang; see
// DESIGN.md ("Blocked-state introspection") for the post-mortem. Total
// thread count is therefore bounded by max_threads + (blocked
// computations); the paper's deadlock-freedom argument needs exactly
// that much, and the diag watchdog is the backstop that names runaway
// blocking instead of a silent cap-induced wedge.
//
// Idle workers retire after a timeout down to a configurable floor.
//
// Role in dispatch (PR 8): computation tasks normally run on the
// per-microprotocol executor shards (core/executor.hpp); this pool is the
// runtime-selectable fallback (DispatchImpl::kElasticPool) and the only
// substrate under schedule exploration. The parked-worker contract above
// (diag::ScopedWait -> note_worker_parked) is shared with the executor's
// consumer-role handoff — both implement "a runnable task must never wait
// on a parked thread", this pool by growing, the executor by re-spawning
// the shard consumer.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

namespace samoa::diag {
struct PoolState;
}

namespace samoa {

class ElasticThreadPool {
 public:
  struct Options {
    std::size_t min_threads = 1;
    /// Cap on *runnable* (non-parked) workers. Hitting it indicates a bug
    /// in the caller (e.g. unbounded recursion of non-blocking tasks).
    std::size_t max_threads = 1024;
    std::chrono::milliseconds idle_timeout{200};
  };

  ElasticThreadPool() : ElasticThreadPool(Options{}) {}
  explicit ElasticThreadPool(Options opts);
  ~ElasticThreadPool();

  ElasticThreadPool(const ElasticThreadPool&) = delete;
  ElasticThreadPool& operator=(const ElasticThreadPool&) = delete;

  /// Enqueue a task. Never blocks; grows the pool if all workers are busy.
  /// `tag` identifies the task's computation in diagnostics dumps (0 =
  /// untagged). Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task, std::uint64_t tag = 0);

  struct Task {
    std::function<void()> fn;
    std::uint64_t tag = 0;
  };

  /// Enqueue a burst of tasks under one lock acquisition (one capacity
  /// check, one broadcast) instead of per-task mutex traffic — the pool
  /// half of batched admission. Tasks run with the same guarantees as
  /// submit(); either the whole batch is enqueued or (after shutdown) none.
  void submit_batch(std::vector<Task> batch);

  /// Stop accepting tasks, run the backlog to completion, join all workers.
  void shutdown();

  std::size_t thread_count() const;
  std::size_t peak_thread_count() const;
  /// Workers currently parked in an instrumented wait (diag::ScopedWait).
  std::size_t parked_count() const;
  std::size_t peak_parked_count() const;
  std::size_t queue_depth() const;

  /// The pool whose worker the calling thread is, or null.
  static ElasticThreadPool* current();

  /// Called by diag::ScopedWait when this pool's worker blocks mid-task:
  /// the worker stops counting against max_threads, and if tasks are
  /// queued with nobody to run them the pool grows immediately — a
  /// runnable task must never wait on a parked worker.
  void note_worker_parked();
  void note_worker_unparked();

  /// Snapshot for diagnostics dumps (wait registry / watchdog).
  diag::PoolState diag_state() const;

 private:
  void worker_loop();
  void spawn_worker_locked();
  void reap_retired_locked();
  /// Grow while queued tasks outnumber idle workers and runnable capacity
  /// remains. Caller holds mu_.
  void ensure_capacity_locked();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> tasks_;
  std::vector<std::thread> workers_;
  std::vector<std::thread::id> retired_;
  std::unordered_map<std::thread::id, std::uint64_t> running_;  // worker -> task tag
  std::size_t idle_ = 0;
  std::size_t starting_ = 0;  // spawned, not yet entered worker_loop
  std::size_t live_ = 0;
  std::size_t parked_ = 0;
  std::size_t peak_ = 0;
  std::size_t peak_parked_ = 0;
  bool shutdown_ = false;
};

}  // namespace samoa
