// Elastic thread pool.
//
// SAMOA computations may block inside version gates (the concurrency
// control algorithms delay handler calls whose version is not yet
// current). A fixed-size pool could therefore deadlock: every worker might
// be parked in a gate waiting for a computation whose remaining work can
// only run on a pool thread. This pool preserves the paper's
// deadlock-freedom argument by growing whenever a task is submitted and no
// worker is idle, so a runnable task is never starved by blocked workers.
// Idle workers retire after a timeout down to a configurable floor.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace samoa {

class ElasticThreadPool {
 public:
  struct Options {
    std::size_t min_threads = 1;
    /// Backstop against runaway growth; hitting it indicates a bug in the
    /// caller (e.g. unbounded recursion of blocking tasks).
    std::size_t max_threads = 1024;
    std::chrono::milliseconds idle_timeout{200};
  };

  ElasticThreadPool() : ElasticThreadPool(Options{}) {}
  explicit ElasticThreadPool(Options opts);
  ~ElasticThreadPool();

  ElasticThreadPool(const ElasticThreadPool&) = delete;
  ElasticThreadPool& operator=(const ElasticThreadPool&) = delete;

  /// Enqueue a task. Never blocks; grows the pool if all workers are busy.
  /// Throws std::runtime_error after shutdown began.
  void submit(std::function<void()> task);

  /// Stop accepting tasks, run the backlog to completion, join all workers.
  void shutdown();

  std::size_t thread_count() const;
  std::size_t peak_thread_count() const;

 private:
  void worker_loop();
  void spawn_worker_locked();
  void reap_retired_locked();

  Options opts_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  std::vector<std::thread> workers_;
  std::vector<std::thread::id> retired_;
  std::size_t idle_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_ = 0;
  bool shutdown_ = false;
};

}  // namespace samoa
