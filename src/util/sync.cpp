#include "util/sync.hpp"

#include <atomic>
#include <stdexcept>

#include "diag/wait_registry.hpp"

// Every actual park below registers a diag::ScopedWait (kExternal). Besides
// showing up in blocked-state dumps, this is a liveness requirement under
// executor dispatch: a handler body blocking on one of these primitives
// parks a single-consumer shard, and only an instrumented wait triggers the
// consumer-role handoff that keeps the tasks queued behind it runnable
// (see core/executor.hpp). Nested registration is handled by ScopedWait
// itself — an already-registered wait (e.g. Computation::wait_done) that
// parks through OneShotEvent stays a single record.

namespace samoa {

void WaitGroup::add(std::size_t n) {
  std::unique_lock lock(mu_);
  count_ += n;
}

void WaitGroup::done() {
  std::unique_lock lock(mu_);
  if (count_ == 0) throw std::logic_error("WaitGroup::done without matching add");
  if (--count_ == 0) cv_.notify_all();
}

void WaitGroup::wait() {
  std::unique_lock lock(mu_);
  if (count_ == 0) return;
  diag::ScopedWait wait(diag::WaitKind::kExternal, this, "wait-group", 0, 0, count_);
  cv_.wait(lock, [this] { return count_ == 0; });
}

bool WaitGroup::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (count_ == 0) return true;
  diag::ScopedWait wait(diag::WaitKind::kExternal, this, "wait-group", 0, 0, count_);
  return cv_.wait_for(lock, timeout, [this] { return count_ == 0; });
}

std::size_t WaitGroup::pending() const {
  std::unique_lock lock(mu_);
  return count_;
}

void OneShotEvent::set() {
  std::unique_lock lock(mu_);
  set_ = true;
  cv_.notify_all();
}

bool OneShotEvent::is_set() const {
  std::unique_lock lock(mu_);
  return set_;
}

void OneShotEvent::wait() {
  std::unique_lock lock(mu_);
  if (set_) return;
  diag::ScopedWait wait(diag::WaitKind::kExternal, this, "one-shot-event", 0, 0, 0);
  cv_.wait(lock, [this] { return set_; });
}

bool OneShotEvent::wait_for(std::chrono::milliseconds timeout) {
  std::unique_lock lock(mu_);
  if (set_) return true;
  diag::ScopedWait wait(diag::WaitKind::kExternal, this, "one-shot-event", 0, 0, 0);
  return cv_.wait_for(lock, timeout, [this] { return set_; });
}

void spin_for(std::chrono::nanoseconds d) {
  const auto deadline = std::chrono::steady_clock::now() + d;
  // The atomic fence keeps the loop observable so it is not elided.
  std::atomic<unsigned> sink{0};
  while (std::chrono::steady_clock::now() < deadline) {
    sink.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace samoa
