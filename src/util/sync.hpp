// Small synchronisation helpers built on mutex + condition_variable,
// following the C++ Core Guidelines concurrency rules: RAII only (CP.20),
// every wait has a condition (CP.42), each mutex lives next to the data it
// guards (CP.50).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

namespace samoa {

/// Go-style wait group: tracks outstanding work items. `wait` blocks until
/// the count returns to zero. Used by computations to detect completion of
/// all their (possibly nested) asynchronous handler executions.
class WaitGroup {
 public:
  void add(std::size_t n = 1);
  void done();
  void wait();
  /// Returns false on timeout.
  bool wait_for(std::chrono::milliseconds timeout);
  std::size_t pending() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_ = 0;
};

/// One-shot event: starts unset, `set` releases all current & future waiters.
class OneShotEvent {
 public:
  void set();
  bool is_set() const;
  void wait();
  bool wait_for(std::chrono::milliseconds timeout);

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool set_ = false;
};

/// Calibrated busy-wait used by benchmarks to emulate CPU-bound handler
/// work without being descheduled (sleep) or optimised away.
void spin_for(std::chrono::nanoseconds d);

}  // namespace samoa
