// Strong identifier types used throughout samoa-cpp.
//
// Every first-class runtime entity (event types, microprotocols, handlers,
// computations, sites) is referred to by a small integral id. Ids are
// allocated by monotone counters; names are interned alongside so that
// diagnostics and traces stay human-readable without carrying strings on
// hot paths.
#pragma once

#include <atomic>
#include <compare>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>

namespace samoa {

/// Tag-discriminated integral id. Distinct Tag types are not comparable or
/// convertible to each other, which prevents e.g. passing a HandlerId where
/// a MicroprotocolId is expected.
template <typename Tag>
class Id {
 public:
  using value_type = std::uint32_t;
  static constexpr value_type kInvalid = ~value_type{0};

  constexpr Id() = default;
  constexpr explicit Id(value_type v) : value_(v) {}

  constexpr value_type value() const { return value_; }
  constexpr bool valid() const { return value_ != kInvalid; }

  friend constexpr auto operator<=>(Id, Id) = default;

 private:
  value_type value_ = kInvalid;
};

struct EventTypeTag {};
struct MicroprotocolTag {};
struct HandlerTag {};
struct ComputationTag {};
struct SiteTag {};

using EventTypeId = Id<EventTypeTag>;
using MicroprotocolId = Id<MicroprotocolTag>;
using HandlerId = Id<HandlerTag>;
using ComputationId = Id<ComputationTag>;
using SiteId = Id<SiteTag>;

/// Process-wide id allocator; one instance per Tag.
template <typename Tag>
class IdAllocator {
 public:
  Id<Tag> next() { return Id<Tag>(counter_.fetch_add(1, std::memory_order_relaxed)); }

 private:
  std::atomic<typename Id<Tag>::value_type> counter_{0};
};

std::ostream& operator<<(std::ostream& os, EventTypeId id);
std::ostream& operator<<(std::ostream& os, MicroprotocolId id);
std::ostream& operator<<(std::ostream& os, HandlerId id);
std::ostream& operator<<(std::ostream& os, ComputationId id);
std::ostream& operator<<(std::ostream& os, SiteId id);

}  // namespace samoa

namespace std {
template <typename Tag>
struct hash<samoa::Id<Tag>> {
  size_t operator()(samoa::Id<Tag> id) const noexcept {
    return std::hash<typename samoa::Id<Tag>::value_type>{}(id.value());
  }
};
}  // namespace std
