// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in samoa-cpp (simulated link latency, loss,
// benchmark workloads, property-test schedules) draws from explicitly
// seeded generators so that every run is reproducible. We implement
// SplitMix64 (for seeding) and xoshiro256** (for streams); both are tiny,
// fast, and have well-understood statistical quality.
#pragma once

#include <cstdint>
#include <limits>

namespace samoa {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — the repository's workhorse PRNG.
/// Satisfies (most of) UniformRandomBitGenerator so it can be used with
/// <random> distributions, though we provide the handful of helpers the
/// codebase needs directly to avoid libstdc++ distribution variance.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDDEADBEEFULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() { return next(); }
  std::uint64_t next();

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool chance(double p);

  /// Exponentially distributed double with the given mean (mean <= 0 -> 0).
  double exponential(double mean);

  /// Derive an independent stream (e.g. one per simulated link).
  Rng split();

 private:
  std::uint64_t s_[4];
};

}  // namespace samoa
