// Timer service — timeouts as external events.
//
// In the SAMOA model a timeout is one of the two canonical external events
// (Section 2). The TimerService runs one thread with a deadline-ordered
// queue; expired callbacks fire on that thread and typically spawn an
// isolated computation on the owning site's runtime. Supports one-shot and
// periodic timers with cancellation.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "util/stats.hpp"

namespace samoa::net {

using TimerId = std::uint64_t;

class TimerService {
 public:
  TimerService();
  ~TimerService();

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Fire `fn` once after `delay`.
  TimerId schedule(std::chrono::microseconds delay, std::function<void()> fn);

  /// Fire `fn` every `interval` until cancelled.
  TimerId schedule_periodic(std::chrono::microseconds interval, std::function<void()> fn);

  /// Cancel a timer; returns false if it already fired (one-shot) or was
  /// unknown. A periodic timer stops firing after cancel.
  bool cancel(TimerId id);

  /// Cancel everything (used at site shutdown / crash).
  void cancel_all();

  std::uint64_t fired_count() const { return fired_.value(); }

 private:
  struct Entry {
    TimerId id;
    std::chrono::microseconds interval{0};  // zero: one-shot
    std::function<void()> fn;
  };

  void loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::multimap<Clock::time_point, Entry> queue_;
  TimerId next_id_ = 1;
  bool shutdown_ = false;
  Counter fired_;
  std::thread thread_;
};

}  // namespace samoa::net
