// Timer service — timeouts as external events.
//
// In the SAMOA model a timeout is one of the two canonical external events
// (Section 2). The TimerService runs one thread with a deadline-ordered
// queue; expired callbacks fire on that thread and typically spawn an
// isolated computation on the owning site's runtime. Supports one-shot and
// periodic timers with cancellation.
//
// All deadlines flow through an injected time::ClockSource. Under the
// default WallClock behaviour is unchanged; under a time::VirtualClock the
// service participates in deterministic simulation — callbacks fire in
// virtual time with zero real sleeps, serialized against every other
// clock-driven event.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>

#include "time/clock.hpp"
#include "util/stats.hpp"

namespace samoa::net {

using TimerId = std::uint64_t;

class TimerService {
 public:
  explicit TimerService(time::ClockSource* clock = nullptr);
  ~TimerService();

  TimerService(const TimerService&) = delete;
  TimerService& operator=(const TimerService&) = delete;

  /// Fire `fn` once after `delay`.
  TimerId schedule(std::chrono::microseconds delay, std::function<void()> fn);

  /// Fire `fn` every `interval` until cancelled.
  TimerId schedule_periodic(std::chrono::microseconds interval, std::function<void()> fn);

  /// Cancel a timer; returns false if it already fired (one-shot) or was
  /// unknown. A periodic timer stops firing after cancel — including when
  /// the cancel lands while its callback is executing.
  bool cancel(TimerId id);

  /// Cancel everything (used at site shutdown / crash). A periodic timer
  /// mid-callback does not re-arm.
  void cancel_all();

  std::uint64_t fired_count() const { return fired_.value(); }

  time::ClockSource& clock() { return clock_; }

 private:
  struct Entry {
    TimerId id;
    std::chrono::microseconds interval{0};  // zero: one-shot
    std::function<void()> fn;
  };

  void loop();

  time::ClockSource& clock_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::multimap<Clock::time_point, Entry> queue_;
  TimerId next_id_ = 1;
  // In-flight dispatch state: the entry currently executing unlocked is no
  // longer in queue_, so cancel() consults these to stop a periodic timer
  // from re-arming.
  TimerId running_id_ = 0;
  std::chrono::microseconds running_interval_{0};
  bool running_cancelled_ = false;
  bool shutdown_ = false;
  Counter fired_;
  time::WorkerHandle worker_;  // registered before the thread starts
  std::thread thread_;
};

}  // namespace samoa::net
