// Binary wire codec.
//
// Protocol frameworks "support primitives that can simplify the
// construction of network protocols, such as ... marshalling messages to
// the network format" (paper Section 1). This module provides that
// substrate: a compact, self-describing binary encoding for the
// group-communication Wire messages, built on a varint writer/reader. The
// in-process simulator does not need bytes to function, but GroupNode can
// run with `GcOptions::serialize_wire` so every message crosses the
// simulated network as a byte vector — exercising exactly the code a real
// UDP transport would.
//
// Encoding: LEB128-style varints for integers, length-prefixed strings,
// one tag byte per Wire alternative. Decoding is bounds-checked and throws
// CodecError on truncated or malformed input (never UB).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/errors.hpp"
#include "gc/wire.hpp"

namespace samoa::net {

class CodecError : public SamoaError {
 public:
  explicit CodecError(const std::string& what) : SamoaError(what) {}
};

/// Append-only binary writer.
class ByteWriter {
 public:
  void put_u8(std::uint8_t v) { bytes_.push_back(v); }
  void put_varint(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  void put_string(const std::string& s);

  std::vector<std::uint8_t> take() { return std::move(bytes_); }
  const std::vector<std::uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked binary reader.
class ByteReader {
 public:
  explicit ByteReader(const std::vector<std::uint8_t>& bytes) : bytes_(bytes) {}

  std::uint8_t get_u8();
  std::uint64_t get_varint();
  bool get_bool() { return get_u8() != 0; }
  std::string get_string();

  bool exhausted() const { return pos_ == bytes_.size(); }
  std::size_t remaining() const { return bytes_.size() - pos_; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t pos_ = 0;
};

/// Marshal a Wire message (with its sender) to bytes and back. The decode
/// of any encode is identity (round-trip property-tested); decode of
/// arbitrary bytes either succeeds or throws CodecError.
std::vector<std::uint8_t> encode_wire(SiteId from, const gc::Wire& wire);
gc::FromWire decode_wire(const std::vector<std::uint8_t>& bytes);

}  // namespace samoa::net
