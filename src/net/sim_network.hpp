// Simulated multi-site network.
//
// Substitute for the paper's "distributed machines" testbed (Section 7):
// an in-process message bus connecting simulated sites with configurable
// per-link latency, jitter, loss and partitions, plus site crashes. A
// single delivery thread dequeues packets in virtual-arrival order and
// hands them to the destination site's delivery callback — which, in the
// group-communication stack, spawns an isolated computation, exactly the
// external-event path of a real deployment.
//
// Time base: all deadlines flow through an injected time::ClockSource.
// Under the default WallClock, latency is wall-clock based — what the
// overhead experiments need. Under a time::VirtualClock the network takes
// part in deterministic simulation: packets deliver in virtual time, one
// at a time, with zero real sleeps.
//
// Determinism: all randomness (jitter, drops) comes from a seeded Rng, and
// every send consumes the same RNG draws for a given link configuration
// whatever the crash/partition state, so the stream (and hence a replay)
// never diverges based on fault state. A run is reproducible given (seed,
// workload timing); with VirtualClock the timing itself is deterministic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.hpp"
#include "time/clock.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace samoa::net {

struct Packet {
  SiteId from;
  SiteId to;
  Message payload;
};

struct LinkOptions {
  std::chrono::microseconds base_latency{100};
  std::chrono::microseconds jitter{0};  // uniform extra in [0, jitter]
  double drop_probability = 0.0;
};

/// Decision seam over the delivery loop, for schedule exploration. When a
/// hook is installed, every drain step where more than one event is
/// *eligible* — a lane head whose deadline is due, or a due control event
/// (fault injections routed through schedule_control) — becomes a decision
/// point: choose() picks which event fires next instead of the default
/// (deliver_at, seq) merge order. Candidate keys are stable across runs of
/// a deterministic simulation, which is what makes the decisions
/// recordable and replayable:
///   packet candidate   key = destination site id (one per lane head)
///   control candidate  key = kControlKeyBase + schedule index
/// Keys are presented in each candidate's natural (deliver_at, seq) order,
/// so index 0 is exactly the default merge choice: a hook that always
/// picks 0 reproduces the unexplored delivery order, and shrinking a trace
/// toward all-zeros shrinks toward the natural schedule. choose() runs
/// with the network mutex held: it must not block or re-enter the network.
///
/// Without a hook (the default), delivery order is byte-identical to the
/// plain merge of the per-destination lanes: exploration is a strict
/// opt-in, never a behavioural change for seeded production runs.
class DeliveryHook {
 public:
  static constexpr std::uint64_t kControlKeyBase = 1ull << 32;

  virtual ~DeliveryHook() = default;

  /// Pick an index into `keys` (sorted ascending, size >= 2).
  virtual std::size_t choose(const std::vector<std::uint64_t>& keys) = 0;
};

class SimNetwork {
 public:
  using DeliveryFn = std::function<void(const Packet&)>;

  explicit SimNetwork(LinkOptions defaults = {}, std::uint64_t seed = 1,
                      time::ClockSource* clock = nullptr);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Register a site; `deliver` runs on the network's delivery thread for
  /// every packet addressed to it (it should hand off quickly, e.g. spawn
  /// an isolated computation).
  SiteId add_site(DeliveryFn deliver);

  /// Send a packet. Unknown destinations, crashed endpoints, partitions
  /// and random drops silently discard it (UDP semantics).
  void send(SiteId from, SiteId to, Message payload);

  /// Directional link override (from -> to).
  void set_link(SiteId from, SiteId to, LinkOptions opts);

  /// Cut / heal both directions between a and b.
  void set_partitioned(SiteId a, SiteId b, bool partitioned);

  /// Cut / heal one direction only (from -> to): an asymmetric partition,
  /// the failure mode where a can still reach b but hears nothing back.
  void set_partitioned_oneway(SiteId from, SiteId to, bool partitioned);

  /// Crash a site: everything to/from it is dropped from now on.
  void crash(SiteId site);
  bool crashed(SiteId site) const;

  /// Undo crash(site): the site exchanges packets again from now on.
  /// Packets dropped while it was down stay dropped — a recovering site
  /// rejoins at the protocol layer, not by replaying the network. If the
  /// site had detach()ed, call attach() first to restore its callback.
  void recover(SiteId site);

  /// Remove a site's delivery callback. Blocks until any in-progress
  /// delivery to that site finished, so the callee can be destroyed safely
  /// afterwards. Implies crash(site).
  void detach(SiteId site);

  /// Re-register the delivery callback of an existing (detached or
  /// restarted) site. Does not clear the crashed flag — pair with
  /// recover() once the callee is ready to receive.
  void attach(SiteId site, DeliveryFn deliver);

  /// Install (or clear, with nullptr) the exploration decision seam. Must
  /// be set while the network is quiet (before traffic / between drains):
  /// the delivery loop reads it at every drain step.
  void set_delivery_hook(DeliveryHook* hook);

  /// Schedule a control event at virtual offset `delay` from now: a fault
  /// injection (or any scripted step) that should interleave with packet
  /// delivery as an explorable decision. The callback runs on the delivery
  /// thread inside its own clock dispatch turn, with the network mutex
  /// released — it may call any SimNetwork mutator. Without a DeliveryHook
  /// control events fire in the global (deliver_at, seq) merge order,
  /// exactly as a TimerService-armed action would; with one, a due control
  /// event is one more candidate at the decision point, so fault *timing*
  /// relative to delivery order is explored too. Control events do not
  /// count as in-flight packets: drain() does not wait for them.
  void schedule_control(std::chrono::microseconds delay, std::string label,
                        std::function<void()> fn);

  /// Drop every pending control event (scenario shutdown).
  void cancel_controls();

  /// Record the packet-level event stream: one line per delivery, late
  /// drop, and control firing, in execution order. `store_lines` keeps the
  /// full log (replay byte-comparison); otherwise only the rolling
  /// event_hash() is maintained (cheap enough for fleet-sized runs).
  void enable_event_log(bool store_lines = true);
  std::vector<std::string> event_log() const;
  /// FNV-1a over the recorded event lines; identical streams hash equal.
  std::uint64_t event_hash() const;

  /// Default link options applied where no set_link override exists.
  /// Mutators let a chaos plan script loss-burst windows; the RNG draw
  /// discipline (see send()) keeps replays aligned as long as the change
  /// itself happens at a deterministic virtual time.
  LinkOptions defaults() const;
  void set_defaults(LinkOptions defaults);

  /// Block until no packet is in flight AND no delivery callback is still
  /// executing. A callback may itself send(); such packets are part of the
  /// in-flight set drain() waits for.
  void drain();

  time::ClockSource& clock() { return clock_; }

  struct Stats {
    Counter sent;
    Counter delivered;
    Counter dropped;
    Counter recoveries;  // recover() calls that revived a crashed site
  };
  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    Clock::time_point deliver_at;
    std::uint64_t seq;  // FIFO tiebreak for equal deadlines
    Packet packet;
    bool operator>(const InFlight& o) const {
      return std::tie(deliver_at, seq) > std::tie(o.deliver_at, o.seq);
    }
  };
  // The in-flight set is sharded into per-destination lanes, merged
  // through a small heap of lane heads (see the field comments below).
  struct Lane {
    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> q;
  };
  /// A (possibly stale) claim that lane `dest`'s head is packet
  /// (deliver_at, seq). Stale claims are discarded lazily on inspection.
  struct HeadRef {
    Clock::time_point deliver_at;
    std::uint64_t seq;
    std::size_t dest;
    bool operator>(const HeadRef& o) const {
      return std::tie(deliver_at, seq) > std::tie(o.deliver_at, o.seq);
    }
  };

  /// A scheduled fault/script step participating in delivery decisions.
  struct ControlEvent {
    Clock::time_point at;
    std::uint64_t seq;  // shares next_seq_ with packets: one merge order
    std::uint64_t key;  // dense schedule index, stable across replays
    std::string label;
    std::function<void()> fn;
  };

  void delivery_loop();
  const LinkOptions& link_for(SiteId from, SiteId to) const;
  /// One drain step under an installed DeliveryHook: gather every eligible
  /// candidate (due lane heads + due control events), let the hook choose
  /// when there are >= 2, execute the chosen one. Caller holds mu_ and has
  /// established that at least one event is due.
  void step_explored(std::unique_lock<std::mutex>& lock);
  /// Pop lane `lane_ix`'s head and run the delivery protocol (late-crash
  /// check, callback with mu_ released, stats, claim for the next head).
  void deliver_from_lane(std::unique_lock<std::mutex>& lock, std::size_t lane_ix);
  /// Run controls_[ix] on the delivery thread (mu_ released around fn).
  void run_control(std::unique_lock<std::mutex>& lock, std::size_t ix);
  /// Index of the earliest pending control by (at, seq); npos when none.
  std::size_t earliest_control() const;
  /// Earliest deadline across lanes and controls (max() when idle).
  Clock::time_point next_deadline();
  void note_event(const std::string& line);
  /// Enqueue into the destination lane; returns true iff the packet became
  /// the new global earliest (the delivery loop must re-evaluate).
  bool push_packet(InFlight item);
  /// Drop stale HeadRefs until the top claim matches its lane's real head.
  void prune_heads();
  /// Pruned earliest deadline across all lanes (max() when empty).
  Clock::time_point earliest_deadline();

  time::ClockSource& clock_;
  LinkOptions defaults_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Rng rng_;
  std::vector<DeliveryFn> sites_;
  std::unordered_set<std::uint64_t> partitioned_;  // packed (a,b) pairs
  std::unordered_map<std::uint64_t, LinkOptions> links_;
  std::unordered_set<SiteId> crashed_;
  // Sharded in-flight set. One priority queue per destination keeps each
  // push O(log lane) instead of O(log total), and — since a site's traffic
  // is mostly FIFO (same link latency, later send time) — most pushes touch
  // only their lane: a HeadRef enters the merge heap only when a packet
  // becomes its lane's new head. heads_ may hold stale or duplicate claims
  // (bounded: at most one per head change); readers lazily discard any
  // claim that no longer matches its lane's top. Global delivery order is
  // still exactly (deliver_at, seq) — the merge of per-lane minima — so
  // seeded replays are byte-identical to the unsharded queue's.
  std::vector<Lane> lanes_;  // indexed by destination site
  std::priority_queue<HeadRef, std::vector<HeadRef>, std::greater<>> heads_;
  // Pending control events. A plain vector scanned linearly: fault plans
  // hold tens of actions, and the scan only runs when controls exist.
  std::vector<ControlEvent> controls_;
  std::uint64_t next_control_key_ = 0;
  DeliveryHook* hook_ = nullptr;
  bool log_events_ = false;
  bool log_store_ = false;
  std::vector<std::string> event_log_;
  std::uint64_t event_hash_ = 1469598103934665603ull;  // FNV-1a offset basis
  std::size_t in_flight_count_ = 0;
  SiteId delivering_;  // site whose callback is currently running
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;
  Stats stats_;
  time::WorkerHandle worker_;  // registered before the thread starts
  std::thread delivery_thread_;
};

}  // namespace samoa::net
