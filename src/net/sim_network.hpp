// Simulated multi-site network.
//
// Substitute for the paper's "distributed machines" testbed (Section 7):
// an in-process message bus connecting simulated sites with configurable
// per-link latency, jitter, loss and partitions, plus site crashes. A
// single delivery thread dequeues packets in virtual-arrival order and
// hands them to the destination site's delivery callback — which, in the
// group-communication stack, spawns an isolated computation, exactly the
// external-event path of a real deployment.
//
// Time base: all deadlines flow through an injected time::ClockSource.
// Under the default WallClock, latency is wall-clock based — what the
// overhead experiments need. Under a time::VirtualClock the network takes
// part in deterministic simulation: packets deliver in virtual time, one
// at a time, with zero real sleeps.
//
// Determinism: all randomness (jitter, drops) comes from a seeded Rng, and
// every send consumes the same RNG draws for a given link configuration
// whatever the crash/partition state, so the stream (and hence a replay)
// never diverges based on fault state. A run is reproducible given (seed,
// workload timing); with VirtualClock the timing itself is deterministic.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/event.hpp"
#include "time/clock.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace samoa::net {

struct Packet {
  SiteId from;
  SiteId to;
  Message payload;
};

struct LinkOptions {
  std::chrono::microseconds base_latency{100};
  std::chrono::microseconds jitter{0};  // uniform extra in [0, jitter]
  double drop_probability = 0.0;
};

class SimNetwork {
 public:
  using DeliveryFn = std::function<void(const Packet&)>;

  explicit SimNetwork(LinkOptions defaults = {}, std::uint64_t seed = 1,
                      time::ClockSource* clock = nullptr);
  ~SimNetwork();

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  /// Register a site; `deliver` runs on the network's delivery thread for
  /// every packet addressed to it (it should hand off quickly, e.g. spawn
  /// an isolated computation).
  SiteId add_site(DeliveryFn deliver);

  /// Send a packet. Unknown destinations, crashed endpoints, partitions
  /// and random drops silently discard it (UDP semantics).
  void send(SiteId from, SiteId to, Message payload);

  /// Directional link override (from -> to).
  void set_link(SiteId from, SiteId to, LinkOptions opts);

  /// Cut / heal both directions between a and b.
  void set_partitioned(SiteId a, SiteId b, bool partitioned);

  /// Cut / heal one direction only (from -> to): an asymmetric partition,
  /// the failure mode where a can still reach b but hears nothing back.
  void set_partitioned_oneway(SiteId from, SiteId to, bool partitioned);

  /// Crash a site: everything to/from it is dropped from now on.
  void crash(SiteId site);
  bool crashed(SiteId site) const;

  /// Undo crash(site): the site exchanges packets again from now on.
  /// Packets dropped while it was down stay dropped — a recovering site
  /// rejoins at the protocol layer, not by replaying the network. If the
  /// site had detach()ed, call attach() first to restore its callback.
  void recover(SiteId site);

  /// Remove a site's delivery callback. Blocks until any in-progress
  /// delivery to that site finished, so the callee can be destroyed safely
  /// afterwards. Implies crash(site).
  void detach(SiteId site);

  /// Re-register the delivery callback of an existing (detached or
  /// restarted) site. Does not clear the crashed flag — pair with
  /// recover() once the callee is ready to receive.
  void attach(SiteId site, DeliveryFn deliver);

  /// Default link options applied where no set_link override exists.
  /// Mutators let a chaos plan script loss-burst windows; the RNG draw
  /// discipline (see send()) keeps replays aligned as long as the change
  /// itself happens at a deterministic virtual time.
  LinkOptions defaults() const;
  void set_defaults(LinkOptions defaults);

  /// Block until no packet is in flight AND no delivery callback is still
  /// executing. A callback may itself send(); such packets are part of the
  /// in-flight set drain() waits for.
  void drain();

  time::ClockSource& clock() { return clock_; }

  struct Stats {
    Counter sent;
    Counter delivered;
    Counter dropped;
    Counter recoveries;  // recover() calls that revived a crashed site
  };
  const Stats& stats() const { return stats_; }

 private:
  struct InFlight {
    Clock::time_point deliver_at;
    std::uint64_t seq;  // FIFO tiebreak for equal deadlines
    Packet packet;
    bool operator>(const InFlight& o) const {
      return std::tie(deliver_at, seq) > std::tie(o.deliver_at, o.seq);
    }
  };
  // The in-flight set is sharded into per-destination lanes, merged
  // through a small heap of lane heads (see the field comments below).
  struct Lane {
    std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>> q;
  };
  /// A (possibly stale) claim that lane `dest`'s head is packet
  /// (deliver_at, seq). Stale claims are discarded lazily on inspection.
  struct HeadRef {
    Clock::time_point deliver_at;
    std::uint64_t seq;
    std::size_t dest;
    bool operator>(const HeadRef& o) const {
      return std::tie(deliver_at, seq) > std::tie(o.deliver_at, o.seq);
    }
  };

  void delivery_loop();
  const LinkOptions& link_for(SiteId from, SiteId to) const;
  /// Enqueue into the destination lane; returns true iff the packet became
  /// the new global earliest (the delivery loop must re-evaluate).
  bool push_packet(InFlight item);
  /// Drop stale HeadRefs until the top claim matches its lane's real head.
  void prune_heads();
  /// Pruned earliest deadline across all lanes (max() when empty).
  Clock::time_point earliest_deadline();

  time::ClockSource& clock_;
  LinkOptions defaults_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  Rng rng_;
  std::vector<DeliveryFn> sites_;
  std::unordered_set<std::uint64_t> partitioned_;  // packed (a,b) pairs
  std::unordered_map<std::uint64_t, LinkOptions> links_;
  std::unordered_set<SiteId> crashed_;
  // Sharded in-flight set. One priority queue per destination keeps each
  // push O(log lane) instead of O(log total), and — since a site's traffic
  // is mostly FIFO (same link latency, later send time) — most pushes touch
  // only their lane: a HeadRef enters the merge heap only when a packet
  // becomes its lane's new head. heads_ may hold stale or duplicate claims
  // (bounded: at most one per head change); readers lazily discard any
  // claim that no longer matches its lane's top. Global delivery order is
  // still exactly (deliver_at, seq) — the merge of per-lane minima — so
  // seeded replays are byte-identical to the unsharded queue's.
  std::vector<Lane> lanes_;  // indexed by destination site
  std::priority_queue<HeadRef, std::vector<HeadRef>, std::greater<>> heads_;
  std::size_t in_flight_count_ = 0;
  SiteId delivering_;  // site whose callback is currently running
  std::uint64_t next_seq_ = 0;
  bool shutdown_ = false;
  Stats stats_;
  time::WorkerHandle worker_;  // registered before the thread starts
  std::thread delivery_thread_;
};

}  // namespace samoa::net
