#include "net/codec.hpp"

namespace samoa::net {

namespace {

using namespace samoa::gc;

enum class Tag : std::uint8_t {
  kRcData = 1,
  kRcAck = 2,
  kFdHeartbeat = 3,
  kCsPrepare = 4,
  kCsPromise = 5,
  kCsAccept = 6,
  kCsAccepted = 7,
  kCsDecide = 8,
  kViewInstall = 9,
  kSwimPing = 10,
  kSwimAck = 11,
  kSwimPingReq = 12,
};

void put_app_message(ByteWriter& w, const AppMessage& m) {
  w.put_varint(m.id);
  w.put_string(m.data);
  w.put_bool(m.atomic);
}

AppMessage get_app_message(ByteReader& r) {
  AppMessage m;
  m.id = r.get_varint();
  m.data = r.get_string();
  m.atomic = r.get_bool();
  return m;
}

void put_value(ByteWriter& w, const ConsensusValue& v) {
  w.put_varint(v.size());
  for (const auto& m : v) put_app_message(w, m);
}

ConsensusValue get_value(ByteReader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) {
    // Each AppMessage takes at least 3 bytes; a length beyond the buffer
    // is certainly malformed — reject before allocating.
    throw CodecError("consensus value length exceeds payload");
  }
  ConsensusValue v;
  v.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) v.push_back(get_app_message(r));
  return v;
}

void put_swim_updates(ByteWriter& w, const std::vector<SwimUpdate>& updates) {
  w.put_varint(updates.size());
  for (const auto& u : updates) {
    w.put_u8(static_cast<std::uint8_t>(u.status));
    w.put_varint(u.site.value());
    w.put_varint(u.incarnation);
  }
}

std::vector<SwimUpdate> get_swim_updates(ByteReader& r) {
  const auto n = r.get_varint();
  if (n > r.remaining()) {
    // Each update takes at least 3 bytes; a longer count is malformed.
    throw CodecError("swim update count exceeds payload");
  }
  std::vector<SwimUpdate> updates;
  updates.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    SwimUpdate u;
    const auto status = r.get_u8();
    if (status > 2) throw CodecError("bad swim status " + std::to_string(status));
    u.status = static_cast<SwimStatus>(status);
    u.site = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
    u.incarnation = r.get_varint();
    updates.push_back(u);
  }
  return updates;
}

}  // namespace

void ByteWriter::put_varint(std::uint64_t v) {
  while (v >= 0x80) {
    bytes_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::put_string(const std::string& s) {
  put_varint(s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

std::uint8_t ByteReader::get_u8() {
  if (pos_ >= bytes_.size()) throw CodecError("truncated input: u8");
  return bytes_[pos_++];
}

std::uint64_t ByteReader::get_varint() {
  std::uint64_t value = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw CodecError("malformed varint: too long");
    const std::uint8_t byte = get_u8();
    value |= static_cast<std::uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) return value;
    shift += 7;
  }
}

std::string ByteReader::get_string() {
  const auto n = get_varint();
  if (n > remaining()) throw CodecError("truncated input: string");
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                static_cast<std::size_t>(n));
  pos_ += static_cast<std::size_t>(n);
  return s;
}

std::vector<std::uint8_t> encode_wire(SiteId from, const gc::Wire& wire) {
  using namespace samoa::gc;
  ByteWriter w;
  w.put_varint(from.value());
  std::visit(
      [&](const auto& msg) {
        using T = std::decay_t<decltype(msg)>;
        if constexpr (std::is_same_v<T, RcData>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kRcData));
          w.put_varint(msg.seq);
          put_app_message(w, msg.body);
        } else if constexpr (std::is_same_v<T, RcAck>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kRcAck));
          w.put_varint(msg.seq);
        } else if constexpr (std::is_same_v<T, FdHeartbeat>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kFdHeartbeat));
          w.put_varint(msg.epoch);
        } else if constexpr (std::is_same_v<T, CsPrepare>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kCsPrepare));
          w.put_varint(msg.instance);
          w.put_varint(msg.round);
        } else if constexpr (std::is_same_v<T, CsPromise>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kCsPromise));
          w.put_varint(msg.instance);
          w.put_varint(msg.round);
          w.put_varint(msg.accepted_round);
          w.put_bool(msg.accepted_value.has_value());
          if (msg.accepted_value) put_value(w, *msg.accepted_value);
        } else if constexpr (std::is_same_v<T, CsAccept>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kCsAccept));
          w.put_varint(msg.instance);
          w.put_varint(msg.round);
          put_value(w, msg.value);
        } else if constexpr (std::is_same_v<T, CsAccepted>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kCsAccepted));
          w.put_varint(msg.instance);
          w.put_varint(msg.round);
        } else if constexpr (std::is_same_v<T, CsDecide>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kCsDecide));
          w.put_varint(msg.instance);
          put_value(w, msg.value);
        } else if constexpr (std::is_same_v<T, ViewInstall>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kViewInstall));
          w.put_varint(msg.view_id);
          w.put_varint(msg.members.size());
          for (SiteId s : msg.members) w.put_varint(s.value());
          w.put_varint(msg.next_instance);
          w.put_varint(msg.next_seq);
        } else if constexpr (std::is_same_v<T, SwimPing>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kSwimPing));
          w.put_varint(msg.seq);
          put_swim_updates(w, msg.updates);
        } else if constexpr (std::is_same_v<T, SwimAck>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kSwimAck));
          w.put_varint(msg.seq);
          w.put_varint(msg.on_behalf_of.value());
          put_swim_updates(w, msg.updates);
        } else if constexpr (std::is_same_v<T, SwimPingReq>) {
          w.put_u8(static_cast<std::uint8_t>(Tag::kSwimPingReq));
          w.put_varint(msg.seq);
          w.put_varint(msg.target.value());
          put_swim_updates(w, msg.updates);
        }
      },
      wire);
  return w.take();
}

gc::FromWire decode_wire(const std::vector<std::uint8_t>& bytes) {
  using namespace samoa::gc;
  ByteReader r(bytes);
  FromWire fw;
  fw.from = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
  const auto tag = static_cast<Tag>(r.get_u8());
  switch (tag) {
    case Tag::kRcData: {
      RcData m;
      m.seq = r.get_varint();
      m.body = get_app_message(r);
      fw.wire = m;
      break;
    }
    case Tag::kRcAck: {
      RcAck m;
      m.seq = r.get_varint();
      fw.wire = m;
      break;
    }
    case Tag::kFdHeartbeat: {
      FdHeartbeat m;
      m.epoch = r.get_varint();
      fw.wire = m;
      break;
    }
    case Tag::kCsPrepare: {
      CsPrepare m;
      m.instance = r.get_varint();
      m.round = r.get_varint();
      fw.wire = m;
      break;
    }
    case Tag::kCsPromise: {
      CsPromise m;
      m.instance = r.get_varint();
      m.round = r.get_varint();
      m.accepted_round = r.get_varint();
      if (r.get_bool()) m.accepted_value = get_value(r);
      fw.wire = m;
      break;
    }
    case Tag::kCsAccept: {
      CsAccept m;
      m.instance = r.get_varint();
      m.round = r.get_varint();
      m.value = get_value(r);
      fw.wire = m;
      break;
    }
    case Tag::kCsAccepted: {
      CsAccepted m;
      m.instance = r.get_varint();
      m.round = r.get_varint();
      fw.wire = m;
      break;
    }
    case Tag::kCsDecide: {
      CsDecide m;
      m.instance = r.get_varint();
      m.value = get_value(r);
      fw.wire = m;
      break;
    }
    case Tag::kViewInstall: {
      ViewInstall m;
      m.view_id = r.get_varint();
      const auto n = r.get_varint();
      if (n > r.remaining() + 1) throw CodecError("view member count exceeds payload");
      for (std::uint64_t i = 0; i < n; ++i) {
        m.members.push_back(SiteId(static_cast<SiteId::value_type>(r.get_varint())));
      }
      m.next_instance = r.get_varint();
      m.next_seq = r.get_varint();
      fw.wire = m;
      break;
    }
    case Tag::kSwimPing: {
      SwimPing m;
      m.seq = r.get_varint();
      m.updates = get_swim_updates(r);
      fw.wire = m;
      break;
    }
    case Tag::kSwimAck: {
      SwimAck m;
      m.seq = r.get_varint();
      m.on_behalf_of = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
      m.updates = get_swim_updates(r);
      fw.wire = m;
      break;
    }
    case Tag::kSwimPingReq: {
      SwimPingReq m;
      m.seq = r.get_varint();
      m.target = SiteId(static_cast<SiteId::value_type>(r.get_varint()));
      m.updates = get_swim_updates(r);
      fw.wire = m;
      break;
    }
    default:
      throw CodecError("unknown wire tag " + std::to_string(static_cast<int>(tag)));
  }
  if (!r.exhausted()) throw CodecError("trailing bytes after wire message");
  return fw;
}

}  // namespace samoa::net
