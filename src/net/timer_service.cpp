#include "net/timer_service.hpp"

#include <vector>

namespace samoa::net {

TimerService::TimerService() : thread_([this] { loop(); }) {}

TimerService::~TimerService() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  thread_.join();
}

TimerId TimerService::schedule(std::chrono::microseconds delay, std::function<void()> fn) {
  std::unique_lock lock(mu_);
  const TimerId id = next_id_++;
  queue_.emplace(Clock::now() + delay, Entry{id, std::chrono::microseconds{0}, std::move(fn)});
  cv_.notify_all();
  return id;
}

TimerId TimerService::schedule_periodic(std::chrono::microseconds interval,
                                        std::function<void()> fn) {
  std::unique_lock lock(mu_);
  const TimerId id = next_id_++;
  queue_.emplace(Clock::now() + interval, Entry{id, interval, std::move(fn)});
  cv_.notify_all();
  return id;
}

bool TimerService::cancel(TimerId id) {
  std::unique_lock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.id == id) {
      queue_.erase(it);
      return true;
    }
  }
  return false;
}

void TimerService::cancel_all() {
  std::unique_lock lock(mu_);
  queue_.clear();
}

void TimerService::loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (queue_.empty()) {
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      continue;
    }
    const auto deadline = queue_.begin()->first;
    if (Clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
      continue;  // re-check: earlier timer / cancellation / shutdown
    }
    Entry entry = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    if (entry.interval.count() > 0) {
      // Re-arm before running so cancel() from inside the callback still
      // finds the periodic entry... except it cannot: the callback runs
      // unlocked. Re-arm after the run instead, checking shutdown.
    }
    lock.unlock();
    entry.fn();
    fired_.add();
    lock.lock();
    if (entry.interval.count() > 0 && !shutdown_) {
      queue_.emplace(Clock::now() + entry.interval, std::move(entry));
    }
  }
}

}  // namespace samoa::net
