#include "net/timer_service.hpp"

#include <vector>

namespace samoa::net {

TimerService::TimerService(time::ClockSource* clock)
    : clock_(clock != nullptr ? *clock : time::wall_clock()),
      worker_(clock_),
      thread_([this] { loop(); }) {}

TimerService::~TimerService() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  thread_.join();
}

TimerId TimerService::schedule(std::chrono::microseconds delay, std::function<void()> fn) {
  TimerId id;
  {
    std::unique_lock lock(mu_);
    id = next_id_++;
    queue_.emplace(clock_.now() + delay, Entry{id, std::chrono::microseconds{0}, std::move(fn)});
    cv_.notify_all();
  }
  // interrupt() must run with mu_ released: the scheduler's wake path locks
  // the parked loop's mutex — this mu_ — to deliver the notify.
  clock_.interrupt();
  return id;
}

TimerId TimerService::schedule_periodic(std::chrono::microseconds interval,
                                        std::function<void()> fn) {
  TimerId id;
  {
    std::unique_lock lock(mu_);
    id = next_id_++;
    queue_.emplace(clock_.now() + interval, Entry{id, interval, std::move(fn)});
    cv_.notify_all();
  }
  clock_.interrupt();
  return id;
}

bool TimerService::cancel(TimerId id) {
  std::unique_lock lock(mu_);
  for (auto it = queue_.begin(); it != queue_.end(); ++it) {
    if (it->second.id == id) {
      queue_.erase(it);
      return true;
    }
  }
  // Not queued — it may be mid-callback. A periodic timer would otherwise
  // re-arm after the callback returns, losing the cancellation; flag it so
  // loop() suppresses the re-arm. A one-shot mid-callback keeps the
  // "already fired" contract and reports false.
  if (id != 0 && id == running_id_ && running_interval_.count() > 0) {
    running_cancelled_ = true;
    return true;
  }
  return false;
}

void TimerService::cancel_all() {
  std::unique_lock lock(mu_);
  queue_.clear();
  // Also stop any periodic timer currently mid-callback from re-arming.
  running_cancelled_ = true;
}

void TimerService::loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (queue_.empty()) {
      clock_.wait(worker_.id(), lock, cv_, [this] { return shutdown_ || !queue_.empty(); });
      continue;
    }
    const auto deadline = queue_.begin()->first;
    if (clock_.now() < deadline) {
      // Re-check on wake: an earlier timer, a cancellation of the head, or
      // shutdown may have invalidated the registered deadline.
      clock_.wait_until(worker_.id(), lock, cv_, deadline, [this, deadline] {
        return shutdown_ || queue_.empty() || queue_.begin()->first != deadline;
      });
      continue;
    }
    Entry entry = std::move(queue_.begin()->second);
    queue_.erase(queue_.begin());
    running_id_ = entry.id;
    running_interval_ = entry.interval;
    running_cancelled_ = false;
    lock.unlock();
    clock_.begin_dispatch(worker_.id(), deadline);
    // Count before invoking: a callback that signals completion must not
    // be observable before the fire it belongs to.
    fired_.add();
    entry.fn();
    clock_.end_dispatch();
    lock.lock();
    if (entry.interval.count() > 0 && !shutdown_ && !running_cancelled_) {
      queue_.emplace(clock_.now() + entry.interval, std::move(entry));
    }
    running_id_ = 0;
  }
}

}  // namespace samoa::net
