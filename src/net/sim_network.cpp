#include "net/sim_network.hpp"

namespace samoa::net {

namespace {
std::uint64_t pack_pair(SiteId a, SiteId b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}
}  // namespace

SimNetwork::SimNetwork(LinkOptions defaults, std::uint64_t seed)
    : defaults_(defaults), rng_(seed), delivery_thread_([this] { delivery_loop(); }) {}

SimNetwork::~SimNetwork() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  delivery_thread_.join();
}

SiteId SimNetwork::add_site(DeliveryFn deliver) {
  std::unique_lock lock(mu_);
  sites_.push_back(std::move(deliver));
  return SiteId(static_cast<SiteId::value_type>(sites_.size() - 1));
}

const LinkOptions& SimNetwork::link_for(SiteId from, SiteId to) const {
  auto it = links_.find(pack_pair(from, to));
  return it == links_.end() ? defaults_ : it->second;
}

void SimNetwork::send(SiteId from, SiteId to, Message payload) {
  std::unique_lock lock(mu_);
  stats_.sent.add();
  const bool unknown = to.value() >= sites_.size();
  const bool blocked = crashed_.contains(from) || crashed_.contains(to) ||
                       partitioned_.contains(pack_pair(from, to));
  const LinkOptions& link = link_for(from, to);
  if (unknown || blocked || rng_.chance(link.drop_probability)) {
    stats_.dropped.add();
    return;
  }
  auto latency = link.base_latency;
  if (link.jitter.count() > 0) {
    latency += std::chrono::microseconds(
        rng_.next_below(static_cast<std::uint64_t>(link.jitter.count()) + 1));
  }
  in_flight_.push(InFlight{Clock::now() + latency, next_seq_++, Packet{from, to, std::move(payload)}});
  cv_.notify_all();
}

void SimNetwork::set_link(SiteId from, SiteId to, LinkOptions opts) {
  std::unique_lock lock(mu_);
  links_[pack_pair(from, to)] = opts;
}

void SimNetwork::set_partitioned(SiteId a, SiteId b, bool partitioned) {
  std::unique_lock lock(mu_);
  if (partitioned) {
    partitioned_.insert(pack_pair(a, b));
    partitioned_.insert(pack_pair(b, a));
  } else {
    partitioned_.erase(pack_pair(a, b));
    partitioned_.erase(pack_pair(b, a));
  }
}

void SimNetwork::crash(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
}

bool SimNetwork::crashed(SiteId site) const {
  std::unique_lock lock(mu_);
  return crashed_.contains(site);
}

void SimNetwork::detach(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
  cv_.wait(lock, [&] { return delivering_ != site; });
  if (site.value() < sites_.size()) sites_[site.value()] = nullptr;
}

void SimNetwork::drain() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return in_flight_.empty(); });
}

void SimNetwork::delivery_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (in_flight_.empty()) {
      cv_.wait(lock, [this] { return shutdown_ || !in_flight_.empty(); });
      continue;
    }
    const auto deadline = in_flight_.top().deliver_at;
    if (Clock::now() < deadline) {
      cv_.wait_until(lock, deadline);
      continue;  // re-check: new earlier packet or shutdown may have arrived
    }
    InFlight item = in_flight_.top();
    in_flight_.pop();
    // Late crash check: packets in flight to a site that crashed meanwhile
    // are lost (the site is gone).
    const bool lost =
        crashed_.contains(item.packet.to) || sites_[item.packet.to.value()] == nullptr;
    if (lost) {
      stats_.dropped.add();
      if (in_flight_.empty()) cv_.notify_all();
      continue;
    }
    DeliveryFn deliver = sites_[item.packet.to.value()];
    delivering_ = item.packet.to;
    lock.unlock();
    deliver(item.packet);
    lock.lock();
    delivering_ = SiteId{};
    stats_.delivered.add();
    cv_.notify_all();
  }
}

}  // namespace samoa::net
