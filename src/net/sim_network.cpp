#include "net/sim_network.hpp"

#include <algorithm>
#include <string>

namespace samoa::net {

namespace {
std::uint64_t pack_pair(SiteId a, SiteId b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}

long event_us(Clock::time_point at) {
  return static_cast<long>(
      std::chrono::duration_cast<std::chrono::microseconds>(at.time_since_epoch()).count());
}

constexpr std::size_t kNoControl = static_cast<std::size_t>(-1);
}  // namespace

SimNetwork::SimNetwork(LinkOptions defaults, std::uint64_t seed, time::ClockSource* clock)
    : clock_(clock != nullptr ? *clock : time::wall_clock()),
      defaults_(defaults),
      rng_(seed),
      worker_(clock_),
      delivery_thread_([this] { delivery_loop(); }) {}

SimNetwork::~SimNetwork() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  delivery_thread_.join();
  // worker_ deregisters from the clock after the join, so the scheduler
  // never waits on a thread that is gone.
}

SiteId SimNetwork::add_site(DeliveryFn deliver) {
  std::unique_lock lock(mu_);
  sites_.push_back(std::move(deliver));
  lanes_.emplace_back();
  return SiteId(static_cast<SiteId::value_type>(sites_.size() - 1));
}

bool SimNetwork::push_packet(InFlight item) {
  Lane& lane = lanes_[item.packet.to.value()];
  const bool new_lane_head =
      lane.q.empty() || std::tie(item.deliver_at, item.seq) <
                            std::tie(lane.q.top().deliver_at, lane.q.top().seq);
  const HeadRef ref{item.deliver_at, item.seq, item.packet.to.value()};
  lane.q.push(std::move(item));
  ++in_flight_count_;
  if (!new_lane_head) return false;  // lane head unchanged: its claim stands
  // Prune before comparing: a stale top claim (for an already-delivered
  // packet) sorts below every live one and would mask a genuinely new
  // global earliest — a missed wakeup for the delivery loop.
  prune_heads();
  const bool new_global_head = heads_.empty() || heads_.top() > ref;
  heads_.push(ref);
  return new_global_head;
}

void SimNetwork::prune_heads() {
  while (!heads_.empty()) {
    const HeadRef& top = heads_.top();
    const Lane& lane = lanes_[top.dest];
    if (!lane.q.empty() && lane.q.top().deliver_at == top.deliver_at &&
        lane.q.top().seq == top.seq) {
      return;
    }
    heads_.pop();
  }
}

Clock::time_point SimNetwork::earliest_deadline() {
  prune_heads();
  return heads_.empty() ? Clock::time_point::max() : heads_.top().deliver_at;
}

std::size_t SimNetwork::earliest_control() const {
  std::size_t best = kNoControl;
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    if (best == kNoControl || std::tie(controls_[i].at, controls_[i].seq) <
                                  std::tie(controls_[best].at, controls_[best].seq)) {
      best = i;
    }
  }
  return best;
}

Clock::time_point SimNetwork::next_deadline() {
  Clock::time_point deadline = earliest_deadline();
  const std::size_t ci = earliest_control();
  if (ci != kNoControl && controls_[ci].at < deadline) deadline = controls_[ci].at;
  return deadline;
}

void SimNetwork::set_delivery_hook(DeliveryHook* hook) {
  std::unique_lock lock(mu_);
  hook_ = hook;
}

void SimNetwork::schedule_control(std::chrono::microseconds delay, std::string label,
                                  std::function<void()> fn) {
  std::unique_lock lock(mu_);
  controls_.push_back(ControlEvent{clock_.now() + delay, next_seq_++, next_control_key_++,
                                   std::move(label), std::move(fn)});
  cv_.notify_all();
  lock.unlock();
  // interrupt() with mu_ released, for the same lock-order reason as send().
  clock_.interrupt();
}

void SimNetwork::cancel_controls() {
  std::unique_lock lock(mu_);
  controls_.clear();
  cv_.notify_all();
}

void SimNetwork::enable_event_log(bool store_lines) {
  std::unique_lock lock(mu_);
  log_events_ = true;
  log_store_ = store_lines;
}

std::vector<std::string> SimNetwork::event_log() const {
  std::unique_lock lock(mu_);
  return event_log_;
}

std::uint64_t SimNetwork::event_hash() const {
  std::unique_lock lock(mu_);
  return event_hash_;
}

void SimNetwork::note_event(const std::string& line) {
  if (!log_events_) return;
  for (const unsigned char c : line) {
    event_hash_ ^= c;
    event_hash_ *= 1099511628211ull;
  }
  event_hash_ ^= static_cast<unsigned char>('\n');
  event_hash_ *= 1099511628211ull;
  if (log_store_) event_log_.push_back(line);
}

const LinkOptions& SimNetwork::link_for(SiteId from, SiteId to) const {
  auto it = links_.find(pack_pair(from, to));
  return it == links_.end() ? defaults_ : it->second;
}

void SimNetwork::send(SiteId from, SiteId to, Message payload) {
  std::unique_lock lock(mu_);
  stats_.sent.add();
  const bool unknown = to.value() >= sites_.size();
  const bool blocked = crashed_.contains(from) || crashed_.contains(to) ||
                       partitioned_.contains(pack_pair(from, to));
  const LinkOptions& link = link_for(from, to);
  // RNG stream contract: every send consumes the draws its link options
  // call for (one Bernoulli draw for loss, one bounded draw for jitter),
  // whether or not the packet is discarded for an unknown destination,
  // crash or partition. The stream is then a pure function of (seed, link
  // options, send sequence) and replays stay aligned across fault states.
  const bool chance_drop = rng_.chance(link.drop_probability);
  auto latency = link.base_latency;
  if (link.jitter.count() > 0) {
    latency += std::chrono::microseconds(
        rng_.next_below(static_cast<std::uint64_t>(link.jitter.count()) + 1));
  }
  if (unknown || blocked || chance_drop) {
    stats_.dropped.add();
    return;
  }
  const bool new_earliest = push_packet(
      InFlight{clock_.now() + latency, next_seq_++, Packet{from, to, std::move(payload)}});
  // The delivery loop only needs to re-evaluate when the global earliest
  // changed; a packet queued behind others in its lane can't affect the
  // registered deadline. Skipping the notify keeps broadcast storms from
  // hammering the loop's condition variable O(packets) times.
  if (new_earliest) cv_.notify_all();
  lock.unlock();
  // interrupt() must run with mu_ released: the scheduler's wake path locks
  // the parked delivery loop's mutex — this mu_ — to deliver the notify.
  clock_.interrupt();
}

void SimNetwork::set_link(SiteId from, SiteId to, LinkOptions opts) {
  std::unique_lock lock(mu_);
  links_[pack_pair(from, to)] = opts;
}

void SimNetwork::set_partitioned(SiteId a, SiteId b, bool partitioned) {
  std::unique_lock lock(mu_);
  if (partitioned) {
    partitioned_.insert(pack_pair(a, b));
    partitioned_.insert(pack_pair(b, a));
  } else {
    partitioned_.erase(pack_pair(a, b));
    partitioned_.erase(pack_pair(b, a));
  }
}

void SimNetwork::set_partitioned_oneway(SiteId from, SiteId to, bool partitioned) {
  std::unique_lock lock(mu_);
  if (partitioned) {
    partitioned_.insert(pack_pair(from, to));
  } else {
    partitioned_.erase(pack_pair(from, to));
  }
}

void SimNetwork::crash(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
}

bool SimNetwork::crashed(SiteId site) const {
  std::unique_lock lock(mu_);
  return crashed_.contains(site);
}

void SimNetwork::recover(SiteId site) {
  std::unique_lock lock(mu_);
  if (crashed_.erase(site) > 0) stats_.recoveries.add();
}

void SimNetwork::attach(SiteId site, DeliveryFn deliver) {
  std::unique_lock lock(mu_);
  if (site.value() >= sites_.size()) return;  // unknown site: ignore
  sites_[site.value()] = std::move(deliver);
}

LinkOptions SimNetwork::defaults() const {
  std::unique_lock lock(mu_);
  return defaults_;
}

void SimNetwork::set_defaults(LinkOptions defaults) {
  std::unique_lock lock(mu_);
  defaults_ = defaults;
}

void SimNetwork::detach(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
  cv_.wait(lock, [&] { return delivering_ != site; });
  if (site.value() < sites_.size()) sites_[site.value()] = nullptr;
}

void SimNetwork::drain() {
  std::unique_lock lock(mu_);
  // A delivery callback runs with mu_ released and may send() new packets
  // before it returns; `delivering_` stays set for its whole execution, so
  // waiting on it closes the window in which the queue looks empty while
  // deliveries are still producing work.
  cv_.wait(lock, [this] { return in_flight_count_ == 0 && !delivering_.valid(); });
}

void SimNetwork::deliver_from_lane(std::unique_lock<std::mutex>& lock, std::size_t lane_ix) {
  Lane& lane = lanes_[lane_ix];
  InFlight item = lane.q.top();
  lane.q.pop();
  --in_flight_count_;
  // Re-claim the lane's next head so the merge invariant (every non-empty
  // lane's head has a live claim) is restored; any claim for the popped
  // head goes stale and is discarded lazily by prune_heads().
  if (!lane.q.empty()) {
    heads_.push(HeadRef{lane.q.top().deliver_at, lane.q.top().seq, lane_ix});
  }
  // Late crash check: packets in flight to a site that crashed meanwhile
  // are lost (the site is gone).
  const bool lost =
      crashed_.contains(item.packet.to) || sites_[item.packet.to.value()] == nullptr;
  if (log_events_) {
    note_event(std::to_string(event_us(item.deliver_at)) + (lost ? " x " : " ") +
               std::to_string(item.packet.from.value()) + ">" +
               std::to_string(item.packet.to.value()) + " #" + std::to_string(item.seq));
  }
  if (lost) {
    stats_.dropped.add();
    if (in_flight_count_ == 0) cv_.notify_all();
    return;
  }
  DeliveryFn deliver = sites_[item.packet.to.value()];
  delivering_ = item.packet.to;
  lock.unlock();
  clock_.begin_dispatch(worker_.id(), item.deliver_at);
  deliver(item.packet);
  clock_.end_dispatch();
  lock.lock();
  delivering_ = SiteId{};
  stats_.delivered.add();
  cv_.notify_all();
}

void SimNetwork::run_control(std::unique_lock<std::mutex>& lock, std::size_t ix) {
  ControlEvent ev = std::move(controls_[ix]);
  controls_.erase(controls_.begin() + static_cast<std::ptrdiff_t>(ix));
  if (log_events_) {
    note_event(std::to_string(event_us(ev.at)) + " ! " + ev.label);
  }
  lock.unlock();
  // The callback runs in its own dispatch turn at the scheduled virtual
  // time, with mu_ released: it may call any SimNetwork mutator.
  clock_.begin_dispatch(worker_.id(), ev.at);
  if (ev.fn) ev.fn();
  clock_.end_dispatch();
  lock.lock();
  cv_.notify_all();
}

void SimNetwork::step_explored(std::unique_lock<std::mutex>& lock) {
  const auto now = clock_.now();
  // Gather every eligible candidate: due lane heads (one per lane — the
  // per-destination FIFO within a lane is not a choice) plus due controls.
  struct Candidate {
    std::uint64_t key;
    bool control;
    std::size_t ix;  // lane index or controls_ index
  };
  struct CandOrder {
    Clock::time_point at;
    std::uint64_t seq;
  };
  std::vector<Candidate> cands;
  std::vector<CandOrder> order;
  for (std::size_t i = 0; i < lanes_.size(); ++i) {
    if (!lanes_[i].q.empty() && lanes_[i].q.top().deliver_at <= now) {
      cands.push_back(Candidate{i, false, i});
      order.push_back(CandOrder{lanes_[i].q.top().deliver_at, lanes_[i].q.top().seq});
    }
  }
  for (std::size_t i = 0; i < controls_.size(); ++i) {
    if (controls_[i].at <= now) {
      cands.push_back(Candidate{DeliveryHook::kControlKeyBase + controls_[i].key, true, i});
      order.push_back(CandOrder{controls_[i].at, controls_[i].seq});
    }
  }
  // The caller established that something is due, so cands is non-empty.
  std::size_t pick = 0;
  if (cands.size() >= 2) {
    // Present candidates in natural (deliver_at, seq) order: index 0 is
    // exactly the default merge choice, so a hook that always picks 0
    // reproduces the unexplored delivery order, and shrinking a violating
    // trace toward all-zeros shrinks toward the natural schedule.
    std::vector<std::size_t> by_time(cands.size());
    for (std::size_t i = 0; i < by_time.size(); ++i) by_time[i] = i;
    std::sort(by_time.begin(), by_time.end(), [&order](std::size_t a, std::size_t b) {
      return std::tie(order[a].at, order[a].seq) < std::tie(order[b].at, order[b].seq);
    });
    std::vector<Candidate> sorted;
    sorted.reserve(cands.size());
    for (std::size_t i : by_time) sorted.push_back(cands[i]);
    cands.swap(sorted);
    std::vector<std::uint64_t> keys;
    keys.reserve(cands.size());
    for (const Candidate& c : cands) keys.push_back(c.key);
    pick = std::min(hook_->choose(keys), cands.size() - 1);
  }
  if (cands[pick].control) {
    run_control(lock, cands[pick].ix);
  } else {
    deliver_from_lane(lock, cands[pick].ix);
  }
}

void SimNetwork::delivery_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (in_flight_count_ == 0 && controls_.empty()) {
      clock_.wait(worker_.id(), lock, cv_,
                  [this] { return shutdown_ || in_flight_count_ > 0 || !controls_.empty(); });
      continue;
    }
    const auto deadline = next_deadline();
    if (clock_.now() < deadline) {
      // Re-check on wake: an earlier packet, a cancellation of the head, or
      // shutdown may have invalidated the registered deadline.
      clock_.wait_until(worker_.id(), lock, cv_, deadline, [this, deadline] {
        return shutdown_ || (in_flight_count_ == 0 && controls_.empty()) ||
               next_deadline() != deadline;
      });
      continue;
    }
    if (hook_ != nullptr) {
      // Exploration: the hook picks among every eligible event.
      step_explored(lock);
      continue;
    }
    // Default order: the strict (deliver_at, seq) merge of lane heads and
    // control events — byte-identical to the pre-seam delivery order (and
    // controls only exist when a driver scheduled them).
    const std::size_t ci = earliest_control();
    if (ci != kNoControl &&
        (heads_.empty() || std::tie(controls_[ci].at, controls_[ci].seq) <
                               std::tie(heads_.top().deliver_at, heads_.top().seq))) {
      run_control(lock, ci);
      continue;
    }
    // earliest_deadline() (via next_deadline) pruned, so the top claim
    // matches its lane's head: pop the claim and deliver from that lane.
    const HeadRef head = heads_.top();
    heads_.pop();
    deliver_from_lane(lock, head.dest);
  }
}

}  // namespace samoa::net
