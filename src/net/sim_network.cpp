#include "net/sim_network.hpp"

namespace samoa::net {

namespace {
std::uint64_t pack_pair(SiteId a, SiteId b) {
  return (static_cast<std::uint64_t>(a.value()) << 32) | b.value();
}
}  // namespace

SimNetwork::SimNetwork(LinkOptions defaults, std::uint64_t seed, time::ClockSource* clock)
    : clock_(clock != nullptr ? *clock : time::wall_clock()),
      defaults_(defaults),
      rng_(seed),
      worker_(clock_),
      delivery_thread_([this] { delivery_loop(); }) {}

SimNetwork::~SimNetwork() {
  {
    std::unique_lock lock(mu_);
    shutdown_ = true;
    cv_.notify_all();
  }
  delivery_thread_.join();
  // worker_ deregisters from the clock after the join, so the scheduler
  // never waits on a thread that is gone.
}

SiteId SimNetwork::add_site(DeliveryFn deliver) {
  std::unique_lock lock(mu_);
  sites_.push_back(std::move(deliver));
  lanes_.emplace_back();
  return SiteId(static_cast<SiteId::value_type>(sites_.size() - 1));
}

bool SimNetwork::push_packet(InFlight item) {
  Lane& lane = lanes_[item.packet.to.value()];
  const bool new_lane_head =
      lane.q.empty() || std::tie(item.deliver_at, item.seq) <
                            std::tie(lane.q.top().deliver_at, lane.q.top().seq);
  const HeadRef ref{item.deliver_at, item.seq, item.packet.to.value()};
  lane.q.push(std::move(item));
  ++in_flight_count_;
  if (!new_lane_head) return false;  // lane head unchanged: its claim stands
  // Prune before comparing: a stale top claim (for an already-delivered
  // packet) sorts below every live one and would mask a genuinely new
  // global earliest — a missed wakeup for the delivery loop.
  prune_heads();
  const bool new_global_head = heads_.empty() || heads_.top() > ref;
  heads_.push(ref);
  return new_global_head;
}

void SimNetwork::prune_heads() {
  while (!heads_.empty()) {
    const HeadRef& top = heads_.top();
    const Lane& lane = lanes_[top.dest];
    if (!lane.q.empty() && lane.q.top().deliver_at == top.deliver_at &&
        lane.q.top().seq == top.seq) {
      return;
    }
    heads_.pop();
  }
}

Clock::time_point SimNetwork::earliest_deadline() {
  prune_heads();
  return heads_.empty() ? Clock::time_point::max() : heads_.top().deliver_at;
}

const LinkOptions& SimNetwork::link_for(SiteId from, SiteId to) const {
  auto it = links_.find(pack_pair(from, to));
  return it == links_.end() ? defaults_ : it->second;
}

void SimNetwork::send(SiteId from, SiteId to, Message payload) {
  std::unique_lock lock(mu_);
  stats_.sent.add();
  const bool unknown = to.value() >= sites_.size();
  const bool blocked = crashed_.contains(from) || crashed_.contains(to) ||
                       partitioned_.contains(pack_pair(from, to));
  const LinkOptions& link = link_for(from, to);
  // RNG stream contract: every send consumes the draws its link options
  // call for (one Bernoulli draw for loss, one bounded draw for jitter),
  // whether or not the packet is discarded for an unknown destination,
  // crash or partition. The stream is then a pure function of (seed, link
  // options, send sequence) and replays stay aligned across fault states.
  const bool chance_drop = rng_.chance(link.drop_probability);
  auto latency = link.base_latency;
  if (link.jitter.count() > 0) {
    latency += std::chrono::microseconds(
        rng_.next_below(static_cast<std::uint64_t>(link.jitter.count()) + 1));
  }
  if (unknown || blocked || chance_drop) {
    stats_.dropped.add();
    return;
  }
  const bool new_earliest = push_packet(
      InFlight{clock_.now() + latency, next_seq_++, Packet{from, to, std::move(payload)}});
  // The delivery loop only needs to re-evaluate when the global earliest
  // changed; a packet queued behind others in its lane can't affect the
  // registered deadline. Skipping the notify keeps broadcast storms from
  // hammering the loop's condition variable O(packets) times.
  if (new_earliest) cv_.notify_all();
  lock.unlock();
  // interrupt() must run with mu_ released: the scheduler's wake path locks
  // the parked delivery loop's mutex — this mu_ — to deliver the notify.
  clock_.interrupt();
}

void SimNetwork::set_link(SiteId from, SiteId to, LinkOptions opts) {
  std::unique_lock lock(mu_);
  links_[pack_pair(from, to)] = opts;
}

void SimNetwork::set_partitioned(SiteId a, SiteId b, bool partitioned) {
  std::unique_lock lock(mu_);
  if (partitioned) {
    partitioned_.insert(pack_pair(a, b));
    partitioned_.insert(pack_pair(b, a));
  } else {
    partitioned_.erase(pack_pair(a, b));
    partitioned_.erase(pack_pair(b, a));
  }
}

void SimNetwork::set_partitioned_oneway(SiteId from, SiteId to, bool partitioned) {
  std::unique_lock lock(mu_);
  if (partitioned) {
    partitioned_.insert(pack_pair(from, to));
  } else {
    partitioned_.erase(pack_pair(from, to));
  }
}

void SimNetwork::crash(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
}

bool SimNetwork::crashed(SiteId site) const {
  std::unique_lock lock(mu_);
  return crashed_.contains(site);
}

void SimNetwork::recover(SiteId site) {
  std::unique_lock lock(mu_);
  if (crashed_.erase(site) > 0) stats_.recoveries.add();
}

void SimNetwork::attach(SiteId site, DeliveryFn deliver) {
  std::unique_lock lock(mu_);
  if (site.value() >= sites_.size()) return;  // unknown site: ignore
  sites_[site.value()] = std::move(deliver);
}

LinkOptions SimNetwork::defaults() const {
  std::unique_lock lock(mu_);
  return defaults_;
}

void SimNetwork::set_defaults(LinkOptions defaults) {
  std::unique_lock lock(mu_);
  defaults_ = defaults;
}

void SimNetwork::detach(SiteId site) {
  std::unique_lock lock(mu_);
  crashed_.insert(site);
  cv_.wait(lock, [&] { return delivering_ != site; });
  if (site.value() < sites_.size()) sites_[site.value()] = nullptr;
}

void SimNetwork::drain() {
  std::unique_lock lock(mu_);
  // A delivery callback runs with mu_ released and may send() new packets
  // before it returns; `delivering_` stays set for its whole execution, so
  // waiting on it closes the window in which the queue looks empty while
  // deliveries are still producing work.
  cv_.wait(lock, [this] { return in_flight_count_ == 0 && !delivering_.valid(); });
}

void SimNetwork::delivery_loop() {
  std::unique_lock lock(mu_);
  for (;;) {
    if (shutdown_) return;
    if (in_flight_count_ == 0) {
      clock_.wait(worker_.id(), lock, cv_,
                  [this] { return shutdown_ || in_flight_count_ > 0; });
      continue;
    }
    const auto deadline = earliest_deadline();
    if (clock_.now() < deadline) {
      // Re-check on wake: an earlier packet, a cancellation of the head, or
      // shutdown may have invalidated the registered deadline.
      clock_.wait_until(worker_.id(), lock, cv_, deadline, [this, deadline] {
        return shutdown_ || in_flight_count_ == 0 || earliest_deadline() != deadline;
      });
      continue;
    }
    // earliest_deadline() pruned, so the top claim matches its lane's head:
    // pop both, then re-claim the lane's next head so the merge invariant
    // (every non-empty lane's head has a live claim) is restored.
    const HeadRef head = heads_.top();
    heads_.pop();
    Lane& lane = lanes_[head.dest];
    InFlight item = lane.q.top();
    lane.q.pop();
    --in_flight_count_;
    if (!lane.q.empty()) {
      heads_.push(HeadRef{lane.q.top().deliver_at, lane.q.top().seq, head.dest});
    }
    // Late crash check: packets in flight to a site that crashed meanwhile
    // are lost (the site is gone).
    const bool lost =
        crashed_.contains(item.packet.to) || sites_[item.packet.to.value()] == nullptr;
    if (lost) {
      stats_.dropped.add();
      if (in_flight_count_ == 0) cv_.notify_all();
      continue;
    }
    DeliveryFn deliver = sites_[item.packet.to.value()];
    delivering_ = item.packet.to;
    lock.unlock();
    clock_.begin_dispatch(worker_.id(), item.deliver_at);
    deliver(item.packet);
    clock_.end_dispatch();
    lock.lock();
    delivering_ = SiteId{};
    stats_.delivered.add();
    cv_.notify_all();
  }
}

}  // namespace samoa::net
