// Virtual-time layer — deterministic simulation substrate.
//
// Every component that sleeps, arms a timeout, or stamps a deadline does so
// through a ClockSource. Two implementations exist:
//
//   * WallClock — the process-global steady clock; waits really block.
//     Behaviour is identical to the pre-clock-injection code. This is what
//     the latency/overhead experiments need (they measure real time).
//
//   * VirtualClock — FoundationDB/TigerBeetle-style deterministic
//     simulation. Time is a number that only moves when every registered
//     worker thread (SimNetwork's delivery loop, each TimerService loop) is
//     parked and no activity pin is held (a pin is held for every in-flight
//     runtime computation). At that quiescent point the scheduler jumps
//     `now()` straight to the earliest armed deadline and wakes exactly one
//     waiter; events therefore execute one at a time, in (deadline,
//     worker-id) order, each running to completion (including the isolated
//     computation it spawned) before the next fires. A test run under
//     VirtualClock burns zero wall-clock time in timers and is bit-for-bit
//     reproducible from its seed.
//
// Protocol for a worker loop (SimNetwork / TimerService follow it):
//
//   1. register via WorkerHandle (constructor, before the thread starts);
//   2. park with wait()/wait_until() while idle, passing a `wake` predicate
//      covering every non-time reason to re-check (shutdown, queue change);
//   3. bracket the execution of a due callback with begin_dispatch()/
//      end_dispatch() — WITHOUT holding the service mutex — so the
//      scheduler can serialize event execution;
//   4. producers call interrupt() after inserting work — and after
//      releasing the service mutex — so stale parked deadlines are
//      re-validated before time advances past them. The scheduler's wake
//      path acquires the target waiter's service mutex, so calling
//      interrupt() (or end_dispatch()) while holding a mutex some waiter
//      parks with would self-deadlock. The window between insert and
//      interrupt is covered by the caller's dispatch turn or activity pin,
//      either of which stalls the scheduler.
//
// The clock must outlive every component registered with it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "util/stats.hpp"

namespace samoa::time {

class ClockSource {
 public:
  virtual ~ClockSource() = default;

  virtual Clock::time_point now() const = 0;
  virtual bool is_virtual() const = 0;

  /// Register / deregister a worker thread that consumes time. Returns a
  /// stable worker id used to order simultaneous events deterministically.
  virtual int add_worker() { return 0; }
  virtual void remove_worker(int worker) { (void)worker; }

  /// Park the calling worker until `wake()` holds (wait) or additionally
  /// until `deadline` is reached (wait_until). May return spuriously; the
  /// caller's loop re-checks its own state. `lock`/`cv` are the caller's
  /// own mutex and condition variable; `wake` must be evaluable under
  /// `lock` and must cover shutdown plus any queue change that invalidates
  /// the registered deadline.
  virtual void wait(int worker, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                    const std::function<bool()>& wake) = 0;
  virtual void wait_until(int worker, std::unique_lock<std::mutex>& lock,
                          std::condition_variable& cv, Clock::time_point deadline,
                          const std::function<bool()>& wake) = 0;

  /// Serialize the execution of one due event (a packet delivery or timer
  /// callback). Under VirtualClock, begin_dispatch blocks until every
  /// other worker is parked or queued behind this dispatch and no activity
  /// pin is held; simultaneous dispatches are granted in (due, worker)
  /// order. Call WITHOUT holding the service mutex. No-ops on WallClock.
  virtual void begin_dispatch(int worker, Clock::time_point due) {
    (void)worker;
    (void)due;
  }
  virtual void end_dispatch() {}

  /// Activity pin: virtual time cannot advance and no event can dispatch
  /// while at least one pin is held. The runtime holds one per in-flight
  /// computation; test harnesses hold one while injecting a workload.
  /// Never wait for simulated progress while holding a pin.
  virtual void pin() {}
  virtual void unpin() {}

  /// Tell the scheduler that armed deadlines may have changed (a packet or
  /// timer was inserted): parked workers re-validate their registered
  /// deadlines before time advances past them. Call WITHOUT holding any
  /// mutex a waiter parks with (the wake path locks it).
  virtual void interrupt() {}
};

/// One step the VirtualClock scheduler could take at a quiescent point:
/// either grant a pending dispatch turn or advance time to an armed
/// deadline and wake its owner. Presented to a WakePolicy whenever more
/// than one candidate of the same tier is runnable.
struct RunnableStep {
  enum class Kind : std::uint8_t {
    kDispatch,  // a begin_dispatch turn request (already-due event)
    kTimer,     // a parked wait_until whose deadline time would jump to
  };
  Kind kind = Kind::kTimer;
  int worker = 0;
  Clock::time_point due{};
};

/// Pluggable choice of which runnable step goes next. The default (no
/// policy installed) is the deterministic minimum by (due, worker); a
/// policy may pick ANY candidate — schedule exploration uses this to
/// perturb event order while staying replayable.
///
/// Contract: `choose` is called with the clock's scheduler mutex held and
/// must not block, re-enter the clock, or have side effects beyond its own
/// bookkeeping. `steps` is sorted by (due, worker) and has >= 2 entries
/// (singleton choices are not decision points); the return value indexes
/// into it and is clamped by the caller. Timer candidates may be chosen
/// out of deadline order: the clock then jumps straight to the chosen
/// deadline, and any bypassed earlier deadline becomes due immediately at
/// the next quiescent point (time never runs backwards).
class WakePolicy {
 public:
  virtual ~WakePolicy() = default;
  virtual std::size_t choose(const std::vector<RunnableStep>& steps) = 0;
};

/// Process-global wall clock (the default everywhere).
ClockSource& wall_clock();

class WallClock final : public ClockSource {
 public:
  Clock::time_point now() const override { return Clock::now(); }
  bool is_virtual() const override { return false; }

  void wait(int, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            const std::function<bool()>& wake) override {
    cv.wait(lock, wake);
  }
  void wait_until(int, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                  Clock::time_point deadline, const std::function<bool()>& wake) override {
    cv.wait_until(lock, deadline, wake);
  }
};

class VirtualClock final : public ClockSource {
 public:
  VirtualClock() = default;

  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  Clock::time_point now() const override;
  bool is_virtual() const override { return true; }

  int add_worker() override;
  void remove_worker(int worker) override;

  void wait(int worker, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            const std::function<bool()>& wake) override;
  void wait_until(int worker, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
                  Clock::time_point deadline, const std::function<bool()>& wake) override;

  void begin_dispatch(int worker, Clock::time_point due) override;
  void end_dispatch() override;

  void pin() override;
  void unpin() override;
  void interrupt() override;

  /// Install (or remove, with nullptr) the step-choice policy. Safe to
  /// call at any quiescent moment; the policy must outlive its
  /// installation. Decisions the policy never sees (single candidate)
  /// stay deterministic by construction.
  void set_wake_policy(WakePolicy* policy);

 private:
  struct Waiter {
    int worker;
    std::mutex* mu;  // the service mutex the waiter blocks with
    std::condition_variable* cv;
    Clock::time_point deadline;
    bool has_deadline;
    std::uint64_t epoch;
    std::atomic<bool> woken{false};
  };
  struct TurnRequest {
    int worker;
    Clock::time_point due;
    bool granted = false;
  };
  /// A wake selected by the scheduler but not yet delivered. Holds the
  /// waiter's service mutex/cv, not the Waiter itself: the waiter may
  /// absorb the wake (via its own predicate) and unwind before the notify
  /// lands; the service's mutex and cv stay valid until remove_worker,
  /// which drains in-flight notifies first.
  struct PendingWake {
    std::mutex* mu;
    std::condition_variable* cv;
  };

  void park(Waiter& w, std::unique_lock<std::mutex>& lock, std::condition_variable& cv,
            const std::function<bool()>& wake);
  /// The scheduler step, run at every quiescence-relevant transition.
  /// Exactly one of: wake stale waiters, grant the earliest pending
  /// dispatch, or advance time to the earliest deadline and wake its
  /// owner. Turn grants are notified inline (turn_cv_ waits on mu_);
  /// waiter wakes are returned for the caller to deliver via flush_wakes
  /// AFTER releasing mu_ — notifying a waiter's cv without holding its
  /// service mutex can land between its predicate check and its block and
  /// be lost (classic lost wakeup), deadlocking the simulation.
  [[nodiscard]] std::vector<PendingWake> step_locked();
  /// Deliver wakes collected by step_locked. Must be called with mu_
  /// released. `held` is the service lock the caller still owns (park), or
  /// null: a wake targeting it is notified directly (safe — we hold the
  /// mutex); for any other target `held` is released first, so no thread
  /// ever holds one service mutex while acquiring another (no lock
  /// cycles). Releasing `held` mid-park is safe because cv.wait
  /// re-evaluates its predicate under the lock before blocking.
  void flush_wakes(std::vector<PendingWake> wakes, std::unique_lock<std::mutex>* held);

  mutable std::mutex mu_;
  std::condition_variable turn_cv_;
  std::condition_variable notify_drain_cv_;
  Clock::time_point now_{};  // virtual epoch: time_point zero
  int workers_ = 0;
  int next_worker_id_ = 0;
  long pins_ = 0;
  std::uint64_t epoch_ = 0;
  int pending_wakes_ = 0;
  int notifies_in_flight_ = 0;
  bool turn_active_ = false;
  WakePolicy* wake_policy_ = nullptr;
  std::vector<Waiter*> parked_;
  std::vector<TurnRequest*> turn_requests_;
};

/// RAII registration of a worker thread with a clock.
class WorkerHandle {
 public:
  explicit WorkerHandle(ClockSource& clock) : clock_(&clock), id_(clock.add_worker()) {}
  ~WorkerHandle() { clock_->remove_worker(id_); }

  WorkerHandle(const WorkerHandle&) = delete;
  WorkerHandle& operator=(const WorkerHandle&) = delete;

  int id() const { return id_; }

 private:
  ClockSource* clock_;
  int id_;
};

/// RAII activity pin; hold while injecting a workload so virtual time
/// stands still until the setup is complete.
class Pin {
 public:
  explicit Pin(ClockSource& clock) : clock_(&clock) { clock_->pin(); }
  ~Pin() { clock_->unpin(); }

  Pin(const Pin&) = delete;
  Pin& operator=(const Pin&) = delete;

 private:
  ClockSource* clock_;
};

}  // namespace samoa::time
