#include "time/clock.hpp"

#include <algorithm>
#include <tuple>

namespace samoa::time {

ClockSource& wall_clock() {
  static WallClock instance;
  return instance;
}

Clock::time_point VirtualClock::now() const {
  std::lock_guard g(mu_);
  return now_;
}

int VirtualClock::add_worker() {
  std::lock_guard g(mu_);
  ++workers_;
  return next_worker_id_++;
}

void VirtualClock::remove_worker(int) {
  std::lock_guard g(mu_);
  --workers_;
  maybe_step_locked();
}

void VirtualClock::pin() {
  std::lock_guard g(mu_);
  ++pins_;
}

void VirtualClock::unpin() {
  std::lock_guard g(mu_);
  if (--pins_ == 0) maybe_step_locked();
}

void VirtualClock::interrupt() {
  std::lock_guard g(mu_);
  ++epoch_;
  maybe_step_locked();
}

void VirtualClock::park(Waiter& w, std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, const std::function<bool()>& wake) {
  {
    std::lock_guard g(mu_);
    w.epoch = epoch_;
    parked_.push_back(&w);
    maybe_step_locked();
  }
  // The caller still holds its own mutex here, so a producer that inserts
  // work under that mutex cannot notify before this wait is armed; the
  // clock's own wake (set under mu_ before the notify) is covered by the
  // `woken` flag in the predicate.
  cv.wait(lock, [&] { return w.woken.load(std::memory_order_acquire) || wake(); });
  {
    std::lock_guard g(mu_);
    std::erase(parked_, &w);
    if (w.woken.load(std::memory_order_relaxed)) --pending_wakes_;
  }
}

void VirtualClock::wait(int worker, std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, const std::function<bool()>& wake) {
  Waiter w{worker, &cv, Clock::time_point{}, /*has_deadline=*/false, 0};
  park(w, lock, cv, wake);
}

void VirtualClock::wait_until(int worker, std::unique_lock<std::mutex>& lock,
                              std::condition_variable& cv, Clock::time_point deadline,
                              const std::function<bool()>& wake) {
  {
    std::lock_guard g(mu_);
    if (now_ >= deadline) return;  // already due — caller re-checks its queue
  }
  Waiter w{worker, &cv, deadline, /*has_deadline=*/true, 0};
  park(w, lock, cv, wake);
}

void VirtualClock::begin_dispatch(int worker, Clock::time_point due) {
  TurnRequest req{worker, due};
  std::unique_lock g(mu_);
  turn_requests_.push_back(&req);
  maybe_step_locked();
  turn_cv_.wait(g, [&] { return req.granted; });
  std::erase(turn_requests_, &req);
}

void VirtualClock::end_dispatch() {
  std::lock_guard g(mu_);
  turn_active_ = false;
  maybe_step_locked();
}

void VirtualClock::maybe_step_locked() {
  // Quiescence: no event executing (turn or pin), no wake still being
  // absorbed, and every registered worker either parked or queued for a
  // dispatch turn. Anything else means a thread is still computing and may
  // yet insert earlier events.
  if (pins_ > 0 || turn_active_ || pending_wakes_ > 0) return;
  if (workers_ == 0) return;
  if (static_cast<int>(parked_.size() + turn_requests_.size()) < workers_) return;

  // Re-validate stale registrations first: a producer inserted work since
  // these waiters parked, so their registered deadlines may overshoot the
  // true next event. Wake them; they re-check their queues and re-park.
  bool woke_stale = false;
  for (Waiter* w : parked_) {
    if (w->epoch != epoch_ && !w->woken.load(std::memory_order_relaxed)) {
      w->woken.store(true, std::memory_order_release);
      ++pending_wakes_;
      w->cv->notify_all();
      woke_stale = true;
    }
  }
  if (woke_stale) return;

  // Grant the earliest pending dispatch (already-due event).
  if (!turn_requests_.empty()) {
    TurnRequest* best = turn_requests_.front();
    for (TurnRequest* r : turn_requests_) {
      if (std::tie(r->due, r->worker) < std::tie(best->due, best->worker)) best = r;
    }
    best->granted = true;
    turn_active_ = true;
    turn_cv_.notify_all();
    return;
  }

  // Everyone idle: jump time to the earliest armed deadline and wake that
  // waiter (exactly one — ties resolve by worker id, and the runner-up is
  // woken by a later step once this event ran to completion).
  Waiter* best = nullptr;
  for (Waiter* w : parked_) {
    if (!w->has_deadline) continue;
    if (best == nullptr ||
        std::tie(w->deadline, w->worker) < std::tie(best->deadline, best->worker)) {
      best = w;
    }
  }
  if (best == nullptr) return;  // fully idle: nothing armed, time stands still
  if (best->deadline > now_) now_ = best->deadline;
  best->woken.store(true, std::memory_order_release);
  ++pending_wakes_;
  best->cv->notify_all();
}

}  // namespace samoa::time
