#include "time/clock.hpp"

#include <algorithm>
#include <cassert>
#include <tuple>

namespace samoa::time {

ClockSource& wall_clock() {
  static WallClock instance;
  return instance;
}

Clock::time_point VirtualClock::now() const {
  std::lock_guard g(mu_);
  return now_;
}

int VirtualClock::add_worker() {
  std::lock_guard g(mu_);
  ++workers_;
  return next_worker_id_++;
}

void VirtualClock::remove_worker(int worker) {
  std::vector<PendingWake> wakes;
  {
    std::unique_lock g(mu_);
    // An in-flight notify still dereferences some waiter's service
    // mutex/cv; once this worker deregisters its service may be destroyed,
    // so drain them before letting the caller proceed.
    notify_drain_cv_.wait(g, [this] { return notifies_in_flight_ == 0; });
    // Callers must join the worker thread before WorkerHandle destruction,
    // so nothing of this worker can still be parked or queued for a turn.
    for ([[maybe_unused]] const Waiter* w : parked_) assert(w->worker != worker);
    for ([[maybe_unused]] const TurnRequest* r : turn_requests_) assert(r->worker != worker);
    --workers_;
    wakes = step_locked();
  }
  flush_wakes(std::move(wakes), nullptr);
}

void VirtualClock::pin() {
  std::lock_guard g(mu_);
  ++pins_;
}

void VirtualClock::set_wake_policy(WakePolicy* policy) {
  std::lock_guard g(mu_);
  wake_policy_ = policy;
}

void VirtualClock::unpin() {
  std::vector<PendingWake> wakes;
  {
    std::lock_guard g(mu_);
    if (--pins_ != 0) return;
    wakes = step_locked();
  }
  flush_wakes(std::move(wakes), nullptr);
}

void VirtualClock::interrupt() {
  std::vector<PendingWake> wakes;
  {
    std::lock_guard g(mu_);
    ++epoch_;
    wakes = step_locked();
  }
  flush_wakes(std::move(wakes), nullptr);
}

void VirtualClock::park(Waiter& w, std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, const std::function<bool()>& wake) {
  std::vector<PendingWake> wakes;
  {
    std::lock_guard g(mu_);
    w.epoch = epoch_;
    parked_.push_back(&w);
    wakes = step_locked();
  }
  // The step may have selected wakes (possibly our own waiter). Deliver
  // them before blocking; flush_wakes may briefly release `lock`, which is
  // fine because the wait below re-evaluates its predicate first. A wake
  // aimed at us is then seen via `woken` on that first evaluation.
  flush_wakes(std::move(wakes), &lock);
  cv.wait(lock, [&] { return w.woken.load(std::memory_order_acquire) || wake(); });
  {
    std::lock_guard g(mu_);
    std::erase(parked_, &w);
    if (w.woken.load(std::memory_order_relaxed)) --pending_wakes_;
  }
}

void VirtualClock::wait(int worker, std::unique_lock<std::mutex>& lock,
                        std::condition_variable& cv, const std::function<bool()>& wake) {
  Waiter w{worker, lock.mutex(), &cv, Clock::time_point{}, /*has_deadline=*/false, 0};
  park(w, lock, cv, wake);
}

void VirtualClock::wait_until(int worker, std::unique_lock<std::mutex>& lock,
                              std::condition_variable& cv, Clock::time_point deadline,
                              const std::function<bool()>& wake) {
  {
    std::lock_guard g(mu_);
    if (now_ >= deadline) return;  // already due — caller re-checks its queue
  }
  Waiter w{worker, lock.mutex(), &cv, deadline, /*has_deadline=*/true, 0};
  park(w, lock, cv, wake);
}

void VirtualClock::begin_dispatch(int worker, Clock::time_point due) {
  TurnRequest req{worker, due};
  std::unique_lock g(mu_);
  turn_requests_.push_back(&req);
  auto wakes = step_locked();
  if (!wakes.empty()) {
    g.unlock();
    flush_wakes(std::move(wakes), nullptr);
    g.lock();
  }
  turn_cv_.wait(g, [&] { return req.granted; });
  std::erase(turn_requests_, &req);
}

void VirtualClock::end_dispatch() {
  std::vector<PendingWake> wakes;
  {
    std::lock_guard g(mu_);
    turn_active_ = false;
    wakes = step_locked();
  }
  flush_wakes(std::move(wakes), nullptr);
}

std::vector<VirtualClock::PendingWake> VirtualClock::step_locked() {
  std::vector<PendingWake> wakes;
  // Quiescence: no event executing (turn or pin), no wake still being
  // absorbed, and every registered worker either parked or queued for a
  // dispatch turn. Anything else means a thread is still computing and may
  // yet insert earlier events.
  if (pins_ > 0 || turn_active_ || pending_wakes_ > 0) return wakes;
  if (workers_ == 0) return wakes;
  if (static_cast<int>(parked_.size() + turn_requests_.size()) < workers_) return wakes;

  // Re-validate stale registrations first: a producer inserted work since
  // these waiters parked, so their registered deadlines may overshoot the
  // true next event. Wake them; they re-check their queues and re-park.
  for (Waiter* w : parked_) {
    if (w->epoch != epoch_ && !w->woken.load(std::memory_order_relaxed)) {
      w->woken.store(true, std::memory_order_release);
      ++pending_wakes_;
      wakes.push_back({w->mu, w->cv});
    }
  }
  if (!wakes.empty()) {
    notifies_in_flight_ += static_cast<int>(wakes.size());
    return wakes;
  }

  // Grant the earliest pending dispatch (already-due event). The grantee
  // waits on turn_cv_ under mu_ itself, so notifying here is race-free.
  // With a WakePolicy installed and >1 request pending, the policy picks
  // which dispatch goes first instead of the (due, worker) minimum.
  if (!turn_requests_.empty()) {
    TurnRequest* best;
    if (wake_policy_ != nullptr && turn_requests_.size() > 1) {
      std::vector<TurnRequest*> sorted(turn_requests_);
      std::sort(sorted.begin(), sorted.end(), [](const TurnRequest* a, const TurnRequest* b) {
        return std::tie(a->due, a->worker) < std::tie(b->due, b->worker);
      });
      std::vector<RunnableStep> steps;
      steps.reserve(sorted.size());
      for (const TurnRequest* r : sorted) {
        steps.push_back({RunnableStep::Kind::kDispatch, r->worker, r->due});
      }
      best = sorted[std::min(wake_policy_->choose(steps), sorted.size() - 1)];
    } else {
      best = turn_requests_.front();
      for (TurnRequest* r : turn_requests_) {
        if (std::tie(r->due, r->worker) < std::tie(best->due, best->worker)) best = r;
      }
    }
    best->granted = true;
    turn_active_ = true;
    turn_cv_.notify_all();
    return wakes;
  }

  // Everyone idle: jump time to the earliest armed deadline and wake that
  // waiter (exactly one — ties resolve by worker id, and the runner-up is
  // woken by a later step once this event ran to completion). A WakePolicy
  // may instead pick any armed deadline; time jumps to the chosen one
  // (monotonically — never backwards past a bypassed earlier deadline,
  // which simply fires at a later step as an already-due wake).
  Waiter* best = nullptr;
  if (wake_policy_ != nullptr) {
    std::vector<Waiter*> armed;
    for (Waiter* w : parked_) {
      if (w->has_deadline) armed.push_back(w);
    }
    if (armed.size() > 1) {
      std::sort(armed.begin(), armed.end(), [](const Waiter* a, const Waiter* b) {
        return std::tie(a->deadline, a->worker) < std::tie(b->deadline, b->worker);
      });
      std::vector<RunnableStep> steps;
      steps.reserve(armed.size());
      for (const Waiter* w : armed) {
        steps.push_back({RunnableStep::Kind::kTimer, w->worker, w->deadline});
      }
      best = armed[std::min(wake_policy_->choose(steps), armed.size() - 1)];
    } else if (armed.size() == 1) {
      best = armed.front();
    }
  } else {
    for (Waiter* w : parked_) {
      if (!w->has_deadline) continue;
      if (best == nullptr ||
          std::tie(w->deadline, w->worker) < std::tie(best->deadline, best->worker)) {
        best = w;
      }
    }
  }
  if (best == nullptr) return wakes;  // fully idle: nothing armed, time stands still
  if (best->deadline > now_) now_ = best->deadline;
  best->woken.store(true, std::memory_order_release);
  ++pending_wakes_;
  ++notifies_in_flight_;
  wakes.push_back({best->mu, best->cv});
  return wakes;
}

void VirtualClock::flush_wakes(std::vector<PendingWake> wakes,
                               std::unique_lock<std::mutex>* held) {
  if (wakes.empty()) return;
  // A notify is only guaranteed to land if it is issued while holding the
  // waiter's own mutex: the waiter is then either already blocked (the
  // notify wakes it) or has yet to evaluate its predicate under that mutex
  // (and will observe `woken`). Issuing it under mu_ alone can fall into
  // the gap between predicate check and block and be lost forever.
  std::size_t others = 0;
  for (const PendingWake& wk : wakes) {
    if (held != nullptr && wk.mu == held->mutex()) {
      wk.cv->notify_all();  // we already hold this waiter's mutex
    } else {
      ++others;
    }
  }
  if (others > 0) {
    // Never hold one service mutex while acquiring another — that is the
    // only place a lock cycle between services could form. Dropping the
    // caller's lock is safe: park's cv.wait re-checks its predicate.
    if (held != nullptr) held->unlock();
    for (const PendingWake& wk : wakes) {
      if (held != nullptr && wk.mu == held->mutex()) continue;
      std::lock_guard wl(*wk.mu);
      wk.cv->notify_all();
    }
    if (held != nullptr) held->lock();
  }
  std::lock_guard g(mu_);
  notifies_in_flight_ -= static_cast<int>(wakes.size());
  if (notifies_in_flight_ == 0) notify_drain_cv_.notify_all();
}

}  // namespace samoa::time
