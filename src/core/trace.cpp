#include "core/trace.hpp"

#include <algorithm>
#include <sstream>

namespace samoa {

const char* to_string(TracePhase phase) {
  switch (phase) {
    case TracePhase::kIssue:
      return "issue";
    case TracePhase::kStart:
      return "start";
    case TracePhase::kEnd:
      return "end";
    case TracePhase::kSpawn:
      return "spawn";
    case TracePhase::kDone:
      return "done";
    case TracePhase::kAbort:
      return "abort";
  }
  return "?";
}

void TraceRecorder::record(TracePhase phase, ComputationId k, MicroprotocolId mp, HandlerId h,
                           bool read_only) {
  std::unique_lock lock(mu_);
  events_.push_back(TraceEvent{next_seq_++, phase, k, mp, h, read_only});
}

std::vector<TraceEvent> TraceRecorder::snapshot() const {
  std::unique_lock lock(mu_);
  return events_;  // already in seq order: appended under the lock
}

void TraceRecorder::clear() {
  std::unique_lock lock(mu_);
  events_.clear();
  next_seq_ = 0;
}

std::string TraceRecorder::format(const std::vector<TraceEvent>& events) {
  std::ostringstream os;
  os << "(";
  bool first = true;
  for (const auto& e : events) {
    if (e.phase != TracePhase::kStart) continue;
    if (!first) os << ", ";
    first = false;
    os << "(" << e.computation << ", " << e.handler << ")";
  }
  os << ")";
  return os.str();
}

}  // namespace samoa
