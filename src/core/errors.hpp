// Exception hierarchy of samoa-cpp.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace samoa {

/// Base class for all errors raised by the framework.
class SamoaError : public std::runtime_error {
 public:
  explicit SamoaError(const std::string& what) : std::runtime_error(what) {}
};

/// A computation violated its isolation declaration: it tried to call a
/// handler of a microprotocol outside M (VCAbasic), exhausted a declared
/// least upper bound (VCAbound), or followed a route absent from the
/// declared routing pattern (VCAroute). Thrown in the thread that issued
/// the offending event, as specified in Section 4 of the paper.
class IsolationError : public SamoaError {
 public:
  explicit IsolationError(const std::string& what) : SamoaError(what) {}
};

/// Static misconfiguration: unbound event types, bind-after-seal, spec
/// kind incompatible with the runtime's concurrency-control policy, ...
class ConfigError : public SamoaError {
 public:
  explicit ConfigError(const std::string& what) : SamoaError(what) {}
};

/// Payload type mismatch when reading a Message.
class MessageTypeError : public SamoaError {
 public:
  explicit MessageTypeError(const std::string& what) : SamoaError(what) {}
};

/// Internal control-flow signal of the TSO (timestamp-ordering) controller:
/// the computation lost a wait-die conflict and must roll back and restart
/// with a fresh timestamp. It unwinds through handler frames to the
/// runtime's restart loop — handler code must let it pass (do not swallow
/// with catch(...)).
struct RestartNeeded {
  std::uint64_t loser_timestamp = 0;
};

}  // namespace samoa
