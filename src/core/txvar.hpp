// Transactional microprotocol state.
//
// The TSO controller (cc/tso) aborts and restarts computations, so their
// state mutations must be undoable. Microprotocols that want to run under
// TSO keep their state in TxVar<T> cells: every mutation registers an undo
// closure on the owning computation, and a restart rolls the log back in
// reverse order before re-executing the computation from scratch.
//
// Under the (never-aborting) versioning controllers the undo log is
// disabled and TxVar is a zero-surprise wrapper, so the same microprotocol
// code runs under every policy.
#pragma once

#include <utility>

#include "core/computation.hpp"
#include "core/context.hpp"

namespace samoa {

/// A single undoable state cell.
template <typename T>
class TxVar {
 public:
  TxVar() = default;
  explicit TxVar(T initial) : value_(std::move(initial)) {}

  const T& get() const { return value_; }

  /// Mutate through the computation executing `ctx`; registers an undo
  /// entry when the runtime's policy can roll back.
  void set(Context& ctx, T v) {
    record_undo(ctx);
    value_ = std::move(v);
  }

  /// In-place mutation via callable (for containers); same undo contract.
  template <typename Fn>
  void update(Context& ctx, Fn&& fn) {
    record_undo(ctx);
    std::forward<Fn>(fn)(value_);
  }

 private:
  void record_undo(Context& ctx) {
    Computation& comp = ctx.computation();
    if (!comp.undo_enabled()) return;
    comp.undo_log().record([this, old = value_]() mutable { value_ = std::move(old); });
  }

  T value_{};
};

}  // namespace samoa
