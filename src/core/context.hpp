// Context — the API handlers use to communicate.
//
// Every handler invocation (and the root expression of an `isolated`
// spawn) receives a Context bound to its computation. The four trigger
// primitives mirror J-SAMOA's:
//
//   trigger(T, m)            synchronous call of the single handler bound
//                            to T (error if zero or several are bound)
//   trigger_all(T, m)        synchronous calls of all bound handlers, in
//                            binding order
//   async_trigger(T, m)      as trigger, but the handler runs on another
//                            thread of the same computation
//   async_trigger_all(T, m)  as trigger_all, asynchronous
//
// Internal events issued here are causally dependent on the current
// computation; they never escape it. Spawning a *new* computation is the
// runtime's spawn_isolated — only external events do that.
#pragma once

#include <memory>
#include <vector>

#include "core/event.hpp"
#include "util/ids.hpp"

namespace samoa {

class Computation;
class Handler;
class Runtime;
class Stack;

class Context {
 public:
  Context(std::shared_ptr<Computation> comp, HandlerId current);

  void trigger(const EventType& type, Message msg = {});
  void trigger_all(const EventType& type, Message msg = {});
  void async_trigger(const EventType& type, Message msg = {});
  void async_trigger_all(const EventType& type, Message msg = {});

  /// Voluntary scheduling point for the schedule explorer: under an
  /// exploring runtime, hands the interleaving token back and blocks until
  /// re-granted (any other runnable computation may run in between).
  /// Without a StepHook this is a no-op — handler bodies in fuzzable
  /// workloads can sprinkle these freely. `label` names the point in
  /// decision traces.
  void yield_point(const char* label = "");

  Runtime& runtime() const;
  Stack& stack() const;
  Computation& computation() const { return *comp_; }
  ComputationId computation_id() const;
  /// Handler whose body is currently executing; invalid id inside the
  /// root expression of the spawn.
  HandlerId current_handler() const { return current_; }

 private:
  friend class Runtime;

  enum class Fanout { kOne, kAll };
  void dispatch(const EventType& type, const Message& msg, Fanout fanout, bool async);
  /// Batched async fan-out under executor dispatch: one queue node per
  /// target shard instead of one per handler (amortizes the ring CAS and
  /// the consumer wakeup across same-shard handlers).
  void dispatch_batched(class ExecutorGroup& ex, const std::vector<const Handler*>& handlers,
                        const Message& msg);
  void run_handler_now(const Handler& h, const Message& msg);
  void enqueue_handler(const Handler& h, Message msg);

  std::shared_ptr<Computation> comp_;
  HandlerId current_;
};

}  // namespace samoa
