#include "core/stack.hpp"

#include "core/errors.hpp"

namespace samoa {

Microprotocol& Stack::adopt(std::unique_ptr<Microprotocol> mp) {
  if (sealed()) throw ConfigError("Stack::adopt after seal()");
  microprotocols_.push_back(std::move(mp));
  return *microprotocols_.back();
}

bool Stack::owns(const Microprotocol& mp) const {
  for (const auto& m : microprotocols_) {
    if (m.get() == &mp) return true;
  }
  return false;
}

void Stack::bind(const EventType& type, const Handler& handler) {
  if (sealed()) {
    throw ConfigError("Stack::bind after seal(): dynamic binding is not supported");
  }
  if (!owns(handler.owner())) {
    throw ConfigError("Stack::bind: handler '" + handler.name() +
                      "' belongs to a microprotocol not owned by this stack");
  }
  bindings_[type.id()].push_back(&handler);
}

void Stack::seal() { sealed_.store(true, std::memory_order_release); }

const std::vector<const Handler*>& Stack::bound_handlers(EventTypeId type) const {
  static const std::vector<const Handler*> kEmpty;
  auto it = bindings_.find(type);
  return it == bindings_.end() ? kEmpty : it->second;
}

const Microprotocol* Stack::find(MicroprotocolId id) const {
  for (const auto& m : microprotocols_) {
    if (m->id() == id) return m.get();
  }
  return nullptr;
}

const Handler* Stack::find_handler(HandlerId id) const {
  for (const auto& m : microprotocols_) {
    for (const auto& h : m->handlers()) {
      if (h->id() == id) return h.get();
    }
  }
  return nullptr;
}

}  // namespace samoa
