// Event types and messages.
//
// In the SAMOA model (paper Section 2), executions of handlers are
// triggered by *events*; each event carries an event type, and only
// handlers bound to that type run in response. Event types are first-class
// values: they can be stored, passed to handlers, and used as keys.
#pragma once

#include <any>
#include <memory>
#include <string>
#include <typeinfo>
#include <utility>

#include "core/errors.hpp"
#include "util/ids.hpp"

namespace samoa {

/// A named, process-unique event type. Copies are cheap and share identity
/// (two copies of the same EventType compare equal; two EventTypes created
/// with the same name are distinct, as in J-SAMOA where types are object
/// instantiations of class Event).
class EventType {
 public:
  explicit EventType(std::string name);

  EventTypeId id() const { return id_; }
  const std::string& name() const { return *name_; }

  friend bool operator==(const EventType& a, const EventType& b) { return a.id_ == b.id_; }

 private:
  EventTypeId id_;
  std::shared_ptr<const std::string> name_;
};

/// Type-erased event payload. Handlers receive a `const Message&` and read
/// it with `as<T>()`; a mismatched type raises MessageTypeError rather
/// than UB.
class Message {
 public:
  Message() = default;

  template <typename T>
  static Message of(T value) {
    Message m;
    m.payload_ = std::move(value);
    return m;
  }

  bool empty() const { return !payload_.has_value(); }

  template <typename T>
  const T& as() const {
    const T* p = std::any_cast<T>(&payload_);
    if (p == nullptr) {
      throw MessageTypeError(std::string("Message payload is ") +
                             (payload_.has_value() ? payload_.type().name() : "<empty>") +
                             ", requested " + typeid(T).name());
    }
    return *p;
  }

  template <typename T>
  bool holds() const {
    return std::any_cast<T>(&payload_) != nullptr;
  }

 private:
  std::any payload_;
};

}  // namespace samoa
